//===- exec/Interpreter.cpp -----------------------------------------------===//

#include "exec/Interpreter.h"

#include "support/ErrorHandling.h"
#include "support/FaultInjection.h"
#include "support/Status.h"

using namespace spf;
using namespace spf::exec;
using namespace spf::ir;

namespace {

/// Runs a callable on scope exit, including exceptional unwinds; keeps
/// ActiveFrames/CallDepth consistent when a trap propagates out of a
/// deeply nested simulated call.
template <typename Fn> struct ScopeExit {
  Fn F;
  ~ScopeExit() { F(); }
};
template <typename Fn> ScopeExit(Fn) -> ScopeExit<Fn>;

/// A runtime condition the simulated program cannot recover from. Thrown
/// (not fatal): the VM process survives, the harness quarantines the cell.
[[noreturn]] void trap(const char *Msg) { throw support::RuntimeTrap(Msg); }

} // namespace

void Interpreter::setDeadline(double Seconds) {
  HasDeadline = Seconds > 0.0;
  if (HasDeadline) {
    Deadline = std::chrono::steady_clock::now() +
               std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                   std::chrono::duration<double>(Seconds));
    // Cover the watchdog's blind spot: GC (and the allocation slow path
    // that triggers it) retires no instructions, so the per-4096-retired
    // check below never runs there. The collector polls this checkpoint
    // at the same cadence inside every collection phase.
    Gc.setCheckpoint([this] { checkDeadline(); });
  } else {
    Gc.setCheckpoint(nullptr);
  }
}

void Interpreter::checkDeadline() const {
  if (HasDeadline && std::chrono::steady_clock::now() >= Deadline)
    throw support::CellTimeout("cell wall-clock deadline exceeded");
}

Interpreter::Interpreter(vm::Heap &Heap, AccessSink &Sink,
                         std::vector<vm::Addr> *ExternalRoots)
    : Heap(Heap), Sink(Sink), ExternalRoots(ExternalRoots) {}

SiteId Interpreter::siteOf(const ir::Instruction *I) {
  auto It = LoadSites.find(I);
  if (It != LoadSites.end())
    return It->second;
  SiteId Id = static_cast<SiteId>(LoadSites.size());
  LoadSites.emplace(I, Id);
  return Id;
}

const Interpreter::MethodInfo &Interpreter::infoFor(Method *M) {
  auto It = Infos.find(M);
  if (It != Infos.end())
    return It->second;

  M->renumber();
  MethodInfo Info;
  unsigned NumValues = M->numArgs();
  for (const auto &Arg : M->arguments())
    if (Arg->type() == Type::Ref)
      Info.RefValueIds.push_back(Arg->id());
  for (const auto &BB : M->blocks())
    for (const auto &I : BB->instructions()) {
      ++NumValues;
      if (I->type() == Type::Ref)
        Info.RefValueIds.push_back(I->id());
    }
  Info.NumValues = NumValues;
  return Infos.emplace(M, std::move(Info)).first->second;
}

uint64_t Interpreter::run(Method *M, const std::vector<uint64_t> &Args) {
  return execute(M, Args);
}

void Interpreter::enableMixedMode(CompileHook Hook, unsigned Threshold,
                                  unsigned Penalty) {
  MixedModeHook = std::move(Hook);
  CompileThreshold = Threshold;
  InterpPenalty = Penalty;
}

uint64_t Interpreter::eval(const Frame &F, const Value *V) const {
  if (const auto *C = dyn_cast<Constant>(V))
    return C->raw();
  return F.Regs[V->id()]; // Arguments and instructions share the id space.
}

void Interpreter::collectGarbage() {
  // The allocation slow path lands here without retiring anything;
  // check once on entry so even a checkpoint-free tiny heap cannot
  // extend a cell past its deadline by collecting in a loop.
  checkDeadline();
  std::vector<vm::Addr *> Roots;
  if (ExternalRoots)
    for (vm::Addr &Handle : *ExternalRoots)
      Roots.push_back(&Handle);
  for (Frame *F : ActiveFrames)
    for (unsigned Id : infoFor(F->M).RefValueIds)
      Roots.push_back(&F->Regs[Id]);
  Gc.collect(Heap, Roots);
  ++Stats.GcRuns;
  Sink.tick(GcPauseTicks);
}

vm::Addr Interpreter::allocate(const Instruction *I, const Frame &F) {
  auto TryAlloc = [&]() -> vm::Addr {
    if (const auto *NO = dyn_cast<NewObjectInst>(I))
      return Heap.allocObject(*NO->objectClass());
    const auto *NA = cast<NewArrayInst>(I);
    int64_t Len = static_cast<int64_t>(eval(F, NA->length()));
    if (Len < 0)
      trap("negative array length");
    return Heap.allocArray(NA->elementType(), static_cast<uint64_t>(Len));
  };

  // Chaos: an injected allocation fault looks like heap exhaustion on the
  // first attempt only — the GC-and-retry path absorbs it, so simulated
  // results stay bit-identical (the extra collection is pure cost).
  vm::Addr A = SPF_FAULT_POINT(support::FaultSite::Alloc) ? 0 : TryAlloc();
  if (!A) {
    collectGarbage();
    A = TryAlloc();
    if (!A)
      trap("out of memory after garbage collection");
  }
  ++Stats.Allocations;
  Sink.tick(4); // Bump allocation + zeroing fast path.
  return A;
}

uint64_t Interpreter::evalBinary(const BinaryInst *B, uint64_t L,
                                 uint64_t R) const {
  using BinOp = BinaryInst::BinOp;
  Type OpTy = B->lhs()->type();

  if (OpTy == Type::F64) {
    double A, C;
    __builtin_memcpy(&A, &L, 8);
    __builtin_memcpy(&C, &R, 8);
    double Res = 0.0;
    switch (B->binOp()) {
    case BinOp::Add: Res = A + C; break;
    case BinOp::Sub: Res = A - C; break;
    case BinOp::Mul: Res = A * C; break;
    case BinOp::Div: Res = A / C; break;
    case BinOp::CmpEq: return A == C;
    case BinOp::CmpNe: return A != C;
    case BinOp::CmpLt: return A < C;
    case BinOp::CmpLe: return A <= C;
    case BinOp::CmpGt: return A > C;
    case BinOp::CmpGe: return A >= C;
    default:
      trap("invalid f64 binary op");
    }
    uint64_t Bits;
    __builtin_memcpy(&Bits, &Res, 8);
    return Bits;
  }

  int64_t A = static_cast<int64_t>(L);
  int64_t C = static_cast<int64_t>(R);
  auto Wrap = [OpTy](int64_t V) -> uint64_t {
    if (OpTy == Type::I32)
      return static_cast<uint64_t>(
          static_cast<int64_t>(static_cast<int32_t>(V)));
    return static_cast<uint64_t>(V);
  };

  switch (B->binOp()) {
  case BinOp::Add: return Wrap(A + C);
  case BinOp::Sub: return Wrap(A - C);
  case BinOp::Mul: return Wrap(A * C);
  case BinOp::Div:
    if (C == 0)
      trap("integer division by zero");
    return Wrap(A / C);
  case BinOp::Rem:
    if (C == 0)
      trap("integer remainder by zero");
    return Wrap(A % C);
  case BinOp::And: return Wrap(A & C);
  case BinOp::Or: return Wrap(A | C);
  case BinOp::Xor: return Wrap(A ^ C);
  case BinOp::Shl: return Wrap(A << (C & 63));
  case BinOp::Shr: return Wrap(A >> (C & 63));
  case BinOp::CmpEq: return L == R;
  case BinOp::CmpNe: return L != R;
  case BinOp::CmpLt: return A < C;
  case BinOp::CmpLe: return A <= C;
  case BinOp::CmpGt: return A > C;
  case BinOp::CmpGe: return A >= C;
  }
  spf_unreachable("unknown binop");
}

vm::Addr Interpreter::addressOf(const Frame &F, const AddressedInst *A) const {
  vm::Addr Base = eval(F, A->base());
  int64_t Offset = A->displacement();
  if (A->index())
    Offset += static_cast<int64_t>(eval(F, A->index())) *
              static_cast<int64_t>(A->scale());
  return Base + static_cast<uint64_t>(Offset);
}

uint64_t Interpreter::execute(Method *M, const std::vector<uint64_t> &Args) {
  if (M->isNative()) {
    ++Stats.Calls;
    return M->nativeImpl()(Args);
  }
  if (CallDepth >= 512)
    trap("call stack overflow in simulated program");
  ++CallDepth;
  ScopeExit DepthGuard{[this] { --CallDepth; }};

  // Mixed mode: hand hot methods to the JIT with the actual arguments of
  // the triggering invocation. The rewritten IR takes effect immediately
  // (on-stack replacement is not modeled: the *current* activation was
  // dispatched before the compile; in practice the hook runs at entry,
  // so this activation already executes the compiled code).
  bool Interpreted = false;
  if (MixedModeHook) {
    Interpreted = !CompiledMethods.count(M);
    if (Interpreted && ++InvocationCounts[M] >= CompileThreshold) {
      // Never rewrite a method with live activations (we do not model
      // on-stack replacement): a recursive caller's frame was laid out
      // for the old IR. Defer to the next clean invocation.
      bool OnStack = false;
      for (const Frame *Active : ActiveFrames)
        OnStack |= Active->M == M;
      if (!OnStack) {
        CompiledMethods.insert(M);
        Infos.erase(M); // The hook rewrites the IR; renumber on next use.
        MixedModeHook(M, Args);
        Interpreted = false;
      }
    }
  }

  const MethodInfo &Info = infoFor(M);
  Frame F;
  F.M = M;
  F.Regs.assign(Info.NumValues, 0);
  assert(Args.size() == M->numArgs() && "argument count mismatch");
  for (unsigned I = 0, E = M->numArgs(); I != E; ++I)
    F.Regs[M->arg(I)->id()] = Args[I];

  ActiveFrames.push_back(&F);
  ScopeExit FrameGuard{[this] { ActiveFrames.pop_back(); }};

  BasicBlock *BB = M->entry();
  const BasicBlock *PrevBB = nullptr;
  uint64_t Result = 0;

  // Scratch buffers hoisted out of the loop.
  std::vector<std::pair<unsigned, uint64_t>> PhiUpdates;
  std::vector<uint64_t> CallArgs;

  while (true) {
    // Parallel phi evaluation at block entry.
    if (PrevBB) {
      PhiUpdates.clear();
      for (const auto &IP : BB->instructions()) {
        auto *Phi = dyn_cast<PhiInst>(IP.get());
        if (!Phi)
          break;
        Value *In = Phi->valueFor(PrevBB);
        assert(In && "phi has no incoming value for predecessor");
        PhiUpdates.emplace_back(Phi->id(), eval(F, In));
      }
      for (const auto &[Id, V] : PhiUpdates)
        F.Regs[Id] = V;
    }

    BasicBlock *NextBB = nullptr;

    for (const auto &IP : BB->instructions()) {
      Instruction *I = IP.get();
      if (isa<PhiInst>(I))
        continue; // Handled at block entry; not a retired instruction.

      if (++Stats.Retired > MaxInstructions)
        trap("execution budget exceeded (runaway loop?)");
      // Cooperative watchdog: one clock read per 4096 retired
      // instructions bounds both the overhead and the overshoot.
      if (HasDeadline && (Stats.Retired & 0xFFF) == 0 &&
          std::chrono::steady_clock::now() >= Deadline)
        throw support::CellTimeout("cell wall-clock deadline exceeded");
      if (Interpreted)
        Sink.tick(InterpPenalty); // Bytecode dispatch overhead.

      switch (I->opcode()) {
      case Opcode::Binary: {
        auto *B = cast<BinaryInst>(I);
        F.Regs[I->id()] = evalBinary(B, eval(F, B->lhs()), eval(F, B->rhs()));
        Sink.tick(1);
        break;
      }
      case Opcode::Conv: {
        auto *C = cast<ConvInst>(I);
        uint64_t S = eval(F, C->src());
        switch (C->convOp()) {
        case ConvInst::ConvOp::SExt32To64:
          F.Regs[I->id()] = S;
          break;
        case ConvInst::ConvOp::Trunc64To32:
          F.Regs[I->id()] = static_cast<uint64_t>(
              static_cast<int64_t>(static_cast<int32_t>(S)));
          break;
        case ConvInst::ConvOp::IToF: {
          double D = static_cast<double>(static_cast<int64_t>(S));
          uint64_t Bits;
          __builtin_memcpy(&Bits, &D, 8);
          F.Regs[I->id()] = Bits;
          break;
        }
        case ConvInst::ConvOp::FToI: {
          double D;
          __builtin_memcpy(&D, &S, 8);
          F.Regs[I->id()] = static_cast<uint64_t>(
              static_cast<int64_t>(static_cast<int32_t>(D)));
          break;
        }
        }
        Sink.tick(1);
        break;
      }
      case Opcode::GetField: {
        auto *G = cast<GetFieldInst>(I);
        vm::Addr Obj = eval(F, G->object());
        if (!Obj)
          trap("null pointer in getfield");
        vm::Addr A = Obj + G->field()->Offset;
        Sink.load(A, siteOf(I));
        F.Regs[I->id()] = Heap.load(A, G->type());
        break;
      }
      case Opcode::PutField: {
        auto *P = cast<PutFieldInst>(I);
        vm::Addr Obj = eval(F, P->object());
        if (!Obj)
          trap("null pointer in putfield");
        vm::Addr A = Obj + P->field()->Offset;
        Sink.store(A);
        Heap.store(A, P->field()->Ty, eval(F, P->value()));
        break;
      }
      case Opcode::GetStatic: {
        auto *G = cast<GetStaticInst>(I);
        Sink.load(G->variable()->Address, siteOf(I));
        F.Regs[I->id()] = Heap.load(G->variable()->Address, G->type());
        break;
      }
      case Opcode::PutStatic: {
        auto *P = cast<PutStaticInst>(I);
        Sink.store(P->variable()->Address);
        Heap.store(P->variable()->Address, P->variable()->Ty,
                   eval(F, P->value()));
        break;
      }
      case Opcode::ALoad: {
        auto *AL = cast<ALoadInst>(I);
        vm::Addr Arr = eval(F, AL->array());
        if (!Arr)
          trap("null pointer in aload");
        int64_t Idx = static_cast<int64_t>(eval(F, AL->index()));
        assert(Idx >= 0 &&
               static_cast<uint64_t>(Idx) < Heap.arrayLength(Arr) &&
               "array index out of bounds");
        vm::Addr A = Heap.elemAddr(Arr, static_cast<uint64_t>(Idx));
        Sink.load(A, siteOf(I));
        F.Regs[I->id()] = Heap.load(A, AL->type());
        break;
      }
      case Opcode::AStore: {
        auto *AS = cast<AStoreInst>(I);
        vm::Addr Arr = eval(F, AS->array());
        if (!Arr)
          trap("null pointer in astore");
        int64_t Idx = static_cast<int64_t>(eval(F, AS->index()));
        assert(Idx >= 0 &&
               static_cast<uint64_t>(Idx) < Heap.arrayLength(Arr) &&
               "array index out of bounds");
        vm::Addr A = Heap.elemAddr(Arr, static_cast<uint64_t>(Idx));
        Sink.store(A);
        Heap.store(A, Heap.arrayElemType(Arr), eval(F, AS->value()));
        break;
      }
      case Opcode::ArrayLength: {
        auto *AL = cast<ArrayLengthInst>(I);
        vm::Addr Arr = eval(F, AL->array());
        if (!Arr)
          trap("null pointer in arraylength");
        Sink.load(Arr + vm::ArrayLengthOffset, siteOf(I));
        F.Regs[I->id()] =
            static_cast<uint64_t>(static_cast<int64_t>(Heap.arrayLength(Arr)));
        break;
      }
      case Opcode::NewObject:
      case Opcode::NewArray:
        F.Regs[I->id()] = allocate(I, F);
        break;
      case Opcode::Call: {
        auto *C = cast<CallInst>(I);
        if (!C->callee())
          trap("call to unresolved method");
        CallArgs.clear();
        for (Value *Op : C->operands())
          CallArgs.push_back(eval(F, Op));
        Sink.tick(5); // Call/return overhead.
        ++Stats.Calls;
        uint64_t R = execute(C->callee(), CallArgs);
        if (I->type() != Type::Void)
          F.Regs[I->id()] = R;
        break;
      }
      case Opcode::Phi:
        break; // Unreachable; handled above.
      case Opcode::Branch: {
        auto *B = cast<BranchInst>(I);
        Sink.tick(1);
        NextBB = eval(F, B->condition()) ? B->trueSuccessor()
                                         : B->falseSuccessor();
        break;
      }
      case Opcode::Jump:
        Sink.tick(1);
        NextBB = cast<JumpInst>(I)->target();
        break;
      case Opcode::Ret: {
        auto *R = cast<RetInst>(I);
        if (R->value())
          Result = eval(F, R->value());
        return Result; // Frame/depth unwound by the scope guards.
      }
      case Opcode::Prefetch: {
        auto *P = cast<PrefetchInst>(I);
        // Governor mode: consult the site's runtime control and attribute
        // the issue. A quarantined site's prefetch is a nop (modeling the
        // JIT patching it out) — zero cost, zero events.
        SiteId PSite = 0;
        int32_t Extra = 0;
        if (Governed) {
          PSite = prefetchSiteOf(P);
          auto It = Controls.find(PSite);
          if (It != Controls.end()) {
            if (It->second.Suppress)
              break;
            Extra = It->second.ExtraDistance;
          }
        }
        ++Stats.PrefetchRelated;
        vm::Addr A = addressOf(F, P);
        if (Extra)
          A += static_cast<uint64_t>(P->strideBytes() * Extra);
        // Chaos: model the planner having computed a garbage prefetch
        // address — exactly what the guard exists to contain.
        if (SPF_FAULT_POINT(support::FaultSite::GuardAddr))
          A ^= 0xDEAD000000000000ull;
        if (P->isGuarded()) {
          // Software exception check: only touch mapped memory. A failed
          // check takes the recovery branch — no cache or TLB fill.
          if (Heap.isValidAccess(A, 8)) {
            if (Governed)
              Sink.guardedLoad(A, PSite);
            else
              Sink.guardedLoad(A);
          } else {
            if (Governed)
              Sink.guardedLoadFault(PSite);
            else
              Sink.guardedLoadFault();
          }
        } else {
          if (Governed)
            Sink.prefetch(A, PSite);
          else
            Sink.prefetch(A);
        }
        break;
      }
      case Opcode::SpecLoad: {
        auto *S = cast<SpecLoadInst>(I);
        SiteId PSite = 0;
        int32_t Extra = 0;
        if (Governed) {
          PSite = prefetchSiteOf(S);
          auto It = Controls.find(PSite);
          if (It != Controls.end()) {
            if (It->second.Suppress) {
              // The chain's prefetches share this site and are suppressed
              // with it; a null result keeps the dataflow well-defined.
              F.Regs[I->id()] = 0;
              break;
            }
            Extra = It->second.ExtraDistance;
          }
        }
        ++Stats.PrefetchRelated;
        vm::Addr A = addressOf(F, S);
        if (Extra)
          A += static_cast<uint64_t>(S->strideBytes() * Extra);
        if (SPF_FAULT_POINT(support::FaultSite::GuardAddr))
          A ^= 0xDEAD000000000000ull;
        if (Heap.isValidAccess(A, 8)) {
          if (Governed)
            Sink.guardedLoad(A, PSite);
          else
            Sink.guardedLoad(A);
          F.Regs[I->id()] = Heap.load(A, Type::Ref);
        } else {
          if (Governed)
            Sink.guardedLoadFault(PSite);
          else
            Sink.guardedLoadFault();
          F.Regs[I->id()] = 0;
        }
        break;
      }
      }

      if (NextBB)
        break;
    }

    if (!NextBB)
      trap("fell off the end of a block without a terminator");
    PrevBB = BB;
    BB = NextBB;
  }
}
