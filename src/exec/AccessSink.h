//===- exec/AccessSink.h - Interpreter -> memory event interface -*- C++ -*-===//
///
/// \file
/// The abstract event interface between execution and timing. The
/// interpreter *produces* a stream of access events — compute ticks,
/// demand loads (attributed to their IR load site), stores, software
/// prefetches, and guarded loads — and a sink *consumes* them. The
/// canonical consumer is sim::MemorySystem (the machine's timing model);
/// trace::RecordingSink tees the stream into a trace::TraceBuffer so it
/// can be replayed through many timing models without re-executing the
/// program (record-once / replay-many), and sim::CountingSink consumes
/// it for event-count-only passes.
///
/// The contract that makes replay exact: the interpreter never reads
/// anything back from the sink — the event stream is write-only and is a
/// function of the program alone, so any two sinks fed the same stream
/// are interchangeable.
///
//===----------------------------------------------------------------------===//

#ifndef SPF_EXEC_ACCESSSINK_H
#define SPF_EXEC_ACCESSSINK_H

#include <cstdint>

namespace spf {
namespace exec {

/// Dense id of one static load instruction (a "load site"), assigned by
/// the interpreter in first-execution order. Per-site attribution lets a
/// sink answer "which loads miss" (the paper's Table 1 view) without the
/// sink knowing anything about IR.
using SiteId = uint32_t;

/// Consumer of the interpreter's memory-event stream.
class AccessSink {
public:
  virtual ~AccessSink() = default;

  /// \p N non-memory instructions elapsed. Additive: tick(a); tick(b)
  /// must be indistinguishable from tick(a + b) — the trace encoder
  /// relies on this to run-length-encode tick runs.
  virtual void tick(uint64_t N) = 0;

  /// Demand load at \p Addr, issued by load site \p Site.
  virtual void load(uint64_t Addr, SiteId Site) = 0;

  /// Demand store at \p Addr.
  virtual void store(uint64_t Addr) = 0;

  /// Software prefetch instruction targeting \p Addr.
  virtual void prefetch(uint64_t Addr) = 0;

  /// Guarded load whose software exception check passed: a real access
  /// at \p Addr that primes the DTLB and fills the caches.
  virtual void guardedLoad(uint64_t Addr) = 0;

  /// Guarded load whose check failed: recovery-path cost only.
  virtual void guardedLoadFault() = 0;
};

} // namespace exec
} // namespace spf

#endif // SPF_EXEC_ACCESSSINK_H
