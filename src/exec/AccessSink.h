//===- exec/AccessSink.h - Interpreter -> memory event interface -*- C++ -*-===//
///
/// \file
/// The abstract event interface between execution and timing. The
/// interpreter *produces* a stream of access events — compute ticks,
/// demand loads (attributed to their IR load site), stores, software
/// prefetches, and guarded loads — and a sink *consumes* them. The
/// canonical consumer is sim::MemorySystem (the machine's timing model);
/// trace::RecordingSink tees the stream into a trace::TraceBuffer so it
/// can be replayed through many timing models without re-executing the
/// program (record-once / replay-many), and sim::CountingSink consumes
/// it for event-count-only passes.
///
/// The contract that makes replay exact: the interpreter never reads
/// anything back from the sink — the event stream is write-only and is a
/// function of the program alone, so any two sinks fed the same stream
/// are interchangeable.
///
/// Events also exist in decoded-record form (AccessEvent below) so that
/// replay can hand a sink whole blocks at a time via consume() instead
/// of one virtual call per event; see the block-dispatch contract on
/// consume().
///
//===----------------------------------------------------------------------===//

#ifndef SPF_EXEC_ACCESSSINK_H
#define SPF_EXEC_ACCESSSINK_H

#include <cstddef>
#include <cstdint>

namespace spf {
namespace exec {

/// Dense id of one static load instruction (a "load site"), assigned by
/// the interpreter in first-execution order. Per-site attribution lets a
/// sink answer "which loads miss" (the paper's Table 1 view) without the
/// sink knowing anything about IR.
using SiteId = uint32_t;

struct AccessEvent;

/// Consumer of the interpreter's memory-event stream.
class AccessSink {
public:
  virtual ~AccessSink() = default;

  /// \p N non-memory instructions elapsed. Additive: tick(a); tick(b)
  /// must be indistinguishable from tick(a + b) — the trace encoder
  /// relies on this to run-length-encode tick runs.
  virtual void tick(uint64_t N) = 0;

  /// Demand load at \p Addr, issued by load site \p Site.
  virtual void load(uint64_t Addr, SiteId Site) = 0;

  /// Demand store at \p Addr.
  virtual void store(uint64_t Addr) = 0;

  /// Software prefetch instruction targeting \p Addr.
  virtual void prefetch(uint64_t Addr) = 0;

  /// Guarded load whose software exception check passed: a real access
  /// at \p Addr that primes the DTLB and fills the caches.
  virtual void guardedLoad(uint64_t Addr) = 0;

  /// Guarded load whose check failed: recovery-path cost only.
  virtual void guardedLoadFault() = 0;

  // Site-attributed prefetch events. The interpreter uses these when
  // per-site prefetch-health accounting is active (the governor's
  // evidence stream); \p Site is the IR load site whose plan issued the
  // prefetch. Semantically identical to the unattributed forms — the
  // defaults forward, so sinks that don't track health need no changes —
  // and NOT part of the trace wire format: attribution is a live-run
  // concern, and governor-driven runs are never trace-cached
  // (workloads::executionSignature refuses to key them).
  virtual void prefetch(uint64_t Addr, SiteId Site) {
    (void)Site;
    prefetch(Addr);
  }
  virtual void guardedLoad(uint64_t Addr, SiteId Site) {
    (void)Site;
    guardedLoad(Addr);
  }
  virtual void guardedLoadFault(SiteId Site) {
    (void)Site;
    guardedLoadFault();
  }

  /// Consumes a block of \p N decoded events, in order. The block-
  /// dispatch contract: consume(Events, N) must be indistinguishable
  /// from calling tick/load/store/... once per event in array order —
  /// the default implementation below is exactly that loop, so every
  /// existing sink keeps its semantics. Sinks on the replay hot path
  /// (sim::MemorySystem, sim::CountingSink) override this with a tight
  /// non-virtual inner loop; trace::replay feeds blocks through here so
  /// replay pays one virtual call per block instead of per event.
  virtual void consume(const AccessEvent *Events, size_t N);
};

/// Wire opcode of one event; stable across encode/decode.
enum class EventKind : uint8_t {
  Tick = 0,             ///< Payload: tick count (merged run).
  Load = 1,             ///< Payload: address + load site.
  Store = 2,            ///< Payload: address.
  Prefetch = 3,         ///< Payload: address.
  GuardedLoad = 4,      ///< Payload: address.
  GuardedLoadFault = 5, ///< No payload.
};

inline const char *eventKindName(EventKind K) {
  switch (K) {
  case EventKind::Tick: return "tick";
  case EventKind::Load: return "load";
  case EventKind::Store: return "store";
  case EventKind::Prefetch: return "prefetch";
  case EventKind::GuardedLoad: return "guarded-load";
  case EventKind::GuardedLoadFault: return "guarded-load-fault";
  }
  return "?";
}

/// One decoded event. Consecutive tick() calls are run-length merged at
/// record time (tick is additive by contract), so one Tick event may
/// stand for many interpreter-side calls. Every other event maps 1:1.
struct AccessEvent {
  EventKind Kind = EventKind::Tick;
  /// Address for Load/Store/Prefetch/GuardedLoad; tick count for Tick;
  /// zero for GuardedLoadFault.
  uint64_t Value = 0;
  /// Load site for Load events; zero otherwise.
  SiteId Site = 0;

  bool operator==(const AccessEvent &) const = default;
};

/// Dispatches one decoded event into \p Sink.
inline void dispatch(const AccessEvent &E, AccessSink &Sink) {
  switch (E.Kind) {
  case EventKind::Tick:
    Sink.tick(E.Value);
    break;
  case EventKind::Load:
    Sink.load(E.Value, E.Site);
    break;
  case EventKind::Store:
    Sink.store(E.Value);
    break;
  case EventKind::Prefetch:
    Sink.prefetch(E.Value);
    break;
  case EventKind::GuardedLoad:
    Sink.guardedLoad(E.Value);
    break;
  case EventKind::GuardedLoadFault:
    Sink.guardedLoadFault();
    break;
  }
}

inline void AccessSink::consume(const AccessEvent *Events, size_t N) {
  for (size_t I = 0; I != N; ++I)
    dispatch(Events[I], *this);
}

} // namespace exec
} // namespace spf

#endif // SPF_EXEC_ACCESSSINK_H
