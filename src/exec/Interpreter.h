//===- exec/Interpreter.h - IR execution engine -----------------*- C++ -*-===//
///
/// \file
/// Executes compiled IR methods over the simulated heap, reporting every
/// memory operation to an abstract AccessSink. This stands in for the
/// JVM's compiled-code execution: the paper's measured quantities (cycles,
/// retired instructions, cache/DTLB miss events) all originate here — but
/// the interpreter itself knows nothing about timing. The usual sink is
/// sim::MemorySystem (live simulation); wrapping it in a
/// trace::RecordingSink captures the access stream for record-once /
/// replay-many sweeps. Demand loads are attributed to their static load
/// site (exec::SiteId, assigned in first-execution order).
///
/// Allocation failures trigger the mark-compact collector with the active
/// frames' reference slots plus the caller-provided handles as roots.
///
//===----------------------------------------------------------------------===//

#ifndef SPF_EXEC_INTERPRETER_H
#define SPF_EXEC_INTERPRETER_H

#include "exec/AccessSink.h"
#include "ir/Module.h"
#include "vm/GarbageCollector.h"

#include <chrono>
#include <unordered_map>
#include <unordered_set>

namespace spf {
namespace exec {

/// Nominal compute ticks charged per garbage collection pause — by the
/// interpreter's allocation-pressure collections and by the runner's
/// epoch-boundary collections alike. GC cost is not part of the paper's
/// metric (best-run steady-state timing), so it is small but nonzero;
/// the report layer uses the same constant to split the GC-pause share
/// out of the Compute cycle category.
constexpr uint64_t GcPauseTicks = 10000;

/// Execution statistics accumulated across calls.
struct ExecStats {
  /// Retired instructions (phis excluded; prefetches included, since the
  /// paper reports the retired-instruction increase they cause).
  uint64_t Retired = 0;
  /// Retired prefetch-related instructions (prefetch + spec_load).
  uint64_t PrefetchRelated = 0;
  uint64_t Calls = 0;
  uint64_t Allocations = 0;
  uint64_t GcRuns = 0;
};

/// Executes IR methods; one instance per simulated machine run.
class Interpreter {
public:
  /// \p ExternalRoots are mutator handles (workload data-structure roots)
  /// that the GC must trace and may update. \p Sink consumes the memory
  /// event stream (typically a sim::MemorySystem, possibly behind a
  /// trace::RecordingSink); the interpreter never reads it back.
  Interpreter(vm::Heap &Heap, AccessSink &Sink,
              std::vector<vm::Addr> *ExternalRoots = nullptr);

  /// Runs \p M with \p Args; returns the raw 64-bit result (0 for void).
  uint64_t run(ir::Method *M, const std::vector<uint64_t> &Args);

  /// Called when a method's invocation counter reaches the mixed-mode
  /// compile threshold, with the actual arguments of that invocation —
  /// the values object inspection consumes.
  using CompileHook =
      std::function<void(ir::Method *, const std::vector<uint64_t> &)>;

  /// Enables mixed-mode execution: methods start out interpreted (each
  /// retired instruction costs \p InterpPenalty extra cycles, modeling
  /// bytecode-dispatch overhead) and are handed to \p Hook — typically
  /// jit::CompileManager::compile — at their \p Threshold -th invocation,
  /// exactly the paper's "mixed mode... selectively compiles methods that
  /// are executed frequently".
  void enableMixedMode(CompileHook Hook, unsigned Threshold = 2,
                       unsigned InterpPenalty = 9);

  /// True once \p M has been handed to the compile hook.
  bool isCompiled(const ir::Method *M) const {
    return CompiledMethods.count(M) != 0;
  }

  const ExecStats &stats() const { return Stats; }
  vm::GarbageCollector &gc() { return Gc; }

  /// Distinct static load sites executed so far (dense SiteId space).
  unsigned loadSiteCount() const {
    return static_cast<unsigned>(LoadSites.size());
  }

  // -- Prefetch-health governance (opt::Governor) --------------------------

  /// Runtime re-decision for one load site's prefetch code.
  struct PrefetchControl {
    /// Quarantined: the site's prefetches / spec loads execute as nops
    /// (modeling the JIT patching them out) — zero cost, zero events.
    bool Suppress = false;
    /// Extra iterations of lookahead: each prefetch address is shifted by
    /// ExtraDistance * strideBytes (no effect on strideless prefetches).
    int32_t ExtraDistance = 0;
  };

  /// Turns on governor mode: prefetch/guarded-load events carry the
  /// anchor load's SiteId (the sink's per-site health attribution), and
  /// the control table below is consulted per prefetch. Off by default —
  /// the prefetch execution path is then byte-identical to the
  /// pre-governor interpreter.
  void enablePrefetchGovernance() { Governed = true; }
  bool prefetchGovernanceEnabled() const { return Governed; }

  /// Installs/replaces the control for \p Site (governor re-decisions).
  void setPrefetchControl(SiteId Site, const PrefetchControl &C) {
    Controls[Site] = C;
  }
  /// Drops all controls (after re-inspection rebuilds the prefetch code).
  void clearPrefetchControls() { Controls.clear(); }

  /// Invalidates cached per-method layout info. Must be called after any
  /// out-of-band IR rewrite (governor-triggered re-JIT): value counts and
  /// ref-slot tables are stale otherwise.
  void invalidateMethodInfo() { Infos.clear(); }

  /// The attribution site of a prefetch/spec-load: its anchor load's
  /// site when anchored, else the instruction's own (fresh) site.
  SiteId prefetchSiteOf(const ir::AddressedInst *A) {
    return siteOf(A->anchor() ? A->anchor() : A);
  }

  /// Execution budget; exceeding it throws support::RuntimeTrap
  /// (runaway-loop protection).
  void setMaxInstructions(uint64_t Max) { MaxInstructions = Max; }

  /// Wall-clock watchdog: execution past the deadline throws
  /// support::CellTimeout. Checked cooperatively every few thousand
  /// retired instructions — and, via a GarbageCollector checkpoint, at
  /// the same cadence inside collections and the allocation slow path,
  /// so a cell stuck in GC still observes its deadline. Overshoot is
  /// bounded and cheap runs pay (almost) nothing. \p Seconds <= 0
  /// disables the watchdog.
  void setDeadline(double Seconds);

private:
  /// Throws support::CellTimeout when the deadline has passed.
  void checkDeadline() const;

  struct MethodInfo {
    unsigned NumValues = 0;
    std::vector<unsigned> RefValueIds; // Dense ids of Ref-typed values.
  };

  struct Frame {
    ir::Method *M = nullptr;
    std::vector<uint64_t> Regs;
  };

  const MethodInfo &infoFor(ir::Method *M);
  SiteId siteOf(const ir::Instruction *I);
  uint64_t execute(ir::Method *M, const std::vector<uint64_t> &Args);
  uint64_t eval(const Frame &F, const ir::Value *V) const;
  uint64_t evalBinary(const ir::BinaryInst *B, uint64_t L, uint64_t R) const;
  vm::Addr addressOf(const Frame &F, const ir::AddressedInst *A) const;
  vm::Addr allocate(const ir::Instruction *I, const Frame &F);
  void collectGarbage();

  vm::Heap &Heap;
  AccessSink &Sink;
  std::vector<vm::Addr> *ExternalRoots;
  CompileHook MixedModeHook;
  unsigned CompileThreshold = 0;
  unsigned InterpPenalty = 0;
  std::unordered_map<const ir::Method *, unsigned> InvocationCounts;
  std::unordered_set<const ir::Method *> CompiledMethods;
  vm::GarbageCollector Gc;
  ExecStats Stats;
  uint64_t MaxInstructions = 4ull << 30;
  bool HasDeadline = false;
  std::chrono::steady_clock::time_point Deadline;
  std::unordered_map<ir::Method *, MethodInfo> Infos;
  /// Load-site attribution: instruction -> dense SiteId, assigned in
  /// first-execution order (deterministic for a deterministic program).
  std::unordered_map<const ir::Instruction *, SiteId> LoadSites;
  std::vector<Frame *> ActiveFrames;
  unsigned CallDepth = 0;
  /// Governor mode (enablePrefetchGovernance()).
  bool Governed = false;
  /// Per-site runtime controls, keyed by anchor SiteId.
  std::unordered_map<SiteId, PrefetchControl> Controls;
};

} // namespace exec
} // namespace spf

#endif // SPF_EXEC_INTERPRETER_H
