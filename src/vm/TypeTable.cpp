//===- vm/TypeTable.cpp ---------------------------------------------------===//

#include "vm/TypeTable.h"

using namespace spf;
using namespace spf::vm;

ClassDesc *TypeTable::addClass(std::string Name) {
  auto Cls = std::make_unique<ClassDesc>(
      static_cast<uint32_t>(Classes.size()), std::move(Name));
  Classes.push_back(std::move(Cls));
  return Classes.back().get();
}

const FieldDesc *TypeTable::addField(ClassDesc *Cls, std::string Name,
                                     ir::Type Ty) {
  unsigned Align = ir::storageSize(Ty);
  unsigned Offset = (Cls->Size + Align - 1) / Align * Align;
  auto Field = std::make_unique<FieldDesc>();
  Field->Name = std::move(Name);
  Field->Ty = Ty;
  Field->Offset = Offset;
  Field->Parent = Cls;
  Cls->Size = Offset + ir::storageSize(Ty);
  Cls->Fields.push_back(std::move(Field));
  return Cls->Fields.back().get();
}

const ClassDesc *TypeTable::findClass(const std::string &Name) const {
  for (const auto &Cls : Classes)
    if (Cls->name() == Name)
      return Cls.get();
  return nullptr;
}
