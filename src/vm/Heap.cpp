//===- vm/Heap.cpp --------------------------------------------------------===//

#include "vm/Heap.h"

#include "support/ErrorHandling.h"

using namespace spf;
using namespace spf::vm;

static uint64_t alignUp8(uint64_t N) { return (N + 7) & ~7ull; }

Heap::Heap(const TypeTable &Types, Config Cfg)
    : Types(Types), Cfg(Cfg), Storage(Cfg.HeapBytes),
      StaticsStorage(Cfg.StaticsBytes) {
  assert(Cfg.StaticsBase + Cfg.StaticsBytes <= Cfg.HeapBase &&
         "statics area must not overlap the heap");
}

uint8_t *Heap::ptr(Addr A) {
  if (A >= Cfg.HeapBase) {
    assert(A - Cfg.HeapBase < Cfg.HeapBytes && "heap address out of range");
    return Storage.data() + (A - Cfg.HeapBase);
  }
  assert(A >= Cfg.StaticsBase && A - Cfg.StaticsBase < Cfg.StaticsBytes &&
         "address in neither heap nor statics area");
  return StaticsStorage.data() + (A - Cfg.StaticsBase);
}

const uint8_t *Heap::ptr(Addr A) const {
  return const_cast<Heap *>(this)->ptr(A);
}

void Heap::formatFiller(Addr A, uint64_t Size) {
  assert(Size >= ObjectHeaderSize && (Size & 7) == 0 && "unparseable hole");
  uint64_t Length = (Size - ObjectHeaderSize) / 8;
  std::memset(ptr(A), 0, ObjectHeaderSize);
  uint32_t Id = static_cast<uint32_t>(ir::Type::I64);
  uint32_t Flags = HF_IsArray;
  std::memcpy(ptr(A), &Id, 4);
  std::memcpy(ptr(A) + 4, &Flags, 4);
  std::memcpy(ptr(A) + ArrayLengthOffset, &Length, 8);
}

void Heap::addFreeBlock(uint64_t Offset, uint64_t Size) {
  formatFiller(Cfg.HeapBase + Offset, Size);
  FreeList.push_back({Offset, Size});
  FreeBytes += Size;
}

Addr Heap::allocFromFreeList(uint64_t Size) {
  for (size_t I = 0, E = FreeList.size(); I != E; ++I) {
    FreeBlock &B = FreeList[I];
    if (B.Size < Size)
      continue;
    uint64_t Rest = B.Size - Size;
    // The remainder must itself be a formattable filler (or nothing);
    // a sub-header sliver would break linear heap walks.
    if (Rest != 0 && Rest < ObjectHeaderSize)
      continue;
    uint64_t Offset = B.Offset;
    FreeBytes -= Size;
    if (Rest != 0) {
      B.Offset = Offset + Size;
      B.Size = Rest;
      formatFiller(Cfg.HeapBase + B.Offset, Rest);
    } else {
      FreeList[I] = FreeList.back();
      FreeList.pop_back();
    }
    return Cfg.HeapBase + Offset;
  }
  return 0;
}

Addr Heap::allocObject(const ClassDesc &Cls) {
  uint64_t Size = alignUp8(Cls.instanceSize());
  Addr A = 0;
  if (!FreeList.empty())
    A = allocFromFreeList(Size);
  if (!A) {
    if (Top + Size > Cfg.HeapBytes)
      return 0;
    A = Cfg.HeapBase + Top;
    Top += Size;
  }
  ++NumAllocs;
  std::memset(ptr(A), 0, Size);
  uint32_t Id = Cls.id();
  std::memcpy(ptr(A), &Id, 4);
  return A;
}

Addr Heap::allocArray(ir::Type ElemTy, uint64_t Length) {
  uint64_t Size =
      alignUp8(ObjectHeaderSize + Length * ir::storageSize(ElemTy));
  Addr A = 0;
  if (!FreeList.empty())
    A = allocFromFreeList(Size);
  if (!A) {
    if (Top + Size > Cfg.HeapBytes)
      return 0;
    A = Cfg.HeapBase + Top;
    Top += Size;
  }
  ++NumAllocs;
  std::memset(ptr(A), 0, Size);
  uint32_t Id = static_cast<uint32_t>(ElemTy);
  uint32_t Flags = HF_IsArray;
  std::memcpy(ptr(A), &Id, 4);
  std::memcpy(ptr(A) + 4, &Flags, 4);
  std::memcpy(ptr(A) + ArrayLengthOffset, &Length, 8);
  return A;
}

Addr Heap::allocStatic(ir::Type Ty) {
  uint64_t Size = ir::storageSize(Ty);
  uint64_t Offset = (StaticsTop + Size - 1) / Size * Size;
  if (Offset + Size > Cfg.StaticsBytes)
    reportFatalError("statics area exhausted");
  StaticsTop = Offset + Size;
  Addr A = Cfg.StaticsBase + Offset;
  if (Ty == ir::Type::Ref)
    StaticRefSlots.push_back(A);
  return A;
}

uint64_t Heap::load(Addr A, ir::Type Ty) const {
  if (Ty == ir::Type::I32) {
    int32_t V;
    std::memcpy(&V, ptr(A), 4);
    return static_cast<uint64_t>(static_cast<int64_t>(V));
  }
  uint64_t V;
  std::memcpy(&V, ptr(A), 8);
  return V;
}

void Heap::store(Addr A, ir::Type Ty, uint64_t Raw) {
  if (Ty == ir::Type::I32) {
    int32_t V = static_cast<int32_t>(Raw);
    std::memcpy(ptr(A), &V, 4);
    return;
  }
  std::memcpy(ptr(A), &Raw, 8);
}

bool Heap::isArray(Addr Obj) const {
  uint32_t Flags;
  std::memcpy(&Flags, ptr(Obj) + 4, 4);
  return Flags & HF_IsArray;
}

uint32_t Heap::descId(Addr Obj) const {
  uint32_t Id;
  std::memcpy(&Id, ptr(Obj), 4);
  return Id;
}

uint64_t Heap::arrayLength(Addr Obj) const {
  assert(isArray(Obj) && "arrayLength on a non-array");
  uint64_t Len;
  std::memcpy(&Len, ptr(Obj) + ArrayLengthOffset, 8);
  return Len;
}

ir::Type Heap::arrayElemType(Addr Obj) const {
  assert(isArray(Obj) && "arrayElemType on a non-array");
  return static_cast<ir::Type>(descId(Obj));
}

uint64_t Heap::objectSize(Addr Obj) const {
  if (isArray(Obj))
    return alignUp8(ObjectHeaderSize +
                    arrayLength(Obj) * ir::storageSize(arrayElemType(Obj)));
  const ClassDesc *Cls = Types.classById(descId(Obj));
  assert(Cls && "object with unknown class descriptor");
  return alignUp8(Cls->instanceSize());
}

bool Heap::marked(Addr Obj) const {
  uint32_t Flags;
  std::memcpy(&Flags, ptr(Obj) + 4, 4);
  return Flags & HF_Marked;
}

void Heap::setMarked(Addr Obj, bool M) {
  uint32_t Flags;
  std::memcpy(&Flags, ptr(Obj) + 4, 4);
  Flags = M ? (Flags | HF_Marked) : (Flags & ~HF_Marked);
  std::memcpy(ptr(Obj) + 4, &Flags, 4);
}

bool Heap::isObjectStart(Addr A) const {
  for (Addr Obj = Cfg.HeapBase, End = heapTop(); Obj < End;
       Obj += objectSize(Obj)) {
    if (Obj == A)
      return true;
    if (Obj > A)
      return false;
  }
  return false;
}
