//===- vm/Heap.h - Simulated managed heap -----------------------*- C++ -*-===//
///
/// \file
/// The simulated Java heap: a contiguous arena of simulated 64-bit
/// addresses with bump-pointer allocation, a statics area, and typed slot
/// accessors. Object references *are* simulated addresses, so stride
/// patterns between objects are plain address arithmetic, exactly as on
/// the paper's real JVM heap.
///
//===----------------------------------------------------------------------===//

#ifndef SPF_VM_HEAP_H
#define SPF_VM_HEAP_H

#include "vm/TypeTable.h"

#include <cstring>
#include <vector>

namespace spf {
namespace vm {

/// Offsets and flag bits of the 16-byte object header.
enum HeaderFlags : uint32_t {
  HF_IsArray = 1u << 0,
  HF_Marked = 1u << 1,
};

/// Heap sizing and simulated address-space layout.
struct HeapConfig {
  /// Total heap size in bytes (the paper sets 128 MB; tests use less).
  uint64_t HeapBytes = 64ull << 20;
  /// Base simulated address of the heap.
  Addr HeapBase = 0x100000000ull;
  /// Size and base of the statics area (class variables).
  uint64_t StaticsBytes = 1ull << 20;
  Addr StaticsBase = 0x10000000ull;
};

/// A bump-allocated, garbage-collected simulated heap.
class Heap {
public:
  using Config = HeapConfig;

  explicit Heap(const TypeTable &Types, Config Cfg = Config());

  Heap(const Heap &) = delete;
  Heap &operator=(const Heap &) = delete;

  const TypeTable &types() const { return Types; }

  /// Allocates an instance of \p Cls with zeroed fields.
  /// \returns the object address, or 0 when the heap is exhausted (the
  /// caller should run a GC and retry).
  Addr allocObject(const ClassDesc &Cls);

  /// Allocates an array of \p Length elements of \p ElemTy, zero-filled.
  Addr allocArray(ir::Type ElemTy, uint64_t Length);

  /// Allocates one static variable slot and returns its address.
  Addr allocStatic(ir::Type Ty);

  // -- Typed slot access ---------------------------------------------------

  /// Loads the raw 64-bit slot value at \p A of type \p Ty (i32 values are
  /// sign-extended).
  uint64_t load(Addr A, ir::Type Ty) const;

  /// Stores \p Raw at \p A as a value of type \p Ty.
  void store(Addr A, ir::Type Ty, uint64_t Raw);

  // -- Header access -------------------------------------------------------

  bool isArray(Addr Obj) const;
  uint32_t descId(Addr Obj) const;
  uint64_t arrayLength(Addr Obj) const;
  ir::Type arrayElemType(Addr Obj) const;

  /// Address of element \p I of array \p Obj.
  Addr elemAddr(Addr Obj, uint64_t I) const {
    return Obj + ObjectHeaderSize + I * ir::storageSize(arrayElemType(Obj));
  }

  /// Allocation size of the object or array at \p Obj, header included and
  /// rounded to 8 bytes.
  uint64_t objectSize(Addr Obj) const;

  bool marked(Addr Obj) const;
  void setMarked(Addr Obj, bool M);

  // -- Address classification ----------------------------------------------

  bool isHeapAddress(Addr A) const {
    return A >= Cfg.HeapBase && A < Cfg.HeapBase + Top;
  }
  bool isStaticAddress(Addr A) const {
    return A >= Cfg.StaticsBase && A < Cfg.StaticsBase + StaticsTop;
  }
  /// True when a \p Size -byte access at \p A touches mapped memory; this
  /// is the guard check of a guarded (speculative) load.
  bool isValidAccess(Addr A, unsigned Size) const {
    return (isHeapAddress(A) && isHeapAddress(A + Size - 1)) ||
           (isStaticAddress(A) && isStaticAddress(A + Size - 1));
  }

  /// True when \p A is the base address of an allocated heap object.
  /// (Linear check; debugging/tests only.)
  bool isObjectStart(Addr A) const;

  // -- Layout queries ------------------------------------------------------

  Addr heapBase() const { return Cfg.HeapBase; }
  /// First free address (allocation frontier).
  Addr heapTop() const { return Cfg.HeapBase + Top; }
  /// Allocation-frontier offset. After a non-compacting collection this
  /// still counts in-place holes; subtract freeListBytes() for live+filler
  /// occupancy.
  uint64_t bytesUsed() const { return Top; }
  uint64_t bytesFree() const { return Cfg.HeapBytes - Top + FreeBytes; }
  uint64_t allocationCount() const { return NumAllocs; }

  /// Ref-typed static slots; the GC treats these as roots.
  const std::vector<Addr> &staticRefSlots() const { return StaticRefSlots; }

  // -- Free-list support (non-compacting collection) -----------------------
  //
  // The mark-sweep GC variant reclaims garbage in place: each dead range
  // is formatted as an unreachable filler array (so linear heap walks
  // still parse) and registered here. Allocation prefers free blocks
  // (first fit) before bumping the frontier. Compacting variants clear
  // the list — after objects move, every recorded hole is meaningless.

  /// One reusable hole inside [heapBase, heapTop).
  struct FreeBlock {
    uint64_t Offset = 0; ///< Byte offset from heapBase.
    uint64_t Size = 0;   ///< Multiple of 8, >= ObjectHeaderSize.
  };

  const std::vector<FreeBlock> &freeList() const { return FreeList; }
  uint64_t freeListBytes() const { return FreeBytes; }

private:
  friend class GarbageCollector;

  /// Formats \p Size bytes at \p A as an unreachable I64 filler array so
  /// the heap stays linearly parseable. \p Size must be a multiple of 8
  /// and >= ObjectHeaderSize.
  void formatFiller(Addr A, uint64_t Size);

  /// Registers a hole (formats it as filler first). GC-only.
  void addFreeBlock(uint64_t Offset, uint64_t Size);

  /// Drops every recorded hole (compacting collection invalidates them).
  void clearFreeList() {
    FreeList.clear();
    FreeBytes = 0;
  }

  /// First-fit allocation from the free list; 0 when no block fits.
  /// Splitting keeps remainders parseable (never leaves a sub-header
  /// sliver), so a block is only taken when the cut is clean.
  Addr allocFromFreeList(uint64_t Size);

  uint8_t *ptr(Addr A);
  const uint8_t *ptr(Addr A) const;

  /// Resets the allocation frontier (compaction support).
  void setTop(uint64_t NewTop) { Top = NewTop; }

  const TypeTable &Types;
  Config Cfg;
  std::vector<uint8_t> Storage;
  std::vector<uint8_t> StaticsStorage;
  uint64_t Top = 0;
  uint64_t StaticsTop = 0;
  uint64_t NumAllocs = 0;
  std::vector<Addr> StaticRefSlots;
  std::vector<FreeBlock> FreeList;
  uint64_t FreeBytes = 0;
};

} // namespace vm
} // namespace spf

#endif // SPF_VM_HEAP_H
