//===- vm/TypeTable.h - Class and field descriptors -------------*- C++ -*-===//
///
/// \file
/// The simulated JVM's class metadata: field descriptors with fixed byte
/// offsets, class descriptors with instance sizes, and the table that owns
/// them. Object layout mirrors a production JVM closely enough for stride
/// patterns to be a property of allocation order and field offsets, exactly
/// as the paper requires.
///
//===----------------------------------------------------------------------===//

#ifndef SPF_VM_TYPETABLE_H
#define SPF_VM_TYPETABLE_H

#include "ir/Type.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace spf {
namespace vm {

/// A simulated heap address. Address 0 is the null reference.
using Addr = uint64_t;

/// Size in bytes of the header preceding every object's fields and every
/// array's elements (descriptor id, flags, and array length).
constexpr unsigned ObjectHeaderSize = 16;

/// Byte offset of the array-length word inside the header. The IR's
/// `arraylength` instruction loads from this offset, matching the paper's
/// observation that array bound checks generate header loads (Table 1).
constexpr unsigned ArrayLengthOffset = 8;

class ClassDesc;

/// Describes one instance field of a class.
struct FieldDesc {
  std::string Name;
  ir::Type Ty = ir::Type::I32;
  /// Byte offset of the field from the object base (header included).
  unsigned Offset = 0;
  /// The class this field belongs to (set by TypeTable::addClass).
  const ClassDesc *Parent = nullptr;
};

/// Describes a class: a name and a fixed field layout.
class ClassDesc {
public:
  ClassDesc(uint32_t Id, std::string Name) : Id(Id), Name(std::move(Name)) {}

  uint32_t id() const { return Id; }
  const std::string &name() const { return Name; }

  /// Total allocation size of an instance, header included.
  unsigned instanceSize() const { return Size; }

  const std::vector<std::unique_ptr<FieldDesc>> &fields() const {
    return Fields;
  }

  /// Returns the field named \p FieldName, or null if absent.
  const FieldDesc *findField(const std::string &FieldName) const {
    for (const auto &F : Fields)
      if (F->Name == FieldName)
        return F.get();
    return nullptr;
  }

private:
  friend class TypeTable;

  uint32_t Id;
  std::string Name;
  unsigned Size = ObjectHeaderSize;
  std::vector<std::unique_ptr<FieldDesc>> Fields;
};

/// Owns all class descriptors of a simulated program.
///
/// Classes are built incrementally: create a class, append its fields (each
/// field is laid out at the next naturally aligned offset), then allocate
/// instances through vm::Heap.
class TypeTable {
public:
  TypeTable() = default;
  TypeTable(const TypeTable &) = delete;
  TypeTable &operator=(const TypeTable &) = delete;

  /// Creates a new class with no fields yet.
  ClassDesc *addClass(std::string Name);

  /// Appends a field to \p Cls at the next aligned offset and returns its
  /// descriptor. Must be called before any instance is allocated.
  const FieldDesc *addField(ClassDesc *Cls, std::string Name, ir::Type Ty);

  /// Returns the class with descriptor id \p Id.
  const ClassDesc *classById(uint32_t Id) const {
    return Id < Classes.size() ? Classes[Id].get() : nullptr;
  }

  /// Returns the class named \p Name, or null.
  const ClassDesc *findClass(const std::string &Name) const;

  size_t numClasses() const { return Classes.size(); }

private:
  std::vector<std::unique_ptr<ClassDesc>> Classes;
};

} // namespace vm
} // namespace spf

#endif // SPF_VM_TYPETABLE_H
