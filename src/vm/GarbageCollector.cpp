//===- vm/GarbageCollector.cpp --------------------------------------------===//

#include "vm/GarbageCollector.h"

#include "support/SplitMix64.h"

#include <unordered_map>
#include <unordered_set>

using namespace spf;
using namespace spf::vm;

namespace {

/// Applies \p Fn to the address of every reference slot inside the object
/// at \p Obj (class ref fields, or all elements of a ref array).
template <typename Callback>
void forEachRefSlot(const Heap &H, Addr Obj, Callback Fn) {
  if (H.isArray(Obj)) {
    if (H.arrayElemType(Obj) != ir::Type::Ref)
      return;
    for (uint64_t I = 0, E = H.arrayLength(Obj); I != E; ++I)
      Fn(Obj + ObjectHeaderSize + I * 8);
    return;
  }
  const ClassDesc *Cls = H.types().classById(H.descId(Obj));
  assert(Cls && "live object with unknown class");
  for (const auto &F : Cls->fields())
    if (F->Ty == ir::Type::Ref)
      Fn(Obj + F->Offset);
}

} // namespace

const char *vm::gcVariantName(GcVariant V) {
  switch (V) {
  case GcVariant::SlidingCompact:
    return "sliding-compact";
  case GcVariant::MarkSweep:
    return "mark-sweep";
  case GcVariant::AddressShuffle:
    return "address-shuffle";
  case GcVariant::PromotionOrder:
    return "promotion-order";
  }
  return "?";
}

std::optional<GcVariant> vm::parseGcVariant(const std::string &Name) {
  if (Name == "sliding-compact")
    return GcVariant::SlidingCompact;
  if (Name == "mark-sweep")
    return GcVariant::MarkSweep;
  if (Name == "address-shuffle")
    return GcVariant::AddressShuffle;
  if (Name == "promotion-order")
    return GcVariant::PromotionOrder;
  return std::nullopt;
}

void GarbageCollector::pollCheckpoint() {
  if (++WorkSinceCheckpoint >= CheckpointInterval) {
    WorkSinceCheckpoint = 0;
    if (Checkpoint)
      Checkpoint();
  }
}

GcStats GarbageCollector::sweepInPlace(Heap &H) {
  // Non-compacting: live objects stay put; maximal dead runs (previous
  // fillers included — they are unreachable by construction) coalesce
  // into free-list holes. The deadline watchdog must keep firing here
  // exactly as in the compacting phases (tests/shutdown_test.cpp).
  GcStats Stats;
  Addr HoleStart = 0;
  uint64_t HoleBytes = 0;
  auto FlushHole = [&] {
    if (HoleBytes) {
      H.addFreeBlock(HoleStart - H.heapBase(), HoleBytes);
      Stats.ReclaimedBytes += HoleBytes;
      HoleBytes = 0;
    }
  };
  for (Addr Obj = H.heapBase(), End = H.heapTop(); Obj < End;) {
    pollCheckpoint();
    uint64_t Size = H.objectSize(Obj);
    if (H.marked(Obj)) {
      H.setMarked(Obj, false);
      ++Stats.LiveObjects;
      Stats.LiveBytes += Size;
      FlushHole();
    } else {
      if (!HoleBytes)
        HoleStart = Obj;
      HoleBytes += Size;
    }
    Obj += Size;
  }
  FlushHole();
  return Stats;
}

GcStats GarbageCollector::collect(Heap &H, const std::vector<Addr *> &Roots) {
  ++Collections;
  GcStats Stats;

  // Any collection invalidates the recorded holes: compacting variants
  // move objects over them, and mark-sweep rebuilds the list from this
  // cycle's dead runs.
  H.clearFreeList();

  // Index object starts so stray (non-reference) bit patterns in ref slots
  // can be rejected instead of corrupting the trace.
  std::unordered_set<Addr> Starts;
  for (Addr Obj = H.heapBase(), End = H.heapTop(); Obj < End;
       Obj += H.objectSize(Obj)) {
    Starts.insert(Obj);
    pollCheckpoint();
  }

  auto IsObjectRef = [&](Addr A) {
    return A && H.isHeapAddress(A) && Starts.count(A);
  };

  // -- Mark ---------------------------------------------------------------
  // Discovery order doubles as the PromotionOrder placement sequence.
  std::vector<Addr> Work;
  std::vector<Addr> Discovery;
  const bool KeepDiscovery = Variant == GcVariant::PromotionOrder;
  auto MarkRoot = [&](Addr A) {
    if (IsObjectRef(A) && !H.marked(A)) {
      H.setMarked(A, true);
      Work.push_back(A);
      if (KeepDiscovery)
        Discovery.push_back(A);
    }
  };

  for (Addr *Slot : Roots)
    MarkRoot(*Slot);
  for (Addr Slot : H.staticRefSlots())
    MarkRoot(H.load(Slot, ir::Type::Ref));

  while (!Work.empty()) {
    Addr Obj = Work.back();
    Work.pop_back();
    forEachRefSlot(H, Obj, [&](Addr SlotAddr) {
      MarkRoot(H.load(SlotAddr, ir::Type::Ref));
    });
    pollCheckpoint();
  }

  if (Variant == GcVariant::MarkSweep)
    return sweepInPlace(H);

  // -- Compute forwarding addresses ----------------------------------------
  // The placement sequence decides what survives of the paper's stride
  // property: address order (bump-assigned) preserves live-object order,
  // the other sequences deliberately do not.
  std::vector<Addr> Order;
  if (KeepDiscovery) {
    Order = std::move(Discovery);
  } else {
    for (Addr Obj = H.heapBase(), End = H.heapTop(); Obj < End;
         Obj += H.objectSize(Obj)) {
      pollCheckpoint();
      if (H.marked(Obj))
        Order.push_back(Obj);
    }
  }
  if (Variant == GcVariant::AddressShuffle && Order.size() > 1) {
    // Windowed Fisher-Yates, deterministic in (seed, collection count):
    // strides break inside every window while the heap's coarse layout
    // (pages, working set) stays near the compacted order.
    SplitMix64 Rng(ShuffleSeed ^ (Collections * 0x9e3779b97f4a7c15ull));
    for (size_t W0 = 0; W0 < Order.size(); W0 += ShuffleWindow) {
      size_t WE = std::min(W0 + ShuffleWindow, Order.size());
      for (size_t I = WE - 1; I > W0; --I) {
        std::swap(Order[I], Order[W0 + Rng.nextBelow(I - W0 + 1)]);
        pollCheckpoint();
      }
    }
  }

  std::unordered_map<Addr, Addr> Forward;
  Addr NextFree = H.heapBase();
  for (Addr Obj : Order) {
    pollCheckpoint();
    Forward[Obj] = NextFree;
    NextFree += H.objectSize(Obj);
    ++Stats.LiveObjects;
  }
  Stats.LiveBytes = NextFree - H.heapBase();
  Stats.ReclaimedBytes = (H.heapTop() - H.heapBase()) - Stats.LiveBytes;

  auto Relocate = [&](Addr A) {
    auto It = Forward.find(A);
    return It == Forward.end() ? A : It->second;
  };

  // -- Fix references in live objects, statics, and roots ------------------
  for (Addr Obj = H.heapBase(), End = H.heapTop(); Obj < End;
       Obj += H.objectSize(Obj)) {
    pollCheckpoint();
    if (!H.marked(Obj))
      continue;
    forEachRefSlot(H, Obj, [&](Addr SlotAddr) {
      Addr V = H.load(SlotAddr, ir::Type::Ref);
      if (IsObjectRef(V))
        H.store(SlotAddr, ir::Type::Ref, Relocate(V));
    });
  }
  for (Addr Slot : H.staticRefSlots()) {
    Addr V = H.load(Slot, ir::Type::Ref);
    if (IsObjectRef(V))
      H.store(Slot, ir::Type::Ref, Relocate(V));
  }
  for (Addr *Slot : Roots)
    if (IsObjectRef(*Slot))
      *Slot = Relocate(*Slot);

  if (Variant == GcVariant::SlidingCompact) {
    // -- Slide live objects down (ascending order; moves never overlap
    //    destructively) and clear marks ------------------------------------
    for (Addr Obj = H.heapBase(), End = H.heapTop(); Obj < End;) {
      pollCheckpoint();
      // Cache the size: once the object slides down over its old storage
      // the header at the old address is no longer readable.
      uint64_t Size = H.objectSize(Obj);
      if (H.marked(Obj)) {
        H.setMarked(Obj, false);
        Addr To = Forward[Obj];
        if (To != Obj)
          std::memmove(H.ptr(To), H.ptr(Obj), Size);
      }
      Obj += Size;
    }
  } else {
    // -- Reordering placement: destinations can overlap sources in either
    //    direction, so stage the live image in a scratch buffer ------------
    std::vector<uint8_t> Scratch(Stats.LiveBytes);
    for (Addr Obj : Order) {
      pollCheckpoint();
      uint64_t Size = H.objectSize(Obj);
      uint64_t Off = Forward[Obj] - H.heapBase();
      std::memcpy(Scratch.data() + Off, H.ptr(Obj), Size);
      uint32_t Flags;
      std::memcpy(&Flags, Scratch.data() + Off + 4, 4);
      Flags &= ~HF_Marked;
      std::memcpy(Scratch.data() + Off + 4, &Flags, 4);
    }
    if (Stats.LiveBytes)
      std::memcpy(H.ptr(H.heapBase()), Scratch.data(), Stats.LiveBytes);
  }

  H.setTop(NextFree - H.heapBase());
  return Stats;
}
