//===- vm/GarbageCollector.cpp --------------------------------------------===//

#include "vm/GarbageCollector.h"

#include <unordered_map>
#include <unordered_set>

using namespace spf;
using namespace spf::vm;

namespace {

/// Applies \p Fn to the address of every reference slot inside the object
/// at \p Obj (class ref fields, or all elements of a ref array).
template <typename Callback>
void forEachRefSlot(const Heap &H, Addr Obj, Callback Fn) {
  if (H.isArray(Obj)) {
    if (H.arrayElemType(Obj) != ir::Type::Ref)
      return;
    for (uint64_t I = 0, E = H.arrayLength(Obj); I != E; ++I)
      Fn(Obj + ObjectHeaderSize + I * 8);
    return;
  }
  const ClassDesc *Cls = H.types().classById(H.descId(Obj));
  assert(Cls && "live object with unknown class");
  for (const auto &F : Cls->fields())
    if (F->Ty == ir::Type::Ref)
      Fn(Obj + F->Offset);
}

} // namespace

void GarbageCollector::pollCheckpoint() {
  if (++WorkSinceCheckpoint >= CheckpointInterval) {
    WorkSinceCheckpoint = 0;
    if (Checkpoint)
      Checkpoint();
  }
}

GcStats GarbageCollector::collect(Heap &H, const std::vector<Addr *> &Roots) {
  ++Collections;
  GcStats Stats;

  // Index object starts so stray (non-reference) bit patterns in ref slots
  // can be rejected instead of corrupting the trace.
  std::unordered_set<Addr> Starts;
  for (Addr Obj = H.heapBase(), End = H.heapTop(); Obj < End;
       Obj += H.objectSize(Obj)) {
    Starts.insert(Obj);
    pollCheckpoint();
  }

  auto IsObjectRef = [&](Addr A) {
    return A && H.isHeapAddress(A) && Starts.count(A);
  };

  // -- Mark ---------------------------------------------------------------
  std::vector<Addr> Work;
  auto MarkRoot = [&](Addr A) {
    if (IsObjectRef(A) && !H.marked(A)) {
      H.setMarked(A, true);
      Work.push_back(A);
    }
  };

  for (Addr *Slot : Roots)
    MarkRoot(*Slot);
  for (Addr Slot : H.staticRefSlots())
    MarkRoot(H.load(Slot, ir::Type::Ref));

  while (!Work.empty()) {
    Addr Obj = Work.back();
    Work.pop_back();
    forEachRefSlot(H, Obj, [&](Addr SlotAddr) {
      MarkRoot(H.load(SlotAddr, ir::Type::Ref));
    });
    pollCheckpoint();
  }

  // -- Compute sliding-compaction forwarding addresses ---------------------
  // Scanning in address order and bump-assigning new addresses preserves
  // the relative order of live objects (the property the paper relies on
  // for stride stability).
  std::unordered_map<Addr, Addr> Forward;
  Addr NextFree = H.heapBase();
  for (Addr Obj = H.heapBase(), End = H.heapTop(); Obj < End;
       Obj += H.objectSize(Obj)) {
    pollCheckpoint();
    if (!H.marked(Obj))
      continue;
    Forward[Obj] = NextFree;
    NextFree += H.objectSize(Obj);
    ++Stats.LiveObjects;
  }
  Stats.LiveBytes = NextFree - H.heapBase();
  Stats.ReclaimedBytes = (H.heapTop() - H.heapBase()) - Stats.LiveBytes;

  auto Relocate = [&](Addr A) {
    auto It = Forward.find(A);
    return It == Forward.end() ? A : It->second;
  };

  // -- Fix references in live objects, statics, and roots ------------------
  for (Addr Obj = H.heapBase(), End = H.heapTop(); Obj < End;
       Obj += H.objectSize(Obj)) {
    pollCheckpoint();
    if (!H.marked(Obj))
      continue;
    forEachRefSlot(H, Obj, [&](Addr SlotAddr) {
      Addr V = H.load(SlotAddr, ir::Type::Ref);
      if (IsObjectRef(V))
        H.store(SlotAddr, ir::Type::Ref, Relocate(V));
    });
  }
  for (Addr Slot : H.staticRefSlots()) {
    Addr V = H.load(Slot, ir::Type::Ref);
    if (IsObjectRef(V))
      H.store(Slot, ir::Type::Ref, Relocate(V));
  }
  for (Addr *Slot : Roots)
    if (IsObjectRef(*Slot))
      *Slot = Relocate(*Slot);

  // -- Slide live objects down (ascending order; moves never overlap
  //    destructively) and clear marks --------------------------------------
  for (Addr Obj = H.heapBase(), End = H.heapTop(); Obj < End;) {
    pollCheckpoint();
    // Cache the size: once the object slides down over its old storage the
    // header at the old address is no longer readable.
    uint64_t Size = H.objectSize(Obj);
    if (H.marked(Obj)) {
      H.setMarked(Obj, false);
      Addr To = Forward[Obj];
      if (To != Obj)
        std::memmove(H.ptr(To), H.ptr(Obj), Size);
    }
    Obj += Size;
  }

  H.setTop(NextFree - H.heapBase());
  return Stats;
}
