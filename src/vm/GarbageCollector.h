//===- vm/GarbageCollector.h - Mark + sliding compaction --------*- C++ -*-===//
///
/// \file
/// Mark-and-sweep collector with sliding compaction, modeled on the JVM
/// the paper evaluates: "Live objects are packed by sliding compaction,
/// which does not change their internal order on the heap. Thus, the
/// garbage collector usually preserves constant strides among the live
/// objects." (Section 4). Preserving address order is therefore a tested
/// invariant of this collector.
///
//===----------------------------------------------------------------------===//

#ifndef SPF_VM_GARBAGECOLLECTOR_H
#define SPF_VM_GARBAGECOLLECTOR_H

#include "vm/Heap.h"

#include <functional>
#include <optional>

namespace spf {
namespace vm {

/// Statistics of one collection.
struct GcStats {
  uint64_t LiveObjects = 0;
  uint64_t LiveBytes = 0;
  uint64_t ReclaimedBytes = 0;
};

/// How a collection treats live-object placement. SlidingCompact is the
/// paper's JVM (and this repo's historical behavior): address-order
/// compaction that preserves allocation-order strides. The other
/// variants deliberately perturb placement so inspection-derived stride
/// plans go stale — the failure mode the prefetch-health governor
/// (opt/Governor.h) exists to detect and recover from.
enum class GcVariant : uint8_t {
  /// Mark + sliding compaction; live order and pitch preserved.
  SlidingCompact,
  /// Non-compacting mark-sweep: nothing moves, dead ranges become
  /// free-list holes (strides keep their pre-GC irregularity).
  MarkSweep,
  /// Compacting, but live objects land in a seeded windowed shuffle of
  /// their address order: stride plans break while page/working-set
  /// locality stays close to the compacted layout.
  AddressShuffle,
  /// Compacting in mark-discovery (promotion) order rather than address
  /// order — models a copying collector's traversal-order placement.
  PromotionOrder,
};

/// Stable lowercase names: "sliding-compact", "mark-sweep",
/// "address-shuffle", "promotion-order".
const char *gcVariantName(GcVariant V);
/// Inverse of gcVariantName; nullopt for unknown strings.
std::optional<GcVariant> parseGcVariant(const std::string &Name);

/// Stop-the-world mark collector with selectable placement policy
/// (sliding compaction by default).
class GarbageCollector {
public:
  /// Collects \p H. \p Roots are the mutator's reference slots (stack
  /// slots, handles); ref-typed statics are picked up automatically. Root
  /// slots holding null or non-heap values are ignored; live slots are
  /// updated in place when their referents move.
  GcStats collect(Heap &H, const std::vector<Addr *> &Roots);

  /// Installs a cooperative checkpoint polled periodically inside every
  /// collection phase (indexing, marking, forwarding, fixup, sliding).
  /// The interpreter wires its wall-clock watchdog here: without it, a
  /// cell stuck in GC on a huge heap could never observe its deadline
  /// (the interpreter only checks between retired instructions). The
  /// hook may throw; collect() is abandoned mid-phase in that case, so
  /// only unwind into code that discards the heap (the harness does).
  void setCheckpoint(std::function<void()> Fn) {
    Checkpoint = std::move(Fn);
  }

  uint64_t collectionCount() const { return Collections; }

  /// Selects the placement policy for subsequent collections. \p Seed
  /// feeds the AddressShuffle permutation (mixed with the collection
  /// count, so successive shuffles differ deterministically).
  void setVariant(GcVariant V, uint64_t Seed = 0) {
    Variant = V;
    ShuffleSeed = Seed;
  }
  GcVariant variant() const { return Variant; }

  /// AddressShuffle permutes live objects within windows of this many
  /// objects. Small windows break stride predictions while keeping the
  /// working set's page locality close to compacted order.
  void setShuffleWindow(unsigned N) { ShuffleWindow = N ? N : 1; }

private:
  /// Runs the checkpoint every CheckpointInterval pieces of work.
  void pollCheckpoint();

  /// Non-compacting sweep: dead runs become free-list holes in \p H.
  GcStats sweepInPlace(Heap &H);

  /// Loop iterations between checkpoint polls; matches the interpreter's
  /// per-4096-retired-instructions cadence.
  static constexpr uint64_t CheckpointInterval = 4096;

  uint64_t Collections = 0;
  uint64_t WorkSinceCheckpoint = 0;
  std::function<void()> Checkpoint;
  GcVariant Variant = GcVariant::SlidingCompact;
  uint64_t ShuffleSeed = 0;
  unsigned ShuffleWindow = 64;
};

} // namespace vm
} // namespace spf

#endif // SPF_VM_GARBAGECOLLECTOR_H
