//===- vm/GarbageCollector.h - Mark + sliding compaction --------*- C++ -*-===//
///
/// \file
/// Mark-and-sweep collector with sliding compaction, modeled on the JVM
/// the paper evaluates: "Live objects are packed by sliding compaction,
/// which does not change their internal order on the heap. Thus, the
/// garbage collector usually preserves constant strides among the live
/// objects." (Section 4). Preserving address order is therefore a tested
/// invariant of this collector.
///
//===----------------------------------------------------------------------===//

#ifndef SPF_VM_GARBAGECOLLECTOR_H
#define SPF_VM_GARBAGECOLLECTOR_H

#include "vm/Heap.h"

namespace spf {
namespace vm {

/// Statistics of one collection.
struct GcStats {
  uint64_t LiveObjects = 0;
  uint64_t LiveBytes = 0;
  uint64_t ReclaimedBytes = 0;
};

/// Stop-the-world mark + sliding-compaction collector.
class GarbageCollector {
public:
  /// Collects \p H. \p Roots are the mutator's reference slots (stack
  /// slots, handles); ref-typed statics are picked up automatically. Root
  /// slots holding null or non-heap values are ignored; live slots are
  /// updated in place when their referents move.
  GcStats collect(Heap &H, const std::vector<Addr *> &Roots);

  uint64_t collectionCount() const { return Collections; }

private:
  uint64_t Collections = 0;
};

} // namespace vm
} // namespace spf

#endif // SPF_VM_GARBAGECOLLECTOR_H
