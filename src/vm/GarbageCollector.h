//===- vm/GarbageCollector.h - Mark + sliding compaction --------*- C++ -*-===//
///
/// \file
/// Mark-and-sweep collector with sliding compaction, modeled on the JVM
/// the paper evaluates: "Live objects are packed by sliding compaction,
/// which does not change their internal order on the heap. Thus, the
/// garbage collector usually preserves constant strides among the live
/// objects." (Section 4). Preserving address order is therefore a tested
/// invariant of this collector.
///
//===----------------------------------------------------------------------===//

#ifndef SPF_VM_GARBAGECOLLECTOR_H
#define SPF_VM_GARBAGECOLLECTOR_H

#include "vm/Heap.h"

#include <functional>

namespace spf {
namespace vm {

/// Statistics of one collection.
struct GcStats {
  uint64_t LiveObjects = 0;
  uint64_t LiveBytes = 0;
  uint64_t ReclaimedBytes = 0;
};

/// Stop-the-world mark + sliding-compaction collector.
class GarbageCollector {
public:
  /// Collects \p H. \p Roots are the mutator's reference slots (stack
  /// slots, handles); ref-typed statics are picked up automatically. Root
  /// slots holding null or non-heap values are ignored; live slots are
  /// updated in place when their referents move.
  GcStats collect(Heap &H, const std::vector<Addr *> &Roots);

  /// Installs a cooperative checkpoint polled periodically inside every
  /// collection phase (indexing, marking, forwarding, fixup, sliding).
  /// The interpreter wires its wall-clock watchdog here: without it, a
  /// cell stuck in GC on a huge heap could never observe its deadline
  /// (the interpreter only checks between retired instructions). The
  /// hook may throw; collect() is abandoned mid-phase in that case, so
  /// only unwind into code that discards the heap (the harness does).
  void setCheckpoint(std::function<void()> Fn) {
    Checkpoint = std::move(Fn);
  }

  uint64_t collectionCount() const { return Collections; }

private:
  /// Runs the checkpoint every CheckpointInterval pieces of work.
  void pollCheckpoint();

  /// Loop iterations between checkpoint polls; matches the interpreter's
  /// per-4096-retired-instructions cadence.
  static constexpr uint64_t CheckpointInterval = 4096;

  uint64_t Collections = 0;
  uint64_t WorkSinceCheckpoint = 0;
  std::function<void()> Checkpoint;
};

} // namespace vm
} // namespace spf

#endif // SPF_VM_GARBAGECOLLECTOR_H
