//===- trace/AccessEvent.h - One decoded access event -----------*- C++ -*-===//
///
/// \file
/// The decoded form of one event in an access trace. The wire format
/// (trace/TraceBuffer.h) is delta/varint compressed; this struct is what
/// a TraceReader yields and what replay() feeds back into an AccessSink.
///
/// Consecutive tick() calls are run-length merged at record time (the
/// AccessSink contract makes tick additive), so one Tick event may stand
/// for many interpreter-side calls. Every other event maps 1:1.
///
//===----------------------------------------------------------------------===//

#ifndef SPF_TRACE_ACCESSEVENT_H
#define SPF_TRACE_ACCESSEVENT_H

#include "exec/AccessSink.h"

namespace spf {
namespace trace {

/// Wire opcode of one event; stable across encode/decode.
enum class EventKind : uint8_t {
  Tick = 0,             ///< Payload: tick count (merged run).
  Load = 1,             ///< Payload: address + load site.
  Store = 2,            ///< Payload: address.
  Prefetch = 3,         ///< Payload: address.
  GuardedLoad = 4,      ///< Payload: address.
  GuardedLoadFault = 5, ///< No payload.
};

inline const char *eventKindName(EventKind K) {
  switch (K) {
  case EventKind::Tick: return "tick";
  case EventKind::Load: return "load";
  case EventKind::Store: return "store";
  case EventKind::Prefetch: return "prefetch";
  case EventKind::GuardedLoad: return "guarded-load";
  case EventKind::GuardedLoadFault: return "guarded-load-fault";
  }
  return "?";
}

/// One decoded event.
struct AccessEvent {
  EventKind Kind = EventKind::Tick;
  /// Address for Load/Store/Prefetch/GuardedLoad; tick count for Tick;
  /// zero for GuardedLoadFault.
  uint64_t Value = 0;
  /// Load site for Load events; zero otherwise.
  exec::SiteId Site = 0;

  bool operator==(const AccessEvent &) const = default;
};

/// Dispatches one decoded event into \p Sink.
inline void dispatch(const AccessEvent &E, exec::AccessSink &Sink) {
  switch (E.Kind) {
  case EventKind::Tick:
    Sink.tick(E.Value);
    break;
  case EventKind::Load:
    Sink.load(E.Value, E.Site);
    break;
  case EventKind::Store:
    Sink.store(E.Value);
    break;
  case EventKind::Prefetch:
    Sink.prefetch(E.Value);
    break;
  case EventKind::GuardedLoad:
    Sink.guardedLoad(E.Value);
    break;
  case EventKind::GuardedLoadFault:
    Sink.guardedLoadFault();
    break;
  }
}

} // namespace trace
} // namespace spf

#endif // SPF_TRACE_ACCESSEVENT_H
