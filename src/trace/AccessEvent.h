//===- trace/AccessEvent.h - One decoded access event -----------*- C++ -*-===//
///
/// \file
/// The decoded form of one event in an access trace. The wire format
/// (trace/TraceBuffer.h) is delta/varint compressed; exec::AccessEvent
/// is what a TraceReader yields and what replay() feeds back into an
/// AccessSink.
///
/// The record type itself lives in exec/AccessSink.h (next to the sink
/// interface whose consume() takes blocks of it); this header re-exports
/// it under the trace namespace for the encode/decode layer.
///
//===----------------------------------------------------------------------===//

#ifndef SPF_TRACE_ACCESSEVENT_H
#define SPF_TRACE_ACCESSEVENT_H

#include "exec/AccessSink.h"

namespace spf {
namespace trace {

using exec::AccessEvent;
using exec::EventKind;
using exec::dispatch;
using exec::eventKindName;

} // namespace trace
} // namespace spf

#endif // SPF_TRACE_ACCESSEVENT_H
