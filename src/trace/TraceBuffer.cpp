//===- trace/TraceBuffer.cpp ----------------------------------------------===//

#include "trace/TraceBuffer.h"

#include <algorithm>
#include <cstring>
#include <istream>
#include <ostream>

using namespace spf;
using namespace spf::trace;

namespace {

constexpr uint32_t SpillMagic = 0x53505452; // "SPTR"
// v2: FNV-1a checksum over header counters + payload (v1 had none; a v1
// spill now reads back as a clean miss and simply re-records).
constexpr uint32_t SpillVersion = 2;

constexpr uint32_t TokenEscape = 31; // arg value meaning "varint follows".

/// Hard sanity bound on the header's site count: a checksum-valid spill
/// never exceeds this, and it caps the decoder's per-site state.
constexpr uint32_t MaxSpillSites = 1u << 24;

/// Serialized size of the checksummed header counters:
/// Events(8) + RecordedCalls(8) + NumSites(4) + NBytes(8).
constexpr size_t SpillCountersBytes = 28;

uint64_t zigzag(int64_t V) {
  return (static_cast<uint64_t>(V) << 1) ^ static_cast<uint64_t>(V >> 63);
}

int64_t unzigzag(uint64_t V) {
  return static_cast<int64_t>((V >> 1) ^ (~(V & 1) + 1));
}

uint64_t fnv1a(uint64_t H, const uint8_t *Data, size_t N) {
  for (size_t I = 0; I != N; ++I) {
    H ^= Data[I];
    H *= 1099511628211ull;
  }
  return H;
}

constexpr uint64_t Fnv1aInit = 1469598103934665603ull;

template <typename T> void writeRaw(std::ostream &OS, T V) {
  char Buf[sizeof(T)];
  std::memcpy(Buf, &V, sizeof(T));
  OS.write(Buf, sizeof(T));
}

template <typename T> bool readRaw(std::istream &IS, T &V) {
  char Buf[sizeof(T)];
  if (!IS.read(Buf, sizeof(T)))
    return false;
  std::memcpy(&V, Buf, sizeof(T));
  return true;
}

template <typename T> void packRaw(uint8_t *&P, T V) {
  std::memcpy(P, &V, sizeof(T));
  P += sizeof(T);
}

template <typename T> void unpackRaw(const uint8_t *&P, T &V) {
  std::memcpy(&V, P, sizeof(T));
  P += sizeof(T);
}

struct SpillCounters {
  uint64_t Events = 0;
  uint64_t RecordedCalls = 0;
  uint32_t NumSites = 0;
  uint64_t NBytes = 0;

  void pack(uint8_t (&Buf)[SpillCountersBytes]) const {
    uint8_t *P = Buf;
    packRaw(P, Events);
    packRaw(P, RecordedCalls);
    packRaw(P, NumSites);
    packRaw(P, NBytes);
  }
  void unpack(const uint8_t (&Buf)[SpillCountersBytes]) {
    const uint8_t *P = Buf;
    unpackRaw(P, Events);
    unpackRaw(P, RecordedCalls);
    unpackRaw(P, NumSites);
    unpackRaw(P, NBytes);
  }

  /// Internal-consistency checks that hold for every writeTo'd buffer:
  /// each encoded event occupies at least one token byte, and the site
  /// count is bounded. Rejecting here keeps a corrupt header from ever
  /// sizing an allocation or the decoder's per-site state.
  bool plausible() const {
    if ((Events == 0) != (NBytes == 0))
      return false;
    if (Events > NBytes)
      return false;
    if (NumSites > MaxSpillSites)
      return false;
    return true;
  }
};

} // namespace

void TraceBuffer::emitVarint(uint64_t V) {
  while (V >= 0x80) {
    Bytes.push_back(static_cast<uint8_t>(V) | 0x80);
    V >>= 7;
  }
  Bytes.push_back(static_cast<uint8_t>(V));
}

void TraceBuffer::emitToken(EventKind K, uint32_t Arg) {
  Bytes.push_back(static_cast<uint8_t>(static_cast<uint32_t>(K) |
                                       (Arg << 3)));
}

void TraceBuffer::emitAddr(uint64_t Addr, uint64_t &Last) {
  // Two's-complement difference: correct even across uint64 wraparound.
  emitVarint(zigzag(static_cast<int64_t>(Addr - Last)));
  Last = Addr;
}

bool TraceBuffer::checkCap() {
  if (ByteCap && Bytes.size() > ByteCap) {
    Overflowed = true;
    Bytes.clear();
    Bytes.shrink_to_fit();
    return false;
  }
  return true;
}

void TraceBuffer::flushTicks() {
  if (!PendingTicks)
    return;
  if (PendingTicks < TokenEscape) {
    emitToken(EventKind::Tick, static_cast<uint32_t>(PendingTicks));
  } else {
    emitToken(EventKind::Tick, TokenEscape);
    emitVarint(PendingTicks);
  }
  PendingTicks = 0;
  ++Events;
}

void TraceBuffer::load(uint64_t Addr, exec::SiteId Site) {
  ++RecordedCalls;
  if (Overflowed)
    return;
  flushTicks();
  if (Site >= NumSites)
    NumSites = Site + 1;
  uint64_t SiteZz =
      zigzag(static_cast<int64_t>(Site) - static_cast<int64_t>(LastSite));
  if (SiteZz < TokenEscape) {
    emitToken(EventKind::Load, static_cast<uint32_t>(SiteZz));
  } else {
    emitToken(EventKind::Load, TokenEscape);
    emitVarint(SiteZz);
  }
  LastSite = Site;
  if (Site >= LastAddrBySite.size())
    LastAddrBySite.resize(Site + 1, 0);
  emitAddr(Addr, LastAddrBySite[Site]);
  ++Events;
  checkCap();
}

void TraceBuffer::store(uint64_t Addr) {
  ++RecordedCalls;
  if (Overflowed)
    return;
  flushTicks();
  emitToken(EventKind::Store, 0);
  emitAddr(Addr, LastStoreAddr);
  ++Events;
  checkCap();
}

void TraceBuffer::prefetch(uint64_t Addr) {
  ++RecordedCalls;
  if (Overflowed)
    return;
  flushTicks();
  emitToken(EventKind::Prefetch, 0);
  emitAddr(Addr, LastPrefetchAddr);
  ++Events;
  checkCap();
}

void TraceBuffer::guardedLoad(uint64_t Addr) {
  ++RecordedCalls;
  if (Overflowed)
    return;
  flushTicks();
  emitToken(EventKind::GuardedLoad, 0);
  emitAddr(Addr, LastGuardedAddr);
  ++Events;
  checkCap();
}

void TraceBuffer::guardedLoadFault() {
  ++RecordedCalls;
  if (Overflowed)
    return;
  flushTicks();
  emitToken(EventKind::GuardedLoadFault, 0);
  ++Events;
  checkCap();
}

void TraceBuffer::finish() {
  if (!Overflowed)
    flushTicks();
  Finished = true;
}

void TraceBuffer::reserveEvents(uint64_t ExpectedEvents) {
  // The amortized-size target is <= 4 bytes/event; reserving at that rate
  // keeps the common case to zero reallocations and bounded overshoot.
  if (ExpectedEvents)
    Bytes.reserve(static_cast<size_t>(ExpectedEvents * 4 + 64));
}

void TraceBuffer::writeTo(std::ostream &OS) const {
  SpillCounters C;
  C.Events = Events;
  C.RecordedCalls = RecordedCalls;
  C.NumSites = NumSites;
  C.NBytes = byteSize();
  uint8_t Counters[SpillCountersBytes];
  C.pack(Counters);
  uint64_t Sum = fnv1a(Fnv1aInit, Counters, sizeof(Counters));
  Sum = fnv1a(Sum, data(), byteSize());

  writeRaw(OS, SpillMagic);
  writeRaw(OS, SpillVersion);
  writeRaw(OS, Sum);
  OS.write(reinterpret_cast<const char *>(Counters),
           static_cast<std::streamsize>(sizeof(Counters)));
  OS.write(reinterpret_cast<const char *>(data()),
           static_cast<std::streamsize>(byteSize()));
}

bool TraceBuffer::readFrom(std::istream &IS) {
  *this = TraceBuffer();
  uint32_t Magic = 0, Version = 0;
  uint64_t Sum = 0;
  if (!readRaw(IS, Magic) || Magic != SpillMagic)
    return false;
  if (!readRaw(IS, Version) || Version != SpillVersion)
    return false;
  if (!readRaw(IS, Sum))
    return false;
  uint8_t Counters[SpillCountersBytes];
  if (!IS.read(reinterpret_cast<char *>(Counters),
               static_cast<std::streamsize>(sizeof(Counters))))
    return false;
  SpillCounters C;
  C.unpack(Counters);
  if (!C.plausible())
    return false;

  // Validate the claimed payload size against the actual remaining
  // stream before allocating: a corrupt NBytes must never size an
  // allocation beyond what the stream really holds.
  std::vector<uint8_t> Data;
  auto Cur = IS.tellg();
  if (Cur != std::istream::pos_type(-1)) {
    IS.seekg(0, std::ios::end);
    auto End = IS.tellg();
    IS.seekg(Cur);
    if (End == std::istream::pos_type(-1) ||
        static_cast<uint64_t>(End - Cur) < C.NBytes)
      return false;
    Data.resize(static_cast<size_t>(C.NBytes));
    if (C.NBytes &&
        !IS.read(reinterpret_cast<char *>(Data.data()),
                 static_cast<std::streamsize>(C.NBytes)))
      return false;
  } else {
    // Non-seekable stream: read in bounded chunks so truncation is
    // detected without trusting NBytes for an upfront allocation.
    constexpr size_t ChunkBytes = 1u << 16;
    uint64_t Left = C.NBytes;
    while (Left) {
      size_t Want = static_cast<size_t>(std::min<uint64_t>(Left, ChunkBytes));
      size_t Have = Data.size();
      Data.resize(Have + Want);
      if (!IS.read(reinterpret_cast<char *>(Data.data() + Have),
                   static_cast<std::streamsize>(Want)))
        return false;
      Left -= Want;
    }
  }

  uint64_t Expect = fnv1a(Fnv1aInit, Counters, sizeof(Counters));
  Expect = fnv1a(Expect, Data.data(), Data.size());
  if (Expect != Sum)
    return false;

  Bytes = std::move(Data);
  Events = C.Events;
  RecordedCalls = C.RecordedCalls;
  NumSites = C.NumSites;
  Finished = true;
  return true;
}

bool TraceBuffer::borrowFrom(const uint8_t *&P, const uint8_t *End,
                             std::shared_ptr<const void> NewOwner) {
  *this = TraceBuffer();
  const uint8_t *Q = P;
  if (End < Q || static_cast<size_t>(End - Q) <
                     sizeof(uint32_t) * 2 + sizeof(uint64_t) +
                         SpillCountersBytes)
    return false;
  uint32_t Magic = 0, Version = 0;
  uint64_t Sum = 0;
  unpackRaw(Q, Magic);
  unpackRaw(Q, Version);
  unpackRaw(Q, Sum);
  if (Magic != SpillMagic || Version != SpillVersion)
    return false;
  uint8_t Counters[SpillCountersBytes];
  std::memcpy(Counters, Q, sizeof(Counters));
  Q += sizeof(Counters);
  SpillCounters C;
  C.unpack(Counters);
  if (!C.plausible())
    return false;
  if (static_cast<uint64_t>(End - Q) < C.NBytes)
    return false;

  uint64_t Expect = fnv1a(Fnv1aInit, Counters, sizeof(Counters));
  Expect = fnv1a(Expect, Q, static_cast<size_t>(C.NBytes));
  if (Expect != Sum)
    return false;

  BorrowedData = Q;
  BorrowedSize = static_cast<size_t>(C.NBytes);
  Owner = std::move(NewOwner);
  Events = C.Events;
  RecordedCalls = C.RecordedCalls;
  NumSites = C.NumSites;
  Finished = true;
  P = Q + C.NBytes;
  return true;
}

// -- TraceReader -----------------------------------------------------------

TraceReader::TraceReader(const uint8_t *Data, size_t Size, uint32_t NumSites)
    : Data(Data), Size(Size), NumSites(NumSites) {
  // Pre-sized once so the Load fast path is a bounds check + index, and
  // a corrupt site delta can never size an allocation (NumSites is
  // checksum-protected on the spill path and capped regardless).
  LastAddrBySite.assign(std::min(NumSites, MaxSpillSites), 0);
}

bool TraceReader::readVarint(uint64_t &V) {
  V = 0;
  unsigned Shift = 0;
  for (;;) {
    if (Pos >= Size)
      return fail(); // Truncated: continuation promised, stream ended.
    uint8_t B = Data[Pos++];
    uint64_t Low = B & 0x7F;
    if (Shift == 63 && Low > 1)
      return fail(); // Bits beyond 63.
    V |= Low << Shift;
    if (!(B & 0x80))
      return true;
    Shift += 7;
    if (Shift >= 64)
      return fail(); // More than 10 continuation bytes.
  }
}

bool TraceReader::decodeOne(AccessEvent &E) {
  uint8_t Token = Data[Pos++];
  uint32_t KindBits = Token & 7;
  uint32_t Arg = Token >> 3;
  if (KindBits > static_cast<uint32_t>(EventKind::GuardedLoadFault))
    return fail();
  auto Kind = static_cast<EventKind>(KindBits);

  E.Kind = Kind;
  E.Site = 0;
  uint64_t V = 0;
  switch (Kind) {
  case EventKind::Tick:
    if (Arg != TokenEscape)
      E.Value = Arg;
    else if (readVarint(V))
      E.Value = V;
    else
      return false;
    break;
  case EventKind::Load: {
    uint64_t SiteZz = Arg;
    if (Arg == TokenEscape && !readVarint(SiteZz))
      return false;
    // Unsigned wraparound arithmetic: a corrupt delta lands far outside
    // [0, NumSites) and is rejected, with no signed-overflow UB.
    uint64_t Site64 =
        LastSite + static_cast<uint64_t>(unzigzag(SiteZz));
    if (Site64 >= NumSites || Site64 >= LastAddrBySite.size())
      return fail();
    auto Site = static_cast<exec::SiteId>(Site64);
    LastSite = Site;
    if (!readVarint(V))
      return false;
    uint64_t &Last = LastAddrBySite[Site];
    Last += static_cast<uint64_t>(unzigzag(V));
    E.Value = Last;
    E.Site = Site;
    break;
  }
  case EventKind::Store:
    if (!readVarint(V))
      return false;
    LastStoreAddr += static_cast<uint64_t>(unzigzag(V));
    E.Value = LastStoreAddr;
    break;
  case EventKind::Prefetch:
    if (!readVarint(V))
      return false;
    LastPrefetchAddr += static_cast<uint64_t>(unzigzag(V));
    E.Value = LastPrefetchAddr;
    break;
  case EventKind::GuardedLoad:
    if (!readVarint(V))
      return false;
    LastGuardedAddr += static_cast<uint64_t>(unzigzag(V));
    E.Value = LastGuardedAddr;
    break;
  case EventKind::GuardedLoadFault:
    E.Value = 0;
    break;
  }
  return true;
}

bool TraceReader::next(AccessEvent &E) {
  if (Malformed || Pos >= Size)
    return false;
  return decodeOne(E);
}

size_t TraceReader::fill(AccessEvent *Out, size_t Cap) {
  // One tight token loop per block, decoder state held in locals and
  // written back once: member loads can't be cached across the loop by
  // the compiler (byte reads through Data alias everything), so this is
  // measurably cheaper than per-event decodeOne() calls. Semantics are
  // identical to decodeOne — the batched-vs-per-event differential tests
  // and the corruption fuzz drive both paths over the same streams.
  if (Malformed)
    return 0;
  const uint8_t *const D = Data;
  const size_t Sz = Size;
  size_t P = Pos;
  uint64_t LSite = LastSite;
  uint64_t *const SiteAddr = LastAddrBySite.data();
  const uint64_t SiteCnt = LastAddrBySite.size();
  uint64_t LStore = LastStoreAddr;
  uint64_t LPf = LastPrefetchAddr;
  uint64_t LGl = LastGuardedAddr;
  size_t N = 0;
  bool Bad = false;

  auto varint = [&](uint64_t &V) -> bool {
    V = 0;
    unsigned Shift = 0;
    for (;;) {
      if (P >= Sz)
        return false; // Truncated.
      uint8_t B = D[P++];
      uint64_t Low = B & 0x7F;
      if (Shift == 63 && Low > 1)
        return false; // Bits beyond 63.
      V |= Low << Shift;
      if (!(B & 0x80))
        return true;
      Shift += 7;
      if (Shift >= 64)
        return false; // More than 10 continuation bytes.
    }
  };

  while (N != Cap && P != Sz) {
    uint8_t Token = D[P++];
    uint32_t KindBits = Token & 7;
    uint32_t Arg = Token >> 3;
    AccessEvent &E = Out[N];
    E.Site = 0;
    uint64_t V = 0;
    switch (KindBits) {
    case static_cast<uint32_t>(EventKind::Tick):
      E.Kind = EventKind::Tick;
      if (Arg != TokenEscape) {
        E.Value = Arg;
        break;
      }
      if (!varint(V)) {
        Bad = true;
        goto out;
      }
      E.Value = V;
      break;
    case static_cast<uint32_t>(EventKind::Load): {
      uint64_t SiteZz = Arg;
      if (Arg == TokenEscape && !varint(SiteZz)) {
        Bad = true;
        goto out;
      }
      // Unsigned wraparound arithmetic: a corrupt delta lands far
      // outside [0, SiteCnt) and is rejected, no signed-overflow UB.
      // SiteCnt == min(NumSites, MaxSpillSites), so this one check is
      // exactly decodeOne's pair of bounds.
      uint64_t Site64 = LSite + static_cast<uint64_t>(unzigzag(SiteZz));
      if (Site64 >= SiteCnt) {
        Bad = true;
        goto out;
      }
      LSite = Site64;
      if (!varint(V)) {
        Bad = true;
        goto out;
      }
      uint64_t Addr = SiteAddr[Site64] += static_cast<uint64_t>(unzigzag(V));
      E.Kind = EventKind::Load;
      E.Value = Addr;
      E.Site = static_cast<exec::SiteId>(Site64);
      break;
    }
    case static_cast<uint32_t>(EventKind::Store):
      if (!varint(V)) {
        Bad = true;
        goto out;
      }
      LStore += static_cast<uint64_t>(unzigzag(V));
      E.Kind = EventKind::Store;
      E.Value = LStore;
      break;
    case static_cast<uint32_t>(EventKind::Prefetch):
      if (!varint(V)) {
        Bad = true;
        goto out;
      }
      LPf += static_cast<uint64_t>(unzigzag(V));
      E.Kind = EventKind::Prefetch;
      E.Value = LPf;
      break;
    case static_cast<uint32_t>(EventKind::GuardedLoad):
      if (!varint(V)) {
        Bad = true;
        goto out;
      }
      LGl += static_cast<uint64_t>(unzigzag(V));
      E.Kind = EventKind::GuardedLoad;
      E.Value = LGl;
      break;
    case static_cast<uint32_t>(EventKind::GuardedLoadFault):
      E.Kind = EventKind::GuardedLoadFault;
      E.Value = 0;
      break;
    default: // Kind bits 6 and 7 are unassigned.
      Bad = true;
      goto out;
    }
    ++N;
  }

out:
  Pos = P;
  LastSite = static_cast<exec::SiteId>(LSite);
  LastStoreAddr = LStore;
  LastPrefetchAddr = LPf;
  LastGuardedAddr = LGl;
  if (Bad)
    Malformed = true;
  return N;
}

bool trace::replay(const TraceBuffer &Buf, exec::AccessSink &Sink) {
  TraceReader Reader(Buf);
  AccessEvent Block[ReplayBlockEvents];
  for (;;) {
    size_t N = Reader.fill(Block, ReplayBlockEvents);
    if (!N)
      break;
    Sink.consume(Block, N);
  }
  return !Reader.malformed();
}

bool trace::replayPerEvent(const TraceBuffer &Buf, exec::AccessSink &Sink) {
  TraceReader Reader(Buf);
  AccessEvent E;
  while (Reader.next(E))
    dispatch(E, Sink);
  return !Reader.malformed();
}
