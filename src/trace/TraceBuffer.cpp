//===- trace/TraceBuffer.cpp ----------------------------------------------===//

#include "trace/TraceBuffer.h"

#include <cstring>
#include <istream>
#include <ostream>

using namespace spf;
using namespace spf::trace;

namespace {

constexpr uint32_t SpillMagic = 0x53505452; // "SPTR"
constexpr uint32_t SpillVersion = 1;

constexpr uint32_t TokenEscape = 31; // arg value meaning "varint follows".

uint64_t zigzag(int64_t V) {
  return (static_cast<uint64_t>(V) << 1) ^ static_cast<uint64_t>(V >> 63);
}

int64_t unzigzag(uint64_t V) {
  return static_cast<int64_t>((V >> 1) ^ (~(V & 1) + 1));
}

template <typename T> void writeRaw(std::ostream &OS, T V) {
  char Buf[sizeof(T)];
  std::memcpy(Buf, &V, sizeof(T));
  OS.write(Buf, sizeof(T));
}

template <typename T> bool readRaw(std::istream &IS, T &V) {
  char Buf[sizeof(T)];
  if (!IS.read(Buf, sizeof(T)))
    return false;
  std::memcpy(&V, Buf, sizeof(T));
  return true;
}

} // namespace

void TraceBuffer::emitVarint(uint64_t V) {
  while (V >= 0x80) {
    Bytes.push_back(static_cast<uint8_t>(V) | 0x80);
    V >>= 7;
  }
  Bytes.push_back(static_cast<uint8_t>(V));
}

void TraceBuffer::emitToken(EventKind K, uint32_t Arg) {
  Bytes.push_back(static_cast<uint8_t>(static_cast<uint32_t>(K) |
                                       (Arg << 3)));
}

void TraceBuffer::emitAddr(uint64_t Addr, uint64_t &Last) {
  // Two's-complement difference: correct even across uint64 wraparound.
  emitVarint(zigzag(static_cast<int64_t>(Addr - Last)));
  Last = Addr;
}

bool TraceBuffer::checkCap() {
  if (ByteCap && Bytes.size() > ByteCap) {
    Overflowed = true;
    Bytes.clear();
    Bytes.shrink_to_fit();
    return false;
  }
  return true;
}

void TraceBuffer::flushTicks() {
  if (!PendingTicks)
    return;
  if (PendingTicks < TokenEscape) {
    emitToken(EventKind::Tick, static_cast<uint32_t>(PendingTicks));
  } else {
    emitToken(EventKind::Tick, TokenEscape);
    emitVarint(PendingTicks);
  }
  PendingTicks = 0;
  ++Events;
}

void TraceBuffer::load(uint64_t Addr, exec::SiteId Site) {
  ++RecordedCalls;
  if (Overflowed)
    return;
  flushTicks();
  if (Site >= NumSites)
    NumSites = Site + 1;
  uint64_t SiteZz =
      zigzag(static_cast<int64_t>(Site) - static_cast<int64_t>(LastSite));
  if (SiteZz < TokenEscape) {
    emitToken(EventKind::Load, static_cast<uint32_t>(SiteZz));
  } else {
    emitToken(EventKind::Load, TokenEscape);
    emitVarint(SiteZz);
  }
  LastSite = Site;
  if (Site >= LastAddrBySite.size())
    LastAddrBySite.resize(Site + 1, 0);
  emitAddr(Addr, LastAddrBySite[Site]);
  ++Events;
  checkCap();
}

void TraceBuffer::store(uint64_t Addr) {
  ++RecordedCalls;
  if (Overflowed)
    return;
  flushTicks();
  emitToken(EventKind::Store, 0);
  emitAddr(Addr, LastStoreAddr);
  ++Events;
  checkCap();
}

void TraceBuffer::prefetch(uint64_t Addr) {
  ++RecordedCalls;
  if (Overflowed)
    return;
  flushTicks();
  emitToken(EventKind::Prefetch, 0);
  emitAddr(Addr, LastPrefetchAddr);
  ++Events;
  checkCap();
}

void TraceBuffer::guardedLoad(uint64_t Addr) {
  ++RecordedCalls;
  if (Overflowed)
    return;
  flushTicks();
  emitToken(EventKind::GuardedLoad, 0);
  emitAddr(Addr, LastGuardedAddr);
  ++Events;
  checkCap();
}

void TraceBuffer::guardedLoadFault() {
  ++RecordedCalls;
  if (Overflowed)
    return;
  flushTicks();
  emitToken(EventKind::GuardedLoadFault, 0);
  ++Events;
  checkCap();
}

void TraceBuffer::finish() {
  if (!Overflowed)
    flushTicks();
  Finished = true;
}

void TraceBuffer::reserveEvents(uint64_t ExpectedEvents) {
  // The amortized-size target is <= 4 bytes/event; reserving at that rate
  // keeps the common case to zero reallocations and bounded overshoot.
  if (ExpectedEvents)
    Bytes.reserve(static_cast<size_t>(ExpectedEvents * 4 + 64));
}

void TraceBuffer::writeTo(std::ostream &OS) const {
  writeRaw(OS, SpillMagic);
  writeRaw(OS, SpillVersion);
  writeRaw(OS, Events);
  writeRaw(OS, RecordedCalls);
  writeRaw(OS, NumSites);
  writeRaw(OS, static_cast<uint64_t>(Bytes.size()));
  OS.write(reinterpret_cast<const char *>(Bytes.data()),
           static_cast<std::streamsize>(Bytes.size()));
}

bool TraceBuffer::readFrom(std::istream &IS) {
  *this = TraceBuffer();
  uint32_t Magic = 0, Version = 0, Sites = 0;
  uint64_t NEvents = 0, NCalls = 0, NBytes = 0;
  if (!readRaw(IS, Magic) || Magic != SpillMagic)
    return false;
  if (!readRaw(IS, Version) || Version != SpillVersion)
    return false;
  if (!readRaw(IS, NEvents) || !readRaw(IS, NCalls) || !readRaw(IS, Sites) ||
      !readRaw(IS, NBytes))
    return false;
  std::vector<uint8_t> Data(static_cast<size_t>(NBytes));
  if (NBytes &&
      !IS.read(reinterpret_cast<char *>(Data.data()),
               static_cast<std::streamsize>(NBytes)))
    return false;
  Bytes = std::move(Data);
  Events = NEvents;
  RecordedCalls = NCalls;
  NumSites = Sites;
  Finished = true;
  return true;
}

// -- TraceReader -----------------------------------------------------------

uint8_t TraceReader::byte() { return Buf.Bytes[Pos++]; }

uint64_t TraceReader::readVarint() {
  uint64_t V = 0;
  unsigned Shift = 0;
  while (Pos < Buf.Bytes.size()) {
    uint8_t B = byte();
    V |= static_cast<uint64_t>(B & 0x7F) << Shift;
    if (!(B & 0x80))
      break;
    Shift += 7;
  }
  return V;
}

bool TraceReader::next(AccessEvent &E) {
  if (Pos >= Buf.Bytes.size())
    return false;
  uint8_t Token = byte();
  auto Kind = static_cast<EventKind>(Token & 7);
  uint32_t Arg = Token >> 3;

  E.Kind = Kind;
  E.Site = 0;
  switch (Kind) {
  case EventKind::Tick:
    E.Value = Arg == TokenEscape ? readVarint() : Arg;
    break;
  case EventKind::Load: {
    uint64_t SiteZz = Arg == TokenEscape ? readVarint() : Arg;
    auto Site = static_cast<exec::SiteId>(static_cast<int64_t>(LastSite) +
                                          unzigzag(SiteZz));
    LastSite = Site;
    if (Site >= LastAddrBySite.size())
      LastAddrBySite.resize(Site + 1, 0);
    uint64_t &Last = LastAddrBySite[Site];
    Last += static_cast<uint64_t>(unzigzag(readVarint()));
    E.Value = Last;
    E.Site = Site;
    break;
  }
  case EventKind::Store:
    LastStoreAddr += static_cast<uint64_t>(unzigzag(readVarint()));
    E.Value = LastStoreAddr;
    break;
  case EventKind::Prefetch:
    LastPrefetchAddr += static_cast<uint64_t>(unzigzag(readVarint()));
    E.Value = LastPrefetchAddr;
    break;
  case EventKind::GuardedLoad:
    LastGuardedAddr += static_cast<uint64_t>(unzigzag(readVarint()));
    E.Value = LastGuardedAddr;
    break;
  case EventKind::GuardedLoadFault:
    E.Value = 0;
    break;
  }
  return true;
}

void trace::replay(const TraceBuffer &Buf, exec::AccessSink &Sink) {
  TraceReader Reader(Buf);
  AccessEvent E;
  while (Reader.next(E))
    dispatch(E, Sink);
}
