//===- trace/TraceBuffer.h - Compact append-only access trace ---*- C++ -*-===//
///
/// \file
/// An append-only, delta/varint-compressed encoding of an access-event
/// stream, compact enough that multi-million-event kernels stay cheap to
/// hold (target: <= 4 bytes per event amortized on strided workloads).
///
/// Wire format. Each event starts with one token byte:
///
///   token = kind (low 3 bits) | arg (high 5 bits)
///
///   Tick:             arg < 31: tick count == arg (1..30).
///                     arg == 31: LEB128 varint count follows.
///                     Consecutive tick() calls are run-length merged
///                     before encoding (tick is additive by contract).
///   Load:             arg < 31: zigzag(site - LastSite) == arg.
///                     arg == 31: varint zigzag site delta follows.
///                     Then a varint zigzag address delta follows,
///                     relative to *that site's* previous address — a
///                     constant-stride load site therefore costs one
///                     token byte plus a 1-byte delta per event.
///   Store/Prefetch/
///   GuardedLoad:      varint zigzag address delta follows, relative to
///                     the previous address of the same kind.
///   GuardedLoadFault: token byte only.
///
/// Encoder and decoder keep mirrored state (per-site last addresses,
/// per-kind last addresses, last site), so decoding reproduces the exact
/// recorded stream: replay(buffer, sink) is bit-equivalent to having
/// driven the sink live (see tests/trace_test.cpp).
///
/// The decoder treats its input as untrusted: varint shifts are bounded,
/// every payload read is bounds-checked, kinds 6/7 and out-of-range load
/// sites are decode errors, and a truncated stream is reported as
/// malformed rather than silently yielding partial values. Spill streams
/// additionally carry an FNV-1a checksum, so a bit-flipped or truncated
/// spill file reads back as a clean failure (= cache miss), never as
/// garbage events.
///
/// A byte cap supports bounded recording: once the encoded size exceeds
/// the cap the buffer discards its storage and marks itself overflowed;
/// the recording run is unaffected (the live sink saw every event), the
/// trace is just not reusable.
///
/// Storage is either *owned* (the recording vector) or *borrowed*: a
/// read-only view into memory kept alive by a shared owner handle —
/// typically an mmap'd spill file (support/MappedFile.h), so the
/// supervisor and every forked worker replay straight out of one shared
/// page-cache copy instead of per-process heap re-reads.
///
//===----------------------------------------------------------------------===//

#ifndef SPF_TRACE_TRACEBUFFER_H
#define SPF_TRACE_TRACEBUFFER_H

#include "trace/AccessEvent.h"

#include <iosfwd>
#include <memory>
#include <vector>

namespace spf {
namespace trace {

class TraceBuffer {
public:
  TraceBuffer() = default;

  // -- Recording (AccessSink-shaped, but not an AccessSink itself: the
  //    tee that forwards to a live sink is trace::RecordingSink) --------

  void tick(uint64_t N) {
    PendingTicks += N;
    ++RecordedCalls;
  }
  void load(uint64_t Addr, exec::SiteId Site);
  void store(uint64_t Addr);
  void prefetch(uint64_t Addr);
  void guardedLoad(uint64_t Addr);
  void guardedLoadFault();

  /// Flushes the pending tick run. Must be called when recording ends;
  /// harmless to call more than once.
  void finish();

  // -- Capacity / accounting -------------------------------------------

  /// Pre-sizes the byte storage for an expected \p Events encoded events
  /// (the record-once path plumbs the previous trace of the same
  /// workload here, so hot cells do not pay reallocation churn).
  void reserveEvents(uint64_t Events);

  /// Recording stops (storage is dropped, overflowed() becomes true)
  /// once the encoded size exceeds \p Bytes. 0 = unlimited.
  void setByteCap(size_t Bytes) { ByteCap = Bytes; }
  bool overflowed() const { return Overflowed; }

  /// Encoded events so far (post tick-merging; excludes a still-pending
  /// tick run until finish()).
  uint64_t events() const { return Events; }
  /// Sink calls recorded (each tick() call counts), pre-merging.
  uint64_t recordedCalls() const { return RecordedCalls; }
  /// One past the largest load site recorded (0 when no loads).
  uint32_t loadSites() const { return NumSites; }

  /// Encoded bytes: the owned recording storage, or the borrowed view.
  const uint8_t *data() const {
    return BorrowedData ? BorrowedData : Bytes.data();
  }
  size_t byteSize() const { return BorrowedData ? BorrowedSize : Bytes.size(); }
  /// True when the encoded bytes are a borrowed read-only view (e.g. an
  /// mmap'd spill) rather than owned storage. Borrowed buffers are
  /// replay-only: do not record into them.
  bool borrowed() const { return BorrowedData != nullptr; }

  // -- Spill serialization ---------------------------------------------

  /// Writes the finished buffer (checksummed header + bytes) to \p OS.
  void writeTo(std::ostream &OS) const;

  /// Reads a buffer previously written with writeTo into owned storage.
  /// Returns false (and leaves *this empty) on a malformed, truncated,
  /// or checksum-mismatched stream; header sizes are validated against
  /// the actual remaining stream size before any allocation, so a
  /// corrupt header can never trigger an attacker-chosen allocation.
  bool readFrom(std::istream &IS);

  /// Zero-copy variant of readFrom: parses a writeTo blob at \p P (end
  /// of readable memory \p End) and *borrows* the payload bytes in
  /// place, keeping \p Owner alive for the buffer's lifetime (the mmap
  /// handle or heap block backing [P, End)). On success advances \p P
  /// past the blob. Same validation and checksum guarantees as
  /// readFrom; returns false and leaves *this empty on any failure.
  bool borrowFrom(const uint8_t *&P, const uint8_t *End,
                  std::shared_ptr<const void> Owner);

private:
  friend class TraceReader;

  void emitToken(EventKind K, uint32_t Arg);
  void emitVarint(uint64_t V);
  void emitAddr(uint64_t Addr, uint64_t &Last);
  void flushTicks();
  bool checkCap();

  std::vector<uint8_t> Bytes;
  const uint8_t *BorrowedData = nullptr;
  size_t BorrowedSize = 0;
  /// Keeps borrowed storage alive (shared with other borrowing buffers).
  std::shared_ptr<const void> Owner;

  uint64_t PendingTicks = 0;
  uint64_t Events = 0;
  uint64_t RecordedCalls = 0;
  uint32_t NumSites = 0;
  size_t ByteCap = 0;
  bool Overflowed = false;
  bool Finished = false;

  // Encoder prediction state (mirrored by TraceReader).
  exec::SiteId LastSite = 0;
  std::vector<uint64_t> LastAddrBySite;
  uint64_t LastStoreAddr = 0;
  uint64_t LastPrefetchAddr = 0;
  uint64_t LastGuardedAddr = 0;
};

/// Sequential decoder over a finished TraceBuffer (or a raw encoded byte
/// range). The backing storage must outlive the reader and not be
/// appended to while reading.
///
/// The decoder is hardened against malformed input: varint shifts are
/// bounded to 64 bits, truncated varints and payloads, unknown kinds,
/// and load sites outside [0, loadSites()) all stop decoding and set
/// malformed() instead of yielding garbage events.
class TraceReader {
public:
  explicit TraceReader(const TraceBuffer &Buf)
      : TraceReader(Buf.data(), Buf.byteSize(), Buf.loadSites()) {}

  /// Decodes a raw encoded byte range directly (\p NumSites = one past
  /// the largest valid load site). This is the seam the corruption fuzz
  /// tests drive arbitrary bytes through.
  TraceReader(const uint8_t *Data, size_t Size, uint32_t NumSites);

  /// Decodes the next event into \p E; false at end of trace or on a
  /// decode error (distinguish via malformed()).
  bool next(AccessEvent &E);

  /// Decodes up to \p Cap events into \p Out; returns the number
  /// decoded. 0 means end of trace or decode error (see malformed()).
  /// One tight token loop per block — this is the replay fast path.
  size_t fill(AccessEvent *Out, size_t Cap);

  /// True once a decode error was hit; no further events are produced.
  bool malformed() const { return Malformed; }

private:
  bool decodeOne(AccessEvent &E);
  bool readVarint(uint64_t &V);
  bool fail() {
    Malformed = true;
    return false;
  }

  const uint8_t *Data;
  size_t Size;
  size_t Pos = 0;
  uint32_t NumSites;
  bool Malformed = false;

  exec::SiteId LastSite = 0;
  std::vector<uint64_t> LastAddrBySite;
  uint64_t LastStoreAddr = 0;
  uint64_t LastPrefetchAddr = 0;
  uint64_t LastGuardedAddr = 0;
};

/// Number of decoded events per consume() block on the replay path.
inline constexpr size_t ReplayBlockEvents = 256;

/// Feeds every event of \p Buf into \p Sink, in recorded order, as
/// blocks of up to ReplayBlockEvents via AccessSink::consume. With a
/// sim::MemorySystem sink this reproduces, bit for bit, the MemoryStats,
/// per-site stats, and cycle count of the run that recorded the trace.
/// Returns false if the trace failed to decode (the sink saw every
/// event up to the malformed point, never a garbage event).
bool replay(const TraceBuffer &Buf, exec::AccessSink &Sink);

/// Reference replay: one virtual sink call per event (the pre-batching
/// path). Kept as the A/B baseline for the batched fast path — the
/// differential tests and `bench/sweep --throughput` prove replay() is
/// bit-identical to and faster than this. Same return contract.
bool replayPerEvent(const TraceBuffer &Buf, exec::AccessSink &Sink);

} // namespace trace
} // namespace spf

#endif // SPF_TRACE_TRACEBUFFER_H
