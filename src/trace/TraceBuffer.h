//===- trace/TraceBuffer.h - Compact append-only access trace ---*- C++ -*-===//
///
/// \file
/// An append-only, delta/varint-compressed encoding of an access-event
/// stream, compact enough that multi-million-event kernels stay cheap to
/// hold (target: <= 4 bytes per event amortized on strided workloads).
///
/// Wire format. Each event starts with one token byte:
///
///   token = kind (low 3 bits) | arg (high 5 bits)
///
///   Tick:             arg < 31: tick count == arg (1..30).
///                     arg == 31: LEB128 varint count follows.
///                     Consecutive tick() calls are run-length merged
///                     before encoding (tick is additive by contract).
///   Load:             arg < 31: zigzag(site - LastSite) == arg.
///                     arg == 31: varint zigzag site delta follows.
///                     Then a varint zigzag address delta follows,
///                     relative to *that site's* previous address — a
///                     constant-stride load site therefore costs one
///                     token byte plus a 1-byte delta per event.
///   Store/Prefetch/
///   GuardedLoad:      varint zigzag address delta follows, relative to
///                     the previous address of the same kind.
///   GuardedLoadFault: token byte only.
///
/// Encoder and decoder keep mirrored state (per-site last addresses,
/// per-kind last addresses, last site), so decoding reproduces the exact
/// recorded stream: replay(buffer, sink) is bit-equivalent to having
/// driven the sink live (see tests/trace_test.cpp).
///
/// A byte cap supports bounded recording: once the encoded size exceeds
/// the cap the buffer discards its storage and marks itself overflowed;
/// the recording run is unaffected (the live sink saw every event), the
/// trace is just not reusable.
///
//===----------------------------------------------------------------------===//

#ifndef SPF_TRACE_TRACEBUFFER_H
#define SPF_TRACE_TRACEBUFFER_H

#include "trace/AccessEvent.h"

#include <iosfwd>
#include <vector>

namespace spf {
namespace trace {

class TraceBuffer {
public:
  TraceBuffer() = default;

  // -- Recording (AccessSink-shaped, but not an AccessSink itself: the
  //    tee that forwards to a live sink is trace::RecordingSink) --------

  void tick(uint64_t N) {
    PendingTicks += N;
    ++RecordedCalls;
  }
  void load(uint64_t Addr, exec::SiteId Site);
  void store(uint64_t Addr);
  void prefetch(uint64_t Addr);
  void guardedLoad(uint64_t Addr);
  void guardedLoadFault();

  /// Flushes the pending tick run. Must be called when recording ends;
  /// harmless to call more than once.
  void finish();

  // -- Capacity / accounting -------------------------------------------

  /// Pre-sizes the byte storage for an expected \p Events encoded events
  /// (the record-once path plumbs the previous trace of the same
  /// workload here, so hot cells do not pay reallocation churn).
  void reserveEvents(uint64_t Events);

  /// Recording stops (storage is dropped, overflowed() becomes true)
  /// once the encoded size exceeds \p Bytes. 0 = unlimited.
  void setByteCap(size_t Bytes) { ByteCap = Bytes; }
  bool overflowed() const { return Overflowed; }

  /// Encoded events so far (post tick-merging; excludes a still-pending
  /// tick run until finish()).
  uint64_t events() const { return Events; }
  /// Sink calls recorded (each tick() call counts), pre-merging.
  uint64_t recordedCalls() const { return RecordedCalls; }
  size_t byteSize() const { return Bytes.size(); }
  /// One past the largest load site recorded (0 when no loads).
  uint32_t loadSites() const { return NumSites; }

  const std::vector<uint8_t> &bytes() const { return Bytes; }

  // -- Spill serialization ---------------------------------------------

  /// Writes the finished buffer (header + bytes) to \p OS.
  void writeTo(std::ostream &OS) const;
  /// Reads a buffer previously written with writeTo. Returns false (and
  /// leaves *this empty) on a malformed or truncated stream.
  bool readFrom(std::istream &IS);

private:
  friend class TraceReader;

  void emitToken(EventKind K, uint32_t Arg);
  void emitVarint(uint64_t V);
  void emitAddr(uint64_t Addr, uint64_t &Last);
  void flushTicks();
  bool checkCap();

  std::vector<uint8_t> Bytes;
  uint64_t PendingTicks = 0;
  uint64_t Events = 0;
  uint64_t RecordedCalls = 0;
  uint32_t NumSites = 0;
  size_t ByteCap = 0;
  bool Overflowed = false;
  bool Finished = false;

  // Encoder prediction state (mirrored by TraceReader).
  exec::SiteId LastSite = 0;
  std::vector<uint64_t> LastAddrBySite;
  uint64_t LastStoreAddr = 0;
  uint64_t LastPrefetchAddr = 0;
  uint64_t LastGuardedAddr = 0;
};

/// Sequential decoder over a finished TraceBuffer. The buffer must
/// outlive the reader and not be appended to while reading.
class TraceReader {
public:
  explicit TraceReader(const TraceBuffer &Buf) : Buf(Buf) {}

  /// Decodes the next event into \p E; false at end of trace.
  bool next(AccessEvent &E);

private:
  uint8_t byte();
  uint64_t readVarint();

  const TraceBuffer &Buf;
  size_t Pos = 0;

  exec::SiteId LastSite = 0;
  std::vector<uint64_t> LastAddrBySite;
  uint64_t LastStoreAddr = 0;
  uint64_t LastPrefetchAddr = 0;
  uint64_t LastGuardedAddr = 0;
};

/// Feeds every event of \p Buf into \p Sink, in recorded order. With a
/// sim::MemorySystem sink this reproduces, bit for bit, the MemoryStats,
/// per-site stats, and cycle count of the run that recorded the trace.
void replay(const TraceBuffer &Buf, exec::AccessSink &Sink);

} // namespace trace
} // namespace spf

#endif // SPF_TRACE_TRACEBUFFER_H
