//===- trace/RecordingSink.h - Tee events into a trace ----------*- C++ -*-===//
///
/// \file
/// An AccessSink that forwards every event to a live inner sink while
/// appending it to a TraceBuffer. The inner sink sees exactly the stream
/// it would have seen without recording, so the recording run's results
/// ARE direct-interpretation results; the buffer is a pure side product.
/// If the buffer overflows its byte cap, recording silently stops (the
/// trace is discarded) and the run is still fully valid.
///
//===----------------------------------------------------------------------===//

#ifndef SPF_TRACE_RECORDINGSINK_H
#define SPF_TRACE_RECORDINGSINK_H

#include "trace/TraceBuffer.h"

namespace spf {
namespace trace {

class RecordingSink final : public exec::AccessSink {
public:
  RecordingSink(exec::AccessSink &Inner, TraceBuffer &Buf)
      : Inner(Inner), Buf(Buf) {}

  /// Flushing on destruction makes `{ RecordingSink S(...); run(); }`
  /// leave a finished buffer even on exceptional unwinds.
  ~RecordingSink() override { Buf.finish(); }

  void tick(uint64_t N) override {
    Buf.tick(N);
    Inner.tick(N);
  }
  void load(uint64_t Addr, exec::SiteId Site) override {
    Buf.load(Addr, Site);
    Inner.load(Addr, Site);
  }
  void store(uint64_t Addr) override {
    Buf.store(Addr);
    Inner.store(Addr);
  }
  void prefetch(uint64_t Addr) override {
    Buf.prefetch(Addr);
    Inner.prefetch(Addr);
  }
  void guardedLoad(uint64_t Addr) override {
    Buf.guardedLoad(Addr);
    Inner.guardedLoad(Addr);
  }
  void guardedLoadFault() override {
    Buf.guardedLoadFault();
    Inner.guardedLoadFault();
  }
  // Site attribution is live-run metadata, not wire format: the trace
  // records the plain event, the inner sink keeps the site.
  void prefetch(uint64_t Addr, exec::SiteId Site) override {
    Buf.prefetch(Addr);
    Inner.prefetch(Addr, Site);
  }
  void guardedLoad(uint64_t Addr, exec::SiteId Site) override {
    Buf.guardedLoad(Addr);
    Inner.guardedLoad(Addr, Site);
  }
  void guardedLoadFault(exec::SiteId Site) override {
    Buf.guardedLoadFault();
    Inner.guardedLoadFault(Site);
  }

private:
  exec::AccessSink &Inner;
  TraceBuffer &Buf;
};

} // namespace trace
} // namespace spf

#endif // SPF_TRACE_RECORDINGSINK_H
