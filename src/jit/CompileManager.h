//===- jit/CompileManager.h - The JIT compile pipeline ----------*- C++ -*-===//
///
/// \file
/// The compilation pipeline of the simulated mixed-mode JVM: a method is
/// compiled when it is about to be executed, so actual argument values are
/// on hand for object inspection. The pipeline runs the conventional
/// optimizations (verification, constant folding, local CSE, DCE, CFG/
/// loop/def-use analyses) and then, optionally, the stride prefetching
/// pass. Wall-clock time of each stage is recorded: Figure 11 reports the
/// prefetch pass's additional time over the total JIT compilation time.
///
//===----------------------------------------------------------------------===//

#ifndef SPF_JIT_COMPILEMANAGER_H
#define SPF_JIT_COMPILEMANAGER_H

#include "core/PrefetchPass.h"
#include "support/Status.h"

namespace spf {
namespace jit {

/// Per-method stage timings in microseconds.
struct CompileTimings {
  double VerifyUs = 0;
  double CleanupUs = 0;  ///< Constant folding + CSE + DCE.
  double AnalysisUs = 0; ///< Dominators + loops + def-use.
  double BackendUs = 0;  ///< Liveness + register allocation.
  double PrefetchUs = 0; ///< The stride prefetching pass only.

  double baselineUs() const {
    return VerifyUs + CleanupUs + AnalysisUs + BackendUs;
  }
  double totalUs() const { return baselineUs() + PrefetchUs; }
};

/// Outcome of compiling one method.
struct CompileResult {
  ir::Method *M = nullptr;
  /// Pre-compile verification outcome. A method that arrives malformed is
  /// left as-is (the mixed-mode interpreter keeps executing the original
  /// IR) rather than taking the VM down — the production-JIT bailout.
  support::Status VerifyStatus = support::Status::success();
  CompileTimings Timings;
  core::PrefetchPassResult Prefetch;
  unsigned Folded = 0;
  unsigned CseRemoved = 0;
  unsigned DceRemoved = 0;
  unsigned Spills = 0;      ///< Linear-scan spill count.
  unsigned MaxPressure = 0; ///< Peak register pressure.
};

/// Drives compilation of methods and aggregates pipeline timing.
class CompileManager {
public:
  struct Options {
    bool EnablePrefetch = true;
    core::PrefetchPassOptions Pass;
  };

  CompileManager(const vm::Heap &Heap, Options Opts)
      : Heap(Heap), Opts(std::move(Opts)) {}

  /// Compiles \p M with compile-time argument values \p Args. A method
  /// failing *pre*-compile verification is skipped recoverably (see
  /// CompileResult::VerifyStatus); failing verification *after* the
  /// prefetch pass still aborts — that is our codegen bug, not an input
  /// error, and must never reach execution.
  CompileResult compile(ir::Method *M, const std::vector<uint64_t> &Args);

  /// Aggregate timings across everything compiled so far.
  double totalJitUs() const { return TotalJitUs; }
  double prefetchUs() const { return PrefetchUs; }
  const core::PrefetchPassResult &aggregatePrefetch() const {
    return Aggregate;
  }

private:
  const vm::Heap &Heap;
  Options Opts;
  double TotalJitUs = 0;
  double PrefetchUs = 0;
  core::PrefetchPassResult Aggregate;
};

} // namespace jit
} // namespace spf

#endif // SPF_JIT_COMPILEMANAGER_H
