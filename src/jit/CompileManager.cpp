//===- jit/CompileManager.cpp ---------------------------------------------===//

#include "jit/CompileManager.h"

#include "ir/Verifier.h"
#include "obs/DecisionLog.h"
#include "obs/Tracer.h"
#include "opt/ConstantFolding.h"
#include "opt/DeadCodeElim.h"
#include "opt/LinearScan.h"
#include "opt/LocalCSE.h"
#include "support/ErrorHandling.h"

#include <chrono>

using namespace spf;
using namespace spf::jit;

namespace {

using Clock = std::chrono::steady_clock;

double microsSince(Clock::time_point Start) {
  return std::chrono::duration<double, std::micro>(Clock::now() - Start)
      .count();
}

} // namespace

CompileResult CompileManager::compile(ir::Method *M,
                                      const std::vector<uint64_t> &Args) {
  CompileResult Result;
  Result.M = M;

  obs::Span CompileSpan("compile", "jit");
  CompileSpan.note("method", M->name());

  // Stage 1: verification. A malformed input method is a bailout, not a
  // crash: the method simply stays uncompiled this time around.
  auto T0 = Clock::now();
  bool Verified;
  {
    obs::Span S("verify", "jit");
    Verified = ir::verifyMethod(M);
  }
  if (!Verified) {
    Result.VerifyStatus = support::Status::error(
        "method failed verification before compilation");
    Result.Timings.VerifyUs = microsSince(T0);
    TotalJitUs += Result.Timings.totalUs();
    if (auto *DL = obs::DecisionScope::current()) {
      DL->setContext(M->name(), 0);
      DL->event("pipeline", "verify-bailout", "",
                "method failed verification before compilation; left "
                "uncompiled");
    }
    return Result;
  }
  Result.Timings.VerifyUs = microsSince(T0);

  // Stage 2: conventional cleanup optimizations.
  auto T1 = Clock::now();
  {
    obs::Span S("cleanup", "jit");
    Result.Folded = opt::foldConstants(M);
    Result.CseRemoved = opt::localCSE(M);
    Result.DceRemoved = opt::eliminateDeadCode(M);
  }
  Result.Timings.CleanupUs = microsSince(T1);

  // Stage 3: CFG, dominator, loop, and def-use analyses (shared by the
  // baseline pipeline; the prefetch pass reuses them).
  auto T2 = Clock::now();
  M->recomputePreds();
  obs::Span AnalysisSpan("analysis", "jit");
  analysis::DominatorTree DT(M);
  analysis::LoopInfo LI(M, DT);
  analysis::DefUse DU(M);
  AnalysisSpan.end();
  Result.Timings.AnalysisUs = microsSince(T2);

  // Stage 4: backend — live-variable analysis and linear-scan register
  // allocation over the seven usable IA-32 integer registers.
  auto T3 = Clock::now();
  {
    obs::Span S("backend", "jit");
    opt::Liveness LV(M);
    opt::AllocationResult RA = opt::allocateRegisters(M, LV);
    Result.Spills = RA.Spills;
    Result.MaxPressure = RA.MaxPressure;
  }
  Result.Timings.BackendUs = microsSince(T3);

  // Stage 5: stride prefetching (the paper's pass).
  if (Opts.EnablePrefetch) {
    auto T4 = Clock::now();
    obs::Span PrefetchSpan("prefetch-pass", "jit");
    PrefetchSpan.note("method", M->name());
    core::PrefetchPass Pass(Heap, Opts.Pass);
    Result.Prefetch = Pass.run(M, Args, LI, DU);
    PrefetchSpan.noteU64("loops", Result.Prefetch.LoopsVisited);
    PrefetchSpan.noteU64("prefetches", Result.Prefetch.CodeGen.Prefetches);
    PrefetchSpan.end();
    Result.Timings.PrefetchUs = microsSince(T4);

    if (!ir::verifyMethod(M))
      reportFatalError("method failed verification after prefetch pass");
  }

  TotalJitUs += Result.Timings.totalUs();
  PrefetchUs += Result.Timings.PrefetchUs;
  Aggregate.LoopsVisited += Result.Prefetch.LoopsVisited;
  Aggregate.LoopsSkippedSmallTrip += Result.Prefetch.LoopsSkippedSmallTrip;
  Aggregate.LoopsNotReached += Result.Prefetch.LoopsNotReached;
  Aggregate.LoopsDegraded += Result.Prefetch.LoopsDegraded;
  Aggregate.InspectionFaultsInjected += Result.Prefetch.InspectionFaultsInjected;
  Aggregate.CodeGen.Prefetches += Result.Prefetch.CodeGen.Prefetches;
  Aggregate.CodeGen.SpecLoads += Result.Prefetch.CodeGen.SpecLoads;
  for (const auto &LR : Result.Prefetch.Loops)
    Aggregate.Loops.push_back(LR);

  return Result;
}
