//===- obs/Tracer.h - Span-based phase tracing ------------------*- C++ -*-===//
///
/// \file
/// Structured phase timing that serializes to Chrome trace_event JSON
/// ("Trace Event Format"), so a whole sweep — ThreadPool workers,
/// subprocess cells, retries, journal grafts — renders as one timeline
/// in chrome://tracing or Perfetto.
///
/// Model: RAII `Span` objects produce complete ("X") events; `instant`
/// marks point events (retry, trace-hit, journal-graft). Timestamps are
/// CLOCK_MONOTONIC microseconds, which on Linux is machine-wide, so
/// events recorded in forked worker processes line up with the
/// supervisor's on the same axis. Workers ship their buffered events
/// back over the result pipe (serializeJson/parseEventsJson — see
/// harness/Supervisor.cpp); the supervisor import()s them with the
/// worker's real pid, and the merged file shows one process lane per
/// worker.
///
/// Cost discipline: when the tracer is inactive a Span constructor is a
/// relaxed load and two dead stores. Recording appends to a mutex-
/// protected buffer — spans are per phase (a method compile, a cell),
/// never per simulated access, so contention is irrelevant; buffering
/// keeps serialization entirely outside the timed regions.
///
//===----------------------------------------------------------------------===//

#ifndef SPF_OBS_TRACER_H
#define SPF_OBS_TRACER_H

#include "obs/Obs.h"

#include <atomic>
#include <cstdint>
#include <mutex>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace spf {
namespace harness {
class JsonWriter;
class JsonValue;
} // namespace harness

namespace obs {

/// One trace event in Chrome trace_event terms.
struct TraceEvent {
  std::string Name;
  std::string Cat = "spf";
  char Ph = 'X';      ///< 'X' complete span, 'i' instant, 'C' counter.
  uint64_t TsUs = 0;  ///< CLOCK_MONOTONIC microseconds.
  uint64_t DurUs = 0; ///< Span duration ('X' only).
  uint64_t Pid = 0;
  uint64_t Tid = 0;
  /// Extra "args" key/value pairs (serialized as strings).
  std::vector<std::pair<std::string, std::string>> Args;
  /// Numeric "args" entries, serialized as JSON numbers — required for
  /// 'C' counter events, whose values chrome://tracing plots as stacked
  /// series. Written after Args in the args object.
  std::vector<std::pair<std::string, uint64_t>> NumArgs;
};

/// Process-wide event collector. Inactive (and free) until enable().
class Tracer {
public:
  static Tracer &instance();

  void enable();
  void disable();
  bool active() const {
#if SPF_OBS
    return Active.load(std::memory_order_relaxed);
#else
    return false;
#endif
  }

  /// Appends one finished event (Pid/Tid filled in if zero).
  void record(TraceEvent E);

  /// Records an instant event at the current time.
  void
  instant(std::string Name,
          std::vector<std::pair<std::string, std::string>> Args = {});

  /// Moves out everything recorded so far (own events + imports).
  std::vector<TraceEvent> drain();

  /// Number of buffered events.
  size_t eventCount() const;

  /// Grafts events recorded by another process (a supervised worker)
  /// into this tracer's buffer, keeping their original pids/tids.
  void import(std::vector<TraceEvent> Events);

  /// Drains and writes the full Chrome trace_event JSON document
  /// ({"traceEvents":[...]}), including process_name metadata for every
  /// pid seen. Returns the number of events written.
  size_t writeChromeTrace(std::ostream &OS, const std::string &ProcessLabel);

  /// CLOCK_MONOTONIC now, in microseconds.
  static uint64_t nowUs();
  /// Stable small integer id for the calling thread.
  static uint64_t currentTid();

  /// Serializes events as a JSON array (the worker→supervisor wire
  /// format; also reused for the trace file's event list).
  static void writeEventsJson(harness::JsonWriter &J,
                              const std::vector<TraceEvent> &Events);
  /// Inverse of writeEventsJson; ignores malformed entries.
  static std::vector<TraceEvent>
  parseEventsJson(const harness::JsonValue &V);

private:
  std::atomic<bool> Active{false};
  mutable std::mutex Mu;
  std::vector<TraceEvent> Events;
};

/// RAII span. Captures the start time if the tracer is active at
/// construction; records a complete event at end()/destruction.
class Span {
public:
  explicit Span(const char *Name, const char *Cat = "spf");
  ~Span() { end(); }

  Span(const Span &) = delete;
  Span &operator=(const Span &) = delete;

  /// Attaches an "args" entry (no-op on a dead span).
  void note(const char *Key, std::string Val);
  void noteU64(const char *Key, uint64_t Val);

  /// Records the event now instead of at destruction.
  void end();

  bool live() const { return Live; }

private:
  bool Live = false;
  uint64_t StartUs = 0;
  TraceEvent E;
};

} // namespace obs
} // namespace spf

#endif // SPF_OBS_TRACER_H
