//===- obs/StatRegistry.cpp - Named counters/gauges/histograms ------------===//

#include "obs/StatRegistry.h"

#include "harness/JsonWriter.h"
#include "support/Env.h"

#include "obs/Obs.h"

namespace spf {
namespace obs {

namespace {
/// -1: follow the SPF_OBS environment knob; 0/1: test override.
std::atomic<int> RuntimeOverride{-1};
} // namespace

bool enabled() {
#if SPF_OBS
  int Override = RuntimeOverride.load(std::memory_order_relaxed);
  if (Override >= 0)
    return Override != 0;
  static const bool FromEnv = support::envU64("SPF_OBS", 1) != 0;
  return FromEnv;
#else
  return false;
#endif
}

void setEnabled(bool On) {
#if SPF_OBS
  RuntimeOverride.store(On ? 1 : 0, std::memory_order_relaxed);
#else
  (void)On;
#endif
}

uint64_t Histogram::count() const {
  uint64_t N = 0;
  for (const auto &B : Buckets)
    N += B.load(std::memory_order_relaxed);
  return N;
}

void Histogram::reset() {
  for (auto &B : Buckets)
    B.store(0, std::memory_order_relaxed);
  Sum.store(0, std::memory_order_relaxed);
}

Counter &StatRegistry::counter(const std::string &Name) {
  std::lock_guard<std::mutex> Lock(Mu);
  auto &Slot = Counters[Name];
  if (!Slot)
    Slot = std::make_unique<Counter>();
  return *Slot;
}

Gauge &StatRegistry::gauge(const std::string &Name) {
  std::lock_guard<std::mutex> Lock(Mu);
  auto &Slot = Gauges[Name];
  if (!Slot)
    Slot = std::make_unique<Gauge>();
  return *Slot;
}

Histogram &StatRegistry::histogram(const std::string &Name) {
  std::lock_guard<std::mutex> Lock(Mu);
  auto &Slot = Histograms[Name];
  if (!Slot)
    Slot = std::make_unique<Histogram>();
  return *Slot;
}

void StatRegistry::writeProm(std::ostream &OS) const {
  std::lock_guard<std::mutex> Lock(Mu);
  // Prometheus naming conventions are enforced at exposition time only
  // (writeJson keeps raw registry names): every monotonic counter gets
  // the _total suffix — names already carrying it are unchanged — and
  // every metric gets its # HELP line ahead of # TYPE. The rename map
  // is documented in DESIGN.md ("Prometheus naming").
  auto Total = [](const std::string &Name) {
    if (Name.size() >= 6 && Name.compare(Name.size() - 6, 6, "_total") == 0)
      return Name;
    return Name + "_total";
  };
  for (const auto &[RawName, C] : Counters) {
    std::string Name = Total(RawName);
    OS << "# HELP " << Name << " Monotonic event count.\n";
    OS << "# TYPE " << Name << " counter\n";
    OS << Name << ' ' << C->value() << '\n';
  }
  for (const auto &[Name, G] : Gauges) {
    OS << "# HELP " << Name << " Current value.\n";
    OS << "# TYPE " << Name << " gauge\n";
    OS << Name << ' ' << G->value() << '\n';
  }
  for (const auto &[Name, H] : Histograms) {
    OS << "# HELP " << Name << " Sample distribution.\n";
    OS << "# TYPE " << Name << " histogram\n";
    // Cumulative bucket counts up to the last non-empty bucket, then
    // +Inf, per the Prometheus exposition format.
    unsigned Last = 0;
    for (unsigned B = 0; B < Histogram::NumBuckets; ++B)
      if (H->bucketCount(B) != 0)
        Last = B;
    uint64_t Cum = 0;
    for (unsigned B = 0; B <= Last; ++B) {
      Cum += H->bucketCount(B);
      OS << Name << "_bucket{le=\"" << Histogram::bucketBound(B) << "\"} "
         << Cum << '\n';
    }
    OS << Name << "_bucket{le=\"+Inf\"} " << Cum << '\n';
    OS << Name << "_sum " << H->sum() << '\n';
    OS << Name << "_count " << Cum << '\n';
  }
}

void StatRegistry::writeJson(harness::JsonWriter &J) const {
  std::lock_guard<std::mutex> Lock(Mu);
  J.beginObject();
  J.key("counters").beginObject();
  for (const auto &[Name, C] : Counters)
    J.key(Name).value(C->value());
  J.endObject();
  J.key("gauges").beginObject();
  for (const auto &[Name, G] : Gauges)
    J.key(Name).value(static_cast<int64_t>(G->value()));
  J.endObject();
  J.key("histograms").beginObject();
  for (const auto &[Name, H] : Histograms) {
    J.key(Name).beginObject();
    J.key("count").value(H->count());
    J.key("sum").value(H->sum());
    J.key("buckets").beginObject();
    for (unsigned B = 0; B < Histogram::NumBuckets; ++B)
      if (uint64_t N = H->bucketCount(B))
        J.key(std::to_string(Histogram::bucketBound(B))).value(N);
    J.endObject();
    J.endObject();
  }
  J.endObject();
  J.endObject();
}

void StatRegistry::reset() {
  std::lock_guard<std::mutex> Lock(Mu);
  for (auto &[Name, C] : Counters)
    C->reset();
  for (auto &[Name, G] : Gauges)
    G->reset();
  for (auto &[Name, H] : Histograms)
    H->reset();
}

StatRegistry &StatRegistry::global() {
  // Intentionally leaked: atexit hooks (bench/BenchCommon.h's stats
  // flush) run after function-local statics constructed later in main
  // are destroyed, so a destructible registry would read back empty.
  static StatRegistry *R = new StatRegistry;
  return *R;
}

} // namespace obs
} // namespace spf
