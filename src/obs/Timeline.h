//===- obs/Timeline.h - Phase-timeline sampling of cycle attribution -*- C++ -*-===//
///
/// \file
/// Time-series sampling of the MemorySystem's cycle attribution and
/// prefetch-health counters: a TimelineSampler interposes on the
/// access-event stream (live interpretation or trace replay alike) and
/// snapshots the cumulative CycleAccounting every N *memory* events,
/// plus one flagged sample at every epoch/GC boundary the runner
/// announces.
///
/// The sampling cadence deliberately counts memory events only
/// (loads/stores/prefetches/guarded loads), never ticks: the trace
/// recorder run-length-merges consecutive tick() calls into one Tick
/// event, so tick *call counts* differ between live interpretation and
/// replay while memory events map one-to-one. Counting only the latter
/// makes every sample land at the same point — and therefore carry the
/// same cycle values — on both paths, which the timeline determinism
/// test pins.
///
/// Boundary samples cannot be derived from the event stream (a GC pause
/// is just another merged Tick), so the runner records each boundary's
/// memory-event index into RunResult::BoundaryEvents; replay feeds that
/// list back via setBoundaries() and the sampler re-fires the snapshots
/// at the recorded indices. A boundary snapshot is defined as the state
/// *immediately before the first memory event after the boundary* — the
/// only point near the boundary that both paths can agree on, because
/// the compute ticks around it (previous epoch's tail, the GC pause,
/// the next epoch's head) are merged into one indivisible Tick event in
/// the trace. Periodic snapshots are "immediately after the N-th memory
/// event", which is equally well-defined on both paths.
///
/// The sampler is pure mechanism and always compiled; policy lives with
/// the callers (bench binaries only turn it on when observability is
/// enabled, keeping SPF_OBS=0 runs byte-identical).
///
//===----------------------------------------------------------------------===//

#ifndef SPF_OBS_TIMELINE_H
#define SPF_OBS_TIMELINE_H

#include "exec/AccessSink.h"
#include "sim/MemorySystem.h"

#include <string>
#include <vector>

namespace spf {
namespace obs {

/// One snapshot of the cumulative simulation state, taken after the
/// EventIndex-th memory event.
struct TimelineSample {
  uint64_t EventIndex = 0; ///< Memory events consumed so far.
  bool Boundary = false;   ///< Epoch/GC boundary sample (vs periodic).
  uint64_t Cycles = 0;     ///< Cumulative simulated cycles.
  sim::CycleAccounting Acct; ///< Cumulative attribution; total()==Cycles.
  uint64_t Loads = 0;
  uint64_t SwIssued = 0; ///< MemoryStats::SwPrefetchesIssued.
  uint64_t SwUseful = 0;
  uint64_t SwLate = 0;
  uint64_t SwUnused = 0;

  bool operator==(const TimelineSample &) const = default;
};

/// AccessSink shim that forwards everything to a MemorySystem and
/// snapshots it on the configured cadence. Blocks handed to consume()
/// are split at sample points and forwarded block-wise, so the
/// MemorySystem's batched fast path stays engaged between samples (the
/// block-dispatch contract makes the split invisible to it).
class TimelineSampler final : public exec::AccessSink {
public:
  /// Samples every \p Every memory events (must be nonzero). At most
  /// \p MaxSamples are retained: on overflow the cadence doubles and
  /// every other periodic sample is dropped (boundary samples are always
  /// kept) — deterministically, so live and replay decimate identically.
  explicit TimelineSampler(sim::MemorySystem &Mem, uint64_t Every,
                           size_t MaxSamples = 4096);

  void tick(uint64_t N) override { Mem.tick(N); }
  void load(uint64_t Addr, exec::SiteId Site) override {
    firePre();
    Mem.load(Addr, Site);
    noteMemEvent();
  }
  void store(uint64_t Addr) override {
    firePre();
    Mem.store(Addr);
    noteMemEvent();
  }
  void prefetch(uint64_t Addr) override {
    firePre();
    Mem.prefetch(Addr);
    noteMemEvent();
  }
  void prefetch(uint64_t Addr, exec::SiteId Site) override {
    firePre();
    Mem.prefetch(Addr, Site);
    noteMemEvent();
  }
  void guardedLoad(uint64_t Addr) override {
    firePre();
    Mem.guardedLoad(Addr);
    noteMemEvent();
  }
  void guardedLoad(uint64_t Addr, exec::SiteId Site) override {
    firePre();
    Mem.guardedLoad(Addr, Site);
    noteMemEvent();
  }
  void guardedLoadFault() override {
    firePre();
    Mem.guardedLoadFault();
    noteMemEvent();
  }
  void guardedLoadFault(exec::SiteId Site) override {
    firePre();
    Mem.guardedLoadFault(Site);
    noteMemEvent();
  }
  void consume(const exec::AccessEvent *Events, size_t N) override;

  /// Live-run epoch/GC boundary: records the current memory-event index
  /// for replay and arms a flagged sample that fires immediately before
  /// the next memory event (or at finish()).
  void boundary();

  /// Replay: re-fire boundary samples at these recorded memory-event
  /// indices (ascending; duplicates fire one sample each).
  void setBoundaries(std::vector<uint64_t> Indices);

  /// Fires any boundary still due and appends the final sample. Call
  /// once, after the last event; the timeline is never empty afterwards.
  void finish();

  const std::vector<TimelineSample> &samples() const { return Samples; }
  std::vector<TimelineSample> takeSamples() { return std::move(Samples); }
  /// Boundary indices recorded by boundary() calls (live runs).
  std::vector<uint64_t> takeBoundaryEvents() {
    return std::move(BoundaryEvents);
  }

private:
  void noteMemEvent() {
    if (++EventCount == NextSampleAt)
      takeSample(/*IsBoundary=*/false);
  }
  bool boundaryDue() const {
    return PendingBoundaries ||
           (NextBoundary < Boundaries.size() &&
            Boundaries[NextBoundary] <= EventCount);
  }
  /// Fires every boundary sample due at the current event index — armed
  /// live via boundary() or scheduled via setBoundaries(). Called before
  /// each memory event is forwarded.
  void firePre() {
    while (PendingBoundaries) {
      takeSample(/*IsBoundary=*/true);
      --PendingBoundaries;
    }
    while (NextBoundary < Boundaries.size() &&
           Boundaries[NextBoundary] <= EventCount) {
      takeSample(/*IsBoundary=*/true);
      ++NextBoundary;
    }
  }
  void takeSample(bool IsBoundary);

  sim::MemorySystem &Mem;
  uint64_t Every;
  size_t MaxSamples;
  uint64_t EventCount = 0;
  uint64_t NextSampleAt;
  unsigned PendingBoundaries = 0; ///< Armed by boundary(), live runs.
  std::vector<TimelineSample> Samples;
  std::vector<uint64_t> BoundaryEvents; ///< Recorded by boundary().
  std::vector<uint64_t> Boundaries;     ///< Scheduled by setBoundaries().
  size_t NextBoundary = 0;
};

/// Emits one Chrome-trace 'C' counter event per sample into the process
/// Tracer (no-op when the tracer is inactive): the cycle categories as
/// numeric args on a simulated-cycles time axis, giving a stacked
/// CPI-over-time lane per cell next to the existing phase spans.
void emitTimelineCounters(const std::vector<TimelineSample> &Timeline,
                          const std::string &Lane);

} // namespace obs
} // namespace spf

#endif // SPF_OBS_TIMELINE_H
