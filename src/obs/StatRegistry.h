//===- obs/StatRegistry.h - Named counters/gauges/histograms ----*- C++ -*-===//
///
/// \file
/// A lock-cheap registry of named statistics. Lookup by name takes the
/// registry mutex once; the returned handle is stable for the process
/// lifetime (reset() zeroes values but never invalidates handles), so
/// hot paths cache a reference and update with a single relaxed atomic
/// operation. Histograms bucket by power of two — cheap (a bit-width
/// instruction per observation) and adequate for the microsecond-scale
/// latency distributions the harness cares about.
///
/// Dump formats: Prometheus text exposition (writeProm) for scraping /
/// eyeballing, and a JSON object (writeJson) embedded in the sweep
/// report's "stats" section.
///
//===----------------------------------------------------------------------===//

#ifndef SPF_OBS_STATREGISTRY_H
#define SPF_OBS_STATREGISTRY_H

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>

namespace spf {
namespace harness {
class JsonWriter;
} // namespace harness

namespace obs {

/// Monotonic counter. Relaxed atomics: totals are exact, ordering
/// against other stats is not guaranteed (and not needed).
class Counter {
public:
  void inc(uint64_t N = 1) { V.fetch_add(N, std::memory_order_relaxed); }
  uint64_t value() const { return V.load(std::memory_order_relaxed); }
  void reset() { V.store(0, std::memory_order_relaxed); }

private:
  std::atomic<uint64_t> V{0};
};

/// Last-write-wins signed gauge.
class Gauge {
public:
  void set(int64_t N) { V.store(N, std::memory_order_relaxed); }
  void add(int64_t N) { V.fetch_add(N, std::memory_order_relaxed); }
  int64_t value() const { return V.load(std::memory_order_relaxed); }
  void reset() { V.store(0, std::memory_order_relaxed); }

private:
  std::atomic<int64_t> V{0};
};

/// Histogram with power-of-two buckets: bucket B counts observations V
/// with bit_width(V) == B, i.e. V in [2^(B-1), 2^B). Bucket 0 counts
/// V == 0. Upper bounds are therefore 0, 1, 3, 7, ..., 2^B - 1.
class Histogram {
public:
  static constexpr unsigned NumBuckets = 65;

  void observe(uint64_t V) {
    Buckets[bucketOf(V)].fetch_add(1, std::memory_order_relaxed);
    Sum.fetch_add(V, std::memory_order_relaxed);
  }

  /// Bucket index for a value: the number of significant bits.
  static unsigned bucketOf(uint64_t V) {
    unsigned B = 0;
    while (V != 0) {
      ++B;
      V >>= 1;
    }
    return B;
  }

  /// Inclusive upper bound of bucket \p B (2^B - 1).
  static uint64_t bucketBound(unsigned B) {
    return B >= 64 ? ~0ULL : (1ULL << B) - 1;
  }

  uint64_t bucketCount(unsigned B) const {
    return Buckets[B].load(std::memory_order_relaxed);
  }
  uint64_t count() const;
  uint64_t sum() const { return Sum.load(std::memory_order_relaxed); }
  void reset();

private:
  std::array<std::atomic<uint64_t>, NumBuckets> Buckets{};
  std::atomic<uint64_t> Sum{0};
};

/// Name → stat map. Creation locks; updates through the returned
/// references are lock-free. Iteration order is the name order, so both
/// dump formats are deterministic.
class StatRegistry {
public:
  Counter &counter(const std::string &Name);
  Gauge &gauge(const std::string &Name);
  Histogram &histogram(const std::string &Name);

  /// Prometheus text exposition format (one # TYPE line per family).
  void writeProm(std::ostream &OS) const;

  /// JSON object {"counters":{...},"gauges":{...},"histograms":{...}}.
  /// Histograms dump count/sum plus the non-empty buckets.
  void writeJson(harness::JsonWriter &J) const;

  /// Zeroes every stat. Handles stay valid; nothing is deregistered.
  void reset();

  /// The process-wide registry.
  static StatRegistry &global();

private:
  mutable std::mutex Mu;
  std::map<std::string, std::unique_ptr<Counter>> Counters;
  std::map<std::string, std::unique_ptr<Gauge>> Gauges;
  std::map<std::string, std::unique_ptr<Histogram>> Histograms;
};

/// Shorthand for StatRegistry::global().
inline StatRegistry &stats() { return StatRegistry::global(); }

} // namespace obs
} // namespace spf

#endif // SPF_OBS_STATREGISTRY_H
