//===- obs/Obs.h - Observability master switch ------------------*- C++ -*-===//
///
/// \file
/// Compile-time and runtime gating for the observability subsystem
/// (StatRegistry, Tracer, DecisionLog). Mirrors the fault-injection
/// pattern: the CMake option SPF_OBSERVABILITY (default ON) defines
/// SPF_OBS to 0 to compile every hook out; at runtime the SPF_OBS
/// environment variable (default 1) disables the hooks without a
/// rebuild. Either way the simulated statistics must be bit-identical —
/// observability may time, count and explain, never perturb.
///
//===----------------------------------------------------------------------===//

#ifndef SPF_OBS_OBS_H
#define SPF_OBS_OBS_H

/// Compile-time master switch; the CMake option SPF_OBSERVABILITY
/// (default ON) defines it to 0 to compile the hooks out.
#ifndef SPF_OBS
#define SPF_OBS 1
#endif

namespace spf {
namespace obs {

/// True when the library was built with the hooks compiled in.
constexpr bool compiledIn() {
#if SPF_OBS
  return true;
#else
  return false;
#endif
}

/// True when observability hooks should run: compiled in, and the
/// SPF_OBS environment knob (default 1) is nonzero. Cached after the
/// first call; tests override with setEnabled().
bool enabled();

/// Test-only override of the runtime switch (no effect when the hooks
/// are compiled out).
void setEnabled(bool On);

} // namespace obs
} // namespace spf

#endif // SPF_OBS_OBS_H
