//===- obs/DecisionLog.cpp - Per-loop compiler decision events ------------===//

#include "obs/DecisionLog.h"

#include "harness/JsonReader.h"
#include "harness/JsonWriter.h"
#include "ir/BasicBlock.h"
#include "ir/Instruction.h"

#include <cstdio>

namespace spf {
namespace obs {

thread_local constinit DecisionLog *DecisionScope::Current = nullptr;

void DecisionLog::record(DecisionEvent E) {
  if (E.Method.empty())
    E.Method = CtxMethod;
  if (E.Loop == 0)
    E.Loop = CtxLoop;
  Events.push_back(std::move(E));
}

void DecisionLog::event(const char *Pass, const char *Event, std::string Site,
                        std::string Detail, int64_t Stride, uint64_t Samples,
                        double Confidence) {
  DecisionEvent E;
  E.Pass = Pass;
  E.Event = Event;
  E.Site = std::move(Site);
  E.Detail = std::move(Detail);
  E.Stride = Stride;
  E.Samples = Samples;
  E.Confidence = Confidence;
  record(std::move(E));
}

std::string siteLabel(const ir::Value *V) {
  if (!V)
    return "";
  if (!V->name().empty())
    return "%" + V->name();
  if (const auto *I = dyn_cast<ir::Instruction>(V)) {
    std::string Label = ir::opcodeName(I->opcode());
    if (I->parent())
      Label += "@" + I->parent()->name();
    return Label;
  }
  return "<value>";
}

void writeDecisionJson(harness::JsonWriter &J, const DecisionEvent &E) {
  J.beginObject();
  J.key("method").value(E.Method);
  J.key("loop").value(E.Loop);
  J.key("pass").value(E.Pass);
  J.key("event").value(E.Event);
  if (!E.Site.empty())
    J.key("site").value(E.Site);
  if (!E.Detail.empty())
    J.key("detail").value(E.Detail);
  if (E.Stride != 0)
    J.key("stride").value(E.Stride);
  if (E.Samples != 0)
    J.key("samples").value(E.Samples);
  if (E.Confidence != 0)
    J.key("confidence").value(E.Confidence);
  J.endObject();
}

DecisionEvent parseDecisionEvent(const harness::JsonValue &V) {
  DecisionEvent E;
  E.Method = V.getString("method");
  E.Loop = V.getU64("loop");
  E.Pass = V.getString("pass");
  E.Event = V.getString("event");
  E.Site = V.getString("site");
  E.Detail = V.getString("detail");
  E.Stride = V.getI64("stride");
  E.Samples = V.getU64("samples");
  E.Confidence = V.getDouble("confidence");
  return E;
}

std::string formatDecision(const DecisionEvent &E) {
  std::string Line = E.Method + "/loop@" + std::to_string(E.Loop) + " [" +
                     E.Pass + "] " + E.Event;
  if (!E.Site.empty())
    Line += " " + E.Site;
  if (E.Stride != 0)
    Line += " stride=" + std::to_string(E.Stride);
  if (E.Samples != 0)
    Line += " samples=" + std::to_string(E.Samples);
  if (E.Confidence != 0) {
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), " conf=%.2f", E.Confidence);
    Line += Buf;
  }
  if (!E.Detail.empty())
    Line += " (" + E.Detail + ")";
  return Line;
}

} // namespace obs
} // namespace spf
