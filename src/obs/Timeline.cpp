//===- obs/Timeline.cpp - Phase-timeline sampling -------------------------===//

#include "obs/Timeline.h"

#include "obs/Tracer.h"

using namespace spf;
using namespace spf::obs;

TimelineSampler::TimelineSampler(sim::MemorySystem &Mem, uint64_t Every,
                                 size_t MaxSamples)
    : Mem(Mem), Every(Every ? Every : 1),
      MaxSamples(MaxSamples < 8 ? 8 : MaxSamples),
      NextSampleAt(this->Every) {}

void TimelineSampler::takeSample(bool IsBoundary) {
  TimelineSample S;
  S.EventIndex = EventCount;
  S.Boundary = IsBoundary;
  S.Cycles = Mem.cycles();
  S.Acct = Mem.acct();
  const sim::MemoryStats &M = Mem.stats();
  S.Loads = M.Loads;
  S.SwIssued = M.SwPrefetchesIssued;
  S.SwUseful = M.SwPrefetchesUseful;
  S.SwLate = M.SwPrefetchesLate;
  S.SwUnused = M.SwPrefetchesUnused;
  Samples.push_back(std::move(S));
  if (!IsBoundary)
    NextSampleAt += Every;
  if (Samples.size() < MaxSamples)
    return;
  // Over budget: halve the resolution. Both replay and live runs see the
  // same event stream, so they decimate at the same sample and keep the
  // same survivors — the timeline stays bit-identical across paths.
  Every *= 2;
  std::vector<TimelineSample> Kept;
  Kept.reserve(Samples.size() / 2 + 8);
  bool Keep = true;
  for (TimelineSample &T : Samples) {
    if (T.Boundary) {
      Kept.push_back(std::move(T));
      continue;
    }
    if (Keep)
      Kept.push_back(std::move(T));
    Keep = !Keep;
  }
  Samples = std::move(Kept);
  NextSampleAt = EventCount + Every;
}

void TimelineSampler::consume(const exec::AccessEvent *Events, size_t N) {
  size_t I = 0;
  while (I != N) {
    // Scan to the next snapshot point, then hand the whole sub-block to
    // the MemorySystem's batched path in one call. Two stop shapes:
    // *before* a memory event when a boundary sample is due (so the
    // snapshot includes every merged tick ahead of it), *after* the
    // N-th memory event for the periodic cadence.
    size_t Begin = I;
    bool Periodic = false;
    while (I != N) {
      bool IsMem = Events[I].Kind != exec::EventKind::Tick;
      if (IsMem && boundaryDue())
        break;
      ++I;
      if (IsMem && ++EventCount == NextSampleAt) {
        Periodic = true;
        break;
      }
    }
    if (I != Begin)
      Mem.consume(Events + Begin, I - Begin);
    if (Periodic)
      takeSample(/*IsBoundary=*/false);
    else if (I != N)
      firePre(); // Boundary due right before Events[I].
  }
}

void TimelineSampler::boundary() {
  BoundaryEvents.push_back(EventCount);
  ++PendingBoundaries;
}

void TimelineSampler::setBoundaries(std::vector<uint64_t> Indices) {
  Boundaries = std::move(Indices);
  NextBoundary = 0;
}

void TimelineSampler::finish() {
  firePre();
  takeSample(/*IsBoundary=*/false);
}

void obs::emitTimelineCounters(const std::vector<TimelineSample> &Timeline,
                               const std::string &Lane) {
  Tracer &T = Tracer::instance();
  if (!T.active() || Timeline.empty())
    return;
  for (const TimelineSample &S : Timeline) {
    TraceEvent E;
    E.Name = Lane;
    E.Cat = "spf-timeline";
    E.Ph = 'C';
    // The counter lane's time axis is *simulated* cycles, not wall
    // clock: the phase structure of the run is what the timeline shows,
    // and it is identical whether the cell was interpreted or replayed.
    E.TsUs = S.Cycles;
    E.NumArgs.emplace_back("compute", S.Acct.Compute);
    for (size_t L = 0; L != S.Acct.Level.size(); ++L)
      E.NumArgs.emplace_back("l" + std::to_string(L + 1), S.Acct.Level[L]);
    E.NumArgs.emplace_back("wait", S.Acct.Wait);
    E.NumArgs.emplace_back("mem_penalty", S.Acct.MemPenalty);
    E.NumArgs.emplace_back("translation", S.Acct.Translation);
    E.NumArgs.emplace_back("guard_fault", S.Acct.GuardFault);
    E.NumArgs.emplace_back("prefetch_issue", S.Acct.PrefetchIssue);
    T.record(std::move(E));
  }
}
