//===- obs/DecisionLog.h - Per-loop compiler decision events ----*- C++ -*-===//
///
/// \file
/// Structured "why" events from the prefetching pipeline: which loads
/// were paired in the load dependence graph, which strides object
/// inspection found (with sample counts and confidence), which pairs
/// the planner pruned, which prefetch kind codegen emitted, and why a
/// loop degraded — keyed by method, loop header, and load site. The
/// events live on a DecisionLog owned by the workload runner, travel in
/// RunResult::Decisions through the trace cache / journal / worker
/// record line, and surface as JSON-lines (--decisions-out) and the
/// human summary printed by `bench/sweep --explain`.
///
/// Passes find the active log through a thread-local DecisionScope
/// (same shape as support::FaultScope), so deep helpers like
/// annotateStrides record events without signature changes. All
/// recording happens at JIT-compile time — never inside the simulated
/// (timed) region — and DecisionScope::current() is null when
/// observability is off, so the disabled cost is one thread-local read.
///
//===----------------------------------------------------------------------===//

#ifndef SPF_OBS_DECISIONLOG_H
#define SPF_OBS_DECISIONLOG_H

#include "obs/Obs.h"

#include <cstdint>
#include <string>
#include <vector>

namespace spf {
namespace ir {
class Instruction;
class Value;
} // namespace ir

namespace harness {
class JsonWriter;
class JsonValue;
} // namespace harness

namespace obs {

/// One structured decision. Method/Loop identify the loop (header block
/// id); Site names the load(s) involved, empty for loop-level verdicts.
struct DecisionEvent {
  std::string Method;
  uint64_t Loop = 0; ///< Loop header BasicBlock id.
  std::string Pass;  ///< "inspect", "ldg", "stride", "plan", "codegen",
                     ///< "pipeline".
  std::string Event; ///< e.g. "inter-pattern", "rejected", "degraded".
  std::string Site;  ///< Load site label ("%v12", "%a->%b"), may be "".
  std::string Detail;   ///< Free-text reason / extra context.
  int64_t Stride = 0;   ///< Stride in bytes, when the event has one.
  uint64_t Samples = 0; ///< Inspection samples behind the decision.
  double Confidence = 0; ///< Dominant-stride fraction in [0,1], or 0.
};

/// Ordered event collector for one workload run. Single-threaded by
/// construction (one cell = one thread), so no locking.
class DecisionLog {
public:
  /// Sets the method/loop attributed to subsequent record() calls.
  void setContext(std::string Method, uint64_t Loop) {
    CtxMethod = std::move(Method);
    CtxLoop = Loop;
  }

  /// Records one event, filling Method/Loop from the context when the
  /// event does not carry its own.
  void record(DecisionEvent E);

  /// Convenience: builds and records an event in the current context.
  void event(const char *Pass, const char *Event, std::string Site = "",
             std::string Detail = "", int64_t Stride = 0,
             uint64_t Samples = 0, double Confidence = 0);

  const std::vector<DecisionEvent> &events() const { return Events; }
  std::vector<DecisionEvent> take() { return std::move(Events); }

private:
  std::string CtxMethod;
  uint64_t CtxLoop = 0;
  std::vector<DecisionEvent> Events;
};

/// RAII thread-local installation of the log the pipeline records into.
class DecisionScope {
public:
  explicit DecisionScope(DecisionLog &L) : Prev(Current) { Current = &L; }
  ~DecisionScope() { Current = Prev; }

  DecisionScope(const DecisionScope &) = delete;
  DecisionScope &operator=(const DecisionScope &) = delete;

  /// The active log on this thread, or nullptr (always nullptr when the
  /// observability hooks are compiled out).
  static DecisionLog *current() {
#if SPF_OBS
    return Current;
#else
    return nullptr;
#endif
  }

private:
  DecisionLog *Prev;
  // constinit: no TLS init-guard wrapper (see FaultScope::Current).
  static thread_local constinit DecisionLog *Current;
};

/// Short printable label for a load site: the value's name when it has
/// one, else "opcode@blockname".
std::string siteLabel(const ir::Value *V);

/// JSON (de)serialization used by the worker record line, the journal,
/// and --decisions-out. writeDecisionJson emits an object with only the
/// non-default fields, so records stay compact and byte-stable.
void writeDecisionJson(harness::JsonWriter &J, const DecisionEvent &E);
DecisionEvent parseDecisionEvent(const harness::JsonValue &V);

/// One human-readable line for --explain (no trailing newline).
std::string formatDecision(const DecisionEvent &E);

} // namespace obs
} // namespace spf

#endif // SPF_OBS_DECISIONLOG_H
