//===- obs/Tracer.cpp - Span-based phase tracing --------------------------===//

#include "obs/Tracer.h"

#include "harness/JsonReader.h"
#include "harness/JsonWriter.h"

#include <algorithm>
#include <chrono>
#include <set>
#include <sstream>
#include <unistd.h>

namespace spf {
namespace obs {

Tracer &Tracer::instance() {
  // Intentionally leaked, like StatRegistry::global(): the bench atexit
  // flush must be able to drain it after other statics are gone.
  static Tracer *T = new Tracer;
  return *T;
}

void Tracer::enable() {
#if SPF_OBS
  Active.store(true, std::memory_order_relaxed);
#endif
}

void Tracer::disable() {
#if SPF_OBS
  Active.store(false, std::memory_order_relaxed);
#endif
}

void Tracer::record(TraceEvent E) {
  if (E.Pid == 0)
    E.Pid = static_cast<uint64_t>(::getpid());
  if (E.Tid == 0)
    E.Tid = currentTid();
  std::lock_guard<std::mutex> Lock(Mu);
  Events.push_back(std::move(E));
}

void Tracer::instant(std::string Name,
                     std::vector<std::pair<std::string, std::string>> Args) {
  if (!active())
    return;
  TraceEvent E;
  E.Name = std::move(Name);
  E.Ph = 'i';
  E.TsUs = nowUs();
  E.Args = std::move(Args);
  record(std::move(E));
}

std::vector<TraceEvent> Tracer::drain() {
  std::lock_guard<std::mutex> Lock(Mu);
  std::vector<TraceEvent> Out;
  Out.swap(Events);
  return Out;
}

size_t Tracer::eventCount() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Events.size();
}

void Tracer::import(std::vector<TraceEvent> Imported) {
  std::lock_guard<std::mutex> Lock(Mu);
  for (auto &E : Imported)
    Events.push_back(std::move(E));
}

uint64_t Tracer::nowUs() {
  // steady_clock is CLOCK_MONOTONIC on Linux: one machine-wide time
  // axis shared by the supervisor and every forked worker.
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

uint64_t Tracer::currentTid() {
  static std::atomic<uint64_t> NextTid{1};
  thread_local uint64_t Tid = NextTid.fetch_add(1, std::memory_order_relaxed);
  return Tid;
}

static void writeEventJson(harness::JsonWriter &J, const TraceEvent &E) {
  J.beginObject();
  J.key("name").value(E.Name);
  J.key("cat").value(E.Cat);
  J.key("ph").value(std::string(1, E.Ph));
  J.key("ts").value(E.TsUs);
  if (E.Ph == 'X')
    J.key("dur").value(E.DurUs);
  J.key("pid").value(E.Pid);
  J.key("tid").value(E.Tid);
  if (E.Ph == 'i')
    J.key("s").value("t"); // Instant scope: thread.
  if (!E.Args.empty() || !E.NumArgs.empty()) {
    J.key("args").beginObject();
    for (const auto &[K, V] : E.Args)
      J.key(K).value(V);
    for (const auto &[K, V] : E.NumArgs)
      J.key(K).value(V);
    J.endObject();
  }
  J.endObject();
}

size_t Tracer::writeChromeTrace(std::ostream &OS,
                                const std::string &ProcessLabel) {
  std::vector<TraceEvent> All = drain();
  // Deterministic file order: by time, then pid/tid.
  std::stable_sort(All.begin(), All.end(),
                   [](const TraceEvent &A, const TraceEvent &B) {
                     if (A.TsUs != B.TsUs)
                       return A.TsUs < B.TsUs;
                     if (A.Pid != B.Pid)
                       return A.Pid < B.Pid;
                     return A.Tid < B.Tid;
                   });
  uint64_t SelfPid = static_cast<uint64_t>(::getpid());
  std::set<uint64_t> Pids;
  for (const auto &E : All)
    Pids.insert(E.Pid);

  harness::JsonWriter J(OS);
  J.beginObject();
  J.key("traceEvents").beginArray();
  // process_name metadata first, one per pid lane.
  for (uint64_t Pid : Pids) {
    J.beginObject();
    J.key("name").value("process_name");
    J.key("ph").value("M");
    J.key("pid").value(Pid);
    J.key("tid").value(uint64_t(0));
    J.key("args").beginObject();
    J.key("name").value(Pid == SelfPid ? ProcessLabel
                                       : "spf worker " + std::to_string(Pid));
    J.endObject();
    J.endObject();
  }
  for (const auto &E : All)
    writeEventJson(J, E);
  J.endArray();
  J.key("displayTimeUnit").value("ms");
  J.endObject();
  OS << '\n';
  return All.size();
}

void Tracer::writeEventsJson(harness::JsonWriter &J,
                             const std::vector<TraceEvent> &Events) {
  J.beginArray();
  for (const auto &E : Events)
    writeEventJson(J, E);
  J.endArray();
}

std::vector<TraceEvent>
Tracer::parseEventsJson(const harness::JsonValue &V) {
  std::vector<TraceEvent> Out;
  if (V.kind() != harness::JsonValue::Kind::Array)
    return Out;
  for (const auto &Elem : V.array()) {
    if (Elem.kind() != harness::JsonValue::Kind::Object)
      continue;
    TraceEvent E;
    E.Name = Elem.getString("name");
    E.Cat = Elem.getString("cat", "spf");
    std::string Ph = Elem.getString("ph", "X");
    E.Ph = Ph.empty() ? 'X' : Ph[0];
    if (E.Ph == 'M')
      continue; // Metadata is regenerated at write time.
    E.TsUs = Elem.getU64("ts");
    E.DurUs = Elem.getU64("dur");
    E.Pid = Elem.getU64("pid");
    E.Tid = Elem.getU64("tid");
    if (Elem.has("args")) {
      const harness::JsonValue &Args = Elem.get("args");
      if (Args.kind() == harness::JsonValue::Kind::Object) {
        // JsonValue keeps object members sorted by key; argument order
        // is presentational only, so that is fine.
        for (const auto &[K, AV] : Args.objectMembers()) {
          if (AV.kind() == harness::JsonValue::Kind::String)
            E.Args.emplace_back(K, AV.str());
          else
            E.NumArgs.emplace_back(K, AV.u64());
        }
      }
    }
    Out.push_back(std::move(E));
  }
  return Out;
}

Span::Span(const char *Name, const char *Cat) {
  Tracer &T = Tracer::instance();
  if (!T.active())
    return;
  Live = true;
  StartUs = Tracer::nowUs();
  E.Name = Name;
  E.Cat = Cat;
}

void Span::note(const char *Key, std::string Val) {
  if (Live)
    E.Args.emplace_back(Key, std::move(Val));
}

void Span::noteU64(const char *Key, uint64_t Val) {
  if (Live)
    E.Args.emplace_back(Key, std::to_string(Val));
}

void Span::end() {
  if (!Live)
    return;
  Live = false;
  E.TsUs = StartUs;
  E.DurUs = Tracer::nowUs() - StartUs;
  Tracer::instance().record(std::move(E));
}

} // namespace obs
} // namespace spf
