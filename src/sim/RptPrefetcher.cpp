//===- sim/RptPrefetcher.cpp ----------------------------------------------===//

#include "sim/RptPrefetcher.h"

using namespace spf;
using namespace spf::sim;

const RptPrefetcher::Entry *RptPrefetcher::entryFor(uint32_t Site) const {
  for (const Entry &E : Entries)
    if (E.Valid && E.Site == Site)
      return &E;
  return nullptr;
}

void RptPrefetcher::observe(uint32_t Site, uint64_t Addr,
                            std::vector<uint64_t> &Out) {
  ++Observed;
  ++UseClock;

  Entry *E = nullptr;
  for (Entry &Cand : Entries)
    if (Cand.Valid && Cand.Site == Site) {
      E = &Cand;
      break;
    }

  if (!E) {
    // Allocate: first invalid slot, else the LRU victim.
    Entry *Victim = &Entries[0];
    for (Entry &Cand : Entries) {
      if (!Cand.Valid) {
        Victim = &Cand;
        break;
      }
      if (Cand.LastUse < Victim->LastUse)
        Victim = &Cand;
    }
    *Victim = Entry();
    Victim->Valid = true;
    Victim->Site = Site;
    Victim->PrevAddr = Addr;
    Victim->Stride = 0;
    Victim->State = RptState::Init;
    Victim->LastUse = UseClock;
    return;
  }

  E->LastUse = UseClock;
  int64_t NewStride =
      static_cast<int64_t>(Addr) - static_cast<int64_t>(E->PrevAddr);
  bool Correct = NewStride == E->Stride;
  switch (E->State) {
  case RptState::Init:
    if (Correct) {
      E->State = RptState::Steady;
    } else {
      E->Stride = NewStride;
      E->State = RptState::Transient;
    }
    break;
  case RptState::Transient:
    if (Correct) {
      E->State = RptState::Steady;
    } else {
      E->Stride = NewStride;
      E->State = RptState::NoPred;
    }
    break;
  case RptState::Steady:
    // One wrong stride demotes but keeps the old stride: a single
    // irregular access (pointer chase hiccup) should not forget a
    // long-confirmed pattern.
    if (!Correct)
      E->State = RptState::Init;
    break;
  case RptState::NoPred:
    if (Correct)
      E->State = RptState::Transient;
    else
      E->Stride = NewStride;
    break;
  }
  E->PrevAddr = Addr;

  if (E->State != RptState::Steady || E->Stride == 0)
    return;
  uint64_t Page = pageOf(Addr);
  for (unsigned D = 1; D <= Degree; ++D) {
    uint64_t Target =
        static_cast<uint64_t>(static_cast<int64_t>(Addr) + E->Stride * D);
    if (pageOf(Target) != Page)
      break; // Hardware prefetchers never cross a page (no walker).
    Out.push_back(Target);
    ++Issued;
  }
}
