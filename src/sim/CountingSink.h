//===- sim/CountingSink.h - Event-count-only access sink --------*- C++ -*-===//
///
/// \file
/// An AccessSink that models nothing: it just counts events. Useful for
/// cheap passes that need only the shape of an access stream — sizing a
/// trace before replaying it through a real machine, sanity-checking a
/// decode against its recording, or measuring event mix — at a fraction
/// of a MemorySystem replay's cost.
///
//===----------------------------------------------------------------------===//

#ifndef SPF_SIM_COUNTINGSINK_H
#define SPF_SIM_COUNTINGSINK_H

#include "exec/AccessSink.h"

namespace spf {
namespace sim {

class CountingSink final : public exec::AccessSink {
public:
  uint64_t TickCalls = 0;
  uint64_t TicksTotal = 0; ///< Sum of tick() arguments.
  uint64_t Loads = 0;
  uint64_t Stores = 0;
  uint64_t Prefetches = 0;
  uint64_t GuardedLoads = 0;
  uint64_t GuardedLoadFaults = 0;
  /// One past the largest load site seen (0 when no loads).
  exec::SiteId LoadSites = 0;

  void tick(uint64_t N) override {
    ++TickCalls;
    TicksTotal += N;
  }
  void load(uint64_t, exec::SiteId Site) override {
    ++Loads;
    if (Site >= LoadSites)
      LoadSites = Site + 1;
  }
  void store(uint64_t) override { ++Stores; }
  void prefetch(uint64_t) override { ++Prefetches; }
  void guardedLoad(uint64_t) override { ++GuardedLoads; }
  void guardedLoadFault() override { ++GuardedLoadFaults; }

  /// Memory events + tick calls (how many sink calls were consumed).
  uint64_t totalCalls() const {
    return TickCalls + Loads + Stores + Prefetches + GuardedLoads +
           GuardedLoadFaults;
  }
};

} // namespace sim
} // namespace spf

#endif // SPF_SIM_COUNTINGSINK_H
