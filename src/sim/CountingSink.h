//===- sim/CountingSink.h - Event-count-only access sink --------*- C++ -*-===//
///
/// \file
/// An AccessSink that models nothing: it just counts events. Useful for
/// cheap passes that need only the shape of an access stream — sizing a
/// trace before replaying it through a real machine, sanity-checking a
/// decode against its recording, or measuring event mix — at a fraction
/// of a MemorySystem replay's cost.
///
//===----------------------------------------------------------------------===//

#ifndef SPF_SIM_COUNTINGSINK_H
#define SPF_SIM_COUNTINGSINK_H

#include "exec/AccessSink.h"

namespace spf {
namespace sim {

class CountingSink final : public exec::AccessSink {
public:
  uint64_t TickCalls = 0;
  uint64_t TicksTotal = 0; ///< Sum of tick() arguments.
  uint64_t Loads = 0;
  uint64_t Stores = 0;
  uint64_t Prefetches = 0;
  uint64_t GuardedLoads = 0;
  uint64_t GuardedLoadFaults = 0;
  /// One past the largest load site seen (0 when no loads).
  exec::SiteId LoadSites = 0;

  void tick(uint64_t N) override {
    ++TickCalls;
    TicksTotal += N;
  }
  void load(uint64_t, exec::SiteId Site) override {
    ++Loads;
    if (Site >= LoadSites)
      LoadSites = Site + 1;
  }
  void store(uint64_t) override { ++Stores; }
  void prefetch(uint64_t) override { ++Prefetches; }
  void guardedLoad(uint64_t) override { ++GuardedLoads; }
  void guardedLoadFault() override { ++GuardedLoadFaults; }

  /// Block dispatch (replay fast path): same counts as per-event calls,
  /// one virtual call per block.
  void consume(const exec::AccessEvent *Events, size_t N) override {
    for (size_t I = 0; I != N; ++I) {
      const exec::AccessEvent &E = Events[I];
      switch (E.Kind) {
      case exec::EventKind::Tick:
        ++TickCalls;
        TicksTotal += E.Value;
        break;
      case exec::EventKind::Load:
        ++Loads;
        if (E.Site >= LoadSites)
          LoadSites = E.Site + 1;
        break;
      case exec::EventKind::Store:
        ++Stores;
        break;
      case exec::EventKind::Prefetch:
        ++Prefetches;
        break;
      case exec::EventKind::GuardedLoad:
        ++GuardedLoads;
        break;
      case exec::EventKind::GuardedLoadFault:
        ++GuardedLoadFaults;
        break;
      }
    }
  }

  /// Memory events + tick calls (how many sink calls were consumed).
  uint64_t totalCalls() const {
    return TickCalls + Loads + Stores + Prefetches + GuardedLoads +
           GuardedLoadFaults;
  }
};

} // namespace sim
} // namespace spf

#endif // SPF_SIM_COUNTINGSINK_H
