//===- sim/MachineConfig.cpp ----------------------------------------------===//

#include "sim/MachineConfig.h"

#include "harness/JsonReader.h"
#include "harness/JsonWriter.h"

#include <cctype>
#include <fstream>
#include <sstream>

using namespace spf;
using namespace spf::sim;

const char *sim::hwPrefetchKindName(HwPrefetchKind K) {
  switch (K) {
  case HwPrefetchKind::None:
    return "none";
  case HwPrefetchKind::Stream:
    return "stream";
  case HwPrefetchKind::Rpt:
    return "rpt";
  }
  return "?";
}

std::optional<HwPrefetchKind>
sim::parseHwPrefetchKind(const std::string &Name) {
  if (Name == "none")
    return HwPrefetchKind::None;
  if (Name == "stream")
    return HwPrefetchKind::Stream;
  if (Name == "rpt")
    return HwPrefetchKind::Rpt;
  return std::nullopt;
}

const char *sim::tlbWalkName(TlbWalk W) {
  return W == TlbWalk::Flat ? "flat" : "walked";
}

std::optional<TlbWalk> sim::parseTlbWalk(const std::string &Name) {
  if (Name == "flat")
    return TlbWalk::Flat;
  if (Name == "walked")
    return TlbWalk::Walked;
  return std::nullopt;
}

MachineConfig MachineConfig::pentium4() {
  MachineConfig C;
  C.Name = "Pentium 4";
  // Penalties model the *exposed* (post out-of-order overlap) stall per
  // miss event, not raw DRAM latency: the evaluation machines hide most
  // of the latency behind independent work, which a trace-driven cost
  // model must fold into the per-event charge.
  C.Levels = {
      {"L1", CacheParams{8 * 1024, 64, 4}, /*HitCycles=*/1},
      {"L2", CacheParams{256 * 1024, 128, 8}, /*HitCycles=*/6},
  };
  C.TlbEntries = 64;
  C.PageBytes = 4096;
  C.Walk = TlbWalk::Flat;
  C.MemPenalty = 100;
  C.TlbMissPenalty = 35;
  C.PrefetchFillLatency = 75;
  C.SwFillLevel = 1; // Software prefetches fill only the L2 (Section 4).
  C.HwPrefetch = HwPrefetchKind::Stream;
  return C;
}

MachineConfig MachineConfig::athlonMP() {
  MachineConfig C;
  C.Name = "Athlon MP";
  // 1.2 GHz: shallower pipeline, fewer cycles of exposed memory latency
  // and a hardware page walker with a large DTLB.
  C.Levels = {
      {"L1", CacheParams{64 * 1024, 64, 2}, /*HitCycles=*/1},
      {"L2", CacheParams{256 * 1024, 64, 16}, /*HitCycles=*/4},
  };
  C.TlbEntries = 256;
  C.PageBytes = 4096;
  C.Walk = TlbWalk::Flat;
  C.MemPenalty = 80;
  C.TlbMissPenalty = 18;
  C.PrefetchFillLatency = 80;
  C.SwFillLevel = 0; // Software prefetches fill the L1 (and the L2).
  C.HwPrefetch = HwPrefetchKind::Stream;
  return C;
}

MachineConfig MachineConfig::modern3() {
  MachineConfig C;
  C.Name = "Modern3L";
  // A generic three-level out-of-order core: bigger, deeper hierarchy,
  // hardware page walker (so TLB miss cost depends on cache state), and
  // a per-site stride prefetcher at the LLC.
  C.Levels = {
      {"L1", CacheParams{32 * 1024, 64, 8}, /*HitCycles=*/1},
      {"L2", CacheParams{1024 * 1024, 64, 16}, /*HitCycles=*/10},
      {"LLC", CacheParams{8 * 1024 * 1024, 64, 16}, /*HitCycles=*/28},
  };
  C.TlbEntries = 64;
  C.PageBytes = 4096;
  C.Walk = TlbWalk::Walked;
  C.WalkLevels = 4;
  C.WalkEntryBytes = 8;
  C.WalkIndexBits = 9;
  C.MemPenalty = 120;
  C.PrefetchFillLatency = 100;
  C.SwFillLevel = 0; // prefetcht0 semantics: fill every level.
  C.HwPrefetch = HwPrefetchKind::Rpt;
  C.RptEntries = 64;
  C.HwPrefetchDegree = 2;
  return C;
}

namespace {

/// Registry-normal form: lowercase alphanumerics only, so "Pentium 4",
/// "pentium4" and "PENTIUM_4" collide deliberately.
std::string normalizeName(const std::string &Name) {
  std::string N;
  for (char Ch : Name)
    if (std::isalnum(static_cast<unsigned char>(Ch)))
      N += static_cast<char>(std::tolower(static_cast<unsigned char>(Ch)));
  return N;
}

bool isPowerOfTwo(uint64_t V) { return V != 0 && (V & (V - 1)) == 0; }

} // namespace

std::optional<MachineConfig> MachineConfig::byName(const std::string &Name) {
  std::string N = normalizeName(Name);
  for (MachineConfig (*Builtin)() : {pentium4, athlonMP, modern3}) {
    MachineConfig C = Builtin();
    if (N == normalizeName(C.Name))
      return C;
  }
  // Short aliases for the CLI.
  if (N == "p4")
    return pentium4();
  if (N == "athlon")
    return athlonMP();
  if (N == "modern")
    return modern3();
  return std::nullopt;
}

std::vector<std::string> MachineConfig::knownNames() {
  return {pentium4().Name, athlonMP().Name, modern3().Name};
}

std::string MachineConfig::validate() const {
  std::ostringstream Err;
  auto Bad = [&Err](const std::string &What) { Err << What << "; "; };

  if (Name.empty())
    Bad("machine has no name");
  if (Levels.size() < 2)
    Bad("hierarchy needs at least two cache levels, got " +
        std::to_string(Levels.size()));
  if (Levels.size() > 8)
    Bad("more than 8 cache levels");
  for (size_t I = 0; I != Levels.size(); ++I) {
    const CacheLevel &L = Levels[I];
    std::string Tag =
        "level " + std::to_string(I) + " (" + L.Label + "): ";
    if (L.Label.empty())
      Bad("level " + std::to_string(I) + " has no label");
    if (!isPowerOfTwo(L.Geometry.LineBytes) || L.Geometry.LineBytes < 2)
      Bad(Tag + "line bytes must be a power of two >= 2, got " +
          std::to_string(L.Geometry.LineBytes));
    if (L.Geometry.Assoc == 0)
      Bad(Tag + "associativity must be nonzero");
    else if (L.Geometry.LineBytes >= 2 &&
             isPowerOfTwo(L.Geometry.LineBytes)) {
      uint64_t Sets =
          L.Geometry.SizeBytes / (uint64_t(L.Geometry.LineBytes) *
                                  L.Geometry.Assoc);
      if (!isPowerOfTwo(Sets))
        Bad(Tag + "size/(line*assoc) must be a nonzero power of two, got " +
            std::to_string(Sets) + " sets");
    }
    if (I > 0) {
      if (L.Geometry.SizeBytes < Levels[I - 1].Geometry.SizeBytes)
        Bad(Tag + "smaller than the level above it");
      if (L.Geometry.LineBytes < Levels[I - 1].Geometry.LineBytes)
        Bad(Tag + "line smaller than the level above it");
    }
  }
  if (TlbEntries == 0)
    Bad("TLB needs at least one entry");
  if (!isPowerOfTwo(PageBytes) || PageBytes < 2)
    Bad("page bytes must be a power of two >= 2, got " +
        std::to_string(PageBytes));
  if (!Levels.empty() && isPowerOfTwo(PageBytes) &&
      PageBytes < Levels.back().Geometry.LineBytes)
    Bad("page smaller than the largest cache line");
  if (Walk == TlbWalk::Walked) {
    if (WalkLevels == 0 || WalkLevels > 8)
      Bad("walk levels must be 1..8, got " + std::to_string(WalkLevels));
    if (WalkEntryBytes == 0)
      Bad("walk entry bytes must be nonzero");
    if (WalkIndexBits == 0 || WalkIndexBits > 16)
      Bad("walk index bits must be 1..16, got " +
          std::to_string(WalkIndexBits));
  }
  if (SwFillLevel >= Levels.size())
    Bad("software prefetch fill level " + std::to_string(SwFillLevel) +
        " is past the hierarchy (" + std::to_string(Levels.size()) +
        " levels)");
  if (HwPrefetch == HwPrefetchKind::Stream && HwPrefetchStreams == 0)
    Bad("stream prefetcher needs at least one stream");
  if (HwPrefetch == HwPrefetchKind::Rpt && RptEntries == 0)
    Bad("RPT prefetcher needs at least one entry");
  if (HwPrefetch != HwPrefetchKind::None && HwPrefetchDegree == 0)
    Bad("hardware prefetch degree must be nonzero");

  std::string S = Err.str();
  if (!S.empty())
    S.erase(S.size() - 2); // Trailing "; ".
  return S;
}

std::optional<MachineConfig>
MachineConfig::fromJsonText(const std::string &Text, std::string *Error) {
  auto Fail = [Error](const std::string &Msg) -> std::optional<MachineConfig> {
    if (Error)
      *Error = Msg;
    return std::nullopt;
  };

  std::string ParseError;
  std::unique_ptr<harness::JsonValue> Doc =
      harness::JsonValue::parse(Text, &ParseError);
  if (!Doc)
    return Fail("malformed JSON: " + ParseError);
  if (Doc->kind() != harness::JsonValue::Kind::Object)
    return Fail("machine file must be a JSON object");

  MachineConfig C;
  C.Levels.clear();
  C.Name = Doc->getString("name");

  const harness::JsonValue &Levels = Doc->get("levels");
  if (Levels.kind() != harness::JsonValue::Kind::Array)
    return Fail("machine file needs a \"levels\" array");
  for (const harness::JsonValue &L : Levels.array()) {
    if (L.kind() != harness::JsonValue::Kind::Object)
      return Fail("each cache level must be a JSON object");
    CacheLevel Lvl;
    Lvl.Label = L.getString("label",
                            "L" + std::to_string(C.Levels.size() + 1));
    Lvl.Geometry.SizeBytes = L.getU64("size_bytes", 0);
    Lvl.Geometry.LineBytes = static_cast<unsigned>(L.getU64("line_bytes", 0));
    Lvl.Geometry.Assoc = static_cast<unsigned>(L.getU64("assoc", 0));
    Lvl.HitCycles = static_cast<unsigned>(L.getU64("hit_cycles", 1));
    C.Levels.push_back(std::move(Lvl));
  }

  C.TlbEntries = static_cast<unsigned>(Doc->getU64("tlb_entries", 64));
  C.PageBytes = static_cast<unsigned>(Doc->getU64("page_bytes", 4096));

  const harness::JsonValue &Tlb = Doc->get("tlb");
  if (!Tlb.isNull()) {
    if (Tlb.kind() != harness::JsonValue::Kind::Object)
      return Fail("\"tlb\" must be a JSON object");
    std::string WalkStr = Tlb.getString("walk", "flat");
    std::optional<TlbWalk> W = parseTlbWalk(WalkStr);
    if (!W)
      return Fail("unknown tlb walk mode \"" + WalkStr +
                  "\" (expected \"flat\" or \"walked\")");
    C.Walk = *W;
    C.TlbMissPenalty =
        static_cast<unsigned>(Tlb.getU64("miss_penalty", C.TlbMissPenalty));
    C.WalkLevels =
        static_cast<unsigned>(Tlb.getU64("walk_levels", C.WalkLevels));
    C.WalkEntryBytes = static_cast<unsigned>(
        Tlb.getU64("walk_entry_bytes", C.WalkEntryBytes));
    C.WalkIndexBits = static_cast<unsigned>(
        Tlb.getU64("walk_index_bits", C.WalkIndexBits));
  }

  C.ComputeCycles =
      static_cast<unsigned>(Doc->getU64("compute_cycles", C.ComputeCycles));
  C.MemPenalty =
      static_cast<unsigned>(Doc->getU64("mem_penalty", C.MemPenalty));
  C.PrefetchIssueCost = static_cast<unsigned>(
      Doc->getU64("prefetch_issue_cost", C.PrefetchIssueCost));
  C.GuardedLoadCost = static_cast<unsigned>(
      Doc->getU64("guarded_load_cost", C.GuardedLoadCost));
  C.GuardFaultCost = static_cast<unsigned>(
      Doc->getU64("guard_fault_cost", C.GuardFaultCost));
  C.PrefetchFillLatency = static_cast<unsigned>(
      Doc->getU64("prefetch_fill_latency", C.PrefetchFillLatency));

  // The software-prefetch fill level is named by label, so machine files
  // read the way the paper talks ("fills the L2").
  if (Doc->has("sw_prefetch_fill")) {
    std::string Fill = Doc->getString("sw_prefetch_fill");
    bool Found = false;
    for (size_t I = 0; I != C.Levels.size(); ++I)
      if (C.Levels[I].Label == Fill) {
        C.SwFillLevel = static_cast<unsigned>(I);
        Found = true;
        break;
      }
    if (!Found)
      return Fail("sw_prefetch_fill \"" + Fill +
                  "\" names no cache level label");
  } else {
    C.SwFillLevel = C.Levels.size() > 1 ? 1 : 0;
  }

  const harness::JsonValue &Hw = Doc->get("hw_prefetch");
  if (!Hw.isNull()) {
    if (Hw.kind() != harness::JsonValue::Kind::Object)
      return Fail("\"hw_prefetch\" must be a JSON object");
    std::string KindStr = Hw.getString("kind", "stream");
    std::optional<HwPrefetchKind> K = parseHwPrefetchKind(KindStr);
    if (!K)
      return Fail("unknown hw_prefetch kind \"" + KindStr +
                  "\" (expected \"none\", \"stream\" or \"rpt\")");
    C.HwPrefetch = *K;
    C.HwPrefetchStreams = static_cast<unsigned>(
        Hw.getU64("streams", C.HwPrefetchStreams));
    C.HwPrefetchDegree =
        static_cast<unsigned>(Hw.getU64("degree", C.HwPrefetchDegree));
    C.RptEntries =
        static_cast<unsigned>(Hw.getU64("entries", C.RptEntries));
  }

  std::string Invalid = C.validate();
  if (!Invalid.empty())
    return Fail("invalid machine config" +
                (C.Name.empty() ? std::string() : " \"" + C.Name + "\"") +
                ": " + Invalid);
  return C;
}

std::optional<MachineConfig> MachineConfig::fromFile(const std::string &Path,
                                                     std::string *Error) {
  std::ifstream IS(Path);
  if (!IS) {
    if (Error)
      *Error = "cannot read machine file " + Path;
    return std::nullopt;
  }
  std::ostringstream SS;
  SS << IS.rdbuf();
  std::string Err;
  std::optional<MachineConfig> C = fromJsonText(SS.str(), &Err);
  if (!C && Error)
    *Error = Path + ": " + Err;
  return C;
}

std::string MachineConfig::toJsonText() const {
  std::ostringstream OS;
  harness::JsonWriter J(OS);
  J.beginObject();
  J.key("name").value(Name);
  J.key("levels").beginArray();
  for (const CacheLevel &L : Levels) {
    J.beginObject();
    J.key("label").value(L.Label);
    J.key("size_bytes").value(L.Geometry.SizeBytes);
    J.key("line_bytes").value(static_cast<uint64_t>(L.Geometry.LineBytes));
    J.key("assoc").value(static_cast<uint64_t>(L.Geometry.Assoc));
    J.key("hit_cycles").value(static_cast<uint64_t>(L.HitCycles));
    J.endObject();
  }
  J.endArray();
  J.key("tlb_entries").value(static_cast<uint64_t>(TlbEntries));
  J.key("page_bytes").value(static_cast<uint64_t>(PageBytes));
  J.key("tlb").beginObject();
  J.key("walk").value(tlbWalkName(Walk));
  J.key("miss_penalty").value(static_cast<uint64_t>(TlbMissPenalty));
  J.key("walk_levels").value(static_cast<uint64_t>(WalkLevels));
  J.key("walk_entry_bytes").value(static_cast<uint64_t>(WalkEntryBytes));
  J.key("walk_index_bits").value(static_cast<uint64_t>(WalkIndexBits));
  J.endObject();
  J.key("compute_cycles").value(static_cast<uint64_t>(ComputeCycles));
  J.key("mem_penalty").value(static_cast<uint64_t>(MemPenalty));
  J.key("prefetch_issue_cost")
      .value(static_cast<uint64_t>(PrefetchIssueCost));
  J.key("guarded_load_cost").value(static_cast<uint64_t>(GuardedLoadCost));
  J.key("guard_fault_cost").value(static_cast<uint64_t>(GuardFaultCost));
  J.key("prefetch_fill_latency")
      .value(static_cast<uint64_t>(PrefetchFillLatency));
  J.key("sw_prefetch_fill").value(Levels[SwFillLevel].Label);
  J.key("hw_prefetch").beginObject();
  J.key("kind").value(hwPrefetchKindName(HwPrefetch));
  J.key("streams").value(static_cast<uint64_t>(HwPrefetchStreams));
  J.key("degree").value(static_cast<uint64_t>(HwPrefetchDegree));
  J.key("entries").value(static_cast<uint64_t>(RptEntries));
  J.endObject();
  J.endObject();
  return OS.str();
}
