//===- sim/MachineConfig.cpp ----------------------------------------------===//

#include "sim/MachineConfig.h"

using namespace spf;
using namespace spf::sim;

MachineConfig MachineConfig::pentium4() {
  MachineConfig C;
  C.Name = "Pentium 4";
  C.L1 = CacheParams{8 * 1024, 64, 4};
  C.L2 = CacheParams{256 * 1024, 128, 8};
  C.TlbEntries = 64;
  C.PageBytes = 4096;
  // Penalties model the *exposed* (post out-of-order overlap) stall per
  // miss event, not raw DRAM latency: the evaluation machines hide most
  // of the latency behind independent work, which a trace-driven cost
  // model must fold into the per-event charge.
  C.L1HitCycles = 1;
  C.L2HitPenalty = 6;
  C.MemPenalty = 100;
  C.TlbMissPenalty = 35;
  C.PrefetchFillLatency = 75;
  C.SwPrefetchFill = PrefetchFillLevel::L2;
  return C;
}

MachineConfig MachineConfig::athlonMP() {
  MachineConfig C;
  C.Name = "Athlon MP";
  C.L1 = CacheParams{64 * 1024, 64, 2};
  C.L2 = CacheParams{256 * 1024, 64, 16};
  C.TlbEntries = 256;
  C.PageBytes = 4096;
  // 1.2 GHz: shallower pipeline, fewer cycles of exposed memory latency
  // and a hardware page walker with a large DTLB.
  C.L1HitCycles = 1;
  C.L2HitPenalty = 4;
  C.MemPenalty = 80;
  C.TlbMissPenalty = 18;
  C.PrefetchFillLatency = 80;
  C.SwPrefetchFill = PrefetchFillLevel::L1;
  return C;
}
