//===- sim/HardwarePrefetcher.h - Stream prefetcher -------------*- C++ -*-===//
///
/// \file
/// A simple multi-stream sequential hardware prefetcher, as present on
/// both of the paper's machines. Its existence motivates the paper's third
/// profitability condition: software prefetching a load whose stride is at
/// most half a cache line "will not be profitable, especially on
/// processors with hardware prefetching".
///
//===----------------------------------------------------------------------===//

#ifndef SPF_SIM_HARDWAREPREFETCHER_H
#define SPF_SIM_HARDWAREPREFETCHER_H

#include <bit>
#include <cstdint>
#include <vector>

namespace spf {
namespace sim {

/// Detects ascending sequential line streams on demand misses and emits
/// next-line prefetch addresses. Streams never cross a page boundary
/// (hardware prefetchers stop at 4 KB pages).
class HardwarePrefetcher {
public:
  HardwarePrefetcher(unsigned NumStreams, unsigned Degree, unsigned LineBytes,
                     unsigned PageBytes)
      : NumStreams(NumStreams), Degree(Degree), LineBytes(LineBytes),
        PageBytes(PageBytes),
        LineShift((LineBytes & (LineBytes - 1)) == 0
                      ? static_cast<unsigned>(std::countr_zero(LineBytes))
                      : 0),
        PageShift((PageBytes & (PageBytes - 1)) == 0
                      ? static_cast<unsigned>(std::countr_zero(PageBytes))
                      : 0),
        Streams(NumStreams) {}

  /// Observes a demand miss at \p Addr; appends prefetch target addresses
  /// to \p Out when a stream is confirmed.
  void onDemandMiss(uint64_t Addr, std::vector<uint64_t> &Out);

  uint64_t issuedPrefetches() const { return Issued; }

private:
  struct Stream {
    uint64_t NextLine = 0;
    uint64_t LastUse = 0;
    bool Valid = false;
  };

  /// Shift-form division for the power-of-two geometry every real machine
  /// uses (a shift of 0 falls back to actual division).
  uint64_t lineOf(uint64_t Addr) const {
    return LineShift ? Addr >> LineShift : Addr / LineBytes;
  }
  uint64_t pageOf(uint64_t Addr) const {
    return PageShift ? Addr >> PageShift : Addr / PageBytes;
  }

  unsigned NumStreams;
  unsigned Degree;
  unsigned LineBytes;
  unsigned PageBytes;
  unsigned LineShift;
  unsigned PageShift;
  std::vector<Stream> Streams;
  uint64_t UseClock = 0;
  uint64_t Issued = 0;
};

} // namespace sim
} // namespace spf

#endif // SPF_SIM_HARDWAREPREFETCHER_H
