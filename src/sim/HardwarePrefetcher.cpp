//===- sim/HardwarePrefetcher.cpp -----------------------------------------===//

#include "sim/HardwarePrefetcher.h"

using namespace spf;
using namespace spf::sim;

void HardwarePrefetcher::onDemandMiss(uint64_t Addr,
                                      std::vector<uint64_t> &Out) {
  uint64_t Line = lineOf(Addr);
  ++UseClock;

  // Confirmed stream: the miss is the line we predicted next.
  for (Stream &S : Streams) {
    if (!S.Valid || S.NextLine != Line)
      continue;
    S.LastUse = UseClock;
    uint64_t Page = pageOf(Addr);
    for (unsigned D = 1; D <= Degree; ++D) {
      uint64_t Target = (Line + D) * LineBytes;
      if (pageOf(Target) != Page)
        break; // Never cross a page boundary.
      Out.push_back(Target);
      ++Issued;
    }
    S.NextLine = Line + 1;
    return;
  }

  // New potential stream: replace the LRU slot.
  Stream *Victim = &Streams[0];
  for (Stream &S : Streams) {
    if (!S.Valid) {
      Victim = &S;
      break;
    }
    if (S.LastUse < Victim->LastUse)
      Victim = &S;
  }
  Victim->Valid = true;
  Victim->NextLine = Line + 1;
  Victim->LastUse = UseClock;
}
