//===- sim/Cache.h - Set-associative cache model ----------------*- C++ -*-===//
///
/// \file
/// Trace-driven set-associative LRU cache. Lines filled by a prefetch
/// carry a ready-cycle: a demand access arriving before the fill completes
/// pays only the remaining latency (partial hiding, as on the paper's
/// out-of-order machines where a prefetch one iteration ahead may not
/// fully cover memory latency).
///
//===----------------------------------------------------------------------===//

#ifndef SPF_SIM_CACHE_H
#define SPF_SIM_CACHE_H

#include <cstdint>
#include <vector>

namespace spf {
namespace sim {

/// Geometry of one cache level.
struct CacheParams {
  uint64_t SizeBytes = 8 * 1024;
  unsigned LineBytes = 64;
  unsigned Assoc = 4;
};

/// Result of a demand access.
struct CacheAccessResult {
  bool Hit = false;
  /// Extra cycles to wait for an in-flight prefetched line (0 when the
  /// line is fully resident or absent).
  uint64_t WaitCycles = 0;
};

/// One level of set-associative LRU cache.
class Cache {
public:
  explicit Cache(CacheParams P);

  unsigned lineBytes() const { return Params.LineBytes; }

  /// Demand access at \p Now; fills the line on a miss (ready
  /// immediately, i.e. the pipeline stalls for it — the penalty is charged
  /// by the caller).
  CacheAccessResult access(uint64_t Addr, uint64_t Now);

  /// Prefetch fill: inserts the line, usable from cycle \p ReadyAt.
  /// Counted separately from demand statistics.
  void prefetchFill(uint64_t Addr, uint64_t ReadyAt);

  /// True when the line holding \p Addr is present (no LRU update).
  bool contains(uint64_t Addr) const;

  /// Invalidates all lines (statistics are kept).
  void reset();

  // Statistics.
  uint64_t demandAccesses() const { return DemandAccesses; }
  uint64_t demandMisses() const { return DemandMisses; }
  uint64_t prefetchFills() const { return PrefetchFills; }
  /// Demand accesses that found an in-flight prefetched line and had to
  /// wait for part of the fill latency.
  uint64_t lateProbes() const { return LateProbes; }

private:
  struct Line {
    uint64_t Tag = 0;
    uint64_t LastUse = 0;
    uint64_t ReadyAt = 0;
    bool Valid = false;
  };

  Line *findLine(uint64_t LineAddr);
  const Line *findLine(uint64_t LineAddr) const;
  Line &victimFor(uint64_t LineAddr);

  CacheParams Params;
  unsigned NumSets;
  std::vector<Line> Lines; // NumSets * Assoc, set-major.
  uint64_t UseClock = 0;

  uint64_t DemandAccesses = 0;
  uint64_t DemandMisses = 0;
  uint64_t PrefetchFills = 0;
  uint64_t LateProbes = 0;
};

} // namespace sim
} // namespace spf

#endif // SPF_SIM_CACHE_H
