//===- sim/Cache.h - Set-associative cache model ----------------*- C++ -*-===//
///
/// \file
/// Trace-driven set-associative LRU cache. Lines filled by a prefetch
/// carry a ready-cycle: a demand access arriving before the fill completes
/// pays only the remaining latency (partial hiding, as on the paper's
/// out-of-order machines where a prefetch one iteration ahead may not
/// fully cover memory latency).
///
/// The cache sits on the hottest per-event path of trace replay (one to
/// two probes per demand access), so the lookup is structured for that:
/// line addresses are shifts (line size is a power of two), tags live in
/// a packed per-set array an associativity's worth of which fits in one
/// host cache line, and the hit path is inline. Recency and ready-cycles
/// are parallel arrays touched only on the slot that hits. An invalid
/// slot holds InvalidTag, which no reachable line address equals (line
/// bytes >= 2 keeps line addresses below 2^63), so validity needs no
/// separate flag and the scan is a single compare per way.
///
//===----------------------------------------------------------------------===//

#ifndef SPF_SIM_CACHE_H
#define SPF_SIM_CACHE_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace spf {
namespace sim {

/// Geometry of one cache level.
struct CacheParams {
  uint64_t SizeBytes = 8 * 1024;
  unsigned LineBytes = 64;
  unsigned Assoc = 4;

  bool operator==(const CacheParams &) const = default;
};

/// Result of a demand access.
struct CacheAccessResult {
  bool Hit = false;
  /// Extra cycles to wait for an in-flight prefetched line (0 when the
  /// line is fully resident or absent).
  uint64_t WaitCycles = 0;
};

/// Provenance of a prefetch-filled line, for effectiveness accounting.
enum class PfTag : uint8_t {
  None = 0, ///< Demand fill or untracked prefetch.
  Sw = 1,   ///< Software prefetch / guarded load from a prefetch plan.
  Rpt = 2,  ///< Reference-prediction-table hardware prefetch.
};

/// Receives the resolution of tagged prefetch fills: each tracked fill
/// eventually either serves a demand hit (used — possibly late, with
/// part of the fill latency exposed) or is evicted untouched (pure
/// pollution). sim::MemorySystem implements this to build per-site
/// prefetch-health counters; a tag resolves exactly once.
class PrefetchTagObserver {
public:
  virtual ~PrefetchTagObserver() = default;
  virtual void prefetchedLineUsed(PfTag Kind, uint32_t Site, bool Late) = 0;
  virtual void prefetchedLineEvicted(PfTag Kind, uint32_t Site) = 0;
};

/// One level of set-associative LRU cache.
class Cache {
public:
  explicit Cache(CacheParams P);

  unsigned lineBytes() const { return Params.LineBytes; }

  /// Demand access at \p Now; fills the line on a miss (ready
  /// immediately, i.e. the pipeline stalls for it — the penalty is charged
  /// by the caller).
  CacheAccessResult access(uint64_t Addr, uint64_t Now) {
    uint64_t LineAddr = Addr >> LineShift;
    ++DemandAccesses;
    ++UseClock;
    // One-line MRU filter: unit strides touch the same line repeatedly,
    // so the previous hit's slot is checked before the set scan. Every
    // bookkeeping step (use stamp, ready-cycle drain) is the same as the
    // scan path — pure shortcut, bit-identical stats.
    if (LineAddr == MruLine) {
      LastUse[MruSlot] = UseClock;
      return hitAt(MruSlot, Now);
    }
    size_t Base = setBase(LineAddr);
    for (unsigned I = 0; I != Params.Assoc; ++I) {
      if (Tags[Base + I] == LineAddr) {
        LastUse[Base + I] = UseClock;
        MruLine = LineAddr;
        MruSlot = Base + I;
        return hitAt(Base + I, Now);
      }
    }
    ++DemandMisses;
    size_t V = victimFor(Base);
    if (Obs)
      dropTag(V); // Victim may hold an unresolved tag; demand fill is untagged.
    Tags[V] = LineAddr;
    LastUse[V] = UseClock;
    ReadyAt[V] = 0; // Demand fill: the caller charges the full penalty.
    MruLine = LineAddr;
    MruSlot = V;
    return CacheAccessResult{};
  }

  /// Prefetch fill: inserts the line, usable from cycle \p Ready.
  /// Counted separately from demand statistics. When a tag observer is
  /// installed, \p Kind / \p Site attach provenance to the inserted line
  /// (a fill that finds the line already present keeps the line's
  /// original tag — redundant issues don't re-arm accounting).
  void prefetchFill(uint64_t Addr, uint64_t Ready, PfTag Kind = PfTag::None,
                    uint32_t Site = 0) {
    uint64_t LineAddr = Addr >> LineShift;
    ++UseClock;
    if (LineAddr == MruLine) {
      LastUse[MruSlot] = UseClock; // Already present: keep warm,
      return;                      // keep ReadyAt.
    }
    size_t Base = setBase(LineAddr);
    for (unsigned I = 0; I != Params.Assoc; ++I) {
      if (Tags[Base + I] == LineAddr) {
        LastUse[Base + I] = UseClock;
        MruLine = LineAddr;
        MruSlot = Base + I;
        return;
      }
    }
    ++PrefetchFills;
    size_t V = victimFor(Base);
    if (Obs) {
      dropTag(V);
      TagKinds[V] = static_cast<uint8_t>(Kind);
      TagSites[V] = Site;
    }
    Tags[V] = LineAddr;
    LastUse[V] = UseClock;
    ReadyAt[V] = Ready;
    MruLine = LineAddr;
    MruSlot = V;
  }

  /// Installs (or clears, with nullptr) the prefetch-provenance observer.
  /// Off by default: the tag arrays stay untouched and the hot paths pay
  /// one predictable branch. Timing and demand statistics are identical
  /// either way — tags are pure accounting.
  void setTagObserver(PrefetchTagObserver *O) {
    Obs = O;
    if (Obs && TagKinds.empty()) {
      TagKinds.assign(Tags.size(), 0);
      TagSites.assign(Tags.size(), 0);
    }
  }

  /// "No clean hit" result of peekCleanHit().
  static constexpr size_t NoSlot = ~size_t(0);

  /// Pure probe for the replay fast path: the slot of a clean demand hit
  /// (line present and fully resident — no in-flight prefetch to wait
  /// for), or NoSlot. No state changes; pair with commitHit().
  size_t peekCleanHit(uint64_t Addr, uint64_t Now) const {
    uint64_t LineAddr = Addr >> LineShift;
    if (LineAddr == MruLine)
      return ReadyAt[MruSlot] <= Now ? MruSlot : NoSlot;
    size_t Base = setBase(LineAddr);
    for (unsigned I = 0; I != Params.Assoc; ++I)
      if (Tags[Base + I] == LineAddr)
        return ReadyAt[Base + I] <= Now ? Base + I : NoSlot;
    return NoSlot;
  }

  /// Commits the demand hit peekCleanHit() found — exactly access()'s
  /// hit path for a resident line (counters, use stamp, MRU repoint).
  void commitHit(size_t Slot) {
    ++DemandAccesses;
    ++UseClock;
    LastUse[Slot] = UseClock;
    MruLine = Tags[Slot];
    MruSlot = Slot;
  }

  /// Register-resident counter window for a block of commits: the use
  /// clock and demand-access count live in the cursor (breaking the
  /// per-event memory round trip on those counters), everything else
  /// goes straight to the cache. flush() before any non-cursor call on
  /// the same cache, and at the end of the block.
  class BlockCursor {
  public:
    explicit BlockCursor(Cache &C)
        : C(C), UseClock(C.UseClock), DemandAccesses(C.DemandAccesses) {}

    size_t peekCleanHit(uint64_t Addr, uint64_t Now) const {
      return C.peekCleanHit(Addr, Now);
    }

    /// Exactly Cache::commitHit, counters held in the cursor.
    void commitHit(size_t Slot) {
      ++DemandAccesses;
      ++UseClock;
      C.LastUse[Slot] = UseClock;
      C.MruLine = C.Tags[Slot];
      C.MruSlot = Slot;
    }

    void flush() {
      C.UseClock = UseClock;
      C.DemandAccesses = DemandAccesses;
    }

    void reload() {
      UseClock = C.UseClock;
      DemandAccesses = C.DemandAccesses;
    }

  private:
    Cache &C;
    uint64_t UseClock;
    uint64_t DemandAccesses;
  };

  /// True when the line holding \p Addr is present (no LRU update).
  bool contains(uint64_t Addr) const {
    uint64_t LineAddr = Addr >> LineShift;
    if (LineAddr == MruLine)
      return true;
    size_t Base = setBase(LineAddr);
    for (unsigned I = 0; I != Params.Assoc; ++I)
      if (Tags[Base + I] == LineAddr)
        return true;
    return false;
  }

  /// Invalidates all lines (statistics are kept).
  void reset();

  // Statistics.
  uint64_t demandAccesses() const { return DemandAccesses; }
  uint64_t demandMisses() const { return DemandMisses; }
  uint64_t prefetchFills() const { return PrefetchFills; }
  /// Demand accesses that found an in-flight prefetched line and had to
  /// wait for part of the fill latency.
  uint64_t lateProbes() const { return LateProbes; }

private:
  static constexpr uint64_t InvalidTag = ~uint64_t(0);

  size_t setBase(uint64_t LineAddr) const {
    return (static_cast<size_t>(LineAddr) & (NumSets - 1)) * Params.Assoc;
  }

  /// Hit bookkeeping shared by the MRU and scan paths (LastUse is already
  /// stamped by the caller). A tagged line resolves as used on its first
  /// demand hit — late when part of the fill latency was still exposed.
  CacheAccessResult hitAt(size_t Slot, uint64_t Now) {
    CacheAccessResult R;
    R.Hit = true;
    uint64_t &Ready = ReadyAt[Slot];
    if (Ready > Now) {
      R.WaitCycles = Ready - Now;
      ++LateProbes;
      Ready = 0;
    }
    if (Obs && TagKinds[Slot]) {
      Obs->prefetchedLineUsed(static_cast<PfTag>(TagKinds[Slot]),
                              TagSites[Slot], R.WaitCycles != 0);
      TagKinds[Slot] = 0;
    }
    return R;
  }

  /// Resolves slot \p V 's tag (if any) as evicted-unused.
  void dropTag(size_t V) {
    if (TagKinds[V]) {
      Obs->prefetchedLineEvicted(static_cast<PfTag>(TagKinds[V]), TagSites[V]);
      TagKinds[V] = 0;
    }
  }

  /// LRU victim slot in the set at \p Base: the first invalid way, else
  /// the first minimum-LastUse way (exact order of the classic scan).
  size_t victimFor(size_t Base);

  CacheParams Params;
  unsigned NumSets;
  unsigned LineShift;
  std::vector<uint64_t> Tags;    ///< NumSets * Assoc, set-major; InvalidTag
                                 ///< marks an empty way.
  std::vector<uint64_t> LastUse; ///< Use-clock stamp, parallel to Tags.
  std::vector<uint64_t> ReadyAt; ///< Prefetch-fill ready cycle, parallel.
  /// One-line MRU filter. Invariant: while MruLine != InvalidTag,
  /// Tags[MruSlot] == MruLine — every Tags write (the two insert sites)
  /// re-points it, and reset() invalidates it.
  uint64_t MruLine = InvalidTag;
  size_t MruSlot = 0;
  uint64_t UseClock = 0;

  uint64_t DemandAccesses = 0;
  uint64_t DemandMisses = 0;
  uint64_t PrefetchFills = 0;
  uint64_t LateProbes = 0;

  /// Prefetch-provenance tracking; arrays parallel Tags, allocated on
  /// first setTagObserver(). TagKinds[I] is a PfTag (0 = untagged).
  PrefetchTagObserver *Obs = nullptr;
  std::vector<uint8_t> TagKinds;
  std::vector<uint32_t> TagSites;
};

} // namespace sim
} // namespace spf

#endif // SPF_SIM_CACHE_H
