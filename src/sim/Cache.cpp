//===- sim/Cache.cpp ------------------------------------------------------===//

#include "sim/Cache.h"

#include <cassert>
#include <cstddef>

using namespace spf;
using namespace spf::sim;

Cache::Cache(CacheParams P) : Params(P) {
  assert(P.LineBytes && (P.LineBytes & (P.LineBytes - 1)) == 0 &&
         "line size must be a power of two");
  NumSets = static_cast<unsigned>(P.SizeBytes / (P.LineBytes * P.Assoc));
  assert(NumSets && (NumSets & (NumSets - 1)) == 0 &&
         "set count must be a nonzero power of two");
  Lines.resize(static_cast<size_t>(NumSets) * P.Assoc);
}

Cache::Line *Cache::findLine(uint64_t LineAddr) {
  unsigned Set = static_cast<unsigned>(LineAddr & (NumSets - 1));
  Line *Base = &Lines[static_cast<size_t>(Set) * Params.Assoc];
  for (unsigned I = 0; I != Params.Assoc; ++I)
    if (Base[I].Valid && Base[I].Tag == LineAddr)
      return &Base[I];
  return nullptr;
}

const Cache::Line *Cache::findLine(uint64_t LineAddr) const {
  return const_cast<Cache *>(this)->findLine(LineAddr);
}

Cache::Line &Cache::victimFor(uint64_t LineAddr) {
  unsigned Set = static_cast<unsigned>(LineAddr & (NumSets - 1));
  Line *Base = &Lines[static_cast<size_t>(Set) * Params.Assoc];
  Line *Victim = Base;
  for (unsigned I = 0; I != Params.Assoc; ++I) {
    if (!Base[I].Valid)
      return Base[I];
    if (Base[I].LastUse < Victim->LastUse)
      Victim = &Base[I];
  }
  return *Victim;
}

CacheAccessResult Cache::access(uint64_t Addr, uint64_t Now) {
  uint64_t LineAddr = Addr / Params.LineBytes;
  ++DemandAccesses;
  ++UseClock;

  if (Line *L = findLine(LineAddr)) {
    L->LastUse = UseClock;
    CacheAccessResult R;
    R.Hit = true;
    if (L->ReadyAt > Now) {
      R.WaitCycles = L->ReadyAt - Now;
      ++LateProbes;
      L->ReadyAt = 0;
    }
    return R;
  }

  ++DemandMisses;
  Line &V = victimFor(LineAddr);
  V.Valid = true;
  V.Tag = LineAddr;
  V.LastUse = UseClock;
  V.ReadyAt = 0; // Demand fill: the caller charges the full penalty.
  return CacheAccessResult{};
}

void Cache::prefetchFill(uint64_t Addr, uint64_t ReadyAt) {
  uint64_t LineAddr = Addr / Params.LineBytes;
  ++UseClock;
  if (Line *L = findLine(LineAddr)) {
    L->LastUse = UseClock; // Already present: keep warm, keep ReadyAt.
    return;
  }
  ++PrefetchFills;
  Line &V = victimFor(LineAddr);
  V.Valid = true;
  V.Tag = LineAddr;
  V.LastUse = UseClock;
  V.ReadyAt = ReadyAt;
}

bool Cache::contains(uint64_t Addr) const {
  return findLine(Addr / Params.LineBytes) != nullptr;
}

void Cache::reset() {
  for (Line &L : Lines)
    L = Line();
}
