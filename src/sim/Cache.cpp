//===- sim/Cache.cpp ------------------------------------------------------===//

#include "sim/Cache.h"

#include <bit>
#include <cassert>
#include <cstddef>

using namespace spf;
using namespace spf::sim;

Cache::Cache(CacheParams P) : Params(P) {
  assert(P.LineBytes >= 2 && (P.LineBytes & (P.LineBytes - 1)) == 0 &&
         "line size must be a power of two (>= 2, so no line address "
         "collides with the InvalidTag sentinel)");
  LineShift = static_cast<unsigned>(std::countr_zero(P.LineBytes));
  NumSets = static_cast<unsigned>(P.SizeBytes / (P.LineBytes * P.Assoc));
  assert(NumSets && (NumSets & (NumSets - 1)) == 0 &&
         "set count must be a nonzero power of two");
  size_t Slots = static_cast<size_t>(NumSets) * P.Assoc;
  Tags.assign(Slots, InvalidTag);
  LastUse.assign(Slots, 0);
  ReadyAt.assign(Slots, 0);
}

size_t Cache::victimFor(size_t Base) {
  size_t Victim = Base;
  for (unsigned I = 0; I != Params.Assoc; ++I) {
    if (Tags[Base + I] == InvalidTag)
      return Base + I;
    if (LastUse[Base + I] < LastUse[Victim])
      Victim = Base + I;
  }
  return Victim;
}

void Cache::reset() {
  for (uint64_t &T : Tags)
    T = InvalidTag;
  for (uint64_t &U : LastUse)
    U = 0;
  for (uint64_t &R : ReadyAt)
    R = 0;
  MruLine = InvalidTag;
  MruSlot = 0;
  // Tags die silently with their lines: an invalidation is not an
  // eviction verdict on the prefetch that filled them.
  for (uint8_t &K : TagKinds)
    K = 0;
}
