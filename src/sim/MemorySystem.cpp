//===- sim/MemorySystem.cpp -----------------------------------------------===//

#include "sim/MemorySystem.h"

#include <cassert>

using namespace spf;
using namespace spf::sim;

static unsigned lastLineBytes(const MachineConfig &Cfg) {
  return Cfg.Levels.empty() ? 64 : Cfg.Levels.back().Geometry.LineBytes;
}

static unsigned pageShiftOf(uint64_t PageBytes) {
  // Power-of-two pages take the shift path; anything else (rejected by
  // validate(), but MemorySystem stays defensive) divides.
  if (PageBytes == 0 || (PageBytes & (PageBytes - 1)) != 0)
    return 0;
  unsigned S = 0;
  while ((uint64_t(1) << S) < PageBytes)
    ++S;
  return S;
}

MemorySystem::MemorySystem(const MachineConfig &Cfg)
    : Cfg(Cfg), Dtlb(Cfg.TlbEntries, Cfg.PageBytes),
      HwPf(Cfg.HwPrefetchStreams, Cfg.HwPrefetchDegree, lastLineBytes(Cfg),
           Cfg.PageBytes),
      Rpt(Cfg.RptEntries, Cfg.HwPrefetchDegree, Cfg.PageBytes),
      StreamActive(Cfg.effectiveHwPrefetch() == HwPrefetchKind::Stream),
      RptActive(Cfg.effectiveHwPrefetch() == HwPrefetchKind::Rpt),
      HwTrainThreshold(Cfg.Levels.size() > 1 ? Cfg.Levels[1].HitCycles
                                             : Cfg.MemPenalty),
      PageShift(pageShiftOf(Cfg.PageBytes)) {
  assert(Cfg.Levels.size() >= 2 && "MachineConfig::validate() requires >= 2 "
                                   "cache levels");
  CacheLevels.reserve(Cfg.Levels.size());
  for (const CacheLevel &L : Cfg.Levels)
    CacheLevels.emplace_back(L.Geometry);
  Acct.Level.assign(Cfg.Levels.size(), 0);
  // RPT effectiveness is tracked whenever the RPT runs: its fills only
  // land in the last level, which the batched fast path's L1/TLB cursors
  // never shortcut, so tagging there is fast-path safe.
  if (RptActive)
    CacheLevels.back().setTagObserver(this);
}

void MemorySystem::enablePrefetchHealth() {
  if (SwHealth)
    return;
  SwHealth = true;
  // Software prefetches are tagged at their shallowest fill level and
  // guarded loads at L1 — exactly one tag per issue, so useful/late/
  // unused partition the resolved fills.
  CacheLevels[Cfg.SwFillLevel].setTagObserver(this);
  CacheLevels[0].setTagObserver(this);
}

void MemorySystem::prefetchedLineUsed(PfTag Kind, uint32_t Site, bool Late) {
  if (Kind == PfTag::Rpt) {
    SiteStats &S = siteFor(Site);
    if (Late) {
      ++Stats.RptPrefetchesLate;
      ++S.RptLate;
    } else {
      ++Stats.RptPrefetchesUseful;
      ++S.RptUseful;
    }
    return;
  }
  SiteStats &S = siteFor(Site);
  if (Late) {
    ++Stats.SwPrefetchesLate;
    ++S.SwLate;
  } else {
    ++Stats.SwPrefetchesUseful;
    ++S.SwUseful;
  }
}

void MemorySystem::prefetchedLineEvicted(PfTag Kind, uint32_t Site) {
  SiteStats &S = siteFor(Site);
  if (Kind == PfTag::Rpt) {
    ++Stats.RptPrefetchesUnused;
    ++S.RptUnused;
  } else {
    ++Stats.SwPrefetchesUnused;
    ++S.SwUnused;
  }
}

void MemorySystem::hwPrefetchOnMiss(uint64_t Addr) {
  if (!StreamActive)
    return;
  HwTargets.clear();
  HwPf.onDemandMiss(Addr, HwTargets);
  Cache &Last = CacheLevels.back();
  for (uint64_t Target : HwTargets)
    Last.prefetchFill(Target, Cycles + Cfg.PrefetchFillLatency);
}

void MemorySystem::rptObserveLoad(uint32_t Site, uint64_t Addr, uint64_t Now) {
  HwTargets.clear();
  Rpt.observe(Site, Addr, HwTargets);
  if (HwTargets.empty())
    return;
  // RPT fills land in the last level only, like the stream prefetcher's:
  // this keeps the replay fast path's TLB/L1 cursors untouched. Fills
  // carry the training site as their tag, so their fate (useful / late /
  // evicted-unused) lands back on that site's stats. Sites[Site] exists:
  // the observing load sized the table before we got here.
  Stats.RptPrefetchesIssued += HwTargets.size();
  Sites[Site].RptIssued += HwTargets.size();
  Cache &Last = CacheLevels.back();
  for (uint64_t Target : HwTargets)
    Last.prefetchFill(Target, Now + Cfg.PrefetchFillLatency, PfTag::Rpt, Site);
}

uint64_t MemorySystem::walkerAccess(uint64_t PteAddr) {
  // Demand-shaped cost for one page-table entry: base hit cycles, each
  // deeper probed level's penalty, MemPenalty on a full miss. The walker
  // fills lines on the way (so a later walk sharing upper-level entries
  // is cheaper) but never counts load/store stats or trains prefetchers.
  uint64_t Cost = Cfg.Levels[0].HitCycles;
  CacheAccessResult R = CacheLevels[0].access(PteAddr, Cycles);
  if (R.Hit)
    return Cost + R.WaitCycles;
  const unsigned NumLevels = numCacheLevels();
  for (unsigned Lvl = 1; Lvl != NumLevels; ++Lvl) {
    Cost += Cfg.Levels[Lvl].HitCycles;
    CacheAccessResult Rl = CacheLevels[Lvl].access(PteAddr, Cycles);
    if (Rl.Hit)
      return Cost + Rl.WaitCycles;
  }
  return Cost + Cfg.MemPenalty;
}

uint64_t MemorySystem::pageWalk(uint64_t Addr) {
  // Radix walk: level L's entry address is the page number's upper bits
  // (a prefix index — neighbor pages share upper-level entries, so their
  // PTEs fall in the same cache lines) scaled by the entry size, tagged
  // into a per-level region that can never collide with heap addresses.
  uint64_t Page = PageShift ? (Addr >> PageShift) : (Addr / Cfg.PageBytes);
  constexpr uint64_t OffsetMask = (uint64_t(1) << 56) - 1;
  uint64_t Cost = 0;
  for (unsigned L = 0; L != Cfg.WalkLevels; ++L) {
    unsigned Shift = Cfg.WalkIndexBits * (Cfg.WalkLevels - 1 - L);
    uint64_t Index = Shift < 64 ? (Page >> Shift) : 0;
    uint64_t PteAddr =
        (uint64_t(L + 1) << 56) | ((Index * Cfg.WalkEntryBytes) & OffsetMask);
    Cost += walkerAccess(PteAddr);
  }
  return Cost;
}

uint64_t MemorySystem::translationCost(uint64_t Addr) {
  if (Cfg.Walk == TlbWalk::Flat)
    return Cfg.TlbMissPenalty;
  uint64_t Cost = pageWalk(Addr);
  ++Stats.PageWalks;
  Stats.PageWalkCycles += Cost;
  return Cost;
}

uint64_t MemorySystem::demandAccess(uint64_t Addr, bool IsLoad,
                                    SiteStats *Site) {
  uint64_t Cost = Cfg.Levels[0].HitCycles;
  Acct.Level[0] += Cost;

  if (!Dtlb.access(Addr)) {
    uint64_t TransCost = translationCost(Addr);
    Cost += TransCost;
    Acct.Translation += TransCost;
    if (IsLoad) {
      ++Stats.DtlbLoadMisses;
      if (Site)
        ++Site->DtlbMisses;
    }
  }

  CacheAccessResult R1 = CacheLevels[0].access(Addr, Cycles);
  if (R1.Hit) {
    Cost += R1.WaitCycles;
    Acct.Wait += R1.WaitCycles;
    // A sizeable wait means the line was filled by an in-flight prefetch:
    // architecturally this was a miss, so keep training the hardware
    // prefetcher (otherwise software prefetching would starve it).
    if (R1.WaitCycles > HwTrainThreshold)
      hwPrefetchOnMiss(Addr);
  } else {
    if (IsLoad) {
      ++Stats.L1LoadMisses;
      if (Site)
        ++Site->L1Misses;
    } else {
      ++Stats.L1StoreMisses;
    }
    const unsigned NumLevels = numCacheLevels();
    unsigned Lvl = 1;
    for (; Lvl != NumLevels; ++Lvl) {
      Cost += Cfg.Levels[Lvl].HitCycles;
      Acct.Level[Lvl] += Cfg.Levels[Lvl].HitCycles;
      CacheAccessResult R = CacheLevels[Lvl].access(Addr, Cycles);
      if (R.Hit) {
        Cost += R.WaitCycles;
        Acct.Wait += R.WaitCycles;
        if (R.WaitCycles > HwTrainThreshold)
          hwPrefetchOnMiss(Addr);
        break;
      }
      if (IsLoad) {
        if (Lvl == 1) {
          ++Stats.L2LoadMisses;
          if (Site)
            ++Site->L2Misses;
        }
        if (Lvl == NumLevels - 1)
          ++Stats.LlcLoadMisses;
      }
    }
    if (Lvl == NumLevels) {
      Cost += Cfg.MemPenalty;
      Acct.MemPenalty += Cfg.MemPenalty;
      hwPrefetchOnMiss(Addr);
    }
  }

  Cycles += Cost;
  return Cost;
}

void MemorySystem::load(uint64_t Addr, exec::SiteId Site) {
  ++Stats.Loads;
  if (Site >= Sites.size())
    Sites.resize(Site + 1);
  SiteStats &S = Sites[Site];
  ++S.Loads;
  // The RPT watches the instruction stream (every execution, hit or
  // miss), keyed by load site — the simulator's stand-in for the PC.
  if (RptActive)
    rptObserveLoad(Site, Addr, Cycles);
  uint64_t Cost = demandAccess(Addr, /*IsLoad=*/true, &S);
  Stats.CyclesStalledOnLoads += Cost;
  S.StallCycles += Cost;
}

void MemorySystem::store(uint64_t Addr) {
  ++Stats.Stores;
  demandAccess(Addr, /*IsLoad=*/false, nullptr);
}

uint64_t MemorySystem::swFillReadyAt(uint64_t Addr) const {
  // The fill latency depends on where the line currently lives: a line
  // resident in a deeper level moves up in that level's hit time(s), not
  // a full memory round trip.
  uint64_t Penalty = 0;
  const unsigned NumLevels = numCacheLevels();
  for (unsigned Lvl = 1; Lvl != NumLevels; ++Lvl) {
    Penalty += Cfg.Levels[Lvl].HitCycles;
    if (CacheLevels[Lvl].contains(Addr))
      return Penalty;
  }
  return Cfg.PrefetchFillLatency;
}

void MemorySystem::prefetchImpl(uint64_t Addr, exec::SiteId Site) {
  ++Stats.SwPrefetchesIssued;
  if (SwHealth)
    ++siteFor(Site).SwIssued;
  Cycles += Cfg.PrefetchIssueCost;
  Acct.PrefetchIssue += Cfg.PrefetchIssueCost;

  // "The processor cancels the execution of the instruction when a data
  //  translation lookaside buffer miss will occur." (Section 3.3)
  if (!Dtlb.contains(Addr)) {
    ++Stats.SwPrefetchesCancelled;
    return;
  }

  uint64_t ReadyAt = Cycles + swFillReadyAt(Addr);
  // Deepest level first, down to the configured fill level. Under health
  // tracking the shallowest fill carries the tag (one tag per issue).
  for (unsigned Lvl = numCacheLevels(); Lvl-- > Cfg.SwFillLevel;)
    CacheLevels[Lvl].prefetchFill(Addr, ReadyAt,
                                  SwHealth && Lvl == Cfg.SwFillLevel
                                      ? PfTag::Sw
                                      : PfTag::None,
                                  Site);
}

void MemorySystem::guardedLoadImpl(uint64_t Addr, exec::SiteId Site) {
  ++Stats.GuardedLoads;
  if (SwHealth)
    ++siteFor(Site).SwIssued;
  Cycles += Cfg.GuardedLoadCost;
  Acct.PrefetchIssue += Cfg.GuardedLoadCost;

  // A real load: walks the page table if needed (priming the DTLB — on a
  // walked-TLB machine the walk's page-table accesses go through the
  // caches, warming them for later walks) and brings the line into every
  // level. The fill completes after the residency-dependent latency;
  // only the issue cost stalls the pipeline (no computation consumes the
  // loaded value on the critical path), so the priming walk charges no
  // cycles either.
  if (Cfg.Walk == TlbWalk::Walked && !Dtlb.contains(Addr)) {
    pageWalk(Addr);
    ++Stats.PageWalks;
  }
  Dtlb.fill(Addr);
  if (CacheLevels[0].contains(Addr))
    return;
  uint64_t ReadyAt = Cycles + swFillReadyAt(Addr);
  // The L1 fill carries the tag under health tracking.
  for (unsigned Lvl = numCacheLevels(); Lvl-- > 0;)
    CacheLevels[Lvl].prefetchFill(Addr, ReadyAt,
                                  SwHealth && Lvl == 0 ? PfTag::Sw
                                                       : PfTag::None,
                                  Site);
}

void MemorySystem::guardedLoadFaultImpl(exec::SiteId Site) {
  ++Stats.GuardedLoadFaults;
  // A faulted guard is an issue that can never become useful: it drags
  // the site's accuracy down, which is exactly what the governor should
  // see for a plan speculating on stale pointers.
  if (SwHealth)
    ++siteFor(Site).SwIssued;
  Cycles += Cfg.GuardFaultCost;
  Acct.GuardFault += Cfg.GuardFaultCost;
}

#if defined(__GNUC__) || defined(__clang__)
__attribute__((flatten))
#endif
void MemorySystem::consume(const exec::AccessEvent *Events, size_t N) {
  // Health tracking tags lines at L1, which the block cursor's clean-hit
  // shortcut cannot resolve — take the per-event path (identical
  // semantics by the block-dispatch contract). Governor-driven runs are
  // the only ones that enable tracking, and they are never the replay
  // throughput path.
  if (SwHealth) {
    exec::AccessSink::consume(Events, N);
    return;
  }
  // The replay fast path: one virtual consume() per block, and inside it
  // the clock and the load counters live in locals — member accesses all
  // share one alias class, so keeping them in the object would force a
  // reload/store per event. The common load (TLB MRU hit + clean L1 hit
  // + known site) commits via the pure peek/commit probes, which perform
  // exactly the member-path bookkeeping; everything else writes the
  // locals back, takes the ordinary member call, and re-hoists — the
  // batched-vs-per-event differential tests pin the two paths together,
  // bit for bit. RPT observation happens on the fast path too (the table
  // watches every load, hit or miss), but its fills only touch the last
  // cache level, so the TLB/L1 cursors stay valid.
  uint64_t Cyc = Cycles;
  uint64_t NLoads = Stats.Loads;
  uint64_t Stalled = Stats.CyclesStalledOnLoads;
  const uint64_t HitCost = Cfg.Levels[0].HitCycles;
  const uint64_t ComputeC = Cfg.ComputeCycles;
  const bool RptOn = RptActive;
  SiteStats *SiteArr = Sites.data();
  size_t NSites = Sites.size();
  // Stride loops hammer one site for thousands of events, so its load
  // count is accumulated in a register and flushed on site change (and
  // before any fallback, which may touch the site table).
  size_t CurSite = NSites; // No run pending.
  uint64_t CurSiteLoads = 0;
  uint64_t CurSiteStall = 0;
  // Attribution deltas for the three categories the fast path charges
  // itself (everything else goes through member calls, which
  // self-account); flushed add-then-zero alongside the clock.
  uint64_t AcctCompute = 0;
  uint64_t AcctL0 = 0;
  uint64_t AcctFault = 0;
  Tlb::BlockCursor TlbCur(Dtlb);
  Cache::BlockCursor L1Cur(CacheLevels[0]);
  auto FlushAcct = [&] {
    Acct.Compute += AcctCompute;
    Acct.Level[0] += AcctL0;
    Acct.GuardFault += AcctFault;
    AcctCompute = AcctL0 = AcctFault = 0;
  };
  // Writes every register-held counter back to its home and empties the
  // site run; the member state is then exactly what per-event dispatch
  // would have produced.
  auto Sync = [&] {
    Cycles = Cyc;
    Stats.Loads = NLoads;
    Stats.CyclesStalledOnLoads = Stalled;
    FlushAcct();
    if (CurSiteLoads) {
      SiteArr[CurSite].Loads += CurSiteLoads;
      SiteArr[CurSite].StallCycles += CurSiteStall;
      CurSiteLoads = 0;
      CurSiteStall = 0;
    }
    CurSite = NSites;
    TlbCur.flush();
    L1Cur.flush();
  };
  auto Rehoist = [&] {
    Cyc = Cycles;
    NLoads = Stats.Loads;
    Stalled = Stats.CyclesStalledOnLoads;
    SiteArr = Sites.data(); // The call may have grown the site table.
    NSites = Sites.size();
    CurSite = NSites;
    TlbCur.reload();
    L1Cur.reload();
  };
  // Stores, prefetches and guarded loads never touch the load counters
  // or the site table, so their fallback only moves the clock and the
  // TLB/L1 counter windows.
  auto SyncMachine = [&] {
    Cycles = Cyc;
    FlushAcct();
    TlbCur.flush();
    L1Cur.flush();
  };
  auto RehoistMachine = [&] {
    Cyc = Cycles;
    TlbCur.reload();
    L1Cur.reload();
  };
  for (size_t I = 0; I != N; ++I) {
    const exec::AccessEvent &E = Events[I];
    switch (E.Kind) {
    case exec::EventKind::Tick:
      Cyc += E.Value * ComputeC;
      AcctCompute += E.Value * ComputeC;
      break;
    case exec::EventKind::Load: {
      size_t TlbSlot, L1Slot;
      if (E.Site < NSites && (TlbSlot = TlbCur.peekHit(E.Value)) != Tlb::NoSlot &&
          (L1Slot = L1Cur.peekCleanHit(E.Value, Cyc)) != Cache::NoSlot) {
        // Identical to load() when the TLB and the L1 both hit a
        // resident line: hit cost only, no miss counters. The RPT
        // observation uses the register clock — the same value load()
        // would have passed — and cannot disturb the L1/TLB state the
        // probes above just peeked.
        TlbCur.commitHit(TlbSlot);
        L1Cur.commitHit(L1Slot);
        ++NLoads;
        if (E.Site == CurSite) {
          ++CurSiteLoads;
        } else {
          if (CurSiteLoads) {
            SiteArr[CurSite].Loads += CurSiteLoads;
            SiteArr[CurSite].StallCycles += CurSiteStall;
          }
          CurSite = E.Site;
          CurSiteLoads = 1;
          CurSiteStall = 0;
        }
        if (RptOn)
          rptObserveLoad(E.Site, E.Value, Cyc);
        Stalled += HitCost;
        CurSiteStall += HitCost;
        AcctL0 += HitCost;
        Cyc += HitCost;
        break;
      }
      Sync();
      load(E.Value, E.Site);
      Rehoist();
      break;
    }
    case exec::EventKind::Store:
      SyncMachine();
      store(E.Value);
      RehoistMachine();
      break;
    case exec::EventKind::Prefetch:
      SyncMachine();
      prefetch(E.Value);
      RehoistMachine();
      break;
    case exec::EventKind::GuardedLoad:
      SyncMachine();
      guardedLoad(E.Value);
      RehoistMachine();
      break;
    case exec::EventKind::GuardedLoadFault:
      ++Stats.GuardedLoadFaults;
      Cyc += Cfg.GuardFaultCost;
      AcctFault += Cfg.GuardFaultCost;
      break;
    }
  }
  Sync();
}
