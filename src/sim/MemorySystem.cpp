//===- sim/MemorySystem.cpp -----------------------------------------------===//

#include "sim/MemorySystem.h"

using namespace spf;
using namespace spf::sim;

MemorySystem::MemorySystem(const MachineConfig &Cfg)
    : Cfg(Cfg), L1(Cfg.L1), L2(Cfg.L2), Dtlb(Cfg.TlbEntries, Cfg.PageBytes),
      HwPf(Cfg.HwPrefetchStreams, Cfg.HwPrefetchDegree, Cfg.L2.LineBytes,
           Cfg.PageBytes) {}

void MemorySystem::hwPrefetchOnMiss(uint64_t Addr) {
  if (!Cfg.HwPrefetchEnabled)
    return;
  HwTargets.clear();
  HwPf.onDemandMiss(Addr, HwTargets);
  for (uint64_t Target : HwTargets)
    L2.prefetchFill(Target, Cycles + Cfg.PrefetchFillLatency);
}

uint64_t MemorySystem::demandAccess(uint64_t Addr, bool IsLoad,
                                    SiteStats *Site) {
  uint64_t Cost = Cfg.L1HitCycles;

  if (!Dtlb.access(Addr)) {
    Cost += Cfg.TlbMissPenalty;
    if (IsLoad) {
      ++Stats.DtlbLoadMisses;
      if (Site)
        ++Site->DtlbMisses;
    }
  }

  CacheAccessResult R1 = L1.access(Addr, Cycles);
  if (R1.Hit) {
    Cost += R1.WaitCycles;
    // A sizeable wait means the line was filled by an in-flight prefetch:
    // architecturally this was a miss, so keep training the hardware
    // prefetcher (otherwise software prefetching would starve it).
    if (R1.WaitCycles > Cfg.L2HitPenalty)
      hwPrefetchOnMiss(Addr);
  } else {
    if (IsLoad) {
      ++Stats.L1LoadMisses;
      if (Site)
        ++Site->L1Misses;
    } else {
      ++Stats.L1StoreMisses;
    }
    CacheAccessResult R2 = L2.access(Addr, Cycles);
    if (R2.Hit) {
      Cost += Cfg.L2HitPenalty + R2.WaitCycles;
      if (R2.WaitCycles > Cfg.L2HitPenalty)
        hwPrefetchOnMiss(Addr);
    } else {
      Cost += Cfg.L2HitPenalty + Cfg.MemPenalty;
      if (IsLoad) {
        ++Stats.L2LoadMisses;
        if (Site)
          ++Site->L2Misses;
      }
      hwPrefetchOnMiss(Addr);
    }
  }

  Cycles += Cost;
  return Cost;
}

void MemorySystem::load(uint64_t Addr, exec::SiteId Site) {
  ++Stats.Loads;
  if (Site >= Sites.size())
    Sites.resize(Site + 1);
  SiteStats &S = Sites[Site];
  ++S.Loads;
  Stats.CyclesStalledOnLoads += demandAccess(Addr, /*IsLoad=*/true, &S);
}

void MemorySystem::store(uint64_t Addr) {
  ++Stats.Stores;
  demandAccess(Addr, /*IsLoad=*/false, nullptr);
}

void MemorySystem::prefetch(uint64_t Addr) {
  ++Stats.SwPrefetchesIssued;
  Cycles += Cfg.PrefetchIssueCost;

  // "The processor cancels the execution of the instruction when a data
  //  translation lookaside buffer miss will occur." (Section 3.3)
  if (!Dtlb.contains(Addr)) {
    ++Stats.SwPrefetchesCancelled;
    return;
  }

  // The fill latency depends on where the line currently lives: an
  // L2-resident line moves into the L1 in an L2-hit time, not a full
  // memory round trip.
  uint64_t ReadyAt = Cycles + (L2.contains(Addr) ? Cfg.L2HitPenalty
                                                 : Cfg.PrefetchFillLatency);
  L2.prefetchFill(Addr, ReadyAt);
  if (Cfg.SwPrefetchFill == PrefetchFillLevel::L1)
    L1.prefetchFill(Addr, ReadyAt);
}

void MemorySystem::guardedLoad(uint64_t Addr) {
  ++Stats.GuardedLoads;
  Cycles += Cfg.GuardedLoadCost;

  // A real load: walks the page table if needed (priming the DTLB) and
  // brings the line into every level. The fill completes after the
  // residency-dependent latency; only the issue cost stalls the pipeline
  // (no computation consumes the loaded value on the critical path).
  Dtlb.fill(Addr);
  if (L1.contains(Addr))
    return;
  uint64_t ReadyAt = Cycles + (L2.contains(Addr) ? Cfg.L2HitPenalty
                                                 : Cfg.PrefetchFillLatency);
  L2.prefetchFill(Addr, ReadyAt);
  L1.prefetchFill(Addr, ReadyAt);
}

void MemorySystem::guardedLoadFault() {
  ++Stats.GuardedLoadFaults;
  Cycles += Cfg.GuardFaultCost;
}
