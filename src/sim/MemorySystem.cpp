//===- sim/MemorySystem.cpp -----------------------------------------------===//

#include "sim/MemorySystem.h"

using namespace spf;
using namespace spf::sim;

MemorySystem::MemorySystem(const MachineConfig &Cfg)
    : Cfg(Cfg), L1(Cfg.L1), L2(Cfg.L2), Dtlb(Cfg.TlbEntries, Cfg.PageBytes),
      HwPf(Cfg.HwPrefetchStreams, Cfg.HwPrefetchDegree, Cfg.L2.LineBytes,
           Cfg.PageBytes) {}

void MemorySystem::hwPrefetchOnMiss(uint64_t Addr) {
  if (!Cfg.HwPrefetchEnabled)
    return;
  HwTargets.clear();
  HwPf.onDemandMiss(Addr, HwTargets);
  for (uint64_t Target : HwTargets)
    L2.prefetchFill(Target, Cycles + Cfg.PrefetchFillLatency);
}

uint64_t MemorySystem::demandAccess(uint64_t Addr, bool IsLoad,
                                    SiteStats *Site) {
  uint64_t Cost = Cfg.L1HitCycles;

  if (!Dtlb.access(Addr)) {
    Cost += Cfg.TlbMissPenalty;
    if (IsLoad) {
      ++Stats.DtlbLoadMisses;
      if (Site)
        ++Site->DtlbMisses;
    }
  }

  CacheAccessResult R1 = L1.access(Addr, Cycles);
  if (R1.Hit) {
    Cost += R1.WaitCycles;
    // A sizeable wait means the line was filled by an in-flight prefetch:
    // architecturally this was a miss, so keep training the hardware
    // prefetcher (otherwise software prefetching would starve it).
    if (R1.WaitCycles > Cfg.L2HitPenalty)
      hwPrefetchOnMiss(Addr);
  } else {
    if (IsLoad) {
      ++Stats.L1LoadMisses;
      if (Site)
        ++Site->L1Misses;
    } else {
      ++Stats.L1StoreMisses;
    }
    CacheAccessResult R2 = L2.access(Addr, Cycles);
    if (R2.Hit) {
      Cost += Cfg.L2HitPenalty + R2.WaitCycles;
      if (R2.WaitCycles > Cfg.L2HitPenalty)
        hwPrefetchOnMiss(Addr);
    } else {
      Cost += Cfg.L2HitPenalty + Cfg.MemPenalty;
      if (IsLoad) {
        ++Stats.L2LoadMisses;
        if (Site)
          ++Site->L2Misses;
      }
      hwPrefetchOnMiss(Addr);
    }
  }

  Cycles += Cost;
  return Cost;
}

void MemorySystem::load(uint64_t Addr, exec::SiteId Site) {
  ++Stats.Loads;
  if (Site >= Sites.size())
    Sites.resize(Site + 1);
  SiteStats &S = Sites[Site];
  ++S.Loads;
  Stats.CyclesStalledOnLoads += demandAccess(Addr, /*IsLoad=*/true, &S);
}

void MemorySystem::store(uint64_t Addr) {
  ++Stats.Stores;
  demandAccess(Addr, /*IsLoad=*/false, nullptr);
}

void MemorySystem::prefetch(uint64_t Addr) {
  ++Stats.SwPrefetchesIssued;
  Cycles += Cfg.PrefetchIssueCost;

  // "The processor cancels the execution of the instruction when a data
  //  translation lookaside buffer miss will occur." (Section 3.3)
  if (!Dtlb.contains(Addr)) {
    ++Stats.SwPrefetchesCancelled;
    return;
  }

  // The fill latency depends on where the line currently lives: an
  // L2-resident line moves into the L1 in an L2-hit time, not a full
  // memory round trip.
  uint64_t ReadyAt = Cycles + (L2.contains(Addr) ? Cfg.L2HitPenalty
                                                 : Cfg.PrefetchFillLatency);
  L2.prefetchFill(Addr, ReadyAt);
  if (Cfg.SwPrefetchFill == PrefetchFillLevel::L1)
    L1.prefetchFill(Addr, ReadyAt);
}

void MemorySystem::guardedLoad(uint64_t Addr) {
  ++Stats.GuardedLoads;
  Cycles += Cfg.GuardedLoadCost;

  // A real load: walks the page table if needed (priming the DTLB) and
  // brings the line into every level. The fill completes after the
  // residency-dependent latency; only the issue cost stalls the pipeline
  // (no computation consumes the loaded value on the critical path).
  Dtlb.fill(Addr);
  if (L1.contains(Addr))
    return;
  uint64_t ReadyAt = Cycles + (L2.contains(Addr) ? Cfg.L2HitPenalty
                                                 : Cfg.PrefetchFillLatency);
  L2.prefetchFill(Addr, ReadyAt);
  L1.prefetchFill(Addr, ReadyAt);
}

void MemorySystem::guardedLoadFault() {
  ++Stats.GuardedLoadFaults;
  Cycles += Cfg.GuardFaultCost;
}

#if defined(__GNUC__) || defined(__clang__)
__attribute__((flatten))
#endif
void MemorySystem::consume(const exec::AccessEvent *Events, size_t N) {
  // The replay fast path: one virtual consume() per block, and inside it
  // the clock and the load counters live in locals — member accesses all
  // share one alias class, so keeping them in the object would force a
  // reload/store per event. The common load (TLB MRU hit + clean L1 hit
  // + known site) commits via the pure peek/commit probes, which perform
  // exactly the member-path bookkeeping; everything else writes the
  // locals back, takes the ordinary member call, and re-hoists — the
  // batched-vs-per-event differential tests pin the two paths together,
  // bit for bit.
  uint64_t Cyc = Cycles;
  uint64_t NLoads = Stats.Loads;
  uint64_t Stalled = Stats.CyclesStalledOnLoads;
  const uint64_t HitCost = Cfg.L1HitCycles;
  const uint64_t ComputeC = Cfg.ComputeCycles;
  SiteStats *SiteArr = Sites.data();
  size_t NSites = Sites.size();
  // Stride loops hammer one site for thousands of events, so its load
  // count is accumulated in a register and flushed on site change (and
  // before any fallback, which may touch the site table).
  size_t CurSite = NSites; // No run pending.
  uint64_t CurSiteLoads = 0;
  Tlb::BlockCursor TlbCur(Dtlb);
  Cache::BlockCursor L1Cur(L1);
  // Writes every register-held counter back to its home and empties the
  // site run; the member state is then exactly what per-event dispatch
  // would have produced.
  auto Sync = [&] {
    Cycles = Cyc;
    Stats.Loads = NLoads;
    Stats.CyclesStalledOnLoads = Stalled;
    if (CurSiteLoads) {
      SiteArr[CurSite].Loads += CurSiteLoads;
      CurSiteLoads = 0;
    }
    CurSite = NSites;
    TlbCur.flush();
    L1Cur.flush();
  };
  auto Rehoist = [&] {
    Cyc = Cycles;
    NLoads = Stats.Loads;
    Stalled = Stats.CyclesStalledOnLoads;
    SiteArr = Sites.data(); // The call may have grown the site table.
    NSites = Sites.size();
    CurSite = NSites;
    TlbCur.reload();
    L1Cur.reload();
  };
  // Stores, prefetches and guarded loads never touch the load counters
  // or the site table, so their fallback only moves the clock and the
  // TLB/L1 counter windows.
  auto SyncMachine = [&] {
    Cycles = Cyc;
    TlbCur.flush();
    L1Cur.flush();
  };
  auto RehoistMachine = [&] {
    Cyc = Cycles;
    TlbCur.reload();
    L1Cur.reload();
  };
  for (size_t I = 0; I != N; ++I) {
    const exec::AccessEvent &E = Events[I];
    switch (E.Kind) {
    case exec::EventKind::Tick:
      Cyc += E.Value * ComputeC;
      break;
    case exec::EventKind::Load: {
      size_t TlbSlot, L1Slot;
      if (E.Site < NSites && (TlbSlot = TlbCur.peekHit(E.Value)) != Tlb::NoSlot &&
          (L1Slot = L1Cur.peekCleanHit(E.Value, Cyc)) != Cache::NoSlot) {
        // Identical to load() when the TLB and the L1 both hit a
        // resident line: hit cost only, no miss counters.
        TlbCur.commitHit(TlbSlot);
        L1Cur.commitHit(L1Slot);
        ++NLoads;
        if (E.Site == CurSite) {
          ++CurSiteLoads;
        } else {
          if (CurSiteLoads)
            SiteArr[CurSite].Loads += CurSiteLoads;
          CurSite = E.Site;
          CurSiteLoads = 1;
        }
        Stalled += HitCost;
        Cyc += HitCost;
        break;
      }
      Sync();
      load(E.Value, E.Site);
      Rehoist();
      break;
    }
    case exec::EventKind::Store:
      SyncMachine();
      store(E.Value);
      RehoistMachine();
      break;
    case exec::EventKind::Prefetch:
      SyncMachine();
      prefetch(E.Value);
      RehoistMachine();
      break;
    case exec::EventKind::GuardedLoad:
      SyncMachine();
      guardedLoad(E.Value);
      RehoistMachine();
      break;
    case exec::EventKind::GuardedLoadFault:
      ++Stats.GuardedLoadFaults;
      Cyc += Cfg.GuardFaultCost;
      break;
    }
  }
  Sync();
}
