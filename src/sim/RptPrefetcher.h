//===- sim/RptPrefetcher.h - Baer-Chen reference prediction table -*- C++ -*-===//
///
/// \file
/// An IP-stride hardware prefetcher: a reference prediction table (RPT)
/// keyed by load site (the simulator's stand-in for the load PC), each
/// entry tracking the last address, the predicted stride, and a
/// two-miss-confirmation confidence FSM (Baer & Chen, Supercomputing
/// '91). Prefetches are issued only from STEADY entries — one wrong
/// stride demotes the entry and gates issue until the new stride is
/// re-confirmed, which is what separates an RPT from the next-line
/// stream detector in HardwarePrefetcher: it follows large and negative
/// strides but needs per-site confidence to avoid cache-polluting wild
/// issues.
///
///   INIT      --correct--> STEADY     --incorrect--> TRANSIENT (new stride)
///   TRANSIENT --correct--> STEADY     --incorrect--> NO_PRED   (new stride)
///   STEADY    --correct--> STEADY     --incorrect--> INIT   (stride kept)
///   NO_PRED   --correct--> TRANSIENT  --incorrect--> NO_PRED  (new stride)
///
//===----------------------------------------------------------------------===//

#ifndef SPF_SIM_RPTPREFETCHER_H
#define SPF_SIM_RPTPREFETCHER_H

#include <cstdint>
#include <vector>

namespace spf {
namespace sim {

/// Confidence state of one RPT entry.
enum class RptState : uint8_t {
  Init,      ///< Freshly allocated; stride not yet observed twice.
  Transient, ///< Stride changed once; candidate stride recorded.
  Steady,    ///< Stride confirmed; prefetches are issued.
  NoPred,    ///< Stride keeps changing; issue fully gated.
};

/// Fully-associative, LRU-replaced reference prediction table.
class RptPrefetcher {
public:
  RptPrefetcher(unsigned NumEntries, unsigned Degree, unsigned PageBytes)
      : NumEntries(NumEntries), Degree(Degree), PageBytes(PageBytes),
        PageShift(pageShiftOf(PageBytes)), Entries(NumEntries) {}

  /// Observes one demand load of site \p Site at \p Addr (every
  /// execution, hit or miss — the RPT watches the instruction stream,
  /// not the miss stream). Appends prefetch target addresses to \p Out
  /// when the entry is STEADY with a nonzero stride; targets never cross
  /// the page of the last issued address (the walk-free guarantee
  /// hardware requires).
  void observe(uint32_t Site, uint64_t Addr, std::vector<uint64_t> &Out);

  uint64_t issuedPrefetches() const { return Issued; }
  uint64_t observedLoads() const { return Observed; }

  /// Test introspection: the live entry for \p Site, or nullptr.
  struct Entry {
    uint32_t Site = 0;
    uint64_t PrevAddr = 0;
    int64_t Stride = 0;
    RptState State = RptState::Init;
    uint64_t LastUse = 0;
    bool Valid = false;
  };
  const Entry *entryFor(uint32_t Site) const;

private:
  static unsigned pageShiftOf(unsigned PageBytes) {
    unsigned S = 0;
    while ((1u << S) < PageBytes)
      ++S;
    return S;
  }
  uint64_t pageOf(uint64_t Addr) const { return Addr >> PageShift; }

  unsigned NumEntries;
  unsigned Degree;
  unsigned PageBytes;
  unsigned PageShift;
  std::vector<Entry> Entries;
  uint64_t UseClock = 0;
  uint64_t Issued = 0;
  uint64_t Observed = 0;
};

} // namespace sim
} // namespace spf

#endif // SPF_SIM_RPTPREFETCHER_H
