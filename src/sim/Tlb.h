//===- sim/Tlb.h - Data TLB model -------------------------------*- C++ -*-===//
///
/// \file
/// LRU data TLB. DTLB behaviour is central to the paper's evaluation: a
/// hardware prefetch is cancelled when it would miss the DTLB, and guarded
/// loads are used precisely to fill DTLB entries in advance ("TLB priming",
/// Section 3.3); Figure 10 reports DTLB load MPIs.
///
//===----------------------------------------------------------------------===//

#ifndef SPF_SIM_TLB_H
#define SPF_SIM_TLB_H

#include <cstdint>
#include <list>
#include <unordered_map>

namespace spf {
namespace sim {

/// Fully-associative LRU TLB with O(1) lookup.
class Tlb {
public:
  Tlb(unsigned Entries, unsigned PageBytes)
      : Entries(Entries), PageBytes(PageBytes) {}

  unsigned pageBytes() const { return PageBytes; }

  /// Demand translation: returns true on hit. On a miss the entry is
  /// filled (the page walk happened); the caller charges the penalty.
  bool access(uint64_t Addr);

  /// Probe without filling: the cancellation check of a hardware prefetch.
  bool contains(uint64_t Addr) const {
    return Map.count(Addr / PageBytes) != 0;
  }

  /// Fills the entry for \p Addr without counting a demand access
  /// (TLB priming by a guarded load).
  void fill(uint64_t Addr);

  void reset();

  uint64_t demandAccesses() const { return DemandAccesses; }
  uint64_t demandMisses() const { return DemandMisses; }

private:
  void insertPage(uint64_t Page);
  void touch(uint64_t Page);

  unsigned Entries;
  unsigned PageBytes;
  // LRU order: front = most recent.
  std::list<uint64_t> Lru;
  std::unordered_map<uint64_t, std::list<uint64_t>::iterator> Map;

  uint64_t DemandAccesses = 0;
  uint64_t DemandMisses = 0;
};

} // namespace sim
} // namespace spf

#endif // SPF_SIM_TLB_H
