//===- sim/Tlb.h - Data TLB model -------------------------------*- C++ -*-===//
///
/// \file
/// LRU data TLB. DTLB behaviour is central to the paper's evaluation: a
/// hardware prefetch is cancelled when it would miss the DTLB, and guarded
/// loads are used precisely to fill DTLB entries in advance ("TLB priming",
/// Section 3.3); Figure 10 reports DTLB load MPIs.
///
/// The TLB sits on the hottest per-event path of trace replay (every
/// demand access translates), so the structure is built for lookups:
/// recency is a monotonic use-clock stamp per entry (stamps are unique
/// and monotonic, so min-stamp eviction is exactly list-LRU order), a
/// one-entry MRU filter short-circuits same-page runs, and the page
/// table itself is a fixed-capacity open-addressed hash table in two
/// flat arrays — one multiply-shift hash plus a short linear probe per
/// lookup, no node allocation, no pointer chase. Deletion (eviction)
/// tombstones the slot; the table is rebuilt in place when tombstones
/// would stretch probe chains. All of it is bookkeeping layout only:
/// hit/miss decisions and eviction order are bit-identical to the
/// classic linked-list LRU.
///
//===----------------------------------------------------------------------===//

#ifndef SPF_SIM_TLB_H
#define SPF_SIM_TLB_H

#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace spf {
namespace sim {

/// Fully-associative LRU TLB with O(1) lookup.
class Tlb {
public:
  Tlb(unsigned Entries, unsigned PageBytes);

  unsigned pageBytes() const { return PageBytes; }

  /// Demand translation: returns true on hit. On a miss the entry is
  /// filled (the page walk happened); the caller charges the penalty.
  bool access(uint64_t Addr) {
    uint64_t Page = pageOf(Addr);
    ++DemandAccesses;
    if (Page == MruPage) {
      Stamps[MruIdx] = ++UseClock;
      return true;
    }
    return accessSlow(Page);
  }

  /// "No hit" result of peekHit().
  static constexpr size_t NoSlot = ~size_t(0);

  /// Pure probe for the replay fast path: the slot of \p Addr's resident
  /// entry, or NoSlot. No state changes; pair with commitHit().
  size_t peekHit(uint64_t Addr) const {
    uint64_t Page = pageOf(Addr);
    if (Page == MruPage)
      return MruIdx;
    return findSlot(Page);
  }

  /// Commits the demand hit peekHit() found — exactly access()'s hit
  /// path (demand-access count, fresh use stamp, MRU repoint).
  void commitHit(size_t Slot) {
    ++DemandAccesses;
    Stamps[Slot] = ++UseClock;
    MruPage = Pages[Slot];
    MruIdx = Slot;
  }

  /// Register-resident counter window for a block of commits — same
  /// contract as Cache::BlockCursor: flush() before any non-cursor call
  /// on this TLB and at the end of the block.
  class BlockCursor {
  public:
    explicit BlockCursor(Tlb &T)
        : T(T), UseClock(T.UseClock), DemandAccesses(T.DemandAccesses) {}

    size_t peekHit(uint64_t Addr) const { return T.peekHit(Addr); }

    /// Exactly Tlb::commitHit, counters held in the cursor.
    void commitHit(size_t Slot) {
      ++DemandAccesses;
      T.Stamps[Slot] = ++UseClock;
      T.MruPage = T.Pages[Slot];
      T.MruIdx = Slot;
    }

    void flush() {
      T.UseClock = UseClock;
      T.DemandAccesses = DemandAccesses;
    }

    void reload() {
      UseClock = T.UseClock;
      DemandAccesses = T.DemandAccesses;
    }

  private:
    Tlb &T;
    uint64_t UseClock;
    uint64_t DemandAccesses;
  };

  /// Probe without filling: the cancellation check of a hardware prefetch.
  /// The MRU entry is always present in the table, so checking it first
  /// is pure fast path.
  bool contains(uint64_t Addr) const {
    uint64_t Page = pageOf(Addr);
    if (Page == MruPage)
      return true;
    return findSlot(Page) != NotFound;
  }

  /// Fills the entry for \p Addr without counting a demand access
  /// (TLB priming by a guarded load).
  void fill(uint64_t Addr);

  void reset();

  uint64_t demandAccesses() const { return DemandAccesses; }
  uint64_t demandMisses() const { return DemandMisses; }

private:
  bool accessSlow(uint64_t Page);
  void insertPage(uint64_t Page);
  void evictLru();
  void rebuild();

  /// Page number of \p Addr: a shift for power-of-two page sizes (the
  /// universal case; PageShift 0 falls back to division). Page sizes of
  /// at least 2 keep every page number below the sentinels.
  uint64_t pageOf(uint64_t Addr) const {
    return PageShift ? Addr >> PageShift : Addr / PageBytes;
  }

  static constexpr size_t NotFound = ~size_t(0);
  /// Slot sentinels — the two top page numbers, unreachable for any
  /// page size >= 2. A tombstone keeps probe chains intact across the
  /// eviction that deleted it.
  static constexpr uint64_t EmptyPage = ~uint64_t(0);
  static constexpr uint64_t TombPage = ~uint64_t(0) - 1;
  /// MRU-invalid marker (doubles as "no page": equals EmptyPage).
  static constexpr uint64_t NoPage = ~uint64_t(0);

  size_t hashIdx(uint64_t Page) const {
    return static_cast<size_t>((Page * 0x9E3779B97F4A7C15ull) >> HashShift);
  }

  /// Index of \p Page's live slot, or NotFound. Pure.
  size_t findSlot(uint64_t Page) const {
    size_t I = hashIdx(Page);
    for (;;) {
      uint64_t P = Pages[I];
      if (P == Page)
        return I;
      if (P == EmptyPage)
        return NotFound;
      I = (I + 1) & Mask;
    }
  }

  unsigned Entries;
  unsigned PageBytes;
  unsigned PageShift;
  unsigned HashShift;
  size_t Mask;              ///< Capacity - 1 (capacity is a power of two).
  std::vector<uint64_t> Pages;  ///< Page per slot, or a sentinel.
  std::vector<uint64_t> Stamps; ///< Last-use stamp, parallel to Pages.
  size_t LiveCount = 0;         ///< Resident entries (<= Entries).
  size_t UsedCount = 0;         ///< Live + tombstoned slots.
  uint64_t UseClock = 0;
  /// One-entry MRU filter: NoPage = invalid; otherwise Pages[MruIdx] ==
  /// MruPage (eviction of the MRU entry and reset() invalidate it;
  /// rebuild() re-points MruIdx).
  uint64_t MruPage = NoPage;
  size_t MruIdx = 0;

  uint64_t DemandAccesses = 0;
  uint64_t DemandMisses = 0;
};

} // namespace sim
} // namespace spf

#endif // SPF_SIM_TLB_H
