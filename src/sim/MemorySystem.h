//===- sim/MemorySystem.h - L1 + L2 + DTLB + clock --------------*- C++ -*-===//
///
/// \file
/// Composes the cache hierarchy, the DTLB, and the hardware prefetcher
/// behind the event interface the interpreter drives: compute ticks,
/// demand loads/stores, hardware prefetch instructions, and guarded
/// loads. This is the canonical exec::AccessSink implementation — the
/// timing half of the execution/timing split — so it can consume either
/// a live interpreter or a replayed trace::TraceBuffer, with identical
/// results. Owns the cycle clock and the counters behind Figures 8-10
/// (load misses per instruction), plus per-load-site attribution.
///
//===----------------------------------------------------------------------===//

#ifndef SPF_SIM_MEMORYSYSTEM_H
#define SPF_SIM_MEMORYSYSTEM_H

#include "exec/AccessSink.h"
#include "sim/HardwarePrefetcher.h"
#include "sim/MachineConfig.h"
#include "sim/Tlb.h"

#include <vector>

namespace spf {
namespace sim {

/// Event counters for the MPI figures.
struct MemoryStats {
  uint64_t Loads = 0;
  uint64_t Stores = 0;
  uint64_t L1LoadMisses = 0;
  uint64_t L1StoreMisses = 0;
  uint64_t L2LoadMisses = 0;
  uint64_t DtlbLoadMisses = 0;
  uint64_t SwPrefetchesIssued = 0;
  uint64_t SwPrefetchesCancelled = 0; ///< DTLB miss cancelled the prefetch.
  uint64_t GuardedLoads = 0;
  /// Guarded loads whose software exception check failed (garbage
  /// speculative address): recovery-path cost only, no fill.
  uint64_t GuardedLoadFaults = 0;
  /// Cycle breakdown: total cycles charged to demand loads (hit latency
  /// plus every miss/TLB penalty) — the share of the clock that load
  /// stalls account for.
  uint64_t CyclesStalledOnLoads = 0;

  bool operator==(const MemoryStats &) const = default;
};

/// Per-load-site counters (index = exec::SiteId, assigned by the
/// interpreter in first-execution order and carried by the trace).
struct SiteStats {
  uint64_t Loads = 0;
  uint64_t L1Misses = 0;
  uint64_t L2Misses = 0;
  uint64_t DtlbMisses = 0;

  bool operator==(const SiteStats &) const = default;
};

/// The simulated memory hierarchy of one machine.
class MemorySystem final : public exec::AccessSink {
public:
  explicit MemorySystem(const MachineConfig &Cfg);

  const MachineConfig &config() const { return Cfg; }

  /// Advances the clock for \p N non-memory instructions.
  void tick(uint64_t N) override { Cycles += N * Cfg.ComputeCycles; }

  /// Demand load at \p Addr, attributed to load site \p Site. Advances
  /// the clock by the access cost.
  void load(uint64_t Addr, exec::SiteId Site) override;

  /// Convenience for direct (non-interpreter) drivers: site 0.
  void load(uint64_t Addr) { load(Addr, 0); }

  /// Demand store at \p Addr.
  void store(uint64_t Addr) override;

  /// Hardware prefetch instruction: cancelled when the target page is not
  /// in the DTLB; otherwise fills the configured level with the line
  /// becoming usable PrefetchFillLatency cycles from now.
  void prefetch(uint64_t Addr) override;

  /// Guarded load: a real access that fills the DTLB (TLB priming) and all
  /// cache levels, costing only the issue overhead — its latency is hidden
  /// by out-of-order execution since no computation consumes its result.
  void guardedLoad(uint64_t Addr) override;

  /// Guarded load whose guard failed: the software exception check
  /// rejected the address, so no memory access happens — only the
  /// recovery branch's cost. Caches and the DTLB are untouched.
  void guardedLoadFault() override;

  /// Block dispatch for the replay fast path: identical semantics to
  /// per-event calls (the class is final, so the inner loop
  /// devirtualizes), bit-identical stats and cycles.
  void consume(const exec::AccessEvent *Events, size_t N) override;

  uint64_t cycles() const { return Cycles; }
  const MemoryStats &stats() const { return Stats; }
  /// Per-site load/miss attribution; index = SiteId, grown on demand.
  const std::vector<SiteStats> &siteStats() const { return Sites; }

  const Cache &l1() const { return L1; }
  const Cache &l2() const { return L2; }
  const Tlb &dtlb() const { return Dtlb; }

private:
  uint64_t demandAccess(uint64_t Addr, bool IsLoad, SiteStats *Site);
  void hwPrefetchOnMiss(uint64_t Addr);

  MachineConfig Cfg;
  Cache L1;
  Cache L2;
  Tlb Dtlb;
  HardwarePrefetcher HwPf;
  uint64_t Cycles = 0;
  MemoryStats Stats;
  std::vector<SiteStats> Sites;
  std::vector<uint64_t> HwTargets; // Scratch for prefetcher output.
};

} // namespace sim
} // namespace spf

#endif // SPF_SIM_MEMORYSYSTEM_H
