//===- sim/MemorySystem.h - L1 + L2 + DTLB + clock --------------*- C++ -*-===//
///
/// \file
/// Composes the cache hierarchy, the DTLB, and the hardware prefetcher
/// behind the event interface the interpreter drives: compute ticks,
/// demand loads/stores, hardware prefetch instructions, and guarded loads.
/// Owns the cycle clock and the counters behind Figures 8-10 (load misses
/// per instruction).
///
//===----------------------------------------------------------------------===//

#ifndef SPF_SIM_MEMORYSYSTEM_H
#define SPF_SIM_MEMORYSYSTEM_H

#include "sim/HardwarePrefetcher.h"
#include "sim/MachineConfig.h"
#include "sim/Tlb.h"

namespace spf {
namespace sim {

/// Event counters for the MPI figures.
struct MemoryStats {
  uint64_t Loads = 0;
  uint64_t Stores = 0;
  uint64_t L1LoadMisses = 0;
  uint64_t L2LoadMisses = 0;
  uint64_t DtlbLoadMisses = 0;
  uint64_t SwPrefetchesIssued = 0;
  uint64_t SwPrefetchesCancelled = 0; ///< DTLB miss cancelled the prefetch.
  uint64_t GuardedLoads = 0;
  /// Guarded loads whose software exception check failed (garbage
  /// speculative address): recovery-path cost only, no fill.
  uint64_t GuardedLoadFaults = 0;
};

/// The simulated memory hierarchy of one machine.
class MemorySystem {
public:
  explicit MemorySystem(const MachineConfig &Cfg);

  const MachineConfig &config() const { return Cfg; }

  /// Advances the clock for \p N non-memory instructions.
  void tick(uint64_t N) { Cycles += N * Cfg.ComputeCycles; }

  /// Demand load at \p Addr. Advances the clock by the access cost.
  void load(uint64_t Addr);

  /// Demand store at \p Addr.
  void store(uint64_t Addr);

  /// Hardware prefetch instruction: cancelled when the target page is not
  /// in the DTLB; otherwise fills the configured level with the line
  /// becoming usable PrefetchFillLatency cycles from now.
  void prefetch(uint64_t Addr);

  /// Guarded load: a real access that fills the DTLB (TLB priming) and all
  /// cache levels, costing only the issue overhead — its latency is hidden
  /// by out-of-order execution since no computation consumes its result.
  void guardedLoad(uint64_t Addr);

  /// Guarded load whose guard failed: the software exception check
  /// rejected the address, so no memory access happens — only the
  /// recovery branch's cost. Caches and the DTLB are untouched.
  void guardedLoadFault();

  uint64_t cycles() const { return Cycles; }
  const MemoryStats &stats() const { return Stats; }

  const Cache &l1() const { return L1; }
  const Cache &l2() const { return L2; }
  const Tlb &dtlb() const { return Dtlb; }

private:
  void demandAccess(uint64_t Addr, bool IsLoad);
  void hwPrefetchOnMiss(uint64_t Addr);

  MachineConfig Cfg;
  Cache L1;
  Cache L2;
  Tlb Dtlb;
  HardwarePrefetcher HwPf;
  uint64_t Cycles = 0;
  MemoryStats Stats;
  std::vector<uint64_t> HwTargets; // Scratch for prefetcher output.
};

} // namespace sim
} // namespace spf

#endif // SPF_SIM_MEMORYSYSTEM_H
