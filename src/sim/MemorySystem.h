//===- sim/MemorySystem.h - N-level caches + DTLB + clock -------*- C++ -*-===//
///
/// \file
/// Composes the cache hierarchy (any number of levels, from the machine
/// config), the DTLB (flat-penalty or walked misses), and the selected
/// hardware prefetcher behind the event interface the interpreter
/// drives: compute ticks, demand loads/stores, hardware prefetch
/// instructions, and guarded loads. This is the canonical
/// exec::AccessSink implementation — the timing half of the
/// execution/timing split — so it can consume either a live interpreter
/// or a replayed trace::TraceBuffer, with identical results. Owns the
/// cycle clock and the counters behind Figures 8-10 (load misses per
/// instruction), plus per-load-site attribution.
///
/// For the builtin two-level flat-TLB configs (Pentium 4, Athlon MP) the
/// generalized cost accounting is bit-identical to the historical fixed
/// L1+L2 model: level 0's HitCycles is the base access cost, each deeper
/// probed level adds its HitCycles, and a full miss adds MemPenalty on
/// top — exactly the old L1HitCycles / L2HitPenalty / MemPenalty charges
/// (pinned by the differential tests and the committed golden report).
///
//===----------------------------------------------------------------------===//

#ifndef SPF_SIM_MEMORYSYSTEM_H
#define SPF_SIM_MEMORYSYSTEM_H

#include "exec/AccessSink.h"
#include "sim/HardwarePrefetcher.h"
#include "sim/MachineConfig.h"
#include "sim/RptPrefetcher.h"
#include "sim/Tlb.h"

#include <vector>

namespace spf {
namespace sim {

/// Event counters for the MPI figures.
struct MemoryStats {
  uint64_t Loads = 0;
  uint64_t Stores = 0;
  uint64_t L1LoadMisses = 0;
  uint64_t L1StoreMisses = 0;
  uint64_t L2LoadMisses = 0;
  uint64_t DtlbLoadMisses = 0;
  uint64_t SwPrefetchesIssued = 0;
  uint64_t SwPrefetchesCancelled = 0; ///< DTLB miss cancelled the prefetch.
  uint64_t GuardedLoads = 0;
  /// Guarded loads whose software exception check failed (garbage
  /// speculative address): recovery-path cost only, no fill.
  uint64_t GuardedLoadFaults = 0;
  /// Cycle breakdown: total cycles charged to demand loads (hit latency
  /// plus every miss/TLB penalty) — the share of the clock that load
  /// stalls account for.
  uint64_t CyclesStalledOnLoads = 0;
  /// Load misses at the last cache level. Equals L2LoadMisses on a
  /// two-level machine; distinct on deeper hierarchies.
  uint64_t LlcLoadMisses = 0;
  /// Modeled page walks (TlbWalk::Walked only): demand walks plus
  /// guarded-load priming walks.
  uint64_t PageWalks = 0;
  /// Cycles charged by demand walks (priming walks are latency-hidden
  /// and charge nothing).
  uint64_t PageWalkCycles = 0;
  /// RPT hardware-prefetch fills issued (mirror of the FSM's counter so
  /// reports see it without the MemorySystem). Zero unless the machine's
  /// effective hardware prefetcher is the RPT.
  uint64_t RptPrefetchesIssued = 0;
  /// Resolution of tagged RPT fills (tags live on last-level lines):
  /// first demand hit fully resident / hit while still in flight /
  /// evicted untouched. Each fill resolves at most once; fills still
  /// resident at end of run stay unresolved.
  uint64_t RptPrefetchesUseful = 0;
  uint64_t RptPrefetchesLate = 0;
  uint64_t RptPrefetchesUnused = 0;
  /// Resolution of tagged software-prefetch fills (plan prefetches and
  /// guarded loads). Counted only while prefetch-health tracking is on —
  /// all zero otherwise, preserving the pre-governor stats bit for bit.
  uint64_t SwPrefetchesUseful = 0;
  uint64_t SwPrefetchesLate = 0;
  uint64_t SwPrefetchesUnused = 0;

  bool operator==(const MemoryStats &) const = default;
};

/// Exact attribution of every cycle the MemorySystem charges. Each
/// charge site adds to exactly one category (plus the clock), so
/// total() == MemorySystem::cycles() is a hard invariant on every
/// machine and on both the per-event and the batched replay paths —
/// pinned by tests/acct_test.cpp. The GC-pause share is not split out
/// here: GC pauses reach the sim as ordinary compute ticks, so the
/// report layer derives gc_pause = pauses * GcPauseTicks * ComputeCycles
/// and subtracts it from Compute (see harness::cycleBreakdown).
struct CycleAccounting {
  /// tick() charges: N * ComputeCycles (includes GC pause ticks).
  uint64_t Compute = 0;
  /// Per-cache-level probe charges (index = level): level 0's base
  /// HitCycles on every demand access plus each deeper probed level's
  /// HitCycles.
  std::vector<uint64_t> Level;
  /// Extra wait on hits to lines still in flight from a prefetch.
  uint64_t Wait = 0;
  /// Full-miss memory round trips on demand accesses.
  uint64_t MemPenalty = 0;
  /// DTLB-miss translation: the flat penalty on Flat machines, the
  /// demand page walk's full cost on Walked machines (equals
  /// MemoryStats::PageWalkCycles there). Guarded-load priming walks are
  /// latency-hidden and charge neither the clock nor any category.
  uint64_t Translation = 0;
  /// Guarded-load guard failures (recovery branch cost).
  uint64_t GuardFault = 0;
  /// Software prefetch issue + guarded-load issue overhead.
  uint64_t PrefetchIssue = 0;

  uint64_t total() const {
    uint64_t T = Compute + Wait + MemPenalty + Translation + GuardFault +
                 PrefetchIssue;
    for (uint64_t L : Level)
      T += L;
    return T;
  }

  bool operator==(const CycleAccounting &) const = default;
};

/// Per-load-site counters (index = exec::SiteId, assigned by the
/// interpreter in first-execution order and carried by the trace).
struct SiteStats {
  uint64_t Loads = 0;
  uint64_t L1Misses = 0;
  uint64_t L2Misses = 0;
  uint64_t DtlbMisses = 0;
  /// Total demand-access cycles this site's loads charged (hit latency
  /// plus every miss/TLB penalty) — the per-site share of
  /// MemoryStats::CyclesStalledOnLoads. Not part of siteStatsHash (the
  /// folded-stream hash stays pinned to the original four fields).
  uint64_t StallCycles = 0;
  /// Prefetch-health attribution (opt::Governor's evidence). Sw* counts
  /// the site's plan prefetches / guarded loads and the resolution of
  /// their tagged fills; populated only when health tracking is enabled
  /// AND the producer attributes issues (the site-aware prefetch
  /// overloads below) — zero otherwise. Rpt* attributes the hardware
  /// RPT's fills to the load site that trained them.
  uint64_t SwIssued = 0;
  uint64_t SwUseful = 0;
  uint64_t SwLate = 0;
  uint64_t SwUnused = 0;
  uint64_t RptIssued = 0;
  uint64_t RptUseful = 0;
  uint64_t RptLate = 0;
  uint64_t RptUnused = 0;

  bool operator==(const SiteStats &) const = default;
};

/// The simulated memory hierarchy of one machine.
class MemorySystem final : public exec::AccessSink,
                           private PrefetchTagObserver {
public:
  explicit MemorySystem(const MachineConfig &Cfg);

  const MachineConfig &config() const { return Cfg; }

  /// Advances the clock for \p N non-memory instructions.
  void tick(uint64_t N) override {
    uint64_t C = N * Cfg.ComputeCycles;
    Cycles += C;
    Acct.Compute += C;
  }

  /// Demand load at \p Addr, attributed to load site \p Site. Advances
  /// the clock by the access cost.
  void load(uint64_t Addr, exec::SiteId Site) override;

  /// Convenience for direct (non-interpreter) drivers: site 0.
  void load(uint64_t Addr) { load(Addr, 0); }

  /// Demand store at \p Addr.
  void store(uint64_t Addr) override;

  /// Hardware prefetch instruction: cancelled when the target page is not
  /// in the DTLB; otherwise fills the configured levels with the line
  /// becoming usable PrefetchFillLatency cycles from now.
  void prefetch(uint64_t Addr) override { prefetchImpl(Addr, 0); }

  /// Site-attributed form: identical timing and global stats; when
  /// prefetch-health tracking is on, the issue and its fill's fate are
  /// charged to \p Site 's SiteStats.
  void prefetch(uint64_t Addr, exec::SiteId Site) override {
    prefetchImpl(Addr, Site);
  }

  /// Guarded load: a real access that fills the DTLB (TLB priming — on a
  /// walked-TLB machine the walk's page-table accesses go through the
  /// caches, warming them for the demand walk that never happens) and
  /// all cache levels, costing only the issue overhead — its latency is
  /// hidden by out-of-order execution since no computation consumes its
  /// result.
  void guardedLoad(uint64_t Addr) override { guardedLoadImpl(Addr, 0); }

  /// Site-attributed form (see prefetch(Addr, Site)).
  void guardedLoad(uint64_t Addr, exec::SiteId Site) override {
    guardedLoadImpl(Addr, Site);
  }

  /// Guarded load whose guard failed: the software exception check
  /// rejected the address, so no memory access happens — only the
  /// recovery branch's cost. Caches and the DTLB are untouched.
  void guardedLoadFault() override { guardedLoadFaultImpl(0); }

  /// Site-attributed form: a fault still counts as an issue against the
  /// site under health tracking (it can never become useful).
  void guardedLoadFault(exec::SiteId Site) override {
    guardedLoadFaultImpl(Site);
  }

  /// Block dispatch for the replay fast path: identical semantics to
  /// per-event calls (the class is final, so the inner loop
  /// devirtualizes), bit-identical stats and cycles.
  void consume(const exec::AccessEvent *Events, size_t N) override;

  /// Turns on per-site prefetch-health accounting: software prefetch /
  /// guarded-load fills are tagged in the cache and their resolution
  /// (useful / late / evicted-unused) charged to the issuing site.
  /// Timing, demand stats, and the pre-existing counters are unchanged —
  /// but consume() leaves the batched fast path (the L1 cursor cannot
  /// see tags), so enable this only for governor-driven runs. Cannot be
  /// turned off again: tags already in flight would misreport.
  void enablePrefetchHealth();
  bool prefetchHealthEnabled() const { return SwHealth; }

  uint64_t cycles() const { return Cycles; }
  const MemoryStats &stats() const { return Stats; }
  /// Cycle attribution; acct().total() == cycles() always holds.
  const CycleAccounting &acct() const { return Acct; }
  /// Per-site load/miss attribution; index = SiteId, grown on demand.
  const std::vector<SiteStats> &siteStats() const { return Sites; }

  const Cache &l1() const { return CacheLevels.front(); }
  const Cache &l2() const { return CacheLevels[1]; }
  const Cache &lastLevelCache() const { return CacheLevels.back(); }
  const Cache &cacheLevel(unsigned I) const { return CacheLevels[I]; }
  unsigned numCacheLevels() const {
    return static_cast<unsigned>(CacheLevels.size());
  }
  const Tlb &dtlb() const { return Dtlb; }
  const RptPrefetcher &rpt() const { return Rpt; }

private:
  void prefetchImpl(uint64_t Addr, exec::SiteId Site);
  void guardedLoadImpl(uint64_t Addr, exec::SiteId Site);
  void guardedLoadFaultImpl(exec::SiteId Site);
  /// Sites[Site], grown on demand.
  SiteStats &siteFor(exec::SiteId Site) {
    if (Site >= Sites.size())
      Sites.resize(Site + 1);
    return Sites[Site];
  }
  // PrefetchTagObserver: resolution of tagged fills.
  void prefetchedLineUsed(PfTag Kind, uint32_t Site, bool Late) override;
  void prefetchedLineEvicted(PfTag Kind, uint32_t Site) override;

  uint64_t demandAccess(uint64_t Addr, bool IsLoad, SiteStats *Site);
  /// Cost of translating \p Addr after a DTLB miss: flat penalty or a
  /// modeled radix walk (stats counted here).
  uint64_t translationCost(uint64_t Addr);
  /// The modeled radix walk itself: one page-table access per walk level
  /// through the cache hierarchy, deepening prefix indices so neighbor
  /// pages share upper-level entries. Returns the cost; no stats.
  uint64_t pageWalk(uint64_t Addr);
  /// One cache-hierarchy access of the page-table walker: demand-shaped
  /// cost (level penalties + MemPenalty on a full miss), fills on the
  /// way, but never counts load/store stats or trains the prefetcher.
  uint64_t walkerAccess(uint64_t PteAddr);
  void hwPrefetchOnMiss(uint64_t Addr);
  /// RPT observation of one demand load at time \p Now (the batched path
  /// passes its register-resident clock; fills only ever touch the last
  /// cache level, so the TLB/L1 cursors stay valid).
  void rptObserveLoad(uint32_t Site, uint64_t Addr, uint64_t Now);
  /// Residency-dependent fill latency of a software prefetch: the
  /// cumulative penalty down to the shallowest level that holds the
  /// line, or the full PrefetchFillLatency when none does.
  uint64_t swFillReadyAt(uint64_t Addr) const;

  MachineConfig Cfg;
  std::vector<Cache> CacheLevels;
  Tlb Dtlb;
  HardwarePrefetcher HwPf;
  RptPrefetcher Rpt;
  bool StreamActive; ///< effectiveHwPrefetch() == Stream, hoisted.
  bool RptActive;    ///< effectiveHwPrefetch() == Rpt, hoisted.
  /// Stream-training threshold: a demand wait above the first deeper
  /// level's hit penalty means the line came from an in-flight prefetch,
  /// i.e. architecturally a miss.
  uint64_t HwTrainThreshold;
  /// log2(PageBytes) for the walker's page-number math (0 = division
  /// fallback for non-power-of-two pages, matching Tlb).
  unsigned PageShift;
  /// Prefetch-health tracking on (enablePrefetchHealth()); routes
  /// consume() through the per-event path.
  bool SwHealth = false;
  uint64_t Cycles = 0;
  MemoryStats Stats;
  CycleAccounting Acct;
  std::vector<SiteStats> Sites;
  std::vector<uint64_t> HwTargets; // Scratch for prefetcher output.
};

} // namespace sim
} // namespace spf

#endif // SPF_SIM_MEMORYSYSTEM_H
