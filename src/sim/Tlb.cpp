//===- sim/Tlb.cpp --------------------------------------------------------===//

#include "sim/Tlb.h"

using namespace spf;
using namespace spf::sim;

Tlb::Tlb(unsigned Entries, unsigned PageBytes)
    : Entries(Entries), PageBytes(PageBytes),
      PageShift((PageBytes & (PageBytes - 1)) == 0
                    ? static_cast<unsigned>(std::countr_zero(PageBytes))
                    : 0) {
  // Capacity 2x the entry count (power of two, >= 8): at most half the
  // slots are ever live, keeping linear probes short.
  size_t Cap = std::bit_ceil(static_cast<size_t>(Entries ? Entries : 1) * 2);
  if (Cap < 8)
    Cap = 8;
  Mask = Cap - 1;
  HashShift = 64 - static_cast<unsigned>(std::countr_zero(Cap));
  Pages.assign(Cap, EmptyPage);
  Stamps.assign(Cap, 0);
}

bool Tlb::accessSlow(uint64_t Page) {
  size_t I = findSlot(Page);
  if (I != NotFound) {
    Stamps[I] = ++UseClock;
    MruPage = Page;
    MruIdx = I;
    return true;
  }
  ++DemandMisses;
  insertPage(Page);
  return false;
}

void Tlb::evictLru() {
  // Evict the minimum stamp: exact LRU, since every touch assigns a
  // fresh monotonic stamp. O(capacity) on the rare miss path, in
  // exchange for probe-only hits.
  size_t Victim = NotFound;
  uint64_t Min = ~uint64_t(0);
  size_t Cap = Mask + 1;
  for (size_t I = 0; I != Cap; ++I)
    if (Pages[I] < TombPage && Stamps[I] < Min) {
      Min = Stamps[I];
      Victim = I;
    }
  if (Pages[Victim] == MruPage) // Only possible when Entries == 1.
    MruPage = NoPage;
  Pages[Victim] = TombPage;
  --LiveCount;
}

void Tlb::rebuild() {
  // Drop tombstones, keeping every live (page, stamp) pair: LRU state is
  // carried entirely by the stamps, so slot placement is unobservable.
  std::vector<uint64_t> OldPages = std::move(Pages);
  std::vector<uint64_t> OldStamps = std::move(Stamps);
  size_t Cap = Mask + 1;
  Pages.assign(Cap, EmptyPage);
  Stamps.assign(Cap, 0);
  UsedCount = LiveCount;
  for (size_t I = 0; I != Cap; ++I) {
    if (OldPages[I] >= TombPage)
      continue;
    size_t J = hashIdx(OldPages[I]);
    while (Pages[J] != EmptyPage)
      J = (J + 1) & Mask;
    Pages[J] = OldPages[I];
    Stamps[J] = OldStamps[I];
    if (OldPages[I] == MruPage)
      MruIdx = J;
  }
}

void Tlb::insertPage(uint64_t Page) {
  if (LiveCount >= Entries)
    evictLru();
  if ((UsedCount + 1) * 4 > (Mask + 1) * 3)
    rebuild();
  // The caller guarantees Page is absent, so the first tombstone (or the
  // terminal empty slot) on its probe chain is a valid home.
  size_t I = hashIdx(Page);
  for (;;) {
    uint64_t P = Pages[I];
    if (P == TombPage)
      break;
    if (P == EmptyPage) {
      ++UsedCount;
      break;
    }
    I = (I + 1) & Mask;
  }
  Pages[I] = Page;
  Stamps[I] = ++UseClock;
  ++LiveCount;
  MruPage = Page;
  MruIdx = I;
}

void Tlb::fill(uint64_t Addr) {
  uint64_t Page = pageOf(Addr);
  if (Page == MruPage) {
    Stamps[MruIdx] = ++UseClock;
    return;
  }
  size_t I = findSlot(Page);
  if (I != NotFound) {
    Stamps[I] = ++UseClock;
    MruPage = Page;
    MruIdx = I;
    return;
  }
  insertPage(Page);
}

void Tlb::reset() {
  Pages.assign(Pages.size(), EmptyPage);
  Stamps.assign(Stamps.size(), 0);
  LiveCount = 0;
  UsedCount = 0;
  UseClock = 0;
  MruPage = NoPage;
  MruIdx = 0;
}
