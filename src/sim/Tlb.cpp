//===- sim/Tlb.cpp --------------------------------------------------------===//

#include "sim/Tlb.h"

using namespace spf;
using namespace spf::sim;

void Tlb::touch(uint64_t Page) {
  auto It = Map.find(Page);
  Lru.splice(Lru.begin(), Lru, It->second);
}

void Tlb::insertPage(uint64_t Page) {
  if (Map.size() >= Entries) {
    uint64_t Evicted = Lru.back();
    Lru.pop_back();
    Map.erase(Evicted);
  }
  Lru.push_front(Page);
  Map[Page] = Lru.begin();
}

bool Tlb::access(uint64_t Addr) {
  uint64_t Page = Addr / PageBytes;
  ++DemandAccesses;
  if (Map.count(Page)) {
    touch(Page);
    return true;
  }
  ++DemandMisses;
  insertPage(Page);
  return false;
}

void Tlb::fill(uint64_t Addr) {
  uint64_t Page = Addr / PageBytes;
  if (Map.count(Page)) {
    touch(Page);
    return;
  }
  insertPage(Page);
}

void Tlb::reset() {
  Lru.clear();
  Map.clear();
}
