//===- sim/MachineConfig.h - Machine models (paper Table 2) -----*- C++ -*-===//
///
/// \file
/// Machine parameters for the two evaluation platforms, following the
/// paper's Table 2 plus a simple cycle cost model:
///
///   Processor   L1 size  L1 line  L2 size  L2 line  #DTLB
///   Pentium 4     8 KB     64 B   256 KB    128 B     64
///   Athlon MP    64 KB     64 B   256 KB     64 B    256
///
/// The target level of a software prefetch is the L2 on the Pentium 4 and
/// the L1 on the Athlon MP (Section 4) — the single most consequential
/// difference for the evaluation (e.g. MolDyn).
///
//===----------------------------------------------------------------------===//

#ifndef SPF_SIM_MACHINECONFIG_H
#define SPF_SIM_MACHINECONFIG_H

#include "sim/Cache.h"

#include <string>

namespace spf {
namespace sim {

/// Which cache level a software `prefetch` instruction fills.
enum class PrefetchFillLevel : uint8_t {
  L1, ///< Fills L1 (and L2): Athlon MP behaviour.
  L2, ///< Fills only L2: Pentium 4 behaviour.
};

/// All simulator parameters of one machine.
struct MachineConfig {
  std::string Name;

  CacheParams L1;
  CacheParams L2;

  unsigned TlbEntries = 64;
  unsigned PageBytes = 4096;

  // Cycle cost model (relative costs; absolute 2003 latencies are not the
  // reproduction target).
  unsigned ComputeCycles = 1;     ///< Non-memory instruction.
  unsigned L1HitCycles = 1;       ///< Load/store hitting L1.
  unsigned L2HitPenalty = 14;     ///< Added on an L1 miss that hits L2.
  unsigned MemPenalty = 200;      ///< Added on an L2 miss.
  unsigned TlbMissPenalty = 50;   ///< Added on a DTLB miss (page walk).
  unsigned PrefetchIssueCost = 1; ///< Hardware prefetch instruction.
  unsigned GuardedLoadCost = 3;   ///< Guarded load incl. exception check.
  /// Guarded load whose software exception check *fails*: the recovery
  /// branch retires, nothing is loaded, no cache/TLB fill happens.
  unsigned GuardFaultCost = 6;
  /// Cycles until a prefetched line becomes usable; an access arriving
  /// earlier pays the remainder (partial hiding).
  unsigned PrefetchFillLatency = 60;

  PrefetchFillLevel SwPrefetchFill = PrefetchFillLevel::L2;

  bool HwPrefetchEnabled = true;
  unsigned HwPrefetchStreams = 8;
  unsigned HwPrefetchDegree = 2;

  /// The 2 GHz Intel Pentium 4 of the evaluation.
  static MachineConfig pentium4();
  /// The 1.2 GHz AMD Athlon MP of the evaluation.
  static MachineConfig athlonMP();
};

} // namespace sim
} // namespace spf

#endif // SPF_SIM_MACHINECONFIG_H
