//===- sim/MachineConfig.h - Machine models (paper Table 2) -----*- C++ -*-===//
///
/// \file
/// Data-driven machine descriptions: an ordered vector of cache levels
/// (geometry + hit penalty per level), DTLB parameters with either a flat
/// miss penalty or a modeled page-table walk, and a selectable hardware
/// prefetcher (none / sequential stream / Baer-Chen RPT).
///
/// The two evaluation platforms of the paper (Table 2) are builtin
/// two-level configs:
///
///   Processor   L1 size  L1 line  L2 size  L2 line  #DTLB
///   Pentium 4     8 KB     64 B   256 KB    128 B     64
///   Athlon MP    64 KB     64 B   256 KB     64 B    256
///
/// The target level of a software prefetch is the L2 on the Pentium 4 and
/// the L1 on the Athlon MP (Section 4) — the single most consequential
/// difference for the evaluation (e.g. MolDyn). A third builtin,
/// modern3(), is a three-level (L1/L2/LLC) machine with walked TLB
/// misses and an RPT prefetcher.
///
/// Configs are also loadable from JSON machine files (machines/*.json)
/// via fromFile(); byName() resolves the builtins. Every entry point
/// funnels through validate(), which rejects geometry the simulator
/// would otherwise mishandle silently (non-power-of-two lines/sets, a
/// fill level past the hierarchy, ...).
///
//===----------------------------------------------------------------------===//

#ifndef SPF_SIM_MACHINECONFIG_H
#define SPF_SIM_MACHINECONFIG_H

#include "sim/Cache.h"

#include <optional>
#include <string>
#include <vector>

namespace spf {
namespace sim {

/// Hardware prefetcher attached to the last cache level.
enum class HwPrefetchKind : uint8_t {
  None,   ///< No hardware prefetcher.
  Stream, ///< Sequential next-line stream detector (trains on misses).
  Rpt,    ///< Baer-Chen reference prediction table keyed by load site.
};

/// How a DTLB miss is charged.
enum class TlbWalk : uint8_t {
  Flat,   ///< Flat TlbMissPenalty cycles (the classic model).
  Walked, ///< Modeled radix page-table walk through the cache hierarchy.
};

const char *hwPrefetchKindName(HwPrefetchKind K);
std::optional<HwPrefetchKind> parseHwPrefetchKind(const std::string &Name);
const char *tlbWalkName(TlbWalk W);
std::optional<TlbWalk> parseTlbWalk(const std::string &Name);

/// One level of the cache hierarchy, shallowest first.
struct CacheLevel {
  std::string Label = "L1"; ///< "L1", "L2", "LLC", ... (diagnostics/JSON).
  CacheParams Geometry;
  /// Level 0: cycles of every access that hits it. Deeper levels: cycles
  /// *added* when the previous level misses and this one is probed.
  unsigned HitCycles = 1;

  bool operator==(const CacheLevel &) const = default;
};

/// All simulator parameters of one machine.
struct MachineConfig {
  std::string Name;

  /// The cache hierarchy, L1 first. At least two levels.
  std::vector<CacheLevel> Levels;

  unsigned TlbEntries = 64;
  unsigned PageBytes = 4096;

  /// DTLB miss model. Flat charges TlbMissPenalty; Walked performs
  /// WalkLevels page-table accesses through the cache hierarchy, so the
  /// walk cost depends on cache state (and guarded-load TLB priming
  /// leaves the walked entries warm).
  TlbWalk Walk = TlbWalk::Flat;
  unsigned TlbMissPenalty = 50; ///< Flat-mode DTLB miss charge.
  unsigned WalkLevels = 4;      ///< Radix depth of the modeled walk.
  unsigned WalkEntryBytes = 8;  ///< Bytes per page-table entry.
  unsigned WalkIndexBits = 9;   ///< log2(entries per page-table node).

  // Cycle cost model (relative costs; absolute 2003 latencies are not the
  // reproduction target).
  unsigned ComputeCycles = 1;     ///< Non-memory instruction.
  unsigned MemPenalty = 200;      ///< Added when the last level misses.
  unsigned PrefetchIssueCost = 1; ///< Hardware prefetch instruction.
  unsigned GuardedLoadCost = 3;   ///< Guarded load incl. exception check.
  /// Guarded load whose software exception check *fails*: the recovery
  /// branch retires, nothing is loaded, no cache/TLB fill happens.
  unsigned GuardFaultCost = 6;
  /// Cycles until a prefetched line becomes usable; an access arriving
  /// earlier pays the remainder (partial hiding).
  unsigned PrefetchFillLatency = 60;

  /// Index into Levels of the shallowest level a software prefetch
  /// fills (it also fills every deeper level). 1 = Pentium 4 behaviour
  /// (L2 only), 0 = Athlon MP behaviour (L1 and L2).
  unsigned SwFillLevel = 1;

  HwPrefetchKind HwPrefetch = HwPrefetchKind::Stream;
  /// Per-cell off switch (the hardware-prefetch experiment facet): when
  /// false the configured kind is inert without renaming the machine.
  bool HwPrefetchEnabled = true;
  unsigned HwPrefetchStreams = 8; ///< Stream detector entries.
  unsigned HwPrefetchDegree = 2;  ///< Lines issued per trigger (both kinds).
  unsigned RptEntries = 64;       ///< RPT table entries.

  bool operator==(const MachineConfig &) const = default;

  // -- Derived accessors ----------------------------------------------

  unsigned numLevels() const { return static_cast<unsigned>(Levels.size()); }
  const CacheLevel &level(unsigned I) const { return Levels[I]; }
  const CacheLevel &lastLevel() const { return Levels.back(); }
  /// Line size of the level software prefetches fill — the line the
  /// planner schedules against (compile-relevant).
  unsigned swFillLineBytes() const {
    return Levels[SwFillLevel].Geometry.LineBytes;
  }
  /// The kind actually in effect (None when the facet switch is off).
  HwPrefetchKind effectiveHwPrefetch() const {
    return HwPrefetchEnabled ? HwPrefetch : HwPrefetchKind::None;
  }

  // -- Validation / registry / serialization --------------------------

  /// Empty string when the config is internally consistent; otherwise a
  /// human-readable list of every violated invariant.
  std::string validate() const;

  /// The 2 GHz Intel Pentium 4 of the evaluation.
  static MachineConfig pentium4();
  /// The 1.2 GHz AMD Athlon MP of the evaluation.
  static MachineConfig athlonMP();
  /// A three-level (L1/L2/LLC) machine with walked TLB misses and an
  /// RPT prefetcher — the "modern" end of the evaluation axis.
  static MachineConfig modern3();

  /// Builtin registry lookup. Names match case-insensitively ignoring
  /// spaces/underscores/dashes, so "pentium4", "Pentium 4" and
  /// "PENTIUM_4" all resolve. nullopt for unknown names.
  static std::optional<MachineConfig> byName(const std::string &Name);
  /// Canonical names byName() accepts, for diagnostics.
  static std::vector<std::string> knownNames();

  /// Parses one machine file (schema: DESIGN.md, "Machine models").
  /// Returns nullopt and sets \p Error on unreadable files, malformed
  /// JSON, unknown enum strings, or validate() failures.
  static std::optional<MachineConfig> fromFile(const std::string &Path,
                                               std::string *Error = nullptr);
  /// fromFile() minus the filesystem: parses the JSON text directly.
  static std::optional<MachineConfig>
  fromJsonText(const std::string &Text, std::string *Error = nullptr);

  /// Serializes the config in the machine-file schema; fromJsonText() of
  /// the result reproduces the config exactly (round-trip tested).
  std::string toJsonText() const;
};

} // namespace sim
} // namespace spf

#endif // SPF_SIM_MACHINECONFIG_H
