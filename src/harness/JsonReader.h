//===- harness/JsonReader.h - Minimal JSON DOM parser -----------*- C++ -*-===//
///
/// \file
/// A small recursive-descent JSON parser for the harness's own wire and
/// journal formats (worker result records, journal lines). It parses
/// exactly what harness/JsonWriter emits plus standard JSON escapes.
///
/// Numbers keep full 64-bit integer precision: a value that lexes as a
/// non-negative integer is stored as uint64 alongside the double, so
/// cycle/instruction counters survive a round trip bit-for-bit (a
/// double-only DOM would corrupt anything above 2^53).
///
//===----------------------------------------------------------------------===//

#ifndef SPF_HARNESS_JSONREADER_H
#define SPF_HARNESS_JSONREADER_H

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace spf {
namespace harness {

class JsonValue {
public:
  enum class Kind { Null, Bool, Number, String, Array, Object };

  Kind kind() const { return K; }
  bool isNull() const { return K == Kind::Null; }

  bool boolean() const { return B; }
  double number() const { return Num; }
  /// Full-precision integer value; only meaningful when the token lexed
  /// as a non-negative integer (isUnsigned()).
  uint64_t u64() const { return U64; }
  bool isUnsigned() const { return IsUnsigned; }
  const std::string &str() const { return Str; }
  const std::vector<JsonValue> &array() const { return Arr; }

  /// Object member by key, or null when absent (missing fields read as
  /// zero-valued defaults, which keeps the formats forward-compatible).
  const JsonValue &get(const std::string &Key) const;
  bool has(const std::string &Key) const { return Obj.count(Key) != 0; }
  /// All object members, sorted by key.
  const std::map<std::string, JsonValue> &objectMembers() const { return Obj; }

  // Typed accessors with defaults for absent/mismatched members.
  uint64_t getU64(const std::string &Key, uint64_t Default = 0) const;
  int64_t getI64(const std::string &Key, int64_t Default = 0) const;
  double getDouble(const std::string &Key, double Default = 0.0) const;
  bool getBool(const std::string &Key, bool Default = false) const;
  std::string getString(const std::string &Key,
                        const std::string &Default = "") const;

  /// Parses \p Text as one JSON document (trailing whitespace allowed,
  /// trailing garbage rejected). Returns nullopt-like null pointer and
  /// sets \p Error on malformed input.
  static std::unique_ptr<JsonValue> parse(const std::string &Text,
                                          std::string *Error = nullptr);

private:
  friend class JsonParser;

  Kind K = Kind::Null;
  bool B = false;
  double Num = 0.0;
  uint64_t U64 = 0;
  bool IsUnsigned = false;
  std::string Str;
  std::vector<JsonValue> Arr;
  std::map<std::string, JsonValue> Obj;
};

} // namespace harness
} // namespace spf

#endif // SPF_HARNESS_JSONREADER_H
