//===- harness/JsonWriter.h - Minimal JSON emission -------------*- C++ -*-===//
///
/// \file
/// A tiny streaming JSON writer for the harness's machine-readable
/// reports. Emits objects/arrays in insertion order with deterministic
/// number formatting, so reports from identical runs are byte-identical.
/// Not a general-purpose serializer: just what `bench/sweep` needs.
///
//===----------------------------------------------------------------------===//

#ifndef SPF_HARNESS_JSONWRITER_H
#define SPF_HARNESS_JSONWRITER_H

#include <cstdint>
#include <cstdio>
#include <ostream>
#include <string>
#include <vector>

namespace spf {
namespace harness {

/// Streaming JSON writer. Usage:
/// \code
///   JsonWriter J(OS);
///   J.beginObject();
///   J.key("jobs").value(uint64_t(8));
///   J.key("cells").beginArray();
///   ...
///   J.endArray();
///   J.endObject();
/// \endcode
class JsonWriter {
public:
  explicit JsonWriter(std::ostream &OS) : OS(OS) {}

  JsonWriter &beginObject() {
    separate();
    OS << '{';
    Stack.push_back(true);
    return *this;
  }

  JsonWriter &endObject() {
    Stack.pop_back();
    OS << '}';
    return *this;
  }

  JsonWriter &beginArray() {
    separate();
    OS << '[';
    Stack.push_back(true);
    return *this;
  }

  JsonWriter &endArray() {
    Stack.pop_back();
    OS << ']';
    return *this;
  }

  JsonWriter &key(const std::string &K) {
    separate();
    writeString(K);
    OS << ':';
    AfterKey = true;
    return *this;
  }

  JsonWriter &value(const std::string &V) {
    separate();
    writeString(V);
    return *this;
  }

  JsonWriter &value(const char *V) { return value(std::string(V)); }

  JsonWriter &value(uint64_t V) {
    separate();
    OS << V;
    return *this;
  }

  JsonWriter &value(int64_t V) {
    separate();
    OS << V;
    return *this;
  }

  JsonWriter &value(unsigned V) { return value(static_cast<uint64_t>(V)); }

  JsonWriter &value(bool V) {
    separate();
    OS << (V ? "true" : "false");
    return *this;
  }

  JsonWriter &value(double V) {
    separate();
    // Fixed round-trippable formatting, independent of stream state.
    char Buf[64];
    std::snprintf(Buf, sizeof(Buf), "%.17g", V);
    OS << Buf;
    return *this;
  }

private:
  /// Emits the comma between siblings; a value directly after a key is
  /// never preceded by one.
  void separate() {
    if (AfterKey) {
      AfterKey = false;
      return;
    }
    if (!Stack.empty()) {
      if (!Stack.back())
        OS << ',';
      Stack.back() = false;
    }
  }

  void writeString(const std::string &S) {
    OS << '"';
    for (char C : S) {
      switch (C) {
      case '"':
        OS << "\\\"";
        break;
      case '\\':
        OS << "\\\\";
        break;
      case '\n':
        OS << "\\n";
        break;
      case '\t':
        OS << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(C) < 0x20) {
          char Buf[8];
          std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
          OS << Buf;
        } else {
          OS << C;
        }
      }
    }
    OS << '"';
  }

  std::ostream &OS;
  /// One entry per open container: true while it is still empty.
  std::vector<bool> Stack;
  bool AfterKey = false;
};

} // namespace harness
} // namespace spf

#endif // SPF_HARNESS_JSONWRITER_H
