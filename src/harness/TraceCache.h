//===- harness/TraceCache.h - Record-once/replay-many trace store -*- C++ -*-===//
///
/// \file
/// A thread-safe LRU cache of recorded access traces keyed by execution
/// signature (workloads::executionSignature). Each entry pairs the
/// encoded trace with the execution-side result of the run that recorded
/// it (retired instructions, return value, JIT stats — everything the
/// signature determines); replaying the trace through a machine's
/// MemorySystem reconstitutes the full per-cell result without
/// re-interpreting the workload.
///
/// The in-memory footprint is bounded by a byte budget (default from
/// SPF_TRACE_MB); least-recently-used entries are evicted first. With a
/// spill directory configured, every accepted recording is written
/// through to disk and misses check the directory before giving up, so
/// evicted entries stay replayable and repeat sweeps replay across
/// process boundaries.
///
/// The spill directory itself is bounded by a second byte budget
/// (SPF_TRACE_DIR_MB; 0 = unlimited): published spill files are tracked
/// LRU and the least-recently-replayed files are unlinked when the
/// directory would exceed the budget, so a week-long sweep cannot fill
/// the disk. Opening a spill directory also sweeps out stale `*.tmp.<pid>`
/// files left by crashed writers (a live sibling's tmp file is spared by
/// a pid liveness check). Accounting is per-process and approximate when
/// several supervised workers share one directory — a file evicted by a
/// sibling reads back as a clean miss.
///
//===----------------------------------------------------------------------===//

#ifndef SPF_HARNESS_TRACECACHE_H
#define SPF_HARNESS_TRACECACHE_H

#include "trace/TraceBuffer.h"
#include "workloads/Runner.h"

#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

namespace spf {
namespace harness {

/// Cache effectiveness counters (monotonic; snapshot via stats()).
struct TraceCacheStats {
  uint64_t Hits = 0;       ///< Lookups served (memory or spill).
  uint64_t Misses = 0;     ///< Lookups that found nothing.
  uint64_t Inserts = 0;    ///< Entries accepted into memory.
  uint64_t Evictions = 0;  ///< Entries pushed out by the byte budget.
  uint64_t Overflows = 0;  ///< Recordings discarded (over byte cap).
  uint64_t SpillStores = 0;///< Entries written to the spill directory.
  uint64_t SpillLoads = 0; ///< Hits served from the spill directory.
  /// Spill files that failed to decode (truncated, bit-flipped, stale
  /// version, checksum mismatch). Each is unlinked and treated as a
  /// clean miss, so the cell re-records.
  uint64_t SpillDecodeErrors = 0;
  /// Spill publishes that failed (tmp write or atomic rename); the tmp
  /// file is unlinked, the entry just isn't on disk.
  uint64_t SpillPublishErrors = 0;
  /// Spill files unlinked to keep the directory inside its byte budget
  /// (SPF_TRACE_DIR_MB), plus recordings skipped because they alone
  /// exceed the whole budget. Evicted signatures re-record on next use.
  uint64_t SpillEvictions = 0;
  /// Stale `*.tmp.<pid>` files (dead or unparsable pid) removed when the
  /// spill directory was opened — debris from crashed writers.
  uint64_t StaleTmpRemoved = 0;
};

class TraceCache {
public:
  /// One cached recording. ExecSide carries the execution-side result of
  /// the run that recorded Buf (its machine-specific Mem/Sites/cycles
  /// fields are dead weight; replayTrace overwrites them).
  struct Entry {
    trace::TraceBuffer Buf;
    workloads::RunResult ExecSide;
  };

  /// \p BudgetBytes bounds the in-memory encoded-trace bytes (0 disables
  /// caching entirely); \p SpillDir, when non-empty, receives evicted and
  /// oversized entries as files. \p UseMmap selects how spill files are
  /// read back: mmap'd MAP_SHARED and replayed zero-copy (the default —
  /// forked workers share one page-cache copy), or copied into the heap
  /// (the SPF_TRACE_MMAP=0 fallback). \p SpillBudgetBytes bounds the
  /// spill directory's total bytes (0 = unlimited).
  explicit TraceCache(size_t BudgetBytes, std::string SpillDir = "",
                      bool UseMmap = mmapFromEnv(),
                      size_t SpillBudgetBytes = spillBudgetFromEnv());

  /// Returns the entry recorded under \p Sig, refreshing its LRU
  /// position, or null. Checks the spill directory on a memory miss.
  /// The returned entry is immutable and safe to use while other threads
  /// insert or evict.
  std::shared_ptr<const Entry> lookup(const std::string &Sig);

  /// Caches \p Buf (finished, not overflowed) and its execution-side
  /// result under \p Sig, evicting LRU entries to fit the budget. An
  /// entry larger than the whole budget is only spilled, never held.
  void insert(const std::string &Sig, trace::TraceBuffer Buf,
              workloads::RunResult ExecSide);

  /// Records that a recording for \p Workload was discarded over-cap.
  void noteOverflow(const std::string &Workload);

  /// Pre-size hint for the next recording of \p Workload: the encoded
  /// event count of the workload's most recent trace (any signature —
  /// algorithms change prefetch events, not the order of magnitude).
  /// 0 when the workload has not been recorded yet.
  uint64_t reservedEvents(const std::string &Workload) const;

  TraceCacheStats stats() const;
  size_t bytesInUse() const;
  size_t budgetBytes() const { return Budget; }

  /// In-memory byte budget from SPF_TRACE_MB (megabytes; unset or
  /// unparsable = 256 MB, 0 = disable caching).
  static size_t budgetFromEnv();

  /// Spill-directory byte budget from SPF_TRACE_DIR_MB (megabytes;
  /// unset = 0 = unlimited).
  static size_t spillBudgetFromEnv();

  /// Whether spill files are read back via mmap (SPF_TRACE_MMAP; unset
  /// or nonzero = mmap, 0 = heap-copy fallback).
  static bool mmapFromEnv();

private:
  struct Slot {
    std::string Sig;
    std::shared_ptr<const Entry> E;
    size_t Bytes = 0;
  };

  /// One published spill file this process knows about.
  struct SpillFile {
    std::string Path;
    uint64_t Bytes = 0;
  };

  void evictToFitLocked(size_t Incoming);
  void spillLocked(const Slot &S);
  std::shared_ptr<const Entry> loadSpilled(const std::string &Sig);
  std::string spillPathFor(const std::string &Sig) const;
  void noteSpillDecodeError(const std::string &Path);
  /// Removes crashed writers' stale tmp files and seeds the spill-file
  /// LRU from the directory's existing files (oldest mtime = coldest).
  void openSpillDirLocked();
  /// Accounts a just-published (or re-published) spill file at MRU.
  void noteSpillPublishedLocked(const std::string &Path, uint64_t Bytes);
  /// Unlinks cold spill files until Incoming more bytes fit the budget.
  void evictSpillToFitLocked(uint64_t Incoming);
  /// Refreshes a spill file's LRU position after a successful replay.
  void touchSpillLocked(const std::string &Path);

  const size_t Budget;
  const std::string SpillDir;
  const bool UseMmap;
  const size_t SpillBudget;

  mutable std::mutex Mu;
  std::list<Slot> Lru; // Front = most recently used.
  std::unordered_map<std::string, std::list<Slot>::iterator> Index;
  std::unordered_map<std::string, uint64_t> EventsByWorkload;
  size_t Bytes = 0;
  std::list<SpillFile> SpillLru; // Front = most recently used.
  std::unordered_map<std::string, std::list<SpillFile>::iterator> SpillIndex;
  uint64_t SpillBytes = 0;
  TraceCacheStats Stats;
};

} // namespace harness
} // namespace spf

#endif // SPF_HARNESS_TRACECACHE_H
