//===- harness/Experiment.cpp ---------------------------------------------===//

#include "harness/Experiment.h"

#include "harness/Journal.h"
#include "harness/JsonReader.h"
#include "harness/JsonWriter.h"
#include "harness/Subprocess.h"
#include "harness/Supervisor.h"
#include "harness/ThreadPool.h"
#include "obs/Obs.h"
#include "obs/StatRegistry.h"
#include "obs/Tracer.h"
#include "support/BuildInfo.h"
#include "support/Env.h"
#include "support/FaultInjection.h"
#include "support/Shutdown.h"
#include "support/Status.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <mutex>
#include <optional>
#include <ostream>
#include <sstream>
#include <thread>

using namespace spf;
using namespace spf::harness;

const char *harness::prefetchSourcesName(PrefetchSources S) {
  switch (S) {
  case PrefetchSources::Unset:
    return "";
  case PrefetchSources::None:
    return "none";
  case PrefetchSources::SwOnly:
    return "sw";
  case PrefetchSources::HwOnly:
    return "hw";
  case PrefetchSources::Combined:
    return "combined";
  }
  return "";
}

std::optional<PrefetchSources>
harness::parsePrefetchSources(const std::string &S) {
  if (S == "none")
    return PrefetchSources::None;
  if (S == "sw")
    return PrefetchSources::SwOnly;
  if (S == "hw")
    return PrefetchSources::HwOnly;
  if (S == "combined")
    return PrefetchSources::Combined;
  return std::nullopt;
}

unsigned ExperimentPlan::add(ExperimentCell Cell) {
  Cells.push_back(std::move(Cell));
  return static_cast<unsigned>(Cells.size() - 1);
}

std::vector<unsigned> ExperimentPlan::addSweep(
    const std::vector<const workloads::WorkloadSpec *> &Specs,
    const std::vector<workloads::Algorithm> &Algos,
    const std::vector<sim::MachineConfig> &Machines,
    const workloads::WorkloadConfig &Config, const std::string &Group,
    bool CheckReturnValues) {
  std::vector<unsigned> Added;
  for (const sim::MachineConfig &M : Machines) {
    for (const workloads::WorkloadSpec *Spec : Specs) {
      std::optional<unsigned> BaselineIdx;
      std::vector<unsigned> SpecCells;
      for (workloads::Algorithm A : Algos) {
        ExperimentCell C;
        C.Group = Group;
        C.Spec = Spec;
        C.Opt.Machine = M;
        C.Opt.Algo = A;
        C.Opt.Config = Config;
        unsigned Idx = add(std::move(C));
        if (A == workloads::Algorithm::Baseline)
          BaselineIdx = Idx;
        SpecCells.push_back(Idx);
        Added.push_back(Idx);
      }
      if (CheckReturnValues && BaselineIdx)
        for (unsigned Idx : SpecCells)
          if (Idx != *BaselineIdx)
            Cells[Idx].CheckAgainst = BaselineIdx;
    }
  }
  return Added;
}

std::vector<unsigned> ExperimentPlan::addModeSweep(
    const std::vector<const workloads::WorkloadSpec *> &Specs,
    const std::vector<PrefetchSources> &Modes,
    const std::vector<sim::MachineConfig> &Machines,
    const workloads::WorkloadConfig &Config, const std::string &Group,
    bool CheckReturnValues) {
  std::vector<unsigned> Added;
  for (const sim::MachineConfig &M : Machines) {
    for (const workloads::WorkloadSpec *Spec : Specs) {
      std::optional<unsigned> NoneIdx;
      std::vector<unsigned> SpecCells;
      for (PrefetchSources Mode : Modes) {
        if (Mode == PrefetchSources::Unset)
          continue; // Not a runnable mode: only the classic sweep is Unset.
        ExperimentCell C;
        C.Group = Group;
        C.Spec = Spec;
        C.Opt.Machine = M;
        // The mode decides both halves: whether the compile inserts
        // software prefetches, and whether the machine's hardware
        // prefetcher (of whatever configured kind) is armed.
        C.Opt.Machine.HwPrefetchEnabled = Mode == PrefetchSources::HwOnly ||
                                          Mode == PrefetchSources::Combined;
        C.Opt.Algo = (Mode == PrefetchSources::SwOnly ||
                      Mode == PrefetchSources::Combined)
                         ? workloads::Algorithm::InterIntra
                         : workloads::Algorithm::Baseline;
        C.Opt.Config = Config;
        C.Mode = Mode;
        unsigned Idx = add(std::move(C));
        if (Mode == PrefetchSources::None)
          NoneIdx = Idx;
        SpecCells.push_back(Idx);
        Added.push_back(Idx);
      }
      if (CheckReturnValues && NoneIdx)
        for (unsigned Idx : SpecCells)
          if (Idx != *NoneIdx)
            Cells[Idx].CheckAgainst = NoneIdx;
    }
  }
  return Added;
}

namespace {

/// Exponential backoff before retry \p Attempt of cell \p Cell: base
/// 50ms doubling per attempt, capped at 1s, plus deterministic seeded
/// jitter so a burst of colliding retries de-synchronizes the same way
/// every run. SPF_NO_BACKOFF (set by ctest) disables the sleep entirely;
/// the fault schedule is unaffected either way — backoff only shapes
/// wall clock, never which attempt streams fire.
void backoffBeforeRetry(unsigned Cell, unsigned Attempt) {
  static const bool Disabled = support::envFlagSet("SPF_NO_BACKOFF");
  if (Disabled || Attempt == 0)
    return;
  uint64_t BaseMs = 50ull << (Attempt - 1);
  if (BaseMs > 1000)
    BaseMs = 1000;
  SplitMix64 Rng(0xb0ff5eedULL ^ ((uint64_t(Cell) << 8) | Attempt));
  uint64_t Ms = BaseMs + Rng.nextBelow(BaseMs / 2 + 1);
  std::this_thread::sleep_for(std::chrono::milliseconds(Ms));
}

/// "workload [ALGO, machine]" — the tag used in Failures and Quarantine.
/// Mode-sweep cells append the prefetch-source facet, which is what
/// distinguishes e.g. the None cell from the HwOnly cell (same workload,
/// same algorithm, same machine name).
std::string cellTag(const ExperimentCell &C) {
  std::string Tag = C.Spec->Name + " [" +
                    workloads::algorithmName(C.Opt.Algo) + ", " +
                    C.Opt.Machine.Name;
  if (C.Mode != PrefetchSources::Unset)
    Tag += std::string(", mode=") + prefetchSourcesName(C.Mode);
  // Adaptive-run facets: an adaptation sweep runs the same workload /
  // algorithm / machine several times, differing only in these.
  if (C.Opt.Epochs > 1)
    Tag += ", epochs=" + std::to_string(C.Opt.Epochs);
  if (C.Opt.GcVariant != vm::GcVariant::SlidingCompact)
    Tag += std::string(", gc=") + vm::gcVariantName(C.Opt.GcVariant);
  if (C.Opt.PhaseChange)
    Tag += ", phase";
  if (C.Opt.Governor)
    Tag += ", governor";
  return Tag + "]";
}

/// FNV-1a over the per-site stats, as a 16-hex-digit string. A compact
/// per-cell fingerprint of the full load-site attribution: two runs with
/// equal hashes had bit-identical per-site miss profiles, which is how
/// the CI replay-vs-direct diff covers site stats without emitting every
/// site as a JSON row.
std::string siteStatsHash(const std::vector<sim::SiteStats> &Sites) {
  uint64_t H = 1469598103934665603ull;
  auto Mix = [&H](uint64_t V) {
    for (unsigned B = 0; B < 8; ++B) {
      H ^= (V >> (B * 8)) & 0xff;
      H *= 1099511628211ull;
    }
  };
  for (const sim::SiteStats &S : Sites) {
    Mix(S.Loads);
    Mix(S.L1Misses);
    Mix(S.L2Misses);
    Mix(S.DtlbMisses);
  }
  char Buf[24];
  std::snprintf(Buf, sizeof(Buf), "%016llx",
                static_cast<unsigned long long>(H));
  return Buf;
}

/// Top-K load sites by stall-cycle attribution, descending (ties broken
/// by site id, so the ordering — and the report bytes — are
/// deterministic). Feeds the report's top_sites key; RetireLocked
/// precomputes it before streaming aggregation frees Run.Sites, so
/// streamed and in-memory sweeps emit identical tables.
constexpr size_t TopSitesK = 8;
std::vector<std::pair<uint32_t, sim::SiteStats>>
topStallSites(const std::vector<sim::SiteStats> &Sites) {
  std::vector<std::pair<uint32_t, sim::SiteStats>> Out;
  for (uint32_t I = 0; I != Sites.size(); ++I)
    if (Sites[I].StallCycles)
      Out.emplace_back(I, Sites[I]);
  std::sort(Out.begin(), Out.end(), [](const auto &A, const auto &B) {
    if (A.second.StallCycles != B.second.StallCycles)
      return A.second.StallCycles > B.second.StallCycles;
    return A.first < B.first;
  });
  if (Out.size() > TopSitesK)
    Out.resize(TopSitesK);
  return Out;
}

} // namespace

ExperimentResult harness::runPlan(const ExperimentPlan &Plan,
                                  unsigned Jobs) {
  return runPlan(Plan, Jobs, RunPlanOptions());
}

ExperimentResult harness::runPlan(const ExperimentPlan &Plan, unsigned Jobs,
                                  const TraceOptions &Trace) {
  RunPlanOptions Opts;
  Opts.Trace = Trace;
  return runPlan(Plan, Jobs, Opts);
}

ExperimentResult harness::runPlan(const ExperimentPlan &Plan, unsigned Jobs,
                                  const RunPlanOptions &Opts) {
  const TraceOptions &Trace = Opts.Trace;
  const bool Isolated = Opts.Isolate.Enabled;
  if (Jobs == 0)
    Jobs = defaultJobs();

  ExperimentResult Result;
  Result.Cells.resize(Plan.size());
  Result.Isolated = Isolated;

  obs::Span PlanSpan("run-plan", "harness");
  PlanSpan.noteU64("cells", Plan.size());
  PlanSpan.noteU64("jobs", Jobs);
  PlanSpan.note("isolated", Isolated ? "true" : "false");

  // Durable journal: load the previous run's records first when
  // resuming (refusing on a plan mismatch), then open for appending.
  std::optional<RunJournal> Journal;
  std::vector<std::optional<CellResult>> Grafted(Plan.size());
  std::atomic<unsigned> Appended{0};
  if (!Opts.Journal.Path.empty()) {
    Result.JournalPath = Opts.Journal.Path;
    Journal.emplace(Opts.Journal.Path);
    std::string Error;
    if (Opts.Journal.Resume && !Journal->load(Plan, Grafted, &Error)) {
      Result.Failures.push_back("journal: " + Error);
      return Result;
    }
    if (!Journal->openForAppend(Plan, /*Fresh=*/!Opts.Journal.Resume,
                                &Error)) {
      Result.Failures.push_back("journal: " + Error);
      return Result;
    }
    for (const std::optional<CellResult> &G : Grafted)
      if (G)
        ++Result.JournalGrafted;
  }

  // Shared-state audit: the workload registry is a function-local static
  // whose one-time construction builds every spec. The init is
  // thread-safe (C++11 magic statics), but force it here so workers never
  // contend on first use and spec pointers are stable before the sweep.
  (void)workloads::allWorkloads();

  // Chaos configuration is read once; every cell derives its own injector
  // stream from (plan index, attempt), so the fault schedule — and hence
  // every result — is independent of worker count and task interleaving.
  const support::FaultConfig Faults = support::FaultConfig::fromEnv();
  const double TimeoutSec = cellTimeoutSeconds();
  constexpr unsigned MaxTransientAttempts = 3;

  // Resource governor: every stop source (shutdown signal, global sweep
  // deadline, external stop) latches exactly once with a reason. After
  // the latch, no new cell or retry attempt is admitted; in-flight
  // supervised workers drain against the grace window and are then
  // group-killed; in-process cells run to completion (they cannot be
  // safely interrupted mid-simulation). Cells that never ran are marked
  // Skipped — quarantined but not failed, and never journaled, so a
  // --resume of the same journal finishes the sweep.
  const GovernorOptions &Gov = Opts.Governor;
  const auto SweepStart = std::chrono::steady_clock::now();
  std::atomic<bool> StopLatch{false};
  std::mutex StopMu;
  std::string StopReason;
  auto CheckStop = [&]() -> bool {
    if (StopLatch.load(std::memory_order_relaxed))
      return true;
    std::string Reason;
    if (Gov.Graceful && support::shutdownRequested())
      Reason = "signal " + std::to_string(support::shutdownSignal());
    else if (Gov.SweepDeadlineSec > 0 &&
             std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                           SweepStart)
                     .count() >= Gov.SweepDeadlineSec)
      Reason = "sweep deadline";
    else if (Gov.ExternalStop && Gov.ExternalStop())
      Reason = "external stop";
    else
      return false;
    std::lock_guard<std::mutex> Lock(StopMu);
    if (!StopLatch.load(std::memory_order_relaxed)) {
      StopReason = Reason;
      obs::Tracer::instance().instant("sweep-stop", {{"reason", Reason}});
      StopLatch.store(true, std::memory_order_relaxed);
    }
    return true;
  };
  const bool Governed =
      Gov.Graceful || Gov.SweepDeadlineSec > 0 || Gov.ExternalStop != nullptr;
  const double GraceSec = support::shutdownGraceSeconds();

  // Record-once / replay-many: active only when requested, budgeted, and
  // chaos-free. Fault injection must keep exercising the real interpret
  // path (and can corrupt a recording mid-stream), so any enabled
  // *execution* fault site turns reuse off for the whole plan — the PR 2
  // quarantine machinery below sees exactly the behavior it always did.
  // Disk-only chaos (disk-write/disk-sync) deliberately keeps reuse on:
  // those sites exist to exercise the spill/journal persistence paths,
  // and never perturb cell statistics. In isolated mode the supervisor
  // holds no cache at all: workers run their own cache front over the
  // shared --trace-dir spill directory (see harness/Supervisor.h), which
  // is the only cross-process channel.
  const bool UseTrace = !Isolated && Trace.Enabled && Trace.BudgetBytes > 0 &&
                        !Faults.anyExecutionSiteEnabled();
  std::optional<TraceCache> Cache;
  if (UseTrace)
    Cache.emplace(Trace.BudgetBytes, Trace.SpillDir);

  auto RunCell = [&](unsigned I) {
    const ExperimentCell &C = Plan.cells()[I];
    CellResult &Cell = Result.Cells[I];
    workloads::RunOptions Opt = C.Opt;
    Opt.TimeoutSeconds = TimeoutSec;

    obs::Span CellSpan("cell", "harness");
    CellSpan.noteU64("index", I);
    CellSpan.note("tag", cellTag(C));

    // Cells whose signature is cached replay the recorded access stream
    // instead of re-interpreting; stats are bit-identical either way, so
    // which cell records and which replays (a scheduling accident under
    // Jobs > 1) never shows up in the results.
    const std::string Sig =
        UseTrace ? workloads::executionSignature(*C.Spec, Opt)
                 : std::string();
    if (!Sig.empty()) {
      if (auto E = Cache->lookup(Sig)) {
        ++Cell.Attempts;
        obs::Tracer::instance().instant("trace-hit", {{"tag", cellTag(C)}});
        Cell.Run = workloads::replayTrace(E->ExecSide, E->Buf, Opt.Machine,
                                          Opt.TimelineEvery);
        Cell.Ran = true;
        return;
      }
    }

    for (unsigned Attempt = 0; Attempt < MaxTransientAttempts; ++Attempt) {
      if (Governed && CheckStop()) {
        // Interrupted between attempts: leave the cell un-run (Skipped),
        // never half-retried — --resume gives it its full attempt budget.
        Cell.Skipped = true;
        Cell.Error = "sweep interrupted";
        return;
      }
      backoffBeforeRetry(I, Attempt);
      ++Cell.Attempts;
      if (Attempt > 0)
        obs::Tracer::instance().instant(
            "retry", {{"tag", cellTag(C)},
                      {"attempt", std::to_string(Attempt + 1)}});
      // Each call builds a private Heap/Module, compiles with a private
      // CompileManager, and simulates on a private MemorySystem: cells
      // share nothing mutable, so any schedule yields identical stats.
      support::FaultInjector Injector(
          Faults, (uint64_t(I) << 8) | uint64_t(Attempt));
      support::FaultScope Scope(Injector);
      try {
        if (SPF_FAULT_POINT(support::FaultSite::CellExec))
          throw support::TransientFault("injected cell fault");
        if (!Sig.empty()) {
          // Tee the access stream while simulating live; the recording
          // never perturbs the run, and an over-cap trace is simply
          // dropped (the run's own results stand either way).
          trace::TraceBuffer Buf;
          Buf.setByteCap(Trace.BudgetBytes);
          Opt.Record = &Buf;
          Opt.ReserveEvents = Cache->reservedEvents(C.Spec->Name);
          Cell.Run = workloads::runWorkload(*C.Spec, Opt);
          Opt.Record = nullptr;
          if (Buf.overflowed())
            Cache->noteOverflow(C.Spec->Name);
          else
            Cache->insert(Sig, std::move(Buf), Cell.Run);
        } else {
          Cell.Run = workloads::runWorkload(*C.Spec, Opt);
        }
        Cell.Ran = true;
        Cell.Failed = Cell.TimedOut = Cell.Transient = false;
        Cell.Error.clear();
        return;
      } catch (const support::TransientFault &E) {
        // Expected under chaos: re-roll with the next attempt's stream.
        Cell.Transient = true;
        Cell.Error = E.what();
      } catch (const support::CellTimeout &E) {
        Cell.TimedOut = true;
        Cell.Error = E.what();
        return; // Retrying a deterministic simulation cannot get faster.
      } catch (const std::exception &E) {
        Cell.Failed = true;
        Cell.Error = E.what();
        return;
      }
    }
  };

  // Supervised execution: one freshly exec'd worker per attempt, hard
  // rlimit caps in the child, a wall-clock deadline + SIGKILL here. The
  // worker mirrors the in-process attempt semantics (same fault-stream
  // salt, same exception classification), so per-cell statistics are
  // bit-identical between the two modes; the supervisor only has to
  // classify deaths the worker could not report itself.
  auto RunCellSupervised = [&](unsigned I) {
    CellResult &Cell = Result.Cells[I];
    // The hard deadline leaves the cooperative watchdog room to fire
    // first and deliver a clean "timeout" record; only a worker that
    // cannot even reach a checkpoint is killed from outside.
    const double Deadline = TimeoutSec > 0 ? TimeoutSec * 2 + 10 : 0.0;
    support::WorkerLimits Limits;
    Limits.MemBytes = Opts.Isolate.CellMemMb << 20;
    Limits.CpuSec =
        TimeoutSec > 0 ? static_cast<uint64_t>(TimeoutSec * 2) + 5 : 0;

    // Shutdown hookup: the worker wait polls the governor's stop latch,
    // drains the worker for the grace window, then group-SIGKILLs it.
    StopPolicy SP;
    SP.GraceSec = GraceSec;
    if (Governed)
      SP.Stop = [&CheckStop] { return CheckStop(); };

    for (unsigned Attempt = 0; Attempt < MaxTransientAttempts; ++Attempt) {
      if (Governed && CheckStop()) {
        Cell.Skipped = true;
        Cell.Error = "sweep interrupted";
        return;
      }
      backoffBeforeRetry(I, Attempt);
      ++Cell.Attempts;
      obs::Span WorkerSpan("worker-attempt", "harness");
      WorkerSpan.noteU64("cell", I);
      WorkerSpan.noteU64("attempt", Attempt + 1);
      SpawnOutcome Out =
          runWorkerProcess(Opts.Isolate.WorkerCommand(I, Attempt), Limits,
                           Deadline, Governed ? &SP : nullptr);
      WorkerSpan.end();
      if (Out.SpawnFailed) {
        Cell.Failed = true;
        Cell.Error = Out.SpawnError;
        return;
      }
      if (Out.ShutdownKilled) {
        // The sweep is ending and the worker did not drain in time: the
        // cell never produced a result through no fault of its own.
        Cell.Skipped = true;
        Cell.Error = "sweep interrupted";
        return;
      }

      // A clean worker always ends its pipe output with one record
      // line; anything else is a death to classify from the status.
      CellResult Rec;
      bool HaveRec = false;
      size_t Pos = Out.Output.find("{\"worker\":\"spf-cell-v1\"");
      if (Pos != std::string::npos) {
        size_t End = Out.Output.find('\n', Pos);
        std::string Line = Out.Output.substr(
            Pos, End == std::string::npos ? std::string::npos : End - Pos);
        if (std::unique_ptr<JsonValue> V = JsonValue::parse(Line)) {
          HaveRec = parseCellRecord(V->get("record"), Rec);
          // Spans buffered in the worker cross the fork boundary on the
          // record line; graft them (with the worker's own pid) so the
          // merged trace shows one lane per worker process.
          if (obs::Tracer::instance().active() && V->has("spans"))
            obs::Tracer::instance().import(
                obs::Tracer::parseEventsJson(V->get("spans")));
        }
      }

      if (Out.DeadlineKilled) {
        // Even the cooperative watchdog never ran: the worker was wedged
        // somewhere no checkpoint reaches. No retry — a deterministic
        // simulation will wedge identically.
        Cell.Crashed = true;
        Cell.DeadlineKilled = true;
        Cell.Signal = Out.Signal;
        Cell.ExitStatus = Out.ExitCode;
        Cell.Error = "worker exceeded the supervisor hard deadline";
        return;
      }

      if (HaveRec && Out.ExitCode == 0 && Out.Signal == 0 &&
          (Rec.Ran || Rec.Transient || Rec.TimedOut || Rec.Failed)) {
        // Graft the worker's attempt verdict, preserving the attempt
        // count and the sticky transient flag exactly like the
        // in-process loop does.
        unsigned Attempts = Cell.Attempts;
        bool PrevTransient = Cell.Transient;
        Cell = std::move(Rec);
        Cell.Attempts = Attempts;
        Cell.Transient = Cell.Transient || PrevTransient;
        if (Cell.Ran || Cell.TimedOut || Cell.Failed)
          return;
        continue; // Transient: re-roll with the next attempt's stream.
      }

      // Crashed: fatal signal, nonzero exit, or no parseable record.
      // Retried — an injected crash re-rolls on the next attempt's
      // stream, and a real one at least gets a second chance before the
      // cell is quarantined.
      Cell.Crashed = true;
      Cell.Signal = Out.Signal;
      Cell.ExitStatus = Out.ExitCode;
      if (Out.Signal != 0)
        Cell.Error = "worker killed by signal " + std::to_string(Out.Signal);
      else if (Out.ExitCode != 0)
        Cell.Error = "worker exited with status " +
                     std::to_string(Out.ExitCode);
      else
        Cell.Error = "worker delivered no result record";
    }
  };

  auto Dispatch = [&](unsigned I) {
    if (Grafted[I]) {
      // Journaled by a previous run of this plan: graft, don't re-run.
      // Move + release so a resumed 100k-cell sweep does not hold two
      // copies of every grafted record.
      obs::Tracer::instance().instant(
          "journal-graft", {{"tag", cellTag(Plan.cells()[I])}});
      Result.Cells[I] = std::move(*Grafted[I]);
      Grafted[I].reset();
      return;
    }
    if (Governed && CheckStop()) {
      Result.Cells[I].Skipped = true;
      Result.Cells[I].Error = "sweep interrupted";
      return;
    }
    if (Isolated)
      RunCellSupervised(I);
    else
      RunCell(I);
    if (Journal && Result.Cells[I].Ran) {
      // The journal's disk I/O runs under its own per-cell fault stream
      // (salt disjoint from the attempt salts 0..2) so disk-write /
      // disk-sync chaos reaches the append path without perturbing the
      // cell's own execution.
      support::FaultInjector JournalInjector(Faults,
                                             (uint64_t(I) << 8) | 0x7fu);
      support::FaultScope JournalScope(JournalInjector);
      Journal->append(Plan, I, Result.Cells[I]);
      Appended.fetch_add(1, std::memory_order_relaxed);
    }
  };

  // Streaming aggregation: cells are admitted through a bounded window
  // and retired strictly in plan order; retirement optionally writes the
  // full record to the --cells-out stream, then folds the heavy per-cell
  // payloads into the two scalars the report needs and frees them, so
  // peak resident cells is O(jobs + window), not O(plan).
  const bool Streaming = Opts.Stream.Enabled;
  const unsigned PlanN = static_cast<unsigned>(Plan.size());
  std::mutex StreamMu;
  std::condition_variable StreamCv;
  unsigned NextRetire = 0;
  std::vector<unsigned char> DoneFlags;
  std::ofstream CellsOut;
  bool CellsOutOk = false;
  uint64_t PeakResident = 0;
  uint64_t StreamedCount = 0;
  uint64_t StreamWriteFailures = 0;
  const unsigned Window = std::max(2 * Jobs, 4u);
  if (Streaming) {
    DoneFlags.assign(PlanN, 0);
    if (!Opts.Stream.CellsOutPath.empty()) {
      CellsOut.open(Opts.Stream.CellsOutPath,
                    std::ios::binary | std::ios::trunc);
      if (!CellsOut) {
        Result.Failures.push_back("cells-out: cannot open " +
                                  Opts.Stream.CellsOutPath + " for writing");
        return Result;
      }
      // Header mirrors the journal's, so one reader handles both.
      char HashBuf[24];
      std::snprintf(HashBuf, sizeof(HashBuf), "%016llx",
                    static_cast<unsigned long long>(journalPlanHash(Plan)));
      std::ostringstream OS;
      JsonWriter J(OS);
      J.beginObject();
      J.key("cells_out").value("spf-cells-v1");
      J.key("plan_hash").value(std::string(HashBuf));
      J.key("cells").value(static_cast<uint64_t>(PlanN));
      J.endObject();
      OS << '\n';
      CellsOut << OS.str();
      CellsOutOk = static_cast<bool>(CellsOut);
      if (!CellsOutOk)
        ++StreamWriteFailures;
    }
  }

  // Caller holds StreamMu. Writes the cell's full record to the stream,
  // then folds: per-site stats reduce to (count, hash) — exactly what
  // writeJsonReport emits — and the heavy vectors are freed.
  auto RetireLocked = [&](unsigned I) {
    CellResult &Cell = Result.Cells[I];
    if (CellsOutOk) {
      std::ostringstream OS;
      JsonWriter J(OS);
      J.beginObject();
      J.key("key").value(journalCellKey(Plan, I));
      J.key("cell").value(static_cast<uint64_t>(I));
      J.key("record");
      writeCellRecordJson(J, Cell);
      J.endObject();
      OS << '\n';
      CellsOut << OS.str();
      if (!CellsOut) {
        // ENOSPC/EIO on the stream: stop writing, count the loss, keep
        // the sweep going — the report's folded values are unaffected.
        CellsOutOk = false;
        ++StreamWriteFailures;
      } else {
        ++StreamedCount;
      }
    }
    Cell.FoldedSiteCount = Cell.Run.Sites.size();
    Cell.FoldedSiteHash = siteStatsHash(Cell.Run.Sites);
    if (Plan.cells()[I].Opt.TimelineEvery && Cell.TopSites.empty())
      Cell.TopSites = topStallSites(Cell.Run.Sites);
    Cell.SitesFolded = true;
    std::vector<sim::SiteStats>().swap(Cell.Run.Sites);
    Cell.Run.Decisions.clear();
    Cell.Run.Decisions.shrink_to_fit();
    Cell.Run.Prefetch.Loops.clear();
    Cell.Run.Prefetch.Loops.shrink_to_fit();
  };

  // Admission is deadlock-free for any Jobs: the ThreadPool starts tasks
  // in FIFO submission (= plan) order, so the smallest unfinished index
  // is always running or next to start, and it never waits (I <
  // NextRetire + Window holds when I == NextRetire). Everything the
  // window blocks is a *larger* index on another thread.
  auto DispatchStreamed = [&](unsigned I) {
    if (Streaming) {
      std::unique_lock<std::mutex> Lock(StreamMu);
      StreamCv.wait(Lock, [&] { return I < NextRetire + Window; });
      uint64_t Resident = uint64_t(I) + 1 - NextRetire;
      if (Resident > PeakResident)
        PeakResident = Resident;
    }
    Dispatch(I);
    if (Streaming) {
      std::lock_guard<std::mutex> Lock(StreamMu);
      DoneFlags[I] = 1;
      while (NextRetire < PlanN && DoneFlags[NextRetire])
        RetireLocked(NextRetire++);
      StreamCv.notify_all();
    }
  };

  if (Jobs <= 1 || Plan.size() <= 1) {
    for (unsigned I = 0, E = static_cast<unsigned>(Plan.size()); I != E;
         ++I)
      DispatchStreamed(I);
  } else {
    ThreadPool Pool(Jobs);
    for (unsigned I = 0, E = static_cast<unsigned>(Plan.size()); I != E;
         ++I)
      Pool.async([&DispatchStreamed, I] { DispatchStreamed(I); });
    Pool.wait();
  }
  if (CellsOut.is_open()) {
    CellsOut.flush();
    if (!CellsOut && CellsOutOk)
      ++StreamWriteFailures;
    CellsOut.close();
  }
  Result.CellsStreamed = StreamedCount;
  Result.PeakResidentCells = Streaming ? PeakResident : PlanN;
  Result.JournalAppended = Appended.load();
  if (Journal) {
    // Records that hit the degraded-append path never landed in the
    // file: report what is actually durable.
    Result.JournalDegraded = Journal->degraded();
    Result.JournalAppendFailures = Journal->appendFailures();
    Result.JournalSyncFailures = Journal->syncFailures();
    if (Result.JournalAppended >= Result.JournalAppendFailures)
      Result.JournalAppended -=
          static_cast<unsigned>(Result.JournalAppendFailures);
  }
  Result.Interrupted = StopLatch.load(std::memory_order_relaxed);
  if (Result.Interrupted) {
    std::lock_guard<std::mutex> Lock(StopMu);
    Result.InterruptReason = StopReason;
  }

  // Correctness verdicts and quarantine, in plan order (deterministic
  // regardless of the completion schedule above).
  for (unsigned I = 0, E = static_cast<unsigned>(Plan.size()); I != E;
       ++I) {
    const ExperimentCell &C = Plan.cells()[I];
    const CellResult &Cell = Result.Cells[I];
    std::string Tag = cellTag(C);

    if (!Cell.Ran) {
      // The cell never produced a result. Injected transient faults,
      // contained worker crashes, and interruption skips are the
      // chaos/isolation/governance machinery working as intended —
      // quarantine only; a timeout, a supervisor deadline kill, or a
      // real exception is also a Failure.
      QuarantineRecord Q;
      Q.CellIndex = I;
      Q.Tag = Tag;
      if (Cell.Skipped)
        Q.Kind = "skipped";
      else if (Cell.TimedOut)
        Q.Kind = "timeout";
      else if (Cell.Crashed)
        Q.Kind = "crashed";
      else if (Cell.Transient)
        Q.Kind = "faulted";
      else
        Q.Kind = "error";
      Q.Attempts = Cell.Attempts;
      Q.Signal = Cell.Signal;
      Q.ExitStatus = Cell.ExitStatus;
      Q.Error = Cell.Error;
      Result.Quarantine.push_back(std::move(Q));
      if (Cell.Skipped)
        ++Result.CellsSkipped; // Not a Failure: --resume re-runs it.
      else if (Cell.TimedOut)
        Result.Failures.push_back(Tag + ": timed out (" + Cell.Error + ")");
      else if (Cell.DeadlineKilled)
        Result.Failures.push_back(Tag + ": " + Cell.Error);
      else if (!Cell.Crashed && !Cell.Transient)
        Result.Failures.push_back(Tag + ": failed (" + Cell.Error + ")");
      continue; // No result: nothing to check, nothing to compare.
    }

    if (Cell.Attempts > 1) {
      // Succeeded after transient retries: record it, keep the result.
      QuarantineRecord Q;
      Q.CellIndex = I;
      Q.Tag = Tag;
      Q.Kind = "retried";
      Q.Attempts = Cell.Attempts;
      Q.Error = Cell.Error;
      Result.Quarantine.push_back(std::move(Q));
    }

    const workloads::RunResult &Run = Cell.Run;
    if (!Run.SelfCheckOk)
      Result.Failures.push_back(Tag + ": workload self-check failed");
    if (C.CheckAgainst && Result.Cells[*C.CheckAgainst].Ran &&
        Run.ReturnValue != Result.Cells[*C.CheckAgainst].Run.ReturnValue)
      Result.Failures.push_back(
          Tag + ": computed a different result than its baseline run");
  }

  Result.TraceEnabled = UseTrace;
  if (Cache) {
    Result.Trace = Cache->stats();
    Result.TraceBytesInUse = Cache->bytesInUse();
    Result.TraceBudgetBytes = Cache->budgetBytes();
  }

  // Registry bookkeeping, harvested once per plan after the (possibly
  // parallel) run — deterministic because it only reads the finished
  // per-cell verdicts.
  if (obs::enabled()) {
    obs::StatRegistry &S = obs::stats();
    S.counter("spf_cells_total").inc(Plan.size());
    for (const CellResult &Cell : Result.Cells) {
      S.counter("spf_cell_attempts_total").inc(Cell.Attempts);
      if (Cell.Ran)
        S.counter("spf_cells_ran_total").inc();
      if (Cell.Run.Replayed)
        S.counter("spf_cells_replayed_total").inc();
      if (Cell.Crashed)
        S.counter("spf_cells_crashed_total").inc();
      if (Cell.TimedOut)
        S.counter("spf_cells_timeout_total").inc();
      if (Cell.Skipped)
        S.counter("spf_cells_skipped_total").inc();
    }
    S.counter("spf_cells_quarantined_total").inc(Result.Quarantine.size());
    S.counter("spf_journal_grafts_total").inc(Result.JournalGrafted);
    if (Result.Interrupted)
      S.gauge("spf_sweep_interrupted").set(1);
    if (Streaming) {
      S.counter("spf_stream_cells_total").inc(Result.CellsStreamed);
      S.gauge("spf_stream_peak_resident_cells")
          .set(static_cast<int64_t>(Result.PeakResidentCells));
      if (StreamWriteFailures)
        S.counter("spf_stream_write_failures_total").inc(StreamWriteFailures);
    }
    if (UseTrace) {
      S.counter("spf_trace_hits_total").inc(Result.Trace.Hits);
      S.counter("spf_trace_misses_total").inc(Result.Trace.Misses);
    }
  }
  return Result;
}

void harness::writeJsonReport(std::ostream &OS, const ExperimentPlan &Plan,
                              const ExperimentResult &Result, double Scale,
                              unsigned Jobs) {
  JsonWriter J(OS);
  J.beginObject();
  J.key("schema").value("spf-sweep-v2");
  // Build/run provenance: which binary produced this report, and in
  // which process. Consumers diffing reports across runs must ignore
  // this section (run_id differs by construction).
  J.key("provenance");
  support::writeProvenanceJson(J);
  J.key("scale").value(Scale);
  J.key("jobs").value(static_cast<uint64_t>(Jobs));
  J.key("ok").value(Result.ok());
  // Interruption verdict: a partial report from a graceful shutdown or
  // sweep-deadline stop is valid JSON with every key below — consumers
  // check `interrupted` (and benches exit with the distinct code 3).
  J.key("interrupted").value(Result.Interrupted);
  J.key("interrupt_reason").value(Result.InterruptReason);
  J.key("cells_skipped").value(static_cast<uint64_t>(Result.CellsSkipped));

  J.key("cells").beginArray();
  for (unsigned I = 0, E = static_cast<unsigned>(Plan.size()); I != E;
       ++I) {
    const ExperimentCell &C = Plan.cells()[I];
    const CellResult &Cell = Result.Cells[I];
    const workloads::RunResult &R = Cell.Run;
    J.beginObject();
    J.key("group").value(C.Group);
    J.key("workload").value(C.Spec->Name);
    J.key("machine").value(C.Opt.Machine.Name);
    J.key("algorithm").value(workloads::algorithmName(C.Opt.Algo));
    // Prefetch-source facet (mode-sweep cells only): which sources were
    // armed, and the effective hardware prefetcher kind. Classic-sweep
    // cells omit both keys, keeping their records byte-identical to the
    // pre-facet schema (the committed golden report pins this).
    if (C.Mode != PrefetchSources::Unset) {
      J.key("prefetch_mode").value(prefetchSourcesName(C.Mode));
      J.key("hw_prefetch")
          .value(sim::hwPrefetchKindName(C.Opt.Machine.effectiveHwPrefetch()));
    }
    J.key("ran").value(Result.Cells[I].Ran);
    J.key("attempts").value(static_cast<uint64_t>(Result.Cells[I].Attempts));
    J.key("cycles").value(R.CompiledCycles);
    J.key("retired").value(R.Exec.Retired);
    J.key("prefetch_related").value(R.Exec.PrefetchRelated);
    J.key("gc_runs").value(R.Exec.GcRuns);
    J.key("loads").value(R.Mem.Loads);
    J.key("stores").value(R.Mem.Stores);
    J.key("l1_load_misses").value(R.Mem.L1LoadMisses);
    J.key("l1_store_misses").value(R.Mem.L1StoreMisses);
    J.key("l2_load_misses").value(R.Mem.L2LoadMisses);
    J.key("dtlb_load_misses").value(R.Mem.DtlbLoadMisses);
    // Hierarchy-shape-dependent counters, emitted only when the machine
    // can distinguish them: llc_load_misses duplicates l2_load_misses on
    // a two-level machine, and page walks exist only on walked-TLB
    // machines. Legacy (two-level, flat-TLB) records stay byte-identical.
    if (C.Opt.Machine.numLevels() > 2)
      J.key("llc_load_misses").value(R.Mem.LlcLoadMisses);
    if (C.Opt.Machine.Walk == sim::TlbWalk::Walked) {
      J.key("page_walks").value(R.Mem.PageWalks);
      J.key("page_walk_cycles").value(R.Mem.PageWalkCycles);
    }
    J.key("cycles_stalled_on_loads").value(R.Mem.CyclesStalledOnLoads);
    J.key("sw_prefetches_issued").value(R.Mem.SwPrefetchesIssued);
    J.key("sw_prefetches_cancelled").value(R.Mem.SwPrefetchesCancelled);
    J.key("guarded_loads").value(R.Mem.GuardedLoads);
    J.key("guarded_load_faults").value(R.Mem.GuardedLoadFaults);
    // RPT hardware-prefetcher effectiveness — only machines whose
    // effective prefetcher is the RPT can populate these, so only they
    // carry the keys (classic reports stay byte-identical). Accuracy is
    // useful / resolved fills; fills still resident at end of run are
    // unresolved and excluded.
    if (C.Opt.Machine.effectiveHwPrefetch() == sim::HwPrefetchKind::Rpt) {
      J.key("rpt_prefetches_issued").value(R.Mem.RptPrefetchesIssued);
      J.key("rpt_prefetches_useful").value(R.Mem.RptPrefetchesUseful);
      J.key("rpt_prefetches_late").value(R.Mem.RptPrefetchesLate);
      J.key("rpt_prefetches_unused").value(R.Mem.RptPrefetchesUnused);
      uint64_t RptResolved = R.Mem.RptPrefetchesUseful +
                             R.Mem.RptPrefetchesLate +
                             R.Mem.RptPrefetchesUnused;
      J.key("rpt_accuracy")
          .value(RptResolved ? static_cast<double>(R.Mem.RptPrefetchesUseful) /
                                   static_cast<double>(RptResolved)
                             : 0.0);
    }
    // Epoch/GC-variant/governor facets, conditional on the cell having
    // asked for them — single-epoch classic cells stay byte-identical.
    if (C.Opt.Epochs > 1)
      J.key("epochs").value(static_cast<uint64_t>(C.Opt.Epochs));
    if (C.Opt.GcVariant != vm::GcVariant::SlidingCompact)
      J.key("gc_variant").value(vm::gcVariantName(C.Opt.GcVariant));
    if (C.Opt.PhaseChange)
      J.key("phase_change").value(true);
    if (C.Opt.Epochs > 1 || C.Opt.Governor)
      J.key("gc_collections").value(R.GcCollections);
    if (C.Opt.Governor) {
      J.key("governor").value(true);
      J.key("governor_quarantined")
          .value(static_cast<uint64_t>(R.GovernorQuarantined));
      J.key("governor_retunes")
          .value(static_cast<uint64_t>(R.GovernorRetunes));
      J.key("governor_reinspections")
          .value(static_cast<uint64_t>(R.GovernorReinspections));
      J.key("sw_prefetches_useful").value(R.Mem.SwPrefetchesUseful);
      J.key("sw_prefetches_late").value(R.Mem.SwPrefetchesLate);
      J.key("sw_prefetches_unused").value(R.Mem.SwPrefetchesUnused);
    }
    J.key("spec_loads").value(R.Prefetch.CodeGen.SpecLoads);
    J.key("prefetches").value(R.Prefetch.CodeGen.Prefetches);
    J.key("jit_total_us").value(R.JitTotalUs);
    J.key("jit_prefetch_us").value(R.JitPrefetchUs);
    J.key("return_value").value(R.ReturnValue);
    J.key("self_check_ok").value(R.SelfCheckOk);
    // Folded cells (streaming aggregation) freed R.Sites at retirement;
    // the pre-fold values are byte-identical to the in-memory path's.
    J.key("load_sites").value(Cell.SitesFolded
                                  ? Cell.FoldedSiteCount
                                  : static_cast<uint64_t>(R.Sites.size()));
    J.key("site_stats_hash")
        .value(Cell.SitesFolded ? Cell.FoldedSiteHash
                                : siteStatsHash(R.Sites));
    // Cycle-accounting facets, conditional on the cell sampling a
    // timeline — classic sweeps carry none of these keys and stay
    // byte-identical. cycle_breakdown is the CPI stack: every simulated
    // cycle charged to exactly one category, summing to `cycles`. The
    // GC-pause share is split out of compute here at the report layer
    // (each collection charges exactly one tick(exec::GcPauseTicks) in
    // the interpreter, so the split is exact, not an estimate).
    if (C.Opt.TimelineEvery) {
      auto WriteAcctKeys = [&](const sim::CycleAccounting &A) {
        for (size_t L = 0; L != A.Level.size(); ++L)
          J.key("l" + std::to_string(L + 1)).value(A.Level[L]);
        J.key("wait").value(A.Wait);
        J.key("mem_penalty").value(A.MemPenalty);
        J.key("translation").value(A.Translation);
        J.key("guard_fault").value(A.GuardFault);
        J.key("prefetch_issue").value(A.PrefetchIssue);
      };
      uint64_t GcPause =
          R.GcCollections * exec::GcPauseTicks * C.Opt.Machine.ComputeCycles;
      if (GcPause > R.Acct.Compute)
        GcPause = R.Acct.Compute;
      J.key("cycle_breakdown").beginObject();
      J.key("compute").value(R.Acct.Compute - GcPause);
      J.key("gc_pause").value(GcPause);
      WriteAcctKeys(R.Acct);
      J.key("total").value(R.Acct.total());
      J.endObject();
      J.key("timeline").beginArray();
      for (const obs::TimelineSample &S : R.Timeline) {
        J.beginObject();
        J.key("event").value(S.EventIndex);
        if (S.Boundary)
          J.key("boundary").value(true);
        J.key("cycles").value(S.Cycles);
        J.key("compute").value(S.Acct.Compute);
        WriteAcctKeys(S.Acct);
        J.key("loads").value(S.Loads);
        J.key("sw_issued").value(S.SwIssued);
        J.key("sw_useful").value(S.SwUseful);
        J.key("sw_late").value(S.SwLate);
        J.key("sw_unused").value(S.SwUnused);
        J.endObject();
      }
      J.endArray();
      std::vector<std::pair<uint32_t, sim::SiteStats>> TopLocal;
      if (!Cell.SitesFolded)
        TopLocal = topStallSites(R.Sites);
      const std::vector<std::pair<uint32_t, sim::SiteStats>> &Top =
          Cell.SitesFolded ? Cell.TopSites : TopLocal;
      J.key("top_sites").beginArray();
      for (const auto &P : Top) {
        J.beginObject();
        J.key("site").value(static_cast<uint64_t>(P.first));
        J.key("loads").value(P.second.Loads);
        J.key("stall_cycles").value(P.second.StallCycles);
        J.key("l1_misses").value(P.second.L1Misses);
        J.key("l2_misses").value(P.second.L2Misses);
        J.key("dtlb_misses").value(P.second.DtlbMisses);
        J.endObject();
      }
      J.endArray();
    }
    // Wall-clock bookkeeping — which cell recorded vs replayed depends
    // on scheduling; consumers comparing reports must ignore these
    // (see .github/workflows/ci.yml, replay-vs-direct diff).
    J.key("replayed").value(R.Replayed);
    J.key("interpret_us").value(R.InterpretUs);
    J.key("replay_us").value(R.ReplayUs);
    J.endObject();
  }
  J.endArray();

  J.key("trace").beginObject();
  J.key("enabled").value(Result.TraceEnabled);
  J.key("hits").value(Result.Trace.Hits);
  J.key("misses").value(Result.Trace.Misses);
  J.key("inserts").value(Result.Trace.Inserts);
  J.key("evictions").value(Result.Trace.Evictions);
  J.key("overflows").value(Result.Trace.Overflows);
  J.key("spill_stores").value(Result.Trace.SpillStores);
  J.key("spill_loads").value(Result.Trace.SpillLoads);
  J.key("spill_publish_errors").value(Result.Trace.SpillPublishErrors);
  J.key("spill_decode_errors").value(Result.Trace.SpillDecodeErrors);
  J.key("spill_evictions").value(Result.Trace.SpillEvictions);
  J.key("stale_tmp_removed").value(Result.Trace.StaleTmpRemoved);
  J.key("bytes_in_use").value(static_cast<uint64_t>(Result.TraceBytesInUse));
  J.key("budget_bytes").value(
      static_cast<uint64_t>(Result.TraceBudgetBytes));
  J.endObject();

  J.key("isolated").value(Result.Isolated);
  J.key("journal").beginObject();
  J.key("enabled").value(!Result.JournalPath.empty());
  J.key("path").value(Result.JournalPath);
  J.key("grafted").value(static_cast<uint64_t>(Result.JournalGrafted));
  J.key("appended").value(static_cast<uint64_t>(Result.JournalAppended));
  J.key("degraded").value(Result.JournalDegraded);
  J.key("append_failures").value(Result.JournalAppendFailures);
  J.key("sync_failures").value(Result.JournalSyncFailures);
  J.endObject();

  J.key("failures").beginArray();
  for (const std::string &F : Result.Failures)
    J.value(F);
  J.endArray();

  J.key("quarantine").beginArray();
  for (const QuarantineRecord &Q : Result.Quarantine) {
    J.beginObject();
    J.key("cell").value(static_cast<uint64_t>(Q.CellIndex));
    J.key("tag").value(Q.Tag);
    J.key("kind").value(Q.Kind);
    J.key("attempts").value(static_cast<uint64_t>(Q.Attempts));
    J.key("signal").value(static_cast<int64_t>(Q.Signal));
    J.key("exit_status").value(static_cast<int64_t>(Q.ExitStatus));
    J.key("error").value(Q.Error);
    J.endObject();
  }
  J.endArray();

  // Registry snapshot (counters/gauges/histograms) — only when the
  // observability hooks are on, so disabled-mode reports carry no
  // schedule-dependent extras. Cross-run diffs must ignore it (trace
  // hit counts and wall-clock histograms are scheduling artifacts).
  if (obs::enabled()) {
    J.key("stats");
    obs::stats().writeJson(J);
  }

  J.endObject();
  OS << '\n';
}
