//===- harness/Experiment.cpp ---------------------------------------------===//

#include "harness/Experiment.h"

#include "harness/JsonWriter.h"
#include "harness/ThreadPool.h"
#include "support/FaultInjection.h"
#include "support/Status.h"

#include <cstdio>
#include <cstdlib>
#include <optional>
#include <ostream>

using namespace spf;
using namespace spf::harness;

unsigned ExperimentPlan::add(ExperimentCell Cell) {
  Cells.push_back(std::move(Cell));
  return static_cast<unsigned>(Cells.size() - 1);
}

std::vector<unsigned> ExperimentPlan::addSweep(
    const std::vector<const workloads::WorkloadSpec *> &Specs,
    const std::vector<workloads::Algorithm> &Algos,
    const std::vector<sim::MachineConfig> &Machines,
    const workloads::WorkloadConfig &Config, const std::string &Group,
    bool CheckReturnValues) {
  std::vector<unsigned> Added;
  for (const sim::MachineConfig &M : Machines) {
    for (const workloads::WorkloadSpec *Spec : Specs) {
      std::optional<unsigned> BaselineIdx;
      std::vector<unsigned> SpecCells;
      for (workloads::Algorithm A : Algos) {
        ExperimentCell C;
        C.Group = Group;
        C.Spec = Spec;
        C.Opt.Machine = M;
        C.Opt.Algo = A;
        C.Opt.Config = Config;
        unsigned Idx = add(std::move(C));
        if (A == workloads::Algorithm::Baseline)
          BaselineIdx = Idx;
        SpecCells.push_back(Idx);
        Added.push_back(Idx);
      }
      if (CheckReturnValues && BaselineIdx)
        for (unsigned Idx : SpecCells)
          if (Idx != *BaselineIdx)
            Cells[Idx].CheckAgainst = BaselineIdx;
    }
  }
  return Added;
}

namespace {

/// Per-cell wall-clock budget from SPF_CELL_TIMEOUT (seconds); 0 = off.
double cellTimeoutSeconds() {
  const char *S = std::getenv("SPF_CELL_TIMEOUT");
  if (!S || !*S)
    return 0.0;
  char *End = nullptr;
  double V = std::strtod(S, &End);
  return (End && *End == '\0' && V > 0.0) ? V : 0.0;
}

/// "workload [ALGO, machine]" — the tag used in Failures and Quarantine.
std::string cellTag(const ExperimentCell &C) {
  return C.Spec->Name + " [" + workloads::algorithmName(C.Opt.Algo) + ", " +
         C.Opt.Machine.Name + "]";
}

/// FNV-1a over the per-site stats, as a 16-hex-digit string. A compact
/// per-cell fingerprint of the full load-site attribution: two runs with
/// equal hashes had bit-identical per-site miss profiles, which is how
/// the CI replay-vs-direct diff covers site stats without emitting every
/// site as a JSON row.
std::string siteStatsHash(const std::vector<sim::SiteStats> &Sites) {
  uint64_t H = 1469598103934665603ull;
  auto Mix = [&H](uint64_t V) {
    for (unsigned B = 0; B < 8; ++B) {
      H ^= (V >> (B * 8)) & 0xff;
      H *= 1099511628211ull;
    }
  };
  for (const sim::SiteStats &S : Sites) {
    Mix(S.Loads);
    Mix(S.L1Misses);
    Mix(S.L2Misses);
    Mix(S.DtlbMisses);
  }
  char Buf[24];
  std::snprintf(Buf, sizeof(Buf), "%016llx",
                static_cast<unsigned long long>(H));
  return Buf;
}

} // namespace

ExperimentResult harness::runPlan(const ExperimentPlan &Plan,
                                  unsigned Jobs) {
  return runPlan(Plan, Jobs, TraceOptions());
}

ExperimentResult harness::runPlan(const ExperimentPlan &Plan, unsigned Jobs,
                                  const TraceOptions &Trace) {
  if (Jobs == 0)
    Jobs = defaultJobs();

  ExperimentResult Result;
  Result.Cells.resize(Plan.size());

  // Shared-state audit: the workload registry is a function-local static
  // whose one-time construction builds every spec. The init is
  // thread-safe (C++11 magic statics), but force it here so workers never
  // contend on first use and spec pointers are stable before the sweep.
  (void)workloads::allWorkloads();

  // Chaos configuration is read once; every cell derives its own injector
  // stream from (plan index, attempt), so the fault schedule — and hence
  // every result — is independent of worker count and task interleaving.
  const support::FaultConfig Faults = support::FaultConfig::fromEnv();
  const double TimeoutSec = cellTimeoutSeconds();
  constexpr unsigned MaxTransientAttempts = 3;

  // Record-once / replay-many: active only when requested, budgeted, and
  // chaos-free. Fault injection must keep exercising the real interpret
  // path (and can corrupt a recording mid-stream), so any enabled fault
  // site turns reuse off for the whole plan — the PR 2 quarantine
  // machinery below sees exactly the behavior it always did.
  const bool UseTrace =
      Trace.Enabled && Trace.BudgetBytes > 0 && !Faults.anyEnabled();
  std::optional<TraceCache> Cache;
  if (UseTrace)
    Cache.emplace(Trace.BudgetBytes, Trace.SpillDir);

  auto RunCell = [&](unsigned I) {
    const ExperimentCell &C = Plan.cells()[I];
    CellResult &Cell = Result.Cells[I];
    workloads::RunOptions Opt = C.Opt;
    Opt.TimeoutSeconds = TimeoutSec;

    // Cells whose signature is cached replay the recorded access stream
    // instead of re-interpreting; stats are bit-identical either way, so
    // which cell records and which replays (a scheduling accident under
    // Jobs > 1) never shows up in the results.
    const std::string Sig =
        UseTrace ? workloads::executionSignature(*C.Spec, Opt)
                 : std::string();
    if (!Sig.empty()) {
      if (auto E = Cache->lookup(Sig)) {
        ++Cell.Attempts;
        Cell.Run = workloads::replayTrace(E->ExecSide, E->Buf, Opt.Machine);
        Cell.Ran = true;
        return;
      }
    }

    for (unsigned Attempt = 0; Attempt < MaxTransientAttempts; ++Attempt) {
      ++Cell.Attempts;
      // Each call builds a private Heap/Module, compiles with a private
      // CompileManager, and simulates on a private MemorySystem: cells
      // share nothing mutable, so any schedule yields identical stats.
      support::FaultInjector Injector(
          Faults, (uint64_t(I) << 8) | uint64_t(Attempt));
      support::FaultScope Scope(Injector);
      try {
        if (SPF_FAULT_POINT(support::FaultSite::CellExec))
          throw support::TransientFault("injected cell fault");
        if (!Sig.empty()) {
          // Tee the access stream while simulating live; the recording
          // never perturbs the run, and an over-cap trace is simply
          // dropped (the run's own results stand either way).
          trace::TraceBuffer Buf;
          Buf.setByteCap(Trace.BudgetBytes);
          Opt.Record = &Buf;
          Opt.ReserveEvents = Cache->reservedEvents(C.Spec->Name);
          Cell.Run = workloads::runWorkload(*C.Spec, Opt);
          Opt.Record = nullptr;
          if (Buf.overflowed())
            Cache->noteOverflow(C.Spec->Name);
          else
            Cache->insert(Sig, std::move(Buf), Cell.Run);
        } else {
          Cell.Run = workloads::runWorkload(*C.Spec, Opt);
        }
        Cell.Ran = true;
        Cell.Failed = Cell.TimedOut = Cell.Transient = false;
        Cell.Error.clear();
        return;
      } catch (const support::TransientFault &E) {
        // Expected under chaos: re-roll with the next attempt's stream.
        Cell.Transient = true;
        Cell.Error = E.what();
      } catch (const support::CellTimeout &E) {
        Cell.TimedOut = true;
        Cell.Error = E.what();
        return; // Retrying a deterministic simulation cannot get faster.
      } catch (const std::exception &E) {
        Cell.Failed = true;
        Cell.Error = E.what();
        return;
      }
    }
  };

  if (Jobs <= 1 || Plan.size() <= 1) {
    for (unsigned I = 0, E = static_cast<unsigned>(Plan.size()); I != E;
         ++I)
      RunCell(I);
  } else {
    ThreadPool Pool(Jobs);
    for (unsigned I = 0, E = static_cast<unsigned>(Plan.size()); I != E;
         ++I)
      Pool.async([&RunCell, I] { RunCell(I); });
    Pool.wait();
  }

  // Correctness verdicts and quarantine, in plan order (deterministic
  // regardless of the completion schedule above).
  for (unsigned I = 0, E = static_cast<unsigned>(Plan.size()); I != E;
       ++I) {
    const ExperimentCell &C = Plan.cells()[I];
    const CellResult &Cell = Result.Cells[I];
    std::string Tag = cellTag(C);

    if (!Cell.Ran) {
      // The cell never produced a result. Injected transient faults are
      // the chaos harness working as intended — quarantine only; a
      // timeout or a real exception is also a Failure.
      QuarantineRecord Q;
      Q.CellIndex = I;
      Q.Tag = Tag;
      Q.Kind = Cell.TimedOut ? "timeout"
                             : (Cell.Transient ? "faulted" : "error");
      Q.Attempts = Cell.Attempts;
      Q.Error = Cell.Error;
      Result.Quarantine.push_back(std::move(Q));
      if (Cell.TimedOut)
        Result.Failures.push_back(Tag + ": timed out (" + Cell.Error + ")");
      else if (!Cell.Transient)
        Result.Failures.push_back(Tag + ": failed (" + Cell.Error + ")");
      continue; // No result: nothing to check, nothing to compare.
    }

    if (Cell.Attempts > 1) {
      // Succeeded after transient retries: record it, keep the result.
      QuarantineRecord Q;
      Q.CellIndex = I;
      Q.Tag = Tag;
      Q.Kind = "retried";
      Q.Attempts = Cell.Attempts;
      Q.Error = Cell.Error;
      Result.Quarantine.push_back(std::move(Q));
    }

    const workloads::RunResult &Run = Cell.Run;
    if (!Run.SelfCheckOk)
      Result.Failures.push_back(Tag + ": workload self-check failed");
    if (C.CheckAgainst && Result.Cells[*C.CheckAgainst].Ran &&
        Run.ReturnValue != Result.Cells[*C.CheckAgainst].Run.ReturnValue)
      Result.Failures.push_back(
          Tag + ": computed a different result than its baseline run");
  }

  Result.TraceEnabled = UseTrace;
  if (Cache) {
    Result.Trace = Cache->stats();
    Result.TraceBytesInUse = Cache->bytesInUse();
    Result.TraceBudgetBytes = Cache->budgetBytes();
  }
  return Result;
}

void harness::writeJsonReport(std::ostream &OS, const ExperimentPlan &Plan,
                              const ExperimentResult &Result, double Scale,
                              unsigned Jobs) {
  JsonWriter J(OS);
  J.beginObject();
  J.key("schema").value("spf-sweep-v2");
  J.key("scale").value(Scale);
  J.key("jobs").value(static_cast<uint64_t>(Jobs));
  J.key("ok").value(Result.ok());

  J.key("cells").beginArray();
  for (unsigned I = 0, E = static_cast<unsigned>(Plan.size()); I != E;
       ++I) {
    const ExperimentCell &C = Plan.cells()[I];
    const workloads::RunResult &R = Result.Cells[I].Run;
    J.beginObject();
    J.key("group").value(C.Group);
    J.key("workload").value(C.Spec->Name);
    J.key("machine").value(C.Opt.Machine.Name);
    J.key("algorithm").value(workloads::algorithmName(C.Opt.Algo));
    J.key("ran").value(Result.Cells[I].Ran);
    J.key("attempts").value(static_cast<uint64_t>(Result.Cells[I].Attempts));
    J.key("cycles").value(R.CompiledCycles);
    J.key("retired").value(R.Exec.Retired);
    J.key("prefetch_related").value(R.Exec.PrefetchRelated);
    J.key("gc_runs").value(R.Exec.GcRuns);
    J.key("loads").value(R.Mem.Loads);
    J.key("stores").value(R.Mem.Stores);
    J.key("l1_load_misses").value(R.Mem.L1LoadMisses);
    J.key("l1_store_misses").value(R.Mem.L1StoreMisses);
    J.key("l2_load_misses").value(R.Mem.L2LoadMisses);
    J.key("dtlb_load_misses").value(R.Mem.DtlbLoadMisses);
    J.key("cycles_stalled_on_loads").value(R.Mem.CyclesStalledOnLoads);
    J.key("sw_prefetches_issued").value(R.Mem.SwPrefetchesIssued);
    J.key("sw_prefetches_cancelled").value(R.Mem.SwPrefetchesCancelled);
    J.key("guarded_loads").value(R.Mem.GuardedLoads);
    J.key("guarded_load_faults").value(R.Mem.GuardedLoadFaults);
    J.key("spec_loads").value(R.Prefetch.CodeGen.SpecLoads);
    J.key("prefetches").value(R.Prefetch.CodeGen.Prefetches);
    J.key("jit_total_us").value(R.JitTotalUs);
    J.key("jit_prefetch_us").value(R.JitPrefetchUs);
    J.key("return_value").value(R.ReturnValue);
    J.key("self_check_ok").value(R.SelfCheckOk);
    J.key("load_sites").value(static_cast<uint64_t>(R.Sites.size()));
    J.key("site_stats_hash").value(siteStatsHash(R.Sites));
    // Wall-clock bookkeeping — which cell recorded vs replayed depends
    // on scheduling; consumers comparing reports must ignore these
    // (see .github/workflows/ci.yml, replay-vs-direct diff).
    J.key("replayed").value(R.Replayed);
    J.key("interpret_us").value(R.InterpretUs);
    J.key("replay_us").value(R.ReplayUs);
    J.endObject();
  }
  J.endArray();

  J.key("trace").beginObject();
  J.key("enabled").value(Result.TraceEnabled);
  J.key("hits").value(Result.Trace.Hits);
  J.key("misses").value(Result.Trace.Misses);
  J.key("inserts").value(Result.Trace.Inserts);
  J.key("evictions").value(Result.Trace.Evictions);
  J.key("overflows").value(Result.Trace.Overflows);
  J.key("spill_stores").value(Result.Trace.SpillStores);
  J.key("spill_loads").value(Result.Trace.SpillLoads);
  J.key("bytes_in_use").value(static_cast<uint64_t>(Result.TraceBytesInUse));
  J.key("budget_bytes").value(
      static_cast<uint64_t>(Result.TraceBudgetBytes));
  J.endObject();

  J.key("failures").beginArray();
  for (const std::string &F : Result.Failures)
    J.value(F);
  J.endArray();

  J.key("quarantine").beginArray();
  for (const QuarantineRecord &Q : Result.Quarantine) {
    J.beginObject();
    J.key("cell").value(static_cast<uint64_t>(Q.CellIndex));
    J.key("tag").value(Q.Tag);
    J.key("kind").value(Q.Kind);
    J.key("attempts").value(static_cast<uint64_t>(Q.Attempts));
    J.key("error").value(Q.Error);
    J.endObject();
  }
  J.endArray();

  J.endObject();
  OS << '\n';
}
