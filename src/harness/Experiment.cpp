//===- harness/Experiment.cpp ---------------------------------------------===//

#include "harness/Experiment.h"

#include "harness/JsonWriter.h"
#include "harness/ThreadPool.h"

#include <ostream>

using namespace spf;
using namespace spf::harness;

unsigned ExperimentPlan::add(ExperimentCell Cell) {
  Cells.push_back(std::move(Cell));
  return static_cast<unsigned>(Cells.size() - 1);
}

std::vector<unsigned> ExperimentPlan::addSweep(
    const std::vector<const workloads::WorkloadSpec *> &Specs,
    const std::vector<workloads::Algorithm> &Algos,
    const std::vector<sim::MachineConfig> &Machines,
    const workloads::WorkloadConfig &Config, const std::string &Group,
    bool CheckReturnValues) {
  std::vector<unsigned> Added;
  for (const sim::MachineConfig &M : Machines) {
    for (const workloads::WorkloadSpec *Spec : Specs) {
      std::optional<unsigned> BaselineIdx;
      std::vector<unsigned> SpecCells;
      for (workloads::Algorithm A : Algos) {
        ExperimentCell C;
        C.Group = Group;
        C.Spec = Spec;
        C.Opt.Machine = M;
        C.Opt.Algo = A;
        C.Opt.Config = Config;
        unsigned Idx = add(std::move(C));
        if (A == workloads::Algorithm::Baseline)
          BaselineIdx = Idx;
        SpecCells.push_back(Idx);
        Added.push_back(Idx);
      }
      if (CheckReturnValues && BaselineIdx)
        for (unsigned Idx : SpecCells)
          if (Idx != *BaselineIdx)
            Cells[Idx].CheckAgainst = BaselineIdx;
    }
  }
  return Added;
}

ExperimentResult harness::runPlan(const ExperimentPlan &Plan,
                                  unsigned Jobs) {
  if (Jobs == 0)
    Jobs = defaultJobs();

  ExperimentResult Result;
  Result.Cells.resize(Plan.size());

  // Shared-state audit: the workload registry is a function-local static
  // whose one-time construction builds every spec. The init is
  // thread-safe (C++11 magic statics), but force it here so workers never
  // contend on first use and spec pointers are stable before the sweep.
  (void)workloads::allWorkloads();

  auto RunCell = [&](unsigned I) {
    const ExperimentCell &C = Plan.cells()[I];
    // Each call builds a private Heap/Module, compiles with a private
    // CompileManager, and simulates on a private MemorySystem: cells
    // share nothing mutable, so any schedule yields identical stats.
    Result.Cells[I].Run = workloads::runWorkload(*C.Spec, C.Opt);
    Result.Cells[I].Ran = true;
  };

  if (Jobs <= 1 || Plan.size() <= 1) {
    for (unsigned I = 0, E = static_cast<unsigned>(Plan.size()); I != E;
         ++I)
      RunCell(I);
  } else {
    ThreadPool Pool(Jobs);
    for (unsigned I = 0, E = static_cast<unsigned>(Plan.size()); I != E;
         ++I)
      Pool.async([&RunCell, I] { RunCell(I); });
    Pool.wait();
  }

  // Correctness verdicts, in plan order (deterministic regardless of the
  // completion schedule above).
  for (unsigned I = 0, E = static_cast<unsigned>(Plan.size()); I != E;
       ++I) {
    const ExperimentCell &C = Plan.cells()[I];
    const workloads::RunResult &Run = Result.Cells[I].Run;
    std::string Tag = C.Spec->Name + " [" +
                      workloads::algorithmName(C.Opt.Algo) + ", " +
                      C.Opt.Machine.Name + "]";
    if (!Run.SelfCheckOk)
      Result.Failures.push_back(Tag + ": workload self-check failed");
    if (C.CheckAgainst && Result.Cells[*C.CheckAgainst].Ran &&
        Run.ReturnValue != Result.Cells[*C.CheckAgainst].Run.ReturnValue)
      Result.Failures.push_back(
          Tag + ": computed a different result than its baseline run");
  }
  return Result;
}

void harness::writeJsonReport(std::ostream &OS, const ExperimentPlan &Plan,
                              const ExperimentResult &Result, double Scale,
                              unsigned Jobs) {
  JsonWriter J(OS);
  J.beginObject();
  J.key("schema").value("spf-sweep-v1");
  J.key("scale").value(Scale);
  J.key("jobs").value(static_cast<uint64_t>(Jobs));
  J.key("ok").value(Result.ok());

  J.key("cells").beginArray();
  for (unsigned I = 0, E = static_cast<unsigned>(Plan.size()); I != E;
       ++I) {
    const ExperimentCell &C = Plan.cells()[I];
    const workloads::RunResult &R = Result.Cells[I].Run;
    J.beginObject();
    J.key("group").value(C.Group);
    J.key("workload").value(C.Spec->Name);
    J.key("machine").value(C.Opt.Machine.Name);
    J.key("algorithm").value(workloads::algorithmName(C.Opt.Algo));
    J.key("cycles").value(R.CompiledCycles);
    J.key("retired").value(R.Exec.Retired);
    J.key("prefetch_related").value(R.Exec.PrefetchRelated);
    J.key("gc_runs").value(R.Exec.GcRuns);
    J.key("loads").value(R.Mem.Loads);
    J.key("stores").value(R.Mem.Stores);
    J.key("l1_load_misses").value(R.Mem.L1LoadMisses);
    J.key("l2_load_misses").value(R.Mem.L2LoadMisses);
    J.key("dtlb_load_misses").value(R.Mem.DtlbLoadMisses);
    J.key("sw_prefetches_issued").value(R.Mem.SwPrefetchesIssued);
    J.key("sw_prefetches_cancelled").value(R.Mem.SwPrefetchesCancelled);
    J.key("guarded_loads").value(R.Mem.GuardedLoads);
    J.key("spec_loads").value(R.Prefetch.CodeGen.SpecLoads);
    J.key("prefetches").value(R.Prefetch.CodeGen.Prefetches);
    J.key("jit_total_us").value(R.JitTotalUs);
    J.key("jit_prefetch_us").value(R.JitPrefetchUs);
    J.key("return_value").value(R.ReturnValue);
    J.key("self_check_ok").value(R.SelfCheckOk);
    J.endObject();
  }
  J.endArray();

  J.key("failures").beginArray();
  for (const std::string &F : Result.Failures)
    J.value(F);
  J.endArray();

  J.endObject();
  OS << '\n';
}
