//===- harness/ThreadPool.h - Fixed-size worker pool ------------*- C++ -*-===//
///
/// \file
/// A small fixed-size thread pool in the LLVM style: std::thread workers
/// draining a locked deque, a condition variable for arrival, and a
/// second one so wait() can block until every submitted task has retired.
/// No external dependencies; used by the experiment driver to run
/// independent simulation cells concurrently.
///
//===----------------------------------------------------------------------===//

#ifndef SPF_HARNESS_THREADPOOL_H
#define SPF_HARNESS_THREADPOOL_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace spf {
namespace harness {

/// A fixed-size pool of worker threads executing queued tasks in FIFO
/// submission order (start order; completion order is unspecified).
class ThreadPool {
public:
  /// Spawns \p ThreadCount workers. A count of 0 is clamped to 1.
  explicit ThreadPool(unsigned ThreadCount);

  /// Waits for all queued work, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// Enqueues \p Task for execution on some worker. A task that throws
  /// does not kill the worker or wedge wait(): the exception is swallowed
  /// (counted in uncaughtExceptions()) and the pool keeps running —
  /// callers that care about failures must catch inside the task.
  void async(std::function<void()> Task);

  /// Blocks until every task submitted so far has finished.
  void wait();

  unsigned threadCount() const {
    return static_cast<unsigned>(Workers.size());
  }

  /// Number of tasks whose exceptions escaped into the pool.
  uint64_t uncaughtExceptions() const {
    return UncaughtExceptions.load(std::memory_order_relaxed);
  }

private:
  void workerLoop();
  void retireTask();

  std::vector<std::thread> Workers;
  std::deque<std::function<void()>> Tasks;
  std::mutex QueueLock;
  std::condition_variable QueueCondition;      ///< Task arrival / shutdown.
  std::condition_variable CompletionCondition; ///< Queue drained.
  unsigned ActiveTasks = 0;
  bool Shutdown = false;
  std::atomic<uint64_t> UncaughtExceptions{0};
};

/// The worker count the harness should use: SPF_JOBS when set to a
/// positive integer, otherwise std::thread::hardware_concurrency()
/// (itself clamped to at least 1).
unsigned defaultJobs();

} // namespace harness
} // namespace spf

#endif // SPF_HARNESS_THREADPOOL_H
