//===- harness/Journal.cpp ------------------------------------------------===//

#include "harness/Journal.h"

#include "harness/JsonReader.h"
#include "harness/JsonWriter.h"
#include "obs/DecisionLog.h"
#include "obs/StatRegistry.h"
#include "support/FaultInjection.h"
#include "support/Process.h"

#include <cstdio>
#include <fcntl.h>
#include <fstream>
#include <sstream>
#include <unistd.h>

using namespace spf;
using namespace spf::harness;

namespace {

constexpr const char *JournalMagic = "spf-journal-v1";

uint64_t fnv1a(uint64_t H, const std::string &S) {
  for (unsigned char C : S) {
    H ^= C;
    H *= 1099511628211ull;
  }
  return H;
}

std::string hex16(uint64_t V) {
  char Buf[24];
  std::snprintf(Buf, sizeof(Buf), "%016llx",
                static_cast<unsigned long long>(V));
  return Buf;
}

} // namespace

std::string harness::journalCellKey(const ExperimentPlan &Plan, unsigned I) {
  const ExperimentCell &C = Plan.cells()[I];
  std::string Key = std::to_string(I) + "|" + C.Group + "|" + C.Spec->Name +
                    "|" + workloads::algorithmName(C.Opt.Algo) + "|" +
                    C.Opt.Machine.Name + "|";
  // The prefetch-source facet is part of the identity: a mode sweep runs
  // e.g. None and HwOnly cells that agree on every other component (the
  // facet lives in the machine's HwPrefetchEnabled, which is timing-only
  // and so absent from the execution signature). Classic-sweep cells
  // (Unset) keep the legacy key format, so existing journals still load.
  if (C.Mode != PrefetchSources::Unset)
    Key += std::string("mode=") + prefetchSourcesName(C.Mode) + "|";
  // Timeline cadence is part of the identity too: TimelineEvery is
  // deliberately absent from the execution signature (it never shapes
  // the event stream), but a record journaled without timeline samples
  // cannot satisfy a resume that wants them — and vice versa the report
  // must not suddenly grow keys. Classic cells (0) keep the legacy key.
  if (C.Opt.TimelineEvery)
    Key += "timeline=" + std::to_string(C.Opt.TimelineEvery) + "|";
  std::string Sig = workloads::executionSignature(*C.Spec, C.Opt);
  if (!Sig.empty()) {
    Key += Sig;
  } else {
    // Unkeyable run options (TunePass without TuneKey, governor-on): fall
    // back to the workload facets; the plan index above still pins the
    // cell. Epoch/GC/governor facets append conditionally so classic
    // cells keep the legacy key format.
    char Buf[96];
    std::snprintf(Buf, sizeof(Buf), "scale=%.17g,seed=%llu,heap=%llu",
                  C.Opt.Config.Scale,
                  static_cast<unsigned long long>(C.Opt.Config.Seed),
                  static_cast<unsigned long long>(C.Opt.Config.HeapBytes));
    Key += Buf;
    if (C.Opt.Epochs > 1)
      Key += ",epochs=" + std::to_string(C.Opt.Epochs);
    if (C.Opt.GcVariant != vm::GcVariant::SlidingCompact)
      Key += std::string(",gc=") + vm::gcVariantName(C.Opt.GcVariant);
    if (C.Opt.PhaseChange)
      Key += ",phase=1";
    if (C.Opt.Governor)
      Key += ",governor=1";
  }
  return Key;
}

uint64_t harness::journalPlanHash(const ExperimentPlan &Plan) {
  uint64_t H = 1469598103934665603ull;
  for (unsigned I = 0, E = static_cast<unsigned>(Plan.size()); I != E; ++I) {
    H = fnv1a(H, journalCellKey(Plan, I));
    H = fnv1a(H, "\n");
  }
  return H;
}

void harness::writeCellRecordJson(JsonWriter &J, const CellResult &Cell) {
  const workloads::RunResult &R = Cell.Run;
  J.beginObject();
  J.key("ran").value(Cell.Ran);
  J.key("failed").value(Cell.Failed);
  J.key("timed_out").value(Cell.TimedOut);
  J.key("transient").value(Cell.Transient);
  J.key("crashed").value(Cell.Crashed);
  J.key("deadline_killed").value(Cell.DeadlineKilled);
  J.key("attempts").value(static_cast<uint64_t>(Cell.Attempts));
  J.key("signal").value(static_cast<int64_t>(Cell.Signal));
  J.key("exit_status").value(static_cast<int64_t>(Cell.ExitStatus));
  J.key("error").value(Cell.Error);
  J.key("run").beginObject();
  J.key("cycles").value(R.CompiledCycles);
  J.key("retired").value(R.Retired);
  J.key("jit_total_us").value(R.JitTotalUs);
  J.key("jit_prefetch_us").value(R.JitPrefetchUs);
  J.key("return_value").value(R.ReturnValue);
  J.key("self_check_ok").value(R.SelfCheckOk);
  J.key("replayed").value(R.Replayed);
  J.key("interpret_us").value(R.InterpretUs);
  J.key("replay_us").value(R.ReplayUs);
  // Epoch/governor accounting, conditional keys: classic single-epoch
  // records stay byte-identical to the pre-governor format.
  if (R.Epochs > 1)
    J.key("epochs").value(static_cast<uint64_t>(R.Epochs));
  if (R.GcCollections)
    J.key("gc_collections").value(R.GcCollections);
  if (R.GovernorQuarantined)
    J.key("governor_quarantined")
        .value(static_cast<uint64_t>(R.GovernorQuarantined));
  if (R.GovernorRetunes)
    J.key("governor_retunes").value(static_cast<uint64_t>(R.GovernorRetunes));
  if (R.GovernorReinspections)
    J.key("governor_reinspections")
        .value(static_cast<uint64_t>(R.GovernorReinspections));
  J.key("mem").beginObject();
  J.key("loads").value(R.Mem.Loads);
  J.key("stores").value(R.Mem.Stores);
  J.key("l1_load_misses").value(R.Mem.L1LoadMisses);
  J.key("l1_store_misses").value(R.Mem.L1StoreMisses);
  J.key("l2_load_misses").value(R.Mem.L2LoadMisses);
  J.key("dtlb_load_misses").value(R.Mem.DtlbLoadMisses);
  J.key("sw_prefetches_issued").value(R.Mem.SwPrefetchesIssued);
  J.key("sw_prefetches_cancelled").value(R.Mem.SwPrefetchesCancelled);
  J.key("guarded_loads").value(R.Mem.GuardedLoads);
  J.key("guarded_load_faults").value(R.Mem.GuardedLoadFaults);
  J.key("cycles_stalled_on_loads").value(R.Mem.CyclesStalledOnLoads);
  // Multi-level/walked-TLB counters, emitted only when nonzero: legacy
  // journals (and records of machines where they cannot fire) stay
  // byte-identical to the pre-hierarchy format.
  if (R.Mem.LlcLoadMisses)
    J.key("llc_load_misses").value(R.Mem.LlcLoadMisses);
  if (R.Mem.PageWalks)
    J.key("page_walks").value(R.Mem.PageWalks);
  if (R.Mem.PageWalkCycles)
    J.key("page_walk_cycles").value(R.Mem.PageWalkCycles);
  // Prefetch-effectiveness counters, same conditional-key contract: RPT
  // counters fire only on RPT machines, Sw* resolution only under the
  // governor's health tracking.
  if (R.Mem.RptPrefetchesIssued)
    J.key("rpt_prefetches_issued").value(R.Mem.RptPrefetchesIssued);
  if (R.Mem.RptPrefetchesUseful)
    J.key("rpt_prefetches_useful").value(R.Mem.RptPrefetchesUseful);
  if (R.Mem.RptPrefetchesLate)
    J.key("rpt_prefetches_late").value(R.Mem.RptPrefetchesLate);
  if (R.Mem.RptPrefetchesUnused)
    J.key("rpt_prefetches_unused").value(R.Mem.RptPrefetchesUnused);
  if (R.Mem.SwPrefetchesUseful)
    J.key("sw_prefetches_useful").value(R.Mem.SwPrefetchesUseful);
  if (R.Mem.SwPrefetchesLate)
    J.key("sw_prefetches_late").value(R.Mem.SwPrefetchesLate);
  if (R.Mem.SwPrefetchesUnused)
    J.key("sw_prefetches_unused").value(R.Mem.SwPrefetchesUnused);
  J.endObject();
  J.key("exec").beginObject();
  J.key("retired").value(R.Exec.Retired);
  J.key("prefetch_related").value(R.Exec.PrefetchRelated);
  J.key("calls").value(R.Exec.Calls);
  J.key("allocations").value(R.Exec.Allocations);
  J.key("gc_runs").value(R.Exec.GcRuns);
  J.endObject();
  J.key("prefetch").beginObject();
  J.key("loops_visited").value(static_cast<uint64_t>(R.Prefetch.LoopsVisited));
  J.key("loops_skipped_small_trip")
      .value(static_cast<uint64_t>(R.Prefetch.LoopsSkippedSmallTrip));
  J.key("loops_not_reached")
      .value(static_cast<uint64_t>(R.Prefetch.LoopsNotReached));
  J.key("loops_degraded")
      .value(static_cast<uint64_t>(R.Prefetch.LoopsDegraded));
  J.key("inspection_faults_injected")
      .value(R.Prefetch.InspectionFaultsInjected);
  J.key("prefetches")
      .value(static_cast<uint64_t>(R.Prefetch.CodeGen.Prefetches));
  J.key("spec_loads")
      .value(static_cast<uint64_t>(R.Prefetch.CodeGen.SpecLoads));
  J.endObject();
  // Cycle attribution and the sampled timeline ride along only for
  // sampling runs (Timeline is nonempty iff TimelineEvery > 0 — the
  // sampler always appends a final sample), so classic records stay
  // byte-identical. Both are flat tuples: acct is
  // [compute, wait, mem_penalty, translation, guard_fault,
  // prefetch_issue, l1..lN]; each timeline sample prepends
  // [event, boundary, cycles] and appends [loads, sw_issued, sw_useful,
  // sw_late, sw_unused] around the same acct layout.
  if (!R.Timeline.empty()) {
    auto WriteAcct = [&](const sim::CycleAccounting &A) {
      J.value(A.Compute);
      J.value(A.Wait);
      J.value(A.MemPenalty);
      J.value(A.Translation);
      J.value(A.GuardFault);
      J.value(A.PrefetchIssue);
      for (uint64_t L : A.Level)
        J.value(L);
    };
    J.key("acct").beginArray();
    WriteAcct(R.Acct);
    J.endArray();
    J.key("timeline").beginArray();
    for (const obs::TimelineSample &S : R.Timeline) {
      J.beginArray();
      J.value(S.EventIndex);
      J.value(static_cast<uint64_t>(S.Boundary ? 1 : 0));
      J.value(S.Cycles);
      J.value(S.Loads);
      J.value(S.SwIssued);
      J.value(S.SwUseful);
      J.value(S.SwLate);
      J.value(S.SwUnused);
      WriteAcct(S.Acct);
      J.endArray();
    }
    J.endArray();
  }
  // Per-site stats as compact 4-tuples; Prefetch.Loops (diagnostic-only
  // per-loop reports, referencing freed analyses) are dropped, matching
  // what the trace cache persists.
  // Health-tracked runs widen every tuple to 12 (the 8 prefetch-health
  // fields appended); runs without health data keep the classic 4-tuple
  // byte for byte. Stall attribution appends one more column (5/13)
  // whenever any site carries stall cycles — records parse at any of
  // the four widths, older columns first.
  bool SiteHealth = false;
  bool SiteStall = false;
  for (const sim::SiteStats &S : R.Sites) {
    if (S.SwIssued || S.SwUseful || S.SwLate || S.SwUnused || S.RptIssued ||
        S.RptUseful || S.RptLate || S.RptUnused)
      SiteHealth = true;
    if (S.StallCycles)
      SiteStall = true;
    if (SiteHealth && SiteStall)
      break;
  }
  J.key("sites").beginArray();
  for (const sim::SiteStats &S : R.Sites) {
    J.beginArray();
    J.value(S.Loads);
    J.value(S.L1Misses);
    J.value(S.L2Misses);
    J.value(S.DtlbMisses);
    if (SiteHealth) {
      J.value(S.SwIssued);
      J.value(S.SwUseful);
      J.value(S.SwLate);
      J.value(S.SwUnused);
      J.value(S.RptIssued);
      J.value(S.RptUseful);
      J.value(S.RptLate);
      J.value(S.RptUnused);
    }
    if (SiteStall)
      J.value(S.StallCycles);
    J.endArray();
  }
  J.endArray();
  // Compile-decision events ride along so --explain works for journaled
  // and worker-run cells. The member is omitted entirely when empty,
  // keeping obs-disabled records byte-identical to the pre-obs format.
  if (!R.Decisions.empty()) {
    J.key("decisions").beginArray();
    for (const obs::DecisionEvent &D : R.Decisions)
      obs::writeDecisionJson(J, D);
    J.endArray();
  }
  J.endObject();
  J.endObject();
}

bool harness::parseCellRecord(const JsonValue &V, CellResult &Cell) {
  if (V.kind() != JsonValue::Kind::Object || !V.has("ran"))
    return false;
  Cell = CellResult();
  Cell.Ran = V.getBool("ran");
  Cell.Failed = V.getBool("failed");
  Cell.TimedOut = V.getBool("timed_out");
  Cell.Transient = V.getBool("transient");
  Cell.Crashed = V.getBool("crashed");
  Cell.DeadlineKilled = V.getBool("deadline_killed");
  Cell.Attempts = static_cast<unsigned>(V.getU64("attempts"));
  Cell.Signal = static_cast<int>(V.getI64("signal"));
  Cell.ExitStatus = static_cast<int>(V.getI64("exit_status"));
  Cell.Error = V.getString("error");

  const JsonValue &Run = V.get("run");
  if (Run.kind() != JsonValue::Kind::Object)
    return false;
  workloads::RunResult &R = Cell.Run;
  R.CompiledCycles = Run.getU64("cycles");
  R.Retired = Run.getU64("retired");
  R.JitTotalUs = Run.getDouble("jit_total_us");
  R.JitPrefetchUs = Run.getDouble("jit_prefetch_us");
  R.ReturnValue = Run.getU64("return_value");
  R.SelfCheckOk = Run.getBool("self_check_ok", true);
  R.Replayed = Run.getBool("replayed");
  R.InterpretUs = Run.getDouble("interpret_us");
  R.ReplayUs = Run.getDouble("replay_us");
  R.Epochs = static_cast<unsigned>(Run.getU64("epochs", 1));
  R.GcCollections = Run.getU64("gc_collections");
  R.GovernorQuarantined =
      static_cast<unsigned>(Run.getU64("governor_quarantined"));
  R.GovernorRetunes = static_cast<unsigned>(Run.getU64("governor_retunes"));
  R.GovernorReinspections =
      static_cast<unsigned>(Run.getU64("governor_reinspections"));

  const JsonValue &Mem = Run.get("mem");
  R.Mem.Loads = Mem.getU64("loads");
  R.Mem.Stores = Mem.getU64("stores");
  R.Mem.L1LoadMisses = Mem.getU64("l1_load_misses");
  R.Mem.L1StoreMisses = Mem.getU64("l1_store_misses");
  R.Mem.L2LoadMisses = Mem.getU64("l2_load_misses");
  R.Mem.DtlbLoadMisses = Mem.getU64("dtlb_load_misses");
  R.Mem.SwPrefetchesIssued = Mem.getU64("sw_prefetches_issued");
  R.Mem.SwPrefetchesCancelled = Mem.getU64("sw_prefetches_cancelled");
  R.Mem.GuardedLoads = Mem.getU64("guarded_loads");
  R.Mem.GuardedLoadFaults = Mem.getU64("guarded_load_faults");
  R.Mem.CyclesStalledOnLoads = Mem.getU64("cycles_stalled_on_loads");
  R.Mem.LlcLoadMisses = Mem.getU64("llc_load_misses");
  R.Mem.PageWalks = Mem.getU64("page_walks");
  R.Mem.PageWalkCycles = Mem.getU64("page_walk_cycles");
  R.Mem.RptPrefetchesIssued = Mem.getU64("rpt_prefetches_issued");
  R.Mem.RptPrefetchesUseful = Mem.getU64("rpt_prefetches_useful");
  R.Mem.RptPrefetchesLate = Mem.getU64("rpt_prefetches_late");
  R.Mem.RptPrefetchesUnused = Mem.getU64("rpt_prefetches_unused");
  R.Mem.SwPrefetchesUseful = Mem.getU64("sw_prefetches_useful");
  R.Mem.SwPrefetchesLate = Mem.getU64("sw_prefetches_late");
  R.Mem.SwPrefetchesUnused = Mem.getU64("sw_prefetches_unused");

  const JsonValue &Exec = Run.get("exec");
  R.Exec.Retired = Exec.getU64("retired");
  R.Exec.PrefetchRelated = Exec.getU64("prefetch_related");
  R.Exec.Calls = Exec.getU64("calls");
  R.Exec.Allocations = Exec.getU64("allocations");
  R.Exec.GcRuns = Exec.getU64("gc_runs");

  const JsonValue &Pf = Run.get("prefetch");
  R.Prefetch.LoopsVisited = static_cast<unsigned>(Pf.getU64("loops_visited"));
  R.Prefetch.LoopsSkippedSmallTrip =
      static_cast<unsigned>(Pf.getU64("loops_skipped_small_trip"));
  R.Prefetch.LoopsNotReached =
      static_cast<unsigned>(Pf.getU64("loops_not_reached"));
  R.Prefetch.LoopsDegraded =
      static_cast<unsigned>(Pf.getU64("loops_degraded"));
  R.Prefetch.InspectionFaultsInjected =
      Pf.getU64("inspection_faults_injected");
  R.Prefetch.CodeGen.Prefetches =
      static_cast<unsigned>(Pf.getU64("prefetches"));
  R.Prefetch.CodeGen.SpecLoads =
      static_cast<unsigned>(Pf.getU64("spec_loads"));

  const JsonValue &Sites = Run.get("sites");
  if (Sites.kind() == JsonValue::Kind::Array) {
    R.Sites.reserve(Sites.array().size());
    for (const JsonValue &S : Sites.array()) {
      // 4 = classic tuple, 12 = with the prefetch-health columns; 5/13
      // append the stall-cycle column. Older widths parse with the
      // missing columns left zero.
      size_t N = S.kind() == JsonValue::Kind::Array ? S.array().size() : 0;
      if (N != 4 && N != 5 && N != 12 && N != 13)
        return false;
      sim::SiteStats St;
      St.Loads = S.array()[0].u64();
      St.L1Misses = S.array()[1].u64();
      St.L2Misses = S.array()[2].u64();
      St.DtlbMisses = S.array()[3].u64();
      if (N >= 12) {
        St.SwIssued = S.array()[4].u64();
        St.SwUseful = S.array()[5].u64();
        St.SwLate = S.array()[6].u64();
        St.SwUnused = S.array()[7].u64();
        St.RptIssued = S.array()[8].u64();
        St.RptUseful = S.array()[9].u64();
        St.RptLate = S.array()[10].u64();
        St.RptUnused = S.array()[11].u64();
      }
      if (N == 5 || N == 13)
        St.StallCycles = S.array()[N - 1].u64();
      R.Sites.push_back(St);
    }
  }
  // Inverse of the acct/timeline tuples above; absent members (classic
  // records) leave Acct zeroed and Timeline empty.
  auto ParseAcct = [](const JsonValue &A, sim::CycleAccounting &Out,
                      size_t From) {
    Out.Compute = A.array()[From + 0].u64();
    Out.Wait = A.array()[From + 1].u64();
    Out.MemPenalty = A.array()[From + 2].u64();
    Out.Translation = A.array()[From + 3].u64();
    Out.GuardFault = A.array()[From + 4].u64();
    Out.PrefetchIssue = A.array()[From + 5].u64();
    Out.Level.clear();
    for (size_t I = From + 6; I < A.array().size(); ++I)
      Out.Level.push_back(A.array()[I].u64());
  };
  if (Run.has("acct")) {
    const JsonValue &A = Run.get("acct");
    if (A.kind() != JsonValue::Kind::Array || A.array().size() < 6)
      return false;
    ParseAcct(A, R.Acct, 0);
  }
  if (Run.has("timeline")) {
    const JsonValue &T = Run.get("timeline");
    if (T.kind() != JsonValue::Kind::Array)
      return false;
    R.Timeline.reserve(T.array().size());
    for (const JsonValue &S : T.array()) {
      if (S.kind() != JsonValue::Kind::Array || S.array().size() < 14)
        return false;
      obs::TimelineSample Sample;
      Sample.EventIndex = S.array()[0].u64();
      Sample.Boundary = S.array()[1].u64() != 0;
      Sample.Cycles = S.array()[2].u64();
      Sample.Loads = S.array()[3].u64();
      Sample.SwIssued = S.array()[4].u64();
      Sample.SwUseful = S.array()[5].u64();
      Sample.SwLate = S.array()[6].u64();
      Sample.SwUnused = S.array()[7].u64();
      ParseAcct(S, Sample.Acct, 8);
      R.Timeline.push_back(Sample);
    }
  }

  if (Run.has("decisions")) {
    const JsonValue &Ds = Run.get("decisions");
    if (Ds.kind() == JsonValue::Kind::Array) {
      R.Decisions.reserve(Ds.array().size());
      for (const JsonValue &D : Ds.array())
        R.Decisions.push_back(obs::parseDecisionEvent(D));
    }
  }
  return true;
}

RunJournal::~RunJournal() {
  if (Fd >= 0)
    ::close(Fd);
}

bool RunJournal::load(const ExperimentPlan &Plan,
                      std::vector<std::optional<CellResult>> &Recorded,
                      std::string *Error) {
  Recorded.assign(Plan.size(), std::nullopt);
  std::ifstream IS(Path, std::ios::binary);
  if (!IS)
    return true; // No journal yet: nothing recorded, fresh resume.

  std::string Content((std::istreambuf_iterator<char>(IS)),
                      std::istreambuf_iterator<char>());
  const std::string WantHash = hex16(journalPlanHash(Plan));

  size_t Pos = 0;
  unsigned LineNo = 0;
  bool SawHeader = false;
  while (Pos < Content.size()) {
    size_t Nl = Content.find('\n', Pos);
    if (Nl == std::string::npos)
      break; // Truncated final line: the crash interrupted this write.
    std::string Line = Content.substr(Pos, Nl - Pos);
    Pos = Nl + 1;
    ++LineNo;
    if (Line.empty())
      continue;

    std::string ParseError;
    std::unique_ptr<JsonValue> V = JsonValue::parse(Line, &ParseError);
    if (!V) {
      if (Error)
        *Error = Path + ":" + std::to_string(LineNo) +
                 ": malformed journal line: " + ParseError;
      return false;
    }

    if (!SawHeader) {
      SawHeader = true;
      if (V->getString("journal") != JournalMagic) {
        if (Error)
          *Error = Path + ": not a " + std::string(JournalMagic) + " file";
        return false;
      }
      if (V->getString("plan_hash") != WantHash) {
        if (Error)
          *Error = Path + ": plan hash mismatch (journal " +
                   V->getString("plan_hash") + ", plan " + WantHash +
                   "): refusing to graft results from a different plan";
        return false;
      }
      continue;
    }

    uint64_t Cell = V->getU64("cell", Plan.size());
    if (Cell >= Plan.size()) {
      if (Error)
        *Error = Path + ":" + std::to_string(LineNo) +
                 ": cell index out of range";
      return false;
    }
    // The plan hash already pins every key, but verify per-line anyway:
    // it catches a journal assembled from two different runs.
    if (V->getString("key") !=
        journalCellKey(Plan, static_cast<unsigned>(Cell))) {
      if (Error)
        *Error = Path + ":" + std::to_string(LineNo) +
                 ": cell key mismatch for cell " + std::to_string(Cell);
      return false;
    }
    CellResult R;
    if (!parseCellRecord(V->get("record"), R)) {
      if (Error)
        *Error = Path + ":" + std::to_string(LineNo) +
                 ": malformed cell record";
      return false;
    }
    Recorded[Cell] = std::move(R); // Last record wins on duplicates.
  }
  return true;
}

bool RunJournal::openForAppend(const ExperimentPlan &Plan, bool Fresh,
                               std::string *Error) {
  int Flags = O_WRONLY | O_CREAT | O_APPEND | (Fresh ? O_TRUNC : 0);
  Fd = ::open(Path.c_str(), Flags, 0644);
  if (Fd < 0) {
    if (Error)
      *Error = Path + ": cannot open journal for writing";
    return false;
  }
  // A fresh journal (or a resumed one whose file vanished) needs the
  // header; an existing non-empty journal already has it.
  off_t End = ::lseek(Fd, 0, SEEK_END);
  if (Fresh || End == 0) {
    std::ostringstream OS;
    JsonWriter J(OS);
    J.beginObject();
    J.key("journal").value(JournalMagic);
    J.key("plan_hash").value(hex16(journalPlanHash(Plan)));
    J.key("cells").value(static_cast<uint64_t>(Plan.size()));
    J.endObject();
    OS << '\n';
    std::string Line = OS.str();
    if (!support::writeAllFd(Fd, Line.data(), Line.size())) {
      if (Error)
        *Error = Path + ": cannot write journal header";
      return false;
    }
    ::fsync(Fd);
  }
  return true;
}

bool RunJournal::writeLineLocked(const std::string &Line) {
  // Injected disk failure: refuse before touching the file, exactly like
  // an ENOSPC that rejects the whole write.
  if (SPF_FAULT_POINT(support::FaultSite::DiskWrite))
    return false;
  off_t Before = ::lseek(Fd, 0, SEEK_END);
  if (support::writeAllFd(Fd, Line.data(), Line.size()))
    return true;
  // Real short/failed write. A torn tail line is tolerable (load() drops
  // it), but appending *after* one would create a malformed interior line
  // that poisons the whole journal — truncate the tear back off.
  if (Before < 0 || ::ftruncate(Fd, Before) != 0)
    Poisoned = true;
  return false;
}

void RunJournal::append(const ExperimentPlan &Plan, unsigned I,
                        const CellResult &Cell) {
  if (Fd < 0)
    return;
  std::ostringstream OS;
  JsonWriter J(OS);
  J.beginObject();
  J.key("key").value(journalCellKey(Plan, I));
  J.key("cell").value(static_cast<uint64_t>(I));
  J.key("record");
  writeCellRecordJson(J, Cell);
  J.endObject();
  OS << '\n';
  std::string Line = OS.str();
  std::lock_guard<std::mutex> Lock(Mu);
  // One O_APPEND write keeps the line atomic; the fsync makes it durable
  // before the supervisor moves on — a later SIGKILL cannot lose it.
  bool Wrote = !Poisoned && writeLineLocked(Line);
  if (!Wrote && !Poisoned)
    Wrote = writeLineLocked(Line); // Retry once: transient EIO recovers.
  if (!Wrote) {
    // The record is dropped from the journal (the cell re-runs on
    // --resume); the sweep itself carries on. Loud, not silent:
    AppendFailures.fetch_add(1, std::memory_order_relaxed);
    Degraded.store(true, std::memory_order_relaxed);
    obs::stats().counter("spf_journal_append_failures_total").inc();
    obs::stats().gauge("spf_journal_degraded").set(1);
    return;
  }
  bool SyncFailed = SPF_FAULT_POINT(support::FaultSite::DiskSync) ||
                    ::fsync(Fd) != 0;
  if (SyncFailed) {
    // The line is in the file but not guaranteed durable.
    SyncFailures.fetch_add(1, std::memory_order_relaxed);
    Degraded.store(true, std::memory_order_relaxed);
    obs::stats().counter("spf_journal_sync_failures_total").inc();
    obs::stats().gauge("spf_journal_degraded").set(1);
  }
}
