//===- harness/ReportDiff.cpp ---------------------------------------------===//

#include "harness/ReportDiff.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <set>
#include <sstream>

using namespace spf;
using namespace spf::harness;

namespace {

std::string fmt(double V) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%g", V);
  return Buf;
}

void addFinding(DiffResult &Out, std::string Where, double Ref, double Got,
                bool Regression, std::string Detail) {
  DiffFinding F;
  F.Where = std::move(Where);
  F.Ref = Ref;
  F.Got = Got;
  F.Regression = Regression;
  F.Detail = std::move(Detail);
  Out.Findings.push_back(std::move(F));
}

// -- spf-bench-throughput-v1 ---------------------------------------------

void diffThroughput(const JsonValue &Ref, const JsonValue &Got,
                    const DiffThresholds &T, DiffResult &Out) {
  const JsonValue &RefModes = Ref.get("modes");
  const JsonValue &GotModes = Got.get("modes");
  for (const auto &KV : RefModes.objectMembers()) {
    const std::string &Mode = KV.first;
    if (!GotModes.has(Mode)) {
      addFinding(Out, "modes." + Mode, KV.second.getDouble("cells_per_sec"),
                 0.0, false, "mode missing from fresh run");
      continue;
    }
    double R = KV.second.getDouble("cells_per_sec");
    double G = GotModes.get(Mode).getDouble("cells_per_sec");
    // The gate is on the batched mode (the sweep fast path); the other
    // modes are informational — they swing with disk state.
    bool Reg = Mode == "batched" && R > 0 &&
               G < R * (1.0 - T.ThroughputDropFrac);
    addFinding(Out, "modes." + Mode + ".cells_per_sec", R, G, Reg,
               Reg ? "batched throughput dropped more than " +
                         fmt(T.ThroughputDropFrac * 100) + "% below baseline"
                   : (G >= R ? "no regression" : "within threshold"));
  }
  double Speedup = Got.get("speedup").getDouble("batched_vs_per_event");
  bool Reg = Speedup < T.MinBatchedSpeedup;
  addFinding(Out, "speedup.batched_vs_per_event",
             Ref.get("speedup").getDouble("batched_vs_per_event"), Speedup,
             Reg,
             Reg ? "batched replay no faster than per-event dispatch"
                 : "no regression");
}

// -- spf-bench-adaptation-v1 ---------------------------------------------

void diffAdaptation(const JsonValue &Ref, const JsonValue &Got,
                    const DiffThresholds &T, DiffResult &Out) {
  const JsonValue &RefVars = Ref.get("variants");
  const JsonValue &GotVars = Got.get("variants");
  if (RefVars.kind() != JsonValue::Kind::Array ||
      GotVars.kind() != JsonValue::Kind::Array)
    return;
  for (const JsonValue &RV : RefVars.array()) {
    std::string Variant = RV.getString("gc_variant");
    const JsonValue *GV = nullptr;
    for (const JsonValue &Cand : GotVars.array())
      if (Cand.getString("gc_variant") == Variant) {
        GV = &Cand;
        break;
      }
    if (!GV) {
      addFinding(Out, "variants." + Variant, 0, 0, false,
                 "variant missing from fresh run");
      continue;
    }
    const JsonValue &RefWs = RV.get("workloads");
    if (RefWs.kind() != JsonValue::Kind::Array)
      continue;
    for (const JsonValue &RW : RefWs.array()) {
      std::string W = RW.getString("workload");
      const JsonValue *GW = nullptr;
      if (GV->get("workloads").kind() == JsonValue::Kind::Array)
        for (const JsonValue &Cand : GV->get("workloads").array())
          if (Cand.getString("workload") == W) {
            GW = &Cand;
            break;
          }
      std::string Where = "variants." + Variant + "." + W + ".recovery";
      if (!GW) {
        addFinding(Out, Where, RW.getDouble("recovery"), 0.0, false,
                   "workload missing from fresh run");
        continue;
      }
      double R = RW.getDouble("recovery");
      double G = GW->getDouble("recovery");
      bool Reg = G < R - T.RecoveryDrop;
      addFinding(Out, Where, R, G, Reg,
                 Reg ? "recovery dropped more than " + fmt(T.RecoveryDrop) +
                           " below baseline"
                     : (G >= R ? "no regression" : "within threshold"));
    }
  }
}

// -- spf-sweep-v2 --------------------------------------------------------

std::string cellId(const JsonValue &C) {
  std::string Id = C.getString("group") + "/" + C.getString("workload") +
                   "/" + C.getString("machine") + "/" +
                   C.getString("algorithm");
  if (C.has("prefetch_mode"))
    Id += "/" + C.getString("prefetch_mode");
  return Id;
}

void diffSweep(const JsonValue &Ref, const JsonValue &Got,
               const DiffThresholds &T, DiffResult &Out) {
  const JsonValue &RefCells = Ref.get("cells");
  const JsonValue &GotCells = Got.get("cells");
  if (RefCells.kind() != JsonValue::Kind::Array ||
      GotCells.kind() != JsonValue::Kind::Array)
    return;
  for (const JsonValue &RC : RefCells.array()) {
    std::string Id = cellId(RC);
    const JsonValue *GC = nullptr;
    for (const JsonValue &Cand : GotCells.array())
      if (cellId(Cand) == Id) {
        GC = &Cand;
        break;
      }
    if (!GC) {
      addFinding(Out, Id, static_cast<double>(RC.getU64("cycles")), 0.0,
                 false, "cell missing from fresh run");
      continue;
    }
    double R = static_cast<double>(RC.getU64("cycles"));
    double G = static_cast<double>(GC->getU64("cycles"));
    if (R == G)
      continue; // Deterministic cycles: only deltas are worth a row.
    bool Reg = R > 0 && G > R * (1.0 + T.CyclesIncreaseFrac);
    addFinding(Out, Id + ".cycles", R, G, Reg,
               Reg ? "cycles grew more than " +
                         fmt(T.CyclesIncreaseFrac * 100) + "% over baseline"
                   : (G < R ? "improved" : "within threshold"));
  }
}

// -- validation ----------------------------------------------------------

bool fail(std::string *Error, const std::string &Msg) {
  if (Error)
    *Error = Msg;
  return false;
}

/// The cycle-attribution categories of one breakdown/timeline object,
/// summed. Level keys are l1..lN — probe upward until absent.
uint64_t sumCategories(const JsonValue &B) {
  uint64_t Sum = B.getU64("wait") + B.getU64("mem_penalty") +
                 B.getU64("translation") + B.getU64("guard_fault") +
                 B.getU64("prefetch_issue");
  for (unsigned L = 1; B.has("l" + std::to_string(L)); ++L)
    Sum += B.getU64("l" + std::to_string(L));
  return Sum;
}

bool validateSweep(const JsonValue &V, std::string *Error) {
  const JsonValue &Cells = V.get("cells");
  if (Cells.kind() != JsonValue::Kind::Array)
    return fail(Error, "spf-sweep-v2: missing cells array");
  unsigned I = 0;
  for (const JsonValue &C : Cells.array()) {
    std::string Id = "cell " + std::to_string(I++) + " (" + cellId(C) + ")";
    for (const char *Key : {"group", "workload", "machine", "algorithm"})
      if (C.getString(Key).empty())
        return fail(Error, Id + ": missing " + Key);
    if (!C.has("cycles") || !C.has("site_stats_hash"))
      return fail(Error, Id + ": missing cycles/site_stats_hash");
    if (C.has("cycle_breakdown")) {
      // The tentpole invariant, checked end to end: every simulated
      // cycle charged to exactly one category.
      const JsonValue &B = C.get("cycle_breakdown");
      uint64_t Sum = sumCategories(B) + B.getU64("compute") +
                     B.getU64("gc_pause");
      if (Sum != B.getU64("total"))
        return fail(Error, Id + ": cycle_breakdown categories sum to " +
                               std::to_string(Sum) + ", total says " +
                               std::to_string(B.getU64("total")));
      if (C.getBool("ran") && Sum != C.getU64("cycles"))
        return fail(Error, Id + ": cycle_breakdown total " +
                               std::to_string(Sum) + " != cycles " +
                               std::to_string(C.getU64("cycles")));
      if (!C.has("timeline"))
        return fail(Error, Id + ": cycle_breakdown without timeline");
      const JsonValue &TL = C.get("timeline");
      if (TL.kind() != JsonValue::Kind::Array)
        return fail(Error, Id + ": timeline is not an array");
      uint64_t PrevEvent = 0, PrevCycles = 0;
      bool First = true;
      for (const JsonValue &S : TL.array()) {
        uint64_t Sum = sumCategories(S) + S.getU64("compute");
        if (Sum != S.getU64("cycles"))
          return fail(Error, Id + ": timeline sample at event " +
                                 std::to_string(S.getU64("event")) +
                                 " categories sum to " + std::to_string(Sum) +
                                 ", cycles says " +
                                 std::to_string(S.getU64("cycles")));
        if (!First && (S.getU64("event") < PrevEvent ||
                       S.getU64("cycles") < PrevCycles))
          return fail(Error, Id + ": timeline not monotone at event " +
                                 std::to_string(S.getU64("event")));
        PrevEvent = S.getU64("event");
        PrevCycles = S.getU64("cycles");
        First = false;
      }
      if (C.getBool("ran") && TL.array().empty())
        return fail(Error, Id + ": ran cell with empty timeline");
    }
  }
  return true;
}

bool validateThroughput(const JsonValue &V, std::string *Error) {
  const JsonValue &Modes = V.get("modes");
  if (Modes.kind() != JsonValue::Kind::Object)
    return fail(Error, "spf-bench-throughput-v1: missing modes object");
  for (const auto &KV : Modes.objectMembers())
    if (!KV.second.has("cells_per_sec"))
      return fail(Error, "mode " + KV.first + ": missing cells_per_sec");
  if (!V.get("speedup").has("batched_vs_per_event"))
    return fail(Error, "missing speedup.batched_vs_per_event");
  return true;
}

bool validateAdaptation(const JsonValue &V, std::string *Error) {
  const JsonValue &Vars = V.get("variants");
  if (Vars.kind() != JsonValue::Kind::Array)
    return fail(Error, "spf-bench-adaptation-v1: missing variants array");
  for (const JsonValue &Var : Vars.array()) {
    if (Var.getString("gc_variant").empty())
      return fail(Error, "variant missing gc_variant");
    const JsonValue &Ws = Var.get("workloads");
    if (Ws.kind() != JsonValue::Kind::Array)
      return fail(Error,
                  "variant " + Var.getString("gc_variant") +
                      ": missing workloads array");
    for (const JsonValue &W : Ws.array())
      if (W.getString("workload").empty() || !W.has("recovery"))
        return fail(Error, "variant " + Var.getString("gc_variant") +
                               ": workload entry missing workload/recovery");
  }
  return true;
}

} // namespace

DiffResult harness::diffReports(const JsonValue &Ref, const JsonValue &Got,
                                const DiffThresholds &T) {
  DiffResult Out;
  std::string RefSchema = Ref.getString("schema");
  std::string GotSchema = Got.getString("schema");
  if (RefSchema.empty() || GotSchema.empty()) {
    Out.Comparable = false;
    Out.Error = "missing schema key";
    return Out;
  }
  if (RefSchema != GotSchema) {
    Out.Comparable = false;
    Out.Error =
        "schema mismatch: baseline " + RefSchema + " vs fresh " + GotSchema;
    return Out;
  }
  Out.Schema = RefSchema;
  if (RefSchema == "spf-bench-throughput-v1")
    diffThroughput(Ref, Got, T, Out);
  else if (RefSchema == "spf-bench-adaptation-v1")
    diffAdaptation(Ref, Got, T, Out);
  else if (RefSchema == "spf-sweep-v2")
    diffSweep(Ref, Got, T, Out);
  else {
    Out.Comparable = false;
    Out.Error = "unknown schema: " + RefSchema;
  }
  return Out;
}

bool harness::validateReport(const JsonValue &V, std::string *Error) {
  std::string Schema = V.getString("schema");
  if (Schema == "spf-sweep-v2")
    return validateSweep(V, Error);
  if (Schema == "spf-bench-throughput-v1")
    return validateThroughput(V, Error);
  if (Schema == "spf-bench-adaptation-v1")
    return validateAdaptation(V, Error);
  return fail(Error, Schema.empty() ? "missing schema key"
                                    : "unknown schema: " + Schema);
}

bool harness::validatePromText(const std::string &Text, std::string *Error) {
  std::istringstream IS(Text);
  std::string Line;
  std::string HelpFor, TypeFor, TypeKind;
  std::set<std::string> Seen;
  unsigned LineNo = 0;
  while (std::getline(IS, Line)) {
    ++LineNo;
    std::string At = "line " + std::to_string(LineNo) + ": ";
    if (Line.empty())
      continue;
    if (Line.rfind("# HELP ", 0) == 0) {
      size_t Sp = Line.find(' ', 7);
      if (Sp == std::string::npos)
        return fail(Error, At + "malformed HELP line");
      HelpFor = Line.substr(7, Sp - 7);
      TypeFor.clear();
      continue;
    }
    if (Line.rfind("# TYPE ", 0) == 0) {
      size_t Sp = Line.find(' ', 7);
      if (Sp == std::string::npos)
        return fail(Error, At + "malformed TYPE line");
      TypeFor = Line.substr(7, Sp - 7);
      TypeKind = Line.substr(Sp + 1);
      if (TypeFor != HelpFor)
        return fail(Error, At + "TYPE for " + TypeFor +
                               " not preceded by its HELP line");
      continue;
    }
    if (Line[0] == '#')
      continue; // Other comments are legal.
    size_t Sp = Line.find(' ');
    if (Sp == std::string::npos)
      return fail(Error, At + "sample line without a value");
    // Metric name without the label set; histograms expose their
    // samples under the _bucket/_sum/_count suffixes of the TYPE name.
    std::string Name = Line.substr(0, std::min(Sp, Line.find('{')));
    bool Matches = Name == TypeFor;
    if (!Matches && TypeKind == "histogram")
      Matches = Name == TypeFor + "_bucket" || Name == TypeFor + "_sum" ||
                Name == TypeFor + "_count";
    if (!Matches)
      return fail(Error,
                  At + "sample " + Name + " not preceded by its TYPE line");
    if (TypeKind == "counter" &&
        (Name.size() < 6 || Name.compare(Name.size() - 6, 6, "_total") != 0))
      return fail(Error, At + "counter " + Name + " does not end in _total");
    if (!Seen.insert(Line.substr(0, Sp)).second)
      return fail(Error, At + "duplicate metric " + Line.substr(0, Sp));
  }
  return true;
}
