//===- harness/Subprocess.h - Spawn and reap one worker ---------*- C++ -*-===//
///
/// \file
/// Runs one supervised worker: fork + exec of the harness binary itself
/// with hard resource limits applied in the child, the result pipe on a
/// fixed fd, and a supervisor-side wall-clock deadline enforced with
/// SIGKILL. The outcome carries everything the supervisor needs to
/// classify the cell: captured pipe output, exit status or fatal signal,
/// and whether the deadline fired.
///
/// fork() is immediately followed by exec (self-exec, never bare fork):
/// the supervisor runs worker spawns from ThreadPool threads, and only
/// async-signal-safe calls are legal in a multithreaded parent's forked
/// child before exec.
///
//===----------------------------------------------------------------------===//

#ifndef SPF_HARNESS_SUBPROCESS_H
#define SPF_HARNESS_SUBPROCESS_H

#include "support/Process.h"

#include <functional>
#include <string>
#include <vector>

namespace spf {
namespace harness {

/// File descriptor the worker's result record arrives on. Fixed by the
/// protocol so the child can be exec'd without passing the fd number.
inline constexpr int WorkerResultFd = 3;

/// What happened to one spawned worker.
struct SpawnOutcome {
  bool SpawnFailed = false;   ///< pipe/fork/exec never got off the ground.
  std::string SpawnError;     ///< Why, when SpawnFailed.
  bool DeadlineKilled = false;///< Supervisor SIGKILLed past the deadline.
  /// Supervisor SIGKILLed because a shutdown was requested and the
  /// worker did not drain within the grace window. Distinct from
  /// DeadlineKilled: the worker did nothing wrong, the sweep is ending.
  bool ShutdownKilled = false;
  int ExitCode = -1;          ///< Exit status when the worker exited.
  int Signal = 0;             ///< Terminating signal, 0 if none.
  std::string Output;         ///< Everything read from the result pipe.
};

/// Graceful-shutdown hookup for one worker wait: \p Stop is polled at
/// the reap loop's granularity (~50ms); once it first returns true, the
/// worker gets \p GraceSec more seconds to finish and deliver its record
/// (drain), then its whole process group is SIGKILLed and the outcome is
/// marked ShutdownKilled.
struct StopPolicy {
  std::function<bool()> Stop;
  double GraceSec = 2.0;
};

/// Execs \p Argv (Argv[0] is the binary path) with \p Limits applied in
/// the child, stdout redirected to /dev/null (worker progress chatter
/// must not interleave with the supervisor's), stderr inherited, and the
/// result pipe on WorkerResultFd. Blocks until the worker exits, killing
/// it with SIGKILL once \p DeadlineSec of wall time elapse (0 = no
/// deadline). The pipe is drained concurrently with the wait, so records
/// larger than the kernel pipe buffer cannot deadlock the worker.
/// \p Stop (optional) bounds the wait by a shutdown request; see
/// StopPolicy.
SpawnOutcome runWorkerProcess(const std::vector<std::string> &Argv,
                              const support::WorkerLimits &Limits,
                              double DeadlineSec,
                              const StopPolicy *Stop = nullptr);

} // namespace harness
} // namespace spf

#endif // SPF_HARNESS_SUBPROCESS_H
