//===- harness/ThreadPool.cpp ---------------------------------------------===//

#include "harness/ThreadPool.h"

#include <cstdlib>

using namespace spf;
using namespace spf::harness;

ThreadPool::ThreadPool(unsigned ThreadCount) {
  if (ThreadCount == 0)
    ThreadCount = 1;
  Workers.reserve(ThreadCount);
  for (unsigned I = 0; I != ThreadCount; ++I)
    Workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() {
  wait();
  {
    std::lock_guard<std::mutex> Lock(QueueLock);
    Shutdown = true;
  }
  QueueCondition.notify_all();
  for (std::thread &W : Workers)
    W.join();
}

void ThreadPool::async(std::function<void()> Task) {
  {
    std::lock_guard<std::mutex> Lock(QueueLock);
    Tasks.push_back(std::move(Task));
  }
  QueueCondition.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock<std::mutex> Lock(QueueLock);
  CompletionCondition.wait(
      Lock, [this] { return Tasks.empty() && ActiveTasks == 0; });
}

namespace {

/// Retires one task on destruction — on the normal path *and* when the
/// task throws. Without this, an escaping exception would leak the
/// ActiveTasks increment and wait() would block forever.
template <typename Fn> struct TaskCompletion {
  Fn F;
  ~TaskCompletion() { F(); }
};
template <typename Fn> TaskCompletion(Fn) -> TaskCompletion<Fn>;

} // namespace

void ThreadPool::retireTask() {
  std::lock_guard<std::mutex> Lock(QueueLock);
  --ActiveTasks;
  if (Tasks.empty() && ActiveTasks == 0)
    CompletionCondition.notify_all();
}

void ThreadPool::workerLoop() {
  for (;;) {
    std::function<void()> Task;
    {
      std::unique_lock<std::mutex> Lock(QueueLock);
      QueueCondition.wait(Lock,
                          [this] { return Shutdown || !Tasks.empty(); });
      if (Tasks.empty())
        return; // Shutdown with a drained queue.
      Task = std::move(Tasks.front());
      Tasks.pop_front();
      ++ActiveTasks;
    }
    TaskCompletion Completion{[this] { retireTask(); }};
    try {
      Task();
    } catch (...) {
      // A throwing task must not take the worker (and with it the whole
      // pool) down; record it and move on to the next task.
      UncaughtExceptions.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

unsigned harness::defaultJobs() {
  if (const char *S = std::getenv("SPF_JOBS")) {
    long V = std::atol(S);
    if (V > 0)
      return static_cast<unsigned>(V);
  }
  unsigned HW = std::thread::hardware_concurrency();
  return HW ? HW : 1;
}
