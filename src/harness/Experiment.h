//===- harness/Experiment.h - Parallel experiment driver --------*- C++ -*-===//
///
/// \file
/// The experiment layer behind every figure/ablation binary: a sweep
/// (workloads x algorithms x machine configs x scale) expands into
/// independent cells, each of which owns a private Heap / Interpreter /
/// MemorySystem via workloads::runWorkload. Cells run concurrently on a
/// fixed-size ThreadPool and are aggregated deterministically in plan
/// order, so results are bit-identical to a serial run regardless of the
/// worker count (see tests/harness_test.cpp).
///
/// Correctness checking is part of the driver: a cell whose workload
/// self-check fails, or whose return value differs from the baseline
/// cell it is checked against, is recorded as a failure — binaries turn
/// that into a nonzero exit code instead of a stderr-only warning.
///
//===----------------------------------------------------------------------===//

#ifndef SPF_HARNESS_EXPERIMENT_H
#define SPF_HARNESS_EXPERIMENT_H

#include "harness/TraceCache.h"
#include "workloads/Runner.h"

#include <functional>
#include <optional>
#include <string>

namespace spf {
namespace harness {

/// Which prefetch sources a cell enables — the cross of the paper's
/// software pass (compile-time) and the machine's hardware prefetcher
/// (run-time). Unset marks cells from the classic algorithm sweep, which
/// predates this facet; such cells report no prefetch_mode key.
enum class PrefetchSources {
  Unset,    ///< Classic sweep cell: facet not part of the experiment.
  None,     ///< Baseline compile, hardware prefetcher off.
  SwOnly,   ///< INTER+INTRA compile, hardware prefetcher off.
  HwOnly,   ///< Baseline compile, hardware prefetcher on.
  Combined, ///< INTER+INTRA compile, hardware prefetcher on.
};

/// Stable lowercase name ("none", "sw", "hw", "combined"; "" for Unset).
const char *prefetchSourcesName(PrefetchSources S);
/// Inverse of prefetchSourcesName; nullopt for unknown strings.
std::optional<PrefetchSources> parsePrefetchSources(const std::string &S);

/// One independent unit of work: one workload on one machine under one
/// algorithm (plus optional pass tuning), tagged with the experiment
/// group it belongs to (e.g. "p4", "athlon", "ablation:c=4").
struct ExperimentCell {
  std::string Group;
  const workloads::WorkloadSpec *Spec = nullptr;
  workloads::RunOptions Opt;
  /// Index of a cell (typically this workload's BASELINE run) whose
  /// return value this cell's must equal; checked after the sweep.
  std::optional<unsigned> CheckAgainst;
  /// The prefetch-source facet this cell represents (addModeSweep cells
  /// only). When set, Opt.Algo and Opt.Machine.HwPrefetchEnabled are
  /// derived from it and the report carries prefetch_mode/hw_prefetch.
  PrefetchSources Mode = PrefetchSources::Unset;
};

/// Result of one cell, in plan order.
struct CellResult {
  workloads::RunResult Run;
  /// The cell produced a result. False when the cell was never executed
  /// or every attempt failed (see Failed/TimedOut/Transient).
  bool Ran = false;
  /// The cell's last attempt ended in an exception that is not an
  /// injected transient fault (a real correctness problem).
  bool Failed = false;
  /// The cell hit its wall-clock deadline (SPF_CELL_TIMEOUT).
  bool TimedOut = false;
  /// Every attempt ended in an injected transient fault (chaos testing);
  /// expected under fault injection, so not a Failure.
  bool Transient = false;
  /// Supervised mode only: the worker process died without delivering a
  /// result (fatal signal, nonzero exit, rlimit kill). Contained, so not
  /// a Failure — the crash is quarantined with Signal/ExitStatus below.
  bool Crashed = false;
  /// Supervised mode only: the worker blew past the supervisor's hard
  /// wall-clock deadline and was SIGKILLed. Unlike a cooperative timeout
  /// this means even the watchdog never ran — treated as a Failure.
  bool DeadlineKilled = false;
  /// The cell was never admitted (or its worker was reaped early)
  /// because the sweep was interrupted — a shutdown signal, the global
  /// sweep deadline, or an external stop. Not a Failure: the cell is not
  /// journaled, so --resume runs it.
  bool Skipped = false;
  /// Execution attempts made (>1 means transient faults were retried).
  unsigned Attempts = 0;
  /// Terminating signal of the last worker attempt (0 = none).
  int Signal = 0;
  /// Exit status of the last worker attempt (-1 = did not exit).
  int ExitStatus = -1;
  /// what() of the exception that ended the last attempt, if any.
  std::string Error;
  /// Streaming aggregation folded this cell (see StreamOptions): the
  /// heavy per-cell payloads (Run.Sites, Run.Decisions, per-loop
  /// reports) were reduced to the two values the report needs and freed.
  bool SitesFolded = false;
  uint64_t FoldedSiteCount = 0;  ///< Run.Sites.size() before folding.
  std::string FoldedSiteHash;    ///< siteStatsHash before folding.
  /// Top-K load sites by stall cycles, precomputed before streaming
  /// aggregation frees Run.Sites (timeline cells only — the report's
  /// top_sites key). (SiteId, stats) pairs, descending StallCycles.
  std::vector<std::pair<uint32_t, sim::SiteStats>> TopSites;
};

/// One quarantined cell in the final report: a cell that was retried,
/// timed out, or gave up — kept out of the aggregates either way.
struct QuarantineRecord {
  unsigned CellIndex = 0;
  std::string Tag;  ///< "workload [ALGO, machine]" as in Failures.
  /// "retried" | "faulted" | "timeout" | "error" | "crashed" |
  /// "skipped" (sweep interrupted before the cell could run).
  std::string Kind;
  unsigned Attempts = 0;
  int Signal = 0;      ///< Worker's terminating signal ("crashed" only).
  int ExitStatus = -1; ///< Worker's exit status ("crashed" only).
  std::string Error;
};

/// An ordered list of cells. Order is significant: it is the aggregation
/// and report order, and CheckAgainst indices refer into it.
class ExperimentPlan {
public:
  /// Appends one cell; returns its index.
  unsigned add(ExperimentCell Cell);

  /// Expands the classic sweep: for each machine, for each workload, for
  /// each algorithm — one cell. When \p CheckReturnValues is true and
  /// Algorithm::Baseline is part of \p Algos, every non-baseline cell is
  /// checked against its workload's baseline on the same machine.
  /// Returns the indices of the new cells in expansion order.
  std::vector<unsigned>
  addSweep(const std::vector<const workloads::WorkloadSpec *> &Specs,
           const std::vector<workloads::Algorithm> &Algos,
           const std::vector<sim::MachineConfig> &Machines,
           const workloads::WorkloadConfig &Config,
           const std::string &Group = "", bool CheckReturnValues = true);

  /// Expands a prefetch-source sweep: for each machine, for each
  /// workload, one cell per mode in \p Modes. Each cell's algorithm and
  /// hardware-prefetcher enable are derived from the mode (None =
  /// baseline compile + hw off, Combined = INTER+INTRA + hw on, ...);
  /// the machine's configured prefetcher *kind* is untouched. When
  /// \p CheckReturnValues is true and None is among the modes, every
  /// other cell is checked against its workload's None cell.
  std::vector<unsigned>
  addModeSweep(const std::vector<const workloads::WorkloadSpec *> &Specs,
               const std::vector<PrefetchSources> &Modes,
               const std::vector<sim::MachineConfig> &Machines,
               const workloads::WorkloadConfig &Config,
               const std::string &Group = "", bool CheckReturnValues = true);

  const std::vector<ExperimentCell> &cells() const { return Cells; }
  /// Mutable access, for callers that season already-planned cells with
  /// run options the add/addSweep helpers do not know about (epochs, GC
  /// variant, governor).
  std::vector<ExperimentCell> &cells() { return Cells; }
  size_t size() const { return Cells.size(); }
  bool empty() const { return Cells.empty(); }

private:
  std::vector<ExperimentCell> Cells;
};

/// Record-once / replay-many configuration for a plan. With tracing
/// enabled, cells that share an execution signature interpret once and
/// replay the recorded access stream through every other timing variant
/// (bit-identical stats, a fraction of the time). Tracing silently
/// disables itself when fault injection is active (SPF_FAULTS): chaos
/// must keep exercising the real interpret path, and injected faults
/// make recordings non-reusable.
struct TraceOptions {
  /// Master switch (bench: --no-trace-reuse clears it).
  bool Enabled = true;
  /// In-memory byte budget for cached traces; 0 disables tracing.
  /// Defaults from SPF_TRACE_MB (see TraceCache::budgetFromEnv).
  size_t BudgetBytes = TraceCache::budgetFromEnv();
  /// Optional spill directory for evicted traces (bench: --trace-dir).
  std::string SpillDir;
};

/// Out-of-process cell isolation. With Enabled, every cell attempt runs
/// in a freshly exec'd worker process (WorkerCommand builds its argv;
/// benches wire this to their own binary plus the hidden --run-cell
/// protocol — see harness/Supervisor.h) under hard rlimit caps. The
/// supervisor classifies worker deaths from the wait status, so crashes
/// and wedges are contained per cell instead of killing the sweep.
struct IsolateOptions {
  bool Enabled = false;
  /// RLIMIT_AS cap per worker, in MiB (0 = no cap). Benches default it
  /// from SPF_CELL_MEM_MB / --cell-mem-mb.
  uint64_t CellMemMb = 0;
  /// Builds the worker argv for one (cell, attempt). Required when
  /// Enabled; argv[0] is the binary to exec.
  std::function<std::vector<std::string>(unsigned Cell, unsigned Attempt)>
      WorkerCommand;
};

/// Durable run journal (crash-resumable sweeps). With a Path, every
/// finished cell is appended as one fsync'd JSON line; with Resume, a
/// prior journal for the same plan (hash-checked) is loaded first and
/// its cells are grafted instead of re-executed. See harness/Journal.h.
struct JournalOptions {
  std::string Path; ///< Empty = no journal.
  bool Resume = false;
};

/// Resource governance for one plan run: graceful shutdown and the
/// global sweep deadline. All stop sources funnel into one path — stop
/// admitting cells, give in-flight supervised workers a grace window
/// (SPF_SHUTDOWN_GRACE_S) then group-SIGKILL them, flush the journal,
/// and return a partial result marked Interrupted. Unfinished cells are
/// quarantined as "skipped" and never journaled, so a later --resume of
/// the same journal completes the sweep.
struct GovernorOptions {
  /// Honor the process-wide shutdown latch (support/Shutdown.h); the
  /// bench layer arms SIGTERM/SIGINT handlers in supervisor processes.
  bool Graceful = false;
  /// Wall-clock budget for the whole runPlan call, in seconds (0 =
  /// none). Benches wire --sweep-deadline / SPF_SWEEP_DEADLINE_S here.
  double SweepDeadlineSec = 0.0;
  /// Extra stop source, polled between cells and attempts. Tests use it
  /// to interrupt deterministically after N cells; null = none.
  std::function<bool()> ExternalStop;
};

/// Streaming aggregation: keeps peak resident cells at O(jobs) instead
/// of O(plan). Cells are admitted through a bounded in-flight window and
/// retired strictly in plan order; at retirement a cell's full record is
/// optionally written to a JSONL stream, then its heavy payloads
/// (per-site stats, decision events) are folded into the scalars the
/// report needs and freed. The final JSON report is bit-identical to the
/// in-memory path (tests/stream_test.cpp pins this).
struct StreamOptions {
  bool Enabled = false;
  /// Optional JSONL destination ("--cells-out"): one journal-format line
  /// per cell, written at in-order retirement. Empty = fold only.
  std::string CellsOutPath;
};

/// Full configuration for one runPlan call.
struct RunPlanOptions {
  TraceOptions Trace;
  IsolateOptions Isolate;
  JournalOptions Journal;
  GovernorOptions Governor;
  StreamOptions Stream;
};

/// All cell results plus the driver's correctness verdicts.
struct ExperimentResult {
  std::vector<CellResult> Cells; ///< Parallel to the plan, plan order.
  /// Human-readable failure lines (self-check failures, baseline
  /// mismatches, timeouts, and non-transient cell errors), in plan order.
  std::vector<std::string> Failures;
  /// Cells that needed retries or never produced a result, in plan
  /// order. Purely-transient quarantines (injected chaos) are not
  /// Failures; timeouts and real errors appear in both lists.
  std::vector<QuarantineRecord> Quarantine;

  /// Whether trace reuse was actually active for this plan (requested,
  /// budget > 0, and no fault injection), plus the cache's counters.
  bool TraceEnabled = false;
  TraceCacheStats Trace;
  size_t TraceBytesInUse = 0;
  size_t TraceBudgetBytes = 0;

  /// Whether cells ran in supervised worker processes.
  bool Isolated = false;
  /// Journal bookkeeping: active path (empty = off), cells grafted from
  /// a resumed journal, cells appended by this run.
  std::string JournalPath;
  unsigned JournalGrafted = 0;
  unsigned JournalAppended = 0;
  /// Journal durability degradations (see RunJournal): records dropped
  /// after the append retry, and fsyncs that failed. Degraded journals
  /// are still resumable; dropped cells simply re-run.
  bool JournalDegraded = false;
  uint64_t JournalAppendFailures = 0;
  uint64_t JournalSyncFailures = 0;

  /// The run stopped early (signal, sweep deadline, or external stop).
  /// The result is a valid partial sweep: finished cells are real,
  /// unfinished ones are quarantined "skipped" and re-run on --resume.
  bool Interrupted = false;
  std::string InterruptReason; ///< e.g. "signal 15", "sweep deadline".
  unsigned CellsSkipped = 0;

  /// Streaming bookkeeping: records written to the --cells-out stream,
  /// and the high-water mark of completed-but-unretired + in-flight
  /// cells (O(jobs) when streaming, == plan size otherwise).
  uint64_t CellsStreamed = 0;
  uint64_t PeakResidentCells = 0;

  bool ok() const { return Failures.empty(); }
  const workloads::RunResult &run(unsigned Index) const {
    return Cells[Index].Run;
  }
};

/// Runs every cell of \p Plan on \p Jobs workers (1 = fully serial, no
/// threads spawned) and returns results in plan order. Jobs of 0 means
/// defaultJobs().
///
/// Failure containment: each cell runs under a per-cell wall-clock
/// watchdog (SPF_CELL_TIMEOUT seconds; unset/0 = off) and, when
/// SPF_FAULTS is set, a per-(cell, attempt) seeded fault injector.
/// Injected transient faults are retried a bounded number of times;
/// cells that still fail are quarantined. Results stay bit-identical to
/// a serial run for any worker count: injector streams are derived from
/// plan index and attempt number, never from scheduling.
ExperimentResult runPlan(const ExperimentPlan &Plan, unsigned Jobs = 0);

/// As above, with explicit record-once / replay-many configuration. The
/// default overload uses TraceOptions{} (reuse on, budget from
/// SPF_TRACE_MB). Trace reuse never changes reported statistics: a
/// replayed cell's MemoryStats, per-site stats, and cycles are
/// bit-identical to direct interpretation (tests/trace_test.cpp), so
/// results remain independent of worker count and cache state; only the
/// wall-clock bookkeeping fields (Replayed, InterpretUs, ReplayUs)
/// depend on which cell happened to record first.
ExperimentResult runPlan(const ExperimentPlan &Plan, unsigned Jobs,
                         const TraceOptions &Trace);

/// The full-configuration overload: trace reuse, out-of-process
/// isolation, and the durable journal. Supervised per-cell statistics
/// are bit-identical to in-process runs for every cell (the worker path
/// mirrors the attempt semantics exactly; locked by tests/isolate_test);
/// a resumed journaled run reproduces the uninterrupted run's normalized
/// report byte-for-byte without re-running completed cells.
ExperimentResult runPlan(const ExperimentPlan &Plan, unsigned Jobs,
                         const RunPlanOptions &Opts);

/// Writes the machine-readable report for a finished plan: metadata plus
/// one record per cell with the simulator statistics the figures use.
/// Format documented in DESIGN.md ("JSON report").
void writeJsonReport(std::ostream &OS, const ExperimentPlan &Plan,
                     const ExperimentResult &Result, double Scale,
                     unsigned Jobs);

} // namespace harness
} // namespace spf

#endif // SPF_HARNESS_EXPERIMENT_H
