//===- harness/JsonReader.cpp ---------------------------------------------===//

#include "harness/JsonReader.h"

#include <cctype>
#include <cstdlib>

using namespace spf;
using namespace spf::harness;

const JsonValue &JsonValue::get(const std::string &Key) const {
  static const JsonValue Null;
  auto It = Obj.find(Key);
  return It == Obj.end() ? Null : It->second;
}

uint64_t JsonValue::getU64(const std::string &Key, uint64_t Default) const {
  const JsonValue &V = get(Key);
  if (V.K != Kind::Number)
    return Default;
  return V.IsUnsigned ? V.U64 : static_cast<uint64_t>(V.Num);
}

int64_t JsonValue::getI64(const std::string &Key, int64_t Default) const {
  const JsonValue &V = get(Key);
  if (V.K != Kind::Number)
    return Default;
  if (V.IsUnsigned)
    return static_cast<int64_t>(V.U64);
  return static_cast<int64_t>(V.Num);
}

double JsonValue::getDouble(const std::string &Key, double Default) const {
  const JsonValue &V = get(Key);
  return V.K == Kind::Number ? V.Num : Default;
}

bool JsonValue::getBool(const std::string &Key, bool Default) const {
  const JsonValue &V = get(Key);
  return V.K == Kind::Bool ? V.B : Default;
}

std::string JsonValue::getString(const std::string &Key,
                                 const std::string &Default) const {
  const JsonValue &V = get(Key);
  return V.K == Kind::String ? V.Str : Default;
}

namespace spf {
namespace harness {

class JsonParser {
public:
  JsonParser(const std::string &Text, std::string *Error)
      : S(Text), Err(Error) {}

  std::unique_ptr<JsonValue> run() {
    auto V = std::make_unique<JsonValue>();
    if (!parseValue(*V))
      return nullptr;
    skipWs();
    if (Pos != S.size())
      return fail("trailing garbage"), nullptr;
    return V;
  }

private:
  void fail(const std::string &Why) {
    if (Err && Err->empty())
      *Err = Why + " at offset " + std::to_string(Pos);
  }

  void skipWs() {
    while (Pos < S.size() && (S[Pos] == ' ' || S[Pos] == '\t' ||
                              S[Pos] == '\n' || S[Pos] == '\r'))
      ++Pos;
  }

  bool consume(char C) {
    skipWs();
    if (Pos < S.size() && S[Pos] == C) {
      ++Pos;
      return true;
    }
    return false;
  }

  bool literal(const char *Lit) {
    size_t N = 0;
    while (Lit[N])
      ++N;
    if (S.compare(Pos, N, Lit) != 0)
      return false;
    Pos += N;
    return true;
  }

  bool parseValue(JsonValue &V) {
    skipWs();
    if (Pos >= S.size())
      return fail("unexpected end of input"), false;
    char C = S[Pos];
    if (C == '{')
      return parseObject(V);
    if (C == '[')
      return parseArray(V);
    if (C == '"')
      return parseString(V);
    if (C == 't') {
      if (!literal("true"))
        return fail("bad literal"), false;
      V.K = JsonValue::Kind::Bool;
      V.B = true;
      return true;
    }
    if (C == 'f') {
      if (!literal("false"))
        return fail("bad literal"), false;
      V.K = JsonValue::Kind::Bool;
      V.B = false;
      return true;
    }
    if (C == 'n') {
      if (!literal("null"))
        return fail("bad literal"), false;
      V.K = JsonValue::Kind::Null;
      return true;
    }
    return parseNumber(V);
  }

  bool parseObject(JsonValue &V) {
    ++Pos; // '{'
    V.K = JsonValue::Kind::Object;
    skipWs();
    if (consume('}'))
      return true;
    while (true) {
      skipWs();
      JsonValue Key;
      if (Pos >= S.size() || S[Pos] != '"' || !parseString(Key))
        return fail("expected object key"), false;
      if (!consume(':'))
        return fail("expected ':'"), false;
      JsonValue Member;
      if (!parseValue(Member))
        return false;
      V.Obj.emplace(std::move(Key.Str), std::move(Member));
      if (consume(','))
        continue;
      if (consume('}'))
        return true;
      return fail("expected ',' or '}'"), false;
    }
  }

  bool parseArray(JsonValue &V) {
    ++Pos; // '['
    V.K = JsonValue::Kind::Array;
    skipWs();
    if (consume(']'))
      return true;
    while (true) {
      JsonValue Elem;
      if (!parseValue(Elem))
        return false;
      V.Arr.push_back(std::move(Elem));
      if (consume(','))
        continue;
      if (consume(']'))
        return true;
      return fail("expected ',' or ']'"), false;
    }
  }

  bool parseString(JsonValue &V) {
    ++Pos; // '"'
    V.K = JsonValue::Kind::String;
    std::string &Out = V.Str;
    while (Pos < S.size()) {
      char C = S[Pos++];
      if (C == '"')
        return true;
      if (C != '\\') {
        Out.push_back(C);
        continue;
      }
      if (Pos >= S.size())
        break;
      char E = S[Pos++];
      switch (E) {
      case '"': Out.push_back('"'); break;
      case '\\': Out.push_back('\\'); break;
      case '/': Out.push_back('/'); break;
      case 'b': Out.push_back('\b'); break;
      case 'f': Out.push_back('\f'); break;
      case 'n': Out.push_back('\n'); break;
      case 'r': Out.push_back('\r'); break;
      case 't': Out.push_back('\t'); break;
      case 'u': {
        if (Pos + 4 > S.size())
          return fail("bad \\u escape"), false;
        unsigned Code = 0;
        for (int I = 0; I != 4; ++I) {
          char H = S[Pos++];
          Code <<= 4;
          if (H >= '0' && H <= '9')
            Code |= static_cast<unsigned>(H - '0');
          else if (H >= 'a' && H <= 'f')
            Code |= static_cast<unsigned>(H - 'a' + 10);
          else if (H >= 'A' && H <= 'F')
            Code |= static_cast<unsigned>(H - 'A' + 10);
          else
            return fail("bad \\u escape"), false;
        }
        // JsonWriter only escapes control chars this way; encode the
        // general case as UTF-8 anyway.
        if (Code < 0x80) {
          Out.push_back(static_cast<char>(Code));
        } else if (Code < 0x800) {
          Out.push_back(static_cast<char>(0xC0 | (Code >> 6)));
          Out.push_back(static_cast<char>(0x80 | (Code & 0x3F)));
        } else {
          Out.push_back(static_cast<char>(0xE0 | (Code >> 12)));
          Out.push_back(static_cast<char>(0x80 | ((Code >> 6) & 0x3F)));
          Out.push_back(static_cast<char>(0x80 | (Code & 0x3F)));
        }
        break;
      }
      default:
        return fail("bad escape"), false;
      }
    }
    return fail("unterminated string"), false;
  }

  bool parseNumber(JsonValue &V) {
    size_t Start = Pos;
    if (Pos < S.size() && S[Pos] == '-')
      ++Pos;
    bool IntOnly = true;
    while (Pos < S.size()) {
      char C = S[Pos];
      if (std::isdigit(static_cast<unsigned char>(C))) {
        ++Pos;
      } else if (C == '.' || C == 'e' || C == 'E' || C == '+' || C == '-') {
        IntOnly = false;
        ++Pos;
      } else {
        break;
      }
    }
    if (Pos == Start)
      return fail("expected value"), false;
    std::string Tok = S.substr(Start, Pos - Start);
    char *End = nullptr;
    V.K = JsonValue::Kind::Number;
    V.Num = std::strtod(Tok.c_str(), &End);
    if (End != Tok.c_str() + Tok.size())
      return fail("bad number"), false;
    if (IntOnly && Tok[0] != '-') {
      V.U64 = std::strtoull(Tok.c_str(), nullptr, 10);
      V.IsUnsigned = true;
    }
    return true;
  }

  const std::string &S;
  std::string *Err;
  size_t Pos = 0;
};

} // namespace harness
} // namespace spf

std::unique_ptr<JsonValue> JsonValue::parse(const std::string &Text,
                                            std::string *Error) {
  JsonParser P(Text, Error);
  return P.run();
}
