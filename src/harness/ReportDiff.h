//===- harness/ReportDiff.h - Report validation and regression diff -*- C++ -*-===//
///
/// \file
/// The one comparator behind every report-level regression gate: the
/// `spf-report` CLI (tools/spf-report.cpp), the CI throughput and
/// adaptation checks, and `bench/adaptation --check-against` all route
/// through diffReports, so a threshold changed here changes every gate
/// at once.
///
/// Three schemas are understood, dispatched on the reports' "schema"
/// key (both sides must agree):
///  - spf-bench-throughput-v1: per-mode cells/sec; a configurable
///    fractional drop on the batched mode, or a batched-vs-per-event
///    speedup below the floor, is a regression.
///  - spf-bench-adaptation-v1: per-variant/per-workload recovery; an
///    absolute recovery drop beyond the threshold is a regression.
///  - spf-sweep-v2: per-cell simulated cycles, matched by
///    (group, workload, machine, algorithm, prefetch_mode); a
///    fractional cycle increase beyond the threshold is a regression.
///
/// Extra keys on either side are tolerated everywhere (checked-in
/// baselines carry hand-written provenance notes), and cells/modes
/// present on only one side are reported but never regressions —
/// growing a sweep must not fail the gate.
///
//===----------------------------------------------------------------------===//

#ifndef SPF_HARNESS_REPORTDIFF_H
#define SPF_HARNESS_REPORTDIFF_H

#include "harness/JsonReader.h"

#include <string>
#include <vector>

namespace spf {
namespace harness {

/// Regression thresholds; every gate knob of the CLI maps onto one
/// field. Defaults reproduce the historic CI gates.
struct DiffThresholds {
  /// spf-bench-throughput-v1: fractional cells/sec drop on the batched
  /// mode that counts as a regression (0.20 = fail below 80% of ref).
  double ThroughputDropFrac = 0.20;
  /// spf-bench-throughput-v1: floor on speedup.batched_vs_per_event.
  double MinBatchedSpeedup = 1.0;
  /// spf-bench-adaptation-v1: absolute recovery drop (recovery is a
  /// 0..1 fraction) that counts as a regression.
  double RecoveryDrop = 0.20;
  /// spf-sweep-v2: fractional per-cell cycle increase that counts as a
  /// regression. Simulated cycles are deterministic, so the default is
  /// tight; any nonzero delta is still reported as informational.
  double CyclesIncreaseFrac = 0.02;
};

/// One compared quantity. Regression=true means the threshold tripped;
/// false findings are informational (improvements, one-sided entries).
struct DiffFinding {
  std::string Where;  ///< e.g. "modes.batched.cells_per_sec".
  double Ref = 0.0;
  double Got = 0.0;
  bool Regression = false;
  std::string Detail; ///< Human-readable one-liner.
};

struct DiffResult {
  /// Set when the reports could not be compared at all (missing or
  /// mismatched schema); Error explains.
  bool Comparable = true;
  std::string Error;
  std::string Schema; ///< The common schema when Comparable.
  std::vector<DiffFinding> Findings;
  bool regressed() const {
    if (!Comparable)
      return true;
    for (const DiffFinding &F : Findings)
      if (F.Regression)
        return true;
    return false;
  }
};

/// Diffs \p Got (the fresh run) against \p Ref (the checked-in
/// baseline) under \p T. Never throws; uncomparable inputs come back
/// with Comparable=false (which regressed() treats as a failure).
DiffResult diffReports(const JsonValue &Ref, const JsonValue &Got,
                       const DiffThresholds &T);

/// Structural validation of one report: recognized schema, required
/// keys present, and — for spf-sweep-v2 cells carrying a
/// cycle_breakdown — the attribution invariant (categories sum to the
/// cell's cycles, timeline samples monotone and internally consistent).
/// Returns false and sets \p Error on the first violation.
bool validateReport(const JsonValue &V, std::string *Error);

/// Validation of Prometheus text-format output (obs::StatRegistry
/// writeProm): every sample line preceded by its # HELP and # TYPE
/// lines, counter names ending in _total, no duplicate metric names.
bool validatePromText(const std::string &Text, std::string *Error);

} // namespace harness
} // namespace spf

#endif // SPF_HARNESS_REPORTDIFF_H
