//===- harness/Supervisor.cpp ---------------------------------------------===//

#include "harness/Supervisor.h"

#include "harness/Journal.h"
#include "harness/JsonWriter.h"
#include "harness/Subprocess.h"
#include "obs/Tracer.h"
#include "support/Env.h"
#include "support/FaultInjection.h"
#include "support/Process.h"
#include "support/Status.h"

#include <cstdlib>
#include <sstream>

using namespace spf;
using namespace spf::harness;

double harness::cellTimeoutSeconds() {
  return support::envDouble("SPF_CELL_TIMEOUT", 0.0, 0.0);
}

uint64_t harness::cellMemMbFromEnv() {
  return support::envU64("SPF_CELL_MEM_MB", 0);
}

namespace {

unsigned parseWorkerUnsigned(const char *Flag, const char *S) {
  char *End = nullptr;
  unsigned long V = std::strtoul(S, &End, 10);
  if (End == S || *End != '\0')
    support::envConfigError(Flag, S, "expected an unsigned integer");
  return static_cast<unsigned>(V);
}

} // namespace

std::optional<WorkerRequest> harness::parseWorkerRequest(int Argc,
                                                         char **Argv) {
  WorkerRequest Req;
  bool Found = false;
  for (int I = 1; I < Argc; ++I) {
    std::string A = Argv[I];
    auto NextValue = [&](const char *Flag) -> const char * {
      if (I + 1 >= Argc)
        support::envConfigError(Flag, "", "missing value");
      return Argv[++I];
    };
    if (A == "--run-cell") {
      std::string V = NextValue("--run-cell");
      size_t Colon = V.find(':');
      if (Colon == std::string::npos)
        support::envConfigError("--run-cell", V.c_str(),
                                "expected PLANSEQ:CELL");
      Req.PlanSeq =
          parseWorkerUnsigned("--run-cell", V.substr(0, Colon).c_str());
      Req.Cell =
          parseWorkerUnsigned("--run-cell", V.substr(Colon + 1).c_str());
      Found = true;
    } else if (A == "--cell-attempt") {
      Req.Attempt =
          parseWorkerUnsigned("--cell-attempt", NextValue("--cell-attempt"));
    } else if (A == "--result-fd") {
      Req.ResultFd = static_cast<int>(
          parseWorkerUnsigned("--result-fd", NextValue("--result-fd")));
    }
  }
  if (!Found)
    return std::nullopt;
  return Req;
}

std::vector<std::string> harness::workerArgv(const std::string &SelfPath,
                                             int Argc, char **Argv,
                                             unsigned PlanSeq, unsigned Cell,
                                             unsigned Attempt) {
  std::vector<std::string> Out;
  Out.reserve(static_cast<size_t>(Argc) + 6);
  Out.push_back(SelfPath);
  for (int I = 1; I < Argc; ++I)
    Out.push_back(Argv[I]);
  Out.push_back("--run-cell");
  Out.push_back(std::to_string(PlanSeq) + ":" + std::to_string(Cell));
  Out.push_back("--cell-attempt");
  Out.push_back(std::to_string(Attempt));
  Out.push_back("--result-fd");
  Out.push_back(std::to_string(WorkerResultFd));
  return Out;
}

void harness::runCellWorker(const ExperimentPlan &Plan,
                            const WorkerRequest &Req,
                            const TraceOptions &Trace) {
  CellResult Cell;
  obs::Span WorkerSpan("worker-cell", "harness");
  WorkerSpan.noteU64("cell", Req.Cell);
  WorkerSpan.noteU64("attempt", Req.Attempt);
  if (Req.Cell >= Plan.size()) {
    Cell.Failed = true;
    Cell.Error = "worker cell index out of range";
  } else {
    const support::FaultConfig Faults = support::FaultConfig::fromEnv();
    const ExperimentCell &C = Plan.cells()[Req.Cell];
    workloads::RunOptions Opt = C.Opt;
    Opt.TimeoutSeconds = cellTimeoutSeconds();

    // A worker-local cache front for the shared spill directory: with
    // --trace-dir every recording is written through to disk, so sibling
    // workers (and resumed runs) replay instead of re-interpreting. No
    // spill dir means no cross-process channel — skip tracing entirely.
    // Disk-only chaos keeps tracing on (it exists to exercise exactly
    // these spill writes); any execution site disables it, as in-process.
    const bool UseTrace = Trace.Enabled && Trace.BudgetBytes > 0 &&
                          !Trace.SpillDir.empty() &&
                          !Faults.anyExecutionSiteEnabled();
    std::optional<TraceCache> Cache;
    if (UseTrace)
      Cache.emplace(Trace.BudgetBytes, Trace.SpillDir);
    const std::string Sig = UseTrace
                                ? workloads::executionSignature(*C.Spec, Opt)
                                : std::string();

    Cell.Attempts = 1;
    // Identical salt to the in-process attempt loop: supervised chaos
    // fires at exactly the same points as in-process chaos.
    support::FaultInjector Injector(
        Faults, (uint64_t(Req.Cell) << 8) | uint64_t(Req.Attempt));
    support::FaultScope Scope(Injector);
    support::maybeInjectCrash(); // The only armed `crash` site.
    try {
      if (SPF_FAULT_POINT(support::FaultSite::CellExec))
        throw support::TransientFault("injected cell fault");
      bool Replayed = false;
      if (!Sig.empty()) {
        if (auto E = Cache->lookup(Sig)) {
          Cell.Run = workloads::replayTrace(E->ExecSide, E->Buf, Opt.Machine,
                                            Opt.TimelineEvery);
          Replayed = true;
        }
      }
      if (!Replayed) {
        if (!Sig.empty()) {
          trace::TraceBuffer Buf;
          Buf.setByteCap(Trace.BudgetBytes);
          Opt.Record = &Buf;
          Opt.ReserveEvents = Cache->reservedEvents(C.Spec->Name);
          Cell.Run = workloads::runWorkload(*C.Spec, Opt);
          Opt.Record = nullptr;
          if (!Buf.overflowed())
            Cache->insert(Sig, std::move(Buf), Cell.Run);
        } else {
          Cell.Run = workloads::runWorkload(*C.Spec, Opt);
        }
      }
      Cell.Ran = true;
    } catch (const support::TransientFault &E) {
      Cell.Transient = true;
      Cell.Error = E.what();
    } catch (const support::CellTimeout &E) {
      Cell.TimedOut = true;
      Cell.Error = E.what();
    } catch (const std::exception &E) {
      Cell.Failed = true;
      Cell.Error = E.what();
    }
  }

  WorkerSpan.end();

  std::ostringstream OS;
  JsonWriter J(OS);
  J.beginObject();
  J.key("worker").value("spf-cell-v1");
  J.key("record");
  writeCellRecordJson(J, Cell);
  // Ship the worker's buffered spans back on the record line: the
  // supervisor import()s them (with this process's real pid) so the
  // merged Chrome trace shows one lane per worker process.
  if (obs::Tracer::instance().active()) {
    J.key("spans");
    obs::Tracer::writeEventsJson(J, obs::Tracer::instance().drain());
  }
  J.endObject();
  OS << '\n';
  const std::string Line = OS.str();
  support::writeAllFd(Req.ResultFd, Line.data(), Line.size());
  // _Exit: a worker whose heap is mid-simulation has nothing worth
  // destructing, and a throwing destructor must not turn a clean record
  // into a crash report.
  std::_Exit(0);
}
