//===- harness/Supervisor.h - Supervised (out-of-process) cells -*- C++ -*-===//
///
/// \file
/// The worker half of the harness's supervised execution mode. In
/// `--isolate` mode the driver (see runPlan in Experiment.h) re-executes
/// its own binary per cell attempt with a hidden flag triple
///
///   --run-cell PLANSEQ:CELL --cell-attempt A --result-fd FD
///
/// The child rebuilds the identical plan (same argv minus the hidden
/// flags, deterministic plan construction), runs exactly one attempt of
/// the named cell with the same per-(cell, attempt) fault-stream salt
/// the in-process path would use, writes one line
///
///   {"worker":"spf-cell-v1","record":{...cell record...}}
///
/// to the result fd, and exits 0. Everything else — SIGSEGV, SIGABRT,
/// rlimit kills, a wedge past the supervisor deadline — is classified by
/// the supervisor from the wait status, which is the whole point: no
/// cooperation from the worker is required for containment.
///
/// The `crash` fault site is armed here and only here: an in-process run
/// never evaluates it, so `SPF_FAULTS=all:...` stays safe without
/// isolation while `--isolate` turns injected aborts into quarantine
/// entries.
///
//===----------------------------------------------------------------------===//

#ifndef SPF_HARNESS_SUPERVISOR_H
#define SPF_HARNESS_SUPERVISOR_H

#include "harness/Experiment.h"

#include <optional>
#include <string>
#include <vector>

namespace spf {
namespace harness {

/// The parsed hidden worker flags.
struct WorkerRequest {
  unsigned PlanSeq = 0; ///< Which plan of a multi-plan binary.
  unsigned Cell = 0;    ///< Plan index of the cell to run.
  unsigned Attempt = 0; ///< Attempt number (fault-stream salt).
  int ResultFd = 3;     ///< Where the record line goes.
};

/// Recognizes the hidden worker flags in \p argv; nullopt for a normal
/// (supervisor or plain) invocation. Malformed worker flags exit 2 —
/// they are never user input, so any malformation is a driver bug.
std::optional<WorkerRequest> parseWorkerRequest(int Argc, char **Argv);

/// Builds the worker argv for one (cell, attempt): \p SelfPath plus the
/// original \p Argc/\p Argv arguments (so the child rebuilds the same
/// plan) plus the hidden flags. \p PlanSeq distinguishes plans in
/// binaries that run several.
std::vector<std::string> workerArgv(const std::string &SelfPath, int Argc,
                                    char **Argv, unsigned PlanSeq,
                                    unsigned Cell, unsigned Attempt);

/// Runs one attempt of cell \p Req.Cell of \p Plan, emits the record
/// line on \p Req.ResultFd, and exits without running destructors
/// (the process is disposable; unwinding a half-built heap buys
/// nothing). Mirrors the in-process attempt semantics exactly: same
/// fault-stream salt, same trace lookup/record behavior against
/// \p Trace's spill directory, same exception classification.
[[noreturn]] void runCellWorker(const ExperimentPlan &Plan,
                                const WorkerRequest &Req,
                                const TraceOptions &Trace);

/// Per-cell wall-clock budget from SPF_CELL_TIMEOUT (seconds; unset or
/// 0 = off). Malformed values fail fast (support/Env.h).
double cellTimeoutSeconds();

/// Per-worker address-space cap in MiB from SPF_CELL_MEM_MB (0 = none).
uint64_t cellMemMbFromEnv();

} // namespace harness
} // namespace spf

#endif // SPF_HARNESS_SUPERVISOR_H
