//===- harness/Subprocess.cpp ---------------------------------------------===//

#include "harness/Subprocess.h"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

using namespace spf;
using namespace spf::harness;

namespace {

double monotonicNow() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

} // namespace

SpawnOutcome harness::runWorkerProcess(const std::vector<std::string> &Argv,
                                       const support::WorkerLimits &Limits,
                                       double DeadlineSec,
                                       const StopPolicy *Stop) {
  SpawnOutcome Out;
  if (Argv.empty()) {
    Out.SpawnFailed = true;
    Out.SpawnError = "empty argv";
    return Out;
  }

  int Pipe[2];
  if (::pipe(Pipe) != 0) {
    Out.SpawnFailed = true;
    Out.SpawnError = std::string("pipe: ") + std::strerror(errno);
    return Out;
  }

  // The child only runs async-signal-safe code before exec, so the argv
  // array must be fully materialized in the parent.
  std::vector<char *> CArgv;
  CArgv.reserve(Argv.size() + 1);
  for (const std::string &A : Argv)
    CArgv.push_back(const_cast<char *>(A.c_str()));
  CArgv.push_back(nullptr);

  pid_t Pid = ::fork();
  if (Pid < 0) {
    ::close(Pipe[0]);
    ::close(Pipe[1]);
    Out.SpawnFailed = true;
    Out.SpawnError = std::string("fork: ") + std::strerror(errno);
    return Out;
  }

  if (Pid == 0) {
    // Child: async-signal-safe calls only until exec. Its own process
    // group, so a deadline kill sweeps up anything the worker forked —
    // an orphaned grandchild would otherwise hold inherited pipes (ours,
    // ctest's) open long after the worker is gone.
    ::setpgid(0, 0);
    ::close(Pipe[0]);
    if (Pipe[1] != WorkerResultFd) {
      if (::dup2(Pipe[1], WorkerResultFd) < 0)
        ::_exit(127);
      ::close(Pipe[1]);
    }
    int DevNull = ::open("/dev/null", O_WRONLY);
    if (DevNull >= 0) {
      ::dup2(DevNull, STDOUT_FILENO);
      if (DevNull != STDOUT_FILENO)
        ::close(DevNull);
    }
    support::applyWorkerLimits(Limits);
    ::execv(CArgv[0], CArgv.data());
    ::_exit(127);
  }

  // Parent: drain the pipe concurrently with the wait (so records larger
  // than the kernel pipe buffer cannot wedge both sides) until either the
  // pipe reaches EOF or the worker is reaped. The reap path matters:
  // EOF alone would hang on a grandchild that inherited the write end
  // and outlives the SIGKILLed worker — once the worker itself is gone,
  // anything already in the pipe is drained and stragglers are ignored.
  ::close(Pipe[1]);
  ::fcntl(Pipe[0], F_SETFL, O_NONBLOCK);
  const double Deadline =
      DeadlineSec > 0 ? monotonicNow() + DeadlineSec : 0.0;
  bool Killed = false;
  bool KilledByStop = false;
  double StopKillAt = 0.0; // When > 0, a shutdown grace window is running.
  bool Reaped = false;
  int Status = 0;
  char Buf[1 << 16];

  auto KillGroup = [&]() {
    if (::kill(-Pid, SIGKILL) != 0) // Whole group, grandchildren too.
      ::kill(Pid, SIGKILL);
    Killed = true;
  };

  auto DrainOnce = [&]() -> bool { // True at EOF.
    while (true) {
      ssize_t N = ::read(Pipe[0], Buf, sizeof(Buf));
      if (N > 0) {
        Out.Output.append(Buf, static_cast<size_t>(N));
        continue;
      }
      if (N == 0)
        return true;
      if (errno == EINTR)
        continue;
      return false; // EAGAIN: nothing more right now.
    }
  };

  while (true) {
    if (Deadline > 0 && !Killed && monotonicNow() >= Deadline)
      KillGroup();
    // Shutdown path: first observation of the stop condition starts the
    // grace window (the worker may still finish and deliver its record);
    // when it expires the worker goes the same group-SIGKILL way as a
    // deadline overrun, but classified as ShutdownKilled.
    if (Stop && Stop->Stop && !Killed) {
      if (StopKillAt == 0.0 && Stop->Stop())
        StopKillAt =
            monotonicNow() + (Stop->GraceSec > 0 ? Stop->GraceSec : 0.0);
      if (StopKillAt > 0.0 && monotonicNow() >= StopKillAt) {
        KillGroup();
        KilledByStop = true;
      }
    }
    struct pollfd PFd;
    PFd.fd = Pipe[0];
    PFd.events = POLLIN;
    PFd.revents = 0;
    int TimeoutMs = 50; // Granularity of the deadline and reap checks.
    if (Deadline > 0 && !Killed) {
      double Left = Deadline - monotonicNow();
      int LeftMs = static_cast<int>(Left * 1000.0) + 1;
      if (LeftMs < TimeoutMs)
        TimeoutMs = LeftMs > 0 ? LeftMs : 0;
    }
    int R = ::poll(&PFd, 1, TimeoutMs);
    if (R < 0 && errno != EINTR)
      break;
    if (R > 0 && DrainOnce())
      break; // EOF: every write end is closed.
    if (!Reaped) {
      pid_t W = ::waitpid(Pid, &Status, WNOHANG);
      if (W == Pid)
        Reaped = true;
    }
    if (Reaped) {
      // The worker is gone; whatever it wrote is already in the pipe.
      DrainOnce();
      break;
    }
  }
  ::close(Pipe[0]);
  Out.DeadlineKilled = Killed && !KilledByStop;
  Out.ShutdownKilled = KilledByStop;

  while (!Reaped) {
    if (::waitpid(Pid, &Status, 0) >= 0) {
      Reaped = true;
    } else if (errno != EINTR) {
      Out.SpawnFailed = true;
      Out.SpawnError = std::string("waitpid: ") + std::strerror(errno);
      return Out;
    }
  }
  if (WIFEXITED(Status))
    Out.ExitCode = WEXITSTATUS(Status);
  else if (WIFSIGNALED(Status))
    Out.Signal = WTERMSIG(Status);
  return Out;
}
