//===- harness/Journal.h - Durable append-only run journal ------*- C++ -*-===//
///
/// \file
/// Crash-resumable sweeps: with `--journal FILE`, the driver appends one
/// fsync'd JSON line per finished cell, and `--resume` grafts the
/// recorded results back into a rerun of the same plan so completed
/// cells are never re-executed. The file is append-only and
/// line-oriented — a SIGKILL mid-write leaves at most one truncated
/// final line, which resume tolerates; every earlier record is durable.
///
/// Format (one JSON document per line):
///
///   {"journal":"spf-journal-v1","plan_hash":"<16 hex>","cells":N}
///   {"key":"<cell key>","cell":I,"record":{...full cell result...}}
///   ...
///
/// The header's plan hash is an FNV-1a over every cell's key (plan
/// index, group, workload, algorithm, machine, and the execution
/// signature where one exists); resuming against a journal whose hash
/// differs is refused — grafting cell 17 of an edited plan onto cell 17
/// of the old one would silently corrupt the report.
///
/// This header also exports the cell-record JSON codec, shared verbatim
/// with the worker result pipe (harness/Supervisor.h): a journal line's
/// "record" member and a worker's wire record are the same document.
///
//===----------------------------------------------------------------------===//

#ifndef SPF_HARNESS_JOURNAL_H
#define SPF_HARNESS_JOURNAL_H

#include "harness/Experiment.h"

#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

namespace spf {
namespace harness {

class JsonValue;
class JsonWriter;

/// Stable identity of plan cell \p I: plan position plus everything that
/// names the cell, with the execution signature where the run options
/// admit one (tuned cells without a TuneKey fall back to the workload's
/// scale/seed/heap facets — position in the plan still disambiguates).
std::string journalCellKey(const ExperimentPlan &Plan, unsigned I);

/// FNV-1a over every cell key, in plan order.
uint64_t journalPlanHash(const ExperimentPlan &Plan);

/// Serializes one finished cell (flags + the full RunResult, per-site
/// stats included) as the "record" object used on the worker wire and in
/// journal lines. Deterministic formatting (JsonWriter), so a record
/// parsed and re-serialized is byte-identical.
void writeCellRecordJson(JsonWriter &J, const CellResult &Cell);

/// Inverse of writeCellRecordJson. Returns false when \p V is not a
/// well-formed record object.
bool parseCellRecord(const JsonValue &V, CellResult &Cell);

/// The append-only journal for one plan run.
class RunJournal {
public:
  explicit RunJournal(std::string Path) : Path(std::move(Path)) {}
  ~RunJournal();

  /// Loads an existing journal for \p Plan into \p Recorded (indexed by
  /// plan cell, nullopt = not journaled). A missing file is an empty
  /// journal (fresh resume). Returns false and sets \p Error on a
  /// plan-hash mismatch or a malformed interior line; a truncated final
  /// line (crash mid-write) is silently dropped.
  bool load(const ExperimentPlan &Plan,
            std::vector<std::optional<CellResult>> &Recorded,
            std::string *Error);

  /// Opens the journal for appending. With \p Fresh, any existing file
  /// is truncated and a new header written; otherwise records append
  /// after the existing content (call load() first when resuming).
  bool openForAppend(const ExperimentPlan &Plan, bool Fresh,
                     std::string *Error);

  /// Appends the record of finished cell \p I as one fsync'd line.
  /// Thread-safe; a journal that was never opened ignores the call.
  ///
  /// Durability under I/O failure: a failed or short write is retried
  /// once; if it still fails the record is dropped *loudly* — the journal
  /// latches degraded mode, counts the loss, and truncates away any torn
  /// bytes so every other line stays loadable (the dropped cell simply
  /// re-runs on --resume). A failed fsync likewise latches degraded mode:
  /// the line is in the file but its durability is no longer guaranteed.
  /// Both paths honor the disk-write / disk-sync fault-injection sites.
  void append(const ExperimentPlan &Plan, unsigned I,
              const CellResult &Cell);

  const std::string &path() const { return Path; }

  /// True once any append or fsync ultimately failed: the journal is
  /// still valid for --resume, but at least one finished cell may be
  /// missing from it (it will re-run) or not yet durable.
  bool degraded() const { return Degraded.load(std::memory_order_relaxed); }
  /// Records dropped after the one retry (each re-runs on resume).
  uint64_t appendFailures() const {
    return AppendFailures.load(std::memory_order_relaxed);
  }
  /// fsyncs that failed after a successful write.
  uint64_t syncFailures() const {
    return SyncFailures.load(std::memory_order_relaxed);
  }

private:
  /// Writes \p Line at the journal tail; on a real short/failed write,
  /// truncates the torn bytes back off. Caller holds Mu. Returns false
  /// when the line is not (fully) in the file.
  bool writeLineLocked(const std::string &Line);

  std::string Path;
  std::mutex Mu;
  int Fd = -1;
  /// Set when a torn line could not be truncated away: appending anything
  /// further would corrupt the journal, so writes stop (reads at resume
  /// still salvage everything before the tear).
  bool Poisoned = false;
  std::atomic<bool> Degraded{false};
  std::atomic<uint64_t> AppendFailures{0};
  std::atomic<uint64_t> SyncFailures{0};
};

} // namespace harness
} // namespace spf

#endif // SPF_HARNESS_JOURNAL_H
