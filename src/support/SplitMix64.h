//===- support/SplitMix64.h - Deterministic 64-bit RNG ----------*- C++ -*-===//
///
/// \file
/// SplitMix64 pseudo-random generator. Deterministic across platforms so
/// workload data construction and property tests are reproducible.
///
//===----------------------------------------------------------------------===//

#ifndef SPF_SUPPORT_SPLITMIX64_H
#define SPF_SUPPORT_SPLITMIX64_H

#include <cstdint>

namespace spf {

/// Tiny deterministic RNG (Steele, Lea, Flood; public-domain algorithm).
class SplitMix64 {
public:
  explicit SplitMix64(uint64_t Seed) : State(Seed) {}

  /// Returns the next 64-bit pseudo-random value.
  uint64_t next() {
    State += 0x9e3779b97f4a7c15ULL;
    uint64_t Z = State;
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
    return Z ^ (Z >> 31);
  }

  /// Returns a value uniformly distributed in [0, Bound).
  uint64_t nextBelow(uint64_t Bound) {
    assert_bound(Bound);
    return next() % Bound;
  }

  /// Returns a double in [0, 1).
  double nextDouble() {
    return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
  }

private:
  static void assert_bound(uint64_t Bound) { (void)Bound; }

  uint64_t State;
};

} // namespace spf

#endif // SPF_SUPPORT_SPLITMIX64_H
