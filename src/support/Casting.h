//===- support/Casting.h - LLVM-style isa/cast/dyn_cast ---------*- C++ -*-===//
///
/// \file
/// Hand-rolled RTTI in the LLVM style. Class hierarchies opt in by providing
/// a static `bool classof(const Base *)` predicate; `isa<>`, `cast<>`, and
/// `dyn_cast<>` dispatch through it without requiring C++ RTTI.
///
//===----------------------------------------------------------------------===//

#ifndef SPF_SUPPORT_CASTING_H
#define SPF_SUPPORT_CASTING_H

#include <cassert>
#include <type_traits>

namespace spf {

/// Returns true if \p Val is an instance of \p To (or a subclass of it).
template <typename To, typename From> bool isa(const From *Val) {
  assert(Val && "isa<> used on a null pointer");
  return To::classof(Val);
}

/// Checked downcast: asserts that \p Val really is a \p To.
template <typename To, typename From> To *cast(From *Val) {
  assert(isa<To>(Val) && "cast<> argument of incompatible type");
  return static_cast<To *>(Val);
}

/// Checked downcast, const overload.
template <typename To, typename From> const To *cast(const From *Val) {
  assert(isa<To>(Val) && "cast<> argument of incompatible type");
  return static_cast<const To *>(Val);
}

/// Checking downcast: returns null when \p Val is not a \p To.
template <typename To, typename From> To *dyn_cast(From *Val) {
  return isa<To>(Val) ? static_cast<To *>(Val) : nullptr;
}

/// Checking downcast, const overload.
template <typename To, typename From> const To *dyn_cast(const From *Val) {
  return isa<To>(Val) ? static_cast<const To *>(Val) : nullptr;
}

/// Like dyn_cast<>, but tolerates a null argument (propagating it).
template <typename To, typename From> To *dyn_cast_or_null(From *Val) {
  return Val ? dyn_cast<To>(Val) : nullptr;
}

} // namespace spf

#endif // SPF_SUPPORT_CASTING_H
