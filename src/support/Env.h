//===- support/Env.h - Fail-fast environment configuration ------*- C++ -*-===//
///
/// \file
/// Strict parsing for the SPF_* environment knobs. A malformed value is a
/// configuration error, not a condition to paper over: silently falling
/// back to a default turns a typo ("SPF_CELL_TIMEOUT=3O") into an
/// experiment run under the wrong configuration. Every helper here either
/// returns a well-formed value or diagnoses the variable on stderr and
/// exits nonzero before any cell runs.
///
//===----------------------------------------------------------------------===//

#ifndef SPF_SUPPORT_ENV_H
#define SPF_SUPPORT_ENV_H

#include <cstdint>
#include <string>

namespace spf {
namespace support {

/// Exit code used for rejected environment/flag configuration.
inline constexpr int ConfigErrorExit = 2;

/// Diagnoses a rejected configuration value on stderr and exits with
/// ConfigErrorExit. \p Value may be null (variable unset).
[[noreturn]] void envConfigError(const char *Var, const char *Value,
                                 const std::string &Why);

/// Finite double >= \p Min from \p Var; \p Default when unset or empty.
/// Anything else (trailing garbage, NaN, below Min) fails fast.
double envDouble(const char *Var, double Default, double Min = 0.0);

/// Unsigned integer from \p Var; \p Default when unset or empty.
uint64_t envU64(const char *Var, uint64_t Default);

/// True when \p Var is set to a non-empty value ("0" counts as set: the
/// knobs using this are presence switches, not booleans).
bool envFlagSet(const char *Var);

} // namespace support
} // namespace spf

#endif // SPF_SUPPORT_ENV_H
