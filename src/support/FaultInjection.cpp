//===- support/FaultInjection.cpp -----------------------------------------===//

#include "support/FaultInjection.h"

#include "support/Env.h"

#include <cstdio>
#include <cstdlib>

using namespace spf;
using namespace spf::support;

thread_local constinit FaultInjector *FaultScope::Current = nullptr;

const char *support::faultSiteName(FaultSite S) {
  switch (S) {
  case FaultSite::InspectHeapRead:
    return "inspect-read";
  case FaultSite::Alloc:
    return "alloc";
  case FaultSite::GuardAddr:
    return "guard-addr";
  case FaultSite::CellExec:
    return "cell";
  case FaultSite::Crash:
    return "crash";
  case FaultSite::DiskWrite:
    return "disk-write";
  case FaultSite::DiskSync:
    return "disk-sync";
  }
  return "?";
}

std::optional<FaultSite> support::parseFaultSiteName(const std::string &Name) {
  for (unsigned I = 0; I != NumFaultSites; ++I) {
    FaultSite S = static_cast<FaultSite>(I);
    if (Name == faultSiteName(S))
      return S;
  }
  return std::nullopt;
}

bool FaultConfig::anyEnabled() const {
  for (const Site &S : Sites)
    if (S.Enabled && S.Rate > 0.0)
      return true;
  return false;
}

bool FaultConfig::anyExecutionSiteEnabled() const {
  for (unsigned I = 0; I != NumFaultSites; ++I) {
    FaultSite S = static_cast<FaultSite>(I);
    if (S == FaultSite::DiskWrite || S == FaultSite::DiskSync)
      continue;
    if (Sites[I].Enabled && Sites[I].Rate > 0.0)
      return true;
  }
  return false;
}

namespace {

/// One "site:rate:seed" triple into \p Cfg. Returns false on malformed
/// input with \p Error describing why.
bool parseEntry(const std::string &Entry, FaultConfig &Cfg,
                std::string *Error) {
  auto Fail = [&](const std::string &Why) {
    if (Error)
      *Error = "bad fault spec '" + Entry + "': " + Why;
    return false;
  };

  size_t C1 = Entry.find(':');
  if (C1 == std::string::npos)
    return Fail("expected site:rate:seed");
  size_t C2 = Entry.find(':', C1 + 1);
  if (C2 == std::string::npos)
    return Fail("expected site:rate:seed");

  std::string SiteName = Entry.substr(0, C1);
  std::string RateStr = Entry.substr(C1 + 1, C2 - C1 - 1);
  std::string SeedStr = Entry.substr(C2 + 1);

  char *End = nullptr;
  double Rate = std::strtod(RateStr.c_str(), &End);
  if (RateStr.empty() || *End != '\0' || Rate < 0.0 || Rate > 1.0)
    return Fail("rate must be a number in [0, 1]");

  End = nullptr;
  unsigned long long Seed = std::strtoull(SeedStr.c_str(), &End, 0);
  if (SeedStr.empty() || *End != '\0')
    return Fail("seed must be an unsigned integer");

  auto Apply = [&](FaultSite S) {
    FaultConfig::Site &Site = Cfg.site(S);
    Site.Enabled = true;
    Site.Rate = Rate;
    // Give "all" distinct per-site streams even with one shared seed.
    Site.Seed = static_cast<uint64_t>(Seed) +
                0x9e3779b97f4a7c15ULL * static_cast<unsigned>(S);
  };

  if (SiteName == "all") {
    for (unsigned I = 0; I != NumFaultSites; ++I)
      Apply(static_cast<FaultSite>(I));
    return true;
  }
  std::optional<FaultSite> S = parseFaultSiteName(SiteName);
  if (!S)
    return Fail("unknown site '" + SiteName + "'");
  Apply(*S);
  return true;
}

} // namespace

std::optional<FaultConfig> FaultConfig::parse(const std::string &Spec,
                                              std::string *Error) {
  FaultConfig Cfg;
  if (Spec.empty()) {
    if (Error)
      *Error = "empty fault spec";
    return std::nullopt;
  }
  size_t Pos = 0;
  while (Pos <= Spec.size()) {
    size_t Comma = Spec.find(',', Pos);
    size_t End = Comma == std::string::npos ? Spec.size() : Comma;
    if (!parseEntry(Spec.substr(Pos, End - Pos), Cfg, Error))
      return std::nullopt;
    if (Comma == std::string::npos)
      break;
    Pos = Comma + 1;
  }
  return Cfg;
}

FaultConfig FaultConfig::fromEnv() {
  const char *Spec = std::getenv("SPF_FAULTS");
  if (!Spec || !*Spec)
    return FaultConfig();
  std::string Error;
  if (std::optional<FaultConfig> Cfg = parse(Spec, &Error))
    return *Cfg;
  envConfigError("SPF_FAULTS", Spec, Error);
}

void support::maybeInjectCrash() {
  if (SPF_FAULT_POINT(FaultSite::Crash))
    std::abort();
}

FaultInjector::FaultInjector(const FaultConfig &Cfg, uint64_t StreamSalt) {
  for (unsigned I = 0; I != NumFaultSites; ++I) {
    const FaultConfig::Site &In = Cfg.Sites[I];
    SiteState &St = States[I];
    St.Enabled = In.Enabled && In.Rate > 0.0;
    St.Rate = In.Rate;
    // Whiten the salt through one SplitMix64 step so adjacent cell
    // indices yield unrelated streams.
    SplitMix64 Mix(StreamSalt + 0x632be59bd9b4e019ULL * (I + 1));
    St.Rng = SplitMix64(In.Seed ^ Mix.next());
  }
}

bool FaultInjector::shouldFail(FaultSite S) {
  SiteState &St = States[static_cast<unsigned>(S)];
  if (!St.Enabled)
    return false;
  bool Fire = St.Rng.nextDouble() < St.Rate;
  if (Fire)
    ++St.Injected;
  return Fire;
}

uint64_t FaultInjector::totalInjected() const {
  uint64_t Total = 0;
  for (const SiteState &St : States)
    Total += St.Injected;
  return Total;
}
