//===- support/ErrorHandling.h - Fatal errors and unreachable ---*- C++ -*-===//
///
/// \file
/// Minimal programmatic-error utilities in the LLVM spirit: a fatal-error
/// reporter for broken invariants and an `spf_unreachable` marker for
/// control-flow points that must never execute.
///
//===----------------------------------------------------------------------===//

#ifndef SPF_SUPPORT_ERRORHANDLING_H
#define SPF_SUPPORT_ERRORHANDLING_H

namespace spf {

/// Prints \p Msg to stderr and aborts. Used for invariant violations that
/// must be diagnosed even in builds without assertions.
[[noreturn]] void reportFatalError(const char *Msg);

namespace detail {
[[noreturn]] void unreachableInternal(const char *Msg, const char *File,
                                      unsigned Line);
} // namespace detail

} // namespace spf

/// Marks a point in code that must never be reached; aborts with a
/// diagnostic when it is.
#define spf_unreachable(MSG)                                                   \
  ::spf::detail::unreachableInternal(MSG, __FILE__, __LINE__)

#endif // SPF_SUPPORT_ERRORHANDLING_H
