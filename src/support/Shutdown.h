//===- support/Shutdown.h - Graceful-shutdown latch -------------*- C++ -*-===//
///
/// \file
/// Process-wide graceful-shutdown machinery for the sweep supervisor.
/// installShutdownHandlers() arms SIGTERM/SIGINT handlers that do nothing
/// but latch an atomic flag; the experiment driver polls the flag between
/// cells (harness/Experiment.h, GovernorOptions::Graceful) and the worker
/// reaper polls it while waiting on in-flight workers, so an operator's
/// kill -TERM turns into: stop admitting cells, give running workers a
/// short grace window, SIGKILL stragglers, flush the journal, and write a
/// partial report marked `interrupted` — instead of a dead supervisor and
/// a report that never existed.
///
/// The handlers are installed without SA_RESTART so blocking poll/wait
/// loops wake promptly (every such loop in the harness already retries
/// EINTR). Handlers only store to lock-free atomics: async-signal-safe by
/// construction.
///
//===----------------------------------------------------------------------===//

#ifndef SPF_SUPPORT_SHUTDOWN_H
#define SPF_SUPPORT_SHUTDOWN_H

namespace spf {
namespace support {

/// Arms the SIGTERM/SIGINT latch. Idempotent; call from supervisor
/// processes only (workers must stay killable the default way).
void installShutdownHandlers();

/// True once a shutdown signal was received (or requestShutdown ran).
bool shutdownRequested();

/// The latched signal number (0 when none; SIGTERM/SIGINT from the
/// handler; whatever requestShutdown was given otherwise).
int shutdownSignal();

/// Programmatic latch, for the sweep-deadline path and tests. Uses the
/// same flag the signal handlers set.
void requestShutdown(int Signal);

/// Clears the latch (tests only: lets one process exercise the
/// interrupted path and then resume cleanly).
void resetShutdownForTests();

/// Global sweep wall-clock budget in seconds from SPF_SWEEP_DEADLINE_S
/// (0 = none). Malformed values fail fast (support/Env.h).
double sweepDeadlineSecondsFromEnv();

/// Grace window in seconds between observing a shutdown request and
/// SIGKILLing still-running workers, from SPF_SHUTDOWN_GRACE_S
/// (default 2).
double shutdownGraceSeconds();

} // namespace support
} // namespace spf

#endif // SPF_SUPPORT_SHUTDOWN_H
