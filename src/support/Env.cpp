//===- support/Env.cpp ----------------------------------------------------===//

#include "support/Env.h"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

using namespace spf;
using namespace spf::support;

void support::envConfigError(const char *Var, const char *Value,
                             const std::string &Why) {
  std::fprintf(stderr, "spf: invalid %s=\"%s\": %s\n", Var,
               Value ? Value : "", Why.c_str());
  std::exit(ConfigErrorExit);
}

double support::envDouble(const char *Var, double Default, double Min) {
  const char *S = std::getenv(Var);
  if (!S || !*S)
    return Default;
  char *End = nullptr;
  double V = std::strtod(S, &End);
  if (End == S || *End != '\0')
    envConfigError(Var, S, "expected a number");
  if (!std::isfinite(V))
    envConfigError(Var, S, "expected a finite number");
  if (V < Min) {
    char Buf[64];
    std::snprintf(Buf, sizeof(Buf), "must be >= %g", Min);
    envConfigError(Var, S, Buf);
  }
  return V;
}

uint64_t support::envU64(const char *Var, uint64_t Default) {
  const char *S = std::getenv(Var);
  if (!S || !*S)
    return Default;
  char *End = nullptr;
  errno = 0;
  unsigned long long V = std::strtoull(S, &End, 10);
  if (End == S || *End != '\0' || std::strchr(S, '-'))
    envConfigError(Var, S, "expected a non-negative integer");
  if (errno == ERANGE)
    envConfigError(Var, S, "out of range");
  return static_cast<uint64_t>(V);
}

bool support::envFlagSet(const char *Var) {
  const char *S = std::getenv(Var);
  return S && *S;
}
