//===- support/Shutdown.cpp -----------------------------------------------===//

#include "support/Shutdown.h"

#include "support/Env.h"

#include <atomic>
#include <signal.h>

using namespace spf;
using namespace spf::support;

namespace {

// Lock-free atomics are the only state a signal handler may touch.
std::atomic<int> LatchedSignal{0};

extern "C" void shutdownHandler(int Sig) {
  LatchedSignal.store(Sig, std::memory_order_relaxed);
}

} // namespace

void support::installShutdownHandlers() {
  struct sigaction SA;
  sigemptyset(&SA.sa_mask);
  SA.sa_handler = shutdownHandler;
  // No SA_RESTART: the supervisor's poll/waitpid loops must wake on the
  // signal (they all retry EINTR) so the grace window starts immediately.
  SA.sa_flags = 0;
  ::sigaction(SIGTERM, &SA, nullptr);
  ::sigaction(SIGINT, &SA, nullptr);
}

bool support::shutdownRequested() {
  return LatchedSignal.load(std::memory_order_relaxed) != 0;
}

int support::shutdownSignal() {
  return LatchedSignal.load(std::memory_order_relaxed);
}

void support::requestShutdown(int Signal) {
  LatchedSignal.store(Signal ? Signal : SIGTERM, std::memory_order_relaxed);
}

void support::resetShutdownForTests() {
  LatchedSignal.store(0, std::memory_order_relaxed);
}

double support::sweepDeadlineSecondsFromEnv() {
  return envDouble("SPF_SWEEP_DEADLINE_S", 0.0, 0.0);
}

double support::shutdownGraceSeconds() {
  return envDouble("SPF_SHUTDOWN_GRACE_S", 2.0, 0.0);
}
