//===- support/Process.cpp ------------------------------------------------===//

#include "support/Process.h"

#include <cerrno>
#include <sys/resource.h>
#include <unistd.h>

using namespace spf;
using namespace spf::support;

void support::applyWorkerLimits(const WorkerLimits &Limits) {
  if (Limits.MemBytes > 0) {
    struct rlimit RL;
    RL.rlim_cur = static_cast<rlim_t>(Limits.MemBytes);
    RL.rlim_max = static_cast<rlim_t>(Limits.MemBytes);
    (void)::setrlimit(RLIMIT_AS, &RL);
  }
  if (Limits.CpuSec > 0) {
    struct rlimit RL;
    RL.rlim_cur = static_cast<rlim_t>(Limits.CpuSec);
    RL.rlim_max = static_cast<rlim_t>(Limits.CpuSec + 2);
    (void)::setrlimit(RLIMIT_CPU, &RL);
  }
}

bool support::writeAllFd(int Fd, const void *Data, size_t Len) {
  const char *P = static_cast<const char *>(Data);
  while (Len > 0) {
    ssize_t N = ::write(Fd, P, Len);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    P += N;
    Len -= static_cast<size_t>(N);
  }
  return true;
}

std::string support::selfExecutablePath(const char *Argv0) {
  char Buf[4096];
  ssize_t N = ::readlink("/proc/self/exe", Buf, sizeof(Buf) - 1);
  if (N > 0) {
    Buf[N] = '\0';
    return Buf;
  }
  return Argv0 ? Argv0 : "";
}
