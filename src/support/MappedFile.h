//===- support/MappedFile.h - Read-only shared file mapping -----*- C++ -*-===//
///
/// \file
/// A read-only, MAP_SHARED memory mapping of a whole file. Used by the
/// trace cache to replay spills zero-copy: the supervisor and every
/// forked worker that maps the same spill share one page-cache copy of
/// the bytes instead of each reading them into its own heap. The handle
/// is shared_ptr-owned so borrowers (trace::TraceBuffer in borrowed-
/// bytes mode) keep the mapping alive for exactly as long as any of
/// them needs it.
///
//===----------------------------------------------------------------------===//

#ifndef SPF_SUPPORT_MAPPEDFILE_H
#define SPF_SUPPORT_MAPPEDFILE_H

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

namespace spf {
namespace support {

class MappedFile {
public:
  /// Maps \p Path read-only (PROT_READ, MAP_SHARED). Returns nullptr on
  /// any failure — missing file, empty file (nothing to map), or mmap
  /// refusal — callers treat all of those as "no usable bytes".
  static std::shared_ptr<MappedFile> map(const std::string &Path);

  ~MappedFile();
  MappedFile(const MappedFile &) = delete;
  MappedFile &operator=(const MappedFile &) = delete;

  const uint8_t *data() const { return Data; }
  size_t size() const { return Size; }

private:
  MappedFile(const uint8_t *Data, size_t Size) : Data(Data), Size(Size) {}

  const uint8_t *Data;
  size_t Size;
};

} // namespace support
} // namespace spf

#endif // SPF_SUPPORT_MAPPEDFILE_H
