//===- support/Process.h - rlimit and pipe helpers for workers --*- C++ -*-===//
///
/// \file
/// Small POSIX wrappers used by the supervised execution mode: hard
/// per-worker resource caps (setrlimit) and full-buffer fd writes. The
/// limit application runs in a forked child between fork() and exec(),
/// so everything here is async-signal-safe — no allocation, no stdio.
///
//===----------------------------------------------------------------------===//

#ifndef SPF_SUPPORT_PROCESS_H
#define SPF_SUPPORT_PROCESS_H

#include <cstddef>
#include <cstdint>
#include <string>

namespace spf {
namespace support {

/// Hard caps applied to a worker process. Zero disables a cap.
struct WorkerLimits {
  uint64_t MemBytes = 0; ///< RLIMIT_AS (address space).
  uint64_t CpuSec = 0;   ///< RLIMIT_CPU soft; hard is CpuSec + 2 so the
                         ///< SIGXCPU default still yields a clean signal
                         ///< before the hard SIGKILL backstop.
};

/// Applies \p Limits to the calling process. Async-signal-safe; a failed
/// setrlimit is ignored (the supervisor's deadline + SIGKILL is the
/// backstop of last resort).
void applyWorkerLimits(const WorkerLimits &Limits);

/// Writes all of \p Data to \p Fd, retrying on EINTR and short writes.
/// Returns false on any other error.
bool writeAllFd(int Fd, const void *Data, size_t Len);

/// Absolute path of the running executable (/proc/self/exe), falling
/// back to \p Argv0 when the proc link is unreadable.
std::string selfExecutablePath(const char *Argv0);

} // namespace support
} // namespace spf

#endif // SPF_SUPPORT_PROCESS_H
