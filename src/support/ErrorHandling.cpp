//===- support/ErrorHandling.cpp ------------------------------------------===//

#include "support/ErrorHandling.h"

#include <cstdio>
#include <cstdlib>

using namespace spf;

void spf::reportFatalError(const char *Msg) {
  std::fprintf(stderr, "spf fatal error: %s\n", Msg);
  std::abort();
}

void detail::unreachableInternal(const char *Msg, const char *File,
                                 unsigned Line) {
  std::fprintf(stderr, "unreachable executed at %s:%u: %s\n", File, Line, Msg);
  std::abort();
}
