//===- support/MappedFile.cpp ---------------------------------------------===//

#include "support/MappedFile.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

using namespace spf;
using namespace spf::support;

std::shared_ptr<MappedFile> MappedFile::map(const std::string &Path) {
  int Fd = ::open(Path.c_str(), O_RDONLY | O_CLOEXEC);
  if (Fd < 0)
    return nullptr;
  struct stat St;
  if (::fstat(Fd, &St) != 0 || St.st_size <= 0 ||
      !S_ISREG(St.st_mode)) {
    ::close(Fd);
    return nullptr;
  }
  size_t Size = static_cast<size_t>(St.st_size);
  void *Mem = ::mmap(nullptr, Size, PROT_READ, MAP_SHARED, Fd, 0);
  // The mapping survives the descriptor; closing immediately keeps the
  // fd footprint flat even with many live spills.
  ::close(Fd);
  if (Mem == MAP_FAILED)
    return nullptr;
  return std::shared_ptr<MappedFile>(
      new MappedFile(static_cast<const uint8_t *>(Mem), Size));
}

MappedFile::~MappedFile() {
  ::munmap(const_cast<uint8_t *>(Data), Size);
}
