//===- support/Status.h - Recoverable-error results -------------*- C++ -*-===//
///
/// \file
/// The recoverable-error layer: `Status` (success or a message) and
/// `Expected<T>` (a value or a `Status`), in the LLVM spirit but without
/// the checked-error machinery. Used by the inspection/planning path to
/// degrade gracefully — "no prefetch for this loop" — instead of calling
/// `reportFatalError` the way invariant violations do.
///
/// Also defines the exception types the failure-containment layer throws
/// and the harness catches per cell: `RuntimeTrap` for failures of the
/// *simulated* program (a production VM would raise a runtime exception,
/// not kill the VM process) and `CellTimeout` for the per-cell wall-clock
/// watchdog.
///
//===----------------------------------------------------------------------===//

#ifndef SPF_SUPPORT_STATUS_H
#define SPF_SUPPORT_STATUS_H

#include <stdexcept>
#include <string>
#include <utility>

namespace spf {
namespace support {

/// Success, or failure with a human-readable message.
class Status {
public:
  static Status success() { return Status(); }
  static Status error(std::string Msg) {
    Status S;
    S.Success = false;
    S.Msg = std::move(Msg);
    return S;
  }

  bool ok() const { return Success; }
  explicit operator bool() const { return Success; }

  /// The failure message; empty on success.
  const std::string &message() const { return Msg; }

private:
  bool Success = true;
  std::string Msg;
};

/// A value of type \p T or a failure `Status`. Construction from a
/// success status is a programming error (there would be no value).
template <typename T> class Expected {
public:
  Expected(T Value) : Value(std::move(Value)) {}
  Expected(Status Error) : Err(std::move(Error)), HasValue(false) {}

  bool ok() const { return HasValue; }
  explicit operator bool() const { return HasValue; }

  T &operator*() { return Value; }
  const T &operator*() const { return Value; }
  T *operator->() { return &Value; }
  const T *operator->() const { return &Value; }

  /// The failure message; only meaningful when !ok().
  const std::string &error() const { return Err.message(); }
  const Status &status() const { return Err; }

private:
  T Value{};
  Status Err = Status::success();
  bool HasValue = true;
};

/// A recoverable failure of the simulated program itself (null
/// dereference, division by zero, OOM after GC, execution budget): the
/// harness marks the cell failed and keeps the sweep alive.
class RuntimeTrap : public std::runtime_error {
public:
  using std::runtime_error::runtime_error;
};

/// Thrown when a cell exceeds its wall-clock budget (SPF_CELL_TIMEOUT).
class CellTimeout : public std::runtime_error {
public:
  using std::runtime_error::runtime_error;
};

} // namespace support
} // namespace spf

#endif // SPF_SUPPORT_STATUS_H
