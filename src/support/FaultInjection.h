//===- support/FaultInjection.h - Deterministic chaos sites -----*- C++ -*-===//
///
/// \file
/// Deterministic, seeded fault injection for the inspect→plan→simulate
/// pipeline. Each named site carries its own SplitMix64 stream, so the
/// set of injected faults depends only on (config, stream salt) — never
/// on thread scheduling — and the parallel-equals-serial property of the
/// experiment driver survives chaos runs.
///
/// Sites:
///  * `inspect-read` — object inspection's reads of the real heap turn
///    into `unknown` lattice values (the inspector's safe response);
///  * `alloc`        — an interpreter allocation's fast path fails,
///    forcing the GC-and-retry slow path;
///  * `guard-addr`   — a guarded load's computed address is corrupted
///    before the software exception check, exercising the guard-failure
///    path end to end;
///  * `cell`         — a whole experiment cell throws a TransientFault,
///    exercising the harness's isolation/retry/quarantine machinery;
///  * `crash`        — a whole experiment cell calls `abort()`. Only armed
///    in supervised worker processes (see harness/Supervisor.h); an
///    in-process run never evaluates the site, so `all:...` chaos stays
///    safe without isolation;
///  * `disk-write`   — a harness disk write (trace spill, journal append,
///    report write) fails as if the disk were full or erroring
///    (ENOSPC/EIO). Every armed path degrades and counts — never crashes
///    or silently loses records;
///  * `disk-sync`    — an fsync fails after a successful write: the data
///    is in the file but its durability is no longer guaranteed. The
///    journal latches its degraded mode and counts the event.
///
/// The disk sites only simulate I/O failure in the harness's persistence
/// paths; unlike the execution sites they never perturb cell statistics,
/// so trace reuse stays on when only disk sites are armed (see
/// FaultConfig::anyExecutionSiteEnabled).
///
/// Configuration: programmatic (`FaultConfig`) or the environment knob
///
///   SPF_FAULTS=site:rate:seed[,site:rate:seed...]   (site may be "all")
///
/// Sites are *activated* per thread with a `FaultScope`; code declares
/// them with `SPF_FAULT_POINT(site)`, which evaluates to false at zero
/// cost when no scope is active, and compiles away entirely when the
/// library is built with `-DSPF_FAULT_INJECTION=0` (CMake option).
///
//===----------------------------------------------------------------------===//

#ifndef SPF_SUPPORT_FAULTINJECTION_H
#define SPF_SUPPORT_FAULTINJECTION_H

#include "support/SplitMix64.h"

#include <array>
#include <optional>
#include <stdexcept>
#include <string>

namespace spf {
namespace support {

/// The named fault sites.
enum class FaultSite : unsigned {
  InspectHeapRead = 0, ///< "inspect-read"
  Alloc = 1,           ///< "alloc"
  GuardAddr = 2,       ///< "guard-addr"
  CellExec = 3,        ///< "cell"
  Crash = 4,           ///< "crash"
  DiskWrite = 5,       ///< "disk-write"
  DiskSync = 6,        ///< "disk-sync"
};

inline constexpr unsigned NumFaultSites = 7;

/// The spelling used in SPF_FAULTS and reports.
const char *faultSiteName(FaultSite S);

/// Inverse of faultSiteName; nullopt for unknown spellings.
std::optional<FaultSite> parseFaultSiteName(const std::string &Name);

/// An injected failure the harness treats as retryable (bounded retry,
/// then quarantine — never a correctness failure).
class TransientFault : public std::runtime_error {
public:
  using std::runtime_error::runtime_error;
};

/// Per-site rates and seeds.
struct FaultConfig {
  struct Site {
    bool Enabled = false;
    double Rate = 0.0; ///< Probability in [0, 1] that a point fires.
    uint64_t Seed = 0;
  };
  std::array<Site, NumFaultSites> Sites;

  bool anyEnabled() const;
  /// True when any site that perturbs cell *execution* (everything but
  /// the disk-I/O sites) is enabled. Trace reuse keys off this: injected
  /// disk failures only exercise the persistence paths, so replaying a
  /// recorded trace under them is still honest chaos.
  bool anyExecutionSiteEnabled() const;
  Site &site(FaultSite S) { return Sites[static_cast<unsigned>(S)]; }
  const Site &site(FaultSite S) const {
    return Sites[static_cast<unsigned>(S)];
  }

  /// Parses "site:rate:seed[,site:rate:seed...]"; "all" enables every
  /// site with the given rate/seed. Returns nullopt (and sets \p Error)
  /// on malformed input.
  static std::optional<FaultConfig> parse(const std::string &Spec,
                                          std::string *Error = nullptr);

  /// Config from the SPF_FAULTS environment variable; everything
  /// disabled when unset. A malformed value is a configuration error:
  /// diagnosed on stderr and the process exits nonzero before any cell
  /// runs (silently ignoring it would run the sweep without the chaos
  /// the caller asked for).
  static FaultConfig fromEnv();
};

/// Draws the per-site fault decisions. Deterministic: a given
/// (config, salt) pair always yields the same decision sequence,
/// regardless of which thread runs it. The harness salts per
/// (cell, attempt) so retries re-roll and schedules don't matter.
class FaultInjector {
public:
  FaultInjector() = default;
  explicit FaultInjector(const FaultConfig &Cfg, uint64_t StreamSalt = 0);

  /// True when the next decision at \p S is an injected fault.
  bool shouldFail(FaultSite S);

  uint64_t injectedCount(FaultSite S) const {
    return States[static_cast<unsigned>(S)].Injected;
  }
  uint64_t totalInjected() const;

private:
  struct SiteState {
    bool Enabled = false;
    double Rate = 0.0;
    SplitMix64 Rng{0};
    uint64_t Injected = 0;
  };
  std::array<SiteState, NumFaultSites> States;
};

/// RAII thread-local activation of an injector. Fault points fire only
/// while a scope is active on the current thread; scopes nest (the
/// previous injector is restored on destruction).
class FaultScope {
public:
  explicit FaultScope(FaultInjector &I) : Prev(Current) { Current = &I; }
  ~FaultScope() { Current = Prev; }

  FaultScope(const FaultScope &) = delete;
  FaultScope &operator=(const FaultScope &) = delete;

  /// The active injector on this thread, or nullptr.
  static FaultInjector *current() { return Current; }

private:
  FaultInjector *Prev;
  // constinit: statically initialized, so access needs no TLS init-guard
  // wrapper (whose instrumentation GCC's UBSan misreads as a possible
  // null store).
  static thread_local constinit FaultInjector *Current;
};

/// Hard-crash injection point for the `crash` site: when the site fires,
/// the process calls `abort()` (SIGABRT, no unwinding, no cleanup) —
/// exactly the class of failure only out-of-process supervision can
/// contain. Call it only from supervised worker entry paths.
void maybeInjectCrash();

} // namespace support
} // namespace spf

/// Compile-time master switch; the CMake option SPF_FAULT_INJECTION
/// (default ON) defines it to 0 to compile every site out.
#ifndef SPF_FAULT_INJECTION
#define SPF_FAULT_INJECTION 1
#endif

#if SPF_FAULT_INJECTION
/// True when the named site should fail here. A cheap thread-local read
/// when no injector is active; a no-op constant when compiled out.
#define SPF_FAULT_POINT(SITE)                                                  \
  (::spf::support::FaultScope::current() != nullptr &&                         \
   ::spf::support::FaultScope::current()->shouldFail(SITE))
#else
#define SPF_FAULT_POINT(SITE) false
#endif

#endif // SPF_SUPPORT_FAULTINJECTION_H
