//===- ir/Verifier.cpp ----------------------------------------------------===//

#include "ir/Verifier.h"

#include "ir/IRPrinter.h"
#include "ir/Module.h"

#include <algorithm>
#include <set>
#include <sstream>

using namespace spf;
using namespace spf::ir;

namespace {

class VerifierImpl {
public:
  VerifierImpl(Method *M, std::vector<std::string> *Errors)
      : M(M), Errors(Errors) {}

  bool run();

private:
  void fail(const BasicBlock *BB, const Instruction *I, const char *Msg) {
    Ok = false;
    if (!Errors)
      return;
    std::ostringstream OS;
    OS << M->name() << "/" << BB->name() << ": " << Msg;
    if (I) {
      OS << " in '";
      printInstruction(OS, I);
      OS << "'";
    }
    Errors->push_back(OS.str());
  }

  void checkBlock(const BasicBlock *BB);
  void checkInstruction(const BasicBlock *BB, const Instruction *I);

  Method *M;
  std::vector<std::string> *Errors;
  std::set<const BasicBlock *> KnownBlocks;
  std::set<const Value *> DefinedValues;
  bool Ok = true;
};

} // namespace

bool VerifierImpl::run() {
  if (M->numBlocks() == 0) {
    Ok = false;
    if (Errors)
      Errors->push_back(M->name() + ": method has no blocks");
    return Ok;
  }

  for (const auto &BB : M->blocks())
    KnownBlocks.insert(BB.get());
  for (const auto &Arg : M->arguments())
    DefinedValues.insert(Arg.get());
  for (const auto &BB : M->blocks())
    for (const auto &I : BB->instructions())
      DefinedValues.insert(I.get());

  for (const auto &BB : M->blocks())
    checkBlock(BB.get());
  return Ok;
}

void VerifierImpl::checkBlock(const BasicBlock *BB) {
  if (BB->empty()) {
    fail(BB, nullptr, "empty block");
    return;
  }

  bool SeenNonPhi = false;
  for (const auto &I : BB->instructions()) {
    if (isa<PhiInst>(I.get())) {
      if (SeenNonPhi)
        fail(BB, I.get(), "phi after non-phi instruction");
    } else {
      SeenNonPhi = true;
    }
    if (I->isTerminator() && I.get() != BB->back())
      fail(BB, I.get(), "terminator in the middle of a block");
    checkInstruction(BB, I.get());
  }

  if (!BB->back()->isTerminator())
    fail(BB, BB->back(), "block does not end in a terminator");

  for (const BasicBlock *Succ : BB->successors())
    if (!KnownBlocks.count(Succ))
      fail(BB, BB->back(), "successor not owned by this method");
}

void VerifierImpl::checkInstruction(const BasicBlock *BB,
                                    const Instruction *I) {
  for (unsigned Idx = 0, E = I->numOperands(); Idx != E; ++Idx) {
    const Value *Op = I->operand(Idx);
    if (!Op) {
      fail(BB, I, "null operand");
      continue;
    }
    if (isa<Instruction>(Op) || isa<Argument>(Op)) {
      if (!DefinedValues.count(Op))
        fail(BB, I, "operand defined outside this method");
    }
    if (Op->type() == Type::Void)
      fail(BB, I, "void-typed operand");
  }

  if (const auto *Phi = dyn_cast<PhiInst>(I)) {
    const auto &Preds = BB->predecessors();
    if (Phi->numIncoming() != Preds.size()) {
      fail(BB, I, "phi incoming count differs from predecessor count");
      return;
    }
    for (unsigned Idx = 0, E = Phi->numIncoming(); Idx != E; ++Idx) {
      const BasicBlock *In = Phi->incomingBlock(Idx);
      if (std::find(Preds.begin(), Preds.end(), In) == Preds.end())
        fail(BB, I, "phi incoming block is not a predecessor");
      if (Phi->incomingValue(Idx)->type() != Phi->type())
        fail(BB, I, "phi incoming value type mismatch");
    }
  }

  if (const auto *Ret = dyn_cast<RetInst>(I)) {
    Type Expected = BB->parent()->returnType();
    if (Expected == Type::Void) {
      if (Ret->value())
        fail(BB, I, "value returned from void method");
    } else if (!Ret->value() || Ret->value()->type() != Expected) {
      fail(BB, I, "return value type mismatch");
    }
  }

  if (const auto *Put = dyn_cast<PutFieldInst>(I))
    if (Put->value()->type() != Put->field()->Ty)
      fail(BB, I, "putfield value type mismatch");

  if (const auto *Get = dyn_cast<GetFieldInst>(I))
    if (Get->type() != Get->field()->Ty)
      fail(BB, I, "getfield result type mismatch");
}

bool ir::verifyMethod(Method *M, std::vector<std::string> *Errors) {
  return VerifierImpl(M, Errors).run();
}

bool ir::verifyModule(Module *M, std::vector<std::string> *Errors) {
  bool Ok = true;
  for (const auto &Fn : M->methods()) {
    if (Fn->isNative())
      continue;
    Ok &= verifyMethod(Fn.get(), Errors);
  }
  return Ok;
}
