//===- ir/BasicBlock.cpp --------------------------------------------------===//

#include "ir/BasicBlock.h"

#include "support/ErrorHandling.h"

#include <algorithm>

using namespace spf;
using namespace spf::ir;

Instruction *BasicBlock::append(std::unique_ptr<Instruction> I) {
  assert(!terminator() && "appending past a terminator");
  I->setParent(this);
  Insts.push_back(std::move(I));
  return Insts.back().get();
}

Instruction *BasicBlock::insertAfter(Instruction *Pos,
                                     std::unique_ptr<Instruction> I) {
  assert(Pos->parent() == this && "insertion point not in this block");
  auto It = std::find_if(Insts.begin(), Insts.end(),
                         [Pos](const std::unique_ptr<Instruction> &P) {
                           return P.get() == Pos;
                         });
  assert(It != Insts.end() && "insertion point missing from block");
  I->setParent(this);
  return Insts.insert(std::next(It), std::move(I))->get();
}

std::unique_ptr<Instruction> BasicBlock::detach(Instruction *I) {
  auto It = std::find_if(Insts.begin(), Insts.end(),
                         [I](const std::unique_ptr<Instruction> &P) {
                           return P.get() == I;
                         });
  assert(It != Insts.end() && "detaching instruction not in this block");
  std::unique_ptr<Instruction> Owned = std::move(*It);
  Insts.erase(It);
  Owned->setParent(nullptr);
  return Owned;
}

Instruction *BasicBlock::insertBefore(Instruction *Pos,
                                      std::unique_ptr<Instruction> I) {
  assert(Pos->parent() == this && "insertion point not in this block");
  auto It = std::find_if(Insts.begin(), Insts.end(),
                         [Pos](const std::unique_ptr<Instruction> &P) {
                           return P.get() == Pos;
                         });
  assert(It != Insts.end() && "insertion point missing from block");
  I->setParent(this);
  return Insts.insert(It, std::move(I))->get();
}

void BasicBlock::erase(Instruction *I) {
  auto It = std::find_if(Insts.begin(), Insts.end(),
                         [I](const std::unique_ptr<Instruction> &P) {
                           return P.get() == I;
                         });
  assert(It != Insts.end() && "erasing instruction not in this block");
  Insts.erase(It);
}

std::vector<BasicBlock *> BasicBlock::successors() const {
  Instruction *Term = terminator();
  if (!Term)
    return {};
  if (auto *Br = dyn_cast<BranchInst>(Term)) {
    if (Br->trueSuccessor() == Br->falseSuccessor())
      return {Br->trueSuccessor()};
    return {Br->trueSuccessor(), Br->falseSuccessor()};
  }
  if (auto *J = dyn_cast<JumpInst>(Term))
    return {J->target()};
  return {}; // Ret.
}
