//===- ir/IRPrinter.h - Textual IR dumps ------------------------*- C++ -*-===//
///
/// \file
/// Prints methods and instructions in a readable textual form. Used by the
/// examples, the Table 1 / Figure 4-5 harness, and test diagnostics.
///
//===----------------------------------------------------------------------===//

#ifndef SPF_IR_IRPRINTER_H
#define SPF_IR_IRPRINTER_H

#include "ir/Method.h"

#include <ostream>
#include <string>

namespace spf {
namespace ir {

/// Returns a short printable spelling of an operand (%id, constant, arg).
std::string valueName(const Value *V);

/// Prints one instruction (no trailing newline).
void printInstruction(std::ostream &OS, const Instruction *I);

/// Prints the whole method: signature, blocks, instructions.
void printMethod(std::ostream &OS, Method *M);

} // namespace ir
} // namespace spf

#endif // SPF_IR_IRPRINTER_H
