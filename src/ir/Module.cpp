//===- ir/Module.cpp ------------------------------------------------------===//

#include "ir/Module.h"

using namespace spf;
using namespace spf::ir;

Method *Module::addMethod(std::string Name, Type RetTy,
                          std::vector<Type> ParamTys) {
  Methods.push_back(std::make_unique<Method>(this, std::move(Name), RetTy,
                                             std::move(ParamTys)));
  return Methods.back().get();
}

Method *Module::findMethod(const std::string &Name) const {
  for (const auto &M : Methods)
    if (M->name() == Name)
      return M.get();
  return nullptr;
}

Constant *Module::intConstImpl(Type Ty, int64_t V) {
  auto Key = std::make_pair(static_cast<uint8_t>(Ty),
                            static_cast<uint64_t>(V));
  auto It = Constants.find(Key);
  if (It != Constants.end())
    return It->second.get();
  auto C = std::make_unique<Constant>(Ty, static_cast<uint64_t>(V));
  Constant *Raw = C.get();
  Constants.emplace(Key, std::move(C));
  return Raw;
}

Constant *Module::intConst(Type Ty, int64_t V) {
  assert((Ty == Type::I32 || Ty == Type::I64 || Ty == Type::Ref) &&
         "intConst requires an integer-like type");
  return intConstImpl(Ty, V);
}

Constant *Module::floatConst(double V) {
  uint64_t Bits;
  __builtin_memcpy(&Bits, &V, sizeof(Bits));
  return intConstImpl(Type::F64, static_cast<int64_t>(Bits));
}

StaticVarDesc *Module::addStatic(std::string Name, Type Ty) {
  auto Var = std::make_unique<StaticVarDesc>();
  Var->Name = std::move(Name);
  Var->Ty = Ty;
  Statics.push_back(std::move(Var));
  return Statics.back().get();
}
