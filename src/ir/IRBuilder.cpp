//===- ir/IRBuilder.cpp ---------------------------------------------------===//

#include "ir/IRBuilder.h"

using namespace spf;
using namespace spf::ir;

Instruction *IRBuilder::insert(std::unique_ptr<Instruction> I) {
  assert(BB && "no insertion block set");
  return BB->append(std::move(I));
}

Value *IRBuilder::binary(BinaryInst::BinOp Op, Value *Lhs, Value *Rhs) {
  assert(Lhs->type() == Rhs->type() && "binary operand types differ");
  Type ResTy = Lhs->type();
  if (Op >= BinaryInst::BinOp::CmpEq)
    ResTy = Type::I32;
  return insert(std::make_unique<BinaryInst>(Op, ResTy, Lhs, Rhs));
}

Value *IRBuilder::conv(ConvInst::ConvOp Op, Value *Src) {
  Type Ty = Type::I32;
  switch (Op) {
  case ConvInst::ConvOp::SExt32To64:
    Ty = Type::I64;
    break;
  case ConvInst::ConvOp::Trunc64To32:
    Ty = Type::I32;
    break;
  case ConvInst::ConvOp::IToF:
    Ty = Type::F64;
    break;
  case ConvInst::ConvOp::FToI:
    Ty = Type::I32;
    break;
  }
  return insert(std::make_unique<ConvInst>(Op, Ty, Src));
}

Value *IRBuilder::getField(Value *Obj, const vm::FieldDesc *Field) {
  return insert(std::make_unique<GetFieldInst>(Obj, Field));
}

void IRBuilder::putField(Value *Obj, const vm::FieldDesc *Field, Value *V) {
  insert(std::make_unique<PutFieldInst>(Obj, Field, V));
}

Value *IRBuilder::getStatic(const StaticVarDesc *Var) {
  return insert(std::make_unique<GetStaticInst>(Var));
}

void IRBuilder::putStatic(const StaticVarDesc *Var, Value *V) {
  insert(std::make_unique<PutStaticInst>(Var, V));
}

Value *IRBuilder::aload(Value *Array, Value *Index, Type ElemTy) {
  return insert(std::make_unique<ALoadInst>(Array, Index, ElemTy));
}

void IRBuilder::astore(Value *Array, Value *Index, Value *V) {
  insert(std::make_unique<AStoreInst>(Array, Index, V));
}

Value *IRBuilder::arrayLength(Value *Array) {
  return insert(std::make_unique<ArrayLengthInst>(Array));
}

Value *IRBuilder::newObject(const vm::ClassDesc *Cls) {
  return insert(std::make_unique<NewObjectInst>(Cls));
}

Value *IRBuilder::newArray(Type ElemTy, Value *Length) {
  return insert(std::make_unique<NewArrayInst>(ElemTy, Length));
}

Value *IRBuilder::call(Method *Callee, Type RetTy, std::vector<Value *> Args,
                       bool IsVirtual) {
  return insert(
      std::make_unique<CallInst>(Callee, RetTy, std::move(Args), IsVirtual));
}

PhiInst *IRBuilder::phi(Type Ty) {
  assert(BB && "no insertion block set");
  assert((BB->empty() || isa<PhiInst>(BB->back())) &&
         "phis must be grouped at the block start");
  return cast<PhiInst>(insert(std::make_unique<PhiInst>(Ty)));
}

void IRBuilder::br(Value *Cond, BasicBlock *TrueBB, BasicBlock *FalseBB) {
  insert(std::make_unique<BranchInst>(Cond, TrueBB, FalseBB));
}

void IRBuilder::jump(BasicBlock *Target) {
  insert(std::make_unique<JumpInst>(Target));
}

void IRBuilder::ret(Value *V) { insert(std::make_unique<RetInst>(V)); }

void IRBuilder::prefetch(Value *Base, Value *Index, unsigned Scale,
                         int64_t Disp, bool Guarded) {
  insert(std::make_unique<PrefetchInst>(Base, Index, Scale, Disp, Guarded));
}

Value *IRBuilder::specLoad(Value *Base, Value *Index, unsigned Scale,
                           int64_t Disp) {
  return insert(std::make_unique<SpecLoadInst>(Base, Index, Scale, Disp));
}
