//===- ir/Instruction.h - IR instruction hierarchy --------------*- C++ -*-===//
///
/// \file
/// The instruction set of the JIT IR. It mirrors the Java-bytecode load
/// taxonomy the paper's algorithm inspects (`getfield`, `getstatic`,
/// `aaload`/`iaload`/`daload`, `arraylength`) plus ordinary arithmetic,
/// control flow, allocation, calls, and the two prefetching primitives the
/// paper assumes (`prefetch` and `spec_load`, Section 3.3).
///
//===----------------------------------------------------------------------===//

#ifndef SPF_IR_INSTRUCTION_H
#define SPF_IR_INSTRUCTION_H

#include "ir/Value.h"
#include "support/Casting.h"
#include "vm/TypeTable.h"

#include <cassert>
#include <vector>

namespace spf {
namespace ir {

class BasicBlock;
class Method;
class Module;

/// Discriminates concrete Instruction subclasses.
enum class Opcode : uint8_t {
  Binary,
  Conv,
  GetField,
  PutField,
  GetStatic,
  PutStatic,
  ALoad,
  AStore,
  ArrayLength,
  NewObject,
  NewArray,
  Call,
  Phi,
  Branch,
  Jump,
  Ret,
  Prefetch,
  SpecLoad,
};

/// Returns a printable mnemonic for \p Op.
const char *opcodeName(Opcode Op);

/// Base class of all instructions.
class Instruction : public Value {
public:
  Opcode opcode() const { return Op; }

  BasicBlock *parent() const { return Parent; }
  void setParent(BasicBlock *BB) { Parent = BB; }

  unsigned numOperands() const { return Operands.size(); }

  Value *operand(unsigned I) const {
    assert(I < Operands.size() && "operand index out of range");
    return Operands[I];
  }

  void setOperand(unsigned I, Value *V) {
    assert(I < Operands.size() && "operand index out of range");
    Operands[I] = V;
  }

  const std::vector<Value *> &operands() const { return Operands; }

  /// Returns true for control-flow terminators (Branch, Jump, Ret).
  bool isTerminator() const {
    return Op == Opcode::Branch || Op == Opcode::Jump || Op == Opcode::Ret;
  }

  /// Returns true for instructions that read memory through a reference:
  /// the candidate nodes of a load dependence graph (Section 3.1).
  bool isHeapLoad() const {
    return Op == Opcode::GetField || Op == Opcode::GetStatic ||
           Op == Opcode::ALoad || Op == Opcode::ArrayLength;
  }

  /// Returns true if the instruction has observable side effects and must
  /// not be removed by DCE.
  bool hasSideEffects() const;

  static bool classof(const Value *V) {
    return V->kind() == ValueKind::Instruction;
  }

protected:
  Instruction(Opcode Op, Type Ty) : Value(ValueKind::Instruction, Ty),
                                    Op(Op) {}

  void addOperand(Value *V) { Operands.push_back(V); }

private:
  Opcode Op;
  BasicBlock *Parent = nullptr;
  std::vector<Value *> Operands;
};

/// Integer/float arithmetic, logic, shifts, and comparisons.
class BinaryInst : public Instruction {
public:
  enum class BinOp : uint8_t {
    Add, Sub, Mul, Div, Rem,
    And, Or, Xor, Shl, Shr,
    CmpEq, CmpNe, CmpLt, CmpLe, CmpGt, CmpGe,
  };

  BinaryInst(BinOp Op, Type Ty, Value *Lhs, Value *Rhs)
      : Instruction(Opcode::Binary, Ty), Op(Op) {
    addOperand(Lhs);
    addOperand(Rhs);
  }

  BinOp binOp() const { return Op; }
  Value *lhs() const { return operand(0); }
  Value *rhs() const { return operand(1); }

  bool isComparison() const { return Op >= BinOp::CmpEq; }

  static const char *binOpName(BinOp Op);

  static bool classof(const Value *V) {
    auto *I = dyn_cast<Instruction>(V);
    return I && I->opcode() == Opcode::Binary;
  }

private:
  BinOp Op;
};

/// Numeric conversions between the slot types.
class ConvInst : public Instruction {
public:
  enum class ConvOp : uint8_t { SExt32To64, Trunc64To32, IToF, FToI };

  ConvInst(ConvOp Op, Type Ty, Value *Src)
      : Instruction(Opcode::Conv, Ty), Op(Op) {
    addOperand(Src);
  }

  ConvOp convOp() const { return Op; }
  Value *src() const { return operand(0); }

  static bool classof(const Value *V) {
    auto *I = dyn_cast<Instruction>(V);
    return I && I->opcode() == Opcode::Conv;
  }

private:
  ConvOp Op;
};

/// Loads an instance field: `getfield` in bytecode terms.
class GetFieldInst : public Instruction {
public:
  GetFieldInst(Value *Object, const vm::FieldDesc *Field)
      : Instruction(Opcode::GetField, Field->Ty), Field(Field) {
    assert(Object->type() == Type::Ref && "getfield base must be a ref");
    addOperand(Object);
  }

  Value *object() const { return operand(0); }
  const vm::FieldDesc *field() const { return Field; }

  static bool classof(const Value *V) {
    auto *I = dyn_cast<Instruction>(V);
    return I && I->opcode() == Opcode::GetField;
  }

private:
  const vm::FieldDesc *Field;
};

/// Stores an instance field: `putfield`.
class PutFieldInst : public Instruction {
public:
  PutFieldInst(Value *Object, const vm::FieldDesc *Field, Value *Val)
      : Instruction(Opcode::PutField, Type::Void), Field(Field) {
    assert(Object->type() == Type::Ref && "putfield base must be a ref");
    addOperand(Object);
    addOperand(Val);
  }

  Value *object() const { return operand(0); }
  Value *value() const { return operand(1); }
  const vm::FieldDesc *field() const { return Field; }

  static bool classof(const Value *V) {
    auto *I = dyn_cast<Instruction>(V);
    return I && I->opcode() == Opcode::PutField;
  }

private:
  const vm::FieldDesc *Field;
};

/// Describes a static (class) variable; owned by the Module. The address
/// is assigned when the workload maps its statics into the simulated heap.
struct StaticVarDesc {
  std::string Name;
  Type Ty = Type::I32;
  vm::Addr Address = 0;
};

/// Loads a static variable: `getstatic`.
class GetStaticInst : public Instruction {
public:
  explicit GetStaticInst(const StaticVarDesc *Var)
      : Instruction(Opcode::GetStatic, Var->Ty), Var(Var) {}

  const StaticVarDesc *variable() const { return Var; }

  static bool classof(const Value *V) {
    auto *I = dyn_cast<Instruction>(V);
    return I && I->opcode() == Opcode::GetStatic;
  }

private:
  const StaticVarDesc *Var;
};

/// Stores a static variable: `putstatic`.
class PutStaticInst : public Instruction {
public:
  PutStaticInst(const StaticVarDesc *Var, Value *Val)
      : Instruction(Opcode::PutStatic, Type::Void), Var(Var) {
    addOperand(Val);
  }

  const StaticVarDesc *variable() const { return Var; }
  Value *value() const { return operand(0); }

  static bool classof(const Value *V) {
    auto *I = dyn_cast<Instruction>(V);
    return I && I->opcode() == Opcode::PutStatic;
  }

private:
  const StaticVarDesc *Var;
};

/// Loads an array element: `aaload` / `iaload` / `daload` depending on the
/// element type.
class ALoadInst : public Instruction {
public:
  ALoadInst(Value *Array, Value *Index, Type ElemTy)
      : Instruction(Opcode::ALoad, ElemTy) {
    assert(Array->type() == Type::Ref && "aload base must be a ref");
    assert(Index->type() == Type::I32 && "array index must be i32");
    addOperand(Array);
    addOperand(Index);
  }

  Value *array() const { return operand(0); }
  Value *index() const { return operand(1); }

  static bool classof(const Value *V) {
    auto *I = dyn_cast<Instruction>(V);
    return I && I->opcode() == Opcode::ALoad;
  }
};

/// Stores an array element.
class AStoreInst : public Instruction {
public:
  AStoreInst(Value *Array, Value *Index, Value *Val)
      : Instruction(Opcode::AStore, Type::Void) {
    assert(Array->type() == Type::Ref && "astore base must be a ref");
    assert(Index->type() == Type::I32 && "array index must be i32");
    addOperand(Array);
    addOperand(Index);
    addOperand(Val);
  }

  Value *array() const { return operand(0); }
  Value *index() const { return operand(1); }
  Value *value() const { return operand(2); }

  static bool classof(const Value *V) {
    auto *I = dyn_cast<Instruction>(V);
    return I && I->opcode() == Opcode::AStore;
  }
};

/// Loads the length word from an array header: `arraylength`. Generated
/// implicitly for bound checks, hence a load-dependence-graph node.
class ArrayLengthInst : public Instruction {
public:
  explicit ArrayLengthInst(Value *Array)
      : Instruction(Opcode::ArrayLength, Type::I32) {
    assert(Array->type() == Type::Ref && "arraylength base must be a ref");
    addOperand(Array);
  }

  Value *array() const { return operand(0); }

  static bool classof(const Value *V) {
    auto *I = dyn_cast<Instruction>(V);
    return I && I->opcode() == Opcode::ArrayLength;
  }
};

/// Allocates an instance of a class. The interpreter bump-allocates and
/// may trigger a garbage collection.
class NewObjectInst : public Instruction {
public:
  explicit NewObjectInst(const vm::ClassDesc *Cls)
      : Instruction(Opcode::NewObject, Type::Ref), Cls(Cls) {}

  const vm::ClassDesc *objectClass() const { return Cls; }

  static bool classof(const Value *V) {
    auto *I = dyn_cast<Instruction>(V);
    return I && I->opcode() == Opcode::NewObject;
  }

private:
  const vm::ClassDesc *Cls;
};

/// Allocates an array of a primitive or reference element type.
class NewArrayInst : public Instruction {
public:
  NewArrayInst(Type ElemTy, Value *Length)
      : Instruction(Opcode::NewArray, Type::Ref), ElemTy(ElemTy) {
    assert(Length->type() == Type::I32 && "array length must be i32");
    addOperand(Length);
  }

  Type elementType() const { return ElemTy; }
  Value *length() const { return operand(0); }

  static bool classof(const Value *V) {
    auto *I = dyn_cast<Instruction>(V);
    return I && I->opcode() == Opcode::NewArray;
  }

private:
  Type ElemTy;
};

/// A (possibly virtual) method invocation. Object inspection skips calls
/// and treats their results as unknown (Section 3.2).
class CallInst : public Instruction {
public:
  CallInst(Method *Callee, Type RetTy, std::vector<Value *> Args,
           bool IsVirtual)
      : Instruction(Opcode::Call, RetTy), Callee(Callee),
        IsVirtual(IsVirtual) {
    for (Value *A : Args)
      addOperand(A);
  }

  Method *callee() const { return Callee; }
  bool isVirtual() const { return IsVirtual; }

  static bool classof(const Value *V) {
    auto *I = dyn_cast<Instruction>(V);
    return I && I->opcode() == Opcode::Call;
  }

private:
  Method *Callee;
  bool IsVirtual;
};

/// SSA phi node. Incoming blocks parallel the operand list.
class PhiInst : public Instruction {
public:
  explicit PhiInst(Type Ty) : Instruction(Opcode::Phi, Ty) {}

  void addIncoming(BasicBlock *Pred, Value *V) {
    addOperand(V);
    Blocks.push_back(Pred);
  }

  unsigned numIncoming() const { return Blocks.size(); }
  BasicBlock *incomingBlock(unsigned I) const { return Blocks[I]; }
  Value *incomingValue(unsigned I) const { return operand(I); }

  /// Returns the value flowing in from \p Pred, or null.
  Value *valueFor(const BasicBlock *Pred) const {
    for (unsigned I = 0, E = Blocks.size(); I != E; ++I)
      if (Blocks[I] == Pred)
        return operand(I);
    return nullptr;
  }

  static bool classof(const Value *V) {
    auto *I = dyn_cast<Instruction>(V);
    return I && I->opcode() == Opcode::Phi;
  }

private:
  std::vector<BasicBlock *> Blocks;
};

/// Two-way conditional branch; the condition is an i32 (0 = false).
class BranchInst : public Instruction {
public:
  BranchInst(Value *Cond, BasicBlock *TrueBB, BasicBlock *FalseBB)
      : Instruction(Opcode::Branch, Type::Void), TrueBB(TrueBB),
        FalseBB(FalseBB) {
    assert(Cond->type() == Type::I32 && "branch condition must be i32");
    addOperand(Cond);
  }

  Value *condition() const { return operand(0); }
  BasicBlock *trueSuccessor() const { return TrueBB; }
  BasicBlock *falseSuccessor() const { return FalseBB; }

  static bool classof(const Value *V) {
    auto *I = dyn_cast<Instruction>(V);
    return I && I->opcode() == Opcode::Branch;
  }

private:
  BasicBlock *TrueBB;
  BasicBlock *FalseBB;
};

/// Unconditional jump.
class JumpInst : public Instruction {
public:
  explicit JumpInst(BasicBlock *Target)
      : Instruction(Opcode::Jump, Type::Void), Target(Target) {}

  BasicBlock *target() const { return Target; }

  static bool classof(const Value *V) {
    auto *I = dyn_cast<Instruction>(V);
    return I && I->opcode() == Opcode::Jump;
  }

private:
  BasicBlock *Target;
};

/// Method return, with an optional value.
class RetInst : public Instruction {
public:
  explicit RetInst(Value *Val) : Instruction(Opcode::Ret, Type::Void) {
    if (Val)
      addOperand(Val);
  }

  Value *value() const { return numOperands() ? operand(0) : nullptr; }

  static bool classof(const Value *V) {
    auto *I = dyn_cast<Instruction>(V);
    return I && I->opcode() == Opcode::Ret;
  }
};

/// x86-style address expression shared by Prefetch and SpecLoad:
/// `base + index * scale + disp`, where `index` may be absent.
/// For a `getfield` anchor the address is `obj + offset + d*c`; for an
/// `aaload` anchor it is `arr + header + i*elemsize + d*c`.
class AddressedInst : public Instruction {
public:
  Value *base() const { return operand(0); }
  Value *index() const { return HasIndex ? operand(1) : nullptr; }
  unsigned scale() const { return Scale; }
  int64_t displacement() const { return Disp; }

  /// The demand load this prefetch code was derived from. Its SiteId is
  /// the site the runtime attributes the issue to (and the unit the
  /// prefetch-health governor re-decides) — the anchor always executes
  /// before the prefetch inserted after it, so its site is assigned
  /// first. Null for hand-built instructions: attribution then falls
  /// back to the prefetch instruction itself.
  const Instruction *anchor() const { return Anchor; }
  void setAnchor(const Instruction *A) { Anchor = A; }

  /// The plan's inter-iteration stride in bytes (0 for dereference
  /// targets and pointer chases): the unit of governor-driven
  /// prefetch-distance retuning.
  int64_t strideBytes() const { return StrideBytes; }
  void setStrideBytes(int64_t S) { StrideBytes = S; }

  static bool classof(const Value *V) {
    auto *I = dyn_cast<Instruction>(V);
    return I && (I->opcode() == Opcode::Prefetch ||
                 I->opcode() == Opcode::SpecLoad);
  }

protected:
  AddressedInst(Opcode Op, Type Ty, Value *Base, Value *Index, unsigned Scale,
                int64_t Disp)
      : Instruction(Op, Ty), Scale(Scale), Disp(Disp), HasIndex(Index) {
    assert(Base->type() == Type::Ref && "address base must be a ref");
    addOperand(Base);
    if (Index) {
      assert(Index->type() == Type::I32 && "address index must be i32");
      addOperand(Index);
    }
  }

private:
  unsigned Scale;
  int64_t Disp;
  bool HasIndex;
  const Instruction *Anchor = nullptr;
  int64_t StrideBytes = 0;
};

/// A software prefetch of the cache line at the computed address.
///
/// Plain prefetches map to the hardware `prefetch` instruction: they cost
/// almost nothing and are cancelled on a DTLB miss. Guarded prefetches map
/// to a load guarded by a software exception check: they perform a real
/// access, filling the DTLB (TLB priming, used for intra-iteration
/// prefetching on the Pentium 4 per Section 4).
class PrefetchInst : public AddressedInst {
public:
  PrefetchInst(Value *Base, Value *Index, unsigned Scale, int64_t Disp,
               bool Guarded)
      : AddressedInst(Opcode::Prefetch, Type::Void, Base, Index, Scale, Disp),
        Guarded(Guarded) {}

  bool isGuarded() const { return Guarded; }

  static bool classof(const Value *V) {
    auto *I = dyn_cast<Instruction>(V);
    return I && I->opcode() == Opcode::Prefetch;
  }

private:
  bool Guarded;
};

/// A speculative (guarded) load of a reference from the computed address;
/// yields null instead of faulting when the address is invalid. Realized
/// on IA-32 as an ordinary load guarded by a software exception check
/// (Section 3.3, "Mapping to Hardware Instructions").
class SpecLoadInst : public AddressedInst {
public:
  SpecLoadInst(Value *Base, Value *Index, unsigned Scale, int64_t Disp)
      : AddressedInst(Opcode::SpecLoad, Type::Ref, Base, Index, Scale, Disp) {}

  static bool classof(const Value *V) {
    auto *I = dyn_cast<Instruction>(V);
    return I && I->opcode() == Opcode::SpecLoad;
  }
};

} // namespace ir
} // namespace spf

#endif // SPF_IR_INSTRUCTION_H
