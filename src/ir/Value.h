//===- ir/Value.h - Base of the IR value hierarchy --------------*- C++ -*-===//
///
/// \file
/// `Value` is the root of the IR's def hierarchy: constants, method
/// arguments, and instructions all produce values. LLVM-style `isa<>` /
/// `cast<>` dispatch runs on `Value::kind()`.
///
//===----------------------------------------------------------------------===//

#ifndef SPF_IR_VALUE_H
#define SPF_IR_VALUE_H

#include "ir/Type.h"

#include <cstdint>
#include <string>

namespace spf {
namespace ir {

/// Discriminator for the Value hierarchy.
enum class ValueKind : uint8_t {
  Constant,
  Argument,
  Instruction,
};

/// Anything that can appear as an instruction operand.
class Value {
public:
  Value(const Value &) = delete;
  Value &operator=(const Value &) = delete;
  virtual ~Value() = default;

  ValueKind kind() const { return Kind; }
  Type type() const { return Ty; }

  /// A small per-method id used by the printer (%<id>); constants use
  /// their literal spelling instead.
  unsigned id() const { return Id; }
  void setId(unsigned NewId) { Id = NewId; }

  /// Optional name for readable dumps.
  const std::string &name() const { return Name; }
  void setName(std::string NewName) { Name = std::move(NewName); }

protected:
  Value(ValueKind Kind, Type Ty) : Kind(Kind), Ty(Ty) {}

private:
  ValueKind Kind;
  Type Ty;
  unsigned Id = 0;
  std::string Name;
};

/// A compile-time constant. Integers, doubles (bit-cast into the raw
/// payload), and the null reference are all Constants.
class Constant : public Value {
public:
  Constant(Type Ty, uint64_t RawBits)
      : Value(ValueKind::Constant, Ty), Raw(RawBits) {}

  /// Raw 64-bit payload (sign-extended for I32, bit pattern for F64).
  uint64_t raw() const { return Raw; }

  int64_t intValue() const { return static_cast<int64_t>(Raw); }

  double floatValue() const {
    double D;
    static_assert(sizeof(D) == sizeof(Raw));
    __builtin_memcpy(&D, &Raw, sizeof(D));
    return D;
  }

  bool isNullRef() const { return type() == Type::Ref && Raw == 0; }

  static bool classof(const Value *V) {
    return V->kind() == ValueKind::Constant;
  }

private:
  uint64_t Raw;
};

/// A formal parameter of a method.
class Argument : public Value {
public:
  Argument(Type Ty, unsigned Index) : Value(ValueKind::Argument, Ty),
                                      Index(Index) {}

  unsigned index() const { return Index; }

  static bool classof(const Value *V) {
    return V->kind() == ValueKind::Argument;
  }

private:
  unsigned Index;
};

} // namespace ir
} // namespace spf

#endif // SPF_IR_VALUE_H
