//===- ir/Type.h - Primitive IR types ---------------------------*- C++ -*-===//
///
/// \file
/// The IR's primitive type system. The JIT IR models Java-bytecode-shaped
/// programs, so only a small set of slot types exists: 32/64-bit integers,
/// doubles, references (simulated 64-bit heap addresses), and void.
///
//===----------------------------------------------------------------------===//

#ifndef SPF_IR_TYPE_H
#define SPF_IR_TYPE_H

#include <cassert>
#include <cstdint>

namespace spf {
namespace ir {

/// A primitive IR slot type.
enum class Type : uint8_t {
  Void, ///< No value (procedure returns).
  I32,  ///< 32-bit signed integer (Java int, booleans, array indices).
  I64,  ///< 64-bit signed integer (Java long).
  F64,  ///< IEEE double.
  Ref,  ///< Object reference: a simulated 64-bit heap address.
};

/// Returns the in-memory size in bytes of a value of type \p Ty when stored
/// in an object field or array element.
inline unsigned storageSize(Type Ty) {
  switch (Ty) {
  case Type::Void:
    assert(false && "void has no storage size");
    return 0;
  case Type::I32:
    return 4;
  case Type::I64:
  case Type::F64:
  case Type::Ref:
    return 8;
  }
  return 0;
}

/// Returns a short printable name for \p Ty.
inline const char *typeName(Type Ty) {
  switch (Ty) {
  case Type::Void:
    return "void";
  case Type::I32:
    return "i32";
  case Type::I64:
    return "i64";
  case Type::F64:
    return "f64";
  case Type::Ref:
    return "ref";
  }
  return "?";
}

} // namespace ir
} // namespace spf

#endif // SPF_IR_TYPE_H
