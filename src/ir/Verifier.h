//===- ir/Verifier.h - IR well-formedness checks ----------------*- C++ -*-===//
///
/// \file
/// Structural verifier: every block ends in exactly one terminator, phis
/// match predecessor lists, operand types agree with opcode contracts, and
/// all referenced blocks belong to the method. Run after construction and
/// after every transformation pass.
///
//===----------------------------------------------------------------------===//

#ifndef SPF_IR_VERIFIER_H
#define SPF_IR_VERIFIER_H

#include "ir/Method.h"

#include <string>
#include <vector>

namespace spf {
namespace ir {

/// Verifies \p M; appends human-readable problems to \p Errors.
/// \returns true when the method is well-formed.
bool verifyMethod(Method *M, std::vector<std::string> *Errors = nullptr);

/// Verifies every non-native method in \p M.
bool verifyModule(Module *M, std::vector<std::string> *Errors = nullptr);

} // namespace ir
} // namespace spf

#endif // SPF_IR_VERIFIER_H
