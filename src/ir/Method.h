//===- ir/Method.h - A compiled method --------------------------*- C++ -*-===//
///
/// \file
/// A method: a CFG of basic blocks plus formal arguments. Methods may also
/// be "native" (implemented by a C++ callback), which models runtime
/// library calls like `String.equals`; object inspection skips such calls
/// exactly as it skips ordinary invocations.
///
//===----------------------------------------------------------------------===//

#ifndef SPF_IR_METHOD_H
#define SPF_IR_METHOD_H

#include "ir/BasicBlock.h"

#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace spf {
namespace ir {

class Module;

/// Signature and body of a method.
class Method {
public:
  /// Native callback: receives raw 64-bit argument slots, returns a raw
  /// 64-bit result slot.
  using NativeFn = std::function<uint64_t(const std::vector<uint64_t> &)>;

  Method(Module *Parent, std::string Name, Type RetTy,
         std::vector<Type> ParamTys);

  Method(const Method &) = delete;
  Method &operator=(const Method &) = delete;

  Module *parent() const { return Parent; }
  const std::string &name() const { return Name; }
  Type returnType() const { return RetTy; }

  const std::vector<std::unique_ptr<Argument>> &arguments() const {
    return Args;
  }
  Argument *arg(unsigned I) const { return Args[I].get(); }
  unsigned numArgs() const { return Args.size(); }

  const std::vector<std::unique_ptr<BasicBlock>> &blocks() const {
    return Blocks;
  }
  BasicBlock *entry() const {
    return Blocks.empty() ? nullptr : Blocks.front().get();
  }
  size_t numBlocks() const { return Blocks.size(); }

  /// Creates and appends a new block. The first block created is the entry.
  BasicBlock *addBlock(std::string BlockName);

  /// Recomputes predecessor lists from terminators. Call after the CFG is
  /// fully built or after edits.
  void recomputePreds();

  /// Assigns dense printer ids to all values in program order.
  void renumber();

  /// True if the method is implemented natively rather than in IR.
  bool isNative() const { return static_cast<bool>(Native); }
  const NativeFn &nativeImpl() const { return Native; }
  void setNative(NativeFn Fn) { Native = std::move(Fn); }

private:
  Module *Parent;
  std::string Name;
  Type RetTy;
  std::vector<std::unique_ptr<Argument>> Args;
  std::vector<std::unique_ptr<BasicBlock>> Blocks;
  NativeFn Native;
};

} // namespace ir
} // namespace spf

#endif // SPF_IR_METHOD_H
