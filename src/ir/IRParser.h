//===- ir/IRParser.h - Textual IR parsing -----------------------*- C++ -*-===//
///
/// \file
/// Parses the textual form produced by ir/IRPrinter back into IR. Round-
/// tripping `printMethod` output is a tested invariant, which makes the
/// textual form a stable interchange format for test cases and tools.
///
/// Accepted grammar (exactly the printer's output):
///
///   method <type> <name>(<type> %arg0[.name], ...) {
///   <label>:[  ; preds: ...]
///     %<id>[.name] = <op> ...
///     ...
///   }
///
/// Field references (`Class::field`) resolve through the vm::TypeTable;
/// call targets resolve by name against methods already in the module
/// (parse callees before callers). Values may be referenced before their
/// textual definition (phis); unresolved references are patched in a
/// second pass.
///
//===----------------------------------------------------------------------===//

#ifndef SPF_IR_IRPARSER_H
#define SPF_IR_IRPARSER_H

#include "ir/Module.h"

#include <string>

namespace spf {
namespace ir {

/// Parses one `method ... { ... }` definition from \p Text into \p M.
/// \returns the new method, or null with a message in \p Error.
Method *parseMethod(Module &M, const vm::TypeTable &Types,
                    const std::string &Text, std::string *Error = nullptr);

} // namespace ir
} // namespace spf

#endif // SPF_IR_IRPARSER_H
