//===- ir/IRParser.cpp ----------------------------------------------------===//

#include "ir/IRParser.h"

#include "ir/IRBuilder.h"
#include "support/ErrorHandling.h"

#include <cstdlib>
#include <sstream>
#include <unordered_map>

using namespace spf;
using namespace spf::ir;

namespace {

/// Parser state for one method body.
class MethodParser {
public:
  MethodParser(Module &M, const vm::TypeTable &Types, const std::string &Text)
      : M(M), Types(Types), Text(Text) {}

  Method *parse(std::string *Error);

private:
  /// Records the first failure; subsequent parsing short-circuits.
  void fail(const std::string &Msg) {
    if (Failed)
      return;
    Failed = true;
    ErrorMsg = "line " + std::to_string(LineNo) + ": " + Msg;
  }

  static std::string trim(const std::string &S) {
    size_t B = S.find_first_not_of(" \t\r");
    if (B == std::string::npos)
      return "";
    size_t E = S.find_last_not_of(" \t\r");
    return S.substr(B, E - B + 1);
  }

  Type parseType(const std::string &T) {
    if (T == "void")
      return Type::Void;
    if (T == "i32")
      return Type::I32;
    if (T == "i64")
      return Type::I64;
    if (T == "f64")
      return Type::F64;
    if (T == "ref")
      return Type::Ref;
    fail("unknown type '" + T + "'");
    return Type::I32;
  }

  /// Splits a printed value token into its symbol ("%5", "%arg0") by
  /// stripping the optional ".name" suffix.
  static std::string symbolOf(const std::string &Token) {
    size_t Dot = Token.find('.');
    return Dot == std::string::npos ? Token : Token.substr(0, Dot);
  }

  /// Resolves a value token of expected type \p Ty. Unresolved %ids get a
  /// placeholder constant and a patch entry.
  Value *parseValue(const std::string &Token, Type Ty) {
    if (Token.empty()) {
      fail("empty value token");
      return M.intConst(Type::I32, 0);
    }
    if (Token[0] == '%') {
      std::string Sym = symbolOf(Token);
      auto It = Symbols.find(Sym);
      if (It != Symbols.end())
        return It->second;
      // Non-phi forward references only occur when the printed block
      // order is not dominance-compatible; the printer's output for IR
      // built in construction order never does this.
      fail("undefined value '" + Sym + "' (only phi incomings may be "
           "forward references)");
      return M.intConst(Ty == Type::F64 ? Type::I64
                        : Ty == Type::Void ? Type::I32
                                           : Ty,
                        0);
    }
    // Constants.
    if (Token.rfind("null:", 0) == 0)
      return M.nullRef();
    if (Token.rfind("ref:", 0) == 0)
      return M.intConst(Type::Ref,
                        static_cast<int64_t>(
                            std::strtoull(Token.c_str() + 4, nullptr, 16)));
    if (Ty == Type::F64)
      return M.floatConst(std::strtod(Token.c_str(), nullptr));
    return M.intConst(Ty == Type::Void ? Type::I32 : Ty,
                      std::strtoll(Token.c_str(), nullptr, 10));
  }

  /// Resolves "Class::field" (optionally preceded by the printed base
  /// token, e.g. "%arg0.tv.TokenVector::v"), returning the field and the
  /// base value token.
  const vm::FieldDesc *parseFieldRef(const std::string &Token,
                                     std::string &BaseToken) {
    BaseToken = "%arg0";
    size_t Sep = Token.find("::");
    if (Sep == std::string::npos) {
      fail("expected Class::field in '" + Token + "'");
      return nullptr;
    }
    std::string FieldName = Token.substr(Sep + 2);
    std::string Left = Token.substr(0, Sep);
    size_t Dot = Left.rfind('.');
    if (Dot == std::string::npos) {
      fail("expected base value before class name in '" + Token + "'");
      return nullptr;
    }
    std::string ClassName = Left.substr(Dot + 1);
    BaseToken = Left.substr(0, Dot);
    const vm::ClassDesc *Cls = Types.findClass(ClassName);
    if (!Cls) {
      fail("unknown class '" + ClassName + "'");
      return nullptr;
    }
    const vm::FieldDesc *F = Cls->findField(FieldName);
    if (!F)
      fail("unknown field '" + ClassName + "::" + FieldName + "'");
    return F;
  }

  BasicBlock *blockOf(const std::string &Label) {
    auto It = Blocks.find(Label);
    if (It == Blocks.end()) {
      fail("unknown block label '" + Label + "'");
      return Fn->entry();
    }
    return It->second;
  }

  /// Splits "a, b, c" into trimmed pieces (no nesting in our grammar).
  std::vector<std::string> splitCommas(const std::string &S) {
    std::vector<std::string> Out;
    std::stringstream SS(S);
    std::string Piece;
    while (std::getline(SS, Piece, ',')) {
      Piece = trim(Piece);
      if (!Piece.empty())
        Out.push_back(Piece);
    }
    return Out;
  }

  /// Parses "[base + idx*scale + disp]" / "[base + disp]" / "[base - d]".
  void parseAddress(const std::string &S, std::string &BaseTok,
                    std::string &IdxTok, unsigned &Scale, int64_t &Disp) {
    BaseTok = "%arg0";
    IdxTok.clear();
    Scale = 0;
    Disp = 0;
    std::string Body = trim(S);
    if (Body.empty() || Body.front() != '[' || Body.back() != ']') {
      fail("expected [address] in '" + S + "'");
      return;
    }
    Body = Body.substr(1, Body.size() - 2);

    // Tokenize on spaces: base [+ idx*scale] (+|-) disp
    std::vector<std::string> Toks;
    std::stringstream SS(Body);
    std::string T;
    while (SS >> T)
      Toks.push_back(T);
    if (Toks.empty()) {
      fail("empty address");
      return;
    }

    BaseTok = Toks[0];
    size_t I = 1;
    if (I + 1 < Toks.size() && Toks[I] == "+" &&
        Toks[I + 1].find('*') != std::string::npos) {
      std::string Pair = Toks[I + 1];
      size_t Star = Pair.find('*');
      IdxTok = Pair.substr(0, Star);
      Scale = static_cast<unsigned>(
          std::strtoul(Pair.c_str() + Star + 1, nullptr, 10));
      I += 2;
    }
    if (I + 1 < Toks.size() && (Toks[I] == "+" || Toks[I] == "-")) {
      Disp = std::strtoll(Toks[I + 1].c_str(), nullptr, 10);
      if (Toks[I] == "-")
        Disp = -Disp;
      I += 2;
    }
    if (I != Toks.size())
      fail("trailing tokens in address '" + S + "'");
  }

  void parseHeader(const std::string &Line);
  void scanLabels(const std::vector<std::string> &Lines);
  void parseInstruction(const std::string &Line);
  Instruction *parseOperation(const std::string &ResultTok,
                              const std::string &Rhs);
  void resolvePatches();

  Module &M;
  const vm::TypeTable &Types;
  const std::string &Text;
  std::string ErrorMsg;
  bool Failed = false;
  unsigned LineNo = 0;

  Method *Fn = nullptr;
  IRBuilder B{M};
  std::unordered_map<std::string, Value *> Symbols;
  std::unordered_map<std::string, BasicBlock *> Blocks;

  struct PhiFix {
    PhiInst *Phi;
    std::vector<std::pair<std::string, std::string>> Incoming; // label,val
  };
  std::vector<PhiFix> PhiFixes;
};

void MethodParser::parseHeader(const std::string &Line) {
  // method <type> <name>(<params>) {
  std::stringstream SS(Line);
  std::string Kw, TypeTok, Rest;
  SS >> Kw >> TypeTok;
  if (Kw != "method") {
    fail("expected 'method'");
    return;
  }
  Type RetTy = parseType(TypeTok);
  std::getline(SS, Rest);
  Rest = trim(Rest);
  size_t Open = Rest.find('(');
  size_t Close = Rest.rfind(')');
  if (Open == std::string::npos || Close == std::string::npos ||
      Close < Open) {
    fail("malformed method signature");
    return;
  }
  std::string Name = trim(Rest.substr(0, Open));
  std::string Params = Rest.substr(Open + 1, Close - Open - 1);

  std::vector<Type> ParamTys;
  std::vector<std::string> ParamNames;
  for (const std::string &P : splitCommas(Params)) {
    std::stringstream PS(P);
    std::string Ty, Tok;
    PS >> Ty >> Tok;
    ParamTys.push_back(parseType(Ty));
    size_t Dot = Tok.find('.');
    ParamNames.push_back(Dot == std::string::npos ? ""
                                                  : Tok.substr(Dot + 1));
  }

  Fn = M.addMethod(Name, RetTy, ParamTys);
  for (unsigned I = 0, E = Fn->numArgs(); I != E; ++I) {
    Symbols["%arg" + std::to_string(I)] = Fn->arg(I);
    if (!ParamNames[I].empty())
      Fn->arg(I)->setName(ParamNames[I]);
  }
}

void MethodParser::scanLabels(const std::vector<std::string> &Lines) {
  for (const std::string &Raw : Lines) {
    if (Raw.empty() || Raw[0] == ' ' || Raw[0] == '}')
      continue;
    size_t Colon = Raw.find(':');
    if (Colon == std::string::npos)
      continue;
    std::string Label = Raw.substr(0, Colon);
    if (Label.rfind("method", 0) == 0)
      continue;
    Blocks[Label] = Fn->addBlock(Label);
  }
}

Instruction *MethodParser::parseOperation(const std::string &ResultTok,
                                          const std::string &Rhs) {
  std::stringstream SS(Rhs);
  std::string Op;
  SS >> Op;
  std::string Rest;
  std::getline(SS, Rest);
  Rest = trim(Rest);
  BasicBlock *BB = B.insertBlock();

  // Binary operations.
  for (int K = 0; K <= static_cast<int>(BinaryInst::BinOp::CmpGe); ++K) {
    auto BK = static_cast<BinaryInst::BinOp>(K);
    if (Op != BinaryInst::binOpName(BK))
      continue;
    std::stringstream RS(Rest);
    std::string TyTok, LhsTok, RhsTok;
    RS >> TyTok >> LhsTok >> RhsTok;
    if (!LhsTok.empty() && LhsTok.back() == ',')
      LhsTok.pop_back();
    Type Ty = parseType(TyTok);
    Value *L = parseValue(LhsTok, Ty);
    Value *R = parseValue(RhsTok, Ty);
    return cast<Instruction>(B.binary(BK, L, R));
  }

  if (Op == "conv") {
    std::stringstream RS(Rest);
    std::string SrcTok, ToKw, TyTok;
    RS >> SrcTok >> ToKw >> TyTok;
    Type DstTy = parseType(TyTok);
    Value *Src = parseValue(SrcTok, Type::I32);
    ConvInst::ConvOp CO;
    if (DstTy == Type::I64)
      CO = ConvInst::ConvOp::SExt32To64;
    else if (DstTy == Type::F64)
      CO = ConvInst::ConvOp::IToF;
    else if (Src->type() == Type::F64)
      CO = ConvInst::ConvOp::FToI;
    else
      CO = ConvInst::ConvOp::Trunc64To32;
    return cast<Instruction>(B.conv(CO, Src));
  }

  if (Op == "getfield") {
    // <base.Class::field> (+off)
    std::stringstream RS(Rest);
    std::string RefTok;
    RS >> RefTok;
    std::string BaseTok;
    const vm::FieldDesc *F = parseFieldRef(RefTok, BaseTok);
    if (!F)
      return nullptr;
    Value *Base = parseValue(BaseTok, Type::Ref);
    if (Base->type() != Type::Ref) {
      fail("getfield base is not a ref");
      return nullptr;
    }
    return cast<Instruction>(B.getField(Base, F));
  }

  if (Op == "putfield") {
    // <base.Class::field> = <val>
    size_t Eq = Rest.find('=');
    if (Eq == std::string::npos) {
      fail("expected '=' in putfield");
      return nullptr;
    }
    std::string RefTok = trim(Rest.substr(0, Eq));
    std::string ValTok = trim(Rest.substr(Eq + 1));
    std::string BaseTok;
    const vm::FieldDesc *F = parseFieldRef(RefTok, BaseTok);
    if (!F)
      return nullptr;
    Value *Base = parseValue(BaseTok, Type::Ref);
    if (Base->type() != Type::Ref) {
      fail("putfield base is not a ref");
      return nullptr;
    }
    B.putField(Base, F, parseValue(ValTok, F->Ty));
    return BB->back();
  }

  if (Op == "getstatic" || Op == "putstatic") {
    std::stringstream RS(Rest);
    std::string Name;
    RS >> Name;
    StaticVarDesc *Var = nullptr;
    for (const auto &SV : M.statics())
      if (SV->Name == Name)
        Var = SV.get();
    if (!Var) {
      fail("unknown static '" + Name + "'");
      return nullptr;
    }
    if (Op == "getstatic")
      return cast<Instruction>(B.getStatic(Var));
    size_t Eq = Rest.find('=');
    if (Eq == std::string::npos) {
      fail("expected '=' in putstatic");
      return nullptr;
    }
    B.putStatic(Var, parseValue(trim(Rest.substr(Eq + 1)), Var->Ty));
    return BB->back();
  }

  if (Op.rfind("aload.", 0) == 0) {
    Type ElemTy = parseType(Op.substr(6));
    // <arr>[<idx>]
    size_t Br = Rest.find('[');
    size_t End = Rest.rfind(']');
    if (Br == std::string::npos || End == std::string::npos) {
      fail("expected aload brackets");
      return nullptr;
    }
    Value *Arr = parseValue(trim(Rest.substr(0, Br)), Type::Ref);
    if (Arr->type() != Type::Ref) {
      fail("aload base is not a ref");
      return nullptr;
    }
    Value *Idx = parseValue(trim(Rest.substr(Br + 1, End - Br - 1)),
                            Type::I32);
    return cast<Instruction>(B.aload(Arr, Idx, ElemTy));
  }

  if (Op == "astore") {
    // <arr>[<idx>] = <val>
    size_t Br = Rest.find('[');
    size_t End = Rest.find(']');
    if (Br == std::string::npos || End == std::string::npos) {
      fail("malformed astore");
      return nullptr;
    }
    size_t Eq = Rest.find('=', End);
    if (Eq == std::string::npos) {
      fail("malformed astore");
      return nullptr;
    }
    Value *Arr = parseValue(trim(Rest.substr(0, Br)), Type::Ref);
    if (Arr->type() != Type::Ref) {
      fail("astore base is not a ref");
      return nullptr;
    }
    Value *Idx = parseValue(trim(Rest.substr(Br + 1, End - Br - 1)),
                            Type::I32);
    std::string ValTok = trim(Rest.substr(Eq + 1));
    // Element type is not printed; derive from a defined value when
    // possible, else default integer.
    Type VTy = Type::I32;
    if (ValTok[0] == '%') {
      auto It = Symbols.find(symbolOf(ValTok));
      if (It != Symbols.end())
        VTy = It->second->type();
    } else if (ValTok.find('.') != std::string::npos ||
               ValTok.find('e') != std::string::npos) {
      VTy = Type::F64;
    }
    Value *V = parseValue(ValTok, VTy);
    B.astore(Arr, Idx, V);
    return BB->back();
  }

  if (Op == "arraylength")
    return cast<Instruction>(
        B.arrayLength(parseValue(trim(Rest), Type::Ref)));

  if (Op == "new") {
    const vm::ClassDesc *Cls = Types.findClass(trim(Rest));
    if (!Cls) {
      fail("unknown class '" + Rest + "'");
      return nullptr;
    }
    return cast<Instruction>(B.newObject(Cls));
  }

  if (Op == "newarray") {
    // <ty>[<len>]
    size_t Br = Rest.find('[');
    size_t End = Rest.rfind(']');
    if (Br == std::string::npos || End == std::string::npos) {
      fail("malformed newarray");
      return nullptr;
    }
    Type ElemTy = parseType(trim(Rest.substr(0, Br)));
    Value *Len = parseValue(trim(Rest.substr(Br + 1, End - Br - 1)),
                            Type::I32);
    return cast<Instruction>(B.newArray(ElemTy, Len));
  }

  if (Op == "call" || Op == "callvirt") {
    size_t Open = Rest.find('(');
    size_t Close = Rest.rfind(')');
    if (Open == std::string::npos || Close == std::string::npos) {
      fail("malformed call");
      return nullptr;
    }
    std::string Callee = trim(Rest.substr(0, Open));
    Method *Target = M.findMethod(Callee);
    if (!Target) {
      fail("unknown callee '" + Callee + "'");
      return nullptr;
    }
    std::vector<Value *> Args;
    auto Toks = splitCommas(Rest.substr(Open + 1, Close - Open - 1));
    if (Toks.size() != Target->numArgs()) {
      fail("call argument count mismatch for '" + Callee + "'");
      return nullptr;
    }
    for (unsigned I = 0; I != Toks.size(); ++I)
      Args.push_back(parseValue(Toks[I], Target->arg(I)->type()));
    return cast<Instruction>(B.call(Target, Target->returnType(), Args,
                                    Op == "callvirt"));
  }

  if (Op == "phi") {
    std::stringstream RS(Rest);
    std::string TyTok;
    RS >> TyTok;
    Type Ty = parseType(TyTok);
    PhiInst *Phi = B.phi(Ty);
    std::string Remainder;
    std::getline(RS, Remainder);
    // Incoming entries: [label: value], ...
    PhiFix Fix;
    Fix.Phi = Phi;
    size_t Pos = 0;
    while ((Pos = Remainder.find('[', Pos)) != std::string::npos) {
      size_t End = Remainder.find(']', Pos);
      size_t Colon = Remainder.find(':', Pos);
      if (End == std::string::npos || Colon == std::string::npos ||
          Colon > End) {
        fail("malformed phi incoming");
        return Phi;
      }
      Fix.Incoming.emplace_back(trim(Remainder.substr(Pos + 1,
                                                      Colon - Pos - 1)),
                                trim(Remainder.substr(Colon + 1,
                                                      End - Colon - 1)));
      Pos = End + 1;
    }
    PhiFixes.push_back(std::move(Fix));
    return Phi;
  }

  if (Op == "br") {
    // <cond> ? <true> : <false>
    std::stringstream RS(Rest);
    std::string CondTok, Q, TrueTok, C, FalseTok;
    RS >> CondTok >> Q >> TrueTok >> C >> FalseTok;
    if (Q != "?" || C != ":") {
      fail("malformed br");
      return nullptr;
    }
    Value *Cond = parseValue(CondTok, Type::I32);
    if (Cond->type() != Type::I32) {
      fail("br condition is not i32");
      return nullptr;
    }
    B.br(Cond, blockOf(TrueTok), blockOf(FalseTok));
    return BB->back();
  }

  if (Op == "jump") {
    B.jump(blockOf(trim(Rest)));
    return BB->back();
  }

  if (Op == "ret") {
    std::string Tok = trim(Rest);
    if (Tok.empty())
      B.ret();
    else
      B.ret(parseValue(Tok, Fn->returnType()));
    return BB->back();
  }

  if (Op == "prefetch" || Op == "prefetch.guarded" || Op == "spec_load") {
    std::string BaseTok, IdxTok;
    unsigned Scale;
    int64_t Disp;
    parseAddress(Rest, BaseTok, IdxTok, Scale, Disp);
    Value *Base = parseValue(BaseTok, Type::Ref);
    Value *Idx =
        IdxTok.empty() ? nullptr : parseValue(IdxTok, Type::I32);
    if (Op == "spec_load")
      return cast<Instruction>(B.specLoad(Base, Idx, Scale, Disp));
    B.prefetch(Base, Idx, Scale, Disp, Op == "prefetch.guarded");
    return BB->back();
  }

  (void)ResultTok;
  fail("unknown operation '" + Op + "'");
  return nullptr;
}

void MethodParser::parseInstruction(const std::string &Line) {
  std::string S = trim(Line);
  std::string ResultTok;
  // Optional "%id[.name] = " prefix. Careful: putfield/putstatic/astore
  // also contain '='; a result prefix starts with '%' and the '=' comes
  // before the operation word.
  if (S[0] == '%') {
    size_t Eq = S.find('=');
    if (Eq != std::string::npos) {
      ResultTok = trim(S.substr(0, Eq));
      S = trim(S.substr(Eq + 1));
    }
  }
  Instruction *I = parseOperation(ResultTok, S);
  if (Failed || !I)
    return;
  if (!ResultTok.empty()) {
    std::string Sym = symbolOf(ResultTok);
    Symbols[Sym] = I;
    size_t Dot = ResultTok.find('.');
    if (Dot != std::string::npos)
      I->setName(ResultTok.substr(Dot + 1));
  }
}

void MethodParser::resolvePatches() {
  Fn->recomputePreds();
  for (const PhiFix &F : PhiFixes) {
    for (const auto &[Label, ValTok] : F.Incoming) {
      Value *V = parseValue(ValTok, F.Phi->type());
      if (Failed)
        return;
      F.Phi->addIncoming(blockOf(Label), V);
    }
  }
}

Method *MethodParser::parse(std::string *Error) {
  std::vector<std::string> Lines;
  std::stringstream SS(Text);
  std::string Line;
  while (std::getline(SS, Line)) {
    // Strip comments.
    size_t Semi = Line.find(';');
    if (Semi != std::string::npos)
      Line = Line.substr(0, Semi);
    if (trim(Line).empty())
      continue;
    Lines.push_back(Line);
  }
  if (Lines.empty()) {
    fail("empty input");
  } else {
    LineNo = 1;
    parseHeader(trim(Lines[0]));
  }

  if (!Failed) {
    scanLabels(Lines);
    if (Fn->numBlocks() == 0)
      fail("method has no blocks");
  }

  for (size_t I = 1; !Failed && I < Lines.size(); ++I) {
    LineNo = static_cast<unsigned>(I + 1);
    const std::string &Raw = Lines[I];
    std::string S = trim(Raw);
    if (S == "}")
      break;
    if (Raw[0] != ' ') {
      // A label line: switch insertion point.
      size_t Colon = S.find(':');
      B.setInsertPoint(blockOf(S.substr(0, Colon)));
      continue;
    }
    parseInstruction(S);
  }

  if (!Failed)
    resolvePatches();

  if (Failed) {
    if (Error)
      *Error = ErrorMsg;
    return nullptr;
  }
  return Fn;
}

} // namespace

Method *ir::parseMethod(Module &M, const vm::TypeTable &Types,
                        const std::string &Text, std::string *Error) {
  MethodParser P(M, Types, Text);
  return P.parse(Error);
}
