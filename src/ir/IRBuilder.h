//===- ir/IRBuilder.h - Convenience IR construction -------------*- C++ -*-===//
///
/// \file
/// Builder that appends instructions to a current insertion block, in the
/// style of llvm::IRBuilder. Workload kernels and tests construct their
/// methods through this interface.
///
//===----------------------------------------------------------------------===//

#ifndef SPF_IR_IRBUILDER_H
#define SPF_IR_IRBUILDER_H

#include "ir/Module.h"

namespace spf {
namespace ir {

/// Appends new instructions to a designated basic block.
class IRBuilder {
public:
  explicit IRBuilder(Module &M) : M(M) {}

  Module &module() const { return M; }

  void setInsertPoint(BasicBlock *Block) { BB = Block; }
  BasicBlock *insertBlock() const { return BB; }

  // Constants.
  Constant *i32(int32_t V) { return M.intConst(Type::I32, V); }
  Constant *i64(int64_t V) { return M.intConst(Type::I64, V); }
  Constant *f64(double V) { return M.floatConst(V); }
  Constant *nullRef() { return M.nullRef(); }

  // Arithmetic / comparisons. The result type follows the operands for
  // arithmetic; comparisons produce i32.
  Value *binary(BinaryInst::BinOp Op, Value *Lhs, Value *Rhs);
  Value *add(Value *L, Value *R) { return binary(BinaryInst::BinOp::Add, L, R); }
  Value *sub(Value *L, Value *R) { return binary(BinaryInst::BinOp::Sub, L, R); }
  Value *mul(Value *L, Value *R) { return binary(BinaryInst::BinOp::Mul, L, R); }
  Value *div(Value *L, Value *R) { return binary(BinaryInst::BinOp::Div, L, R); }
  Value *rem(Value *L, Value *R) { return binary(BinaryInst::BinOp::Rem, L, R); }
  Value *andOp(Value *L, Value *R) {
    return binary(BinaryInst::BinOp::And, L, R);
  }
  Value *xorOp(Value *L, Value *R) {
    return binary(BinaryInst::BinOp::Xor, L, R);
  }
  Value *shl(Value *L, Value *R) { return binary(BinaryInst::BinOp::Shl, L, R); }
  Value *shr(Value *L, Value *R) { return binary(BinaryInst::BinOp::Shr, L, R); }
  Value *cmpEq(Value *L, Value *R) {
    return binary(BinaryInst::BinOp::CmpEq, L, R);
  }
  Value *cmpNe(Value *L, Value *R) {
    return binary(BinaryInst::BinOp::CmpNe, L, R);
  }
  Value *cmpLt(Value *L, Value *R) {
    return binary(BinaryInst::BinOp::CmpLt, L, R);
  }
  Value *cmpLe(Value *L, Value *R) {
    return binary(BinaryInst::BinOp::CmpLe, L, R);
  }
  Value *cmpGt(Value *L, Value *R) {
    return binary(BinaryInst::BinOp::CmpGt, L, R);
  }
  Value *cmpGe(Value *L, Value *R) {
    return binary(BinaryInst::BinOp::CmpGe, L, R);
  }

  Value *conv(ConvInst::ConvOp Op, Value *Src);

  // Memory.
  Value *getField(Value *Obj, const vm::FieldDesc *Field);
  void putField(Value *Obj, const vm::FieldDesc *Field, Value *V);
  Value *getStatic(const StaticVarDesc *Var);
  void putStatic(const StaticVarDesc *Var, Value *V);
  Value *aload(Value *Array, Value *Index, Type ElemTy);
  void astore(Value *Array, Value *Index, Value *V);
  Value *arrayLength(Value *Array);

  // Allocation.
  Value *newObject(const vm::ClassDesc *Cls);
  Value *newArray(Type ElemTy, Value *Length);

  // Calls.
  Value *call(Method *Callee, Type RetTy, std::vector<Value *> Args,
              bool IsVirtual = false);

  // SSA.
  PhiInst *phi(Type Ty);

  // Control flow (each terminates the current block).
  void br(Value *Cond, BasicBlock *TrueBB, BasicBlock *FalseBB);
  void jump(BasicBlock *Target);
  void ret(Value *V = nullptr);

  // Prefetching primitives.
  void prefetch(Value *Base, Value *Index, unsigned Scale, int64_t Disp,
                bool Guarded = false);
  Value *specLoad(Value *Base, Value *Index, unsigned Scale, int64_t Disp);

private:
  Instruction *insert(std::unique_ptr<Instruction> I);

  Module &M;
  BasicBlock *BB = nullptr;
};

} // namespace ir
} // namespace spf

#endif // SPF_IR_IRBUILDER_H
