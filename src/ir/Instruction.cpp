//===- ir/Instruction.cpp -------------------------------------------------===//

#include "ir/Instruction.h"

#include "support/ErrorHandling.h"

using namespace spf;
using namespace spf::ir;

const char *ir::opcodeName(Opcode Op) {
  switch (Op) {
  case Opcode::Binary:
    return "bin";
  case Opcode::Conv:
    return "conv";
  case Opcode::GetField:
    return "getfield";
  case Opcode::PutField:
    return "putfield";
  case Opcode::GetStatic:
    return "getstatic";
  case Opcode::PutStatic:
    return "putstatic";
  case Opcode::ALoad:
    return "aload";
  case Opcode::AStore:
    return "astore";
  case Opcode::ArrayLength:
    return "arraylength";
  case Opcode::NewObject:
    return "new";
  case Opcode::NewArray:
    return "newarray";
  case Opcode::Call:
    return "call";
  case Opcode::Phi:
    return "phi";
  case Opcode::Branch:
    return "br";
  case Opcode::Jump:
    return "jump";
  case Opcode::Ret:
    return "ret";
  case Opcode::Prefetch:
    return "prefetch";
  case Opcode::SpecLoad:
    return "spec_load";
  }
  spf_unreachable("unknown opcode");
}

bool Instruction::hasSideEffects() const {
  switch (Op) {
  case Opcode::PutField:
  case Opcode::PutStatic:
  case Opcode::AStore:
  case Opcode::Call:
  case Opcode::NewObject:
  case Opcode::NewArray:
  case Opcode::Branch:
  case Opcode::Jump:
  case Opcode::Ret:
  case Opcode::Prefetch:
  case Opcode::SpecLoad:
    return true;
  case Opcode::Binary:
  case Opcode::Conv:
  case Opcode::GetField:
  case Opcode::GetStatic:
  case Opcode::ALoad:
  case Opcode::ArrayLength:
  case Opcode::Phi:
    return false;
  }
  spf_unreachable("unknown opcode");
}

const char *BinaryInst::binOpName(BinOp Op) {
  switch (Op) {
  case BinOp::Add:
    return "add";
  case BinOp::Sub:
    return "sub";
  case BinOp::Mul:
    return "mul";
  case BinOp::Div:
    return "div";
  case BinOp::Rem:
    return "rem";
  case BinOp::And:
    return "and";
  case BinOp::Or:
    return "or";
  case BinOp::Xor:
    return "xor";
  case BinOp::Shl:
    return "shl";
  case BinOp::Shr:
    return "shr";
  case BinOp::CmpEq:
    return "cmpeq";
  case BinOp::CmpNe:
    return "cmpne";
  case BinOp::CmpLt:
    return "cmplt";
  case BinOp::CmpLe:
    return "cmple";
  case BinOp::CmpGt:
    return "cmpgt";
  case BinOp::CmpGe:
    return "cmpge";
  }
  spf_unreachable("unknown binop");
}
