//===- ir/IRPrinter.cpp ---------------------------------------------------===//

#include "ir/IRPrinter.h"

#include "support/ErrorHandling.h"

#include <sstream>

using namespace spf;
using namespace spf::ir;

std::string ir::valueName(const Value *V) {
  if (const auto *C = dyn_cast<Constant>(V)) {
    std::ostringstream OS;
    if (C->type() == Type::Ref) {
      OS << (C->isNullRef() ? "null" : "ref") << ":" << std::hex << C->raw();
    } else if (C->type() == Type::F64) {
      OS.precision(17); // Round-trippable through the parser.
      OS << C->floatValue();
    } else {
      OS << C->intValue();
    }
    return OS.str();
  }
  std::ostringstream OS;
  if (isa<Argument>(V))
    OS << "%arg" << cast<Argument>(V)->index();
  else
    OS << "%" << V->id();
  if (!V->name().empty())
    OS << "." << V->name();
  return OS.str();
}

static void printAddress(std::ostream &OS, const AddressedInst *A) {
  OS << "[" << valueName(A->base());
  if (A->index())
    OS << " + " << valueName(A->index()) << "*" << A->scale();
  if (A->displacement() >= 0)
    OS << " + " << A->displacement();
  else
    OS << " - " << -A->displacement();
  OS << "]";
}

void ir::printInstruction(std::ostream &OS, const Instruction *I) {
  if (I->type() != Type::Void)
    OS << valueName(I) << " = ";

  switch (I->opcode()) {
  case Opcode::Binary: {
    const auto *B = cast<BinaryInst>(I);
    OS << BinaryInst::binOpName(B->binOp()) << " " << typeName(B->lhs()->type())
       << " " << valueName(B->lhs()) << ", " << valueName(B->rhs());
    return;
  }
  case Opcode::Conv:
    OS << "conv " << valueName(cast<ConvInst>(I)->src()) << " to "
       << typeName(I->type());
    return;
  case Opcode::GetField: {
    const auto *G = cast<GetFieldInst>(I);
    OS << "getfield " << valueName(G->object()) << "."
       << G->field()->Parent->name() << "::" << G->field()->Name << " (+"
       << G->field()->Offset << ")";
    return;
  }
  case Opcode::PutField: {
    const auto *P = cast<PutFieldInst>(I);
    OS << "putfield " << valueName(P->object()) << "."
       << P->field()->Parent->name() << "::" << P->field()->Name << " = "
       << valueName(P->value());
    return;
  }
  case Opcode::GetStatic:
    OS << "getstatic " << cast<GetStaticInst>(I)->variable()->Name;
    return;
  case Opcode::PutStatic: {
    const auto *P = cast<PutStaticInst>(I);
    OS << "putstatic " << P->variable()->Name << " = " << valueName(P->value());
    return;
  }
  case Opcode::ALoad: {
    const auto *A = cast<ALoadInst>(I);
    OS << "aload." << typeName(A->type()) << " " << valueName(A->array())
       << "[" << valueName(A->index()) << "]";
    return;
  }
  case Opcode::AStore: {
    const auto *A = cast<AStoreInst>(I);
    OS << "astore " << valueName(A->array()) << "[" << valueName(A->index())
       << "] = " << valueName(A->value());
    return;
  }
  case Opcode::ArrayLength:
    OS << "arraylength " << valueName(cast<ArrayLengthInst>(I)->array());
    return;
  case Opcode::NewObject:
    OS << "new " << cast<NewObjectInst>(I)->objectClass()->name();
    return;
  case Opcode::NewArray: {
    const auto *N = cast<NewArrayInst>(I);
    OS << "newarray " << typeName(N->elementType()) << "["
       << valueName(N->length()) << "]";
    return;
  }
  case Opcode::Call: {
    const auto *C = cast<CallInst>(I);
    OS << (C->isVirtual() ? "callvirt " : "call ")
       << (C->callee() ? C->callee()->name() : std::string("<unknown>"))
       << "(";
    for (unsigned Idx = 0, E = C->numOperands(); Idx != E; ++Idx) {
      if (Idx)
        OS << ", ";
      OS << valueName(C->operand(Idx));
    }
    OS << ")";
    return;
  }
  case Opcode::Phi: {
    const auto *P = cast<PhiInst>(I);
    OS << "phi " << typeName(P->type());
    for (unsigned Idx = 0, E = P->numIncoming(); Idx != E; ++Idx)
      OS << (Idx ? ", " : " ") << "[" << P->incomingBlock(Idx)->name() << ": "
         << valueName(P->incomingValue(Idx)) << "]";
    return;
  }
  case Opcode::Branch: {
    const auto *B = cast<BranchInst>(I);
    OS << "br " << valueName(B->condition()) << " ? "
       << B->trueSuccessor()->name() << " : " << B->falseSuccessor()->name();
    return;
  }
  case Opcode::Jump:
    OS << "jump " << cast<JumpInst>(I)->target()->name();
    return;
  case Opcode::Ret: {
    const auto *R = cast<RetInst>(I);
    OS << "ret";
    if (R->value())
      OS << " " << valueName(R->value());
    return;
  }
  case Opcode::Prefetch: {
    const auto *P = cast<PrefetchInst>(I);
    OS << (P->isGuarded() ? "prefetch.guarded " : "prefetch ");
    printAddress(OS, P);
    return;
  }
  case Opcode::SpecLoad:
    OS << "spec_load ";
    printAddress(OS, cast<SpecLoadInst>(I));
    return;
  }
  spf_unreachable("unknown opcode in printer");
}

void ir::printMethod(std::ostream &OS, Method *M) {
  M->renumber();
  OS << "method " << typeName(M->returnType()) << " " << M->name() << "(";
  for (unsigned I = 0, E = M->numArgs(); I != E; ++I) {
    if (I)
      OS << ", ";
    OS << typeName(M->arg(I)->type()) << " %arg" << I;
    if (!M->arg(I)->name().empty())
      OS << "." << M->arg(I)->name();
  }
  OS << ") {\n";
  for (const auto &BB : M->blocks()) {
    OS << BB->name() << ":";
    if (!BB->predecessors().empty()) {
      OS << "  ; preds:";
      for (const BasicBlock *P : BB->predecessors())
        OS << " " << P->name();
    }
    OS << "\n";
    for (const auto &I : BB->instructions()) {
      OS << "  ";
      printInstruction(OS, I.get());
      OS << "\n";
    }
  }
  OS << "}\n";
}
