//===- ir/Module.h - Translation unit of the JIT IR -------------*- C++ -*-===//
///
/// \file
/// A module owns methods, uniqued constants, and static-variable
/// descriptors — the compile-time world of one simulated program.
///
//===----------------------------------------------------------------------===//

#ifndef SPF_IR_MODULE_H
#define SPF_IR_MODULE_H

#include "ir/Method.h"

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace spf {
namespace ir {

/// Owns the methods, constants, and statics of one program.
class Module {
public:
  Module() = default;
  Module(const Module &) = delete;
  Module &operator=(const Module &) = delete;

  /// Creates a method with the given signature.
  Method *addMethod(std::string Name, Type RetTy, std::vector<Type> ParamTys);

  /// Returns the method named \p Name, or null.
  Method *findMethod(const std::string &Name) const;

  const std::vector<std::unique_ptr<Method>> &methods() const {
    return Methods;
  }

  /// Returns the uniqued integer constant of type \p Ty with value \p V.
  Constant *intConst(Type Ty, int64_t V);

  /// Returns the uniqued double constant.
  Constant *floatConst(double V);

  /// Returns the uniqued null reference.
  Constant *nullRef() { return intConstImpl(Type::Ref, 0); }

  /// Declares a static variable; its simulated address is assigned later
  /// by the workload (vm::Heap::allocStatic).
  StaticVarDesc *addStatic(std::string Name, Type Ty);

  const std::vector<std::unique_ptr<StaticVarDesc>> &statics() const {
    return Statics;
  }

private:
  Constant *intConstImpl(Type Ty, int64_t V);

  std::vector<std::unique_ptr<Method>> Methods;
  std::vector<std::unique_ptr<StaticVarDesc>> Statics;
  std::map<std::pair<uint8_t, uint64_t>, std::unique_ptr<Constant>> Constants;
};

} // namespace ir
} // namespace spf

#endif // SPF_IR_MODULE_H
