//===- ir/Method.cpp ------------------------------------------------------===//

#include "ir/Method.h"

#include "ir/Module.h"

using namespace spf;
using namespace spf::ir;

Method::Method(Module *Parent, std::string Name, Type RetTy,
               std::vector<Type> ParamTys)
    : Parent(Parent), Name(std::move(Name)), RetTy(RetTy) {
  for (unsigned I = 0, E = ParamTys.size(); I != E; ++I)
    Args.push_back(std::make_unique<Argument>(ParamTys[I], I));
}

BasicBlock *Method::addBlock(std::string BlockName) {
  Blocks.push_back(std::make_unique<BasicBlock>(
      this, static_cast<unsigned>(Blocks.size()), std::move(BlockName)));
  return Blocks.back().get();
}

void Method::recomputePreds() {
  for (const auto &BB : Blocks)
    BB->clearPredecessors();
  for (const auto &BB : Blocks)
    for (BasicBlock *Succ : BB->successors())
      Succ->addPredecessor(BB.get());
}

void Method::renumber() {
  unsigned NextId = 0;
  for (const auto &Arg : Args)
    Arg->setId(NextId++);
  for (const auto &BB : Blocks)
    for (const auto &I : BB->instructions())
      I->setId(NextId++);
}
