//===- ir/BasicBlock.h - CFG basic block ------------------------*- C++ -*-===//
///
/// \file
/// A basic block: an owned sequence of instructions ending in a terminator.
/// Successors derive from the terminator; predecessors are maintained by
/// the Method when edges are created.
///
//===----------------------------------------------------------------------===//

#ifndef SPF_IR_BASICBLOCK_H
#define SPF_IR_BASICBLOCK_H

#include "ir/Instruction.h"

#include <memory>
#include <string>
#include <vector>

namespace spf {
namespace ir {

class Method;

/// A straight-line sequence of instructions with a single terminator.
class BasicBlock {
public:
  BasicBlock(Method *Parent, unsigned Id, std::string Name)
      : Parent(Parent), Id(Id), Name(std::move(Name)) {}

  BasicBlock(const BasicBlock &) = delete;
  BasicBlock &operator=(const BasicBlock &) = delete;

  Method *parent() const { return Parent; }
  unsigned id() const { return Id; }
  const std::string &name() const { return Name; }

  const std::vector<std::unique_ptr<Instruction>> &instructions() const {
    return Insts;
  }

  bool empty() const { return Insts.empty(); }
  size_t size() const { return Insts.size(); }

  Instruction *front() const { return Insts.front().get(); }
  Instruction *back() const { return Insts.back().get(); }

  /// The block terminator, or null if the block is still being built.
  Instruction *terminator() const {
    if (Insts.empty() || !Insts.back()->isTerminator())
      return nullptr;
    return Insts.back().get();
  }

  /// Appends \p I, transferring ownership.
  Instruction *append(std::unique_ptr<Instruction> I);

  /// Inserts \p I immediately after \p Pos (which must live in this block);
  /// used by prefetch code generation to place prefetches next to their
  /// anchor loads.
  Instruction *insertAfter(Instruction *Pos, std::unique_ptr<Instruction> I);

  /// Removes \p I from the block and destroys it. \p I must have no users.
  void erase(Instruction *I);

  /// Detaches \p I from the block without destroying it (for moving an
  /// instruction between blocks).
  std::unique_ptr<Instruction> detach(Instruction *I);

  /// Inserts \p I immediately before \p Pos (which must live here).
  Instruction *insertBefore(Instruction *Pos, std::unique_ptr<Instruction> I);

  /// Returns the control-flow successors (0-2 blocks).
  std::vector<BasicBlock *> successors() const;

  const std::vector<BasicBlock *> &predecessors() const { return Preds; }
  void addPredecessor(BasicBlock *Pred) { Preds.push_back(Pred); }
  void clearPredecessors() { Preds.clear(); }

private:
  Method *Parent;
  unsigned Id;
  std::string Name;
  std::vector<std::unique_ptr<Instruction>> Insts;
  std::vector<BasicBlock *> Preds;
};

} // namespace ir
} // namespace spf

#endif // SPF_IR_BASICBLOCK_H
