//===- core/LoadDependenceGraph.h - Section 3.1 -----------------*- C++ -*-===//
///
/// \file
/// The load dependence graph: "Each node of the graph is a load instruction
/// using a reference as an operand. A directed edge exists from node L1 to
/// node L2 if and only if L2 is directly data dependent upon L1" (paper,
/// Section 3.1). Reference-chasing sequences appear as adjacent nodes,
/// limiting which pairs are checked for intra-iteration stride patterns.
///
/// For a loop with nested loops, nested loads are included tentatively and
/// filtered later: the paper considers them "only if [the nested loop] has
/// a small trip count", and trip counts are observed during object
/// inspection.
///
//===----------------------------------------------------------------------===//

#ifndef SPF_CORE_LOADDEPENDENCEGRAPH_H
#define SPF_CORE_LOADDEPENDENCEGRAPH_H

#include "analysis/LoopInfo.h"

#include <optional>
#include <unordered_map>

namespace spf {
namespace core {

/// Wu's stride-pattern taxonomy (Wu, PLDI'02; the approach the paper's
/// INTER configuration emulates). The paper's algorithm exploits strong
/// single strides; the weak/phased kinds are classified as an extension
/// and can optionally be exploited by the planner.
enum class StridePatternKind : uint8_t {
  None,         ///< No usable pattern.
  StrongSingle, ///< One stride dominates >= the majority threshold.
  WeakSingle,   ///< One stride dominates 50%..threshold of samples.
  PhasedMulti,  ///< Few distinct strides in long constant phases.
};

const char *stridePatternKindName(StridePatternKind K);

/// One load instruction in the graph, annotated (after object inspection
/// and stride analysis) with its inter-iteration stride.
struct LdgNode {
  ir::Instruction *Load = nullptr;
  /// The innermost loop the load lives in (may be a nested loop of the
  /// graph's target loop).
  analysis::Loop *Home = nullptr;
  /// Filled by StrideAnalysis: dominant inter-iteration stride in bytes,
  /// present only for strong single-stride patterns (what the paper's
  /// algorithm exploits).
  std::optional<int64_t> InterStride;
  /// Number of stride samples backing InterStride.
  unsigned InterSamples = 0;
  /// Extended classification of the inter-iteration stride sequence.
  StridePatternKind InterKind = StridePatternKind::None;
  /// The dominant stride for WeakSingle/PhasedMulti patterns.
  int64_t ExtendedStride = 0;

  std::vector<unsigned> Succs; ///< Indices of directly dependent loads.
  std::vector<unsigned> Preds;
};

/// One dependence edge, annotated with the intra-iteration stride between
/// the two loads' addresses when one was discovered.
struct LdgEdge {
  unsigned From = 0;
  unsigned To = 0;
  /// Filled by StrideAnalysis: dominant intra-iteration stride in bytes.
  std::optional<int64_t> IntraStride;
  unsigned IntraSamples = 0;
};

/// The load dependence graph of one target loop.
class LoadDependenceGraph {
public:
  /// Builds the graph for \p Target. All heap loads in the loop body are
  /// nodes, including loads of nested loops (marked with their home loop
  /// so small-trip filtering can drop them later).
  LoadDependenceGraph(analysis::Loop *Target, const analysis::LoopInfo &LI);

  analysis::Loop *target() const { return Target; }

  std::vector<LdgNode> &nodes() { return Nodes; }
  const std::vector<LdgNode> &nodes() const { return Nodes; }

  std::vector<LdgEdge> &edges() { return Edges; }
  const std::vector<LdgEdge> &edges() const { return Edges; }

  /// Index of the node for \p Load, or nullopt.
  std::optional<unsigned> nodeFor(const ir::Instruction *Load) const {
    auto It = NodeIndex.find(Load);
    if (It == NodeIndex.end())
      return std::nullopt;
    return It->second;
  }

  /// The edge From -> To, or null.
  LdgEdge *edgeBetween(unsigned From, unsigned To);
  const LdgEdge *edgeBetween(unsigned From, unsigned To) const;

  /// The base reference operand of a graph-eligible load, or null (e.g.
  /// getstatic reads a fixed address).
  static ir::Value *baseOperand(const ir::Instruction *Load);

private:
  analysis::Loop *Target;
  std::vector<LdgNode> Nodes;
  std::vector<LdgEdge> Edges;
  std::unordered_map<const ir::Instruction *, unsigned> NodeIndex;
};

} // namespace core
} // namespace spf

#endif // SPF_CORE_LOADDEPENDENCEGRAPH_H
