//===- core/PrefetchPass.h - The stride prefetching pass --------*- C++ -*-===//
///
/// \file
/// The paper's optimization pass. For each method it builds the loop
/// nesting forest, then traverses the loops in postorder (trees in program
/// order); for each loop it (1) constructs the load dependence graph,
/// (2) performs object inspection with the method's actual argument
/// values, (3) annotates stride patterns, and (4) generates prefetching
/// code subject to the profitability analysis. Nested loops observed to
/// have small trip counts are skipped and their loads handled when the
/// parent loop is processed.
///
//===----------------------------------------------------------------------===//

#ifndef SPF_CORE_PREFETCHPASS_H
#define SPF_CORE_PREFETCHPASS_H

#include "core/ObjectInspector.h"
#include "core/PrefetchCodeGen.h"
#include "core/PrefetchPlanner.h"
#include "core/StrideAnalysis.h"

namespace spf {
namespace core {

/// All knobs of the pass; line sizes typically come from a
/// sim::MachineConfig via optionsForMachine().
struct PrefetchPassOptions {
  PlannerOptions Planner;
  InspectorOptions Inspector;
  StrideOptions Stride;
  /// Total interpretation steps across all of a method's loops; keeps the
  /// pass's compile-time share bounded (Figure 11) even for deep nests.
  uint64_t MethodInspectionBudget = 12000;
  /// A loop whose own observed trip count is at most this is not
  /// prefetched directly (its loads are handled by the parent loop).
  double SmallTripMax = 16.0;
};

/// Diagnostic record for one processed loop.
struct LoopReport {
  const analysis::Loop *L = nullptr;
  bool Reached = false;
  bool SkippedSmallTrip = false;
  /// Inspection or planning failed recoverably (malformed IR, injected
  /// fault, invalid plan): the loop gets no prefetching code.
  bool Degraded = false;
  std::string DegradeReason;
  unsigned IterationsObserved = 0;
  unsigned NodesWithInterStride = 0;
  unsigned EdgesWithIntraStride = 0;
  unsigned PlainPrefetches = 0;
  unsigned SpecLoads = 0;
  unsigned DerefPrefetches = 0;
  unsigned IntraPrefetches = 0;
};

/// Result of running the pass over one method.
struct PrefetchPassResult {
  unsigned LoopsVisited = 0;
  unsigned LoopsSkippedSmallTrip = 0;
  unsigned LoopsNotReached = 0;
  /// Loops abandoned on a recoverable failure ("no prefetch for this
  /// loop"): malformed IR, planner invariant violations, injected faults.
  unsigned LoopsDegraded = 0;
  /// Inspection heap reads degraded to `unknown` by fault injection.
  uint64_t InspectionFaultsInjected = 0;
  CodeGenStats CodeGen;
  std::vector<LoopReport> Loops;
};

/// The stride prefetching pass.
class PrefetchPass {
public:
  PrefetchPass(const vm::Heap &Heap, PrefetchPassOptions Opts)
      : Heap(Heap), Opts(std::move(Opts)) {}

  /// Transforms \p M, whose compile-time (actual) argument values are
  /// \p Args — in a JIT, the method is compiled when about to execute, so
  /// actual parameter values are available (paper, Section 3).
  PrefetchPassResult run(ir::Method *M, const std::vector<uint64_t> &Args);

  /// Same, but reuses loop/def-use analyses the enclosing JIT pipeline
  /// already computed, so only the pass's own cost is added on top of the
  /// baseline compilation (the accounting of Figure 11).
  PrefetchPassResult run(ir::Method *M, const std::vector<uint64_t> &Args,
                         const analysis::LoopInfo &LI,
                         const analysis::DefUse &DU);

private:
  const vm::Heap &Heap;
  PrefetchPassOptions Opts;
};

} // namespace core
} // namespace spf

#endif // SPF_CORE_PREFETCHPASS_H
