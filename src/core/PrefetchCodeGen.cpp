//===- core/PrefetchCodeGen.cpp -------------------------------------------===//

#include "core/PrefetchCodeGen.h"

using namespace spf;
using namespace spf::core;
using namespace spf::ir;

CodeGenStats core::applyPlan(const LoopPlan &Plan) {
  CodeGenStats Stats;

  for (const AnchorPlan &A : Plan.Anchors) {
    BasicBlock *BB = A.Anchor->parent();
    Instruction *InsertPos = A.Anchor;

    if (A.EmitPlain) {
      InsertPos = BB->insertAfter(
          InsertPos, std::make_unique<PrefetchInst>(A.Base, A.Index, A.Scale,
                                                    A.AnchorDisp,
                                                    A.PlainGuarded));
      ++Stats.Prefetches;
      continue;
    }

    if (A.Derefs.empty())
      continue;

    // a = spec_load(A(Lx) + d*c)
    Instruction *Spec = BB->insertAfter(
        InsertPos,
        std::make_unique<SpecLoadInst>(A.Base, A.Index, A.Scale,
                                       A.AnchorDisp));
    Spec->setName("pref");
    ++Stats.SpecLoads;
    InsertPos = Spec;

    // prefetch(F(a) [+ S]) for each planned dereference target.
    for (const DerefPrefetch &D : A.Derefs) {
      InsertPos = BB->insertAfter(
          InsertPos, std::make_unique<PrefetchInst>(
                         Spec, nullptr, 0, D.Offset, D.Guarded));
      ++Stats.Prefetches;
    }
  }

  return Stats;
}
