//===- core/PrefetchCodeGen.cpp -------------------------------------------===//

#include "core/PrefetchCodeGen.h"

#include "obs/DecisionLog.h"

using namespace spf;
using namespace spf::core;
using namespace spf::ir;

CodeGenStats core::applyPlan(const LoopPlan &Plan) {
  CodeGenStats Stats;
  obs::DecisionLog *DL = obs::DecisionScope::current();

  for (const AnchorPlan &A : Plan.Anchors) {
    BasicBlock *BB = A.Anchor->parent();
    Instruction *InsertPos = A.Anchor;

    if (A.EmitPlain) {
      auto Pf = std::make_unique<PrefetchInst>(A.Base, A.Index, A.Scale,
                                               A.AnchorDisp, A.PlainGuarded);
      Pf->setAnchor(A.Anchor);
      Pf->setStrideBytes(A.InterStride);
      InsertPos = BB->insertAfter(InsertPos, std::move(Pf));
      ++Stats.Prefetches;
      if (DL)
        DL->event("codegen",
                  A.PlainGuarded ? "guarded-prefetch" : "prefetch",
                  obs::siteLabel(A.Anchor), "", A.InterStride);
      continue;
    }

    if (A.Derefs.empty())
      continue;

    // a = spec_load(A(Lx) + d*c)
    auto SpecI = std::make_unique<SpecLoadInst>(A.Base, A.Index, A.Scale,
                                                A.AnchorDisp);
    SpecI->setAnchor(A.Anchor);
    SpecI->setStrideBytes(A.InterStride);
    Instruction *Spec = BB->insertAfter(InsertPos, std::move(SpecI));
    Spec->setName("pref");
    ++Stats.SpecLoads;
    InsertPos = Spec;

    // prefetch(F(a) [+ S]) for each planned dereference target. The
    // derefs share the anchor (one governor decision covers the chain)
    // but carry no stride: distance retuning shifts the spec load only.
    unsigned Guarded = 0;
    for (const DerefPrefetch &D : A.Derefs) {
      auto Pf = std::make_unique<PrefetchInst>(Spec, nullptr, 0, D.Offset,
                                               D.Guarded);
      Pf->setAnchor(A.Anchor);
      InsertPos = BB->insertAfter(InsertPos, std::move(Pf));
      ++Stats.Prefetches;
      Guarded += D.Guarded;
    }
    if (DL)
      DL->event("codegen", "spec-load-chain", obs::siteLabel(A.Anchor),
                "derefs=" + std::to_string(A.Derefs.size()) +
                    " guarded=" + std::to_string(Guarded),
                A.InterStride);
  }

  return Stats;
}

CodeGenStats core::stripPrefetchCode(ir::Method &M) {
  CodeGenStats Stats;
  for (const auto &BB : M.blocks()) {
    // Prefetches first (they may use spec loads), spec loads second —
    // erase() requires the instruction to be user-free.
    std::vector<Instruction *> Prefetches;
    std::vector<Instruction *> SpecLoads;
    for (const auto &IP : BB->instructions()) {
      if (isa<PrefetchInst>(IP.get()))
        Prefetches.push_back(IP.get());
      else if (isa<SpecLoadInst>(IP.get()))
        SpecLoads.push_back(IP.get());
    }
    for (Instruction *I : Prefetches)
      BB->erase(I);
    for (Instruction *I : SpecLoads)
      BB->erase(I);
    Stats.Prefetches += static_cast<unsigned>(Prefetches.size());
    Stats.SpecLoads += static_cast<unsigned>(SpecLoads.size());
  }
  return Stats;
}
