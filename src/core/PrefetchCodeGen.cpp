//===- core/PrefetchCodeGen.cpp -------------------------------------------===//

#include "core/PrefetchCodeGen.h"

#include "obs/DecisionLog.h"

using namespace spf;
using namespace spf::core;
using namespace spf::ir;

CodeGenStats core::applyPlan(const LoopPlan &Plan) {
  CodeGenStats Stats;
  obs::DecisionLog *DL = obs::DecisionScope::current();

  for (const AnchorPlan &A : Plan.Anchors) {
    BasicBlock *BB = A.Anchor->parent();
    Instruction *InsertPos = A.Anchor;

    if (A.EmitPlain) {
      InsertPos = BB->insertAfter(
          InsertPos, std::make_unique<PrefetchInst>(A.Base, A.Index, A.Scale,
                                                    A.AnchorDisp,
                                                    A.PlainGuarded));
      ++Stats.Prefetches;
      if (DL)
        DL->event("codegen",
                  A.PlainGuarded ? "guarded-prefetch" : "prefetch",
                  obs::siteLabel(A.Anchor), "", A.InterStride);
      continue;
    }

    if (A.Derefs.empty())
      continue;

    // a = spec_load(A(Lx) + d*c)
    Instruction *Spec = BB->insertAfter(
        InsertPos,
        std::make_unique<SpecLoadInst>(A.Base, A.Index, A.Scale,
                                       A.AnchorDisp));
    Spec->setName("pref");
    ++Stats.SpecLoads;
    InsertPos = Spec;

    // prefetch(F(a) [+ S]) for each planned dereference target.
    unsigned Guarded = 0;
    for (const DerefPrefetch &D : A.Derefs) {
      InsertPos = BB->insertAfter(
          InsertPos, std::make_unique<PrefetchInst>(
                         Spec, nullptr, 0, D.Offset, D.Guarded));
      ++Stats.Prefetches;
      Guarded += D.Guarded;
    }
    if (DL)
      DL->event("codegen", "spec-load-chain", obs::siteLabel(A.Anchor),
                "derefs=" + std::to_string(A.Derefs.size()) +
                    " guarded=" + std::to_string(Guarded),
                A.InterStride);
  }

  return Stats;
}
