//===- core/ObjectInspector.h - Section 3.2 ---------------------*- C++ -*-===//
///
/// \file
/// Object inspection: the paper's ultra-lightweight dynamic profiling
/// technique. At JIT-compile time the method is partially interpreted with
/// the actual parameter values and *no side effects*:
///
///  * stores go to a hash table (a copied frame + store buffer), loads
///    consult it first;
///  * allocations land in a private heap;
///  * method invocations are skipped, yielding `unknown`;
///  * loops encountered before the target loop are interpreted once;
///  * the target loop body runs a small number of times (20), recording
///    the first memory address each graph load touches in each iteration.
///
/// Operands that are unavailable are the lattice value `unknown`; any
/// instruction consuming an unknown produces an unknown.
///
//===----------------------------------------------------------------------===//

#ifndef SPF_CORE_OBJECTINSPECTOR_H
#define SPF_CORE_OBJECTINSPECTOR_H

#include "core/LoadDependenceGraph.h"
#include "vm/Heap.h"

#include <string>
#include <unordered_map>

namespace spf {
namespace core {

/// Inspection tuning knobs (paper defaults).
struct InspectorOptions {
  /// Iterations of the target loop to observe ("for example, 20 times").
  unsigned MaxIterations = 20;
  /// Per-entry iteration cap for loops nested inside the target; beyond
  /// this a loop is force-exited (and certainly not "small trip count").
  /// Just above the small-trip threshold: running longer cannot change
  /// any decision but costs interpretation steps.
  unsigned InnerLoopCap = 20;
  /// Per-entry cap for loops encountered before the target: "we interpret
  /// the body of such a loop only once".
  unsigned PreLoopCap = 1;
  /// Interpreted-step budget; inspection aborts (conservatively, with
  /// whatever trace it has) when exceeded. Keeps profiling ultra-light:
  /// inner loops (processed first) need only hundreds of steps; outer
  /// wrappers whose interesting loads were already handled are cut off.
  uint64_t StepBudget = 12000;

  /// Inter-procedural inspection: "we could step into the callee method
  /// for a non-virtual invocation... Making object inspection
  /// inter-procedural might improve the accuracy of our analysis, but it
  /// would increase the compilation time, requiring the trade-off to be
  /// carefully assessed" (Section 3.2). Off by default, per the paper;
  /// the ablation bench measures the trade-off.
  bool FollowCalls = false;
  /// Maximum call depth when FollowCalls is enabled.
  unsigned MaxCallDepth = 2;
};

/// Observed entry/iteration counts of a loop during inspection.
struct TripStats {
  uint64_t Entries = 0;
  uint64_t Iterations = 0;

  double average() const {
    return Entries ? static_cast<double>(Iterations) /
                         static_cast<double>(Entries)
                   : 0.0;
  }
};

/// First address a load accessed in a given target-loop iteration.
struct AddrRecord {
  unsigned Iteration = 0;
  vm::Addr Address = 0;
};

/// Everything object inspection learned about one target loop.
struct InspectionResult {
  bool ReachedTarget = false;
  /// Target-loop iterations started (capped at MaxIterations).
  unsigned IterationsObserved = 0;
  /// The target loop exited before MaxIterations iterations: a direct
  /// small-trip-count observation for the loop itself.
  bool TargetExitedEarly = false;
  uint64_t StepsUsed = 0;

  /// Inspection hit a condition it cannot profile through (malformed IR
  /// such as a block without a terminator). The trace is discarded and
  /// the pass must not prefetch this loop — the production-JIT response
  /// to a broken input, instead of aborting the process.
  bool Degraded = false;
  std::string DegradeReason;
  /// Heap reads turned into `unknown` by fault injection (chaos runs).
  uint64_t FaultsInjected = 0;

  /// Per graph load: first access address per observed iteration (sparse;
  /// iterations where the address was unknown are absent).
  std::unordered_map<const ir::Instruction *, std::vector<AddrRecord>> Trace;

  /// Entry/iteration counts for loops nested inside the target.
  std::unordered_map<const analysis::Loop *, TripStats> SubLoopTrips;
};

/// Partial interpreter performing object inspection over one method.
class ObjectInspector {
public:
  ObjectInspector(const vm::Heap &Heap, const analysis::LoopInfo &LI,
                  InspectorOptions Opts = InspectorOptions());

  /// Partially interprets \p M (whose compile-time argument values are
  /// \p Args) from its entry, recording addresses for the loads of
  /// \p Graph inside \p TargetLoop.
  InspectionResult inspect(ir::Method *M, const std::vector<uint64_t> &Args,
                           analysis::Loop *TargetLoop,
                           const LoadDependenceGraph &Graph);

private:
  const vm::Heap &Heap;
  const analysis::LoopInfo &LI;
  InspectorOptions Opts;
};

} // namespace core
} // namespace spf

#endif // SPF_CORE_OBJECTINSPECTOR_H
