//===- core/PrefetchPlanner.h - Section 3.3 planning ------------*- C++ -*-===//
///
/// \file
/// Decides which prefetching code to generate from the stride-annotated
/// load dependence graph, implementing the paper's Section 3.3:
///
///  * node Lx with inter-iteration stride d whose adjacent nodes all have
///    inter patterns (or none): `prefetch(A(Lx) + d*c)`;
///  * otherwise (some adjacent Ly lacks an inter pattern):
///    `a = spec_load(A(Lx) + d*c); prefetch(F[Lx,Ly](a))` and, for every
///    Lz with a direct or transitive intra-iteration stride from Ly,
///    `prefetch(F[Lx,Ly](a) + S[Ly,Lz])`;
///
/// gated by the profitability analysis: (1) the load must have data-
/// dependent instructions, (2) no second prefetch to an apparently shared
/// cache line, (3) a pure inter-stride prefetch requires |d| greater than
/// half a cache line.
///
//===----------------------------------------------------------------------===//

#ifndef SPF_CORE_PREFETCHPLANNER_H
#define SPF_CORE_PREFETCHPLANNER_H

#include "analysis/DefUse.h"
#include "core/LoadDependenceGraph.h"

namespace spf {
namespace core {

/// Which stride patterns the pass exploits (the paper's two evaluated
/// configurations).
enum class PrefetchMode : uint8_t {
  Inter,      ///< INTER: inter-iteration stride prefetching only
              ///< (the paper's emulation of Wu's approach).
  InterIntra, ///< INTER+INTRA: adds dereference-based and intra-iteration
              ///< stride prefetching.
};

/// Planner knobs. Line/page sizes come from the compilation target.
struct PlannerOptions {
  PrefetchMode Mode = PrefetchMode::InterIntra;
  /// Scheduling distance c in iterations (the paper fixes c = 1).
  unsigned ScheduleDistance = 1;
  /// Cache line size of the level software prefetches fill.
  unsigned LineBytes = 64;
  /// Use guarded loads (TLB priming) for the dereference-based and
  /// intra-iteration prefetches, as done on the Pentium 4.
  bool GuardedIntraPrefetch = false;
  /// Extension (Wu's taxonomy): also emit plain prefetches for loads with
  /// weak single-stride or phased multiple-stride patterns. The paper's
  /// algorithm exploits strong single strides only, so this is off by
  /// default; the ablation bench measures the difference.
  bool ExploitWeakStrides = false;
};

/// One prefetch relative to the value a spec_load produced.
struct DerefPrefetch {
  int64_t Offset = 0;         ///< F offset plus accumulated intra strides.
  bool Guarded = false;
  ir::Instruction *ForLoad = nullptr; ///< The load whose data this covers.
  bool IsIntra = false;       ///< True for the S[Ly,Lz] prefetches.
};

/// Everything to emit for one anchor load Lx.
struct AnchorPlan {
  ir::Instruction *Anchor = nullptr; ///< Lx; insertion point.
  // A(Lx) decomposition: Base + Index*Scale + AnchorDisp, where AnchorDisp
  // already includes d*c.
  ir::Value *Base = nullptr;
  ir::Value *Index = nullptr;
  unsigned Scale = 0;
  int64_t AnchorDisp = 0;
  int64_t InterStride = 0;

  /// Plain inter-iteration stride prefetch (empty Derefs), or a spec_load
  /// followed by the dereference-based/intra prefetches.
  bool EmitPlain = false;
  bool PlainGuarded = false;
  std::vector<DerefPrefetch> Derefs;
};

/// The plan for one loop.
struct LoopPlan {
  std::vector<AnchorPlan> Anchors;

  unsigned numPlain() const;
  unsigned numSpecLoads() const;
  unsigned numDeref() const; ///< Dereference-based (non-intra) prefetches.
  unsigned numIntra() const;
};

/// Decomposes a heap load's address into base/index/scale/displacement.
/// \returns false for loads without a decomposable address (getstatic).
bool decomposeAddress(const ir::Instruction *Load, ir::Value *&Base,
                      ir::Value *&Index, unsigned &Scale, int64_t &Disp);

/// The constant offset F[Lx,Ly] adds to a loaded reference to form Ly's
/// address (field offset, array-length offset, or first-element offset).
int64_t dereferenceOffset(const ir::Instruction *Ly);

/// Builds the prefetch plan for \p Graph (already stride-annotated).
LoopPlan planPrefetches(const LoadDependenceGraph &Graph,
                        const analysis::DefUse &DU,
                        const PlannerOptions &Opts);

} // namespace core
} // namespace spf

#endif // SPF_CORE_PREFETCHPLANNER_H
