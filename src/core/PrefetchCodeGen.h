//===- core/PrefetchCodeGen.h - Plan application ----------------*- C++ -*-===//
///
/// \file
/// Rewrites the IR according to a LoopPlan: inserts `prefetch` /
/// `spec_load` instructions immediately after their anchor loads, exactly
/// mirroring the code sequences of the paper's Figures 3 and 4.
///
//===----------------------------------------------------------------------===//

#ifndef SPF_CORE_PREFETCHCODEGEN_H
#define SPF_CORE_PREFETCHCODEGEN_H

#include "core/PrefetchPlanner.h"

namespace spf {
namespace core {

/// Numbers of instructions inserted.
struct CodeGenStats {
  unsigned Prefetches = 0;
  unsigned SpecLoads = 0;
};

/// Materializes \p Plan into the anchors' blocks.
CodeGenStats applyPlan(const LoopPlan &Plan);

/// Removes every prefetch / spec_load from \p M, returning how many of
/// each were erased. Spec loads feed only the prefetches of their own
/// chain, so stripping both leaves the method exactly as the planner
/// found it — this is the "undo" half of governor-triggered
/// re-inspection + re-JIT (anchor loads are untouched, so load SiteIds
/// stay stable across the rebuild).
CodeGenStats stripPrefetchCode(ir::Method &M);

} // namespace core
} // namespace spf

#endif // SPF_CORE_PREFETCHCODEGEN_H
