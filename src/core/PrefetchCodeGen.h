//===- core/PrefetchCodeGen.h - Plan application ----------------*- C++ -*-===//
///
/// \file
/// Rewrites the IR according to a LoopPlan: inserts `prefetch` /
/// `spec_load` instructions immediately after their anchor loads, exactly
/// mirroring the code sequences of the paper's Figures 3 and 4.
///
//===----------------------------------------------------------------------===//

#ifndef SPF_CORE_PREFETCHCODEGEN_H
#define SPF_CORE_PREFETCHCODEGEN_H

#include "core/PrefetchPlanner.h"

namespace spf {
namespace core {

/// Numbers of instructions inserted.
struct CodeGenStats {
  unsigned Prefetches = 0;
  unsigned SpecLoads = 0;
};

/// Materializes \p Plan into the anchors' blocks.
CodeGenStats applyPlan(const LoopPlan &Plan);

} // namespace core
} // namespace spf

#endif // SPF_CORE_PREFETCHCODEGEN_H
