//===- core/PrefetchPlanner.cpp -------------------------------------------===//

#include "core/PrefetchPlanner.h"

#include "obs/DecisionLog.h"

#include <cstdlib>

using namespace spf;
using namespace spf::core;
using namespace spf::ir;

unsigned LoopPlan::numPlain() const {
  unsigned N = 0;
  for (const AnchorPlan &A : Anchors)
    N += A.EmitPlain;
  return N;
}

unsigned LoopPlan::numSpecLoads() const {
  unsigned N = 0;
  for (const AnchorPlan &A : Anchors)
    N += !A.Derefs.empty();
  return N;
}

unsigned LoopPlan::numDeref() const {
  unsigned N = 0;
  for (const AnchorPlan &A : Anchors)
    for (const DerefPrefetch &D : A.Derefs)
      N += !D.IsIntra;
  return N;
}

unsigned LoopPlan::numIntra() const {
  unsigned N = 0;
  for (const AnchorPlan &A : Anchors)
    for (const DerefPrefetch &D : A.Derefs)
      N += D.IsIntra;
  return N;
}

bool core::decomposeAddress(const Instruction *Load, Value *&Base,
                            Value *&Index, unsigned &Scale, int64_t &Disp) {
  Base = nullptr;
  Index = nullptr;
  Scale = 0;
  Disp = 0;
  if (const auto *G = dyn_cast<GetFieldInst>(Load)) {
    Base = G->object();
    Disp = G->field()->Offset;
    return true;
  }
  if (const auto *A = dyn_cast<ALoadInst>(Load)) {
    Base = A->array();
    Index = A->index();
    Scale = ir::storageSize(A->type());
    Disp = vm::ObjectHeaderSize;
    return true;
  }
  if (const auto *L = dyn_cast<ArrayLengthInst>(Load)) {
    Base = L->array();
    Disp = vm::ArrayLengthOffset;
    return true;
  }
  return false; // getstatic: constant address, never strided.
}

int64_t core::dereferenceOffset(const Instruction *Ly) {
  if (const auto *G = dyn_cast<GetFieldInst>(Ly))
    return G->field()->Offset;
  if (isa<ArrayLengthInst>(Ly))
    return vm::ArrayLengthOffset;
  // aaload/iaload/daload through the loaded reference: approximate with the
  // first element ("typically, the function simply adds a constant offset").
  return vm::ObjectHeaderSize;
}

namespace {

/// Tracks issued prefetch targets for the cache-line dedup condition:
/// "data accessed by L must not apparently share the same cache line with
/// data for which the prefetch code is already issued."
class LineDedup {
public:
  explicit LineDedup(unsigned LineBytes) : LineBytes(LineBytes) {}

  /// Returns true (and records the target) when no previously issued
  /// prefetch with the same address shape lands within one line.
  bool tryIssue(const Value *Base, const Value *Index, unsigned Scale,
                int64_t Disp) {
    for (const Target &T : Issued) {
      if (T.Base != Base || T.Index != Index || T.Scale != Scale)
        continue;
      if (std::llabs(T.Disp - Disp) < static_cast<int64_t>(LineBytes))
        return false;
    }
    Issued.push_back(Target{Base, Index, Scale, Disp});
    return true;
  }

private:
  struct Target {
    const Value *Base;
    const Value *Index;
    unsigned Scale;
    int64_t Disp;
  };
  unsigned LineBytes;
  std::vector<Target> Issued;
};

} // namespace

LoopPlan core::planPrefetches(const LoadDependenceGraph &Graph,
                              const analysis::DefUse &DU,
                              const PlannerOptions &Opts) {
  LoopPlan Plan;
  LineDedup Dedup(Opts.LineBytes);
  const auto &Nodes = Graph.nodes();
  const int64_t C = static_cast<int64_t>(Opts.ScheduleDistance);
  obs::DecisionLog *DL = obs::DecisionScope::current();

  for (unsigned X = 0, E = Nodes.size(); X != E; ++X) {
    const LdgNode &NX = Nodes[X];
    bool WeakOnly = !NX.InterStride && Opts.ExploitWeakStrides &&
                    (NX.InterKind == StridePatternKind::WeakSingle ||
                     NX.InterKind == StridePatternKind::PhasedMulti) &&
                    NX.ExtendedStride != 0;
    if (!NX.InterStride && !WeakOnly)
      continue;
    // Profitability (1): something must consume the load.
    if (!DU.hasUsers(NX.Load)) {
      if (DL)
        DL->event("plan", "rejected", obs::siteLabel(NX.Load),
                  "no instruction consumes the loaded value");
      continue;
    }

    AnchorPlan A;
    A.Anchor = NX.Load;
    if (!decomposeAddress(NX.Load, A.Base, A.Index, A.Scale, A.AnchorDisp)) {
      if (DL)
        DL->event("plan", "rejected", obs::siteLabel(NX.Load),
                  "address not decomposable into base+index*scale+disp");
      continue;
    }
    int64_t D = NX.InterStride ? *NX.InterStride : NX.ExtendedStride;
    A.InterStride = D;
    A.AnchorDisp += D * C;

    // Adjacent nodes lacking inter-iteration patterns enable the
    // dereference-based path (INTER+INTRA mode only).
    std::vector<unsigned> UnstridedSuccs;
    if (Opts.Mode == PrefetchMode::InterIntra && !WeakOnly)
      for (unsigned Y : NX.Succs)
        if (!Nodes[Y].InterStride && DU.hasUsers(Nodes[Y].Load))
          UnstridedSuccs.push_back(Y);

    if (UnstridedSuccs.empty()) {
      // Plain inter-iteration stride prefetch. Profitability (3): the
      // stride must exceed half a cache line, or the line is (almost
      // certainly) already covered — by the previous iteration's access or
      // by the hardware prefetcher.
      if (std::llabs(D) <= static_cast<int64_t>(Opts.LineBytes / 2)) {
        if (DL)
          DL->event("plan", "rejected", obs::siteLabel(NX.Load),
                    "stride within half a cache line; covered by the "
                    "previous access or the hardware prefetcher",
                    D);
        continue;
      }
      // Profitability (2): line dedup against already-issued prefetches.
      if (!Dedup.tryIssue(A.Base, A.Index, A.Scale, A.AnchorDisp)) {
        if (DL)
          DL->event("plan", "pair-pruned", obs::siteLabel(NX.Load),
                    "target shares a cache line with an issued prefetch", D);
        continue;
      }
      A.EmitPlain = true;
      A.PlainGuarded = false;
      if (DL)
        DL->event("plan", "plain-prefetch", obs::siteLabel(NX.Load),
                  WeakOnly ? "weak/extended stride anchor" : "", D);
      Plan.Anchors.push_back(std::move(A));
      continue;
    }

    // spec_load + dereference-based + intra-iteration prefetching.
    // Per-chain dedup of offsets relative to the spec-loaded value; the
    // spec_load itself touches A(Lx)+d*c, so no plain prefetch is needed.
    LineDedup ChainDedup(Opts.LineBytes);
    for (unsigned Y : UnstridedSuccs) {
      const LdgNode &NY = Nodes[Y];
      int64_t OffY = dereferenceOffset(NY.Load);
      if (ChainDedup.tryIssue(nullptr, nullptr, 0, OffY)) {
        A.Derefs.push_back(DerefPrefetch{OffY, Opts.GuardedIntraPrefetch,
                                         NY.Load, /*IsIntra=*/false});
        if (DL)
          DL->event("plan", "deref-prefetch",
                    obs::siteLabel(NX.Load) + "->" + obs::siteLabel(NY.Load),
                    Opts.GuardedIntraPrefetch ? "guarded" : "", OffY);
      } else if (DL) {
        DL->event("plan", "pair-pruned",
                  obs::siteLabel(NX.Load) + "->" + obs::siteLabel(NY.Load),
                  "dereference target shares a cache line with an issued "
                  "prefetch",
                  OffY);
      }

      // Transitive intra chain from Ly: follow edges annotated with intra
      // strides, accumulating S along the path.
      std::vector<std::pair<unsigned, int64_t>> Work{{Y, OffY}};
      std::vector<bool> Visited(Nodes.size(), false);
      Visited[Y] = true;
      while (!Work.empty()) {
        auto [Z, Acc] = Work.back();
        Work.pop_back();
        for (unsigned W : Nodes[Z].Succs) {
          if (Visited[W])
            continue;
          const LdgEdge *Edge = Graph.edgeBetween(Z, W);
          if (!Edge || !Edge->IntraStride)
            continue;
          Visited[W] = true;
          int64_t Off = Acc + *Edge->IntraStride;
          // Condition (2) plus "we assume that the stride is longer than
          // the cache line": targets within a line of an issued prefetch
          // are dropped.
          if (ChainDedup.tryIssue(nullptr, nullptr, 0, Off)) {
            A.Derefs.push_back(DerefPrefetch{
                Off, Opts.GuardedIntraPrefetch, Nodes[W].Load,
                /*IsIntra=*/true});
            if (DL)
              DL->event("plan", "intra-prefetch",
                        obs::siteLabel(NX.Load) + "->" +
                            obs::siteLabel(Nodes[W].Load),
                        "transitive intra chain", Off);
          } else if (DL) {
            DL->event("plan", "pair-pruned",
                      obs::siteLabel(NX.Load) + "->" +
                          obs::siteLabel(Nodes[W].Load),
                      "intra target shares a cache line with an issued "
                      "prefetch",
                      Off);
          }
          Work.emplace_back(W, Off);
        }
      }
    }

    if (!A.Derefs.empty()) {
      if (DL)
        DL->event("plan", "spec-load", obs::siteLabel(NX.Load),
                  "derefs=" + std::to_string(A.Derefs.size()), D);
      Plan.Anchors.push_back(std::move(A));
    }
  }

  return Plan;
}
