//===- core/StrideAnalysis.h - Stride pattern detection ---------*- C++ -*-===//
///
/// \file
/// Turns the address trace gathered by object inspection into stride
/// annotations on the load dependence graph:
///
///  * inter-iteration: for a single load, the dominant difference between
///    the addresses it accesses in consecutive iterations;
///  * intra-iteration: for an adjacent pair (L1, L2) in the graph, the
///    dominant difference between the two addresses within one iteration.
///
/// "If the majority (for example, over 75%) of the strides of a load or a
/// pair of loads are the same, we recognize that they have stride
/// patterns" (Section 3.2).
///
//===----------------------------------------------------------------------===//

#ifndef SPF_CORE_STRIDEANALYSIS_H
#define SPF_CORE_STRIDEANALYSIS_H

#include "core/LoadDependenceGraph.h"
#include "core/ObjectInspector.h"

namespace spf {
namespace core {

/// Stride detection knobs (paper defaults).
struct StrideOptions {
  /// Fraction of samples the dominant stride must reach.
  double MajorityThreshold = 0.75;
  /// Minimum number of stride samples for a pattern to count at all.
  unsigned MinSamples = 4;
  /// Nested loops whose observed average trip count is at most this are
  /// "small trip count" and their loads are kept in the parent's graph.
  double SmallTripMax = 16.0;
};

/// Finds the dominant value of \p Samples; returns it when it reaches the
/// majority threshold over at least MinSamples samples. \p Fraction, when
/// non-null, receives the dominant value's share of the samples (0 when
/// there are none) whether or not it wins — the decision log reports the
/// confidence behind rejections too.
std::optional<int64_t> dominantStride(const std::vector<int64_t> &Samples,
                                      const StrideOptions &Opts,
                                      unsigned *NumSamples = nullptr,
                                      double *Fraction = nullptr);

/// Classifies \p Samples into Wu's taxonomy: strong single stride (the
/// dominant value reaches the majority threshold), weak single stride
/// (50%..threshold), or phased multiple-stride (at most three distinct
/// strides arranged in a handful of constant runs). \p Stride receives
/// the dominant (or first-phase) stride.
StridePatternKind classifyStridePattern(const std::vector<int64_t> &Samples,
                                        const StrideOptions &Opts,
                                        int64_t &Stride);

/// Annotates \p Graph with inter- and intra-iteration strides from
/// \p Insp, after dropping nodes that live in nested loops with large trip
/// counts ("considered only if it has a small trip count").
///
/// Inter strides of exactly 0 (loop-invariant addresses) are discarded:
/// the paper's candidate criteria require "the memory address of the load
/// is not a loop invariant".
void annotateStrides(LoadDependenceGraph &Graph, const InspectionResult &Insp,
                     const StrideOptions &Opts);

} // namespace core
} // namespace spf

#endif // SPF_CORE_STRIDEANALYSIS_H
