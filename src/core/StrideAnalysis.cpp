//===- core/StrideAnalysis.cpp --------------------------------------------===//

#include "core/StrideAnalysis.h"

#include "obs/DecisionLog.h"

#include <algorithm>
#include <map>

using namespace spf;
using namespace spf::core;

std::optional<int64_t>
core::dominantStride(const std::vector<int64_t> &Samples,
                     const StrideOptions &Opts, unsigned *NumSamples,
                     double *Fraction) {
  if (NumSamples)
    *NumSamples = static_cast<unsigned>(Samples.size());
  if (Fraction)
    *Fraction = 0.0;
  if (Samples.empty())
    return std::nullopt;

  std::map<int64_t, unsigned> Histogram;
  for (int64_t S : Samples)
    ++Histogram[S];

  auto Best = std::max_element(
      Histogram.begin(), Histogram.end(),
      [](const auto &A, const auto &B) { return A.second < B.second; });

  double Share =
      static_cast<double>(Best->second) / static_cast<double>(Samples.size());
  if (Fraction)
    *Fraction = Share;
  if (Samples.size() < Opts.MinSamples)
    return std::nullopt;
  if (Share < Opts.MajorityThreshold)
    return std::nullopt;
  return Best->first;
}

const char *core::stridePatternKindName(StridePatternKind K) {
  switch (K) {
  case StridePatternKind::None:
    return "none";
  case StridePatternKind::StrongSingle:
    return "strong-single";
  case StridePatternKind::WeakSingle:
    return "weak-single";
  case StridePatternKind::PhasedMulti:
    return "phased-multi";
  }
  return "?";
}

StridePatternKind
core::classifyStridePattern(const std::vector<int64_t> &Samples,
                            const StrideOptions &Opts, int64_t &Stride) {
  Stride = 0;
  if (Samples.size() < Opts.MinSamples)
    return StridePatternKind::None;

  std::map<int64_t, unsigned> Histogram;
  for (int64_t S : Samples)
    ++Histogram[S];
  auto Best = std::max_element(
      Histogram.begin(), Histogram.end(),
      [](const auto &A, const auto &B) { return A.second < B.second; });
  double Fraction =
      static_cast<double>(Best->second) / static_cast<double>(Samples.size());

  if (Fraction >= Opts.MajorityThreshold) {
    Stride = Best->first;
    return Best->first == 0 ? StridePatternKind::None
                            : StridePatternKind::StrongSingle;
  }

  // Phased multiple-stride: few distinct strides, few phase changes.
  unsigned Changes = 0;
  for (size_t I = 1; I < Samples.size(); ++I)
    Changes += Samples[I] != Samples[I - 1];
  if (Histogram.size() <= 3 &&
      Changes <= std::max<size_t>(2, Samples.size() / 4)) {
    Stride = Samples.front(); // The first phase's stride.
    return StridePatternKind::PhasedMulti;
  }

  if (Fraction >= 0.5 && Best->first != 0) {
    Stride = Best->first;
    return StridePatternKind::WeakSingle;
  }
  return StridePatternKind::None;
}

void core::annotateStrides(LoadDependenceGraph &Graph,
                           const InspectionResult &Insp,
                           const StrideOptions &Opts) {
  obs::DecisionLog *DL = obs::DecisionScope::current();

  // Identify nested loops whose loads must be dropped: observed average
  // trip count above SmallTripMax, or loops never observed at all that are
  // not the target itself. \p Why (may be null) receives the reason a
  // node is dropped, for the decision log.
  auto NodeEligible = [&](const LdgNode &N, const char **Why) {
    if (Why)
      *Why = "";
    if (N.Home == Graph.target())
      return true;
    // Walk up from the load's home loop to (exclusive) the target: every
    // level must be small-trip.
    for (analysis::Loop *L = N.Home; L && L != Graph.target();
         L = L->parent()) {
      auto It = Insp.SubLoopTrips.find(L);
      if (It == Insp.SubLoopTrips.end()) {
        if (Why)
          *Why = "nested loop never observed during inspection";
        return false;
      }
      if (It->second.average() > Opts.SmallTripMax) {
        if (Why)
          *Why = "nested loop trip count above small-trip bound";
        return false;
      }
    }
    return true;
  };

  // Inter-iteration strides: differences of the per-iteration first
  // addresses over consecutive observed iterations.
  for (LdgNode &N : Graph.nodes()) {
    N.InterStride.reset();
    N.InterSamples = 0;
    const char *Why = nullptr;
    if (!NodeEligible(N, &Why)) {
      if (DL)
        DL->event("stride", "node-dropped", obs::siteLabel(N.Load), Why);
      continue;
    }
    auto It = Insp.Trace.find(N.Load);
    if (It == Insp.Trace.end()) {
      if (DL)
        DL->event("stride", "no-samples", obs::siteLabel(N.Load),
                  "load never executed during inspection");
      continue;
    }
    const auto &Recs = It->second;
    std::vector<int64_t> Diffs;
    for (size_t I = 1; I < Recs.size(); ++I)
      if (Recs[I].Iteration == Recs[I - 1].Iteration + 1)
        Diffs.push_back(static_cast<int64_t>(Recs[I].Address) -
                        static_cast<int64_t>(Recs[I - 1].Address));
    double Fraction = 0;
    auto S = dominantStride(Diffs, Opts, &N.InterSamples, &Fraction);
    if (S && *S != 0)
      N.InterStride = S;
    N.InterKind = classifyStridePattern(Diffs, Opts, N.ExtendedStride);
    if (DL) {
      if (N.InterStride) {
        DL->event("stride", "inter-pattern", obs::siteLabel(N.Load),
                  stridePatternKindName(N.InterKind), *N.InterStride,
                  N.InterSamples, Fraction);
      } else {
        const char *Reason =
            Diffs.size() < Opts.MinSamples ? "too few samples"
            : (S && *S == 0)               ? "zero stride (loop-invariant address)"
                                           : "no majority stride";
        DL->event("stride", "inter-rejected", obs::siteLabel(N.Load), Reason,
                  S ? *S : 0, N.InterSamples, Fraction);
        if (N.InterKind == StridePatternKind::WeakSingle ||
            N.InterKind == StridePatternKind::PhasedMulti)
          DL->event("stride", "weak-pattern", obs::siteLabel(N.Load),
                    stridePatternKindName(N.InterKind), N.ExtendedStride,
                    N.InterSamples, Fraction);
      }
    }
  }

  // Intra-iteration strides on adjacent pairs: same-iteration address
  // differences.
  for (LdgEdge &E : Graph.edges()) {
    E.IntraStride.reset();
    E.IntraSamples = 0;
    const LdgNode &From = Graph.nodes()[E.From];
    const LdgNode &To = Graph.nodes()[E.To];
    if (!NodeEligible(From, nullptr) || !NodeEligible(To, nullptr))
      continue;
    auto FromIt = Insp.Trace.find(From.Load);
    auto ToIt = Insp.Trace.find(To.Load);
    if (FromIt == Insp.Trace.end() || ToIt == Insp.Trace.end())
      continue;

    // Join the two sparse traces on iteration number.
    std::vector<int64_t> Diffs;
    const auto &A = FromIt->second;
    const auto &B = ToIt->second;
    size_t IA = 0, IB = 0;
    while (IA < A.size() && IB < B.size()) {
      if (A[IA].Iteration < B[IB].Iteration) {
        ++IA;
      } else if (A[IA].Iteration > B[IB].Iteration) {
        ++IB;
      } else {
        Diffs.push_back(static_cast<int64_t>(B[IB].Address) -
                        static_cast<int64_t>(A[IA].Address));
        ++IA;
        ++IB;
      }
    }
    // A zero stride means the two loads touch the same address: the
    // pair is covered by the dereference prefetch for From alone, so —
    // exactly as on the inter-iteration path above — a zero dominant
    // stride must not annotate the edge (it would extend intra chains
    // through no-op hops and plan redundant prefetch entries).
    double Fraction = 0;
    auto S = dominantStride(Diffs, Opts, &E.IntraSamples, &Fraction);
    if (S && *S != 0)
      E.IntraStride = S;
    if (DL && !Diffs.empty()) {
      std::string Pair =
          obs::siteLabel(From.Load) + "->" + obs::siteLabel(To.Load);
      if (E.IntraStride)
        DL->event("stride", "intra-pattern", std::move(Pair), "",
                  *E.IntraStride, E.IntraSamples, Fraction);
      else
        DL->event("stride", "intra-rejected", std::move(Pair),
                  Diffs.size() < Opts.MinSamples ? "too few samples"
                  : (S && *S == 0) ? "zero stride (same address pair)"
                                   : "no majority stride",
                  S ? *S : 0, E.IntraSamples, Fraction);
    }
  }
}
