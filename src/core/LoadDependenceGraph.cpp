//===- core/LoadDependenceGraph.cpp ---------------------------------------===//

#include "core/LoadDependenceGraph.h"

using namespace spf;
using namespace spf::core;
using namespace spf::ir;

Value *LoadDependenceGraph::baseOperand(const Instruction *Load) {
  if (const auto *G = dyn_cast<GetFieldInst>(Load))
    return G->object();
  if (const auto *A = dyn_cast<ALoadInst>(Load))
    return A->array();
  if (const auto *L = dyn_cast<ArrayLengthInst>(Load))
    return L->array();
  return nullptr; // getstatic: fixed address, root node.
}

LoadDependenceGraph::LoadDependenceGraph(analysis::Loop *Target,
                                         const analysis::LoopInfo &LI) {
  this->Target = Target;

  // Nodes: every heap load in the loop body, in program order (the
  // loop's own block list is in discovery order, so walk the method).
  // Nested-loop loads are included and carry their home loop for
  // small-trip filtering.
  for (const auto &BBOwn : Target->header()->parent()->blocks()) {
    BasicBlock *BB = BBOwn.get();
    if (!Target->contains(BB))
      continue;
    for (const auto &IP : BB->instructions()) {
      Instruction *I = IP.get();
      if (!I->isHeapLoad())
        continue;
      LdgNode N;
      N.Load = I;
      N.Home = LI.loopFor(BB);
      NodeIndex[I] = static_cast<unsigned>(Nodes.size());
      Nodes.push_back(std::move(N));
    }
  }

  // Edges: To is directly data dependent on From when To's reference
  // operand is From's result (which is then necessarily a Ref).
  for (unsigned To = 0, E = Nodes.size(); To != E; ++To) {
    Value *Base = baseOperand(Nodes[To].Load);
    if (!Base)
      continue;
    auto *BaseInst = dyn_cast<Instruction>(Base);
    if (!BaseInst)
      continue;
    auto FromIt = NodeIndex.find(BaseInst);
    if (FromIt == NodeIndex.end())
      continue;
    unsigned From = FromIt->second;
    LdgEdge Edge;
    Edge.From = From;
    Edge.To = To;
    Nodes[From].Succs.push_back(To);
    Nodes[To].Preds.push_back(From);
    Edges.push_back(Edge);
  }
}

LdgEdge *LoadDependenceGraph::edgeBetween(unsigned From, unsigned To) {
  for (LdgEdge &E : Edges)
    if (E.From == From && E.To == To)
      return &E;
  return nullptr;
}

const LdgEdge *LoadDependenceGraph::edgeBetween(unsigned From,
                                                unsigned To) const {
  return const_cast<LoadDependenceGraph *>(this)->edgeBetween(From, To);
}
