//===- core/PrefetchPass.cpp ----------------------------------------------===//

#include "core/PrefetchPass.h"

#include "obs/DecisionLog.h"
#include "support/FaultInjection.h"
#include "support/Status.h"

#include <algorithm>
#include <string>

using namespace spf;
using namespace spf::core;
using namespace spf::ir;

namespace {

/// Runs object inspection, converting any escaped exception into an
/// error the pass degrades on (the inspector is a partial interpreter
/// over possibly-adversarial IR; it must never take the JIT down).
support::Expected<InspectionResult>
inspectChecked(ObjectInspector &Inspector, Method *M,
               const std::vector<uint64_t> &Args, analysis::Loop *L,
               const LoadDependenceGraph &Graph) {
  try {
    InspectionResult Insp = Inspector.inspect(M, Args, L, Graph);
    if (Insp.Degraded)
      return support::Status::error(Insp.DegradeReason.empty()
                                        ? "inspection degraded"
                                        : Insp.DegradeReason);
    return Insp;
  } catch (const std::exception &E) {
    return support::Status::error(std::string("inspection failed: ") +
                                  E.what());
  }
}

/// Plans prefetches and validates the plan's structural invariants
/// before any IR is mutated; a plan that fails validation degrades the
/// loop instead of feeding garbage to codegen.
support::Expected<LoopPlan> planChecked(const LoadDependenceGraph &Graph,
                                        const analysis::DefUse &DU,
                                        const PlannerOptions &Opts) {
  LoopPlan Plan;
  try {
    Plan = planPrefetches(Graph, DU, Opts);
  } catch (const std::exception &E) {
    return support::Status::error(std::string("planning failed: ") +
                                  E.what());
  }
  for (const AnchorPlan &A : Plan.Anchors) {
    if (!A.Anchor || !A.Base)
      return support::Status::error(
          "invalid plan: anchor without an insertion point or base");
    for (const DerefPrefetch &D : A.Derefs)
      if (!D.ForLoad)
        return support::Status::error(
            "invalid plan: dereference prefetch without a covered load");
  }
  return Plan;
}

} // namespace

PrefetchPassResult PrefetchPass::run(Method *M,
                                     const std::vector<uint64_t> &Args) {
  M->recomputePreds();
  analysis::DominatorTree DT(M);
  analysis::LoopInfo LI(M, DT);
  analysis::DefUse DU(M);
  return run(M, Args, LI, DU);
}

PrefetchPassResult PrefetchPass::run(Method *M,
                                     const std::vector<uint64_t> &Args,
                                     const analysis::LoopInfo &LI,
                                     const analysis::DefUse &DU) {
  PrefetchPassResult Result;
  if (!M || M->numBlocks() == 0 || LI.numLoops() == 0)
    return Result;

  uint64_t InspectionStepsLeft = Opts.MethodInspectionBudget;
  obs::DecisionLog *DL = obs::DecisionScope::current();

  // "The algorithm then traverses the loops in each tree in a postorder
  //  traversal, walking the trees in the program order."
  for (analysis::Loop *L : LI.loopsPostOrder()) {
    ++Result.LoopsVisited;
    LoopReport Report;
    Report.L = L;
    if (DL)
      DL->setContext(M->name(), L->header()->id());

    // Step 1: load dependence graph (nested loads included tentatively).
    LoadDependenceGraph Graph(L, LI);
    if (Graph.nodes().empty()) {
      if (DL)
        DL->event("ldg", "no-candidates", "",
                  "no reference-based loads in loop");
      Result.Loops.push_back(Report);
      continue;
    }
    if (DL)
      DL->event("ldg", "built", "",
                "nodes=" + std::to_string(Graph.nodes().size()) +
                    " edges=" + std::to_string(Graph.edges().size()));

    // Step 2: object inspection with the actual parameter values,
    // under the method-wide step budget.
    if (InspectionStepsLeft == 0) {
      if (DL)
        DL->event("inspect", "budget-exhausted", "",
                  "method inspection budget consumed by earlier loops");
      Result.Loops.push_back(Report);
      continue;
    }
    InspectorOptions InspOpts = Opts.Inspector;
    InspOpts.StepBudget = std::min<uint64_t>(InspOpts.StepBudget,
                                             InspectionStepsLeft);
    ObjectInspector Inspector(Heap, LI, InspOpts);
    support::Expected<InspectionResult> InspOrErr =
        inspectChecked(Inspector, M, Args, L, Graph);
    if (!InspOrErr.ok()) {
      ++Result.LoopsDegraded;
      Report.Degraded = true;
      Report.DegradeReason = InspOrErr.error();
      // Satellite fix: the degrade reason used to survive only as an
      // aggregate counter; keep the originating Status message (which
      // names the FaultSite for injected faults) with the loop.
      if (DL)
        DL->event("inspect", "degraded", "", Report.DegradeReason);
      Result.Loops.push_back(Report);
      continue;
    }
    InspectionResult &Insp = *InspOrErr;
    Result.InspectionFaultsInjected += Insp.FaultsInjected;
    InspectionStepsLeft -= std::min(InspectionStepsLeft, Insp.StepsUsed);
    Report.Reached = Insp.ReachedTarget;
    Report.IterationsObserved = Insp.IterationsObserved;
    if (!Insp.ReachedTarget) {
      ++Result.LoopsNotReached;
      if (DL)
        DL->event("inspect", "not-reached", "",
                  "inspection never entered the loop", 0, Insp.StepsUsed);
      Result.Loops.push_back(Report);
      continue;
    }
    if (DL && Insp.FaultsInjected > 0)
      DL->event("inspect", "faults-injected", "",
                std::string(support::faultSiteName(
                    support::FaultSite::InspectHeapRead)) +
                    " degraded reads to unknown",
                0, Insp.FaultsInjected);

    // A loop that exits within the small-trip budget is not prefetched
    // directly; its loads are reconsidered with the parent loop.
    if (Insp.TargetExitedEarly &&
        Insp.IterationsObserved <= Opts.SmallTripMax) {
      ++Result.LoopsSkippedSmallTrip;
      Report.SkippedSmallTrip = true;
      if (DL)
        DL->event("inspect", "small-trip", "",
                  "loop exited within the small-trip bound; loads deferred "
                  "to the parent loop",
                  0, Insp.IterationsObserved);
      Result.Loops.push_back(Report);
      continue;
    }
    if (DL)
      DL->event("inspect", "reached", "", "", 0, Insp.IterationsObserved);

    // Step 3: stride pattern annotation.
    annotateStrides(Graph, Insp, Opts.Stride);
    for (const LdgNode &N : Graph.nodes())
      Report.NodesWithInterStride += N.InterStride.has_value();
    for (const LdgEdge &E : Graph.edges())
      Report.EdgesWithIntraStride += E.IntraStride.has_value();

    // Step 4: plan and generate prefetching code. Only a validated plan
    // reaches applyPlan (the one step that mutates IR).
    support::Expected<LoopPlan> PlanOrErr = planChecked(Graph, DU, Opts.Planner);
    if (!PlanOrErr.ok()) {
      ++Result.LoopsDegraded;
      Report.Degraded = true;
      Report.DegradeReason = PlanOrErr.error();
      if (DL)
        DL->event("plan", "degraded", "", Report.DegradeReason);
      Result.Loops.push_back(Report);
      continue;
    }
    LoopPlan &Plan = *PlanOrErr;
    Report.PlainPrefetches = Plan.numPlain();
    Report.SpecLoads = Plan.numSpecLoads();
    Report.DerefPrefetches = Plan.numDeref();
    Report.IntraPrefetches = Plan.numIntra();
    if (DL && Plan.Anchors.empty())
      DL->event("plan", "nothing-profitable", "",
                "no anchor passed the profitability conditions");

    CodeGenStats CG = applyPlan(Plan);
    Result.CodeGen.Prefetches += CG.Prefetches;
    Result.CodeGen.SpecLoads += CG.SpecLoads;
    if (DL && !Plan.Anchors.empty())
      DL->event("codegen", "emitted", "",
                "prefetches=" + std::to_string(CG.Prefetches) +
                    " spec_loads=" + std::to_string(CG.SpecLoads));

    Result.Loops.push_back(Report);
  }

  return Result;
}
