//===- core/PrefetchPass.cpp ----------------------------------------------===//

#include "core/PrefetchPass.h"

#include <algorithm>

using namespace spf;
using namespace spf::core;
using namespace spf::ir;

PrefetchPassResult PrefetchPass::run(Method *M,
                                     const std::vector<uint64_t> &Args) {
  M->recomputePreds();
  analysis::DominatorTree DT(M);
  analysis::LoopInfo LI(M, DT);
  analysis::DefUse DU(M);
  return run(M, Args, LI, DU);
}

PrefetchPassResult PrefetchPass::run(Method *M,
                                     const std::vector<uint64_t> &Args,
                                     const analysis::LoopInfo &LI,
                                     const analysis::DefUse &DU) {
  PrefetchPassResult Result;
  if (LI.numLoops() == 0)
    return Result;

  uint64_t InspectionStepsLeft = Opts.MethodInspectionBudget;

  // "The algorithm then traverses the loops in each tree in a postorder
  //  traversal, walking the trees in the program order."
  for (analysis::Loop *L : LI.loopsPostOrder()) {
    ++Result.LoopsVisited;
    LoopReport Report;
    Report.L = L;

    // Step 1: load dependence graph (nested loads included tentatively).
    LoadDependenceGraph Graph(L, LI);
    if (Graph.nodes().empty()) {
      Result.Loops.push_back(Report);
      continue;
    }

    // Step 2: object inspection with the actual parameter values,
    // under the method-wide step budget.
    if (InspectionStepsLeft == 0) {
      Result.Loops.push_back(Report);
      continue;
    }
    InspectorOptions InspOpts = Opts.Inspector;
    InspOpts.StepBudget = std::min<uint64_t>(InspOpts.StepBudget,
                                             InspectionStepsLeft);
    ObjectInspector Inspector(Heap, LI, InspOpts);
    InspectionResult Insp = Inspector.inspect(M, Args, L, Graph);
    InspectionStepsLeft -= std::min(InspectionStepsLeft, Insp.StepsUsed);
    Report.Reached = Insp.ReachedTarget;
    Report.IterationsObserved = Insp.IterationsObserved;
    if (!Insp.ReachedTarget) {
      ++Result.LoopsNotReached;
      Result.Loops.push_back(Report);
      continue;
    }

    // A loop that exits within the small-trip budget is not prefetched
    // directly; its loads are reconsidered with the parent loop.
    if (Insp.TargetExitedEarly &&
        Insp.IterationsObserved <= Opts.SmallTripMax) {
      ++Result.LoopsSkippedSmallTrip;
      Report.SkippedSmallTrip = true;
      Result.Loops.push_back(Report);
      continue;
    }

    // Step 3: stride pattern annotation.
    annotateStrides(Graph, Insp, Opts.Stride);
    for (const LdgNode &N : Graph.nodes())
      Report.NodesWithInterStride += N.InterStride.has_value();
    for (const LdgEdge &E : Graph.edges())
      Report.EdgesWithIntraStride += E.IntraStride.has_value();

    // Step 4: plan and generate prefetching code.
    LoopPlan Plan = planPrefetches(Graph, DU, Opts.Planner);
    Report.PlainPrefetches = Plan.numPlain();
    Report.SpecLoads = Plan.numSpecLoads();
    Report.DerefPrefetches = Plan.numDeref();
    Report.IntraPrefetches = Plan.numIntra();

    CodeGenStats CG = applyPlan(Plan);
    Result.CodeGen.Prefetches += CG.Prefetches;
    Result.CodeGen.SpecLoads += CG.SpecLoads;

    Result.Loops.push_back(Report);
  }

  return Result;
}
