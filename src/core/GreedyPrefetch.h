//===- core/GreedyPrefetch.h - Luk & Mowry greedy prefetching ---*- C++ -*-===//
///
/// \file
/// The classic alternative for recursive data structures, implemented as
/// a comparison baseline: Luk & Mowry's *greedy prefetching* (ASPLOS'96,
/// discussed in the paper's Section 5) approximates the address of the
/// node d hops ahead "as one of the pointers from n_i" — i.e., when a
/// loop chases `p = p.next`, the just-loaded next pointer is itself a
/// natural prefetch address one node ahead.
///
/// Stride prefetching and greedy prefetching are complementary: stride
/// patterns need allocation-order regularity (db, Euler), greedy needs
/// only the pointer in hand (javac/jack-style chases, where stride
/// discovery finds nothing). The comparison bench measures both on both
/// kinds of programs.
///
//===----------------------------------------------------------------------===//

#ifndef SPF_CORE_GREEDYPREFETCH_H
#define SPF_CORE_GREEDYPREFETCH_H

#include "analysis/LoopInfo.h"

namespace spf {
namespace core {

/// Options for the greedy pass.
struct GreedyOptions {
  /// Byte offsets (from the prefetched node's base) to touch; one line's
  /// worth of header+fields by default.
  int64_t PrefetchDisp = 0;
  /// Also prefetch the chased field's own slot in the next node, keeping
  /// the chase itself covered when the field sits in a later line.
  bool CoverChasedField = true;
};

/// Result statistics.
struct GreedyResult {
  unsigned LoopsVisited = 0;
  unsigned RecurrencesFound = 0;
  unsigned Prefetches = 0;
};

/// Finds pointer-chasing recurrences in \p M 's loops — a Ref-typed
/// header phi whose loop-carried input is a `getfield` off the phi itself
/// (directly or through intermediate field loads) — and inserts a
/// prefetch of the newly loaded pointer right after each chase load.
GreedyResult runGreedyPrefetch(ir::Method *M,
                               GreedyOptions Opts = GreedyOptions());

} // namespace core
} // namespace spf

#endif // SPF_CORE_GREEDYPREFETCH_H
