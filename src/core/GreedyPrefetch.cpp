//===- core/GreedyPrefetch.cpp --------------------------------------------===//

#include "core/GreedyPrefetch.h"

#include "ir/Instruction.h"

using namespace spf;
using namespace spf::core;
using namespace spf::ir;

GreedyResult core::runGreedyPrefetch(Method *M, GreedyOptions Opts) {
  GreedyResult Result;

  M->recomputePreds();
  analysis::DominatorTree DT(M);
  analysis::LoopInfo LI(M, DT);

  for (analysis::Loop *L : LI.loopsPostOrder()) {
    ++Result.LoopsVisited;
    BasicBlock *Header = L->header();

    for (const auto &IP : Header->instructions()) {
      auto *Phi = dyn_cast<PhiInst>(IP.get());
      if (!Phi)
        break;
      if (Phi->type() != Type::Ref)
        continue;

      // The loop-carried input must be a getfield whose base chases back
      // to the phi: p -> p.next, or p -> p.a.next through intermediate
      // reference loads inside the loop.
      for (unsigned K = 0, E = Phi->numIncoming(); K != E; ++K) {
        if (!L->contains(Phi->incomingBlock(K)))
          continue; // Entry edge.
        auto *Chase = dyn_cast<GetFieldInst>(Phi->incomingValue(K));
        if (!Chase || !L->contains(Chase))
          continue;

        // Walk the base chain back to the phi (bounded hops).
        Value *Base = Chase->object();
        bool ReachesPhi = false;
        for (int Hop = 0; Hop < 4 && Base; ++Hop) {
          if (Base == Phi) {
            ReachesPhi = true;
            break;
          }
          if (auto *G = dyn_cast<GetFieldInst>(Base)) {
            if (!L->contains(G))
              break;
            Base = G->object();
          } else {
            break;
          }
        }
        if (!ReachesPhi)
          continue;

        ++Result.RecurrencesFound;

        // Greedy: the loaded pointer IS the lookahead address. Touch the
        // next node's start...
        BasicBlock *BB = Chase->parent();
        auto Pf = std::make_unique<PrefetchInst>(Chase, nullptr, 0,
                                                 Opts.PrefetchDisp,
                                                 /*Guarded=*/false);
        Pf->setAnchor(Chase); // Pointer chase: anchored, strideless.
        Instruction *Pos = BB->insertAfter(Chase, std::move(Pf));
        ++Result.Prefetches;
        // ...and the chased field itself when it lives elsewhere.
        if (Opts.CoverChasedField &&
            Chase->field()->Offset >= 64 + Opts.PrefetchDisp) {
          auto Pf2 = std::make_unique<PrefetchInst>(Chase, nullptr, 0,
                                                    Chase->field()->Offset,
                                                    /*Guarded=*/false);
          Pf2->setAnchor(Chase);
          BB->insertAfter(Pos, std::move(Pf2));
          ++Result.Prefetches;
        }
        break; // One chase per phi.
      }
    }
  }

  return Result;
}
