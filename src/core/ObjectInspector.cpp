//===- core/ObjectInspector.cpp -------------------------------------------===//

#include "core/ObjectInspector.h"

#include "obs/DecisionLog.h"
#include "support/ErrorHandling.h"
#include "support/FaultInjection.h"

using namespace spf;
using namespace spf::core;
using namespace spf::ir;

namespace {

/// The inspection value lattice: a concrete 64-bit slot or `unknown`.
struct IVal {
  bool Known = false;
  uint64_t Raw = 0;

  static IVal unknown() { return IVal(); }
  static IVal known(uint64_t V) { return IVal{true, V}; }
};

/// Base simulated address of the inspector's private heap, far above any
/// real heap address so the two can never collide.
constexpr vm::Addr PrivateHeapBase = 0x4000000000ull;

class InspectRun {
public:
  InspectRun(const vm::Heap &Heap, const analysis::LoopInfo &LI,
             const InspectorOptions &Opts, Method *M,
             const std::vector<uint64_t> &Args, analysis::Loop *Target,
             const LoadDependenceGraph &Graph)
      : Heap(Heap), LI(LI), Opts(Opts), M(M), Target(Target), Graph(Graph) {
    M->renumber();
    unsigned NumValues = M->numArgs();
    for (const auto &BB : M->blocks())
      NumValues += BB->size();
    Regs.assign(NumValues, IVal::unknown());
    for (unsigned I = 0, E = M->numArgs(); I != E; ++I)
      if (I < Args.size())
        Regs[M->arg(I)->id()] = IVal::known(Args[I]);
  }

  InspectionResult run();

private:
  IVal eval(const std::vector<IVal> &Regs, const Value *V) const {
    if (const auto *C = dyn_cast<Constant>(V))
      return IVal::known(C->raw());
    return Regs[V->id()];
  }

  bool isPrivate(vm::Addr A) const { return A >= PrivateHeapBase; }

  /// An injected failure of a real-heap read during inspection: the
  /// value degrades to `unknown`, the lattice's safe response.
  bool injectedReadFault() {
    if (!SPF_FAULT_POINT(support::FaultSite::InspectHeapRead))
      return false;
    ++Result.FaultsInjected;
    return true;
  }

  /// Side-effect-free typed load: store buffer first, then the private
  /// heap (zero-initialized), then the real heap.
  IVal loadMem(vm::Addr A, Type Ty) {
    auto It = Shadow.find(A);
    if (It != Shadow.end())
      return It->second;
    if (isPrivate(A)) {
      if (A < PrivateTop)
        return IVal::known(0); // Untouched private memory reads as zero.
      return IVal::unknown();
    }
    if (Heap.isValidAccess(A, ir::storageSize(Ty))) {
      if (injectedReadFault())
        return IVal::unknown();
      return IVal::known(Heap.load(A, Ty));
    }
    return IVal::unknown();
  }

  /// Buffered store; never touches the real heap.
  void storeMem(vm::Addr A, IVal V) { Shadow[A] = V; }

  /// Length of the array at \p Base, if determinable.
  IVal arrayLengthOf(vm::Addr Base) {
    auto It = Shadow.find(Base + vm::ArrayLengthOffset);
    if (It != Shadow.end())
      return It->second;
    if (isPrivate(Base))
      return IVal::unknown(); // Allocated with unknown length.
    if (Heap.isValidAccess(Base, vm::ObjectHeaderSize) && Heap.isArray(Base)) {
      if (injectedReadFault())
        return IVal::unknown();
      return IVal::known(
          static_cast<uint64_t>(static_cast<int64_t>(Heap.arrayLength(Base))));
    }
    return IVal::unknown();
  }

  IVal evalBinary(const std::vector<IVal> &Regs, const BinaryInst *B);
  IVal evalConv(const std::vector<IVal> &Regs, const ConvInst *C);
  std::optional<vm::Addr> loadAddress(const std::vector<IVal> &Regs,
                                      const Instruction *I);
  void recordAddress(const Instruction *I, vm::Addr A);
  vm::Addr privateAlloc(uint64_t Size);

  BasicBlock *pickUnknownBranch(BasicBlock *BB, const BranchInst *Br);
  IVal interpretCall(Method *Callee, const std::vector<IVal> &Args,
                     unsigned Depth);
  bool edgeAllowed(BasicBlock *From, BasicBlock *To);
  void onBlockEntered(BasicBlock *From, BasicBlock *To, bool &Stop);

  const vm::Heap &Heap;
  const analysis::LoopInfo &LI;
  const InspectorOptions &Opts;
  Method *M;
  analysis::Loop *Target;
  const LoadDependenceGraph &Graph;

  std::vector<IVal> Regs;
  std::unordered_map<vm::Addr, IVal> Shadow;
  vm::Addr PrivateTop = PrivateHeapBase;

  /// Iterations of each loop since it was last entered from outside.
  std::unordered_map<const analysis::Loop *, unsigned> IterThisEntry;

  /// Loop analyses for callees stepped into by FollowCalls.
  struct CalleeInfo {
    analysis::DominatorTree DT;
    analysis::LoopInfo LI;
    explicit CalleeInfo(Method *M) : DT(M), LI(M, DT) {}
  };
  std::unordered_map<Method *, std::unique_ptr<CalleeInfo>> CalleeAnalyses;

  InspectionResult Result;
  unsigned CurrentIteration = 0;
};

} // namespace

IVal InspectRun::evalBinary(const std::vector<IVal> &Regs,
                            const BinaryInst *B) {
  IVal L = eval(Regs, B->lhs()), R = eval(Regs, B->rhs());
  if (!L.Known || !R.Known)
    return IVal::unknown();

  using BinOp = BinaryInst::BinOp;
  Type OpTy = B->lhs()->type();

  if (OpTy == Type::F64) {
    double A, C;
    __builtin_memcpy(&A, &L.Raw, 8);
    __builtin_memcpy(&C, &R.Raw, 8);
    double Res;
    switch (B->binOp()) {
    case BinOp::Add: Res = A + C; break;
    case BinOp::Sub: Res = A - C; break;
    case BinOp::Mul: Res = A * C; break;
    case BinOp::Div: Res = A / C; break;
    case BinOp::CmpEq: return IVal::known(A == C);
    case BinOp::CmpNe: return IVal::known(A != C);
    case BinOp::CmpLt: return IVal::known(A < C);
    case BinOp::CmpLe: return IVal::known(A <= C);
    case BinOp::CmpGt: return IVal::known(A > C);
    case BinOp::CmpGe: return IVal::known(A >= C);
    default: return IVal::unknown();
    }
    uint64_t Bits;
    __builtin_memcpy(&Bits, &Res, 8);
    return IVal::known(Bits);
  }

  int64_t A = static_cast<int64_t>(L.Raw);
  int64_t C = static_cast<int64_t>(R.Raw);
  auto Wrap = [OpTy](int64_t V) {
    if (OpTy == Type::I32)
      return IVal::known(static_cast<uint64_t>(
          static_cast<int64_t>(static_cast<int32_t>(V))));
    return IVal::known(static_cast<uint64_t>(V));
  };

  switch (B->binOp()) {
  case BinOp::Add: return Wrap(A + C);
  case BinOp::Sub: return Wrap(A - C);
  case BinOp::Mul: return Wrap(A * C);
  case BinOp::Div: return C ? Wrap(A / C) : IVal::unknown();
  case BinOp::Rem: return C ? Wrap(A % C) : IVal::unknown();
  case BinOp::And: return Wrap(A & C);
  case BinOp::Or: return Wrap(A | C);
  case BinOp::Xor: return Wrap(A ^ C);
  case BinOp::Shl: return Wrap(A << (C & 63));
  case BinOp::Shr: return Wrap(A >> (C & 63));
  case BinOp::CmpEq: return IVal::known(L.Raw == R.Raw);
  case BinOp::CmpNe: return IVal::known(L.Raw != R.Raw);
  case BinOp::CmpLt: return IVal::known(A < C);
  case BinOp::CmpLe: return IVal::known(A <= C);
  case BinOp::CmpGt: return IVal::known(A > C);
  case BinOp::CmpGe: return IVal::known(A >= C);
  }
  spf_unreachable("unknown binop");
}

IVal InspectRun::evalConv(const std::vector<IVal> &Regs,
                          const ConvInst *C) {
  IVal S = eval(Regs, C->src());
  if (!S.Known)
    return IVal::unknown();
  switch (C->convOp()) {
  case ConvInst::ConvOp::SExt32To64:
    return S;
  case ConvInst::ConvOp::Trunc64To32:
    return IVal::known(static_cast<uint64_t>(
        static_cast<int64_t>(static_cast<int32_t>(S.Raw))));
  case ConvInst::ConvOp::IToF: {
    double D = static_cast<double>(static_cast<int64_t>(S.Raw));
    uint64_t Bits;
    __builtin_memcpy(&Bits, &D, 8);
    return IVal::known(Bits);
  }
  case ConvInst::ConvOp::FToI: {
    double D;
    __builtin_memcpy(&D, &S.Raw, 8);
    return IVal::known(static_cast<uint64_t>(
        static_cast<int64_t>(static_cast<int32_t>(D))));
  }
  }
  spf_unreachable("unknown conversion");
}

/// Computes the memory address a heap load will access, when known.
std::optional<vm::Addr>
InspectRun::loadAddress(const std::vector<IVal> &Regs, const Instruction *I) {
  if (const auto *G = dyn_cast<GetFieldInst>(I)) {
    IVal Obj = eval(Regs, G->object());
    if (!Obj.Known || !Obj.Raw)
      return std::nullopt;
    return Obj.Raw + G->field()->Offset;
  }
  if (const auto *A = dyn_cast<ALoadInst>(I)) {
    IVal Arr = eval(Regs, A->array());
    IVal Idx = eval(Regs, A->index());
    if (!Arr.Known || !Arr.Raw || !Idx.Known)
      return std::nullopt;
    int64_t Index = static_cast<int64_t>(Idx.Raw);
    if (Index < 0)
      return std::nullopt;
    return Arr.Raw + vm::ObjectHeaderSize +
           static_cast<uint64_t>(Index) * ir::storageSize(A->type());
  }
  if (const auto *L = dyn_cast<ArrayLengthInst>(I)) {
    IVal Arr = eval(Regs, L->array());
    if (!Arr.Known || !Arr.Raw)
      return std::nullopt;
    return Arr.Raw + vm::ArrayLengthOffset;
  }
  if (const auto *S = dyn_cast<GetStaticInst>(I))
    return S->variable()->Address;
  return std::nullopt;
}

void InspectRun::recordAddress(const Instruction *I, vm::Addr A) {
  if (!Result.ReachedTarget)
    return;
  auto &Recs = Result.Trace[I];
  // First access per iteration only: the paper defines strides over the
  // per-iteration address sequence.
  if (!Recs.empty() && Recs.back().Iteration == CurrentIteration)
    return;
  Recs.push_back(AddrRecord{CurrentIteration, A});
}

vm::Addr InspectRun::privateAlloc(uint64_t Size) {
  vm::Addr A = PrivateTop;
  PrivateTop += (Size + 7) & ~7ull;
  return A;
}

/// Chooses a successor for a branch whose condition is unknown. Preference
/// order: stay inside the target loop; then prefer the shallower-nested
/// successor (progress outer levels rather than re-running inner loops);
/// then the false edge.
BasicBlock *InspectRun::pickUnknownBranch(BasicBlock *BB,
                                          const BranchInst *Br) {
  (void)BB;
  BasicBlock *T = Br->trueSuccessor();
  BasicBlock *F = Br->falseSuccessor();

  bool TIn = Target->contains(T);
  bool FIn = Target->contains(F);
  if (TIn != FIn)
    return TIn ? T : F;

  auto Depth = [this](BasicBlock *B) {
    analysis::Loop *L = LI.loopFor(B);
    return L ? L->depth() : 0u;
  };
  unsigned DT = Depth(T), DF = Depth(F);
  if (DT != DF)
    return DT < DF ? T : F;
  return F;
}

/// Returns false when taking From -> To would keep iterating a capped
/// loop beyond its per-entry budget. Two cases matter: (a) a back edge
/// re-entering the header of a capped loop, and (b) the header of an
/// over-budget loop branching back into its own body (the common rotated
/// form where the back edge itself is an unconditional jump).
bool InspectRun::edgeAllowed(BasicBlock *From, BasicBlock *To) {
  auto CapFor = [this](const analysis::Loop *L) {
    return Target->contains(L->header()) ? Opts.InnerLoopCap
                                         : Opts.PreLoopCap;
  };
  auto IsCapped = [this](const analysis::Loop *L) {
    // The target is counted separately; enclosing loops run freely (they
    // only execute until the target is reached).
    return L != Target && !L->contains(Target->header());
  };
  auto Count = [this](const analysis::Loop *L) {
    auto It = IterThisEntry.find(L);
    return It == IterThisEntry.end() ? 0u : It->second;
  };

  // (a) Back edge into a capped header.
  analysis::Loop *LTo = LI.loopFor(To);
  if (LTo && LTo->header() == To && LTo->contains(From) && IsCapped(LTo) &&
      Count(LTo) >= CapFor(LTo))
    return false;

  // (b) Header of an over-budget loop continuing inside the loop.
  analysis::Loop *LFrom = LI.loopFor(From);
  if (LFrom && LFrom->header() == From && LFrom->contains(To) &&
      IsCapped(LFrom) && Count(LFrom) > CapFor(LFrom))
    return false;

  return true;
}

/// Bookkeeping when control moves to \p To: loop iteration counting,
/// target-loop iteration limit, trip statistics.
void InspectRun::onBlockEntered(BasicBlock *From, BasicBlock *To,
                                bool &Stop) {
  // Leaving the target loop after having reached it ends inspection.
  if (Result.ReachedTarget && !Target->contains(To)) {
    Result.TargetExitedEarly =
        Result.IterationsObserved < Opts.MaxIterations;
    Stop = true;
    return;
  }

  analysis::Loop *L = LI.loopFor(To);
  if (!L || L->header() != To)
    return;

  bool BackEdge = From && L->contains(From);
  unsigned &Count = IterThisEntry[L];
  Count = BackEdge ? Count + 1 : 1;

  if (Target->contains(To) && L != Target) {
    TripStats &TS = Result.SubLoopTrips[L];
    if (!BackEdge)
      ++TS.Entries;
    ++TS.Iterations;
  }

  if (L == Target) {
    Result.ReachedTarget = true;
    if (Result.IterationsObserved >= Opts.MaxIterations) {
      Stop = true; // Observed enough iterations.
      return;
    }
    CurrentIteration = Result.IterationsObserved++;
  }
}

InspectionResult InspectRun::run() {
  BasicBlock *BB = M->entry();
  BasicBlock *PrevBB = nullptr;
  bool Stop = false;

  onBlockEntered(nullptr, BB, Stop);

  std::vector<std::pair<unsigned, IVal>> PhiUpdates;

  while (!Stop) {
    if (PrevBB) {
      PhiUpdates.clear();
      for (const auto &IP : BB->instructions()) {
        auto *Phi = dyn_cast<PhiInst>(IP.get());
        if (!Phi)
          break;
        Value *In = Phi->valueFor(PrevBB);
        PhiUpdates.emplace_back(Phi->id(),
                                In ? eval(Regs, In) : IVal::unknown());
      }
      for (const auto &[Id, V] : PhiUpdates)
        Regs[Id] = V;
    }

    BasicBlock *NextBB = nullptr;

    for (const auto &IP : BB->instructions()) {
      Instruction *I = IP.get();
      if (isa<PhiInst>(I))
        continue;

      if (++Result.StepsUsed > Opts.StepBudget)
        return Result; // Budget exceeded: keep what we have.

      switch (I->opcode()) {
      case Opcode::Binary:
        Regs[I->id()] = evalBinary(Regs, cast<BinaryInst>(I));
        break;
      case Opcode::Conv:
        Regs[I->id()] = evalConv(Regs, cast<ConvInst>(I));
        break;

      case Opcode::GetField:
      case Opcode::GetStatic:
      case Opcode::ALoad:
      case Opcode::ArrayLength: {
        auto AddrOpt = loadAddress(Regs, I);
        if (!AddrOpt) {
          Regs[I->id()] = IVal::unknown();
          break;
        }
        vm::Addr A = *AddrOpt;
        if (Graph.nodeFor(I))
          recordAddress(I, A);
        if (I->opcode() == Opcode::ArrayLength) {
          auto *AL = cast<ArrayLengthInst>(I);
          Regs[I->id()] = arrayLengthOf(eval(Regs, AL->array()).Raw);
        } else {
          Regs[I->id()] = loadMem(A, I->type());
        }
        break;
      }

      case Opcode::PutField: {
        auto *P = cast<PutFieldInst>(I);
        IVal Obj = eval(Regs, P->object());
        if (Obj.Known && Obj.Raw)
          storeMem(Obj.Raw + P->field()->Offset, eval(Regs, P->value()));
        break;
      }
      case Opcode::PutStatic: {
        auto *P = cast<PutStaticInst>(I);
        storeMem(P->variable()->Address, eval(Regs, P->value()));
        break;
      }
      case Opcode::AStore: {
        auto *S = cast<AStoreInst>(I);
        IVal Arr = eval(Regs, S->array());
        IVal Idx = eval(Regs, S->index());
        if (Arr.Known && Arr.Raw && Idx.Known) {
          vm::Addr A = Arr.Raw + vm::ObjectHeaderSize +
                       Idx.Raw * ir::storageSize(S->value()->type());
          storeMem(A, eval(Regs, S->value()));
        }
        break;
      }

      case Opcode::NewObject: {
        auto *N = cast<NewObjectInst>(I);
        vm::Addr A = privateAlloc(N->objectClass()->instanceSize());
        Regs[I->id()] = IVal::known(A);
        break;
      }
      case Opcode::NewArray: {
        auto *N = cast<NewArrayInst>(I);
        IVal Len = eval(Regs, N->length());
        uint64_t Elems = Len.Known ? Len.Raw : 64;
        vm::Addr A = privateAlloc(vm::ObjectHeaderSize +
                                  Elems *
                                      ir::storageSize(N->elementType()));
        if (Len.Known)
          storeMem(A + vm::ArrayLengthOffset, Len);
        Regs[I->id()] = IVal::known(A);
        break;
      }

      case Opcode::Call: {
        // By default: "we interpret a method invocation by simply
        // skipping it and assuming that the return value, if any, is
        // unknown." With FollowCalls (the paper's discussed extension)
        // non-recursive callees are stepped into.
        auto *C = cast<CallInst>(I);
        IVal R = IVal::unknown();
        if (Opts.FollowCalls && C->callee() && !C->callee()->isNative()) {
          std::vector<IVal> CallArgs;
          for (Value *Op : C->operands())
            CallArgs.push_back(eval(Regs, Op));
          R = interpretCall(C->callee(), CallArgs, /*Depth=*/1);
        }
        if (I->type() != Type::Void)
          Regs[I->id()] = R;
        break;
      }

      case Opcode::Prefetch:
        break; // Already-optimized inner loops: prefetches are no-ops.
      case Opcode::SpecLoad: {
        auto *S = cast<SpecLoadInst>(I);
        IVal Base = eval(Regs, S->base());
        IVal Idx = S->index() ? eval(Regs, S->index()) : IVal::known(0);
        if (Base.Known && Idx.Known) {
          vm::Addr A = Base.Raw + S->displacement() +
                       Idx.Raw * static_cast<uint64_t>(S->scale());
          Regs[I->id()] = loadMem(A, Type::Ref);
        } else {
          Regs[I->id()] = IVal::unknown();
        }
        break;
      }

      case Opcode::Phi:
        break;

      case Opcode::Branch: {
        auto *Br = cast<BranchInst>(I);
        IVal Cond = eval(Regs, Br->condition());
        BasicBlock *Taken;
        if (Cond.Known)
          Taken = Cond.Raw ? Br->trueSuccessor() : Br->falseSuccessor();
        else
          Taken = pickUnknownBranch(BB, Br);

        // Respect per-entry loop caps: if the chosen edge would re-enter a
        // capped loop, take the other side when possible.
        if (!edgeAllowed(BB, Taken)) {
          BasicBlock *Other = Taken == Br->trueSuccessor()
                                  ? Br->falseSuccessor()
                                  : Br->trueSuccessor();
          if (edgeAllowed(BB, Other))
            Taken = Other;
        }
        NextBB = Taken;
        break;
      }
      case Opcode::Jump:
        NextBB = cast<JumpInst>(I)->target();
        break;
      case Opcode::Ret:
        return Result;
      }

      if (NextBB)
        break;
    }

    if (!NextBB) {
      // Malformed IR (block without a terminator): a broken input must
      // degrade to "no prefetch for this loop", never kill the JIT.
      Result.Degraded = true;
      Result.DegradeReason = "malformed IR: block without terminator";
      if (auto *DL = obs::DecisionScope::current())
        DL->event("inspect", "degrade-origin", BB ? "@" + BB->name() : "",
                  Result.DegradeReason);
      Result.Trace.clear();
      return Result;
    }
    onBlockEntered(BB, NextBB, Stop);
    PrevBB = BB;
    BB = NextBB;
  }
  return Result;
}

/// Inter-procedural inspection: executes \p Callee with the given
/// argument lattice values, sharing the store buffer, private heap, and
/// step budget. Callee loops run one iteration (the pre-target rule
/// generalized); unknown branches take the false edge; recursion is
/// depth-limited. Returns the callee's result lattice value.
IVal InspectRun::interpretCall(Method *Callee,
                               const std::vector<IVal> &Args,
                               unsigned Depth) {
  if (Depth > Opts.MaxCallDepth || Callee->numBlocks() == 0)
    return IVal::unknown();

  Callee->renumber();
  unsigned NumValues = Callee->numArgs();
  for (const auto &BB : Callee->blocks())
    NumValues += BB->size();
  std::vector<IVal> Regs(NumValues, IVal::unknown());
  for (unsigned I = 0, E = Callee->numArgs(); I != E; ++I)
    if (I < Args.size())
      Regs[Callee->arg(I)->id()] = Args[I];

  // Per-callee loop info (cached across calls within one inspection).
  auto &Analyses = CalleeAnalyses[Callee];
  if (!Analyses) {
    Callee->recomputePreds();
    Analyses = std::make_unique<CalleeInfo>(Callee);
  }
  const analysis::LoopInfo &CLI = Analyses->LI;

  std::unordered_map<const analysis::Loop *, unsigned> Iter;
  BasicBlock *BB = Callee->entry();
  const BasicBlock *PrevBB = nullptr;
  std::vector<std::pair<unsigned, IVal>> PhiUpdates;

  while (true) {
    if (PrevBB) {
      PhiUpdates.clear();
      for (const auto &IP : BB->instructions()) {
        auto *Phi = dyn_cast<PhiInst>(IP.get());
        if (!Phi)
          break;
        Value *In = Phi->valueFor(PrevBB);
        PhiUpdates.emplace_back(Phi->id(),
                                In ? eval(Regs, In) : IVal::unknown());
      }
      for (const auto &[Id, V] : PhiUpdates)
        Regs[Id] = V;
    }

    BasicBlock *NextBB = nullptr;
    for (const auto &IP : BB->instructions()) {
      Instruction *I = IP.get();
      if (isa<PhiInst>(I))
        continue;
      if (++Result.StepsUsed > Opts.StepBudget)
        return IVal::unknown();

      switch (I->opcode()) {
      case Opcode::Binary:
        Regs[I->id()] = evalBinary(Regs, cast<BinaryInst>(I));
        break;
      case Opcode::Conv:
        Regs[I->id()] = evalConv(Regs, cast<ConvInst>(I));
        break;
      case Opcode::GetField:
      case Opcode::GetStatic:
      case Opcode::ALoad: {
        auto AddrOpt = loadAddress(Regs, I);
        Regs[I->id()] =
            AddrOpt ? loadMem(*AddrOpt, I->type()) : IVal::unknown();
        break;
      }
      case Opcode::ArrayLength: {
        IVal Arr = eval(Regs, cast<ArrayLengthInst>(I)->array());
        Regs[I->id()] = (Arr.Known && Arr.Raw) ? arrayLengthOf(Arr.Raw)
                                               : IVal::unknown();
        break;
      }
      case Opcode::PutField: {
        auto *P = cast<PutFieldInst>(I);
        IVal Obj = eval(Regs, P->object());
        if (Obj.Known && Obj.Raw)
          storeMem(Obj.Raw + P->field()->Offset, eval(Regs, P->value()));
        break;
      }
      case Opcode::PutStatic: {
        auto *P = cast<PutStaticInst>(I);
        storeMem(P->variable()->Address, eval(Regs, P->value()));
        break;
      }
      case Opcode::AStore: {
        auto *S = cast<AStoreInst>(I);
        IVal Arr = eval(Regs, S->array());
        IVal Idx = eval(Regs, S->index());
        if (Arr.Known && Arr.Raw && Idx.Known)
          storeMem(Arr.Raw + vm::ObjectHeaderSize +
                       Idx.Raw * ir::storageSize(S->value()->type()),
                   eval(Regs, S->value()));
        break;
      }
      case Opcode::NewObject:
        Regs[I->id()] = IVal::known(
            privateAlloc(cast<NewObjectInst>(I)->objectClass()
                             ->instanceSize()));
        break;
      case Opcode::NewArray: {
        auto *N = cast<NewArrayInst>(I);
        IVal Len = eval(Regs, N->length());
        uint64_t Elems = Len.Known ? Len.Raw : 64;
        vm::Addr A = privateAlloc(
            vm::ObjectHeaderSize + Elems * ir::storageSize(N->elementType()));
        if (Len.Known)
          storeMem(A + vm::ArrayLengthOffset, Len);
        Regs[I->id()] = IVal::known(A);
        break;
      }
      case Opcode::Call: {
        auto *C = cast<CallInst>(I);
        IVal R = IVal::unknown();
        if (C->callee() && !C->callee()->isNative() &&
            Depth < Opts.MaxCallDepth) {
          std::vector<IVal> SubArgs;
          for (Value *Op : C->operands())
            SubArgs.push_back(eval(Regs, Op));
          R = interpretCall(C->callee(), SubArgs, Depth + 1);
        }
        if (I->type() != Type::Void)
          Regs[I->id()] = R;
        break;
      }
      case Opcode::Prefetch:
      case Opcode::Phi:
        break;
      case Opcode::SpecLoad: {
        auto *S = cast<SpecLoadInst>(I);
        IVal Base = eval(Regs, S->base());
        IVal Idx = S->index() ? eval(Regs, S->index()) : IVal::known(0);
        Regs[I->id()] =
            (Base.Known && Idx.Known)
                ? loadMem(Base.Raw + S->displacement() +
                              Idx.Raw * static_cast<uint64_t>(S->scale()),
                          Type::Ref)
                : IVal::unknown();
        break;
      }
      case Opcode::Branch: {
        auto *Br = cast<BranchInst>(I);
        IVal Cond = eval(Regs, Br->condition());
        BasicBlock *Taken = Cond.Known
                                ? (Cond.Raw ? Br->trueSuccessor()
                                            : Br->falseSuccessor())
                                : Br->falseSuccessor();
        // Callee loops follow the generalized pre-target rule: one
        // iteration per entry, then force the exit edge when possible.
        auto OverBudget = [&](BasicBlock *To) {
          analysis::Loop *L = CLI.loopFor(To);
          if (L && L->header() == To && L->contains(BB))
            return Iter[L] >= Opts.PreLoopCap;
          analysis::Loop *LF = CLI.loopFor(BB);
          if (LF && LF->header() == BB && LF->contains(To))
            return Iter[LF] > Opts.PreLoopCap;
          return false;
        };
        if (OverBudget(Taken)) {
          BasicBlock *Other = Taken == Br->trueSuccessor()
                                  ? Br->falseSuccessor()
                                  : Br->trueSuccessor();
          if (!OverBudget(Other))
            Taken = Other;
        }
        NextBB = Taken;
        break;
      }
      case Opcode::Jump:
        NextBB = cast<JumpInst>(I)->target();
        break;
      case Opcode::Ret: {
        auto *R = cast<RetInst>(I);
        return R->value() ? eval(Regs, R->value()) : IVal::unknown();
      }
      }
      if (NextBB)
        break;
    }

    if (!NextBB) {
      Result.Degraded = true;
      Result.DegradeReason =
          "malformed IR: callee block without terminator";
      if (auto *DL = obs::DecisionScope::current())
        DL->event("inspect", "degrade-origin", "", Result.DegradeReason);
      return IVal::unknown();
    }
    // Loop iteration accounting.
    if (analysis::Loop *L = CLI.loopFor(NextBB))
      if (L->header() == NextBB)
        Iter[L] = L->contains(BB) ? Iter[L] + 1 : 1;
    PrevBB = BB;
    BB = NextBB;
  }
}

ObjectInspector::ObjectInspector(const vm::Heap &Heap,
                                 const analysis::LoopInfo &LI,
                                 InspectorOptions Opts)
    : Heap(Heap), LI(LI), Opts(Opts) {}

InspectionResult ObjectInspector::inspect(Method *M,
                                          const std::vector<uint64_t> &Args,
                                          analysis::Loop *TargetLoop,
                                          const LoadDependenceGraph &Graph) {
  InspectRun Run(Heap, LI, Opts, M, Args, TargetLoop, Graph);
  return Run.run();
}
