//===- analysis/DefUse.h - Def-use chains -----------------------*- C++ -*-===//
///
/// \file
/// Def-use chains computed on demand. The paper uses use-def information to
/// build the load dependence graph ("we can construct the graph, for
/// instance, by utilizing the use-def chains built for the method") and the
/// profitability analysis requires knowing whether any instruction is data
/// dependent on a load.
///
//===----------------------------------------------------------------------===//

#ifndef SPF_ANALYSIS_DEFUSE_H
#define SPF_ANALYSIS_DEFUSE_H

#include "ir/Method.h"

#include <unordered_map>
#include <vector>

namespace spf {
namespace analysis {

/// Maps every value defined in a method to the instructions using it.
class DefUse {
public:
  explicit DefUse(ir::Method *M);

  /// Instructions that use \p V as an operand (in program order,
  /// duplicates possible for repeated operands).
  const std::vector<ir::Instruction *> &usersOf(const ir::Value *V) const;

  /// Returns true if at least one instruction uses \p V.
  bool hasUsers(const ir::Value *V) const { return !usersOf(V).empty(); }

private:
  std::unordered_map<const ir::Value *, std::vector<ir::Instruction *>> Users;
  std::vector<ir::Instruction *> Empty;
};

} // namespace analysis
} // namespace spf

#endif // SPF_ANALYSIS_DEFUSE_H
