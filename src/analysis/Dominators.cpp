//===- analysis/Dominators.cpp --------------------------------------------===//
//
// "A Simple, Fast Dominance Algorithm" (Cooper, Harvey, Kennedy).
//
//===----------------------------------------------------------------------===//

#include "analysis/Dominators.h"

using namespace spf;
using namespace spf::analysis;
using namespace spf::ir;

DominatorTree::DominatorTree(Method *M)
    : RPO(reversePostOrder(M)), RpoIndex(rpoIndexMap(RPO)) {
  const unsigned N = RPO.size();
  Idom.assign(N, -1);
  if (N == 0)
    return;
  Idom[0] = 0; // The entry dominates itself.

  auto Intersect = [this](int A, int B) {
    while (A != B) {
      while (A > B)
        A = Idom[A];
      while (B > A)
        B = Idom[B];
    }
    return A;
  };

  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (unsigned I = 1; I != N; ++I) {
      int NewIdom = -1;
      for (BasicBlock *Pred : RPO[I]->predecessors()) {
        auto It = RpoIndex.find(Pred);
        if (It == RpoIndex.end())
          continue; // Unreachable predecessor.
        int P = static_cast<int>(It->second);
        if (Idom[P] == -1)
          continue; // Not yet processed.
        NewIdom = NewIdom == -1 ? P : Intersect(P, NewIdom);
      }
      if (NewIdom != -1 && Idom[I] != NewIdom) {
        Idom[I] = NewIdom;
        Changed = true;
      }
    }
  }
}

BasicBlock *DominatorTree::idom(const BasicBlock *BB) const {
  auto It = RpoIndex.find(BB);
  if (It == RpoIndex.end() || It->second == 0)
    return nullptr;
  int Dom = Idom[It->second];
  return Dom < 0 ? nullptr : RPO[Dom];
}

bool DominatorTree::dominates(const BasicBlock *A,
                              const BasicBlock *B) const {
  auto ItA = RpoIndex.find(A), ItB = RpoIndex.find(B);
  if (ItA == RpoIndex.end() || ItB == RpoIndex.end())
    return false;
  unsigned IA = ItA->second;
  int Cur = static_cast<int>(ItB->second);
  while (Cur >= 0) {
    if (static_cast<unsigned>(Cur) == IA)
      return true;
    if (Cur == 0)
      return false;
    Cur = Idom[Cur];
  }
  return false;
}
