//===- analysis/DefUse.cpp ------------------------------------------------===//

#include "analysis/DefUse.h"

using namespace spf;
using namespace spf::analysis;
using namespace spf::ir;

DefUse::DefUse(Method *M) {
  for (const auto &BB : M->blocks())
    for (const auto &I : BB->instructions())
      for (Value *Op : I->operands())
        Users[Op].push_back(I.get());
}

const std::vector<Instruction *> &DefUse::usersOf(const Value *V) const {
  auto It = Users.find(V);
  return It == Users.end() ? Empty : It->second;
}
