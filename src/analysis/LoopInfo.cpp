//===- analysis/LoopInfo.cpp ----------------------------------------------===//

#include "analysis/LoopInfo.h"

#include <algorithm>
#include <functional>

using namespace spf;
using namespace spf::analysis;
using namespace spf::ir;

std::vector<BasicBlock *> Loop::latches() const {
  std::vector<BasicBlock *> Result;
  for (BasicBlock *Pred : Header->predecessors())
    if (contains(Pred))
      Result.push_back(Pred);
  return Result;
}

LoopInfo::LoopInfo(Method *M, const DominatorTree &DT) {
  (void)M;
  const auto &RPO = DT.rpo();
  auto Index = rpoIndexMap(RPO);

  // Discover natural loops: a back edge P -> H exists when H dominates P.
  for (BasicBlock *Header : RPO) {
    std::vector<BasicBlock *> Latches;
    for (BasicBlock *Pred : Header->predecessors())
      if (DT.isReachable(Pred) && DT.dominates(Header, Pred))
        Latches.push_back(Pred);
    if (Latches.empty())
      continue;

    auto L = std::make_unique<Loop>(Header);
    L->addBlock(Header);
    // Backward walk from every latch, stopping at the header; loops
    // sharing a header are merged into one (as in LLVM's LoopInfo).
    std::vector<BasicBlock *> Work(Latches.begin(), Latches.end());
    while (!Work.empty()) {
      BasicBlock *BB = Work.back();
      Work.pop_back();
      if (L->contains(BB))
        continue;
      L->addBlock(BB);
      for (BasicBlock *Pred : BB->predecessors())
        if (DT.isReachable(Pred))
          Work.push_back(Pred);
    }
    Loops.push_back(std::move(L));
  }

  // Establish nesting: the parent of L is the smallest strictly larger
  // loop containing L's header. Natural loops (with shared headers merged)
  // are either disjoint or nested, so this is well-defined.
  std::vector<Loop *> BySize;
  for (const auto &L : Loops)
    BySize.push_back(L.get());
  std::sort(BySize.begin(), BySize.end(), [](const Loop *A, const Loop *B) {
    return A->blocks().size() < B->blocks().size();
  });

  for (unsigned I = 0, E = BySize.size(); I != E; ++I) {
    Loop *L = BySize[I];
    for (unsigned J = I + 1; J != E; ++J) {
      Loop *Candidate = BySize[J];
      if (Candidate != L && Candidate->contains(L->header())) {
        L->Parent = Candidate;
        break;
      }
    }
  }

  for (const auto &L : Loops) {
    if (L->Parent)
      L->Parent->SubLoops.push_back(L.get());
    else
      TopLevel.push_back(L.get());
  }

  // Program order (header RPO index) for deterministic traversal.
  auto ByHeader = [&Index](Loop *A, Loop *B) {
    return Index.at(A->header()) < Index.at(B->header());
  };
  std::sort(TopLevel.begin(), TopLevel.end(), ByHeader);
  for (const auto &L : Loops)
    std::sort(L->SubLoops.begin(), L->SubLoops.end(), ByHeader);

  // Innermost-loop map: larger loops first so smaller ones overwrite.
  for (auto It = BySize.rbegin(); It != BySize.rend(); ++It)
    for (BasicBlock *BB : (*It)->blocks())
      BlockToLoop[BB] = *It;
}

std::vector<Loop *> LoopInfo::loopsPostOrder() const {
  std::vector<Loop *> Result;
  // Children before parents, trees in program order (paper, Section 3).
  std::function<void(Loop *)> Visit = [&](Loop *L) {
    for (Loop *Sub : L->subLoops())
      Visit(Sub);
    Result.push_back(L);
  };
  for (Loop *L : TopLevel)
    Visit(L);
  return Result;
}
