//===- analysis/LoopInfo.h - Loop nesting forest ----------------*- C++ -*-===//
///
/// \file
/// Natural-loop detection and the loop nesting forest. The prefetch pass
/// traverses this forest "in a postorder traversal, walking the trees in
/// the program order" (paper, Section 3) and folds small-trip-count inner
/// loops into their parents.
///
//===----------------------------------------------------------------------===//

#ifndef SPF_ANALYSIS_LOOPINFO_H
#define SPF_ANALYSIS_LOOPINFO_H

#include "analysis/Dominators.h"

#include <memory>
#include <unordered_set>

namespace spf {
namespace analysis {

/// One natural loop: a header and the set of blocks of its body.
class Loop {
public:
  Loop(ir::BasicBlock *Header) : Header(Header) {}

  ir::BasicBlock *header() const { return Header; }

  /// All blocks in the loop, including blocks of nested loops.
  const std::vector<ir::BasicBlock *> &blocks() const { return Blocks; }

  bool contains(const ir::BasicBlock *BB) const {
    return BlockSet.count(BB) != 0;
  }

  /// Returns true when \p I 's parent block is inside this loop.
  bool contains(const ir::Instruction *I) const {
    return contains(I->parent());
  }

  Loop *parent() const { return Parent; }
  const std::vector<Loop *> &subLoops() const { return SubLoops; }

  /// Latch blocks: in-loop predecessors of the header (back-edge sources).
  std::vector<ir::BasicBlock *> latches() const;

  /// Loop depth; 1 for outermost loops.
  unsigned depth() const {
    unsigned D = 1;
    for (Loop *L = Parent; L; L = L->parent())
      ++D;
    return D;
  }

private:
  friend class LoopInfo;

  void addBlock(ir::BasicBlock *BB) {
    if (BlockSet.insert(BB).second)
      Blocks.push_back(BB);
  }

  ir::BasicBlock *Header;
  std::vector<ir::BasicBlock *> Blocks;
  std::unordered_set<const ir::BasicBlock *> BlockSet;
  Loop *Parent = nullptr;
  std::vector<Loop *> SubLoops;
};

/// The loop nesting forest of a method.
class LoopInfo {
public:
  LoopInfo(ir::Method *M, const DominatorTree &DT);

  /// Outermost loops in program order.
  const std::vector<Loop *> &topLevelLoops() const { return TopLevel; }

  /// All loops, innermost first (forest postorder), trees in program order.
  std::vector<Loop *> loopsPostOrder() const;

  /// The innermost loop containing \p BB, or null.
  Loop *loopFor(const ir::BasicBlock *BB) const {
    auto It = BlockToLoop.find(BB);
    return It == BlockToLoop.end() ? nullptr : It->second;
  }

  size_t numLoops() const { return Loops.size(); }

private:
  std::vector<std::unique_ptr<Loop>> Loops;
  std::vector<Loop *> TopLevel;
  std::unordered_map<const ir::BasicBlock *, Loop *> BlockToLoop;
};

} // namespace analysis
} // namespace spf

#endif // SPF_ANALYSIS_LOOPINFO_H
