//===- analysis/Cfg.h - CFG traversal utilities -----------------*- C++ -*-===//
///
/// \file
/// Reverse-postorder computation and small CFG helpers shared by the
/// dominator and loop analyses.
///
//===----------------------------------------------------------------------===//

#ifndef SPF_ANALYSIS_CFG_H
#define SPF_ANALYSIS_CFG_H

#include "ir/Method.h"

#include <unordered_map>
#include <vector>

namespace spf {
namespace analysis {

/// Blocks of \p M reachable from the entry, in reverse postorder.
std::vector<ir::BasicBlock *> reversePostOrder(ir::Method *M);

/// Maps each block to its index in \p RPO.
std::unordered_map<const ir::BasicBlock *, unsigned>
rpoIndexMap(const std::vector<ir::BasicBlock *> &RPO);

} // namespace analysis
} // namespace spf

#endif // SPF_ANALYSIS_CFG_H
