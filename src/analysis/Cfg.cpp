//===- analysis/Cfg.cpp ---------------------------------------------------===//

#include "analysis/Cfg.h"

#include <algorithm>
#include <unordered_set>

using namespace spf;
using namespace spf::analysis;
using namespace spf::ir;

std::vector<BasicBlock *> analysis::reversePostOrder(Method *M) {
  std::vector<BasicBlock *> PostOrder;
  std::unordered_set<BasicBlock *> Visited;

  // Iterative DFS with explicit successor cursors to avoid deep recursion.
  struct Frame {
    BasicBlock *BB;
    std::vector<BasicBlock *> Succs;
    size_t Next = 0;
  };
  std::vector<Frame> Stack;

  BasicBlock *Entry = M->entry();
  if (!Entry)
    return {};
  Visited.insert(Entry);
  Stack.push_back({Entry, Entry->successors(), 0});

  while (!Stack.empty()) {
    Frame &F = Stack.back();
    if (F.Next == F.Succs.size()) {
      PostOrder.push_back(F.BB);
      Stack.pop_back();
      continue;
    }
    BasicBlock *Succ = F.Succs[F.Next++];
    if (Visited.insert(Succ).second)
      Stack.push_back({Succ, Succ->successors(), 0});
  }

  std::reverse(PostOrder.begin(), PostOrder.end());
  return PostOrder;
}

std::unordered_map<const BasicBlock *, unsigned>
analysis::rpoIndexMap(const std::vector<BasicBlock *> &RPO) {
  std::unordered_map<const BasicBlock *, unsigned> Map;
  for (unsigned I = 0, E = RPO.size(); I != E; ++I)
    Map[RPO[I]] = I;
  return Map;
}
