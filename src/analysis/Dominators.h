//===- analysis/Dominators.h - Dominator tree -------------------*- C++ -*-===//
///
/// \file
/// Dominator tree built with the Cooper-Harvey-Kennedy iterative algorithm.
/// Needed to identify natural loops (back edges target dominators).
///
//===----------------------------------------------------------------------===//

#ifndef SPF_ANALYSIS_DOMINATORS_H
#define SPF_ANALYSIS_DOMINATORS_H

#include "analysis/Cfg.h"

namespace spf {
namespace analysis {

/// Immediate-dominator information for the reachable blocks of a method.
class DominatorTree {
public:
  explicit DominatorTree(ir::Method *M);

  /// Immediate dominator of \p BB (null for the entry or unreachable
  /// blocks).
  ir::BasicBlock *idom(const ir::BasicBlock *BB) const;

  /// Returns true if \p A dominates \p B (reflexively).
  bool dominates(const ir::BasicBlock *A, const ir::BasicBlock *B) const;

  /// Returns true when \p BB is reachable from the entry.
  bool isReachable(const ir::BasicBlock *BB) const {
    return RpoIndex.count(BB) != 0;
  }

  const std::vector<ir::BasicBlock *> &rpo() const { return RPO; }

private:
  std::vector<ir::BasicBlock *> RPO;
  std::unordered_map<const ir::BasicBlock *, unsigned> RpoIndex;
  std::vector<int> Idom; // Indexed by RPO index; -1 = undefined.
};

} // namespace analysis
} // namespace spf

#endif // SPF_ANALYSIS_DOMINATORS_H
