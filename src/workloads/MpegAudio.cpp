//===- workloads/MpegAudio.cpp - The 222_mpegaudio kernel -----------------===//
///
/// \file
/// "Both algorithms slightly degraded the mpegaudio benchmark on the
/// Pentium 4. This is because the cache miss ratios and the DTLB miss
/// ratio were quite small": the polyphase filter bank's objects fit in
/// the caches, yet their 80-byte pitch is a perfectly valid inter-
/// iteration stride, so the pass dutifully emits prefetches that can only
/// cost issue slots. This workload pins the overhead side of the model.
///
//===----------------------------------------------------------------------===//

#include "workloads/KernelBuilder.h"
#include "workloads/ProgramPopulation.h"

using namespace spf;
using namespace spf::workloads;
using namespace spf::ir;

namespace {

struct MpegTypes {
  const vm::ClassDesc *Filter;
  const vm::FieldDesc *G0;
  const vm::FieldDesc *G1;
  const vm::FieldDesc *G2;
  const vm::FieldDesc *G3;
  const vm::FieldDesc *G4;
  const vm::FieldDesc *G5;
  const vm::FieldDesc *G6;
  const vm::FieldDesc *G7;
};

MpegTypes declareTypes(World &W) {
  MpegTypes T;
  auto *F = W.Types->addClass("SynthesisFilter");
  T.G0 = W.Types->addField(F, "g0", Type::F64);
  T.G1 = W.Types->addField(F, "g1", Type::F64);
  T.G2 = W.Types->addField(F, "g2", Type::F64);
  T.G3 = W.Types->addField(F, "g3", Type::F64);
  T.G4 = W.Types->addField(F, "g4", Type::F64);
  T.G5 = W.Types->addField(F, "g5", Type::F64);
  T.G6 = W.Types->addField(F, "g6", Type::F64);
  T.G7 = W.Types->addField(F, "g7", Type::F64);
  T.Filter = F; // 80 bytes: a valid stride, pointlessly prefetchable.
  return T;
}

/// synth(filters, frames, n) -> f64 bits: the filter bank applied per
/// frame; the whole bank fits in cache after the first frame.
Method *buildSynth(World &W, const MpegTypes &T) {
  Method *M = W.Module->addMethod(
      "SynthesisFilter.synth", Type::F64,
      {Type::Ref, Type::I32, Type::I32});
  IRBuilder B(*W.Module);
  B.setInsertPoint(M->addBlock("entry"));
  Value *Filters = M->arg(0);
  Value *Frames = M->arg(1);
  Value *N = M->arg(2);

  LoopNest Fr(B, "frame");
  PhiInst *F = Fr.civ(B.i32(0));
  PhiInst *Acc = Fr.addCarried(B.f64(0.0));
  Fr.beginBody(B.cmpLt(F, Frames));
  Value *Sample = B.conv(ConvInst::ConvOp::IToF, B.rem(F, B.i32(255)));

  LoopNest K(B, "tap");
  PhiInst *Ki = K.civ(B.i32(0));
  PhiInst *AccK = K.addCarried(Acc);
  K.beginBody(B.cmpLt(Ki, N));

  B.arrayLength(Filters);
  Value *Flt = B.aload(Filters, Ki, Type::Ref);
  Value *G0 = B.getField(Flt, T.G0); // 80-byte stride: emitted, useless.
  Value *G1 = B.getField(Flt, T.G1);
  Value *G2 = B.getField(Flt, T.G2);
  Value *G3 = B.getField(Flt, T.G3);
  // A windowed multiply-accumulate cascade: the polyphase synthesis does
  // on the order of a dozen flops per tap.
  Value *V0 = B.add(B.mul(G0, Sample), B.mul(G1, AccK));
  Value *V1 = B.add(B.mul(G2, V0), B.mul(G3, Sample));
  Value *V2 = B.mul(B.add(V0, V1), B.f64(0.70710678));
  Value *V3 = B.add(B.mul(V2, V2), B.mul(V1, B.f64(0.25)));
  Value *V4 = B.sub(B.mul(V3, B.f64(0.5)), B.mul(V0, B.f64(0.125)));
  Value *V = B.add(V2, B.mul(V4, B.f64(0.03125)));
  K.setNext(AccK, B.add(AccK, B.mul(V, B.f64(0.000976562))));
  K.close();

  Fr.setNext(Acc, AccK);
  Fr.close();
  B.ret(Acc);
  return M;
}

} // namespace

WorkloadSpec workloads::makeMpegAudioWorkload() {
  WorkloadSpec S;
  S.Name = "mpegaudio";
  S.Description = "MPEG Layer-3 audio decompression";
  S.CompiledFraction = 0.870; // Table 3.
  S.Build = [](const WorkloadConfig &Cfg) {
    World W(Cfg);
    MpegTypes T = declareTypes(W);
    Method *M = buildSynth(W, T);

    unsigned N = 96; // 96 x 80 B = 7.7 KB: cache-resident filter bank.
    vm::Addr Filters = W.arr(Type::Ref, N);
    for (unsigned I = 0; I != N; ++I) {
      vm::Addr F = W.obj(T.Filter);
      double G = 1.0 / (1.0 + static_cast<double>(I));
      uint64_t Bits;
      __builtin_memcpy(&Bits, &G, 8);
      W.setField(F, T.G0, Bits);
      W.setField(F, T.G1, Bits);
      W.setElem(Filters, I, F);
    }

    uint64_t Frames = static_cast<uint64_t>(4000 * Cfg.Scale);
    Frames = Frames < 16 ? 16 : Frames;
    BuiltWorkload B = W.seal(M, {Filters, Frames, N}, {Filters});
    B.CompileUnits.push_back({M, B.EntryArgs});
    // The rest of the program: the ordinary methods the JIT also
    // compiles (the Figure 11 denominator).
    addCompiledPopulation(B, 260, Cfg.Seed);
    return B;
  };
  return S;
}
