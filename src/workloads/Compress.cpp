//===- workloads/Compress.cpp - The 201_compress kernel -------------------===//
///
/// \file
/// "The benchmarks compress, javac, and Search do not contain code
/// fragments where either intra- or inter-iteration stride prefetching
/// are applicable." Compress is a modified Lempel-Ziv coder: its hot loop
/// walks a byte buffer sequentially (unit stride, far below half a cache
/// line — and already covered by hardware prefetching) and probes a hash
/// table at data-dependent indices (no stride pattern). The pass must
/// emit nothing here; the run shows the do-no-harm property.
///
//===----------------------------------------------------------------------===//

#include "workloads/KernelBuilder.h"
#include "workloads/ProgramPopulation.h"

using namespace spf;
using namespace spf::workloads;
using namespace spf::ir;

namespace {

/// compress(input, hashTab, codeTab, n) -> checksum.
Method *buildCompress(World &W) {
  Method *M = W.Module->addMethod(
      "Compressor.compress", Type::I32,
      {Type::Ref, Type::Ref, Type::Ref, Type::I32});
  IRBuilder B(*W.Module);
  B.setInsertPoint(M->addBlock("entry"));
  Value *In = M->arg(0);
  Value *HashTab = M->arg(1);
  Value *CodeTab = M->arg(2);
  Value *N = M->arg(3);
  Value *TabLen = B.arrayLength(HashTab);

  LoopNest L(B, "scan");
  PhiInst *I = L.civ(B.i32(0));
  PhiInst *Ent = L.addCarried(B.i32(0));
  PhiInst *Sum = L.addCarried(B.i32(0));
  L.beginBody(B.cmpLt(I, N));

  B.arrayLength(In);
  Value *C = B.aload(In, I, Type::I32); // Unit stride: hw-prefetch land.
  // fcode = (c << 8) ^ ent; probe the hash table at a scattered index.
  Value *FCode = B.xorOp(B.shl(C, B.i32(8)), Ent);
  Value *H = B.rem(B.andOp(B.mul(FCode, B.i32(0x9E3779B9)),
                           B.i32(0x7fffffff)),
                   TabLen);
  Value *Probe = B.aload(HashTab, H, Type::I32); // No stride pattern.
  Value *Code = B.aload(CodeTab, H, Type::I32);
  Value *Match = B.cmpEq(Probe, FCode);
  Value *EntNext = B.add(B.mul(Match, Code),
                         B.mul(B.sub(B.i32(1), Match), C));
  L.setNext(Ent, EntNext);
  L.setNext(Sum, B.add(Sum, B.xorOp(EntNext, B.shr(Sum, B.i32(3)))));
  L.close();
  B.ret(Sum);
  return M;
}

} // namespace

WorkloadSpec workloads::makeCompressWorkload() {
  WorkloadSpec S;
  S.Name = "compress";
  S.Description = "Modified Lempel-Ziv method";
  S.CompiledFraction = 0.936; // Table 3.
  S.Build = [](const WorkloadConfig &Cfg) {
    World W(Cfg);
    SplitMix64 Rng(Cfg.Seed + 5);
    Method *M = buildCompress(W);

    unsigned N = static_cast<unsigned>(400000 * Cfg.Scale);
    N = N < 256 ? 256 : N;
    vm::Addr In = W.arr(Type::I32, N);
    for (unsigned I = 0; I != N; ++I)
      W.setElem(In, I, Rng.nextBelow(256));
    unsigned TabSize = 1 << 15;
    vm::Addr HashTab = W.arr(Type::I32, TabSize);
    vm::Addr CodeTab = W.arr(Type::I32, TabSize);
    for (unsigned I = 0; I != TabSize; ++I) {
      W.setElem(HashTab, I, Rng.nextBelow(1u << 24));
      W.setElem(CodeTab, I, Rng.nextBelow(1u << 16));
    }

    BuiltWorkload B = W.seal(M, {In, HashTab, CodeTab, N},
                             {In, HashTab, CodeTab});
    B.CompileUnits.push_back({M, B.EntryArgs});
    // The rest of the program: the ordinary methods the JIT also
    // compiles (the Figure 11 denominator).
    addCompiledPopulation(B, 120, Cfg.Seed);
    return B;
  };
  return S;
}
