//===- workloads/Runner.h - Build, compile, simulate, measure ---*- C++ -*-===//
///
/// \file
/// The measurement harness shared by all benches and the end-to-end tests:
/// builds a workload, JIT-compiles its hot methods under one of the three
/// evaluated configurations (BASELINE, INTER, INTER+INTRA), executes it on
/// a simulated machine, and returns the cycle/miss/compile-time metrics
/// the paper's figures are drawn from.
///
//===----------------------------------------------------------------------===//

#ifndef SPF_WORKLOADS_RUNNER_H
#define SPF_WORKLOADS_RUNNER_H

#include "exec/Interpreter.h"
#include "jit/CompileManager.h"
#include "workloads/Workload.h"

#include <functional>

namespace spf {
namespace workloads {

/// The three configurations of Section 4.
enum class Algorithm : uint8_t {
  Baseline,   ///< No stride prefetching.
  Inter,      ///< INTER: inter-iteration stride prefetching only.
  InterIntra, ///< INTER+INTRA: the paper's full algorithm.
};

const char *algorithmName(Algorithm A);

/// One run = one workload on one machine under one algorithm.
struct RunOptions {
  sim::MachineConfig Machine = sim::MachineConfig::pentium4();
  Algorithm Algo = Algorithm::Baseline;
  WorkloadConfig Config;
  /// Optional hook to adjust the derived pass options (ablation studies:
  /// scheduling distance, guarded loads, inspection iterations, ...).
  std::function<void(core::PrefetchPassOptions &)> TunePass;
  /// Wall-clock watchdog for the simulated execution, in seconds; the run
  /// throws support::CellTimeout when exceeded. 0 disables it.
  double TimeoutSeconds = 0.0;
};

/// Everything measured in one run.
struct RunResult {
  uint64_t CompiledCycles = 0; ///< Simulated cycles in compiled code.
  uint64_t Retired = 0;        ///< Retired instructions.
  sim::MemoryStats Mem;
  exec::ExecStats Exec;
  double JitTotalUs = 0;    ///< Total JIT compilation time.
  double JitPrefetchUs = 0; ///< Prefetch pass share of it.
  core::PrefetchPassResult Prefetch;
  uint64_t ReturnValue = 0;
  bool SelfCheckOk = true; ///< Entry returned the expected value.
};

/// Derives the prefetch pass options appropriate for \p M: the planner's
/// line size is the line of the level software prefetches fill, and
/// guarded loads are used for the intra path on machines whose prefetch
/// only fills the L2 (the Pentium 4 setup of Section 4).
core::PrefetchPassOptions passOptionsFor(const sim::MachineConfig &M,
                                         core::PrefetchMode Mode);

/// Builds, compiles, and runs \p Spec under \p Opts.
RunResult runWorkload(const WorkloadSpec &Spec, const RunOptions &Opts);

/// Mixed-mode total-time model: compiled cycles plus the (configuration-
/// independent) uncompiled time derived from the baseline run and the
/// workload's Table 3 compiled-code fraction \p F.
double totalTime(uint64_t CompiledCycles, uint64_t BaselineCompiledCycles,
                 double F);

/// Speedup percentage of \p Opt over \p Base under the total-time model.
double speedupPercent(const RunResult &Base, const RunResult &Opt, double F);

/// Misses (or any event count) per retired instruction.
inline double perInstruction(uint64_t Events, uint64_t Retired) {
  return Retired ? static_cast<double>(Events) /
                       static_cast<double>(Retired)
                 : 0.0;
}

} // namespace workloads
} // namespace spf

#endif // SPF_WORKLOADS_RUNNER_H
