//===- workloads/Runner.h - Build, compile, simulate, measure ---*- C++ -*-===//
///
/// \file
/// The measurement harness shared by all benches and the end-to-end tests:
/// builds a workload, JIT-compiles its hot methods under one of the three
/// evaluated configurations (BASELINE, INTER, INTER+INTRA), executes it on
/// a simulated machine, and returns the cycle/miss/compile-time metrics
/// the paper's figures are drawn from.
///
//===----------------------------------------------------------------------===//

#ifndef SPF_WORKLOADS_RUNNER_H
#define SPF_WORKLOADS_RUNNER_H

#include "exec/Interpreter.h"
#include "jit/CompileManager.h"
#include "obs/DecisionLog.h"
#include "obs/Timeline.h"
#include "opt/Governor.h"
#include "sim/MemorySystem.h"
#include "trace/TraceBuffer.h"
#include "workloads/Workload.h"

#include <functional>

namespace spf {
namespace workloads {

/// The three configurations of Section 4.
enum class Algorithm : uint8_t {
  Baseline,   ///< No stride prefetching.
  Inter,      ///< INTER: inter-iteration stride prefetching only.
  InterIntra, ///< INTER+INTRA: the paper's full algorithm.
};

const char *algorithmName(Algorithm A);

/// One run = one workload on one machine under one algorithm.
struct RunOptions {
  sim::MachineConfig Machine = sim::MachineConfig::pentium4();
  Algorithm Algo = Algorithm::Baseline;
  WorkloadConfig Config;
  /// Optional hook to adjust the derived pass options (ablation studies:
  /// scheduling distance, guarded loads, inspection iterations, ...).
  std::function<void(core::PrefetchPassOptions &)> TunePass;
  /// Stable tag describing what TunePass does, so tuned runs can still be
  /// keyed by execution signature. A run with a TunePass but no TuneKey
  /// has no signature (executionSignature returns "") and is never
  /// trace-cached.
  std::string TuneKey;
  /// Wall-clock watchdog for the simulated execution, in seconds; the run
  /// throws support::CellTimeout when exceeded. 0 disables it.
  double TimeoutSeconds = 0.0;
  /// When set, the execution's access-event stream is recorded into this
  /// buffer (tee: the live simulation is unaffected). The caller owns the
  /// buffer and any byte cap on it.
  trace::TraceBuffer *Record = nullptr;
  /// Pre-size hint for the recording buffer, in expected encoded events
  /// (typically a previous trace of the same workload); 0 = no hint.
  uint64_t ReserveEvents = 0;

  // -- Epochs, GC perturbation, and the prefetch-health governor -----------

  /// Number of epochs: the entry method runs once per epoch, with a full
  /// collection at every epoch boundary. 1 (the default) is the classic
  /// single-shot run — no boundary GC, byte-identical to the pre-epoch
  /// runner.
  unsigned Epochs = 1;
  /// Placement policy of every collection in the run (boundary GCs and
  /// allocation-pressure GCs alike). Non-default variants perturb object
  /// order, going stale the inspection-derived stride plans.
  vm::GcVariant GcVariant = vm::GcVariant::SlidingCompact;
  /// Workload phase change: at the midpoint epoch boundary, every
  /// reference array on the heap has its element order shuffled
  /// (workloads::applyPhaseChange), so later epochs visit the same
  /// objects in a different order.
  bool PhaseChange = false;
  /// Online prefetch-health governor: per-site effectiveness tracking is
  /// enabled (sim::MemorySystem::enablePrefetchHealth — the run leaves
  /// the batched replay fast path) and opt::Governor re-decides each
  /// site at every epoch boundary. Governor-on runs are never
  /// trace-cached (executionSignature returns "").
  bool Governor = false;
  opt::GovernorConfig GovernorCfg;

  /// Timeline sampling cadence: snapshot the cycle attribution every N
  /// memory events (obs::TimelineSampler), plus one flagged sample per
  /// epoch boundary. 0 (the default) disables sampling entirely —
  /// RunResult::Timeline stays empty and the run is byte-identical to a
  /// pre-timeline run. Deliberately excluded from executionSignature:
  /// sampling observes the event stream, never shapes it.
  uint64_t TimelineEvery = 0;
};

/// Everything measured in one run.
struct RunResult {
  uint64_t CompiledCycles = 0; ///< Simulated cycles in compiled code.
  uint64_t Retired = 0;        ///< Retired instructions.
  sim::MemoryStats Mem;
  /// Exact cycle attribution; Acct.total() == CompiledCycles always.
  sim::CycleAccounting Acct;
  /// Per-load-site attribution (index = exec::SiteId).
  std::vector<sim::SiteStats> Sites;
  /// Attribution time series (RunOptions::TimelineEvery > 0 only; never
  /// empty then — the sampler always appends a final sample).
  std::vector<obs::TimelineSample> Timeline;
  /// Memory-event index of each epoch-boundary GC, recorded whenever
  /// the run records a trace or samples a timeline. Signature-determined
  /// (the event stream fixes it), so it rides with the execution side
  /// through the trace cache and lets replay re-fire boundary samples.
  std::vector<uint64_t> BoundaryEvents;
  exec::ExecStats Exec;
  double JitTotalUs = 0;    ///< Total JIT compilation time.
  double JitPrefetchUs = 0; ///< Prefetch pass share of it.
  core::PrefetchPassResult Prefetch;
  uint64_t ReturnValue = 0;
  bool SelfCheckOk = true; ///< Entry returned the expected value.
  /// Structured compile-decision events (obs/DecisionLog.h), recorded at
  /// JIT time when observability is enabled; empty otherwise. Carried
  /// with the result so `--explain` works through the trace cache, the
  /// journal, and the worker record line.
  std::vector<obs::DecisionEvent> Decisions;

  // Record-once / replay-many accounting (wall clock, not simulated):
  bool Replayed = false;   ///< Result came from a trace replay.
  double InterpretUs = 0;  ///< Time interpreting (0 when replayed).
  double ReplayUs = 0;     ///< Time replaying (0 when interpreted).

  // Epoch/governor accounting (all zero for classic single-epoch runs):
  unsigned Epochs = 1;          ///< Epochs actually executed.
  uint64_t GcCollections = 0;   ///< Collections (boundary + pressure).
  unsigned GovernorQuarantined = 0; ///< Sites quarantined at run end.
  unsigned GovernorRetunes = 0;     ///< Distance retunes applied.
  unsigned GovernorReinspections = 0; ///< Strip + re-JIT escalations.
};

/// Derives the prefetch pass options appropriate for \p M: the planner's
/// line size is the line of the level software prefetches fill, and
/// guarded loads are used for the intra path on machines whose prefetch
/// only fills the L2 (the Pentium 4 setup of Section 4).
core::PrefetchPassOptions passOptionsFor(const sim::MachineConfig &M,
                                         core::PrefetchMode Mode);

/// Builds, compiles, and runs \p Spec under \p Opts.
RunResult runWorkload(const WorkloadSpec &Spec, const RunOptions &Opts);

/// The *execution signature* of a run: everything its access-event
/// stream depends on. Two runs with equal signatures interpret the same
/// program over the same heap and emit bit-identical event streams, so
/// one recorded trace serves both. The signature deliberately includes
/// only the compile-relevant machine facets — PlannerOptions::LineBytes
/// and the prefetch-fill level (as GuardedIntraPrefetch) — because those
/// are all the planner reads from the machine; cache sizes, latencies,
/// and DTLB geometry shape timing, never the address stream. BASELINE
/// runs never invoke the planner, so their signature has no machine
/// facet at all and one baseline trace serves every machine.
/// Returns "" for runs that cannot be keyed (TunePass without TuneKey).
/// TimelineEvery never enters the signature: sampling is a pure
/// observer of the stream the signature describes.
std::string executionSignature(const WorkloadSpec &Spec,
                               const RunOptions &Opts);

/// Replays a recorded trace through a fresh MemorySystem for \p Machine
/// and grafts the timing results onto \p ExecSide (the execution-side
/// result of the run that recorded the trace: retired instructions,
/// return value, JIT stats — all signature-determined). The returned
/// MemoryStats/per-site stats/cycles are bit-identical to direct
/// interpretation on \p Machine. With \p TimelineEvery nonzero the
/// replay runs through a TimelineSampler (boundary samples re-fired
/// from ExecSide.BoundaryEvents), producing the same timeline a live
/// run with the same cadence would.
RunResult replayTrace(const RunResult &ExecSide,
                      const trace::TraceBuffer &Buf,
                      const sim::MachineConfig &Machine,
                      uint64_t TimelineEvery = 0);

/// Mixed-mode total-time model: compiled cycles plus the (configuration-
/// independent) uncompiled time derived from the baseline run and the
/// workload's Table 3 compiled-code fraction \p F.
double totalTime(uint64_t CompiledCycles, uint64_t BaselineCompiledCycles,
                 double F);

/// Speedup percentage of \p Opt over \p Base under the total-time model.
double speedupPercent(const RunResult &Base, const RunResult &Opt, double F);

/// Misses (or any event count) per retired instruction.
inline double perInstruction(uint64_t Events, uint64_t Retired) {
  return Retired ? static_cast<double>(Events) /
                       static_cast<double>(Retired)
                 : 0.0;
}

} // namespace workloads
} // namespace spf

#endif // SPF_WORKLOADS_RUNNER_H
