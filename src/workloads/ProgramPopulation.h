//===- workloads/ProgramPopulation.h - The rest of the program --*- C++ -*-===//
///
/// \file
/// Synthesizes the compiled-method population of a benchmark. SPECjvm98
/// programs JIT-compile hundreds of methods, almost all of which never
/// show up in the performance profile; Figure 11's "total JIT compilation
/// time" denominator is dominated by them. Each workload therefore adds a
/// deterministic population of ordinary methods (arithmetic, branches,
/// small counted loops — no profiled heap traffic) that are compiled but
/// not executed by the harness.
///
//===----------------------------------------------------------------------===//

#ifndef SPF_WORKLOADS_PROGRAMPOPULATION_H
#define SPF_WORKLOADS_PROGRAMPOPULATION_H

#include "workloads/KernelBuilder.h"

namespace spf {
namespace workloads {

/// Generates \p NumMethods compile-only methods into \p B 's module and
/// registers them (with no argument values, as for any method compiled
/// before its first profiled invocation) in \p B 's compile units. Call
/// after World::seal().
void addCompiledPopulation(BuiltWorkload &B, unsigned NumMethods,
                           uint64_t Seed);

/// Workload phase change: shuffles the element order of every reference
/// array on \p H (seeded Fisher-Yates per array), modeling the program
/// entering a phase that visits the same objects in a different order —
/// object addresses are untouched, but array-driven access sequences
/// (and the strides inspection derived from them) change. Termination
/// of re-run entry methods is unaffected: array iteration is counted,
/// and pointer chains keep their links. Returns the number of arrays
/// shuffled. Deterministic in \p Seed.
unsigned applyPhaseChange(vm::Heap &H, uint64_t Seed);

} // namespace workloads
} // namespace spf

#endif // SPF_WORKLOADS_PROGRAMPOPULATION_H
