//===- workloads/Javac.cpp - The 213_javac kernel -------------------------===//
///
/// \file
/// javac walks ASTs whose nodes are linked in an order unrelated to their
/// allocation order: the hot loop is a pointer chase (`n = n.next`) whose
/// address sequence carries no stride pattern, so object inspection finds
/// nothing and the pass must leave the method untouched. Compiled-code
/// fraction is low (51.9%), further damping any effect.
///
//===----------------------------------------------------------------------===//

#include "workloads/KernelBuilder.h"
#include "workloads/ProgramPopulation.h"

#include <algorithm>

using namespace spf;
using namespace spf::workloads;
using namespace spf::ir;

namespace {

struct JavacTypes {
  const vm::ClassDesc *Node;
  const vm::FieldDesc *Next; // Successor in the (shuffled) work order.
  const vm::FieldDesc *Kind;
  const vm::FieldDesc *Flags;
};

JavacTypes declareTypes(World &W) {
  JavacTypes T;
  auto *N = W.Types->addClass("TreeNode");
  T.Next = W.Types->addField(N, "next", Type::Ref);
  T.Kind = W.Types->addField(N, "kind", Type::I32);
  T.Flags = W.Types->addField(N, "flags", Type::I32);
  T.Node = N;
  return T;
}

/// attribute(head, rounds) -> checksum: chase the node list, classifying
/// each node. The recurrent load `n.next` has no stride pattern.
Method *buildAttribute(World &W, const JavacTypes &T) {
  Method *M = W.Module->addMethod("Attr.attribute", Type::I32,
                                  {Type::Ref, Type::I32});
  IRBuilder B(*W.Module);
  B.setInsertPoint(M->addBlock("entry"));
  Value *Head = M->arg(0);
  Value *Rounds = M->arg(1);

  LoopNest R(B, "round");
  PhiInst *K = R.civ(B.i32(0));
  PhiInst *Sum = R.addCarried(B.i32(0));
  R.beginBody(B.cmpLt(K, Rounds));

  LoopNest Walk(B, "walk");
  PhiInst *Cur = Walk.addCarried(Head);
  PhiInst *SumW = Walk.addCarried(Sum);
  Walk.beginBody(B.cmpNe(Cur, B.nullRef()));
  Value *Kind = B.getField(Cur, T.Kind);
  Value *Flags = B.getField(Cur, T.Flags);
  Value *Next = B.getField(Cur, T.Next); // Pointer chase, strideless.
  Walk.setNext(SumW, B.add(SumW, B.xorOp(Kind, Flags)));
  Walk.setNext(Cur, Next);
  Walk.close();

  R.setNext(Sum, SumW);
  R.close();
  B.ret(Sum);
  return M;
}

} // namespace

WorkloadSpec workloads::makeJavacWorkload() {
  WorkloadSpec S;
  S.Name = "javac";
  S.Description = "Java compiler from JDK1.0.2";
  S.CompiledFraction = 0.519; // Table 3.
  S.Build = [](const WorkloadConfig &Cfg) {
    World W(Cfg);
    JavacTypes T = declareTypes(W);
    SplitMix64 Rng(Cfg.Seed + 6);
    Method *M = buildAttribute(W, T);

    // Allocate nodes contiguously, then thread the next-list through a
    // random permutation: the chase order is unrelated to addresses.
    unsigned N = static_cast<unsigned>(30000 * Cfg.Scale);
    N = N < 64 ? 64 : N;
    std::vector<vm::Addr> Nodes(N);
    for (unsigned I = 0; I != N; ++I) {
      Nodes[I] = W.obj(T.Node);
      W.setField(Nodes[I], T.Kind, Rng.nextBelow(64));
      W.setField(Nodes[I], T.Flags, Rng.nextBelow(1u << 12));
    }
    std::vector<unsigned> Perm(N);
    for (unsigned I = 0; I != N; ++I)
      Perm[I] = I;
    for (unsigned I = N - 1; I > 0; --I)
      std::swap(Perm[I], Perm[Rng.nextBelow(I + 1)]);
    for (unsigned I = 0; I + 1 < N; ++I)
      W.setField(Nodes[Perm[I]], T.Next, Nodes[Perm[I + 1]]);
    W.setField(Nodes[Perm[N - 1]], T.Next, 0);
    vm::Addr Head = Nodes[Perm[0]];

    uint64_t Rounds = static_cast<uint64_t>(24 * Cfg.Scale);
    Rounds = Rounds < 2 ? 2 : Rounds;
    BuiltWorkload B = W.seal(M, {Head, Rounds}, {Head});
    B.CompileUnits.push_back({M, B.EntryArgs});
    // The rest of the program: the ordinary methods the JIT also
    // compiles (the Figure 11 denominator).
    addCompiledPopulation(B, 680, Cfg.Seed);
    return B;
  };
  return S;
}
