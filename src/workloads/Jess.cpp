//===- workloads/Jess.cpp - The 202_jess kernel (Figure 1) ----------------===//
///
/// \file
/// The paper's motivating example, reproduced from Figure 1:
/// `Node2.findInMemory(TokenVector tv, Token t)` — a doubly nested loop
/// whose outer loop scans a token array (large trip count) and whose inner
/// loop compares fact vectors (small trip count). The eleven loads of
/// Table 1 (L1..L11) appear explicitly, including the `arraylength` loads
/// generated for bound checks.
///
/// Properties engineered to match the paper's analysis:
///  * `Token` construction allocates the `facts` array immediately after
///    the token, giving (L9, L10) an intra-iteration stride;
///  * the token array's referents are scrambled (tokens are appended and
///    removed while 202_jess runs, and removeElement moves the last
///    element into the hole), so L9 shows no inter-iteration pattern while
///    L4 (the `v[i]` load) keeps its 8-byte stride;
///  * the inner loop's trip count (facts per token) is small;
///  * `equals` is an invocation, skipped by object inspection.
///
//===----------------------------------------------------------------------===//

#include "workloads/KernelBuilder.h"
#include "workloads/ProgramPopulation.h"

using namespace spf;
using namespace spf::workloads;
using namespace spf::ir;

namespace {

struct JessTypes {
  const vm::ClassDesc *TokenVector;
  const vm::FieldDesc *TvV;   // Token[] v
  const vm::FieldDesc *TvPtr; // int ptr

  const vm::ClassDesc *Token;
  const vm::FieldDesc *TokFacts; // ValueVector[] facts
  const vm::FieldDesc *TokSize;  // int size

  const vm::ClassDesc *ValueVector;
  const vm::FieldDesc *VvTag;
  const vm::FieldDesc *VvVal;
};

JessTypes declareTypes(World &W) {
  JessTypes T;
  auto *Tv = W.Types->addClass("TokenVector");
  T.TvV = W.Types->addField(Tv, "v", Type::Ref);
  T.TvPtr = W.Types->addField(Tv, "ptr", Type::I32);
  T.TokenVector = Tv;

  auto *Tok = W.Types->addClass("Token");
  T.TokFacts = W.Types->addField(Tok, "facts", Type::Ref);
  T.TokSize = W.Types->addField(Tok, "size", Type::I32);
  T.Token = Tok;

  auto *Vv = W.Types->addClass("ValueVector");
  T.VvTag = W.Types->addField(Vv, "tag", Type::I32);
  T.VvVal = W.Types->addField(Vv, "val", Type::I32);
  T.ValueVector = Vv;
  return T;
}

constexpr unsigned FactsPerToken = 5;

/// Allocates a Token exactly as the Figure 1 constructor would: the token,
/// then its facts array, then the fact ValueVectors — all adjacent.
vm::Addr allocToken(World &W, const JessTypes &T, SplitMix64 &Rng,
                    int32_t FactBase) {
  vm::Addr Tok = W.obj(T.Token);
  vm::Addr Facts = W.arr(Type::Ref, FactsPerToken);
  W.setField(Tok, T.TokFacts, Facts);
  W.setField(Tok, T.TokSize, FactsPerToken);
  for (unsigned J = 0; J != FactsPerToken; ++J) {
    vm::Addr Vv = W.obj(T.ValueVector);
    W.setField(Vv, T.VvTag, J);
    W.setField(Vv, T.VvVal, FactBase + static_cast<int32_t>(J) +
                                static_cast<int32_t>(Rng.nextBelow(3)));
    W.setElem(Facts, J, Vv);
  }
  return Tok;
}

/// ValueVector.equals(a, b): the virtual call the inner loop makes.
Method *buildEquals(World &W, const JessTypes &T) {
  Method *M = W.Module->addMethod("ValueVector.equals", Type::I32,
                                  {Type::Ref, Type::Ref});
  IRBuilder B(*W.Module);
  B.setInsertPoint(M->addBlock("entry"));
  Value *Va = B.getField(M->arg(0), T.VvVal);
  Value *Vb = B.getField(M->arg(1), T.VvVal);
  B.ret(B.cmpEq(Va, Vb));
  return M;
}

/// Figure 1's findInMemory with the Table 1 load numbering in comments.
Method *buildFindInMemory(World &W, const JessTypes &T, Method *Equals) {
  Method *M = W.Module->addMethod("Node2.findInMemory", Type::Ref,
                                  {Type::Ref, Type::Ref});
  M->arg(0)->setName("tv");
  M->arg(1)->setName("t");
  Module &Mod = *W.Module;
  IRBuilder B(Mod);

  BasicBlock *Entry = M->addBlock("entry");
  BasicBlock *OuterHeader = M->addBlock("TokenLoop.header");
  BasicBlock *OuterBody = M->addBlock("TokenLoop.body");
  BasicBlock *InnerHeader = M->addBlock("FactLoop.header");
  BasicBlock *InnerBody = M->addBlock("FactLoop.body");
  BasicBlock *InnerLatch = M->addBlock("FactLoop.latch");
  BasicBlock *Found = M->addBlock("found");
  BasicBlock *OuterLatch = M->addBlock("TokenLoop.latch");
  BasicBlock *NotFound = M->addBlock("notfound");

  Value *Tv = M->arg(0);
  Value *Tk = M->arg(1);

  B.setInsertPoint(Entry);
  B.jump(OuterHeader);

  // TokenLoop: for (int i = 0; i < tv.ptr; i++)
  B.setInsertPoint(OuterHeader);
  PhiInst *I = B.phi(Type::I32);
  I->setName("i");
  Value *Ptr = B.getField(Tv, T.TvPtr); // L1
  B.br(B.cmpLt(I, Ptr), OuterBody, NotFound);

  B.setInsertPoint(OuterBody);
  Value *V = B.getField(Tv, T.TvV); // L2
  B.arrayLength(V);                 // L3 (bound check)
  Value *Tmp = B.aload(V, I, Type::Ref); // L4
  Tmp->setName("tmp");
  Value *Size = B.getField(Tk, T.TokSize); // L5
  B.jump(InnerHeader);

  // FactLoop: for (int j = 0; j < t.size; j++)
  B.setInsertPoint(InnerHeader);
  PhiInst *J = B.phi(Type::I32);
  J->setName("j");
  B.br(B.cmpLt(J, Size), InnerBody, Found);

  B.setInsertPoint(InnerBody);
  Value *TFacts = B.getField(Tk, T.TokFacts); // L6
  B.arrayLength(TFacts);                      // L7
  Value *TF = B.aload(TFacts, J, Type::Ref);  // L8
  Value *TmpFacts = B.getField(Tmp, T.TokFacts); // L9
  B.arrayLength(TmpFacts);                       // L10
  Value *TmpF = B.aload(TmpFacts, J, Type::Ref); // L11
  Value *Eq = B.call(Equals, Type::I32, {TF, TmpF}, /*IsVirtual=*/true);
  // if (!t.facts[j].equals(tmp.facts[j])) continue TokenLoop;
  B.br(Eq, InnerLatch, OuterLatch);

  B.setInsertPoint(InnerLatch);
  Value *J1 = B.add(J, B.i32(1));
  B.jump(InnerHeader);

  B.setInsertPoint(Found);
  B.ret(Tmp); // All facts matched: return tmp.

  B.setInsertPoint(OuterLatch);
  Value *I1 = B.add(I, B.i32(1));
  B.jump(OuterHeader);

  B.setInsertPoint(NotFound);
  B.ret(Mod.nullRef());

  M->recomputePreds();
  I->addIncoming(Entry, Mod.intConst(Type::I32, 0));
  I->addIncoming(OuterLatch, I1);
  J->addIncoming(OuterBody, Mod.intConst(Type::I32, 0));
  J->addIncoming(InnerLatch, J1);
  return M;
}

/// addElement(tv, tok): tv.v[tv.ptr++] = tok.
Method *buildAddElement(World &W, const JessTypes &T) {
  Method *M = W.Module->addMethod("TokenVector.addElement", Type::Void,
                                  {Type::Ref, Type::Ref});
  IRBuilder B(*W.Module);
  B.setInsertPoint(M->addBlock("entry"));
  Value *Tv = M->arg(0);
  Value *Ptr = B.getField(Tv, T.TvPtr);
  Value *V = B.getField(Tv, T.TvV);
  B.astore(V, Ptr, M->arg(1));
  B.putField(Tv, T.TvPtr, B.add(Ptr, B.i32(1)));
  B.ret();
  return M;
}

/// removeAt(tv, index): moves the last element into the hole — exactly the
/// order-destroying removeElement behaviour the paper describes.
Method *buildRemoveAt(World &W, const JessTypes &T) {
  Method *M = W.Module->addMethod("TokenVector.removeAt", Type::Void,
                                  {Type::Ref, Type::I32});
  IRBuilder B(*W.Module);
  B.setInsertPoint(M->addBlock("entry"));
  Value *Tv = M->arg(0);
  Value *Idx = M->arg(1);
  Value *Ptr = B.getField(Tv, T.TvPtr);
  Value *V = B.getField(Tv, T.TvV);
  Value *Last = B.sub(Ptr, B.i32(1));
  Value *LastTok = B.aload(V, Last, Type::Ref);
  B.astore(V, Idx, LastTok);
  B.putField(Tv, T.TvPtr, Last);
  B.ret();
  return M;
}

/// JessChurn(tv, k): removeAt(tv, hash(k) % ptr) then addElement(tv,
/// new Token(...)), scattering the array's referents over time.
Method *buildChurn(World &W, const JessTypes &T, Method *Add,
                   Method *RemoveAt) {
  Method *M = W.Module->addMethod("JessChurn", Type::Void,
                                  {Type::Ref, Type::I32});
  IRBuilder B(*W.Module);
  B.setInsertPoint(M->addBlock("entry"));
  Value *Tv = M->arg(0);
  Value *K = M->arg(1);
  Value *Ptr = B.getField(Tv, T.TvPtr);
  Value *H = B.mul(K, B.i32(-1640531527)); // Knuth hash (2654435761).
  Value *H2 = B.andOp(H, B.i32(0x7fffffff));
  Value *Victim = B.rem(H2, Ptr);
  B.call(RemoveAt, Type::Void, {Tv, Victim});

  // new Token(...): token + facts array + fact vectors, matching the
  // build-time constructor's allocation order.
  Value *Tok = B.newObject(T.Token);
  Value *Facts = B.newArray(Type::Ref, B.i32(FactsPerToken));
  B.putField(Tok, T.TokFacts, Facts);
  B.putField(Tok, T.TokSize, B.i32(FactsPerToken));
  LoopNest L(B, "initfacts");
  PhiInst *J = L.civ(B.i32(0));
  L.beginBody(B.cmpLt(J, B.i32(FactsPerToken)));
  Value *Vv = B.newObject(T.ValueVector);
  B.putField(Vv, T.VvTag, J);
  B.putField(Vv, T.VvVal, B.add(B.mul(K, B.i32(7)), J));
  B.astore(Facts, J, Vv);
  L.close();
  B.call(Add, Type::Void, {Tv, Tok});
  B.ret();
  return M;
}

/// The rest of the compiled rule engine: 202_jess's hottest method (the
/// one findInMemory is inlined into) takes only ~25% of the compiled-code
/// time (Section 4.1) — the Rete network activation work modeled here
/// accounts for the remainder.
Method *buildActivationWork(World &W) {
  Method *M = W.Module->addMethod("Rete.runActivations", Type::I32,
                                  {Type::I32, Type::I32});
  IRBuilder B(*W.Module);
  B.setInsertPoint(M->addBlock("entry"));
  Value *Seed = M->arg(0);
  Value *Iters = M->arg(1);
  LoopNest L(B, "act");
  PhiInst *I = L.civ(B.i32(0));
  PhiInst *X = L.addCarried(Seed);
  L.beginBody(B.cmpLt(I, Iters));
  Value *X1 = B.add(B.mul(X, B.i32(29)), B.i32(111));
  Value *X2 = B.xorOp(X1, B.shr(X1, B.i32(9)));
  Value *X3 = B.add(X2, B.andOp(X2, B.i32(0xffff)));
  L.setNext(X, X3);
  L.close();
  B.ret(X);
  return M;
}

/// The driver: repeatedly queries findInMemory with rotating query tokens,
/// churns the token vector, and runs the (dominant) activation work.
Method *buildDriver(World &W, Method *Find, Method *Churn, Method *Act) {
  Method *M = W.Module->addMethod(
      "JessMain", Type::I32,
      /*(tv, queries[], rounds, churnEvery, actIters)*/
      {Type::Ref, Type::Ref, Type::I32, Type::I32, Type::I32});
  IRBuilder B(*W.Module);
  B.setInsertPoint(M->addBlock("entry"));
  Value *Tv = M->arg(0);
  Value *Queries = M->arg(1);
  Value *Rounds = M->arg(2);
  Value *ChurnEvery = M->arg(3);
  Value *ActIters = M->arg(4);
  Value *NQ = B.arrayLength(Queries);

  LoopNest L(B, "round");
  PhiInst *K = L.civ(B.i32(0));
  PhiInst *Hits = L.addCarried(B.i32(0));
  L.beginBody(B.cmpLt(K, Rounds));

  Value *Qi = B.rem(K, NQ);
  Value *Q = B.aload(Queries, Qi, Type::Ref);
  Value *Res = B.call(Find, Type::Ref, {Tv, Q});
  Value *Hit = B.cmpNe(Res, B.nullRef());
  L.setNext(Hits, B.add(Hits, Hit));
  B.call(Act, Type::I32, {K, ActIters});

  Value *DoChurn = B.cmpEq(B.rem(K, ChurnEvery), B.i32(0));
  BasicBlock *ChurnBB = M->addBlock("churn");
  B.br(DoChurn, ChurnBB, L.latchBlock());
  B.setInsertPoint(ChurnBB);
  B.call(Churn, Type::Void, {Tv, K});
  L.close(); // ChurnBB falls through to the latch.
  B.ret(Hits);
  return M;
}

} // namespace

WorkloadSpec workloads::makeJessWorkload() {
  WorkloadSpec S;
  S.Name = "jess";
  S.Description = "Java expert shell system";
  S.CompiledFraction = 0.703; // Table 3.
  S.Build = [](const WorkloadConfig &Cfg) {
    World W(Cfg);
    JessTypes T = declareTypes(W);
    SplitMix64 Rng(Cfg.Seed);

    Method *Equals = buildEquals(W, T);
    Method *Find = buildFindInMemory(W, T, Equals);
    Method *Add = buildAddElement(W, T);
    Method *RemoveAt = buildRemoveAt(W, T);
    Method *Churn = buildChurn(W, T, Add, RemoveAt);
    Method *Act = buildActivationWork(W);
    Method *Main = buildDriver(W, Find, Churn, Act);

    // Token memory: N tokens (capacity 2N leaves churn headroom).
    unsigned N = static_cast<unsigned>(1500 * Cfg.Scale);
    N = N < 64 ? 64 : N;
    vm::Addr TvObj = W.obj(T.TokenVector);
    vm::Addr VArr = W.arr(Type::Ref, 2 * N);
    W.setField(TvObj, T.TvV, VArr);
    W.setField(TvObj, T.TvPtr, N);
    for (unsigned I = 0; I != N; ++I)
      W.setElem(VArr, I, allocToken(W, T, Rng, static_cast<int32_t>(I)));

    // 202_jess has appended to and removed from this array long before the
    // JIT compiles findInMemory: scramble the referents (Fisher-Yates).
    for (unsigned I = N - 1; I > 0; --I) {
      unsigned J = static_cast<unsigned>(Rng.nextBelow(I + 1));
      uint64_t Tmp = W.getElem(VArr, I);
      W.setElem(VArr, I, W.getElem(VArr, J));
      W.setElem(VArr, J, Tmp);
    }

    // Query tokens, allocated after the table.
    unsigned NQ = 16;
    vm::Addr QArr = W.arr(Type::Ref, NQ);
    for (unsigned I = 0; I != NQ; ++I)
      W.setElem(QArr, I,
                allocToken(W, T, Rng, static_cast<int32_t>(7 * I + 3)));

    uint64_t Rounds = static_cast<uint64_t>(12 * Cfg.Scale);
    Rounds = Rounds < 4 ? 4 : Rounds;
    // Sized so findInMemory takes roughly a quarter of the compiled-code
    // cycles, as in the paper's profile of 202_jess.
    uint64_t ActIters = static_cast<uint64_t>(150000 * Cfg.Scale);
    ActIters = ActIters < 100 ? 100 : ActIters;
    uint64_t FirstQuery = W.getElem(QArr, 0);

    BuiltWorkload B =
        W.seal(Main, {TvObj, QArr, Rounds, 8, ActIters}, {TvObj, QArr});
    // The hot methods compile with actual first-invocation arguments.
    B.CompileUnits.push_back({Find, {TvObj, FirstQuery}});
    B.CompileUnits.push_back({Main, B.EntryArgs});
    // The rest of the program: the ordinary methods the JIT also
    // compiles (the Figure 11 denominator).
    addCompiledPopulation(B, 460, Cfg.Seed);
    return B;
  };
  return S;
}
