//===- workloads/MolDyn.cpp - JavaGrande MolDyn kernel --------------------===//
///
/// \file
/// "The main data structure of MolDyn is a one-dimensional array of
/// molecule objects that fits in the L2 cache given the problem size."
/// Both algorithms therefore achieve nothing on the Pentium 4 (whose
/// software prefetch only fills the L2, where the data already lives) but
/// small speedups on the Athlon MP (whose prefetch fills the L1; the
/// 64 KB L1 cannot hold the molecules).
///
/// Molecules are allocated consecutively (pitch 72 bytes, above half a
/// line on both machines), and the force loop's field loads carry the
/// inter-iteration stride.
///
//===----------------------------------------------------------------------===//

#include "workloads/KernelBuilder.h"
#include "workloads/ProgramPopulation.h"

using namespace spf;
using namespace spf::workloads;
using namespace spf::ir;

namespace {

struct MolTypes {
  const vm::ClassDesc *Particle;
  const vm::FieldDesc *X;
  const vm::FieldDesc *Y;
  const vm::FieldDesc *Z;
  const vm::FieldDesc *Vx;
  const vm::FieldDesc *Vy;
  const vm::FieldDesc *Vz;
  const vm::FieldDesc *Mass;
};

MolTypes declareTypes(World &W) {
  MolTypes T;
  auto *P = W.Types->addClass("Particle");
  T.X = W.Types->addField(P, "x", Type::F64);
  T.Y = W.Types->addField(P, "y", Type::F64);
  T.Z = W.Types->addField(P, "z", Type::F64);
  T.Vx = W.Types->addField(P, "vx", Type::F64);
  T.Vy = W.Types->addField(P, "vy", Type::F64);
  T.Vz = W.Types->addField(P, "vz", Type::F64);
  T.Mass = W.Types->addField(P, "mass", Type::F64);
  T.Particle = P; // 16 + 7*8 = 72 bytes.
  return T;
}

/// force(one, all, n, steps): the O(n^2) pairwise force kernel; the inner
/// loop streams over all molecules.
Method *buildForce(World &W, const MolTypes &T) {
  Method *M = W.Module->addMethod(
      "Particle.force", Type::F64,
      /*(all, n, k, steps): the first k particles gather forces from all n*/
      {Type::Ref, Type::I32, Type::I32, Type::I32});
  M->arg(0)->setName("md");
  IRBuilder B(*W.Module);
  B.setInsertPoint(M->addBlock("entry"));
  Value *All = M->arg(0);
  Value *N = M->arg(1);
  Value *K = M->arg(2);
  Value *Steps = M->arg(3);

  LoopNest Step(B, "step");
  PhiInst *S = Step.civ(B.i32(0));
  PhiInst *Acc = Step.addCarried(B.f64(0.0));
  Step.beginBody(B.cmpLt(S, Steps));

  LoopNest Outer(B, "pi");
  PhiInst *I = Outer.civ(B.i32(0));
  PhiInst *AccI = Outer.addCarried(Acc);
  Outer.beginBody(B.cmpLt(I, K));

  B.arrayLength(All);
  Value *Pi = B.aload(All, I, Type::Ref);
  Value *Xi = B.getField(Pi, T.X);
  Value *Yi = B.getField(Pi, T.Y);

  LoopNest Inner(B, "pj");
  PhiInst *J = Inner.civ(B.i32(0));
  PhiInst *AccJ = Inner.addCarried(AccI);
  Inner.beginBody(B.cmpLt(J, N));

  B.arrayLength(All);
  Value *Pj = B.aload(All, J, Type::Ref); // 8-byte stride: rejected.
  Value *Xj = B.getField(Pj, T.X);        // 72-byte stride: the anchor.
  Value *Yj = B.getField(Pj, T.Y);
  Value *Dx = B.sub(Xi, Xj);
  Value *Dy = B.sub(Yi, Yj);
  Value *R2 = B.add(B.mul(Dx, Dx), B.mul(Dy, Dy));
  // Lennard-Jones-like force evaluation: tens of flops per pair, exactly
  // why MolDyn is compute-heavy between its streaming accesses.
  Value *R2s = B.add(R2, B.f64(0.015625));
  Value *R4 = B.mul(R2s, R2s);
  Value *R6 = B.mul(R4, R2s);
  Value *R12 = B.mul(R6, R6);
  Value *T6 = B.mul(R6, B.f64(0.000244140625));
  Value *T12 = B.mul(R12, B.f64(5.9604644775390625e-08));
  Value *F = B.sub(B.mul(T12, B.f64(0.5)), T6);
  Value *Fx = B.mul(F, Dx);
  Value *Fy = B.mul(F, Dy);
  Value *Fm = B.add(B.mul(Fx, Fx), B.mul(Fy, Fy));
  // Virial and energy accumulation terms.
  Value *E6 = B.mul(T6, B.add(B.f64(1.0), B.mul(T6, B.f64(0.5))));
  Value *E12 = B.mul(T12, B.sub(B.f64(1.0), B.mul(T12, B.f64(0.25))));
  Value *Vir = B.sub(B.mul(E12, B.f64(12.0)), B.mul(E6, B.f64(6.0)));
  Value *Pot = B.add(B.mul(E12, R2s), B.mul(E6, R4));
  Value *Kin = B.mul(B.add(Fx, Fy), B.mul(Vir, B.f64(0.03125)));
  Value *Mix = B.add(B.mul(Pot, B.f64(0.0078125)), Kin);
  Value *AccNext =
      B.add(AccJ, B.add(F, B.add(B.mul(Fm, B.f64(0.0625)), Mix)));
  Inner.setNext(AccJ, AccNext);
  Inner.close();

  Outer.setNext(AccI, AccJ);
  Outer.close();

  Step.setNext(Acc, AccI);
  Step.close();
  B.ret(Acc);
  return M;
}

} // namespace

WorkloadSpec workloads::makeMolDynWorkload() {
  WorkloadSpec S;
  S.Name = "MolDyn";
  S.Description = "Molecular dynamics simulation";
  S.CompiledFraction = 0.854; // Table 3.
  S.Build = [](const WorkloadConfig &Cfg) {
    World W(Cfg);
    MolTypes T = declareTypes(W);
    SplitMix64 Rng(Cfg.Seed + 2);

    Method *Force = buildForce(W, T);

    // ~1500 molecules x 72 B = 108 KB (+12 KB array): inside the 256 KB
    // L2, well beyond the Pentium 4's 8 KB and the Athlon's 64 KB L1.
    unsigned N = static_cast<unsigned>(1500 * Cfg.Scale);
    N = N < 64 ? 64 : N;
    unsigned K = N / 5; // Gathering subset: keeps simulation time sane.
    vm::Addr All = W.arr(Type::Ref, N);
    for (unsigned I = 0; I != N; ++I) {
      vm::Addr P = W.obj(T.Particle);
      double X = static_cast<double>(Rng.nextDouble());
      uint64_t Bits;
      __builtin_memcpy(&Bits, &X, 8);
      W.setField(P, T.X, Bits);
      double Y = static_cast<double>(Rng.nextDouble());
      __builtin_memcpy(&Bits, &Y, 8);
      W.setField(P, T.Y, Bits);
      W.setElem(All, I, P);
    }

    uint64_t Steps = 2;
    BuiltWorkload B = W.seal(Force, {All, N, K, Steps}, {All});
    B.CompileUnits.push_back({Force, B.EntryArgs});
    // The rest of the program: the ordinary methods the JIT also
    // compiles (the Figure 11 denominator).
    addCompiledPopulation(B, 60, Cfg.Seed);
    return B;
  };
  return S;
}
