//===- workloads/Search.cpp - JavaGrande Search kernel --------------------===//
///
/// \file
/// Alpha-beta pruned game-tree search over a small board with a
/// transposition table probed at hash-scattered indices: no load in the
/// hot loops has a stride pattern ("compress, javac, and Search do not
/// contain code fragments where either ... stride prefetching [is]
/// applicable"). The recursion also exercises the inspector's
/// skip-invocation rule inside a loop.
///
//===----------------------------------------------------------------------===//

#include "workloads/KernelBuilder.h"
#include "workloads/ProgramPopulation.h"

using namespace spf;
using namespace spf::workloads;
using namespace spf::ir;

namespace {

/// search(board, ttab, depth, state) -> score. Recursive alpha-beta-like
/// scan: loop over moves, recurse on promising ones.
Method *buildSearch(World &W) {
  Method *M = W.Module->addMethod(
      "SearchGame.search", Type::I32,
      {Type::Ref, Type::Ref, Type::I32, Type::I32});
  IRBuilder B(*W.Module);
  BasicBlock *Entry = M->addBlock("entry");
  BasicBlock *Leaf = M->addBlock("leaf");
  BasicBlock *Body = M->addBlock("searchbody");
  B.setInsertPoint(Entry);
  Value *Board = M->arg(0);
  Value *Ttab = M->arg(1);
  Value *Depth = M->arg(2);
  Value *State = M->arg(3);
  B.br(B.cmpLe(Depth, B.i32(0)), Leaf, Body);

  B.setInsertPoint(Leaf);
  B.ret(B.andOp(State, B.i32(0xff)));

  B.setInsertPoint(Body);
  Value *Width = B.arrayLength(Board);
  Value *TtLen = B.arrayLength(Ttab);

  LoopNest Mv(B, "move");
  PhiInst *Mi = Mv.civ(B.i32(0));
  PhiInst *Best = Mv.addCarried(B.i32(-10000));
  Mv.beginBody(B.cmpLt(Mi, Width));

  Value *Cell = B.aload(Board, Mi, Type::I32); // Small board: cached.
  Value *H = B.rem(B.andOp(B.mul(B.xorOp(State, Cell), B.i32(0x45d9f3b)),
                           B.i32(0x7fffffff)),
                   TtLen);
  Value *Tt = B.aload(Ttab, H, Type::I32); // Scattered probe: no stride.

  BasicBlock *Recurse = M->addBlock("recurse");
  BasicBlock *Merge = M->addBlock("merge");
  B.br(B.cmpEq(B.andOp(Tt, B.i32(3)), B.i32(0)), Recurse, Merge);

  B.setInsertPoint(Recurse);
  Value *Sub = B.call(M, Type::I32,
                      {Board, Ttab, B.sub(Depth, B.i32(1)),
                       B.xorOp(State, Cell)},
                      /*IsVirtual=*/false);
  B.jump(Merge);

  B.setInsertPoint(Merge);
  PhiInst *Score = B.phi(Type::I32);
  Value *Gt = B.cmpGt(Score, Best);
  Value *BestNext = B.add(B.mul(Gt, Score),
                          B.mul(B.sub(B.i32(1), Gt), Best));
  Mv.setNext(Best, BestNext);
  Mv.close();
  B.ret(Best);

  M->recomputePreds();
  Score->addIncoming(Recurse, Sub);
  Score->addIncoming(Mv.bodyBlock(), Tt);
  return M;
}

} // namespace

WorkloadSpec workloads::makeSearchWorkload() {
  WorkloadSpec S;
  S.Name = "Search";
  S.Description = "Alpha-beta pruned search";
  S.CompiledFraction = 0.734; // Table 3.
  S.Build = [](const WorkloadConfig &Cfg) {
    World W(Cfg);
    SplitMix64 Rng(Cfg.Seed + 8);
    Method *M = buildSearch(W);

    vm::Addr Board = W.arr(Type::I32, 49); // 7x7 connect-4-ish board.
    for (unsigned I = 0; I != 49; ++I)
      W.setElem(Board, I, Rng.nextBelow(3));
    unsigned TtSize = 1 << 14;
    vm::Addr Ttab = W.arr(Type::I32, TtSize);
    for (unsigned I = 0; I != TtSize; ++I)
      W.setElem(Ttab, I, Rng.nextBelow(1u << 20));

    uint64_t Depth = Cfg.Scale >= 1.0 ? 4 : 3;
    BuiltWorkload B = W.seal(M, {Board, Ttab, Depth, 0x1234}, {Board, Ttab});
    B.CompileUnits.push_back({M, B.EntryArgs});
    // The rest of the program: the ordinary methods the JIT also
    // compiles (the Figure 11 denominator).
    addCompiledPopulation(B, 70, Cfg.Seed);
    return B;
  };
  return S;
}
