//===- workloads/Db.cpp - The 209_db kernel -------------------------------===//
///
/// \file
/// The paper's headline benchmark: "db spends more than 85% of its
/// execution time in a shell sort loop that reorders a number of large
/// records and frequently causes cache misses and DTLB misses. Each record
/// contains a number of Vector and String objects, and they only have
/// intra-iteration constant strides between the containing records in the
/// sorting loop."
///
/// We model the database as a large array of Record objects. A record's
/// construction allocates, adjacently: the record, its Vector, the
/// vector's element array, and a String with its value array — so the
/// chain record -> vector -> elements -> string -> value has constant
/// intra-iteration strides. The array of record references is shuffled
/// before the sort (the database was loaded and permuted long before the
/// JIT compiles the sort), so the record fields have *no* inter-iteration
/// patterns; only the index-array loads stride (by 8 bytes, below half a
/// line, so INTER emits nothing — exactly why Wu's approach achieved
/// nothing on db while INTER+INTRA shines).
///
/// The sort is a gap-descending exchange sort (comb sort, a shell-sort
/// variant whose inner loop scans ascending so the anchor stride stays
/// +8 at every gap).
///
//===----------------------------------------------------------------------===//

#include "workloads/KernelBuilder.h"
#include "workloads/ProgramPopulation.h"

#include <algorithm>

using namespace spf;
using namespace spf::workloads;
using namespace spf::ir;

namespace {

struct DbTypes {
  const vm::ClassDesc *Record;
  const vm::FieldDesc *RecVec;  // Vector items
  const vm::FieldDesc *RecId;   // long id
  const vm::FieldDesc *RecPad0; // padding: records span multiple lines
  const vm::FieldDesc *RecPad1;
  const vm::FieldDesc *RecPad2;
  const vm::FieldDesc *RecPad3;

  const vm::ClassDesc *Vector;
  const vm::FieldDesc *VecArr;  // Object[] elementData
  const vm::FieldDesc *VecSize; // int elementCount
  const vm::FieldDesc *VecPad0;
  const vm::FieldDesc *VecPad1;
  const vm::FieldDesc *VecPad2;
  const vm::FieldDesc *VecPad3;
  const vm::FieldDesc *VecPad4;

  const vm::ClassDesc *String;
  const vm::FieldDesc *StrVal;  // char[] value (modeled as i32[])
  const vm::FieldDesc *StrKey;  // int hash — the sort key
  const vm::FieldDesc *StrPad0;
  const vm::FieldDesc *StrPad1;
  const vm::FieldDesc *StrPad2;
};

DbTypes declareTypes(World &W) {
  DbTypes T;
  auto *Rec = W.Types->addClass("Record");
  T.RecVec = W.Types->addField(Rec, "items", Type::Ref);
  T.RecId = W.Types->addField(Rec, "id", Type::I64);
  T.RecPad0 = W.Types->addField(Rec, "pad0", Type::I64);
  T.RecPad1 = W.Types->addField(Rec, "pad1", Type::I64);
  T.RecPad2 = W.Types->addField(Rec, "pad2", Type::I64);
  T.RecPad3 = W.Types->addField(Rec, "pad3", Type::I64);
  T.Record = Rec; // 16 + 6*8 = 64 bytes.

  auto *Vec = W.Types->addClass("Vector");
  T.VecArr = W.Types->addField(Vec, "elementData", Type::Ref);
  T.VecSize = W.Types->addField(Vec, "elementCount", Type::I32);
  T.VecPad0 = W.Types->addField(Vec, "pad0", Type::I64);
  T.VecPad1 = W.Types->addField(Vec, "pad1", Type::I64);
  T.VecPad2 = W.Types->addField(Vec, "pad2", Type::I64);
  T.VecPad3 = W.Types->addField(Vec, "pad3", Type::I64);
  T.VecPad4 = W.Types->addField(Vec, "pad4", Type::I64);
  T.Vector = Vec; // 16 + 8 + 8(pad to align) + 5*8 = 72 -> 72 bytes.

  auto *Str = W.Types->addClass("String");
  T.StrVal = W.Types->addField(Str, "value", Type::Ref);
  T.StrKey = W.Types->addField(Str, "hash", Type::I32);
  T.StrPad0 = W.Types->addField(Str, "pad0", Type::I64);
  T.StrPad1 = W.Types->addField(Str, "pad1", Type::I64);
  T.StrPad2 = W.Types->addField(Str, "pad2", Type::I64);
  T.String = Str;
  return T;
}

constexpr unsigned ItemChars = 20;

/// Allocates one record with its entourage, all adjacent:
/// [Record][Vector][elementData][String][value chars].
vm::Addr allocRecord(World &W, const DbTypes &T, int32_t Key, int64_t Id) {
  vm::Addr Rec = W.obj(T.Record);
  vm::Addr Vec = W.obj(T.Vector);
  vm::Addr Elems = W.arr(Type::Ref, 2);
  vm::Addr Str = W.obj(T.String);
  vm::Addr Chars = W.arr(Type::I32, ItemChars);

  W.setField(Rec, T.RecVec, Vec);
  W.setField(Rec, T.RecId, static_cast<uint64_t>(Id));
  W.setField(Vec, T.VecArr, Elems);
  W.setField(Vec, T.VecSize, 1);
  W.setElem(Elems, 0, Str);
  W.setField(Str, T.StrVal, Chars);
  W.setField(Str, T.StrKey, static_cast<uint64_t>(static_cast<int64_t>(Key)));
  // ItemChars exceeds the key's 8 nibbles; mask the shift count (as the
  // hardware the JIT targets does) so chars past the key repeat its low
  // nibbles instead of shifting a 32-bit value by >= 32.
  for (unsigned C = 0; C != ItemChars; ++C)
    W.setElem(Chars, C, static_cast<uint64_t>((Key >> ((C * 4) & 31)) & 0xf));
  return Rec;
}

/// keyOf(rec): rec.items.elementData[0].hash — the pointer chase of the
/// sort comparison. Inlined into the sort loop (the JIT the paper used
/// inlines aggressively; keeping the chase in-loop is what exposes it to
/// the load dependence graph). Returns both the hash and the char array
/// for the full comparison.
struct KeyChase {
  Value *Hash;
  Value *Chars;
};

KeyChase emitKeyChase(IRBuilder &B, const DbTypes &T, Value *Rec) {
  Value *Vec = B.getField(Rec, T.RecVec);
  Value *Elems = B.getField(Vec, T.VecArr);
  B.arrayLength(Elems); // Bound check.
  Value *Str = B.aload(Elems, B.i32(0), Type::Ref);
  return {B.getField(Str, T.StrKey), B.getField(Str, T.StrVal)};
}

/// The String.compareTo-style work per comparison: walk the characters of
/// both entry names, mixing them into an order-preserving digest. Real
/// 209_db burns most of its sorting instructions exactly here (accessor
/// calls, bound checks, character compares), which is why its baseline
/// miss density is moderate despite the scattered records. Emitted as a
/// genuine (small-trip) inner loop.
Value *emitCompareWork(IRBuilder &B, Value *CharsA, Value *CharsB,
                       Value *HashA, Value *HashB) {
  Value *Init = B.sub(HashA, HashB); // Before the loop blocks.
  LoopNest Chars(B, "cmpchars");
  PhiInst *C = Chars.civ(B.i32(0));
  PhiInst *Acc = Chars.addCarried(Init);
  Chars.beginBody(B.cmpLt(C, B.i32(ItemChars)));
  Value *Ca = B.aload(CharsA, C, Type::I32);
  Value *Cb = B.aload(CharsB, C, Type::I32);
  Value *D = B.sub(Ca, Cb);
  Value *M0 = B.add(B.mul(Acc, B.i32(31)), D);
  Value *M1 = B.xorOp(M0, B.shr(M0, B.i32(7)));
  Value *M2 = B.add(M1, B.mul(D, B.i32(13)));
  Value *M3 = B.xorOp(M2, B.shl(D, B.i32(3)));
  Value *M4 = B.add(B.mul(M3, B.i32(17)), B.andOp(M2, B.i32(0xff)));
  Value *M5 = B.sub(M4, B.mul(B.andOp(D, B.i32(7)), B.i32(3)));
  Chars.setNext(Acc, M5);
  Chars.close();
  return Acc;
}

/// DbSort(arr, n): gap-descending exchange sort. Returns the number of
/// swaps (self-check: deterministic).
Method *buildSort(World &W, const DbTypes &T) {
  Method *M =
      W.Module->addMethod("Database.shell_sort", Type::I32,
                          {Type::Ref, Type::I32});
  M->arg(0)->setName("arr");
  M->arg(1)->setName("n");
  IRBuilder B(*W.Module);
  B.setInsertPoint(M->addBlock("entry"));
  Value *Arr = M->arg(0);
  Value *N = M->arg(1);

  // Outer: gap shrinks by the comb-sort factor 10/13 until it reaches 0.
  Value *InitialGap = B.div(N, B.i32(2)); // Computed in the entry block.
  LoopNest GapLoop(B, "gap");
  PhiInst *Pass = GapLoop.civ(B.i32(0));
  PhiInst *Gap = GapLoop.addCarried(InitialGap);
  PhiInst *Swaps = GapLoop.addCarried(B.i32(0));
  // Continue while gap >= 1.
  GapLoop.beginBody(B.cmpGe(Gap, B.i32(1)));
  (void)Pass;

  // Inner: for (i = 0; i + gap < n; i++) compare a[i], a[i+gap].
  Value *Limit = B.sub(N, Gap);
  LoopNest Sweep(B, "sweep");
  PhiInst *I = Sweep.civ(B.i32(0));
  PhiInst *SwapsIn = Sweep.addCarried(Swaps);
  Sweep.beginBody(B.cmpLt(I, Limit));

  B.arrayLength(Arr); // Bound check.
  Value *R1 = B.aload(Arr, I, Type::Ref); // Anchor: stride +8.
  R1->setName("r1");
  Value *Ig = B.add(I, Gap);
  Value *R2 = B.aload(Arr, Ig, Type::Ref); // Anchor: stride +8.
  R2->setName("r2");
  KeyChase K1 = emitKeyChase(B, T, R1);
  KeyChase K2 = emitKeyChase(B, T, R2);
  B.arrayLength(K1.Chars); // Bound checks.
  B.arrayLength(K2.Chars);
  Value *Cmp = emitCompareWork(B, K1.Chars, K2.Chars, K1.Hash, K2.Hash);
  // Keys are distinct, so ordering by hash alone is correct; the digest
  // feeds the condition to keep the comparison work live.
  Value *Order = B.add(B.mul(B.cmpGt(K1.Hash, K2.Hash), B.i32(2)),
                       B.cmpEq(Cmp, B.i32(0x7fffffff)));

  BasicBlock *SwapBB = M->addBlock("swap");
  BasicBlock *NoSwapBB = M->addBlock("noswap");
  BasicBlock *CompareBB = B.insertBlock(); // The char loop's exit block.
  B.br(B.cmpGe(Order, B.i32(2)), SwapBB, NoSwapBB);

  B.setInsertPoint(SwapBB);
  B.astore(Arr, I, R2);
  B.astore(Arr, Ig, R1);
  B.jump(NoSwapBB);

  B.setInsertPoint(NoSwapBB);
  PhiInst *SwInc = B.phi(Type::I32);
  // Wired below once preds exist.
  Value *SwapsNext = B.add(SwapsIn, SwInc);
  Sweep.setNext(SwapsIn, SwapsNext);
  Sweep.close();

  // Next gap: gap * 10 / 13; ensure termination at gap 1 -> 0.
  Value *GapNext = B.div(B.mul(Gap, B.i32(10)), B.i32(13));
  GapLoop.setNext(Gap, GapNext);
  GapLoop.setNext(Swaps, SwapsIn);
  GapLoop.close();
  B.ret(Swaps);

  M->recomputePreds();
  SwInc->addIncoming(SwapBB, B.i32(1));
  SwInc->addIncoming(CompareBB, B.i32(0));
  return M;
}

} // namespace

WorkloadSpec workloads::makeDbWorkload() {
  WorkloadSpec S;
  S.Name = "db";
  S.Description = "Memory resident database";
  S.CompiledFraction = 0.923; // Table 3.
  S.Build = [](const WorkloadConfig &Cfg) {
    World W(Cfg);
    DbTypes T = declareTypes(W);
    SplitMix64 Rng(Cfg.Seed + 1);

    Method *Sort = buildSort(W, T);

    unsigned N = static_cast<unsigned>(4000 * Cfg.Scale);
    N = N < 128 ? 128 : N;
    vm::Addr Arr = W.arr(Type::Ref, N);
    for (unsigned I = 0; I != N; ++I)
      W.setElem(Arr, I,
                allocRecord(W, T, static_cast<int32_t>(Rng.nextBelow(1u << 30)),
                            static_cast<int64_t>(I)));

    // The database index is permuted before the sort runs (the benchmark
    // has read, filtered, and reordered it long before the JIT compiles
    // shell_sort): Fisher-Yates over the reference array.
    for (unsigned I = N - 1; I > 0; --I) {
      unsigned J = static_cast<unsigned>(Rng.nextBelow(I + 1));
      uint64_t Tmp = W.getElem(Arr, I);
      W.setElem(Arr, I, W.getElem(Arr, J));
      W.setElem(Arr, J, Tmp);
    }

    // Oracle: mirror the sort over the keys in C++ and record the exact
    // swap count the IR must reproduce.
    std::vector<int32_t> Keys(N);
    for (unsigned I = 0; I != N; ++I) {
      vm::Addr Rec = W.getElem(Arr, I);
      vm::Addr Vec = W.getField(Rec, T.RecVec);
      vm::Addr Elems = W.getField(Vec, T.VecArr);
      vm::Addr Str = W.getElem(Elems, 0);
      Keys[I] = static_cast<int32_t>(W.getField(Str, T.StrKey));
    }
    uint64_t ExpectedSwaps = 0;
    for (int32_t Gap = static_cast<int32_t>(N) / 2; Gap >= 1;
         Gap = Gap * 10 / 13) {
      for (unsigned I = 0; I + Gap < N; ++I) {
        if (Keys[I] > Keys[I + Gap]) {
          std::swap(Keys[I], Keys[I + Gap]);
          ++ExpectedSwaps;
        }
      }
    }

    BuiltWorkload B = W.seal(Sort, {Arr, N}, {Arr});
    B.Expected = ExpectedSwaps;
    B.CompileUnits.push_back({Sort, B.EntryArgs});
    // The rest of the program: the ordinary methods the JIT also
    // compiles (the Figure 11 denominator).
    addCompiledPopulation(B, 130, Cfg.Seed);
    return B;
  };
  return S;
}
