//===- workloads/Workload.h - Benchmark kernels (Table 3) -------*- C++ -*-===//
///
/// \file
/// The 12 programs of the paper's Table 3 (SPECjvm98 and JavaGrande v2.0
/// Section 3), rebuilt as synthetic kernels in the JIT IR. Each kernel
/// reproduces the memory behaviour the paper's evaluation narrative
/// attributes to that benchmark (see DESIGN.md for the per-workload
/// mapping); each also carries the Table 3 "compiled code %" used by the
/// mixed-mode total-time model.
///
//===----------------------------------------------------------------------===//

#ifndef SPF_WORKLOADS_WORKLOAD_H
#define SPF_WORKLOADS_WORKLOAD_H

#include "ir/IRBuilder.h"
#include "vm/Heap.h"

#include <functional>
#include <memory>
#include <optional>

namespace spf {
namespace workloads {

/// Build-time knobs. Scale < 1 shrinks the problem (used by tests);
/// 1.0 is the size the benchmarks report with.
struct WorkloadConfig {
  double Scale = 1.0;
  uint64_t Seed = 0x5eed0001;
  uint64_t HeapBytes = 96ull << 20;
};

/// A method to compile and the actual argument values of its first
/// invocation (what the JIT hands to object inspection).
struct CompileUnit {
  ir::Method *M = nullptr;
  std::vector<uint64_t> Args;
};

/// A fully constructed workload: its world (types/heap/module) and the
/// entry point to execute.
struct BuiltWorkload {
  std::unique_ptr<vm::TypeTable> Types;
  std::unique_ptr<vm::Heap> Heap;
  std::unique_ptr<ir::Module> Module;

  ir::Method *Entry = nullptr;
  std::vector<uint64_t> EntryArgs;

  /// Methods the JIT compiles (with per-method first-invocation args).
  std::vector<CompileUnit> CompileUnits;

  /// GC roots (handles the simulated mutator owns).
  std::vector<vm::Addr> Roots;

  /// Self-check: expected entry return value, when deterministic.
  std::optional<uint64_t> Expected;
};

/// Descriptor of one Table 3 program.
struct WorkloadSpec {
  std::string Name;
  std::string Description;  ///< Table 3 description column.
  double CompiledFraction;  ///< Table 3 "Compiled code (%)" / 100.
  std::function<BuiltWorkload(const WorkloadConfig &)> Build;
};

/// All 12 workloads in the paper's Table 3 order.
const std::vector<WorkloadSpec> &allWorkloads();

/// Finds a workload by name, or null.
const WorkloadSpec *findWorkload(const std::string &Name);

// Individual factories (one per Table 3 row).
WorkloadSpec makeMtrtWorkload();
WorkloadSpec makeJessWorkload();
WorkloadSpec makeCompressWorkload();
WorkloadSpec makeDbWorkload();
WorkloadSpec makeMpegAudioWorkload();
WorkloadSpec makeJackWorkload();
WorkloadSpec makeJavacWorkload();
WorkloadSpec makeEulerWorkload();
WorkloadSpec makeMolDynWorkload();
WorkloadSpec makeMonteCarloWorkload();
WorkloadSpec makeRayTracerWorkload();
WorkloadSpec makeSearchWorkload();

} // namespace workloads
} // namespace spf

#endif // SPF_WORKLOADS_WORKLOAD_H
