//===- workloads/RayTracer.cpp - JavaGrande RayTracer kernel --------------===//
///
/// \file
/// The paper's RayTracer anomaly: "One of the target loops of RayTracer
/// contains an invocation of a recursive method. On the Pentium 4, stride
/// prefetching in that target loop also reduces the cache misses in the
/// other methods where prefetches are not inserted", improving the P4
/// while slightly degrading the Athlon MP.
///
/// Mechanism reproduced here:
///  * primitives have a two-line layout (96 bytes): the intersect loop
///    touches the first 64 bytes; the recursive shade() method touches
///    the second 64 bytes. The Pentium 4's L2 prefetch line (128 B) covers
///    both halves — the cross-method benefit — while the Athlon's 64 B
///    lines cover only the loop's half;
///  * shade() is an invocation inside the target loop (object inspection
///    skips it);
///  * every primitive's constructor allocates its Material right behind
///    it (intra-iteration stride 88), and the scene's reference array is
///    permuted by the builder's spatial sort — so no load has an
///    inter-iteration pattern and INTER emits nothing (matching the flat
///    INTER bars), while INTER+INTRA prefetches through the dereference
///    chain. On the Pentium 4 one 128-byte L2 line covers the primitive's
///    both halves plus its material; on the Athlon the 64-byte prefetches
///    cover only the intersect half, shade's misses remain, and the extra
///    instructions make the net effect a wash or a small loss.
///
//===----------------------------------------------------------------------===//

#include "workloads/KernelBuilder.h"
#include "workloads/ProgramPopulation.h"

using namespace spf;
using namespace spf::workloads;
using namespace spf::ir;

namespace {

struct RtTypes {
  const vm::ClassDesc *Prim;
  const vm::FieldDesc *Mat; // Material (ref) — first line.
  const vm::FieldDesc *Ox;
  const vm::FieldDesc *Oy;
  const vm::FieldDesc *R2;
  const vm::FieldDesc *Pad;
  const vm::FieldDesc *Nx; // Shading fields — second line.
  const vm::FieldDesc *Ny;
  const vm::FieldDesc *Nz;
  const vm::FieldDesc *Kd;

  const vm::ClassDesc *Material;
  const vm::FieldDesc *MR; // reflectance
  const vm::FieldDesc *MT; // transparency
};

RtTypes declareTypes(World &W) {
  RtTypes T;
  auto *P = W.Types->addClass("Primitive");
  T.Mat = W.Types->addField(P, "mat", Type::Ref); // +16
  T.Ox = W.Types->addField(P, "ox", Type::F64);   // +24
  T.Oy = W.Types->addField(P, "oy", Type::F64);   // +32
  T.R2 = W.Types->addField(P, "r2", Type::F64);   // +40
  T.Pad = W.Types->addField(P, "pad", Type::F64); // +48
  T.Nx = W.Types->addField(P, "nx", Type::F64);   // +56 (2nd 64B line)
  T.Ny = W.Types->addField(P, "ny", Type::F64);   // +64
  T.Nz = W.Types->addField(P, "nz", Type::F64);   // +72
  T.Kd = W.Types->addField(P, "kd", Type::F64);   // +80
  T.Prim = P; // 88 -> 88 bytes; pitch with material entourage varies.
  auto *M = W.Types->addClass("Material");
  T.MR = W.Types->addField(M, "refl", Type::F64);
  T.MT = W.Types->addField(M, "trans", Type::F64);
  T.Material = M; // 32 bytes.
  return T;
}

/// shade(prim, depth): recursive shading touching the primitive's second
/// cache line and its material.
Method *buildShade(World &W, const RtTypes &T) {
  Method *M = W.Module->addMethod("RayTracer.shade", Type::F64,
                                  {Type::Ref, Type::I32});
  IRBuilder B(*W.Module);
  BasicBlock *Entry = M->addBlock("entry");
  BasicBlock *Recurse = M->addBlock("recurse");
  BasicBlock *Leaf = M->addBlock("leaf");
  B.setInsertPoint(Entry);
  Value *P = M->arg(0);
  Value *Depth = M->arg(1);
  Value *Nx = B.getField(P, T.Nx); // Second-line loads.
  Value *Ny = B.getField(P, T.Ny);
  Value *Kd = B.getField(P, T.Kd);
  Value *Mat = B.getField(P, T.Mat);
  Value *Refl = B.getField(Mat, T.MR);
  // Phong-style shading arithmetic: normal dot products, attenuation,
  // specular powers — the real shade() is flop-dense.
  Value *Dot = B.add(B.mul(Nx, B.f64(0.57735)), B.mul(Ny, B.f64(0.57735)));
  Value *Dot2 = B.mul(Dot, Dot);
  Value *Spec = B.mul(Dot2, Dot2);
  Value *Spec2 = B.mul(Spec, Spec);
  Value *Att = B.div(B.f64(1.0), B.add(B.f64(1.0), B.mul(Dot2, B.f64(0.1))));
  Value *Diff = B.mul(Kd, B.mul(Dot, Att));
  Value *SpecTerm = B.mul(Refl, B.mul(Spec2, Att));
  Value *Base = B.add(B.add(B.mul(Nx, Ny), Diff), SpecTerm);
  B.br(B.cmpGt(Depth, B.i32(0)), Recurse, Leaf);

  B.setInsertPoint(Recurse);
  Value *Sub =
      B.call(M, Type::F64, {P, B.sub(Depth, B.i32(1))}, /*IsVirtual=*/false);
  B.ret(B.add(Base, B.mul(Sub, B.f64(0.5))));

  B.setInsertPoint(Leaf);
  B.ret(Base);
  return M;
}

/// render(scene, rays, n): the target loop — intersect each primitive
/// (first-line loads) and invoke the recursive shade on near hits.
Method *buildRender(World &W, const RtTypes &T, Method *Shade) {
  Method *M = W.Module->addMethod(
      "RayTracer.render", Type::I32,
      {Type::Ref, Type::I32, Type::I32});
  IRBuilder B(*W.Module);
  B.setInsertPoint(M->addBlock("entry"));
  Value *Scene = M->arg(0);
  Value *NRays = M->arg(1);
  Value *N = M->arg(2);

  LoopNest Ray(B, "ray");
  PhiInst *R = Ray.civ(B.i32(0));
  PhiInst *Hits = Ray.addCarried(B.i32(0));
  Ray.beginBody(B.cmpLt(R, NRays));
  Value *Rx = B.conv(ConvInst::ConvOp::IToF, B.rem(R, B.i32(89)));
  // Each ray tests the BSP leaves along its path: a window of the scene
  // array that drifts with the ray index. Consecutive rays overlap
  // heavily (temporal reuse), so only part of each ray's window misses.
  Value *Window = B.div(N, B.i32(2));
  Value *Start = B.rem(B.mul(R, B.i32(53)), B.sub(N, Window));

  LoopNest Obj(B, "obj");
  PhiInst *I = Obj.civ(B.i32(0));
  PhiInst *HitsI = Obj.addCarried(Hits);
  Obj.beginBody(B.cmpLt(I, Window));

  B.arrayLength(Scene);
  Value *Idx = B.add(Start, I);
  Value *Pr = B.aload(Scene, Idx, Type::Ref); // 8-byte stride.
  Value *Ox = B.getField(Pr, T.Ox);         // First-line anchor.
  Value *R2 = B.getField(Pr, T.R2);
  Value *Mat = B.getField(Pr, T.Mat); // Material: constructor-adjacent
                                      // to its primitive (intra stride).
  Value *Refl = B.getField(Mat, T.MR);
  // Full ray-primitive test: the real intersect does ~20 flops before
  // deciding whether to shade.
  Value *Dx = B.sub(Ox, Rx);
  Value *Oy = B.getField(Pr, T.Oy);
  Value *Dy = B.sub(Oy, B.mul(Rx, B.f64(0.25)));
  Value *BCoef = B.add(B.mul(Dx, B.f64(0.6)), B.mul(Dy, B.f64(0.8)));
  Value *CCoef = B.sub(B.add(B.mul(Dx, Dx), B.mul(Dy, Dy)), R2);
  Value *Disc = B.sub(B.mul(BCoef, BCoef), CCoef);
  Value *T0 = B.sub(BCoef, B.mul(Disc, B.f64(0.5)));
  Value *T1 = B.add(B.mul(T0, T0), B.mul(Disc, B.f64(0.25)));
  Value *D2 = B.mul(B.add(T1, B.mul(Disc, Disc)), Refl);
  Value *Near = B.cmpLt(D2, B.mul(R2, B.f64(40.0)));

  BasicBlock *HitBB = M->addBlock("hit");
  BasicBlock *Cont = M->addBlock("cont");
  B.br(Near, HitBB, Cont);

  B.setInsertPoint(HitBB);
  B.call(Shade, Type::F64, {Pr, B.i32(2)}); // The recursive invocation.
  B.jump(Cont);

  B.setInsertPoint(Cont);
  PhiInst *HitInc = B.phi(Type::I32);
  Value *HitsNext = B.add(HitsI, HitInc);
  Obj.setNext(HitsI, HitsNext);
  Obj.close();

  Ray.setNext(Hits, HitsI);
  Ray.close();
  B.ret(Hits);

  M->recomputePreds();
  HitInc->addIncoming(HitBB, B.i32(1));
  HitInc->addIncoming(Obj.bodyBlock(), B.i32(0));
  return M;
}

} // namespace

WorkloadSpec workloads::makeRayTracerWorkload() {
  WorkloadSpec S;
  S.Name = "RayTracer";
  S.Description = "3D ray tracer";
  S.CompiledFraction = 0.798; // Table 3.
  S.Build = [](const WorkloadConfig &Cfg) {
    World W(Cfg);
    RtTypes T = declareTypes(W);
    SplitMix64 Rng(Cfg.Seed + 4);

    Method *Shade = buildShade(W, T);
    Method *Render = buildRender(W, T, Shade);

    unsigned N = static_cast<unsigned>(1000 * Cfg.Scale);
    N = N < 64 ? 64 : N;

    vm::Addr Scene = W.arr(Type::Ref, N);
    for (unsigned I = 0; I != N; ++I) {
      vm::Addr Pr = W.obj(T.Prim);
      // The constructor allocates the material right behind the
      // primitive: the source of the intra-iteration stride.
      vm::Addr Mat = W.obj(T.Material);
      {
        double Refl = 0.6 + 0.001 * static_cast<double>(Rng.nextBelow(200));
        uint64_t Bits;
        __builtin_memcpy(&Bits, &Refl, 8);
        W.setField(Mat, T.MR, Bits);
      }
      W.setField(Pr, T.Mat, Mat);
      double Ox = static_cast<double>(Rng.nextBelow(89));
      uint64_t Bits;
      __builtin_memcpy(&Bits, &Ox, 8);
      W.setField(Pr, T.Ox, Bits);
      double R2 = 0.25 + 0.001 * static_cast<double>(Rng.nextBelow(50));
      __builtin_memcpy(&Bits, &R2, 8);
      W.setField(Pr, T.R2, Bits);
      double Nx = 0.5, Kd = 0.25;
      __builtin_memcpy(&Bits, &Nx, 8);
      W.setField(Pr, T.Nx, Bits);
      W.setField(Pr, T.Ny, Bits);
      __builtin_memcpy(&Bits, &Kd, 8);
      W.setField(Pr, T.Kd, Bits);
      W.setElem(Scene, I, Pr);
    }

    // The scene builder's spatial sort permutes the reference array: no
    // inter-iteration stride survives on the primitive loads.
    for (unsigned I = N - 1; I > 0; --I) {
      unsigned J = static_cast<unsigned>(Rng.nextBelow(I + 1));
      uint64_t Tmp = W.getElem(Scene, I);
      W.setElem(Scene, I, W.getElem(Scene, J));
      W.setElem(Scene, J, Tmp);
    }

    uint64_t NRays = static_cast<uint64_t>(160 * Cfg.Scale);
    NRays = NRays < 4 ? 4 : NRays;
    BuiltWorkload B = W.seal(Render, {Scene, NRays, N}, {Scene});
    B.CompileUnits.push_back({Render, B.EntryArgs});
    // The rest of the program: the ordinary methods the JIT also
    // compiles (the Figure 11 denominator).
    addCompiledPopulation(B, 140, Cfg.Seed);
    return B;
  };
  return S;
}
