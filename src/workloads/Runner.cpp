//===- workloads/Runner.cpp -----------------------------------------------===//

#include "workloads/Runner.h"

#include "core/PrefetchCodeGen.h"
#include "obs/Obs.h"
#include "obs/StatRegistry.h"
#include "obs/Tracer.h"
#include "trace/RecordingSink.h"
#include "workloads/ProgramPopulation.h"

#include <chrono>
#include <cstdio>
#include <cstring>
#include <optional>
#include <stdexcept>

using namespace spf;
using namespace spf::workloads;

namespace {

double elapsedUs(std::chrono::steady_clock::time_point Start) {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - Start)
      .count();
}

} // namespace

const char *workloads::algorithmName(Algorithm A) {
  switch (A) {
  case Algorithm::Baseline:
    return "BASELINE";
  case Algorithm::Inter:
    return "INTER";
  case Algorithm::InterIntra:
    return "INTER+INTRA";
  }
  return "?";
}

core::PrefetchPassOptions
workloads::passOptionsFor(const sim::MachineConfig &M,
                          core::PrefetchMode Mode) {
  core::PrefetchPassOptions Opts;
  Opts.Planner.Mode = Mode;
  Opts.Planner.ScheduleDistance = 1; // Fixed at one iteration (Section 4).
  // The relevant line is the one of the level software prefetches fill:
  // L2 on the Pentium 4 (128 B), L1 on the Athlon MP (64 B).
  Opts.Planner.LineBytes = M.swFillLineBytes();
  // "We used a load instruction guarded by a software exception check for
  //  intra-iteration stride prefetching on the Pentium 4 in order to fill
  //  a missing DTLB entry." Machines whose software prefetches do not
  //  fill the L1 (SwFillLevel > 0) take the guarded-load flavor.
  Opts.Planner.GuardedIntraPrefetch = M.SwFillLevel > 0;
  return Opts;
}

RunResult workloads::runWorkload(const WorkloadSpec &Spec,
                                 const RunOptions &Opts) {
  RunResult Result;

  obs::Span RunSpan("run-workload", "runner");
  RunSpan.note("workload", Spec.Name);
  RunSpan.note("algorithm", algorithmName(Opts.Algo));

  obs::Span BuildSpan("build-workload", "runner");
  BuiltWorkload W = Spec.Build(Opts.Config);
  BuildSpan.end();

  // JIT-compile the hot methods with their first-invocation arguments.
  // The decision log records here, at compile time, and is detached
  // before the simulated (timed) execution below — observability never
  // runs inside the timed region.
  jit::CompileManager::Options CM;
  CM.EnablePrefetch = Opts.Algo != Algorithm::Baseline;
  CM.Pass = passOptionsFor(Opts.Machine, Opts.Algo == Algorithm::Inter
                                             ? core::PrefetchMode::Inter
                                             : core::PrefetchMode::InterIntra);
  if (Opts.TunePass)
    Opts.TunePass(CM.Pass);
  jit::CompileManager Jit(*W.Heap, CM);
  obs::DecisionLog Log;
  {
    std::optional<obs::DecisionScope> Scope;
    if (obs::enabled())
      Scope.emplace(Log);
    obs::Span JitSpan("jit", "runner");
    for (const CompileUnit &CU : W.CompileUnits)
      Jit.compile(CU.M, CU.Args);
    JitSpan.end();
  }

  // Execute on the simulated machine, optionally teeing the access-event
  // stream into a trace buffer (the live simulation is unaffected, so a
  // recording run's results are direct-interpretation results).
  sim::MemorySystem Mem(Opts.Machine);
  unsigned Epochs = Opts.Epochs ? Opts.Epochs : 1;
  // The timeline sampler sits between the recorder and the machine, so
  // it sees exactly the stream a replay would. A recording multi-epoch
  // run keeps a dormant sampler (cadence too large to ever fire) purely
  // to count memory events: the boundary indices it records ride with
  // the trace and let any later replay re-fire boundary samples.
  std::optional<obs::TimelineSampler> Sampler;
  exec::AccessSink *Sink = &Mem;
  if (Opts.TimelineEvery || (Opts.Record && Epochs > 1)) {
    Sampler.emplace(Mem, Opts.TimelineEvery ? Opts.TimelineEvery
                                            : ~uint64_t(0) / 2);
    Sink = &*Sampler;
  }
  std::optional<trace::RecordingSink> Recorder;
  if (Opts.Record) {
    Opts.Record->reserveEvents(Opts.ReserveEvents);
    Recorder.emplace(*Sink, *Opts.Record);
    Sink = &*Recorder;
  }
  exec::Interpreter Interp(*W.Heap, *Sink, &W.Roots);
  if (Opts.TimeoutSeconds > 0.0)
    Interp.setDeadline(Opts.TimeoutSeconds);
  Interp.gc().setVariant(Opts.GcVariant, Opts.Config.Seed);
  if (Opts.Governor) {
    Mem.enablePrefetchHealth();
    Interp.enablePrefetchGovernance();
  }
  opt::Governor Gov(Opts.GovernorCfg);

  // Ref-typed argument slots are GC roots across epoch boundaries: entry
  // args are re-run every epoch, and compile-unit args feed governor
  // re-inspection — both must track moved referents.
  auto addRefArgRoots = [](ir::Method *M, std::vector<uint64_t> &Args,
                           std::vector<vm::Addr *> &Roots) {
    for (unsigned I = 0, E = std::min<unsigned>(M->numArgs(),
                                                static_cast<unsigned>(
                                                    Args.size()));
         I != E; ++I)
      if (M->arg(I)->type() == ir::Type::Ref)
        Roots.push_back(&Args[I]);
  };

  obs::Span SimSpan("simulate", "runner");
  SimSpan.note("workload", Spec.Name);
  auto Start = std::chrono::steady_clock::now();
  Result.ReturnValue = Interp.run(W.Entry, W.EntryArgs);
  for (unsigned E = 1; E < Epochs; ++E) {
    // -- Epoch boundary: full GC under the selected placement variant. --
    std::vector<vm::Addr *> Roots;
    for (vm::Addr &Handle : W.Roots)
      Roots.push_back(&Handle);
    addRefArgRoots(W.Entry, W.EntryArgs, Roots);
    for (CompileUnit &CU : W.CompileUnits)
      addRefArgRoots(CU.M, CU.Args, Roots);
    Interp.gc().collect(*W.Heap, Roots);
    Sink->tick(exec::GcPauseTicks); // Same pause the interpreter charges.
    if (Sampler)
      Sampler->boundary();

    if (Opts.PhaseChange && E == (Epochs + 1) / 2)
      applyPhaseChange(*W.Heap, Opts.Config.Seed);

    if (Opts.Governor) {
      // Governor re-decisions run between epochs — outside the timed
      // interpretation, like everything else that records decisions.
      std::optional<obs::DecisionScope> Scope;
      if (obs::enabled())
        Scope.emplace(Log);
      for (const opt::GovernorDecision &D :
           Gov.endEpoch(Mem.siteStats())) {
        switch (D.Action) {
        case opt::GovernorAction::Retune: {
          exec::Interpreter::PrefetchControl C;
          C.ExtraDistance = D.ExtraDistance;
          Interp.setPrefetchControl(D.Site, C);
          break;
        }
        case opt::GovernorAction::Quarantine: {
          exec::Interpreter::PrefetchControl C;
          C.Suppress = true;
          Interp.setPrefetchControl(D.Site, C);
          break;
        }
        case opt::GovernorAction::Reinspect:
          // Strip every unit's prefetch code and re-run the pipeline
          // against the *current* (post-GC) heap layout.
          for (const CompileUnit &CU : W.CompileUnits) {
            core::CodeGenStats Stripped = core::stripPrefetchCode(*CU.M);
            if (Stripped.Prefetches || Stripped.SpecLoads)
              Jit.compile(CU.M, CU.Args);
          }
          Interp.clearPrefetchControls();
          Interp.invalidateMethodInfo();
          Gov.noteReinspected(Mem.siteStats());
          break;
        case opt::GovernorAction::Keep:
          break;
        }
      }
    }
    Interp.run(W.Entry, W.EntryArgs);
  }
  Result.InterpretUs = elapsedUs(Start);
  SimSpan.end();
  if (Opts.Record)
    Opts.Record->finish();

  // JIT totals are harvested after execution: governor re-inspection
  // re-compiles mid-run and its time belongs in the Figure 11 totals.
  Result.JitTotalUs = Jit.totalJitUs();
  Result.JitPrefetchUs = Jit.prefetchUs();
  Result.Prefetch = Jit.aggregatePrefetch();
  Result.Decisions = Log.take();

  Result.CompiledCycles = Mem.cycles();
  Result.Retired = Interp.stats().Retired;
  Result.Mem = Mem.stats();
  Result.Acct = Mem.acct();
  Result.Sites = Mem.siteStats();
  if (Sampler) {
    Result.BoundaryEvents = Sampler->takeBoundaryEvents();
    if (Opts.TimelineEvery) {
      Sampler->finish();
      Result.Timeline = Sampler->takeSamples();
      obs::emitTimelineCounters(Result.Timeline,
                                std::string("timeline:") + Spec.Name);
    }
  }
  Result.Exec = Interp.stats();
  Result.Epochs = Epochs;
  Result.GcCollections = Interp.gc().collectionCount();
  Result.GovernorQuarantined = Gov.quarantinedSites();
  Result.GovernorRetunes = Gov.retunesApplied();
  Result.GovernorReinspections = Gov.reinspections();
  // Self-check uses epoch 0's return value (captured above): later
  // epochs legitimately diverge once the phase change reorders data.
  if (W.Expected)
    Result.SelfCheckOk = Result.ReturnValue == *W.Expected;

  // Stats are harvested after the timed region.
  if (obs::enabled()) {
    obs::StatRegistry &S = obs::stats();
    S.counter("spf_runs_total").inc();
    S.counter("spf_prefetches_emitted_total")
        .inc(Result.Prefetch.CodeGen.Prefetches);
    S.counter("spf_spec_loads_emitted_total")
        .inc(Result.Prefetch.CodeGen.SpecLoads);
    S.counter("spf_loops_visited_total").inc(Result.Prefetch.LoopsVisited);
    S.counter("spf_loops_degraded_total").inc(Result.Prefetch.LoopsDegraded);
    S.histogram("spf_jit_us").observe(
        static_cast<uint64_t>(Result.JitTotalUs));
    S.histogram("spf_interpret_us")
        .observe(static_cast<uint64_t>(Result.InterpretUs));
  }
  return Result;
}

std::string workloads::executionSignature(const WorkloadSpec &Spec,
                                          const RunOptions &Opts) {
  // An arbitrary pass mutation cannot be keyed: without a caller-provided
  // stable tag, runs with a TunePass are never trace-cached.
  if (Opts.TunePass && Opts.TuneKey.empty())
    return std::string();
  // Governor-on runs cannot be keyed either: the re-decisions (suppress /
  // retune / re-JIT) depend on measured per-site health, which depends on
  // the machine's timing — exactly what the signature must exclude. An
  // adaptive run must never reuse (or donate) a trace.
  if (Opts.Governor)
    return std::string();

  // Scale is hashed by bit pattern: any representable value keys exactly.
  uint64_t ScaleBits = 0;
  std::memcpy(&ScaleBits, &Opts.Config.Scale, sizeof(ScaleBits));

  char Buf[160];
  std::snprintf(Buf, sizeof(Buf),
                "|scale=%016llx|seed=%016llx|heap=%llx",
                static_cast<unsigned long long>(ScaleBits),
                static_cast<unsigned long long>(Opts.Config.Seed),
                static_cast<unsigned long long>(Opts.Config.HeapBytes));
  std::string Sig = Spec.Name + "|" + algorithmName(Opts.Algo) + Buf;

  // Only the compile-relevant machine facets enter the key (see header
  // comment), derived through passOptionsFor so the signature can never
  // drift from what codegen actually consumes: the fill level's line
  // bytes and the fill-level-derived guarded-load choice. Every other
  // MachineConfig field — level sizes and hit cycles, TLB geometry and
  // walk model, hardware-prefetcher kind/enable — shapes timing only,
  // never the compiled address stream, and must stay out of the key
  // (pinned by the signature-separation tests). BASELINE never runs the
  // planner, so its trace is machine-independent.
  if (Opts.Algo != Algorithm::Baseline) {
    core::PrefetchPassOptions P = passOptionsFor(
        Opts.Machine, Opts.Algo == Algorithm::Inter
                          ? core::PrefetchMode::Inter
                          : core::PrefetchMode::InterIntra);
    std::snprintf(Buf, sizeof(Buf), "|line=%u|guard=%d", P.Planner.LineBytes,
                  P.Planner.GuardedIntraPrefetch ? 1 : 0);
    Sig += Buf;
  }
  if (!Opts.TuneKey.empty())
    Sig += "|tune=" + Opts.TuneKey;
  // Epoch / GC-perturbation facets change the access-event stream for
  // every algorithm (boundary GCs move objects — BASELINE included), so
  // they key unconditionally; defaults add nothing, keeping classic
  // signatures (and their cached traces) untouched.
  if (Opts.Epochs > 1) {
    std::snprintf(Buf, sizeof(Buf), "|epochs=%u", Opts.Epochs);
    Sig += Buf;
  }
  if (Opts.GcVariant != vm::GcVariant::SlidingCompact)
    Sig += std::string("|gc=") + vm::gcVariantName(Opts.GcVariant);
  if (Opts.PhaseChange)
    Sig += "|phase=1";
  return Sig;
}

RunResult workloads::replayTrace(const RunResult &ExecSide,
                                 const trace::TraceBuffer &Buf,
                                 const sim::MachineConfig &Machine,
                                 uint64_t TimelineEvery) {
  RunResult Result = ExecSide;
  sim::MemorySystem Mem(Machine);
  obs::Span ReplaySpan("replay-trace", "runner");
  auto Start = std::chrono::steady_clock::now();
  bool Decoded;
  if (TimelineEvery) {
    obs::TimelineSampler Sampler(Mem, TimelineEvery);
    Sampler.setBoundaries(ExecSide.BoundaryEvents);
    Decoded = trace::replay(Buf, Sampler);
    if (Decoded) {
      Sampler.finish();
      Result.Timeline = Sampler.takeSamples();
    }
  } else {
    // The donor's timeline (if it sampled one) is its machine's, not
    // ours; without a cadence this replay produces none.
    Result.Timeline.clear();
    Decoded = trace::replay(Buf, Mem);
  }
  Result.ReplayUs = elapsedUs(Start);
  ReplaySpan.end();
  if (obs::enabled()) {
    obs::stats().counter("spf_trace_replays_total").inc();
    obs::stats().counter("spf_trace_replay_events_total").inc(Buf.events());
  }
  if (!Decoded) {
    // Cannot happen for buffers that came through the cache (spills are
    // checksummed) or were just recorded; a malformed trace here is a
    // bug, and partial stats must never masquerade as a result.
    if (obs::enabled())
      obs::stats().counter("spf_trace_decode_errors_total").inc();
    throw std::runtime_error("trace decode error during replay");
  }
  Result.InterpretUs = 0;
  Result.Replayed = true;
  Result.CompiledCycles = Mem.cycles();
  Result.Mem = Mem.stats();
  Result.Acct = Mem.acct();
  Result.Sites = Mem.siteStats();
  return Result;
}

double workloads::totalTime(uint64_t CompiledCycles,
                            uint64_t BaselineCompiledCycles, double F) {
  // Uncompiled (interpreter/runtime) time is unaffected by prefetching and
  // is sized so the baseline's compiled share matches Table 3.
  double Uncompiled =
      static_cast<double>(BaselineCompiledCycles) * (1.0 - F) / F;
  return static_cast<double>(CompiledCycles) + Uncompiled;
}

double workloads::speedupPercent(const RunResult &Base, const RunResult &Opt,
                                 double F) {
  double TBase = totalTime(Base.CompiledCycles, Base.CompiledCycles, F);
  double TOpt = totalTime(Opt.CompiledCycles, Base.CompiledCycles, F);
  return (TBase / TOpt - 1.0) * 100.0;
}
