//===- workloads/Runner.cpp -----------------------------------------------===//

#include "workloads/Runner.h"

using namespace spf;
using namespace spf::workloads;

const char *workloads::algorithmName(Algorithm A) {
  switch (A) {
  case Algorithm::Baseline:
    return "BASELINE";
  case Algorithm::Inter:
    return "INTER";
  case Algorithm::InterIntra:
    return "INTER+INTRA";
  }
  return "?";
}

core::PrefetchPassOptions
workloads::passOptionsFor(const sim::MachineConfig &M,
                          core::PrefetchMode Mode) {
  core::PrefetchPassOptions Opts;
  Opts.Planner.Mode = Mode;
  Opts.Planner.ScheduleDistance = 1; // Fixed at one iteration (Section 4).
  // The relevant line is the one of the level software prefetches fill:
  // L2 on the Pentium 4 (128 B), L1 on the Athlon MP (64 B).
  Opts.Planner.LineBytes = M.SwPrefetchFill == sim::PrefetchFillLevel::L2
                               ? M.L2.LineBytes
                               : M.L1.LineBytes;
  // "We used a load instruction guarded by a software exception check for
  //  intra-iteration stride prefetching on the Pentium 4 in order to fill
  //  a missing DTLB entry."
  Opts.Planner.GuardedIntraPrefetch =
      M.SwPrefetchFill == sim::PrefetchFillLevel::L2;
  return Opts;
}

RunResult workloads::runWorkload(const WorkloadSpec &Spec,
                                 const RunOptions &Opts) {
  RunResult Result;

  BuiltWorkload W = Spec.Build(Opts.Config);

  // JIT-compile the hot methods with their first-invocation arguments.
  jit::CompileManager::Options CM;
  CM.EnablePrefetch = Opts.Algo != Algorithm::Baseline;
  CM.Pass = passOptionsFor(Opts.Machine, Opts.Algo == Algorithm::Inter
                                             ? core::PrefetchMode::Inter
                                             : core::PrefetchMode::InterIntra);
  if (Opts.TunePass)
    Opts.TunePass(CM.Pass);
  jit::CompileManager Jit(*W.Heap, CM);
  for (const CompileUnit &CU : W.CompileUnits)
    Jit.compile(CU.M, CU.Args);

  Result.JitTotalUs = Jit.totalJitUs();
  Result.JitPrefetchUs = Jit.prefetchUs();
  Result.Prefetch = Jit.aggregatePrefetch();

  // Execute on the simulated machine.
  sim::MemorySystem Mem(Opts.Machine);
  exec::Interpreter Interp(*W.Heap, Mem, &W.Roots);
  if (Opts.TimeoutSeconds > 0.0)
    Interp.setDeadline(Opts.TimeoutSeconds);
  Result.ReturnValue = Interp.run(W.Entry, W.EntryArgs);

  Result.CompiledCycles = Mem.cycles();
  Result.Retired = Interp.stats().Retired;
  Result.Mem = Mem.stats();
  Result.Exec = Interp.stats();
  if (W.Expected)
    Result.SelfCheckOk = Result.ReturnValue == *W.Expected;
  return Result;
}

double workloads::totalTime(uint64_t CompiledCycles,
                            uint64_t BaselineCompiledCycles, double F) {
  // Uncompiled (interpreter/runtime) time is unaffected by prefetching and
  // is sized so the baseline's compiled share matches Table 3.
  double Uncompiled =
      static_cast<double>(BaselineCompiledCycles) * (1.0 - F) / F;
  return static_cast<double>(CompiledCycles) + Uncompiled;
}

double workloads::speedupPercent(const RunResult &Base, const RunResult &Opt,
                                 double F) {
  double TBase = totalTime(Base.CompiledCycles, Base.CompiledCycles, F);
  double TOpt = totalTime(Opt.CompiledCycles, Base.CompiledCycles, F);
  return (TBase / TOpt - 1.0) * 100.0;
}
