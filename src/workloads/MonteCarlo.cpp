//===- workloads/MonteCarlo.cpp - JavaGrande MonteCarlo kernel ------------===//
///
/// \file
/// MonteCarlo is dominated by scalar arithmetic over a small per-path
/// state: "the L1 cache MPIs of mpegaudio and MonteCarlo are quite small,
/// and thus prefetching is not profitable for these benchmarks". Our
/// kernel runs pseudo-random walks accumulating into a cache-resident
/// path array; the pass finds no applicable loads.
///
//===----------------------------------------------------------------------===//

#include "workloads/KernelBuilder.h"
#include "workloads/ProgramPopulation.h"

using namespace spf;
using namespace spf::workloads;
using namespace spf::ir;

namespace {

/// simulate(path, walks, steps) -> i32 checksum of final walk values.
Method *buildSimulate(World &W) {
  Method *M = W.Module->addMethod(
      "PriceStock.simulate", Type::I32,
      {Type::Ref, Type::I32, Type::I32});
  IRBuilder B(*W.Module);
  B.setInsertPoint(M->addBlock("entry"));
  Value *Path = M->arg(0);
  Value *Walks = M->arg(1);
  Value *Steps = M->arg(2);
  Value *PathLen = B.arrayLength(Path);

  LoopNest Wk(B, "walk");
  PhiInst *Wi = Wk.civ(B.i32(0));
  PhiInst *Sum = Wk.addCarried(B.i32(0));
  Wk.beginBody(B.cmpLt(Wi, Walks));

  LoopNest St(B, "step");
  PhiInst *Si = St.civ(B.i32(0));
  PhiInst *X = St.addCarried(B.i32(1));
  St.beginBody(B.cmpLt(Si, Steps));
  // LCG step plus a touch of the small path array.
  Value *X1 = B.add(B.mul(X, B.i32(1103515245)), B.i32(12345));
  Value *X2 = B.andOp(X1, B.i32(0x7fffffff));
  Value *Slot = B.rem(Si, PathLen);
  Value *Old = B.aload(Path, Slot, Type::I32);
  B.astore(Path, Slot, B.xorOp(Old, X2));
  St.setNext(X, X2);
  St.close();

  Wk.setNext(Sum, B.add(Sum, X));
  Wk.close();
  B.ret(Sum);
  return M;
}

} // namespace

WorkloadSpec workloads::makeMonteCarloWorkload() {
  WorkloadSpec S;
  S.Name = "MonteCarlo";
  S.Description = "Monte Carlo simulation";
  S.CompiledFraction = 0.480; // Table 3.
  S.Build = [](const WorkloadConfig &Cfg) {
    World W(Cfg);
    Method *M = buildSimulate(W);

    vm::Addr Path = W.arr(Type::I32, 1024); // 4 KB: cache-resident.
    uint64_t Walks = static_cast<uint64_t>(600 * Cfg.Scale);
    Walks = Walks < 8 ? 8 : Walks;
    uint64_t Steps = 1000;

    BuiltWorkload B = W.seal(M, {Path, Walks, Steps}, {Path});
    B.CompileUnits.push_back({M, B.EntryArgs});
    // The rest of the program: the ordinary methods the JIT also
    // compiles (the Figure 11 denominator).
    addCompiledPopulation(B, 120, Cfg.Seed);
    return B;
  };
  return S;
}
