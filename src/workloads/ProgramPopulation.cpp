//===- workloads/ProgramPopulation.cpp ------------------------------------===//

#include "workloads/ProgramPopulation.h"

#include "ir/Verifier.h"

using namespace spf;
using namespace spf::workloads;
using namespace spf::ir;

namespace {

/// Emits a chain of ~N arithmetic instructions over \p Seeds.
Value *emitArithChain(IRBuilder &B, SplitMix64 &Rng,
                      std::vector<Value *> &Pool, unsigned N) {
  Value *Last = Pool.back();
  for (unsigned I = 0; I != N; ++I) {
    Value *A = Pool[Rng.nextBelow(Pool.size())];
    Value *C = Pool[Rng.nextBelow(Pool.size())];
    switch (Rng.nextBelow(6)) {
    case 0: Last = B.add(A, C); break;
    case 1: Last = B.sub(A, C); break;
    case 2: Last = B.mul(A, C); break;
    case 3: Last = B.xorOp(A, C); break;
    case 4: Last = B.andOp(A, B.i32(0x7fffffff)); break;
    default:
      Last = B.shl(A, B.i32(static_cast<int32_t>(Rng.nextBelow(5)) + 1));
      break;
    }
    Pool.push_back(Last);
    if (Pool.size() > 12)
      Pool.erase(Pool.begin());
  }
  return Last;
}

/// One ordinary method: straight-line, diamond, or a small counted loop.
Method *buildPopulationMethod(Module &Mod, SplitMix64 &Rng,
                              unsigned Index) {
  Method *M = Mod.addMethod("pop.m" + std::to_string(Index),
                                  Type::I32, {Type::I32, Type::I32});
  IRBuilder B(Mod);
  B.setInsertPoint(M->addBlock("entry"));
  std::vector<Value *> Pool = {M->arg(0), M->arg(1), B.i32(17)};

  switch (Rng.nextBelow(3)) {
  case 0: { // Straight line.
    Value *R = emitArithChain(B, Rng, Pool,
                              12 + static_cast<unsigned>(Rng.nextBelow(40)));
    B.ret(R);
    break;
  }
  case 1: { // Diamond.
    Value *Pre = emitArithChain(B, Rng, Pool,
                                6 + static_cast<unsigned>(Rng.nextBelow(12)));
    BasicBlock *T = M->addBlock("t");
    BasicBlock *F = M->addBlock("f");
    BasicBlock *J = M->addBlock("join");
    B.br(B.cmpLt(Pre, B.i32(0)), T, F);
    B.setInsertPoint(T);
    Value *Vt = B.add(Pre, B.i32(3));
    B.jump(J);
    B.setInsertPoint(F);
    Value *Vf = B.sub(Pre, B.i32(5));
    B.jump(J);
    B.setInsertPoint(J);
    PhiInst *P = B.phi(Type::I32);
    Value *Post = B.mul(P, B.i32(7));
    B.ret(Post);
    M->recomputePreds();
    P->addIncoming(T, Vt);
    P->addIncoming(F, Vf);
    break;
  }
  default: { // Small counted loop (no heap loads: nothing to prefetch).
    LoopNest L(B, "k");
    PhiInst *K = L.civ(B.i32(0));
    PhiInst *Acc = L.addCarried(M->arg(0));
    L.beginBody(B.cmpLt(K, M->arg(1)));
    Value *Next = B.add(B.mul(Acc, B.i32(31)), K);
    L.setNext(Acc, B.xorOp(Next, B.shr(Next, B.i32(5))));
    L.close();
    B.ret(Acc);
    break;
  }
  }
  assert(verifyMethod(M) && "population method must verify");
  return M;
}

} // namespace

void workloads::addCompiledPopulation(BuiltWorkload &B,
                                      unsigned NumMethods, uint64_t Seed) {
  SplitMix64 Rng(Seed ^ 0x9e3779b97f4a7c15ULL);
  for (unsigned I = 0; I != NumMethods; ++I) {
    Method *M = buildPopulationMethod(*B.Module, Rng, I);
    // Compiled without argument values, like any method the JIT picks up
    // from its invocation-counter queue.
    B.CompileUnits.push_back({M, {}});
  }
}

unsigned workloads::applyPhaseChange(vm::Heap &H, uint64_t Seed) {
  SplitMix64 Rng(Seed ^ 0xa5a5a5a55a5a5a5aULL);
  unsigned Shuffled = 0;
  // Linear heap walk (free-list holes are filler I64 arrays, skipped as
  // non-Ref). This is a model-level mutation of the simulated program's
  // data, not simulated memory traffic: no cycles are charged.
  for (vm::Addr A = H.heapBase(); A < H.heapTop(); A += H.objectSize(A)) {
    if (!H.isArray(A) || H.arrayElemType(A) != ir::Type::Ref)
      continue;
    uint64_t N = H.arrayLength(A);
    if (N < 2)
      continue;
    // Only traversal-order arrays are fair game. An array with a null
    // slot is structural (a Vector's spare capacity, say): programs
    // index those positionally, and moving the null under a fixed index
    // would turn a phase change into a crash.
    bool HasNull = false;
    for (uint64_t I = 0; I != N && !HasNull; ++I)
      HasNull = H.load(H.elemAddr(A, I), ir::Type::Ref) == 0;
    if (HasNull)
      continue;
    for (uint64_t I = N - 1; I > 0; --I) {
      uint64_t J = Rng.nextBelow(I + 1);
      uint64_t Vi = H.load(H.elemAddr(A, I), ir::Type::Ref);
      uint64_t Vj = H.load(H.elemAddr(A, J), ir::Type::Ref);
      H.store(H.elemAddr(A, I), ir::Type::Ref, Vj);
      H.store(H.elemAddr(A, J), ir::Type::Ref, Vi);
    }
    ++Shuffled;
  }
  return Shuffled;
}
