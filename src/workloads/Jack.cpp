//===- workloads/Jack.cpp - The 228_jack kernel ---------------------------===//
///
/// \file
/// jack is a parser generator: its time goes to scanning token streams
/// through small state tables and chasing token objects in creation-
/// independent order. Stride prefetching finds nothing, and only 36.2% of
/// the time is in compiled code at all (the lowest in Table 3), so the
/// correct result is "no change".
///
//===----------------------------------------------------------------------===//

#include "workloads/KernelBuilder.h"
#include "workloads/ProgramPopulation.h"

#include <algorithm>

using namespace spf;
using namespace spf::workloads;
using namespace spf::ir;

namespace {

struct JackTypes {
  const vm::ClassDesc *Token;
  const vm::FieldDesc *Kind;
  const vm::FieldDesc *Link; // Next token in stream order (shuffled).
};

JackTypes declareTypes(World &W) {
  JackTypes T;
  auto *Tok = W.Types->addClass("RToken");
  T.Kind = W.Types->addField(Tok, "kind", Type::I32);
  T.Link = W.Types->addField(Tok, "link", Type::Ref);
  T.Token = Tok;
  return T;
}

/// parse(head, dfa, rounds): run the token stream through a DFA table.
Method *buildParse(World &W, const JackTypes &T) {
  Method *M = W.Module->addMethod("Jack.parse", Type::I32,
                                  {Type::Ref, Type::Ref, Type::I32});
  IRBuilder B(*W.Module);
  B.setInsertPoint(M->addBlock("entry"));
  Value *Head = M->arg(0);
  Value *Dfa = M->arg(1);
  Value *Rounds = M->arg(2);
  Value *States = B.arrayLength(Dfa);

  LoopNest R(B, "round");
  PhiInst *K = R.civ(B.i32(0));
  PhiInst *Accepted = R.addCarried(B.i32(0));
  R.beginBody(B.cmpLt(K, Rounds));

  LoopNest Scan(B, "scan");
  PhiInst *Cur = Scan.addCarried(Head);
  PhiInst *State = Scan.addCarried(B.i32(0));
  PhiInst *Acc = Scan.addCarried(Accepted);
  Scan.beginBody(B.cmpNe(Cur, B.nullRef()));
  Value *Kind = B.getField(Cur, T.Kind);
  Value *Idx = B.rem(B.add(B.mul(State, B.i32(17)), Kind), States);
  Value *NextState = B.aload(Dfa, Idx, Type::I32); // Small table.
  Value *Next = B.getField(Cur, T.Link); // Strideless chase.
  Scan.setNext(State, NextState);
  Scan.setNext(Acc, B.add(Acc, B.cmpEq(NextState, B.i32(0))));
  Scan.setNext(Cur, Next);
  Scan.close();

  R.setNext(Accepted, Acc);
  R.close();
  B.ret(Accepted);
  return M;
}

} // namespace

WorkloadSpec workloads::makeJackWorkload() {
  WorkloadSpec S;
  S.Name = "jack";
  S.Description = "Java parser generator";
  S.CompiledFraction = 0.362; // Table 3.
  S.Build = [](const WorkloadConfig &Cfg) {
    World W(Cfg);
    JackTypes T = declareTypes(W);
    SplitMix64 Rng(Cfg.Seed + 7);
    Method *M = buildParse(W, T);

    unsigned N = static_cast<unsigned>(20000 * Cfg.Scale);
    N = N < 64 ? 64 : N;
    std::vector<vm::Addr> Toks(N);
    for (unsigned I = 0; I != N; ++I) {
      Toks[I] = W.obj(T.Token);
      W.setField(Toks[I], T.Kind, Rng.nextBelow(96));
    }
    std::vector<unsigned> Perm(N);
    for (unsigned I = 0; I != N; ++I)
      Perm[I] = I;
    for (unsigned I = N - 1; I > 0; --I)
      std::swap(Perm[I], Perm[Rng.nextBelow(I + 1)]);
    for (unsigned I = 0; I + 1 < N; ++I)
      W.setField(Toks[Perm[I]], T.Link, Toks[Perm[I + 1]]);
    vm::Addr Head = Toks[Perm[0]];

    unsigned DfaSize = 512;
    vm::Addr Dfa = W.arr(Type::I32, DfaSize);
    for (unsigned I = 0; I != DfaSize; ++I)
      W.setElem(Dfa, I, Rng.nextBelow(DfaSize));

    uint64_t Rounds = static_cast<uint64_t>(18 * Cfg.Scale);
    Rounds = Rounds < 2 ? 2 : Rounds;
    BuiltWorkload B = W.seal(M, {Head, Dfa, Rounds}, {Head, Dfa});
    B.CompileUnits.push_back({M, B.EntryArgs});
    // The rest of the program: the ordinary methods the JIT also
    // compiles (the Figure 11 denominator).
    addCompiledPopulation(B, 520, Cfg.Seed);
    return B;
  };
  return S;
}
