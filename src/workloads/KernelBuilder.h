//===- workloads/KernelBuilder.h - Workload construction kit ----*- C++ -*-===//
///
/// \file
/// Shared machinery for building workloads: a World (types + heap +
/// module), heap population helpers, and LoopNest, a structured-loop
/// builder that produces the canonical header/body/latch/exit shape with
/// SSA phis.
///
//===----------------------------------------------------------------------===//

#ifndef SPF_WORKLOADS_KERNELBUILDER_H
#define SPF_WORKLOADS_KERNELBUILDER_H

#include "support/ErrorHandling.h"
#include "support/SplitMix64.h"
#include "workloads/Workload.h"

#include <string>

namespace spf {
namespace workloads {

/// The mutable world a workload is built into.
struct World {
  std::unique_ptr<vm::TypeTable> Types;
  std::unique_ptr<vm::Heap> Heap;
  std::unique_ptr<ir::Module> Module;

  explicit World(const WorkloadConfig &Cfg) {
    Types = std::make_unique<vm::TypeTable>();
    vm::Heap::Config HC;
    HC.HeapBytes = Cfg.HeapBytes;
    Heap = std::make_unique<vm::Heap>(*Types, HC);
    Module = std::make_unique<ir::Module>();
  }

  /// Allocates an instance, aborting on OOM (workload build phase).
  vm::Addr obj(const vm::ClassDesc *Cls) {
    vm::Addr A = Heap->allocObject(*Cls);
    if (!A)
      reportFatalError("workload build ran out of heap");
    return A;
  }

  /// Allocates an array, aborting on OOM.
  vm::Addr arr(ir::Type ElemTy, uint64_t N) {
    vm::Addr A = Heap->allocArray(ElemTy, N);
    if (!A)
      reportFatalError("workload build ran out of heap");
    return A;
  }

  void setField(vm::Addr Obj, const vm::FieldDesc *F, uint64_t V) {
    Heap->store(Obj + F->Offset, F->Ty, V);
  }
  uint64_t getField(vm::Addr Obj, const vm::FieldDesc *F) const {
    return Heap->load(Obj + F->Offset, F->Ty);
  }
  void setElem(vm::Addr Array, uint64_t I, uint64_t V) {
    Heap->store(Heap->elemAddr(Array, I), Heap->arrayElemType(Array), V);
  }
  uint64_t getElem(vm::Addr Array, uint64_t I) const {
    return Heap->load(Heap->elemAddr(Array, I), Heap->arrayElemType(Array));
  }

  /// Moves the world into a BuiltWorkload shell.
  BuiltWorkload seal(ir::Method *Entry, std::vector<uint64_t> EntryArgs,
                     std::vector<vm::Addr> Roots) {
    BuiltWorkload W;
    W.Types = std::move(Types);
    W.Heap = std::move(Heap);
    W.Module = std::move(Module);
    W.Entry = Entry;
    W.EntryArgs = std::move(EntryArgs);
    W.Roots = std::move(Roots);
    return W;
  }
};

/// Builds one natural loop in the canonical shape:
///
///   (current) -> header { phis; <condition code>; br cond ? body : exit }
///   body ... -> latch { civ' = civ + step; jump header }
///   exit
///
/// Usage:
///   LoopNest L(B, "i");
///   ir::PhiInst *I = L.civ(B.i32(0));        // canonical induction var
///   ... emit header code (e.g. bound loads) ...
///   L.beginBody(B.cmpLt(I, Bound));
///   ... emit body; branch to L.latchBlock() to 'continue',
///       or to L.exitBlock() to 'break' ...
///   L.close();                                // builder lands at exit
///
/// Carried-phi "next" values must dominate the latch; the canonical
/// induction variable is incremented inside the latch, so any number of
/// continue edges may enter it.
class LoopNest {
public:
  LoopNest(ir::IRBuilder &B, const std::string &Name,
           ir::Value *Step = nullptr)
      : B(B), Step(Step) {
    ir::Method *M = B.insertBlock()->parent();
    Header = M->addBlock(Name + ".header");
    Body = M->addBlock(Name + ".body");
    Latch = M->addBlock(Name + ".latch");
    Exit = M->addBlock(Name + ".exit");
    B.jump(Header);
    B.setInsertPoint(Header);
  }

  /// Canonical i32 induction variable starting at \p Init, incremented by
  /// the loop step (default 1) in the latch. Call before non-phi header
  /// code.
  ir::PhiInst *civ(ir::Value *Init) {
    assert(!Civ && "civ() called twice");
    Civ = B.phi(ir::Type::I32);
    CivInit = Init;
    return Civ;
  }

  /// Additional loop-carried value; set its next value with setNext before
  /// close().
  ir::PhiInst *addCarried(ir::Value *Init) {
    ir::PhiInst *P = B.phi(Init->type());
    Carried.push_back({P, Init, nullptr});
    return P;
  }

  void setNext(ir::PhiInst *P, ir::Value *Next) {
    for (CarriedVar &C : Carried)
      if (C.Phi == P) {
        C.Next = Next;
        return;
      }
    spf_unreachable("setNext on a phi not created by addCarried");
  }

  /// Ends the header with `br Cond ? body : exit`; positions the builder
  /// at the body.
  void beginBody(ir::Value *Cond) {
    B.br(Cond, Body, Exit);
    B.setInsertPoint(Body);
  }

  ir::BasicBlock *headerBlock() const { return Header; }
  ir::BasicBlock *bodyBlock() const { return Body; }
  ir::BasicBlock *latchBlock() const { return Latch; }
  ir::BasicBlock *exitBlock() const { return Exit; }

  /// Jumps from the current block to the latch (unless it already ends in
  /// a terminator), emits the latch (civ increment + back edge), completes
  /// all phis, and positions the builder at the exit block.
  void close() {
    if (!B.insertBlock()->terminator())
      B.jump(Latch); // Otherwise every body path already branches.
    B.setInsertPoint(Latch);
    ir::Value *CivNext = nullptr;
    if (Civ)
      CivNext = B.add(Civ, Step ? Step : B.i32(1));
    B.jump(Header);

    // Wire phis: the incoming block for the initial value is every header
    // predecessor except the latch.
    Header->parent()->recomputePreds();
    for (ir::BasicBlock *Pred : Header->predecessors()) {
      if (Pred == Latch)
        continue;
      if (Civ)
        Civ->addIncoming(Pred, CivInit);
      for (CarriedVar &C : Carried)
        C.Phi->addIncoming(Pred, C.Init);
    }
    if (Civ)
      Civ->addIncoming(Latch, CivNext);
    for (CarriedVar &C : Carried) {
      assert(C.Next && "carried phi without a next value");
      C.Phi->addIncoming(Latch, C.Next);
    }

    B.setInsertPoint(Exit);
  }

private:
  struct CarriedVar {
    ir::PhiInst *Phi;
    ir::Value *Init;
    ir::Value *Next;
  };

  ir::IRBuilder &B;
  ir::Value *Step;
  ir::BasicBlock *Header = nullptr;
  ir::BasicBlock *Body = nullptr;
  ir::BasicBlock *Latch = nullptr;
  ir::BasicBlock *Exit = nullptr;
  ir::PhiInst *Civ = nullptr;
  ir::Value *CivInit = nullptr;
  std::vector<CarriedVar> Carried;
};

} // namespace workloads
} // namespace spf

#endif // SPF_WORKLOADS_KERNELBUILDER_H
