//===- workloads/Workload.cpp ---------------------------------------------===//

#include "workloads/Workload.h"

using namespace spf;
using namespace spf::workloads;

const std::vector<WorkloadSpec> &workloads::allWorkloads() {
  static const std::vector<WorkloadSpec> Specs = {
      makeMtrtWorkload(),      makeJessWorkload(),
      makeCompressWorkload(),  makeDbWorkload(),
      makeMpegAudioWorkload(), makeJackWorkload(),
      makeJavacWorkload(),     makeEulerWorkload(),
      makeMolDynWorkload(),    makeMonteCarloWorkload(),
      makeRayTracerWorkload(), makeSearchWorkload(),
  };
  return Specs;
}

const WorkloadSpec *workloads::findWorkload(const std::string &Name) {
  for (const WorkloadSpec &S : allWorkloads())
    if (S.Name == Name)
      return &S;
  return nullptr;
}
