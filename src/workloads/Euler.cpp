//===- workloads/Euler.cpp - JavaGrande Euler (CFD) kernel ----------------===//
///
/// \file
/// "The benchmark Euler has inter-iteration constant strides in its main
/// data structures, large two-dimensional arrays of vectors" — and both
/// INTER and INTER+INTRA achieve similar, large speedups on it.
///
/// We model the structured CFD grid as a 2-D array of Statevector objects
/// allocated row-major (`new Statevector[m][n]` filled in initialization,
/// never reordered). The flux sweep traverses a *column* per inner loop:
/// the statevector field loads then stride by exactly one row of objects,
/// a large constant — the clean inter-iteration pattern. The statevector
/// reference loads themselves stride by 8 bytes, below half a line, so
/// they are (correctly) not prefetched.
///
//===----------------------------------------------------------------------===//

#include "workloads/KernelBuilder.h"
#include "workloads/ProgramPopulation.h"

using namespace spf;
using namespace spf::workloads;
using namespace spf::ir;

namespace {

struct EulerTypes {
  const vm::ClassDesc *Statevector;
  const vm::FieldDesc *A; // density
  const vm::FieldDesc *B; // momentum x
  const vm::FieldDesc *C; // momentum y
  const vm::FieldDesc *D; // energy
  const vm::FieldDesc *E;
  const vm::FieldDesc *F;
  const vm::FieldDesc *G;
  const vm::FieldDesc *H;
};

EulerTypes declareTypes(World &W) {
  EulerTypes T;
  auto *Sv = W.Types->addClass("Statevector");
  T.A = W.Types->addField(Sv, "a", Type::F64);
  T.B = W.Types->addField(Sv, "b", Type::F64);
  T.C = W.Types->addField(Sv, "c", Type::F64);
  T.D = W.Types->addField(Sv, "d", Type::F64);
  T.E = W.Types->addField(Sv, "e", Type::F64);
  T.F = W.Types->addField(Sv, "f", Type::F64);
  T.G = W.Types->addField(Sv, "g", Type::F64);
  T.H = W.Types->addField(Sv, "h", Type::F64);
  T.Statevector = Sv; // 16 + 8*8 = 80 bytes: pitch > half of both lines.
  return T;
}

/// EulerSweep(g, rows, cols, iters) -> f64 bits accumulated.
/// Row-major residual sweep: for iter, for i (row), for j (col):
/// sv = g[i][j]; acc += flux(sv). The statevectors of one row are
/// contiguous (allocated by the initialization in this exact order), so
/// the field loads `sv.a` etc. have an inter-iteration stride of exactly
/// sizeof(Statevector) = 80 bytes — larger than half a cache line on both
/// machines, the textbook INTER case.
Method *buildSweep(World &W, const EulerTypes &T) {
  Method *M = W.Module->addMethod(
      "Tunnel.calculateR", Type::F64,
      {Type::Ref, Type::I32, Type::I32, Type::I32});
  M->arg(0)->setName("g");
  IRBuilder B(*W.Module);
  B.setInsertPoint(M->addBlock("entry"));
  Value *G = M->arg(0);
  Value *Rows = M->arg(1);
  Value *Cols = M->arg(2);
  Value *Iters = M->arg(3);

  LoopNest It(B, "iter");
  PhiInst *K = It.civ(B.i32(0));
  PhiInst *Acc = It.addCarried(B.f64(0.0));
  It.beginBody(B.cmpLt(K, Iters));

  LoopNest Row(B, "row");
  PhiInst *I = Row.civ(B.i32(0));
  PhiInst *AccI = Row.addCarried(Acc);
  Row.beginBody(B.cmpLt(I, Rows));

  B.arrayLength(G); // Bound check.
  Value *RowArr = B.aload(G, I, Type::Ref);
  RowArr->setName("row");

  LoopNest Col(B, "col");
  PhiInst *J = Col.civ(B.i32(0));
  PhiInst *AccJ = Col.addCarried(AccI);
  Col.beginBody(B.cmpLt(J, Cols));

  B.arrayLength(RowArr); // Bound check.
  Value *Sv = B.aload(RowArr, J, Type::Ref); // 8-byte stride: rejected by
                                             // profitability condition 3.
  Sv->setName("sv");
  // The strided loads: consecutive statevector objects are 80 bytes apart.
  Value *Fa = B.getField(Sv, T.A);
  Value *Fb = B.getField(Sv, T.B);
  Value *Fc = B.getField(Sv, T.C);
  Value *Fd = B.getField(Sv, T.D);
  // A flux-like computation: enough arithmetic per element that the loop
  // is not purely memory-bound (Euler performs dozens of flops per cell).
  Value *P1 = B.mul(Fa, Fb);
  Value *P2 = B.mul(Fc, Fd);
  Value *P3 = B.add(P1, P2);
  Value *P4 = B.mul(P3, Fb);
  Value *P5 = B.add(P4, Fa);
  Value *P6 = B.mul(P5, Fc);
  Value *P7 = B.add(P6, P3);
  Value *AccNext = B.add(AccJ, P7);
  Col.setNext(AccJ, AccNext);
  Col.close();

  Row.setNext(AccI, AccJ);
  Row.close();

  It.setNext(Acc, AccI);
  It.close();
  B.ret(Acc);
  return M;
}

} // namespace

WorkloadSpec workloads::makeEulerWorkload() {
  WorkloadSpec S;
  S.Name = "Euler";
  S.Description = "Computational fluid dynamics";
  S.CompiledFraction = 0.795; // Table 3.
  S.Build = [](const WorkloadConfig &Cfg) {
    World W(Cfg);
    EulerTypes T = declareTypes(W);

    Method *Sweep = buildSweep(W, T);

    // Grid: rows x cols statevectors, row-major allocation. 96 x 512 x
    // 80 B ~ 3.9 MB >> L2.
    unsigned Rows = static_cast<unsigned>(96 * Cfg.Scale);
    Rows = Rows < 8 ? 8 : Rows;
    unsigned Cols = static_cast<unsigned>(512 * Cfg.Scale);
    Cols = Cols < 16 ? 16 : Cols;

    vm::Addr G = W.arr(Type::Ref, Rows);
    double Val = 1.0;
    for (unsigned I = 0; I != Rows; ++I) {
      vm::Addr RowArr = W.arr(Type::Ref, Cols);
      W.setElem(G, I, RowArr);
    }
    // Statevectors allocated after the row arrays, row-major and
    // contiguous: g[i][j] and g[i][j+1] are exactly 80 bytes apart, the
    // inter-iteration stride the sweep's field loads exhibit.
    for (unsigned I = 0; I != Rows; ++I) {
      vm::Addr RowArr = W.getElem(G, I);
      for (unsigned J = 0; J != Cols; ++J) {
        vm::Addr Sv = W.obj(T.Statevector);
        uint64_t Bits;
        double D0 = Val;
        Val = Val * 1.000001 + 0.25;
        __builtin_memcpy(&Bits, &D0, 8);
        W.setField(Sv, T.A, Bits);
        double D1 = 0.5;
        __builtin_memcpy(&Bits, &D1, 8);
        W.setField(Sv, T.B, Bits);
        double D2 = 0.125;
        __builtin_memcpy(&Bits, &D2, 8);
        W.setField(Sv, T.C, Bits);
        W.setElem(RowArr, J, Sv);
      }
    }

    uint64_t Iters = 4;

    BuiltWorkload B = W.seal(Sweep, {G, Rows, Cols, Iters}, {G});
    B.CompileUnits.push_back({Sweep, B.EntryArgs});
    // The rest of the program: the ordinary methods the JIT also
    // compiles (the Figure 11 denominator).
    addCompiledPopulation(B, 90, Cfg.Seed);
    return B;
  };
  return S;
}
