//===- workloads/Mtrt.cpp - The 227_mtrt kernel ---------------------------===//
///
/// \file
/// SPECjvm98 mtrt: "two threaded ray tracing" (modeled single-threaded;
/// the paper's metrics are per-instruction and per-run). The kernel is the
/// intersect-all loop: for every ray, scan the scene's object array and
/// intersect. Scene primitives are allocated consecutively (pitch 48 B:
/// above half an Athlon line, *below* half a Pentium 4 L2 line, so the
/// planner emits on the Athlon only — matching the small-to-absent mtrt
/// bars in Figures 6/7) and the scene is larger than the L2, giving the
/// modest L2 MPI reduction of Figure 9.
///
//===----------------------------------------------------------------------===//

#include "workloads/KernelBuilder.h"
#include "workloads/ProgramPopulation.h"

using namespace spf;
using namespace spf::workloads;
using namespace spf::ir;

namespace {

struct MtrtTypes {
  const vm::ClassDesc *Sphere;
  const vm::FieldDesc *Ox;
  const vm::FieldDesc *Oy;
  const vm::FieldDesc *Oz;
  const vm::FieldDesc *R2;
};

MtrtTypes declareTypes(World &W) {
  MtrtTypes T;
  auto *Sp = W.Types->addClass("SphereObj");
  T.Ox = W.Types->addField(Sp, "ox", Type::F64);
  T.Oy = W.Types->addField(Sp, "oy", Type::F64);
  T.Oz = W.Types->addField(Sp, "oz", Type::F64);
  T.R2 = W.Types->addField(Sp, "r2", Type::F64);
  W.Types->addField(Sp, "kd", Type::F64);
  W.Types->addField(Sp, "ks", Type::F64);
  W.Types->addField(Sp, "pad", Type::F64);
  T.Sphere = Sp; // 16 + 56 = 72 bytes: above half a line on both machines.
  return T;
}

/// intersectAll(scene, rays, n): for each ray, find the nearest-hit index
/// over the whole scene array. Returns a checksum of hit counts.
Method *buildIntersect(World &W, const MtrtTypes &T) {
  Method *M = W.Module->addMethod(
      "Scene.intersectAll", Type::I32,
      {Type::Ref, Type::I32, Type::I32});
  IRBuilder B(*W.Module);
  B.setInsertPoint(M->addBlock("entry"));
  Value *Scene = M->arg(0);
  Value *NRays = M->arg(1);
  Value *N = M->arg(2);

  LoopNest Ray(B, "ray");
  PhiInst *R = Ray.civ(B.i32(0));
  PhiInst *Hits = Ray.addCarried(B.i32(0));
  Ray.beginBody(B.cmpLt(R, NRays));

  // Ray origin varies per ray.
  Value *Rx = B.conv(ConvInst::ConvOp::IToF, B.rem(R, B.i32(97)));

  LoopNest Obj(B, "obj");
  PhiInst *I = Obj.civ(B.i32(0));
  PhiInst *HitsI = Obj.addCarried(Hits);
  Obj.beginBody(B.cmpLt(I, N));

  B.arrayLength(Scene);
  Value *Sp = B.aload(Scene, I, Type::Ref);
  Value *Ox = B.getField(Sp, T.Ox); // 72-byte stride anchor.
  Value *Oy = B.getField(Sp, T.Oy);
  Value *R2 = B.getField(Sp, T.R2);
  // Ray-sphere intersection: origin delta, b/c coefficients, and the
  // discriminant — the flops the real intersect() performs per object.
  Value *Dx = B.sub(Ox, Rx);
  Value *Dy = B.sub(Oy, B.mul(Rx, B.f64(0.5)));
  Value *BCoef = B.add(B.mul(Dx, B.f64(0.6)), B.mul(Dy, B.f64(0.8)));
  Value *CCoef = B.sub(B.add(B.mul(Dx, Dx), B.mul(Dy, Dy)), R2);
  Value *Disc = B.sub(B.mul(BCoef, BCoef), CCoef);
  Value *T0 = B.sub(BCoef, B.mul(Disc, B.f64(0.5)));
  Value *T1 = B.add(B.mul(T0, T0), B.mul(Disc, B.f64(0.25)));
  Value *Hit = B.mul(B.cmpGt(Disc, B.f64(0.0)),
                     B.cmpLt(T1, B.mul(R2, B.f64(64.0))));
  Value *HitsNext = B.add(HitsI, Hit);
  Obj.setNext(HitsI, HitsNext);
  Obj.close();

  Ray.setNext(Hits, HitsI);
  Ray.close();
  B.ret(Hits);
  return M;
}

} // namespace

WorkloadSpec workloads::makeMtrtWorkload() {
  WorkloadSpec S;
  S.Name = "mtrt";
  S.Description = "Two threaded ray tracing";
  S.CompiledFraction = 0.751; // Table 3.
  S.Build = [](const WorkloadConfig &Cfg) {
    World W(Cfg);
    MtrtTypes T = declareTypes(W);
    SplitMix64 Rng(Cfg.Seed + 3);

    Method *Intersect = buildIntersect(W, T);

    // ~1200 spheres x 72 B = 86 KB: L2-resident, slightly beyond the
    // Athlon L1 — like the BSP-organized mtrt scene whose MPIs are small
    // (Figures 8/9).
    unsigned N = static_cast<unsigned>(1200 * Cfg.Scale);
    N = N < 64 ? 64 : N;
    vm::Addr Scene = W.arr(Type::Ref, N);
    for (unsigned I = 0; I != N; ++I) {
      vm::Addr Sp = W.obj(T.Sphere);
      double Ox = static_cast<double>(Rng.nextBelow(97));
      uint64_t Bits;
      __builtin_memcpy(&Bits, &Ox, 8);
      W.setField(Sp, T.Ox, Bits);
      double R2 = 1.5 + static_cast<double>(Rng.nextBelow(8));
      __builtin_memcpy(&Bits, &R2, 8);
      W.setField(Sp, T.R2, Bits);
      W.setElem(Scene, I, Sp);
    }

    uint64_t NRays = static_cast<uint64_t>(120 * Cfg.Scale);
    NRays = NRays < 4 ? 4 : NRays;
    BuiltWorkload B = W.seal(Intersect, {Scene, NRays, N}, {Scene});
    B.CompileUnits.push_back({Intersect, B.EntryArgs});
    // The rest of the program: the ordinary methods the JIT also
    // compiles (the Figure 11 denominator).
    addCompiledPopulation(B, 280, Cfg.Seed);
    return B;
  };
  return S;
}
