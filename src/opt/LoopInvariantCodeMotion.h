//===- opt/LoopInvariantCodeMotion.h - LICM ---------------------*- C++ -*-===//
///
/// \file
/// Hoists pure, loop-invariant arithmetic out of loops. Deliberately NOT
/// part of the default JIT pipeline: the paper's running example relies
/// on loads like `tv.v` and the bound-check `arraylength`s staying inside
/// the loop (Table 1 lists them as in-loop loads), and hoisting heap
/// loads would also move their potential null-pointer checks. Only
/// side-effect-free, non-memory instructions (arithmetic, conversions)
/// are moved, so the memory behaviour the prefetcher sees is unchanged.
///
//===----------------------------------------------------------------------===//

#ifndef SPF_OPT_LOOPINVARIANTCODEMOTION_H
#define SPF_OPT_LOOPINVARIANTCODEMOTION_H

#include "analysis/LoopInfo.h"

namespace spf {
namespace opt {

/// Hoists invariant arithmetic in \p M to loop preheaders (the unique
/// out-of-loop predecessor of each header; loops without one are left
/// alone). \returns the number of instructions moved.
unsigned hoistLoopInvariants(ir::Method *M);

} // namespace opt
} // namespace spf

#endif // SPF_OPT_LOOPINVARIANTCODEMOTION_H
