//===- opt/Governor.cpp ---------------------------------------------------===//

#include "opt/Governor.h"

#include "obs/DecisionLog.h"

#include <cstdio>

using namespace spf;
using namespace spf::opt;

const char *opt::governorActionName(GovernorAction A) {
  switch (A) {
  case GovernorAction::Keep:
    return "keep";
  case GovernorAction::Retune:
    return "retune";
  case GovernorAction::Quarantine:
    return "quarantine";
  case GovernorAction::Reinspect:
    return "reinspect";
  }
  return "?";
}

namespace {

/// "site#N" label for DecisionLog events (sites here are runtime
/// SiteIds, not IR values, so obs::siteLabel does not apply).
std::string siteTag(exec::SiteId Site) {
  char Buf[32];
  std::snprintf(Buf, sizeof Buf, "site#%u", Site);
  return Buf;
}

void logDecision(const GovernorDecision &D) {
  obs::DecisionLog *DL = obs::DecisionScope::current();
  if (!DL)
    return;
  char Detail[96];
  std::snprintf(Detail, sizeof Detail, "resolved=%llu accuracy=%.2f",
                static_cast<unsigned long long>(D.Resolved), D.Accuracy);
  DL->event("governor", governorActionName(D.Action), siteTag(D.Site),
            Detail, D.ExtraDistance, D.Resolved, D.Accuracy);
}

} // namespace

std::vector<GovernorDecision>
Governor::endEpoch(const std::vector<sim::SiteStats> &Cumulative) {
  std::vector<GovernorDecision> Decisions;
  if (States.size() < Cumulative.size())
    States.resize(Cumulative.size());

  unsigned FreshQuarantines = 0;
  for (size_t I = 0; I != Cumulative.size(); ++I) {
    const sim::SiteStats &Cum = Cumulative[I];
    SiteState &St = States[I];
    // The epoch's fresh evidence: cumulative minus last snapshot.
    uint64_t Useful = Cum.SwUseful - St.Prev.SwUseful;
    uint64_t Late = Cum.SwLate - St.Prev.SwLate;
    uint64_t Unused = Cum.SwUnused - St.Prev.SwUnused;
    St.Prev = Cum;
    if (St.Quarantined)
      continue; // Suppressed sites issue nothing; nothing to re-decide.

    uint64_t Resolved = Useful + Late + Unused;
    if (Resolved < Cfg.MinResolved)
      continue; // Keep: not enough evidence this epoch.
    double Accuracy = static_cast<double>(Useful) / Resolved;
    if (Accuracy >= Cfg.AccuracyFloor)
      continue; // Keep: healthy.

    GovernorDecision D;
    D.Site = static_cast<exec::SiteId>(I);
    D.Resolved = Resolved;
    D.Accuracy = Accuracy;
    double LateFrac = static_cast<double>(Late) / Resolved;
    if (LateFrac >= Cfg.LateFraction && St.Retunes < Cfg.MaxRetunes) {
      // The fills arrive — just not in time. Stretch the lookahead.
      ++St.Retunes;
      ++NumRetunes;
      St.ExtraDistance += Cfg.RetuneStep;
      D.Action = GovernorAction::Retune;
      D.ExtraDistance = St.ExtraDistance;
    } else {
      St.Quarantined = true;
      ++NumQuarantined;
      ++FreshQuarantines;
      D.Action = GovernorAction::Quarantine;
    }
    logDecision(D);
    Decisions.push_back(D);
  }

  if (FreshQuarantines >= Cfg.ReinspectQuorum &&
      ReinspectsUsed < Cfg.MaxReinspects) {
    // The stride model itself is suspect (heap reordered / phase change):
    // escalate to a full re-inspection against the current layout.
    ++ReinspectsUsed;
    GovernorDecision D;
    D.Action = GovernorAction::Reinspect;
    D.Resolved = FreshQuarantines;
    logDecision(D);
    Decisions.push_back(D);
  }

  return Decisions;
}

void Governor::noteReinspected(const std::vector<sim::SiteStats> &Cumulative) {
  NumQuarantined = 0;
  States.assign(Cumulative.size(), SiteState{});
  for (size_t I = 0; I != Cumulative.size(); ++I)
    States[I].Prev = Cumulative[I];
}
