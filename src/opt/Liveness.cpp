//===- opt/Liveness.cpp ---------------------------------------------------===//

#include "opt/Liveness.h"

#include "analysis/Cfg.h"
#include "support/Casting.h"

using namespace spf;
using namespace spf::opt;
using namespace spf::ir;

Liveness::Liveness(Method *M) {
  M->renumber();
  NumValues = M->numArgs();
  for (const auto &BB : M->blocks())
    NumValues += BB->size();
  CrossBlock.assign(NumValues, false);

  // Per-block use (upward-exposed) and def sets. Phi inputs count as uses
  // in the corresponding *predecessor* (standard SSA liveness).
  std::unordered_map<const BasicBlock *, std::vector<bool>> Use, Def;
  for (const auto &BBOwn : M->blocks()) {
    BasicBlock *BB = BBOwn.get();
    auto &U = Use[BB];
    auto &D = Def[BB];
    U.assign(NumValues, false);
    D.assign(NumValues, false);
    LiveIn[BB].assign(NumValues, false);
    LiveOut[BB].assign(NumValues, false);

    for (const auto &I : BB->instructions()) {
      if (!isa<PhiInst>(I.get())) {
        for (Value *Op : I->operands())
          if ((isa<Instruction>(Op) || isa<Argument>(Op)) &&
              !D[Op->id()])
            U[Op->id()] = true;
      }
      if (I->type() != Type::Void)
        D[I->id()] = true;
    }
  }

  // Phi uses feed the predecessors' live-out directly.
  std::unordered_map<const BasicBlock *, std::vector<unsigned>> PhiUses;
  for (const auto &BB : M->blocks())
    for (const auto &I : BB->instructions()) {
      auto *Phi = dyn_cast<PhiInst>(I.get());
      if (!Phi)
        break;
      for (unsigned K = 0, E = Phi->numIncoming(); K != E; ++K) {
        Value *In = Phi->incomingValue(K);
        if (isa<Instruction>(In) || isa<Argument>(In))
          PhiUses[Phi->incomingBlock(K)].push_back(In->id());
      }
    }

  // Backward fixpoint: out[B] = union over succ S of (in[S] setminus
  // S's phi defs) plus phi inputs along B->S; in[B] = use[B] + (out[B] -
  // def[B]).
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (auto It = M->blocks().rbegin(); It != M->blocks().rend(); ++It) {
      BasicBlock *BB = It->get();
      auto &Out = LiveOut[BB];
      auto &In = LiveIn[BB];

      std::vector<bool> NewOut(NumValues, false);
      for (BasicBlock *Succ : BB->successors()) {
        const auto &SIn = LiveIn[Succ];
        for (unsigned V = 0; V != NumValues; ++V)
          if (SIn[V])
            NewOut[V] = true;
      }
      auto PU = PhiUses.find(BB);
      if (PU != PhiUses.end())
        for (unsigned V : PU->second)
          NewOut[V] = true;

      const auto &U = Use[BB];
      const auto &D = Def[BB];
      std::vector<bool> NewIn(NumValues, false);
      for (unsigned V = 0; V != NumValues; ++V)
        NewIn[V] = U[V] || (NewOut[V] && !D[V]);

      if (NewOut != Out) {
        Out = std::move(NewOut);
        Changed = true;
      }
      if (NewIn != In) {
        In = std::move(NewIn);
        Changed = true;
      }
    }
  }

  for (const auto &BB : M->blocks()) {
    const auto &In = LiveIn[BB.get()];
    for (unsigned V = 0; V != NumValues; ++V)
      if (In[V])
        CrossBlock[V] = true;
  }
}
