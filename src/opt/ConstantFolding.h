//===- opt/ConstantFolding.h - Constant folding pass ------------*- C++ -*-===//
///
/// \file
/// Folds arithmetic and conversions over constant operands. One of the
/// conventional optimizations forming the JIT pipeline whose total time is
/// the denominator of the paper's Figure 11 compile-time overhead ratio.
///
//===----------------------------------------------------------------------===//

#ifndef SPF_OPT_CONSTANTFOLDING_H
#define SPF_OPT_CONSTANTFOLDING_H

#include "ir/Method.h"

namespace spf {
namespace opt {

/// Folds constant expressions in \p M until a fixpoint.
/// \returns the number of instructions folded.
unsigned foldConstants(ir::Method *M);

} // namespace opt
} // namespace spf

#endif // SPF_OPT_CONSTANTFOLDING_H
