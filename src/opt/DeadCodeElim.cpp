//===- opt/DeadCodeElim.cpp -----------------------------------------------===//

#include "opt/DeadCodeElim.h"

#include "analysis/DefUse.h"

using namespace spf;
using namespace spf::opt;
using namespace spf::ir;

unsigned opt::eliminateDeadCode(Method *M) {
  unsigned Removed = 0;
  bool Changed = true;

  while (Changed) {
    Changed = false;
    analysis::DefUse DU(M);

    std::vector<Instruction *> Dead;
    for (const auto &BB : M->blocks())
      for (const auto &IP : BB->instructions()) {
        Instruction *I = IP.get();
        if (I->hasSideEffects() || I->isTerminator())
          continue;
        if (!DU.hasUsers(I))
          Dead.push_back(I);
      }

    for (Instruction *I : Dead) {
      I->parent()->erase(I);
      ++Removed;
      Changed = true;
    }
  }
  return Removed;
}
