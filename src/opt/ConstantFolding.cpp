//===- opt/ConstantFolding.cpp --------------------------------------------===//

#include "opt/ConstantFolding.h"

#include "ir/Module.h"
#include "support/ErrorHandling.h"

#include <optional>

using namespace spf;
using namespace spf::opt;
using namespace spf::ir;

static std::optional<uint64_t> foldBinary(const BinaryInst *B, int64_t L,
                                          int64_t R) {
  using BinOp = BinaryInst::BinOp;
  Type OpTy = B->lhs()->type();
  if (OpTy == Type::F64 || OpTy == Type::Ref)
    return std::nullopt; // Keep it simple: fold integers only.

  auto Wrap = [OpTy](int64_t V) -> uint64_t {
    if (OpTy == Type::I32)
      return static_cast<uint64_t>(
          static_cast<int64_t>(static_cast<int32_t>(V)));
    return static_cast<uint64_t>(V);
  };

  switch (B->binOp()) {
  case BinOp::Add: return Wrap(L + R);
  case BinOp::Sub: return Wrap(L - R);
  case BinOp::Mul: return Wrap(L * R);
  case BinOp::Div:
    if (R == 0)
      return std::nullopt; // Let the runtime trap.
    return Wrap(L / R);
  case BinOp::Rem:
    if (R == 0)
      return std::nullopt;
    return Wrap(L % R);
  case BinOp::And: return Wrap(L & R);
  case BinOp::Or: return Wrap(L | R);
  case BinOp::Xor: return Wrap(L ^ R);
  case BinOp::Shl: return Wrap(L << (R & 63));
  case BinOp::Shr: return Wrap(L >> (R & 63));
  case BinOp::CmpEq: return L == R;
  case BinOp::CmpNe: return L != R;
  case BinOp::CmpLt: return L < R;
  case BinOp::CmpLe: return L <= R;
  case BinOp::CmpGt: return L > R;
  case BinOp::CmpGe: return L >= R;
  }
  spf_unreachable("unknown binop");
}

unsigned opt::foldConstants(Method *M) {
  Module *Mod = M->parent();
  unsigned Folded = 0;
  bool Changed = true;

  while (Changed) {
    Changed = false;
    // Map from folded instruction to its replacement constant.
    std::vector<std::pair<Instruction *, Constant *>> Replacements;

    for (const auto &BB : M->blocks()) {
      for (const auto &IP : BB->instructions()) {
        auto *B = dyn_cast<BinaryInst>(IP.get());
        if (!B)
          continue;
        auto *L = dyn_cast<Constant>(B->lhs());
        auto *R = dyn_cast<Constant>(B->rhs());
        if (!L || !R)
          continue;
        auto V = foldBinary(B, L->intValue(), R->intValue());
        if (!V)
          continue;
        Replacements.emplace_back(
            B, Mod->intConst(B->type(), static_cast<int64_t>(*V)));
      }
    }

    if (Replacements.empty())
      break;

    for (auto &[Dead, Repl] : Replacements) {
      for (const auto &BB : M->blocks())
        for (const auto &IP : BB->instructions())
          for (unsigned I = 0, E = IP->numOperands(); I != E; ++I)
            if (IP->operand(I) == Dead)
              IP->setOperand(I, Repl);
      Dead->parent()->erase(Dead);
      ++Folded;
      Changed = true;
    }
  }
  return Folded;
}
