//===- opt/Governor.h - Online prefetch-health governor ---------*- C++ -*-===//
///
/// \file
/// Epoch-driven re-decision of per-site prefetching. The static pipeline
/// (inspect -> plan -> codegen) decides *once*, from strides observed at
/// compile time; a copying collector that reorders objects, or a workload
/// phase change, silently invalidates those strides and turns the
/// prefetches into pure cache pollution. The governor closes the loop:
/// after each epoch it reads the per-site prefetch-health counters that
/// sim::MemorySystem accumulates (issued / useful / late / evicted-unused
/// tagged fills) and re-decides each site:
///
///   - Keep        healthy, or not enough fresh evidence this epoch.
///   - Retune      mostly *late* fills: the stride is still right but the
///                 lookahead is short — shift the prefetch address by
///                 extra iterations of the stride (bounded retries).
///   - Quarantine  inaccurate (fills evicted unused): suppress the site's
///                 prefetch code, modeling the JIT nop-patching it.
///   - Reinspect   enough sites quarantined in one epoch that the stride
///                 model itself is suspect (e.g. the GC shuffled the
///                 heap): strip all prefetch code and re-run inspection +
///                 JIT against the *current* heap layout.
///
/// Decisions are pure data (the workload runner applies them through
/// exec::Interpreter::setPrefetchControl / the re-JIT path) and each
/// non-keep decision is recorded as a Pass="governor" DecisionLog event.
///
//===----------------------------------------------------------------------===//

#ifndef SPF_OPT_GOVERNOR_H
#define SPF_OPT_GOVERNOR_H

#include "exec/AccessSink.h"
#include "sim/MemorySystem.h"

#include <cstdint>
#include <vector>

namespace spf {
namespace opt {

/// Governor policy knobs. Defaults are deliberately conservative: a site
/// is only touched on MinResolved resolved fills of fresh evidence, and
/// re-inspection needs ReinspectQuorum quarantines in a single epoch.
struct GovernorConfig {
  /// Minimum resolved tagged fills (useful+late+unused) per epoch before
  /// a site's accuracy is trusted; below this the site keeps its code.
  uint64_t MinResolved = 32;
  /// Resolved-accuracy floor (useful / resolved); below it the site is
  /// late-triaged and then quarantined. Set from measurement, not from a
  /// bandwidth model: on both paper machines the adaptation bench shows
  /// prefetching turning net-negative below roughly 70% accuracy — the
  /// evicted-unused fills pollute more than the useful ones cover.
  double AccuracyFloor = 0.7;
  /// When at least this fraction of resolved fills were late (in flight
  /// at first use), the stride is right but the distance is short:
  /// retune instead of quarantining.
  double LateFraction = 0.5;
  /// Extra iterations of lookahead added per retune.
  int32_t RetuneStep = 2;
  /// Retunes allowed per site before falling through to quarantine.
  unsigned MaxRetunes = 2;
  /// Fresh quarantines in one epoch that escalate to re-inspection.
  unsigned ReinspectQuorum = 2;
  /// Re-inspections allowed per run (each strips + re-JITs every unit).
  unsigned MaxReinspects = 1;
};

enum class GovernorAction : uint8_t { Keep, Retune, Quarantine, Reinspect };

/// Name for logs/reports ("keep", "retune", "quarantine", "reinspect").
const char *governorActionName(GovernorAction A);

/// One per-site re-decision (Action != Keep; keeps are implicit). For
/// Retune, ExtraDistance is the site's *cumulative* extra lookahead. The
/// epoch-wide Reinspect escalation is reported as a decision on site 0
/// with Action == Reinspect.
struct GovernorDecision {
  exec::SiteId Site = 0;
  GovernorAction Action = GovernorAction::Keep;
  int32_t ExtraDistance = 0;
  /// Evidence behind the decision: resolved fills this epoch and the
  /// accuracy (useful / resolved) they showed.
  uint64_t Resolved = 0;
  double Accuracy = 0;
};

/// Per-site epoch-over-epoch health evaluator. Single-threaded, one per
/// workload run; holds the previous epoch's cumulative counters so each
/// evaluation sees only the fresh epoch's evidence.
class Governor {
public:
  explicit Governor(GovernorConfig Cfg = {}) : Cfg(Cfg) {}

  /// Evaluates the epoch that just ended. \p Cumulative is the memory
  /// system's full per-site table (cumulative since the run started);
  /// the governor diffs it against its snapshot from the previous call.
  /// Returns the non-keep decisions, each already recorded on the
  /// active DecisionLog (Pass="governor"). If the last element's action
  /// is Reinspect, the caller must strip + re-JIT and then call
  /// noteReinspected().
  std::vector<GovernorDecision>
  endEpoch(const std::vector<sim::SiteStats> &Cumulative);

  /// Resets per-site state after the caller performed a re-inspection:
  /// quarantines/retunes are void (the code was rebuilt) and the health
  /// baseline restarts at \p Cumulative.
  void noteReinspected(const std::vector<sim::SiteStats> &Cumulative);

  /// Sites currently quarantined / total retunes applied (for reports).
  unsigned quarantinedSites() const { return NumQuarantined; }
  unsigned retunesApplied() const { return NumRetunes; }
  unsigned reinspections() const { return ReinspectsUsed; }

private:
  struct SiteState {
    sim::SiteStats Prev;
    unsigned Retunes = 0;
    int32_t ExtraDistance = 0;
    bool Quarantined = false;
  };

  GovernorConfig Cfg;
  std::vector<SiteState> States;
  unsigned NumQuarantined = 0;
  unsigned NumRetunes = 0;
  unsigned ReinspectsUsed = 0;
};

} // namespace opt
} // namespace spf

#endif // SPF_OPT_GOVERNOR_H
