//===- opt/LocalCSE.cpp ---------------------------------------------------===//

#include "opt/LocalCSE.h"

#include <map>
#include <tuple>
#include <vector>

using namespace spf;
using namespace spf::opt;
using namespace spf::ir;

namespace {

/// Key identifying a CSE-able expression. Extra carries the sub-opcode.
using ExprKey = std::tuple<Opcode, unsigned, const Value *, const Value *>;

bool isCseCandidate(const Instruction *I) {
  switch (I->opcode()) {
  case Opcode::Binary:
  case Opcode::Conv:
  case Opcode::ArrayLength: // Lengths never change after allocation.
    return true;
  default:
    return false;
  }
}

ExprKey keyFor(const Instruction *I) {
  unsigned Extra = 0;
  if (const auto *B = dyn_cast<BinaryInst>(I))
    Extra = static_cast<unsigned>(B->binOp());
  else if (const auto *C = dyn_cast<ConvInst>(I))
    Extra = static_cast<unsigned>(C->convOp());
  const Value *Op0 = I->numOperands() > 0 ? I->operand(0) : nullptr;
  const Value *Op1 = I->numOperands() > 1 ? I->operand(1) : nullptr;
  return {I->opcode(), Extra, Op0, Op1};
}

} // namespace

unsigned opt::localCSE(Method *M) {
  unsigned Removed = 0;

  for (const auto &BB : M->blocks()) {
    std::map<ExprKey, Instruction *> Available;
    std::vector<std::pair<Instruction *, Instruction *>> Dups;

    for (const auto &IP : BB->instructions()) {
      Instruction *I = IP.get();
      if (!isCseCandidate(I))
        continue;
      auto [It, Inserted] = Available.emplace(keyFor(I), I);
      if (!Inserted)
        Dups.emplace_back(I, It->second);
    }

    for (auto &[Dead, Repl] : Dups) {
      for (const auto &OtherBB : M->blocks())
        for (const auto &IP : OtherBB->instructions())
          for (unsigned I = 0, E = IP->numOperands(); I != E; ++I)
            if (IP->operand(I) == Dead)
              IP->setOperand(I, Repl);
      BB->erase(Dead);
      ++Removed;
    }
  }
  return Removed;
}
