//===- opt/LinearScan.cpp -------------------------------------------------===//

#include "opt/LinearScan.h"

#include "analysis/Cfg.h"

#include <algorithm>
#include <map>

using namespace spf;
using namespace spf::opt;
using namespace spf::ir;

AllocationResult opt::allocateRegisters(Method *M, const Liveness &LV,
                                        unsigned NumRegisters) {
  AllocationResult Result;
  Result.NumRegisters = NumRegisters;

  // Linearize in reverse postorder and assign instruction numbers.
  auto RPO = analysis::reversePostOrder(M);
  std::unordered_map<const Value *, unsigned> Number;
  unsigned Counter = 0;
  for (const auto &Arg : M->arguments())
    Number[Arg.get()] = Counter++;
  std::unordered_map<const BasicBlock *, std::pair<unsigned, unsigned>>
      BlockRange;
  for (BasicBlock *BB : RPO) {
    unsigned Begin = Counter;
    for (const auto &I : BB->instructions())
      Number[I.get()] = Counter++;
    BlockRange[BB] = {Begin, Counter};
  }

  // Build intervals: def point extended over every use; values live
  // across block boundaries are extended over the full range of each
  // block whose live-in contains them (a standard conservative
  // linear-scan approximation of lifetime holes).
  std::map<unsigned, LiveInterval> ById;
  auto Extend = [&](const Value *V, unsigned Point) {
    if (!(isa<Instruction>(V) || isa<Argument>(V)))
      return;
    auto NumIt = Number.find(V);
    if (NumIt == Number.end())
      return; // Unreachable block.
    auto [It, Inserted] = ById.try_emplace(V->id());
    LiveInterval &LI = It->second;
    if (Inserted) {
      LI.ValueId = V->id();
      LI.Start = NumIt->second;
      LI.End = NumIt->second;
    }
    LI.Start = std::min(LI.Start, Point);
    LI.End = std::max(LI.End, Point);
  };

  for (const auto &Arg : M->arguments())
    Extend(Arg.get(), Number[Arg.get()]);
  for (BasicBlock *BB : RPO) {
    for (const auto &I : BB->instructions()) {
      unsigned P = Number[I.get()];
      if (I->type() != Type::Void)
        Extend(I.get(), P);
      for (Value *Op : I->operands())
        Extend(Op, P);
    }
    auto Range = BlockRange[BB];
    const auto &In = LV.liveIn(BB);
    const auto &Out = LV.liveOut(BB);
    for (const auto &Other : ById) {
      unsigned Id = Other.first;
      if (Id < In.size() && (In[Id] || Out[Id])) {
        LiveInterval &LI = ById[Id];
        if (In[Id])
          LI.Start = std::min(LI.Start, Range.first);
        if (Out[Id])
          LI.End = std::max(LI.End, Range.second);
      }
    }
  }

  for (auto &KV : ById)
    Result.Intervals.push_back(KV.second);
  std::sort(Result.Intervals.begin(), Result.Intervals.end(),
            [](const LiveInterval &A, const LiveInterval &B) {
              return A.Start < B.Start;
            });

  // True register pressure: an event sweep over interval endpoints
  // (independent of spilling decisions).
  {
    std::vector<std::pair<unsigned, int>> Events;
    for (const LiveInterval &LI : Result.Intervals) {
      Events.emplace_back(LI.Start, +1);
      Events.emplace_back(LI.End + 1, -1);
    }
    std::sort(Events.begin(), Events.end());
    int Cur = 0;
    for (const auto &[Point, Delta] : Events) {
      Cur += Delta;
      Result.MaxPressure =
          std::max(Result.MaxPressure, static_cast<unsigned>(Cur));
    }
  }

  // The scan.
  std::vector<LiveInterval *> Active; // Sorted by End.
  std::vector<bool> FreeRegs(NumRegisters, true);

  auto ExpireBefore = [&](unsigned Start) {
    auto It = Active.begin();
    while (It != Active.end() && (*It)->End < Start) {
      if ((*It)->Register >= 0)
        FreeRegs[(*It)->Register] = true;
      It = Active.erase(It);
    }
  };

  for (LiveInterval &LI : Result.Intervals) {
    ExpireBefore(LI.Start);

    int Reg = -1;
    for (unsigned R = 0; R != NumRegisters; ++R)
      if (FreeRegs[R]) {
        Reg = static_cast<int>(R);
        break;
      }

    if (Reg >= 0) {
      FreeRegs[Reg] = false;
      LI.Register = Reg;
      auto Pos = std::lower_bound(Active.begin(), Active.end(), &LI,
                                  [](const LiveInterval *A,
                                     const LiveInterval *B) {
                                    return A->End < B->End;
                                  });
      Active.insert(Pos, &LI);
      continue;
    }

    // Spill the interval that ends last (Poletto-Sarkar heuristic).
    LiveInterval *Last = Active.empty() ? nullptr : Active.back();
    if (Last && Last->End > LI.End) {
      LI.Register = Last->Register;
      Last->Register = -1;
      ++Result.Spills;
      Active.pop_back();
      auto Pos = std::lower_bound(Active.begin(), Active.end(), &LI,
                                  [](const LiveInterval *A,
                                     const LiveInterval *B) {
                                    return A->End < B->End;
                                  });
      Active.insert(Pos, &LI);
    } else {
      LI.Register = -1;
      ++Result.Spills;
    }
  }

  return Result;
}
