//===- opt/LinearScan.h - Linear-scan register allocation -------*- C++ -*-===//
///
/// \file
/// Poletto-Sarkar linear-scan register allocation over live intervals in
/// a reverse-postorder linearization. IA-32 JITs of the paper's era (the
/// IBM JIT included) allocate the seven usable integer registers this
/// way; the pass completes the baseline pipeline whose cost the Figure 11
/// ratios are measured against, and its spill statistics are part of the
/// compile result.
///
//===----------------------------------------------------------------------===//

#ifndef SPF_OPT_LINEARSCAN_H
#define SPF_OPT_LINEARSCAN_H

#include "opt/Liveness.h"

namespace spf {
namespace opt {

/// One value's live interval over the linearized instruction order.
struct LiveInterval {
  unsigned ValueId = 0;
  unsigned Start = 0;
  unsigned End = 0;
  int Register = -1; ///< Assigned register, or -1 when spilled.
};

/// Result of allocating one method.
struct AllocationResult {
  std::vector<LiveInterval> Intervals; ///< Sorted by Start.
  unsigned NumRegisters = 7;
  unsigned Spills = 0;
  unsigned MaxPressure = 0; ///< Peak simultaneous live intervals.

  /// The interval for dense value id \p Id, or null.
  const LiveInterval *intervalFor(unsigned Id) const {
    for (const LiveInterval &I : Intervals)
      if (I.ValueId == Id)
        return &I;
    return nullptr;
  }
};

/// Allocates \p M 's values to \p NumRegisters registers.
AllocationResult allocateRegisters(ir::Method *M, const Liveness &LV,
                                   unsigned NumRegisters = 7);

} // namespace opt
} // namespace spf

#endif // SPF_OPT_LINEARSCAN_H
