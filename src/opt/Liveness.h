//===- opt/Liveness.h - Per-block live-variable analysis --------*- C++ -*-===//
///
/// \file
/// Classic backward live-variable dataflow over the dense value ids of a
/// method. Feeds the linear-scan register allocator and is part of the
/// baseline JIT pipeline whose time is the Figure 11 denominator.
///
//===----------------------------------------------------------------------===//

#ifndef SPF_OPT_LIVENESS_H
#define SPF_OPT_LIVENESS_H

#include "ir/Method.h"

#include <unordered_map>
#include <vector>

namespace spf {
namespace opt {

/// Live-in/live-out bit vectors per block (indexed by Value::id(), dense
/// after Method::renumber()).
class Liveness {
public:
  explicit Liveness(ir::Method *M);

  unsigned numValues() const { return NumValues; }

  const std::vector<bool> &liveIn(const ir::BasicBlock *BB) const {
    return LiveIn.at(BB);
  }
  const std::vector<bool> &liveOut(const ir::BasicBlock *BB) const {
    return LiveOut.at(BB);
  }

  /// True when the value with dense id \p Id is live across at least one
  /// block boundary (it needs a durable location).
  bool liveAcrossBlocks(unsigned Id) const { return CrossBlock[Id]; }

private:
  unsigned NumValues = 0;
  std::unordered_map<const ir::BasicBlock *, std::vector<bool>> LiveIn;
  std::unordered_map<const ir::BasicBlock *, std::vector<bool>> LiveOut;
  std::vector<bool> CrossBlock;
};

} // namespace opt
} // namespace spf

#endif // SPF_OPT_LIVENESS_H
