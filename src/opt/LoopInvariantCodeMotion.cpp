//===- opt/LoopInvariantCodeMotion.cpp ------------------------------------===//

#include "opt/LoopInvariantCodeMotion.h"

#include "support/Casting.h"

using namespace spf;
using namespace spf::opt;
using namespace spf::ir;

namespace {

/// The unique predecessor of the header outside the loop, or null.
BasicBlock *preheaderOf(const analysis::Loop *L) {
  BasicBlock *Preheader = nullptr;
  for (BasicBlock *Pred : L->header()->predecessors()) {
    if (L->contains(Pred))
      continue;
    if (Preheader)
      return nullptr; // Multiple entries.
    Preheader = Pred;
  }
  return Preheader;
}

/// Pure and non-memory: safe to execute whenever its operands exist.
bool isHoistable(const Instruction *I) {
  if (I->opcode() != Opcode::Binary && I->opcode() != Opcode::Conv)
    return false;
  // Division can trap on zero; only hoist when the divisor is a nonzero
  // constant.
  if (const auto *B = dyn_cast<BinaryInst>(I)) {
    using BinOp = BinaryInst::BinOp;
    if (B->binOp() == BinOp::Div || B->binOp() == BinOp::Rem) {
      const auto *C = dyn_cast<Constant>(B->rhs());
      return C && C->intValue() != 0;
    }
  }
  return true;
}

} // namespace

unsigned opt::hoistLoopInvariants(Method *M) {
  M->recomputePreds();
  analysis::DominatorTree DT(M);
  analysis::LoopInfo LI(M, DT);
  unsigned Moved = 0;

  // Innermost first: hoisting out of an inner loop can expose further
  // hoisting from the outer one on the next iteration of the fixpoint.
  for (analysis::Loop *L : LI.loopsPostOrder()) {
    BasicBlock *Preheader = preheaderOf(L);
    if (!Preheader || !Preheader->terminator())
      continue;

    bool Changed = true;
    while (Changed) {
      Changed = false;
      for (BasicBlock *BB : L->blocks()) {
        // Collect first: moving mutates the instruction list.
        std::vector<Instruction *> ToHoist;
        for (const auto &IP : BB->instructions()) {
          Instruction *I = IP.get();
          if (!isHoistable(I))
            continue;
          bool Invariant = true;
          for (Value *Op : I->operands()) {
            const auto *OpInst = dyn_cast<Instruction>(Op);
            if (OpInst && L->contains(OpInst))
              Invariant = false;
          }
          if (Invariant)
            ToHoist.push_back(I);
        }
        for (Instruction *I : ToHoist) {
          std::unique_ptr<Instruction> Owned = BB->detach(I);
          Preheader->insertBefore(Preheader->terminator(),
                                  std::move(Owned));
          ++Moved;
          Changed = true;
        }
      }
    }
  }
  return Moved;
}
