//===- opt/DeadCodeElim.h - Dead code elimination ---------------*- C++ -*-===//
///
/// \file
/// Removes side-effect-free instructions with no users. Part of the
/// baseline JIT pipeline (Figure 11 denominator).
///
//===----------------------------------------------------------------------===//

#ifndef SPF_OPT_DEADCODEELIM_H
#define SPF_OPT_DEADCODEELIM_H

#include "ir/Method.h"

namespace spf {
namespace opt {

/// Deletes dead instructions in \p M until a fixpoint.
/// \returns the number of instructions removed.
unsigned eliminateDeadCode(ir::Method *M);

} // namespace opt
} // namespace spf

#endif // SPF_OPT_DEADCODEELIM_H
