//===- opt/LocalCSE.h - Block-local common subexpressions -------*- C++ -*-===//
///
/// \file
/// Block-local common-subexpression elimination over pure expressions
/// (arithmetic, conversions) and `arraylength` loads (array lengths are
/// immutable). Part of the baseline JIT pipeline (Figure 11 denominator).
///
//===----------------------------------------------------------------------===//

#ifndef SPF_OPT_LOCALCSE_H
#define SPF_OPT_LOCALCSE_H

#include "ir/Method.h"

namespace spf {
namespace opt {

/// Eliminates duplicated pure expressions within each block of \p M.
/// \returns the number of instructions removed.
unsigned localCSE(ir::Method *M);

} // namespace opt
} // namespace spf

#endif // SPF_OPT_LOCALCSE_H
