# Empty compiler generated dependencies file for fig7_speedup_athlon.
# This may be replaced when dependencies are built.
