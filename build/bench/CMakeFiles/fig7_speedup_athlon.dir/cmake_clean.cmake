file(REMOVE_RECURSE
  "CMakeFiles/fig7_speedup_athlon.dir/fig7_speedup_athlon.cpp.o"
  "CMakeFiles/fig7_speedup_athlon.dir/fig7_speedup_athlon.cpp.o.d"
  "fig7_speedup_athlon"
  "fig7_speedup_athlon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_speedup_athlon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
