file(REMOVE_RECURSE
  "CMakeFiles/fig10_dtlb_mpi.dir/fig10_dtlb_mpi.cpp.o"
  "CMakeFiles/fig10_dtlb_mpi.dir/fig10_dtlb_mpi.cpp.o.d"
  "fig10_dtlb_mpi"
  "fig10_dtlb_mpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_dtlb_mpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
