# Empty dependencies file for fig10_dtlb_mpi.
# This may be replaced when dependencies are built.
