file(REMOVE_RECURSE
  "CMakeFiles/fig9_l2_mpi.dir/fig9_l2_mpi.cpp.o"
  "CMakeFiles/fig9_l2_mpi.dir/fig9_l2_mpi.cpp.o.d"
  "fig9_l2_mpi"
  "fig9_l2_mpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_l2_mpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
