# Empty compiler generated dependencies file for fig9_l2_mpi.
# This may be replaced when dependencies are built.
