file(REMOVE_RECURSE
  "CMakeFiles/table2_machines.dir/table2_machines.cpp.o"
  "CMakeFiles/table2_machines.dir/table2_machines.cpp.o.d"
  "table2_machines"
  "table2_machines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_machines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
