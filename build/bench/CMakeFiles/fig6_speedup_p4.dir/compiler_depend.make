# Empty compiler generated dependencies file for fig6_speedup_p4.
# This may be replaced when dependencies are built.
