file(REMOVE_RECURSE
  "CMakeFiles/fig6_speedup_p4.dir/fig6_speedup_p4.cpp.o"
  "CMakeFiles/fig6_speedup_p4.dir/fig6_speedup_p4.cpp.o.d"
  "fig6_speedup_p4"
  "fig6_speedup_p4.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_speedup_p4.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
