# Empty dependencies file for ablation_inspection.
# This may be replaced when dependencies are built.
