file(REMOVE_RECURSE
  "CMakeFiles/ablation_inspection.dir/ablation_inspection.cpp.o"
  "CMakeFiles/ablation_inspection.dir/ablation_inspection.cpp.o.d"
  "ablation_inspection"
  "ablation_inspection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_inspection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
