file(REMOVE_RECURSE
  "CMakeFiles/comparison_greedy.dir/comparison_greedy.cpp.o"
  "CMakeFiles/comparison_greedy.dir/comparison_greedy.cpp.o.d"
  "comparison_greedy"
  "comparison_greedy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/comparison_greedy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
