# Empty compiler generated dependencies file for comparison_greedy.
# This may be replaced when dependencies are built.
