file(REMOVE_RECURSE
  "CMakeFiles/ablation_tlb_priming.dir/ablation_tlb_priming.cpp.o"
  "CMakeFiles/ablation_tlb_priming.dir/ablation_tlb_priming.cpp.o.d"
  "ablation_tlb_priming"
  "ablation_tlb_priming.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_tlb_priming.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
