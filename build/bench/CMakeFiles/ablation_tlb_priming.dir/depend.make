# Empty dependencies file for ablation_tlb_priming.
# This may be replaced when dependencies are built.
