# Empty dependencies file for fig8_l1_mpi.
# This may be replaced when dependencies are built.
