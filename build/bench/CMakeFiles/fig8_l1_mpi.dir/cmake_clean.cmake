file(REMOVE_RECURSE
  "CMakeFiles/fig8_l1_mpi.dir/fig8_l1_mpi.cpp.o"
  "CMakeFiles/fig8_l1_mpi.dir/fig8_l1_mpi.cpp.o.d"
  "fig8_l1_mpi"
  "fig8_l1_mpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_l1_mpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
