# Empty dependencies file for mixed_mode.
# This may be replaced when dependencies are built.
