file(REMOVE_RECURSE
  "CMakeFiles/mixed_mode.dir/mixed_mode.cpp.o"
  "CMakeFiles/mixed_mode.dir/mixed_mode.cpp.o.d"
  "mixed_mode"
  "mixed_mode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mixed_mode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
