# Empty dependencies file for spf_cli.
# This may be replaced when dependencies are built.
