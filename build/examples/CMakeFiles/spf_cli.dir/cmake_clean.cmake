file(REMOVE_RECURSE
  "CMakeFiles/spf_cli.dir/spf_cli.cpp.o"
  "CMakeFiles/spf_cli.dir/spf_cli.cpp.o.d"
  "spf_cli"
  "spf_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spf_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
