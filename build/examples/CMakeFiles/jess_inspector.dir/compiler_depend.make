# Empty compiler generated dependencies file for jess_inspector.
# This may be replaced when dependencies are built.
