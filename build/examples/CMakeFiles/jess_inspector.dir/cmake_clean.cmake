file(REMOVE_RECURSE
  "CMakeFiles/jess_inspector.dir/jess_inspector.cpp.o"
  "CMakeFiles/jess_inspector.dir/jess_inspector.cpp.o.d"
  "jess_inspector"
  "jess_inspector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jess_inspector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
