file(REMOVE_RECURSE
  "CMakeFiles/gc_strides.dir/gc_strides.cpp.o"
  "CMakeFiles/gc_strides.dir/gc_strides.cpp.o.d"
  "gc_strides"
  "gc_strides.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gc_strides.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
