# Empty compiler generated dependencies file for gc_strides.
# This may be replaced when dependencies are built.
