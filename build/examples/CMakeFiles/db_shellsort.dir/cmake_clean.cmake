file(REMOVE_RECURSE
  "CMakeFiles/db_shellsort.dir/db_shellsort.cpp.o"
  "CMakeFiles/db_shellsort.dir/db_shellsort.cpp.o.d"
  "db_shellsort"
  "db_shellsort.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/db_shellsort.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
