# Empty compiler generated dependencies file for db_shellsort.
# This may be replaced when dependencies are built.
