file(REMOVE_RECURSE
  "libspf.a"
)
