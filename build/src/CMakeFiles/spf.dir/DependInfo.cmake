
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/Cfg.cpp" "src/CMakeFiles/spf.dir/analysis/Cfg.cpp.o" "gcc" "src/CMakeFiles/spf.dir/analysis/Cfg.cpp.o.d"
  "/root/repo/src/analysis/DefUse.cpp" "src/CMakeFiles/spf.dir/analysis/DefUse.cpp.o" "gcc" "src/CMakeFiles/spf.dir/analysis/DefUse.cpp.o.d"
  "/root/repo/src/analysis/Dominators.cpp" "src/CMakeFiles/spf.dir/analysis/Dominators.cpp.o" "gcc" "src/CMakeFiles/spf.dir/analysis/Dominators.cpp.o.d"
  "/root/repo/src/analysis/LoopInfo.cpp" "src/CMakeFiles/spf.dir/analysis/LoopInfo.cpp.o" "gcc" "src/CMakeFiles/spf.dir/analysis/LoopInfo.cpp.o.d"
  "/root/repo/src/core/GreedyPrefetch.cpp" "src/CMakeFiles/spf.dir/core/GreedyPrefetch.cpp.o" "gcc" "src/CMakeFiles/spf.dir/core/GreedyPrefetch.cpp.o.d"
  "/root/repo/src/core/LoadDependenceGraph.cpp" "src/CMakeFiles/spf.dir/core/LoadDependenceGraph.cpp.o" "gcc" "src/CMakeFiles/spf.dir/core/LoadDependenceGraph.cpp.o.d"
  "/root/repo/src/core/ObjectInspector.cpp" "src/CMakeFiles/spf.dir/core/ObjectInspector.cpp.o" "gcc" "src/CMakeFiles/spf.dir/core/ObjectInspector.cpp.o.d"
  "/root/repo/src/core/PrefetchCodeGen.cpp" "src/CMakeFiles/spf.dir/core/PrefetchCodeGen.cpp.o" "gcc" "src/CMakeFiles/spf.dir/core/PrefetchCodeGen.cpp.o.d"
  "/root/repo/src/core/PrefetchPass.cpp" "src/CMakeFiles/spf.dir/core/PrefetchPass.cpp.o" "gcc" "src/CMakeFiles/spf.dir/core/PrefetchPass.cpp.o.d"
  "/root/repo/src/core/PrefetchPlanner.cpp" "src/CMakeFiles/spf.dir/core/PrefetchPlanner.cpp.o" "gcc" "src/CMakeFiles/spf.dir/core/PrefetchPlanner.cpp.o.d"
  "/root/repo/src/core/StrideAnalysis.cpp" "src/CMakeFiles/spf.dir/core/StrideAnalysis.cpp.o" "gcc" "src/CMakeFiles/spf.dir/core/StrideAnalysis.cpp.o.d"
  "/root/repo/src/exec/Interpreter.cpp" "src/CMakeFiles/spf.dir/exec/Interpreter.cpp.o" "gcc" "src/CMakeFiles/spf.dir/exec/Interpreter.cpp.o.d"
  "/root/repo/src/ir/BasicBlock.cpp" "src/CMakeFiles/spf.dir/ir/BasicBlock.cpp.o" "gcc" "src/CMakeFiles/spf.dir/ir/BasicBlock.cpp.o.d"
  "/root/repo/src/ir/IRBuilder.cpp" "src/CMakeFiles/spf.dir/ir/IRBuilder.cpp.o" "gcc" "src/CMakeFiles/spf.dir/ir/IRBuilder.cpp.o.d"
  "/root/repo/src/ir/IRParser.cpp" "src/CMakeFiles/spf.dir/ir/IRParser.cpp.o" "gcc" "src/CMakeFiles/spf.dir/ir/IRParser.cpp.o.d"
  "/root/repo/src/ir/IRPrinter.cpp" "src/CMakeFiles/spf.dir/ir/IRPrinter.cpp.o" "gcc" "src/CMakeFiles/spf.dir/ir/IRPrinter.cpp.o.d"
  "/root/repo/src/ir/Instruction.cpp" "src/CMakeFiles/spf.dir/ir/Instruction.cpp.o" "gcc" "src/CMakeFiles/spf.dir/ir/Instruction.cpp.o.d"
  "/root/repo/src/ir/Method.cpp" "src/CMakeFiles/spf.dir/ir/Method.cpp.o" "gcc" "src/CMakeFiles/spf.dir/ir/Method.cpp.o.d"
  "/root/repo/src/ir/Module.cpp" "src/CMakeFiles/spf.dir/ir/Module.cpp.o" "gcc" "src/CMakeFiles/spf.dir/ir/Module.cpp.o.d"
  "/root/repo/src/ir/Verifier.cpp" "src/CMakeFiles/spf.dir/ir/Verifier.cpp.o" "gcc" "src/CMakeFiles/spf.dir/ir/Verifier.cpp.o.d"
  "/root/repo/src/jit/CompileManager.cpp" "src/CMakeFiles/spf.dir/jit/CompileManager.cpp.o" "gcc" "src/CMakeFiles/spf.dir/jit/CompileManager.cpp.o.d"
  "/root/repo/src/opt/ConstantFolding.cpp" "src/CMakeFiles/spf.dir/opt/ConstantFolding.cpp.o" "gcc" "src/CMakeFiles/spf.dir/opt/ConstantFolding.cpp.o.d"
  "/root/repo/src/opt/DeadCodeElim.cpp" "src/CMakeFiles/spf.dir/opt/DeadCodeElim.cpp.o" "gcc" "src/CMakeFiles/spf.dir/opt/DeadCodeElim.cpp.o.d"
  "/root/repo/src/opt/LinearScan.cpp" "src/CMakeFiles/spf.dir/opt/LinearScan.cpp.o" "gcc" "src/CMakeFiles/spf.dir/opt/LinearScan.cpp.o.d"
  "/root/repo/src/opt/Liveness.cpp" "src/CMakeFiles/spf.dir/opt/Liveness.cpp.o" "gcc" "src/CMakeFiles/spf.dir/opt/Liveness.cpp.o.d"
  "/root/repo/src/opt/LocalCSE.cpp" "src/CMakeFiles/spf.dir/opt/LocalCSE.cpp.o" "gcc" "src/CMakeFiles/spf.dir/opt/LocalCSE.cpp.o.d"
  "/root/repo/src/opt/LoopInvariantCodeMotion.cpp" "src/CMakeFiles/spf.dir/opt/LoopInvariantCodeMotion.cpp.o" "gcc" "src/CMakeFiles/spf.dir/opt/LoopInvariantCodeMotion.cpp.o.d"
  "/root/repo/src/sim/Cache.cpp" "src/CMakeFiles/spf.dir/sim/Cache.cpp.o" "gcc" "src/CMakeFiles/spf.dir/sim/Cache.cpp.o.d"
  "/root/repo/src/sim/HardwarePrefetcher.cpp" "src/CMakeFiles/spf.dir/sim/HardwarePrefetcher.cpp.o" "gcc" "src/CMakeFiles/spf.dir/sim/HardwarePrefetcher.cpp.o.d"
  "/root/repo/src/sim/MachineConfig.cpp" "src/CMakeFiles/spf.dir/sim/MachineConfig.cpp.o" "gcc" "src/CMakeFiles/spf.dir/sim/MachineConfig.cpp.o.d"
  "/root/repo/src/sim/MemorySystem.cpp" "src/CMakeFiles/spf.dir/sim/MemorySystem.cpp.o" "gcc" "src/CMakeFiles/spf.dir/sim/MemorySystem.cpp.o.d"
  "/root/repo/src/sim/Tlb.cpp" "src/CMakeFiles/spf.dir/sim/Tlb.cpp.o" "gcc" "src/CMakeFiles/spf.dir/sim/Tlb.cpp.o.d"
  "/root/repo/src/support/ErrorHandling.cpp" "src/CMakeFiles/spf.dir/support/ErrorHandling.cpp.o" "gcc" "src/CMakeFiles/spf.dir/support/ErrorHandling.cpp.o.d"
  "/root/repo/src/vm/GarbageCollector.cpp" "src/CMakeFiles/spf.dir/vm/GarbageCollector.cpp.o" "gcc" "src/CMakeFiles/spf.dir/vm/GarbageCollector.cpp.o.d"
  "/root/repo/src/vm/Heap.cpp" "src/CMakeFiles/spf.dir/vm/Heap.cpp.o" "gcc" "src/CMakeFiles/spf.dir/vm/Heap.cpp.o.d"
  "/root/repo/src/vm/TypeTable.cpp" "src/CMakeFiles/spf.dir/vm/TypeTable.cpp.o" "gcc" "src/CMakeFiles/spf.dir/vm/TypeTable.cpp.o.d"
  "/root/repo/src/workloads/Compress.cpp" "src/CMakeFiles/spf.dir/workloads/Compress.cpp.o" "gcc" "src/CMakeFiles/spf.dir/workloads/Compress.cpp.o.d"
  "/root/repo/src/workloads/Db.cpp" "src/CMakeFiles/spf.dir/workloads/Db.cpp.o" "gcc" "src/CMakeFiles/spf.dir/workloads/Db.cpp.o.d"
  "/root/repo/src/workloads/Euler.cpp" "src/CMakeFiles/spf.dir/workloads/Euler.cpp.o" "gcc" "src/CMakeFiles/spf.dir/workloads/Euler.cpp.o.d"
  "/root/repo/src/workloads/Jack.cpp" "src/CMakeFiles/spf.dir/workloads/Jack.cpp.o" "gcc" "src/CMakeFiles/spf.dir/workloads/Jack.cpp.o.d"
  "/root/repo/src/workloads/Javac.cpp" "src/CMakeFiles/spf.dir/workloads/Javac.cpp.o" "gcc" "src/CMakeFiles/spf.dir/workloads/Javac.cpp.o.d"
  "/root/repo/src/workloads/Jess.cpp" "src/CMakeFiles/spf.dir/workloads/Jess.cpp.o" "gcc" "src/CMakeFiles/spf.dir/workloads/Jess.cpp.o.d"
  "/root/repo/src/workloads/MolDyn.cpp" "src/CMakeFiles/spf.dir/workloads/MolDyn.cpp.o" "gcc" "src/CMakeFiles/spf.dir/workloads/MolDyn.cpp.o.d"
  "/root/repo/src/workloads/MonteCarlo.cpp" "src/CMakeFiles/spf.dir/workloads/MonteCarlo.cpp.o" "gcc" "src/CMakeFiles/spf.dir/workloads/MonteCarlo.cpp.o.d"
  "/root/repo/src/workloads/MpegAudio.cpp" "src/CMakeFiles/spf.dir/workloads/MpegAudio.cpp.o" "gcc" "src/CMakeFiles/spf.dir/workloads/MpegAudio.cpp.o.d"
  "/root/repo/src/workloads/Mtrt.cpp" "src/CMakeFiles/spf.dir/workloads/Mtrt.cpp.o" "gcc" "src/CMakeFiles/spf.dir/workloads/Mtrt.cpp.o.d"
  "/root/repo/src/workloads/ProgramPopulation.cpp" "src/CMakeFiles/spf.dir/workloads/ProgramPopulation.cpp.o" "gcc" "src/CMakeFiles/spf.dir/workloads/ProgramPopulation.cpp.o.d"
  "/root/repo/src/workloads/RayTracer.cpp" "src/CMakeFiles/spf.dir/workloads/RayTracer.cpp.o" "gcc" "src/CMakeFiles/spf.dir/workloads/RayTracer.cpp.o.d"
  "/root/repo/src/workloads/Runner.cpp" "src/CMakeFiles/spf.dir/workloads/Runner.cpp.o" "gcc" "src/CMakeFiles/spf.dir/workloads/Runner.cpp.o.d"
  "/root/repo/src/workloads/Search.cpp" "src/CMakeFiles/spf.dir/workloads/Search.cpp.o" "gcc" "src/CMakeFiles/spf.dir/workloads/Search.cpp.o.d"
  "/root/repo/src/workloads/Workload.cpp" "src/CMakeFiles/spf.dir/workloads/Workload.cpp.o" "gcc" "src/CMakeFiles/spf.dir/workloads/Workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
