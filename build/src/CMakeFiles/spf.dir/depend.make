# Empty dependencies file for spf.
# This may be replaced when dependencies are built.
