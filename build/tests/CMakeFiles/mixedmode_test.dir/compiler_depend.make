# Empty compiler generated dependencies file for mixedmode_test.
# This may be replaced when dependencies are built.
