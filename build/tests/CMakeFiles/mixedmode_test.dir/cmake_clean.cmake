file(REMOVE_RECURSE
  "CMakeFiles/mixedmode_test.dir/mixedmode_test.cpp.o"
  "CMakeFiles/mixedmode_test.dir/mixedmode_test.cpp.o.d"
  "mixedmode_test"
  "mixedmode_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mixedmode_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
