# Empty dependencies file for ldg_test.
# This may be replaced when dependencies are built.
