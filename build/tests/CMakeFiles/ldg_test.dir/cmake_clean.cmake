file(REMOVE_RECURSE
  "CMakeFiles/ldg_test.dir/ldg_test.cpp.o"
  "CMakeFiles/ldg_test.dir/ldg_test.cpp.o.d"
  "ldg_test"
  "ldg_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ldg_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
