# Empty compiler generated dependencies file for licm_test.
# This may be replaced when dependencies are built.
