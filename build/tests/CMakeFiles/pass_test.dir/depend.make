# Empty dependencies file for pass_test.
# This may be replaced when dependencies are built.
