file(REMOVE_RECURSE
  "CMakeFiles/pass_test.dir/pass_test.cpp.o"
  "CMakeFiles/pass_test.dir/pass_test.cpp.o.d"
  "pass_test"
  "pass_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pass_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
