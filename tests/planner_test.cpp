//===- tests/planner_test.cpp - Section 3.3 planning rules ----------------===//

#include "TestKernels.h"
#include "core/ObjectInspector.h"
#include "core/PrefetchPlanner.h"
#include "core/StrideAnalysis.h"
#include "workloads/KernelBuilder.h"

#include <gtest/gtest.h>

using namespace spf;
using namespace spf::core;
using namespace spf::ir;
using namespace spf::testkernels;

namespace {

/// Shared machinery: annotate the jess graph, then plan with chosen
/// options.
struct PlannerFixture {
  JessWorld W;
  analysis::DominatorTree DT;
  analysis::LoopInfo LI;
  std::unique_ptr<analysis::DefUse> DU;
  std::unique_ptr<LoadDependenceGraph> G;

  explicit PlannerFixture(bool Scramble = true)
      : W(64, Scramble), DT((W.Find->recomputePreds(), W.Find)),
        LI(W.Find, DT) {
    DU = std::make_unique<analysis::DefUse>(W.Find);
    G = std::make_unique<LoadDependenceGraph>(LI.topLevelLoops()[0], LI);
    ObjectInspector Insp(*W.Heap, LI);
    InspectionResult R =
        Insp.inspect(W.Find, W.findArgs(), LI.topLevelLoops()[0], *G);
    annotateStrides(*G, R, StrideOptions());
  }

  LoopPlan plan(PlannerOptions Opts) {
    return planPrefetches(*G, *DU, Opts);
  }
};

TEST(PlannerTest, JessInterIntraMatchesFigure4) {
  // Figure 4: tmp_pref = spec_load(&tv.v[i] + c*d);
  //           prefetch(tmp_pref + o); [prefetch(tmp_pref + o + s);]
  PlannerFixture F;
  PlannerOptions Opts;
  Opts.Mode = PrefetchMode::InterIntra;
  Opts.LineBytes = 64;
  LoopPlan P = F.plan(Opts);

  ASSERT_EQ(P.Anchors.size(), 1u);
  const AnchorPlan &A = P.Anchors[0];
  EXPECT_EQ(A.Anchor, F.W.L4);
  EXPECT_FALSE(A.EmitPlain);
  ASSERT_FALSE(A.Derefs.empty());
  EXPECT_EQ(A.InterStride, 8);
  // A(L4) = v + 16 + i*8, plus d*c = 8.
  EXPECT_EQ(A.Base, F.W.L2);
  EXPECT_EQ(A.Index, F.W.Find->arg(0) == nullptr ? nullptr : A.Index);
  EXPECT_EQ(A.Scale, 8u);
  EXPECT_EQ(A.AnchorDisp, 16 + 8);

  // First dereference target: o = offset of facts (16).
  EXPECT_EQ(A.Derefs[0].Offset, 16);
  EXPECT_FALSE(A.Derefs[0].IsIntra);
  EXPECT_EQ(A.Derefs[0].ForLoad, F.W.L9);

  // The intra targets (o + 24 = 40, o + 32 = 48) fall within one 64-byte
  // line of the first: deduped, exactly the paper's observation that the
  // line already covers the token and its facts array.
  EXPECT_EQ(A.Derefs.size(), 1u);
  EXPECT_EQ(P.numIntra(), 0u);
}

TEST(PlannerTest, SmallLinesKeepTheIntraPrefetch) {
  // With a hypothetical 16-byte line, o+24 no longer shares the line:
  // the S[Ly,Lz] prefetch of Figure 4 appears.
  PlannerFixture F;
  PlannerOptions Opts;
  Opts.Mode = PrefetchMode::InterIntra;
  Opts.LineBytes = 16;
  LoopPlan P = F.plan(Opts);
  ASSERT_EQ(P.Anchors.size(), 1u);
  const AnchorPlan &A = P.Anchors[0];
  ASSERT_GE(A.Derefs.size(), 2u);
  EXPECT_EQ(A.Derefs[0].Offset, 16);      // F(a): o.
  EXPECT_EQ(A.Derefs[1].Offset, 16 + 24); // F(a) + S[L9,L10].
  EXPECT_TRUE(A.Derefs[1].IsIntra);
  EXPECT_EQ(A.Derefs[1].ForLoad, F.W.L10);
  EXPECT_GE(P.numIntra(), 1u);
}

TEST(PlannerTest, InterModeEmitsNothingForJess) {
  // Wu's emulation: L4's stride (8) is below half of any real line, and
  // no other load has an inter pattern — INTER generates no prefetching,
  // matching the paper's flat INTER bars for jess/db.
  PlannerFixture F;
  PlannerOptions Opts;
  Opts.Mode = PrefetchMode::Inter;
  Opts.LineBytes = 64;
  LoopPlan P = F.plan(Opts);
  EXPECT_TRUE(P.Anchors.empty());
}

TEST(PlannerTest, UnscrambledJessUsesPlainPrefetchWithBigStride) {
  // Without scrambling, L9/L10/L11 all carry the 208-byte token pitch:
  // every adjacent node of L4 has an inter pattern, so L4 itself is not
  // dereference-prefetched; the strided loads get plain prefetches.
  PlannerFixture F(/*Scramble=*/false);
  PlannerOptions Opts;
  Opts.Mode = PrefetchMode::InterIntra;
  Opts.LineBytes = 64;
  LoopPlan P = F.plan(Opts);

  EXPECT_GT(P.numPlain(), 0u);
  EXPECT_EQ(P.numSpecLoads(), 0u);
  for (const AnchorPlan &A : P.Anchors) {
    EXPECT_TRUE(A.EmitPlain);
    EXPECT_GT(std::abs(A.InterStride), 32);
  }
}

TEST(PlannerTest, GuardedFlagFollowsOption) {
  PlannerFixture F;
  PlannerOptions Opts;
  Opts.Mode = PrefetchMode::InterIntra;
  Opts.LineBytes = 64;
  Opts.GuardedIntraPrefetch = true; // The Pentium 4 configuration.
  LoopPlan P = F.plan(Opts);
  ASSERT_FALSE(P.Anchors.empty());
  for (const DerefPrefetch &D : P.Anchors[0].Derefs)
    EXPECT_TRUE(D.Guarded);

  Opts.GuardedIntraPrefetch = false; // Athlon.
  LoopPlan P2 = F.plan(Opts);
  for (const DerefPrefetch &D : P2.Anchors[0].Derefs)
    EXPECT_FALSE(D.Guarded);
}

TEST(PlannerTest, ScheduleDistanceScalesTheDisplacement) {
  PlannerFixture F;
  PlannerOptions Opts;
  Opts.Mode = PrefetchMode::InterIntra;
  Opts.LineBytes = 64;
  Opts.ScheduleDistance = 4;
  LoopPlan P = F.plan(Opts);
  ASSERT_EQ(P.Anchors.size(), 1u);
  EXPECT_EQ(P.Anchors[0].AnchorDisp, 16 + 8 * 4);
}

TEST(PlannerTest, AddressDecomposition) {
  PlannerFixture F;
  Value *Base;
  Value *Index;
  unsigned Scale;
  int64_t Disp;

  // getfield tmp.facts: base = tmp, disp = field offset.
  ASSERT_TRUE(decomposeAddress(F.W.L9, Base, Index, Scale, Disp));
  EXPECT_EQ(Base, F.W.L4);
  EXPECT_EQ(Index, nullptr);
  EXPECT_EQ(Disp, 16);

  // aaload v[i]: base = v, index = i, scale 8, disp = header.
  ASSERT_TRUE(decomposeAddress(F.W.L4, Base, Index, Scale, Disp));
  EXPECT_EQ(Base, F.W.L2);
  EXPECT_NE(Index, nullptr);
  EXPECT_EQ(Scale, 8u);
  EXPECT_EQ(Disp, 16);

  // arraylength v: base = v, disp = length offset.
  ASSERT_TRUE(decomposeAddress(F.W.L3, Base, Index, Scale, Disp));
  EXPECT_EQ(Disp, static_cast<int64_t>(vm::ArrayLengthOffset));
}

TEST(PlannerTest, DereferenceOffsets) {
  PlannerFixture F;
  EXPECT_EQ(dereferenceOffset(F.W.L9), 16);  // getfield facts.
  EXPECT_EQ(dereferenceOffset(F.W.L10), 8);  // arraylength.
  EXPECT_EQ(dereferenceOffset(F.W.L11), 16); // aaload: element 0 approx.
}

// -- Profitability condition 1: loads without dependents ------------------

TEST(PlannerTest, LoadsWithoutUsersAreNotPrefetched) {
  // A strided load with no consumers fails profitability condition 1.
  vm::TypeTable Types;
  auto *Cls = Types.addClass("Pt");
  const vm::FieldDesc *FX = Types.addField(Cls, "x", ir::Type::F64);
  for (int I = 0; I < 9; ++I)
    Types.addField(Cls, "p" + std::to_string(I), ir::Type::F64);

  vm::HeapConfig HC;
  HC.HeapBytes = 4 << 20;
  vm::Heap Heap(Types, HC);
  const unsigned N = 256;
  vm::Addr Arr = Heap.allocArray(ir::Type::Ref, N);
  for (unsigned I = 0; I != N; ++I) {
    vm::Addr P = Heap.allocObject(*Cls);
    Heap.store(Heap.elemAddr(Arr, I), ir::Type::Ref, P);
  }

  ir::Module M;
  ir::IRBuilder B(M);
  Method *Fn = M.addMethod("f", Type::I32, {Type::Ref, Type::I32});
  B.setInsertPoint(Fn->addBlock("entry"));
  workloads::LoopNest L(B, "i");
  PhiInst *I = L.civ(B.i32(0));
  L.beginBody(B.cmpLt(I, Fn->arg(1)));
  Value *P = B.aload(Fn->arg(0), I, Type::Ref);
  B.getField(P, FX); // Strided (80B pitch) but no users.
  L.close();
  B.ret(B.i32(0));
  Fn->recomputePreds();

  analysis::DominatorTree DT(Fn);
  analysis::LoopInfo LI(Fn, DT);
  analysis::DefUse DU(Fn);
  LoadDependenceGraph G(LI.topLevelLoops()[0], LI);
  ObjectInspector Insp(Heap, LI);
  InspectionResult R = Insp.inspect(Fn, {Arr, N}, LI.topLevelLoops()[0], G);
  annotateStrides(G, R, StrideOptions());

  PlannerOptions Opts;
  Opts.LineBytes = 64;
  LoopPlan Plan = planPrefetches(G, DU, Opts);
  for (const AnchorPlan &A : Plan.Anchors)
    EXPECT_NE(cast<GetFieldInst>(A.Anchor)->field(), FX);
  EXPECT_TRUE(Plan.Anchors.empty());
}

} // namespace

// -- Weak-stride exploitation (Wu taxonomy extension) ----------------------

TEST(PlannerTest, WeakStridesExploitedOnlyWhenEnabled) {
  // Build a graph whose anchor has a weak single stride (60% dominant) by
  // synthesizing the trace directly.
  PlannerFixture F;
  InspectionResult R;
  R.ReachedTarget = true;
  vm::Addr A = 0x100000000ull;
  for (unsigned I = 0; I != 21; ++I) {
    R.Trace[F.W.L4].push_back({I, A});
    // 60% of deltas are +80; the rest are distinct jumps.
    A += (I % 5 < 3) ? 80 : 4096 + I * 64;
  }
  LoadDependenceGraph G(F.LI.topLevelLoops()[0], F.LI);
  annotateStrides(G, R, StrideOptions());

  const LdgNode &N4 = G.nodes()[*G.nodeFor(F.W.L4)];
  EXPECT_FALSE(N4.InterStride.has_value());
  EXPECT_EQ(N4.InterKind, StridePatternKind::WeakSingle);
  EXPECT_EQ(N4.ExtendedStride, 80);

  analysis::DefUse DU(F.W.Find);
  PlannerOptions Opts;
  Opts.LineBytes = 64;
  LoopPlan Off = planPrefetches(G, DU, Opts);
  EXPECT_TRUE(Off.Anchors.empty()); // Paper default: strong-only.

  Opts.ExploitWeakStrides = true;
  LoopPlan On = planPrefetches(G, DU, Opts);
  ASSERT_EQ(On.Anchors.size(), 1u);
  EXPECT_TRUE(On.Anchors[0].EmitPlain);
  EXPECT_EQ(On.Anchors[0].InterStride, 80);
}
