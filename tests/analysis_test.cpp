//===- tests/analysis_test.cpp - CFG, dominators, loops, def-use ----------===//

#include "analysis/DefUse.h"
#include "analysis/LoopInfo.h"
#include "ir/IRBuilder.h"

#include <gtest/gtest.h>

using namespace spf;
using namespace spf::analysis;
using namespace spf::ir;

namespace {

/// Builds:  entry -> h1 -> b1 -> h2 -> b2 -> h2(latch) ; h2 -> l1latch ->
/// h1 ; h1 -> exit — a classic doubly nested loop.
struct NestedLoopMethod {
  Module M;
  Method *Fn;
  BasicBlock *Entry, *H1, *B1, *H2, *B2, *L1Latch, *Exit;

  NestedLoopMethod() {
    Fn = M.addMethod("nested", Type::Void, {Type::I32});
    IRBuilder B(M);
    Entry = Fn->addBlock("entry");
    H1 = Fn->addBlock("h1");
    B1 = Fn->addBlock("b1");
    H2 = Fn->addBlock("h2");
    B2 = Fn->addBlock("b2");
    L1Latch = Fn->addBlock("l1latch");
    Exit = Fn->addBlock("exit");

    B.setInsertPoint(Entry);
    B.jump(H1);
    B.setInsertPoint(H1);
    B.br(Fn->arg(0), B1, Exit);
    B.setInsertPoint(B1);
    B.jump(H2);
    B.setInsertPoint(H2);
    B.br(Fn->arg(0), B2, L1Latch);
    B.setInsertPoint(B2);
    B.jump(H2); // Inner back edge.
    B.setInsertPoint(L1Latch);
    B.jump(H1); // Outer back edge.
    B.setInsertPoint(Exit);
    B.ret();
    Fn->recomputePreds();
  }
};

TEST(CfgTest, ReversePostOrderStartsAtEntryAndRespectsEdges) {
  NestedLoopMethod N;
  auto RPO = reversePostOrder(N.Fn);
  ASSERT_EQ(RPO.size(), 7u);
  EXPECT_EQ(RPO.front(), N.Entry);
  auto Index = rpoIndexMap(RPO);
  // A block must come after at least one predecessor (except headers via
  // back edges); entry < h1 < b1 < h2.
  EXPECT_LT(Index[N.Entry], Index[N.H1]);
  EXPECT_LT(Index[N.H1], Index[N.B1]);
  EXPECT_LT(Index[N.B1], Index[N.H2]);
}

TEST(CfgTest, UnreachableBlocksExcluded) {
  Module M;
  Method *Fn = M.addMethod("f", Type::Void, {});
  IRBuilder B(M);
  BasicBlock *Entry = Fn->addBlock("entry");
  BasicBlock *Dead = Fn->addBlock("dead");
  B.setInsertPoint(Entry);
  B.ret();
  B.setInsertPoint(Dead);
  B.ret();
  auto RPO = reversePostOrder(Fn);
  EXPECT_EQ(RPO.size(), 1u);
  EXPECT_EQ(RPO[0], Entry);
}

TEST(DominatorTest, NestedLoopDominance) {
  NestedLoopMethod N;
  DominatorTree DT(N.Fn);

  EXPECT_EQ(DT.idom(N.Entry), nullptr);
  EXPECT_EQ(DT.idom(N.H1), N.Entry);
  EXPECT_EQ(DT.idom(N.B1), N.H1);
  EXPECT_EQ(DT.idom(N.H2), N.B1);
  EXPECT_EQ(DT.idom(N.B2), N.H2);
  EXPECT_EQ(DT.idom(N.L1Latch), N.H2);
  EXPECT_EQ(DT.idom(N.Exit), N.H1);

  EXPECT_TRUE(DT.dominates(N.Entry, N.Exit));
  EXPECT_TRUE(DT.dominates(N.H1, N.B2));
  EXPECT_TRUE(DT.dominates(N.H2, N.H2));
  EXPECT_FALSE(DT.dominates(N.B2, N.L1Latch));
  EXPECT_FALSE(DT.dominates(N.Exit, N.H1));
}

TEST(DominatorTest, DiamondJoinDominatedByFork) {
  Module M;
  Method *Fn = M.addMethod("f", Type::Void, {Type::I32});
  IRBuilder B(M);
  BasicBlock *Entry = Fn->addBlock("entry");
  BasicBlock *T = Fn->addBlock("t");
  BasicBlock *F = Fn->addBlock("f");
  BasicBlock *Join = Fn->addBlock("join");
  B.setInsertPoint(Entry);
  B.br(Fn->arg(0), T, F);
  B.setInsertPoint(T);
  B.jump(Join);
  B.setInsertPoint(F);
  B.jump(Join);
  B.setInsertPoint(Join);
  B.ret();
  Fn->recomputePreds();

  DominatorTree DT(Fn);
  EXPECT_EQ(DT.idom(Join), Entry);
  EXPECT_FALSE(DT.dominates(T, Join));
  EXPECT_FALSE(DT.dominates(F, Join));
}

TEST(LoopInfoTest, FindsNestedLoopsWithCorrectBodies) {
  NestedLoopMethod N;
  DominatorTree DT(N.Fn);
  LoopInfo LI(N.Fn, DT);

  ASSERT_EQ(LI.numLoops(), 2u);
  ASSERT_EQ(LI.topLevelLoops().size(), 1u);
  Loop *Outer = LI.topLevelLoops()[0];
  EXPECT_EQ(Outer->header(), N.H1);
  ASSERT_EQ(Outer->subLoops().size(), 1u);
  Loop *Inner = Outer->subLoops()[0];
  EXPECT_EQ(Inner->header(), N.H2);

  EXPECT_EQ(Inner->parent(), Outer);
  EXPECT_EQ(Outer->parent(), nullptr);
  EXPECT_EQ(Outer->depth(), 1u);
  EXPECT_EQ(Inner->depth(), 2u);

  // The outer loop's block set includes the inner loop's blocks.
  EXPECT_TRUE(Outer->contains(N.B2));
  EXPECT_TRUE(Outer->contains(N.H2));
  EXPECT_FALSE(Outer->contains(N.Exit));
  EXPECT_FALSE(Inner->contains(N.L1Latch));
  EXPECT_TRUE(Inner->contains(N.B2));

  // Innermost mapping.
  EXPECT_EQ(LI.loopFor(N.B2), Inner);
  EXPECT_EQ(LI.loopFor(N.B1), Outer);
  EXPECT_EQ(LI.loopFor(N.Exit), nullptr);

  // Latches.
  auto OuterLatches = Outer->latches();
  ASSERT_EQ(OuterLatches.size(), 1u);
  EXPECT_EQ(OuterLatches[0], N.L1Latch);
}

TEST(LoopInfoTest, PostOrderVisitsInnerBeforeOuter) {
  NestedLoopMethod N;
  DominatorTree DT(N.Fn);
  LoopInfo LI(N.Fn, DT);
  auto Loops = LI.loopsPostOrder();
  ASSERT_EQ(Loops.size(), 2u);
  EXPECT_EQ(Loops[0]->header(), N.H2); // Inner first.
  EXPECT_EQ(Loops[1]->header(), N.H1);
}

TEST(LoopInfoTest, SelfLoopAndSiblingLoops) {
  Module M;
  Method *Fn = M.addMethod("f", Type::Void, {Type::I32});
  IRBuilder B(M);
  BasicBlock *Entry = Fn->addBlock("entry");
  BasicBlock *S = Fn->addBlock("self");
  BasicBlock *Mid = Fn->addBlock("mid");
  BasicBlock *L2H = Fn->addBlock("l2h");
  BasicBlock *Exit = Fn->addBlock("exit");
  B.setInsertPoint(Entry);
  B.jump(S);
  B.setInsertPoint(S);
  B.br(Fn->arg(0), S, Mid); // Self loop.
  B.setInsertPoint(Mid);
  B.jump(L2H);
  B.setInsertPoint(L2H);
  B.br(Fn->arg(0), L2H, Exit); // Second self loop.
  B.setInsertPoint(Exit);
  B.ret();
  Fn->recomputePreds();

  DominatorTree DT(Fn);
  LoopInfo LI(Fn, DT);
  ASSERT_EQ(LI.numLoops(), 2u);
  EXPECT_EQ(LI.topLevelLoops().size(), 2u);
  // Program order: the 'self' loop first.
  EXPECT_EQ(LI.topLevelLoops()[0]->header(), S);
  EXPECT_EQ(LI.topLevelLoops()[1]->header(), L2H);
  EXPECT_EQ(LI.topLevelLoops()[0]->blocks().size(), 1u);
}

TEST(LoopInfoTest, MultiLatchLoopsMerge) {
  Module M;
  Method *Fn = M.addMethod("f", Type::Void, {Type::I32});
  IRBuilder B(M);
  BasicBlock *Entry = Fn->addBlock("entry");
  BasicBlock *H = Fn->addBlock("h");
  BasicBlock *A = Fn->addBlock("a");
  BasicBlock *L1 = Fn->addBlock("latch1");
  BasicBlock *L2 = Fn->addBlock("latch2");
  BasicBlock *Exit = Fn->addBlock("exit");
  B.setInsertPoint(Entry);
  B.jump(H);
  B.setInsertPoint(H);
  B.br(Fn->arg(0), A, Exit);
  B.setInsertPoint(A);
  B.br(Fn->arg(0), L1, L2);
  B.setInsertPoint(L1);
  B.jump(H);
  B.setInsertPoint(L2);
  B.jump(H);
  B.setInsertPoint(Exit);
  B.ret();
  Fn->recomputePreds();

  DominatorTree DT(Fn);
  LoopInfo LI(Fn, DT);
  ASSERT_EQ(LI.numLoops(), 1u); // One loop despite two back edges.
  EXPECT_EQ(LI.topLevelLoops()[0]->latches().size(), 2u);
}

TEST(DefUseTest, TracksAllUsers) {
  Module M;
  Method *Fn = M.addMethod("f", Type::I32, {Type::I32});
  IRBuilder B(M);
  B.setInsertPoint(Fn->addBlock("entry"));
  Value *A = B.add(Fn->arg(0), B.i32(1));
  Value *C = B.mul(A, A); // Two uses of A in one instruction.
  Value *D = B.sub(C, A); // Third use.
  B.ret(D);

  DefUse DU(Fn);
  EXPECT_EQ(DU.usersOf(A).size(), 3u);
  EXPECT_EQ(DU.usersOf(C).size(), 1u);
  EXPECT_EQ(DU.usersOf(D).size(), 1u); // The ret.
  EXPECT_TRUE(DU.hasUsers(Fn->arg(0)));

  // An unused value has no users.
  Value *Dead = B.i32(123456);
  EXPECT_FALSE(DU.hasUsers(Dead));
}

} // namespace
