//===- tests/shutdown_test.cpp - Graceful shutdown and sweep deadlines ----===//
//
// The resource-governance contract: any stop source (shutdown signal,
// global sweep deadline, external stop) turns a running sweep into a
// *valid partial result* — finished cells are real and journaled,
// unfinished ones are quarantined "skipped" and never journaled, and a
// --resume of the same journal completes the sweep with per-cell records
// byte-identical to an uninterrupted run.
//
//===----------------------------------------------------------------------===//

#include "harness/Experiment.h"
#include "harness/Journal.h"
#include "harness/JsonWriter.h"
#include "support/Shutdown.h"
#include "workloads/Runner.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <csignal>
#include <sstream>
#include <string>

using namespace spf;
using namespace spf::harness;

namespace {

/// A scratch journal path, removed on destruction.
struct TempJournal {
  std::string Path;
  explicit TempJournal(const char *Name)
      : Path(std::string(::testing::TempDir()) + Name) {
    std::remove(Path.c_str());
  }
  ~TempJournal() { std::remove(Path.c_str()); }
};

harness::ExperimentPlan tinyPlan(unsigned Cells) {
  harness::ExperimentPlan Plan;
  for (unsigned I = 0; I != Cells; ++I) {
    harness::ExperimentCell C;
    C.Group = "shutdown-test";
    C.Spec = workloads::findWorkload("jess");
    C.Opt.Config.Scale = 0.05;
    C.Opt.Algo = I % 2 ? workloads::Algorithm::InterIntra
                       : workloads::Algorithm::Baseline;
    Plan.add(std::move(C));
  }
  return Plan;
}

std::string recordJson(const CellResult &C) {
  std::ostringstream OS;
  JsonWriter J(OS);
  writeCellRecordJson(J, C);
  return OS.str();
}

// -- The latch itself --------------------------------------------------------

TEST(ShutdownLatchTest, RequestAndResetRoundTrip) {
  support::resetShutdownForTests();
  EXPECT_FALSE(support::shutdownRequested());
  EXPECT_EQ(support::shutdownSignal(), 0);

  support::requestShutdown(SIGTERM);
  EXPECT_TRUE(support::shutdownRequested());
  EXPECT_EQ(support::shutdownSignal(), SIGTERM);

  support::resetShutdownForTests();
  EXPECT_FALSE(support::shutdownRequested());
}

// -- Deterministic interruption via ExternalStop -----------------------------

TEST(GovernorTest, ExternalStopYieldsAValidPartialResult) {
  support::resetShutdownForTests();
  harness::ExperimentPlan Plan = tinyPlan(6);

  // Serial run with a stop that fires on its third poll: the governor
  // polls once at admission and once at the attempt head, so cell 0 runs
  // for real and every later cell is skipped — deterministically, because
  // at Jobs=1 the poll order is the plan order.
  RunPlanOptions Opts;
  Opts.Trace.Enabled = false;
  unsigned Polls = 0;
  Opts.Governor.ExternalStop = [&Polls]() mutable { return ++Polls > 2; };
  harness::ExperimentResult R = harness::runPlan(Plan, 1, Opts);

  EXPECT_TRUE(R.Interrupted);
  EXPECT_EQ(R.InterruptReason, "external stop");
  EXPECT_TRUE(R.ok()) << (R.Failures.empty() ? "" : R.Failures[0]);
  EXPECT_GT(R.CellsSkipped, 0u);
  EXPECT_LT(R.CellsSkipped, 6u); // At least one cell really ran.

  unsigned SkippedQuarantines = 0;
  for (const QuarantineRecord &Q : R.Quarantine)
    if (Q.Kind == "skipped") {
      ++SkippedQuarantines;
      EXPECT_FALSE(R.Cells[Q.CellIndex].Ran);
      EXPECT_TRUE(R.Cells[Q.CellIndex].Skipped);
    }
  EXPECT_EQ(SkippedQuarantines, R.CellsSkipped);

  // The report is valid and marked interrupted.
  std::ostringstream OS;
  writeJsonReport(OS, Plan, R, 0.05, 1);
  std::string S = OS.str();
  EXPECT_NE(S.find("\"interrupted\":true"), std::string::npos);
  EXPECT_NE(S.find("\"interrupt_reason\":\"external stop\""),
            std::string::npos);
  EXPECT_NE(S.find("\"kind\":\"skipped\""), std::string::npos);
}

TEST(GovernorTest, EpochGcCellsStillYieldValidPartialResults) {
  // Multi-epoch cells with a perturbing GC variant and the prefetch-
  // health governor spend much of their time inside boundary collections
  // and re-decisions; a stop request must still turn the sweep into a
  // valid partial result (the GC checkpoint and the attempt-head polls
  // keep firing through the new variant phases).
  support::resetShutdownForTests();
  harness::ExperimentPlan Plan = tinyPlan(4);
  for (harness::ExperimentCell &C : Plan.cells()) {
    C.Opt.Epochs = 3;
    C.Opt.GcVariant = vm::GcVariant::AddressShuffle;
    C.Opt.Governor = true;
  }

  RunPlanOptions Opts;
  Opts.Trace.Enabled = false;
  unsigned Polls = 0;
  Opts.Governor.ExternalStop = [&Polls]() mutable { return ++Polls > 2; };
  harness::ExperimentResult R = harness::runPlan(Plan, 1, Opts);

  EXPECT_TRUE(R.Interrupted);
  EXPECT_TRUE(R.ok()) << (R.Failures.empty() ? "" : R.Failures[0]);
  EXPECT_GT(R.CellsSkipped, 0u);
  EXPECT_LT(R.CellsSkipped, 4u);
  // The cell that did run completed all of its epochs and its boundary
  // collections.
  ASSERT_TRUE(R.Cells[0].Ran);
  EXPECT_EQ(R.Cells[0].Run.Epochs, 3u);
  EXPECT_GE(R.Cells[0].Run.GcCollections, 2u);
}

TEST(GovernorTest, UninterruptedRunIsNotMarkedInterrupted) {
  support::resetShutdownForTests();
  harness::ExperimentPlan Plan = tinyPlan(2);
  RunPlanOptions Opts;
  Opts.Trace.Enabled = false;
  Opts.Governor.Graceful = true;
  Opts.Governor.SweepDeadlineSec = 3600.0; // Far away.
  harness::ExperimentResult R = harness::runPlan(Plan, 2, Opts);
  EXPECT_FALSE(R.Interrupted);
  EXPECT_EQ(R.CellsSkipped, 0u);
  EXPECT_TRUE(R.ok());
}

// -- The graceful-shutdown latch through runPlan -----------------------------

TEST(GovernorTest, LatchedShutdownSignalSkipsEveryCell) {
  support::resetShutdownForTests();
  support::requestShutdown(SIGTERM);
  harness::ExperimentPlan Plan = tinyPlan(3);
  RunPlanOptions Opts;
  Opts.Trace.Enabled = false;
  Opts.Governor.Graceful = true;
  harness::ExperimentResult R = harness::runPlan(Plan, 2, Opts);
  support::resetShutdownForTests();

  EXPECT_TRUE(R.Interrupted);
  EXPECT_EQ(R.InterruptReason, "signal 15");
  EXPECT_EQ(R.CellsSkipped, 3u);
  EXPECT_TRUE(R.ok()); // Skipped cells are not failures.
  for (const CellResult &C : R.Cells) {
    EXPECT_FALSE(C.Ran);
    EXPECT_TRUE(C.Skipped);
  }
}

TEST(GovernorTest, UngovernedRunIgnoresTheLatch) {
  // Library users who don't opt in (Graceful=false, no deadline) keep the
  // old semantics even if some signal latched the process flag.
  support::resetShutdownForTests();
  support::requestShutdown(SIGTERM);
  harness::ExperimentPlan Plan = tinyPlan(1);
  RunPlanOptions Opts;
  Opts.Trace.Enabled = false;
  harness::ExperimentResult R = harness::runPlan(Plan, 1, Opts);
  support::resetShutdownForTests();
  EXPECT_FALSE(R.Interrupted);
  EXPECT_TRUE(R.Cells[0].Ran);
}

// -- A tiny sweep deadline ---------------------------------------------------

TEST(GovernorTest, ExpiredSweepDeadlineSkipsAdmission) {
  support::resetShutdownForTests();
  harness::ExperimentPlan Plan = tinyPlan(3);
  RunPlanOptions Opts;
  Opts.Trace.Enabled = false;
  // Deadline so small it expires before the first admission check.
  Opts.Governor.SweepDeadlineSec = 1e-9;
  harness::ExperimentResult R = harness::runPlan(Plan, 2, Opts);
  EXPECT_TRUE(R.Interrupted);
  EXPECT_EQ(R.InterruptReason, "sweep deadline");
  EXPECT_EQ(R.CellsSkipped, 3u);
  EXPECT_TRUE(R.ok());
}

// -- Interrupt + journal + resume = byte-identical completion ----------------

TEST(GovernorResumeTest, ResumeCompletesAnInterruptedJournalByteIdentically) {
  support::resetShutdownForTests();
  TempJournal T("shutdown_resume.jsonl");
  harness::ExperimentPlan Plan = tinyPlan(6);

  // Reference: the uninterrupted run (no journal, same plan).
  RunPlanOptions Ref;
  Ref.Trace.Enabled = false;
  harness::ExperimentResult Full = harness::runPlan(Plan, 1, Ref);
  ASSERT_TRUE(Full.ok());

  // Interrupted journaled run: stop after two admissions.
  {
    RunPlanOptions Opts;
    Opts.Trace.Enabled = false;
    Opts.Journal.Path = T.Path;
    unsigned Admitted = 0;
    Opts.Governor.ExternalStop = [&Admitted]() mutable {
      return ++Admitted > 2;
    };
    harness::ExperimentResult Part = harness::runPlan(Plan, 1, Opts);
    ASSERT_TRUE(Part.Interrupted);
    ASSERT_GT(Part.CellsSkipped, 0u);
    // Skipped cells are NOT journaled — that is what makes resume re-run
    // them rather than grafting a hole.
    EXPECT_EQ(Part.JournalAppended + Part.CellsSkipped, 6u);
  }

  // Resume: grafts the finished cells, runs only the skipped ones.
  RunPlanOptions Res;
  Res.Trace.Enabled = false;
  Res.Journal.Path = T.Path;
  Res.Journal.Resume = true;
  harness::ExperimentResult Done = harness::runPlan(Plan, 2, Res);
  ASSERT_TRUE(Done.ok());
  EXPECT_FALSE(Done.Interrupted);
  EXPECT_GT(Done.JournalGrafted, 0u);
  EXPECT_EQ(Done.JournalGrafted + Done.JournalAppended, 6u);

  // Simulation-identical to the uninterrupted run, cell for cell. (The
  // wall-clock fields of *re-run* cells legitimately differ, so compare
  // the deterministic fields, not raw record bytes, for those.)
  for (unsigned I = 0; I != 6; ++I) {
    EXPECT_EQ(Done.Cells[I].Ran, Full.Cells[I].Ran) << I;
    EXPECT_EQ(Done.run(I).ReturnValue, Full.run(I).ReturnValue) << I;
    EXPECT_EQ(Done.run(I).Retired, Full.run(I).Retired) << I;
    EXPECT_EQ(Done.run(I).Mem, Full.run(I).Mem) << I;
    EXPECT_EQ(Done.run(I).Sites, Full.run(I).Sites) << I;
  }

  // And a second resume grafts everything: the per-cell records are now
  // frozen in the journal, so they reproduce byte-for-byte.
  harness::ExperimentResult Again = harness::runPlan(Plan, 2, Res);
  EXPECT_EQ(Again.JournalGrafted, 6u);
  EXPECT_EQ(Again.JournalAppended, 0u);
  for (unsigned I = 0; I != 6; ++I)
    EXPECT_EQ(recordJson(Again.Cells[I]), recordJson(Done.Cells[I])) << I;
}

} // namespace
