//===- tests/inspect_test.cpp - Object inspection (Section 3.2) -----------===//

#include "TestKernels.h"
#include "core/ObjectInspector.h"
#include "core/StrideAnalysis.h"
#include "workloads/KernelBuilder.h"

#include <gtest/gtest.h>

using namespace spf;
using namespace spf::core;
using namespace spf::ir;
using namespace spf::testkernels;

namespace {

struct JessFixture {
  JessWorld W;
  analysis::DominatorTree DT;
  analysis::LoopInfo LI;

  JessFixture(unsigned N = 64, bool Scramble = true)
      : W(N, Scramble), DT((W.Find->recomputePreds(), W.Find)),
        LI(W.Find, DT) {}

  analysis::Loop *outer() { return LI.topLevelLoops()[0]; }
  analysis::Loop *inner() { return outer()->subLoops()[0]; }

  InspectionResult inspect(analysis::Loop *Target,
                           InspectorOptions Opts = InspectorOptions()) {
    LoadDependenceGraph G(Target, LI);
    ObjectInspector Insp(*W.Heap, LI, Opts);
    return Insp.inspect(W.Find, W.findArgs(), Target, G);
  }
};

TEST(InspectTest, ReachesTargetAndObservesRequestedIterations) {
  JessFixture F;
  InspectionResult R = F.inspect(F.outer());
  EXPECT_TRUE(R.ReachedTarget);
  EXPECT_EQ(R.IterationsObserved, 20u);
  EXPECT_FALSE(R.TargetExitedEarly);
  EXPECT_GT(R.StepsUsed, 0u);
}

TEST(InspectTest, RecordsFirstAddressPerIterationWithRealValues) {
  JessFixture F;
  InspectionResult R = F.inspect(F.outer());

  // L4 = aaload v[i]: its addresses are v+16, v+24, ... — stride 8.
  auto It = R.Trace.find(F.W.L4);
  ASSERT_NE(It, R.Trace.end());
  const auto &Recs = It->second;
  ASSERT_EQ(Recs.size(), 20u);
  vm::Addr V = F.W.Heap->load(F.W.Tv + F.W.TvV->Offset, ir::Type::Ref);
  for (unsigned I = 0; I != Recs.size(); ++I) {
    EXPECT_EQ(Recs[I].Iteration, I);
    EXPECT_EQ(Recs[I].Address, V + vm::ObjectHeaderSize + 8 * I);
  }

  // L1 (tv.ptr) is loop-invariant: same address every iteration.
  const auto &R1 = R.Trace.at(F.W.L1);
  ASSERT_EQ(R1.size(), 20u);
  for (const auto &Rec : R1)
    EXPECT_EQ(Rec.Address, F.W.Tv + F.W.TvPtr->Offset);
}

TEST(InspectTest, L9AddressesFollowTheScrambledTokens) {
  JessFixture F;
  InspectionResult R = F.inspect(F.outer());
  // L9 = getfield tmp.facts: address = token + 16, with tokens scrambled.
  vm::Addr V = F.W.Heap->load(F.W.Tv + F.W.TvV->Offset, ir::Type::Ref);
  const auto &Recs = R.Trace.at(F.W.L9);
  ASSERT_GE(Recs.size(), 19u); // Recorded (nearly) every iteration.
  for (const auto &Rec : Recs) {
    vm::Addr Tok = F.W.Heap->load(
        F.W.Heap->elemAddr(V, Rec.Iteration), ir::Type::Ref);
    EXPECT_EQ(Rec.Address, Tok + F.W.TokFacts->Offset);
  }
}

TEST(InspectTest, InspectionIsSideEffectFree) {
  JessFixture F;
  // Snapshot the whole used heap.
  std::vector<uint8_t> Before(F.W.Heap->bytesUsed());
  for (uint64_t I = 0; I != Before.size(); I += 8) {
    uint64_t V = F.W.Heap->load(F.W.Heap->heapBase() + I, ir::Type::I64);
    memcpy(&Before[I], &V, std::min<uint64_t>(8, Before.size() - I));
  }
  uint64_t UsedBefore = F.W.Heap->bytesUsed();
  uint64_t AllocsBefore = F.W.Heap->allocationCount();

  F.inspect(F.outer());

  EXPECT_EQ(F.W.Heap->bytesUsed(), UsedBefore);
  EXPECT_EQ(F.W.Heap->allocationCount(), AllocsBefore);
  for (uint64_t I = 0; I + 8 <= Before.size(); I += 8) {
    uint64_t V = F.W.Heap->load(F.W.Heap->heapBase() + I, ir::Type::I64);
    uint64_t Old;
    memcpy(&Old, &Before[I], 8);
    ASSERT_EQ(V, Old) << "heap mutated at offset " << I;
  }
}

TEST(InspectTest, CallsAreSkippedSoInnerLoopRunsOncePerOuterIteration) {
  JessFixture F;
  InspectionResult R = F.inspect(F.outer());
  // equals() returns unknown; the unknown-branch policy prefers the
  // shallower successor (continue TokenLoop), so the inner loop is
  // entered once and iterates once per outer iteration.
  auto It = R.SubLoopTrips.find(F.inner());
  ASSERT_NE(It, R.SubLoopTrips.end());
  EXPECT_LE(It->second.average(), 2.0);
  EXPECT_GE(It->second.Entries, 19u);
}

TEST(InspectTest, InnerLoopAsTargetExitsEarlyWithSmallTripCount) {
  JessFixture F;
  InspectionResult R = F.inspect(F.inner());
  EXPECT_TRUE(R.ReachedTarget);
  // When the inner loop itself is inspected, known conditions drive it:
  // j runs to t.size (5) and the loop exits — a small-trip observation.
  EXPECT_TRUE(R.TargetExitedEarly);
  EXPECT_EQ(R.IterationsObserved, 6u); // 5 body iterations + exit check.
}

TEST(InspectTest, StepBudgetAbortsGracefully) {
  JessFixture F;
  InspectorOptions Opts;
  Opts.StepBudget = 40;
  InspectionResult R = F.inspect(F.outer(), Opts);
  EXPECT_LE(R.StepsUsed, 41u);
  EXPECT_LT(R.IterationsObserved, 20u);
}

// -- Store buffering, private heap, pre-target loops ----------------------

struct ScratchWorld {
  vm::TypeTable Types;
  const vm::ClassDesc *Cell;
  const vm::FieldDesc *FVal;
  std::unique_ptr<vm::Heap> Heap;
  ir::Module M;

  ScratchWorld() {
    auto *C = Types.addClass("Cell");
    FVal = Types.addField(C, "v", ir::Type::I32);
    Cell = C;
    vm::HeapConfig HC;
    HC.HeapBytes = 1 << 20;
    Heap = std::make_unique<vm::Heap>(Types, HC);
  }
};

TEST(InspectTest, StoresAreBufferedAndLoadsSeeThem) {
  ScratchWorld S;
  vm::Addr Obj = S.Heap->allocObject(*S.Cell);
  S.Heap->store(Obj + S.FVal->Offset, ir::Type::I32, 5);
  vm::Addr Arr = S.Heap->allocArray(ir::Type::Ref, 8);
  S.Heap->store(S.Heap->elemAddr(Arr, 0), ir::Type::Ref, Obj);

  // loop { c = a[0]; c.v = c.v + 1; sink = aload a[c.v % 8]; }
  // If stores were visible, c.v would grow; buffered stores must still be
  // seen by subsequent loads *within the inspection*.
  IRBuilder B(S.M);
  Method *Fn = S.M.addMethod("f", Type::I32, {Type::Ref, Type::I32});
  B.setInsertPoint(Fn->addBlock("entry"));
  workloads::LoopNest L(B, "i");
  PhiInst *I = L.civ(B.i32(0));
  L.beginBody(B.cmpLt(I, Fn->arg(1)));
  Value *C = B.aload(Fn->arg(0), B.i32(0), Type::Ref);
  Value *V = B.getField(C, S.FVal);
  B.putField(C, S.FVal, B.add(V, B.i32(1)));
  Instruction *Probe =
      cast<Instruction>(B.aload(Fn->arg(0), B.rem(B.getField(C, S.FVal),
                                                  B.i32(8)),
                                Type::Ref));
  L.close();
  B.ret(B.i32(0));
  Fn->recomputePreds();
  ASSERT_TRUE(verifyMethod(Fn));

  analysis::DominatorTree DT(Fn);
  analysis::LoopInfo LI(Fn, DT);
  LoadDependenceGraph G(LI.topLevelLoops()[0], LI);
  ObjectInspector Insp(*S.Heap, LI);
  InspectionResult R =
      Insp.inspect(Fn, {Arr, 100}, LI.topLevelLoops()[0], G);

  // Probe index = (5 + iter + 1) % 8: the buffered increments are seen.
  const auto &Recs = R.Trace.at(Probe);
  ASSERT_GE(Recs.size(), 8u);
  for (const auto &Rec : Recs) {
    uint64_t Idx = (5 + Rec.Iteration + 1) % 8;
    EXPECT_EQ(Rec.Address, S.Heap->elemAddr(Arr, Idx));
  }
  // And the real heap still holds 5.
  EXPECT_EQ(S.Heap->load(Obj + S.FVal->Offset, ir::Type::I32), 5u);
}

TEST(InspectTest, AllocationsGoToThePrivateHeap) {
  ScratchWorld S;
  // loop { c = new Cell; c.v = 9; acc = c.v; probe = a[acc % 4] }
  IRBuilder B(S.M);
  Method *Fn = S.M.addMethod("f", Type::I32, {Type::Ref, Type::I32});
  B.setInsertPoint(Fn->addBlock("entry"));
  workloads::LoopNest L(B, "i");
  PhiInst *I = L.civ(B.i32(0));
  L.beginBody(B.cmpLt(I, Fn->arg(1)));
  Value *C = B.newObject(S.Cell);
  B.putField(C, S.FVal, B.i32(9));
  Value *V = B.getField(C, S.FVal); // Must read 9 from the shadow store.
  Instruction *Probe = cast<Instruction>(
      B.aload(Fn->arg(0), B.rem(V, B.i32(4)), Type::I32));
  L.close();
  B.ret(B.i32(0));
  ASSERT_TRUE(verifyMethod(Fn));

  vm::Addr Arr = S.Heap->allocArray(ir::Type::I32, 8);
  uint64_t UsedBefore = S.Heap->bytesUsed();

  analysis::DominatorTree DT(Fn);
  analysis::LoopInfo LI(Fn, DT);
  LoadDependenceGraph G(LI.topLevelLoops()[0], LI);
  ObjectInspector Insp(*S.Heap, LI);
  InspectionResult R = Insp.inspect(Fn, {Arr, 50}, LI.topLevelLoops()[0], G);

  EXPECT_EQ(S.Heap->bytesUsed(), UsedBefore); // Nothing really allocated.
  const auto &Recs = R.Trace.at(Probe);
  ASSERT_GE(Recs.size(), 10u);
  for (const auto &Rec : Recs)
    EXPECT_EQ(Rec.Address, S.Heap->elemAddr(Arr, 9 % 4)); // v == 9 seen.
}

TEST(InspectTest, PreTargetLoopsRunOnce) {
  ScratchWorld S;
  // pre: for (k = 0; k < 1000; k++) base++;   <- interpreted once
  // target: for (i = 0; i < n; i++) probe = a[(base + i) % 8];
  IRBuilder B(S.M);
  Method *Fn = S.M.addMethod("f", Type::I32, {Type::Ref, Type::I32});
  B.setInsertPoint(Fn->addBlock("entry"));

  workloads::LoopNest Pre(B, "pre");
  PhiInst *K = Pre.civ(B.i32(0));
  PhiInst *Base = Pre.addCarried(B.i32(0));
  Pre.beginBody(B.cmpLt(K, B.i32(1000)));
  Pre.setNext(Base, B.add(Base, B.i32(1)));
  Pre.close();

  workloads::LoopNest L(B, "target");
  PhiInst *I = L.civ(B.i32(0));
  L.beginBody(B.cmpLt(I, Fn->arg(1)));
  Instruction *Probe = cast<Instruction>(B.aload(
      Fn->arg(0), B.rem(B.add(Base, I), B.i32(8)), Type::I32));
  L.close();
  B.ret(B.i32(0));
  ASSERT_TRUE(verifyMethod(Fn));

  vm::Addr Arr = S.Heap->allocArray(ir::Type::I32, 8);

  analysis::DominatorTree DT(Fn);
  analysis::LoopInfo LI(Fn, DT);
  // The target is the SECOND top-level loop.
  ASSERT_EQ(LI.topLevelLoops().size(), 2u);
  analysis::Loop *Target = LI.topLevelLoops()[1];
  LoadDependenceGraph G(Target, LI);
  ObjectInspector Insp(*S.Heap, LI);
  InspectionResult R = Insp.inspect(Fn, {Arr, 100}, Target, G);

  EXPECT_TRUE(R.ReachedTarget);
  // The pre-loop ran once, so base == 1 (not 1000): the probe addresses
  // start at element (1 + 0) % 8 = 1.
  const auto &Recs = R.Trace.at(Probe);
  ASSERT_GE(Recs.size(), 8u);
  EXPECT_EQ(Recs[0].Address, S.Heap->elemAddr(Arr, 1));
  // And the inspection spent nowhere near 1000 pre-loop iterations.
  EXPECT_LT(R.StepsUsed, 400u);
}

} // namespace

// -- Inter-procedural inspection (the paper's discussed extension) ---------

namespace followcalls {

using namespace spf;
using namespace spf::core;
using namespace spf::testkernels;

TEST(InspectFollowCallsTest, EqualsResultBecomesKnown) {
  // With FollowCalls, the inner loop's equals() invocation is stepped
  // into and its result is a concrete value: the inner loop executes its
  // real (data-dependent) trip counts instead of the unknown-branch
  // heuristic's single iteration.
  JessWorld W(64, /*Scramble=*/true);
  W.Find->recomputePreds();
  analysis::DominatorTree DT(W.Find);
  analysis::LoopInfo LI(W.Find, DT);
  analysis::Loop *Outer = LI.topLevelLoops()[0];
  analysis::Loop *Inner = Outer->subLoops()[0];
  LoadDependenceGraph G(Outer, LI);

  InspectorOptions Opts;
  Opts.FollowCalls = true;
  ObjectInspector Insp(*W.Heap, LI, Opts);
  InspectionResult R = Insp.inspect(W.Find, W.findArgs(), Outer, G);

  ASSERT_TRUE(R.ReachedTarget);
  // The query token matches no scanned token on every early iteration, so
  // the real inner-loop trip is small but exact; crucially the stride
  // discoveries are the same as with skipped calls.
  annotateStrides(G, R, StrideOptions());
  EXPECT_TRUE(G.nodes()[*G.nodeFor(W.L4)].InterStride.has_value());
  LdgEdge *E = G.edgeBetween(*G.nodeFor(W.L9), *G.nodeFor(W.L10));
  ASSERT_NE(E, nullptr);
  EXPECT_TRUE(E->IntraStride.has_value());
  EXPECT_EQ(*E->IntraStride, 24);
  EXPECT_NE(R.SubLoopTrips.find(Inner), R.SubLoopTrips.end());
}

TEST(InspectFollowCallsTest, FollowingCostsMoreSteps) {
  // The paper's trade-off: accuracy up, compilation time up.
  JessWorld W(64, true);
  W.Find->recomputePreds();
  analysis::DominatorTree DT(W.Find);
  analysis::LoopInfo LI(W.Find, DT);
  analysis::Loop *Outer = LI.topLevelLoops()[0];
  LoadDependenceGraph G(Outer, LI);

  ObjectInspector Plain(*W.Heap, LI);
  InspectionResult RPlain = Plain.inspect(W.Find, W.findArgs(), Outer, G);

  InspectorOptions Opts;
  Opts.FollowCalls = true;
  ObjectInspector Follow(*W.Heap, LI, Opts);
  InspectionResult RFollow = Follow.inspect(W.Find, W.findArgs(), Outer, G);

  EXPECT_GT(RFollow.StepsUsed, RPlain.StepsUsed);
}

TEST(InspectFollowCallsTest, RecursionIsDepthLimited) {
  // A self-recursive callee must not hang the inspector.
  ScratchWorld S;
  IRBuilder B(S.M);
  Method *Rec = S.M.addMethod("rec", Type::I32, {Type::I32});
  {
    BasicBlock *Entry = Rec->addBlock("entry");
    BasicBlock *Base = Rec->addBlock("base");
    BasicBlock *Call = Rec->addBlock("call");
    B.setInsertPoint(Entry);
    B.br(B.cmpLe(Rec->arg(0), B.i32(0)), Base, Call);
    B.setInsertPoint(Base);
    B.ret(B.i32(1));
    B.setInsertPoint(Call);
    Value *Sub = B.call(Rec, Type::I32, {B.sub(Rec->arg(0), B.i32(1))});
    B.ret(B.add(Sub, B.i32(1)));
  }

  Method *Fn = S.M.addMethod("f", Type::I32, {Type::Ref, Type::I32});
  B.setInsertPoint(Fn->addBlock("entry"));
  workloads::LoopNest L(B, "i");
  PhiInst *I = L.civ(B.i32(0));
  L.beginBody(B.cmpLt(I, Fn->arg(1)));
  Value *V = B.call(Rec, Type::I32, {B.i32(1000000)}); // Deep recursion.
  B.aload(Fn->arg(0), B.rem(V, B.i32(4)), Type::I32);
  L.close();
  B.ret(B.i32(0));
  ASSERT_TRUE(verifyMethod(Fn));

  vm::Addr Arr = S.Heap->allocArray(ir::Type::I32, 8);
  Fn->recomputePreds();
  analysis::DominatorTree DT(Fn);
  analysis::LoopInfo LI(Fn, DT);
  LoadDependenceGraph G(LI.topLevelLoops()[0], LI);
  InspectorOptions Opts;
  Opts.FollowCalls = true;
  Opts.MaxCallDepth = 3;
  ObjectInspector Insp(*S.Heap, LI, Opts);
  InspectionResult R = Insp.inspect(Fn, {Arr, 50}, LI.topLevelLoops()[0], G);
  EXPECT_TRUE(R.ReachedTarget);
  EXPECT_LE(R.StepsUsed, InspectorOptions().StepBudget + 1);
}

TEST(InspectFollowCallsTest, CalleeStoresAreBufferedToo) {
  // A callee that increments a field: following it must keep the side
  // effect in the shared store buffer, visible to the caller's loads but
  // never written to the real heap.
  ScratchWorld S;
  IRBuilder B(S.M);
  Method *Bump = S.M.addMethod("bump", Type::Void, {Type::Ref});
  B.setInsertPoint(Bump->addBlock("entry"));
  Value *Old = B.getField(Bump->arg(0), S.FVal);
  B.putField(Bump->arg(0), S.FVal, B.add(Old, B.i32(1)));
  B.ret();

  Method *Fn = S.M.addMethod("f", Type::I32, {Type::Ref, Type::Ref,
                                              Type::I32});
  B.setInsertPoint(Fn->addBlock("entry"));
  workloads::LoopNest L(B, "i");
  PhiInst *I = L.civ(B.i32(0));
  L.beginBody(B.cmpLt(I, Fn->arg(2)));
  B.call(Bump, Type::Void, {Fn->arg(1)});
  Value *V = B.getField(Fn->arg(1), S.FVal);
  Instruction *Probe = cast<Instruction>(
      B.aload(Fn->arg(0), B.rem(V, B.i32(8)), Type::I32));
  L.close();
  B.ret(B.i32(0));
  ASSERT_TRUE(verifyMethod(Fn));

  vm::Addr Arr = S.Heap->allocArray(ir::Type::I32, 8);
  vm::Addr Obj = S.Heap->allocObject(*S.Cell);
  S.Heap->store(Obj + S.FVal->Offset, ir::Type::I32, 3);

  Fn->recomputePreds();
  analysis::DominatorTree DT(Fn);
  analysis::LoopInfo LI(Fn, DT);
  LoadDependenceGraph G(LI.topLevelLoops()[0], LI);
  InspectorOptions Opts;
  Opts.FollowCalls = true;
  ObjectInspector Insp(*S.Heap, LI, Opts);
  InspectionResult R =
      Insp.inspect(Fn, {Arr, Obj, 20}, LI.topLevelLoops()[0], G);

  // Iteration k loads (3 + k + 1) % 8.
  const auto &Recs = R.Trace.at(Probe);
  ASSERT_GE(Recs.size(), 8u);
  for (const auto &Rec : Recs)
    EXPECT_EQ(Rec.Address, S.Heap->elemAddr(Arr, (3 + Rec.Iteration + 1) % 8));
  // Real heap untouched.
  EXPECT_EQ(S.Heap->load(Obj + S.FVal->Offset, ir::Type::I32), 3u);
}

} // namespace followcalls
