//===- tests/greedy_test.cpp - Greedy prefetching baseline ----------------===//

#include "core/GreedyPrefetch.h"
#include "exec/Interpreter.h"
#include "ir/Verifier.h"
#include "workloads/KernelBuilder.h"
#include "workloads/Runner.h"

#include <gtest/gtest.h>

using namespace spf;
using namespace spf::core;
using namespace spf::ir;

namespace {

unsigned countPrefetches(Method *M) {
  unsigned N = 0;
  for (const auto &BB : M->blocks())
    for (const auto &I : BB->instructions())
      N += I->opcode() == Opcode::Prefetch;
  return N;
}

TEST(GreedyTest, FindsThePointerChaseInJavac) {
  workloads::WorkloadConfig Cfg;
  Cfg.Scale = 0.02;
  workloads::BuiltWorkload W = workloads::findWorkload("javac")->Build(Cfg);
  Method *Hot = W.CompileUnits[0].M;

  GreedyResult R = runGreedyPrefetch(Hot);
  EXPECT_GE(R.RecurrencesFound, 1u);
  EXPECT_GE(R.Prefetches, 1u);
  EXPECT_TRUE(verifyMethod(Hot));
}

TEST(GreedyTest, FindsNothingInArrayPrograms) {
  // db and Euler have no pointer-chasing recurrences: greedy must leave
  // them alone (the converse of stride prefetching's blind spot).
  for (const char *Name : {"db", "Euler", "compress"}) {
    workloads::WorkloadConfig Cfg;
    Cfg.Scale = 0.02;
    workloads::BuiltWorkload W = workloads::findWorkload(Name)->Build(Cfg);
    Method *Hot = W.CompileUnits[0].M;
    GreedyResult R = runGreedyPrefetch(Hot);
    EXPECT_EQ(R.RecurrencesFound, 0u) << Name;
    EXPECT_EQ(countPrefetches(Hot), 0u) << Name;
  }
}

TEST(GreedyTest, PreservesResultsAndReducesMissesOnAChase) {
  // A linked-list walk in a heap where nodes are NOT allocation-ordered:
  // stride prefetching finds nothing, greedy prefetching still helps.
  workloads::WorkloadConfig Cfg;
  Cfg.Scale = 0.3;
  workloads::BuiltWorkload W1 = workloads::findWorkload("javac")->Build(Cfg);
  workloads::BuiltWorkload W2 = workloads::findWorkload("javac")->Build(Cfg);
  Method *Hot1 = W1.CompileUnits[0].M;
  Method *Hot2 = W2.CompileUnits[0].M;

  // Stride pass on W1: nothing to do.
  core::PrefetchPassOptions PO = workloads::passOptionsFor(
      (*sim::MachineConfig::byName("pentium4")), core::PrefetchMode::InterIntra);
  core::PrefetchPass Stride(*W1.Heap, PO);
  core::PrefetchPassResult SR = Stride.run(Hot1, W1.CompileUnits[0].Args);
  EXPECT_EQ(SR.CodeGen.Prefetches, 0u);

  // Greedy pass on W2: emits, preserves the result, cuts misses.
  GreedyResult GR = runGreedyPrefetch(Hot2);
  ASSERT_GE(GR.Prefetches, 1u);
  ASSERT_TRUE(verifyMethod(Hot2));

  sim::MemorySystem M1((*sim::MachineConfig::byName("pentium4")));
  sim::MemorySystem M2((*sim::MachineConfig::byName("pentium4")));
  exec::Interpreter I1(*W1.Heap, M1, &W1.Roots);
  exec::Interpreter I2(*W2.Heap, M2, &W2.Roots);
  uint64_t R1 = I1.run(W1.Entry, W1.EntryArgs);
  uint64_t R2 = I2.run(W2.Entry, W2.EntryArgs);

  EXPECT_EQ(R1, R2);
  EXPECT_LT(M2.stats().L2LoadMisses, M1.stats().L2LoadMisses);
  EXPECT_LT(M2.cycles(), M1.cycles());
}

TEST(GreedyTest, HandlesHandWrittenSelfChase) {
  // p = p.next over a scrambled list; checks the recurrence detector on
  // minimal IR.
  vm::TypeTable Types;
  auto *Node = Types.addClass("Node");
  const vm::FieldDesc *FNext = Types.addField(Node, "next", ir::Type::Ref);
  const vm::FieldDesc *FVal = Types.addField(Node, "v", ir::Type::I32);

  vm::HeapConfig HC;
  HC.HeapBytes = 4 << 20;
  vm::Heap Heap(Types, HC);
  const unsigned N = 500;
  std::vector<vm::Addr> Nodes(N);
  for (unsigned I = 0; I != N; ++I) {
    Nodes[I] = Heap.allocObject(*Node);
    Heap.store(Nodes[I] + FVal->Offset, ir::Type::I32, I);
  }
  // Link in bit-reversed-ish order: no stride.
  for (unsigned I = 0; I + 1 != N; ++I)
    Heap.store(Nodes[(I * 263) % N] + FNext->Offset, ir::Type::Ref,
               Nodes[((I + 1) * 263) % N]);

  Module M;
  IRBuilder B(M);
  Method *Fn = M.addMethod("walk", Type::I32, {Type::Ref});
  B.setInsertPoint(Fn->addBlock("entry"));
  workloads::LoopNest L(B, "w");
  PhiInst *P = L.addCarried(Fn->arg(0));
  PhiInst *Sum = L.addCarried(B.i32(0));
  L.beginBody(B.cmpNe(P, B.nullRef()));
  Value *V = B.getField(P, FVal);
  Value *Next = B.getField(P, FNext);
  L.setNext(Sum, B.add(Sum, V));
  L.setNext(P, Next);
  L.close();
  B.ret(Sum);
  Fn->recomputePreds();
  ASSERT_TRUE(verifyMethod(Fn));

  GreedyResult R = runGreedyPrefetch(Fn);
  EXPECT_EQ(R.RecurrencesFound, 1u);
  EXPECT_GE(R.Prefetches, 1u);
  ASSERT_TRUE(verifyMethod(Fn));

  sim::MemorySystem Mem((*sim::MachineConfig::byName("athlonmp")));
  exec::Interpreter Interp(Heap, Mem);
  vm::Addr Head = Nodes[0 * 263 % N];
  uint64_t Got = Interp.run(Fn, {Head});
  // Oracle walk.
  uint64_t Expect = 0;
  vm::Addr Cur = Head;
  while (Cur) {
    Expect = static_cast<uint32_t>(
        Expect + Heap.load(Cur + FVal->Offset, ir::Type::I32));
    Cur = Heap.load(Cur + FNext->Offset, ir::Type::Ref);
  }
  EXPECT_EQ(static_cast<uint32_t>(Got), static_cast<uint32_t>(Expect));
}

} // namespace
