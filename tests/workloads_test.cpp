//===- tests/workloads_test.cpp - The 12 Table 3 kernels ------------------===//
//
// Every workload must (a) build a verifiable module, (b) run to completion
// on both machine models, (c) compute the identical result under BASELINE,
// INTER, and INTER+INTRA (prefetching is semantically transparent), and
// (d) pass its self-check oracle where one exists.
//
//===----------------------------------------------------------------------===//

#include "ir/Verifier.h"
#include "workloads/ProgramPopulation.h"
#include "workloads/Runner.h"

#include <gtest/gtest.h>

using namespace spf;
using namespace spf::workloads;

namespace {

WorkloadConfig tinyConfig() {
  WorkloadConfig Cfg;
  Cfg.Scale = 0.02;
  Cfg.HeapBytes = 24ull << 20;
  return Cfg;
}

class WorkloadCase : public ::testing::TestWithParam<const char *> {};

TEST_P(WorkloadCase, BuildsVerifiableModule) {
  const WorkloadSpec *Spec = findWorkload(GetParam());
  ASSERT_NE(Spec, nullptr);
  BuiltWorkload W = Spec->Build(tinyConfig());
  ASSERT_NE(W.Entry, nullptr);
  std::vector<std::string> Errors;
  EXPECT_TRUE(ir::verifyModule(W.Module.get(), &Errors));
  for (const auto &E : Errors)
    ADD_FAILURE() << E;
  EXPECT_FALSE(W.CompileUnits.empty());
  EXPECT_GT(W.Heap->bytesUsed(), 0u);
}

TEST_P(WorkloadCase, ResultIsIdenticalUnderAllAlgorithms) {
  const WorkloadSpec *Spec = findWorkload(GetParam());
  ASSERT_NE(Spec, nullptr);

  RunOptions Base;
  Base.Config = tinyConfig();
  Base.Algo = Algorithm::Baseline;
  RunResult RBase = runWorkload(*Spec, Base);
  EXPECT_TRUE(RBase.SelfCheckOk) << "baseline self-check failed";
  EXPECT_GT(RBase.Retired, 0u);
  EXPECT_GT(RBase.CompiledCycles, 0u);

  for (Algorithm A : {Algorithm::Inter, Algorithm::InterIntra}) {
    for (auto Machine : {(*sim::MachineConfig::byName("pentium4")),
                         (*sim::MachineConfig::byName("athlonmp"))}) {
      RunOptions Opt;
      Opt.Config = tinyConfig();
      Opt.Algo = A;
      Opt.Machine = Machine;
      RunResult R = runWorkload(*Spec, Opt);
      EXPECT_EQ(R.ReturnValue, RBase.ReturnValue)
          << algorithmName(A) << " on " << Machine.Name
          << " changed the program result";
      EXPECT_TRUE(R.SelfCheckOk);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Table3, WorkloadCase,
    ::testing::Values("mtrt", "jess", "compress", "db", "mpegaudio", "jack",
                      "javac", "Euler", "MolDyn", "MonteCarlo", "RayTracer",
                      "Search"),
    [](const ::testing::TestParamInfo<const char *> &Info) {
      return std::string(Info.param);
    });

TEST(WorkloadRegistryTest, AllTwelveTable3RowsPresent) {
  EXPECT_EQ(allWorkloads().size(), 12u);
  for (const WorkloadSpec &S : allWorkloads()) {
    EXPECT_FALSE(S.Description.empty());
    EXPECT_GT(S.CompiledFraction, 0.0);
    EXPECT_LE(S.CompiledFraction, 1.0);
  }
  EXPECT_EQ(findWorkload("nonesuch"), nullptr);
}

TEST(WorkloadBehaviorTest, DbEmitsOnlyDerefAndIntraPrefetches) {
  // The paper's db story: INTER finds nothing; INTER+INTRA prefetches
  // through the record chain.
  const WorkloadSpec *Spec = findWorkload("db");
  RunOptions Opt;
  Opt.Config = tinyConfig();
  Opt.Algo = Algorithm::Inter;
  RunResult Inter = runWorkload(*Spec, Opt);
  EXPECT_EQ(Inter.Prefetch.CodeGen.Prefetches, 0u);

  Opt.Algo = Algorithm::InterIntra;
  RunResult Intra = runWorkload(*Spec, Opt);
  EXPECT_GT(Intra.Prefetch.CodeGen.SpecLoads, 0u);
  EXPECT_GT(Intra.Prefetch.CodeGen.Prefetches, 0u);
}

TEST(WorkloadBehaviorTest, EulerEmitsPlainInterPrefetches) {
  const WorkloadSpec *Spec = findWorkload("Euler");
  RunOptions Opt;
  Opt.Config = tinyConfig();
  Opt.Algo = Algorithm::Inter;
  RunResult Inter = runWorkload(*Spec, Opt);
  EXPECT_GT(Inter.Prefetch.CodeGen.Prefetches, 0u);
  EXPECT_EQ(Inter.Prefetch.CodeGen.SpecLoads, 0u);

  // INTER+INTRA adds nothing for Euler (all patterns are inter).
  Opt.Algo = Algorithm::InterIntra;
  RunResult Intra = runWorkload(*Spec, Opt);
  EXPECT_EQ(Intra.Prefetch.CodeGen.Prefetches,
            Inter.Prefetch.CodeGen.Prefetches);
  EXPECT_EQ(Intra.Prefetch.CodeGen.SpecLoads, 0u);
}

TEST(WorkloadBehaviorTest, NoApplicableFragmentsInCompressJavacSearch) {
  for (const char *Name : {"compress", "javac", "Search", "jack",
                           "MonteCarlo"}) {
    const WorkloadSpec *Spec = findWorkload(Name);
    RunOptions Opt;
    Opt.Config = tinyConfig();
    Opt.Algo = Algorithm::InterIntra;
    RunResult R = runWorkload(*Spec, Opt);
    EXPECT_EQ(R.Prefetch.CodeGen.Prefetches, 0u)
        << Name << " unexpectedly got prefetches";
    EXPECT_EQ(R.Prefetch.CodeGen.SpecLoads, 0u) << Name;
  }
}

TEST(WorkloadBehaviorTest, MolDynRejectedOnP4ButEmittedOnAthlon) {
  // Molecule pitch (72B) exceeds half a line on both machines, so both
  // emit; the difference shows up in cycles, not in emission. Verify
  // emission happens at all.
  const WorkloadSpec *Spec = findWorkload("MolDyn");
  RunOptions Opt;
  Opt.Config = tinyConfig();
  Opt.Algo = Algorithm::Inter;
  Opt.Machine = (*sim::MachineConfig::byName("athlonmp"));
  RunResult R = runWorkload(*Spec, Opt);
  EXPECT_GT(R.Prefetch.CodeGen.Prefetches, 0u);
}

TEST(WorkloadBehaviorTest, JessCompileTimeOverheadIsSmall) {
  const WorkloadSpec *Spec = findWorkload("jess");
  RunOptions Opt;
  Opt.Config = tinyConfig();
  Opt.Algo = Algorithm::InterIntra;
  RunResult R = runWorkload(*Spec, Opt);
  EXPECT_GT(R.JitTotalUs, 0.0);
  EXPECT_GT(R.JitPrefetchUs, 0.0);
  EXPECT_LT(R.JitPrefetchUs, R.JitTotalUs);
}

TEST(RunnerTest, PassOptionsFollowTheMachine) {
  auto P4 = passOptionsFor((*sim::MachineConfig::byName("pentium4")),
                           core::PrefetchMode::InterIntra);
  EXPECT_EQ(P4.Planner.LineBytes, 128u); // The L2 line: prefetch target.
  EXPECT_TRUE(P4.Planner.GuardedIntraPrefetch);

  auto At = passOptionsFor((*sim::MachineConfig::byName("athlonmp")),
                           core::PrefetchMode::InterIntra);
  EXPECT_EQ(At.Planner.LineBytes, 64u); // The L1 line.
  EXPECT_FALSE(At.Planner.GuardedIntraPrefetch);
}

TEST(RunnerTest, TotalTimeModelDampsByCompiledFraction) {
  // With f = 0.5, halving compiled time yields only a 1.33x speedup.
  double TBase = totalTime(1000, 1000, 0.5);
  double TOpt = totalTime(500, 1000, 0.5);
  EXPECT_DOUBLE_EQ(TBase, 2000.0);
  EXPECT_DOUBLE_EQ(TOpt, 1500.0);
}

} // namespace

TEST(ProgramPopulationTest, PopulationMethodsVerifyAndStayUntouched) {
  // The synthesized ordinary methods (the Figure 11 denominator) must be
  // verifiable, compile cleanly, and never attract prefetches (they are
  // compiled without argument values and have no strided heap loads).
  const WorkloadSpec *Spec = findWorkload("MolDyn"); // 60 pop methods.
  WorkloadConfig Cfg;
  Cfg.Scale = 0.02;
  BuiltWorkload W = Spec->Build(Cfg);

  unsigned PopMethods = 0;
  jit::CompileManager::Options Opts;
  Opts.Pass = passOptionsFor((*sim::MachineConfig::byName("pentium4")),
                             core::PrefetchMode::InterIntra);
  jit::CompileManager Jit(*W.Heap, Opts);
  for (const CompileUnit &CU : W.CompileUnits) {
    if (CU.M->name().rfind("pop.", 0) != 0)
      continue;
    ++PopMethods;
    ASSERT_TRUE(ir::verifyMethod(CU.M)) << CU.M->name();
    jit::CompileResult R = Jit.compile(CU.M, CU.Args);
    EXPECT_EQ(R.Prefetch.CodeGen.Prefetches, 0u) << CU.M->name();
    EXPECT_EQ(R.Prefetch.CodeGen.SpecLoads, 0u) << CU.M->name();
  }
  EXPECT_EQ(PopMethods, 60u);
}

TEST(ProgramPopulationTest, PopulationIsDeterministic) {
  WorkloadConfig Cfg;
  Cfg.Scale = 0.02;
  BuiltWorkload A = findWorkload("Search")->Build(Cfg);
  BuiltWorkload B = findWorkload("Search")->Build(Cfg);
  ASSERT_EQ(A.CompileUnits.size(), B.CompileUnits.size());
  // Same names, same block/instruction counts.
  for (size_t I = 0; I != A.CompileUnits.size(); ++I) {
    EXPECT_EQ(A.CompileUnits[I].M->name(), B.CompileUnits[I].M->name());
    EXPECT_EQ(A.CompileUnits[I].M->numBlocks(),
              B.CompileUnits[I].M->numBlocks());
  }
}

TEST(RunnerTest, SpeedupSignConventions) {
  RunResult Base, Fast, Slow;
  Base.CompiledCycles = 1000;
  Fast.CompiledCycles = 800;
  Slow.CompiledCycles = 1250;
  EXPECT_GT(speedupPercent(Base, Fast, 1.0), 24.9);
  EXPECT_LT(speedupPercent(Base, Slow, 1.0), -19.9);
  EXPECT_DOUBLE_EQ(speedupPercent(Base, Base, 0.7), 0.0);
  // Damping: the same compiled-code gain shrinks with lower f.
  EXPECT_LT(speedupPercent(Base, Fast, 0.5), speedupPercent(Base, Fast, 1.0));
}

// -- Epochs, GC perturbation, and the governor -------------------------------

TEST(AdaptationRunTest, EpochRunsPreserveResultsUnderEveryVariant) {
  const WorkloadSpec *Spec = findWorkload("jess");
  ASSERT_NE(Spec, nullptr);
  RunOptions Base;
  Base.Config = tinyConfig();
  RunResult RBase = runWorkload(*Spec, Base);
  ASSERT_TRUE(RBase.SelfCheckOk);
  EXPECT_EQ(RBase.Epochs, 1u);

  for (vm::GcVariant V :
       {vm::GcVariant::SlidingCompact, vm::GcVariant::MarkSweep,
        vm::GcVariant::AddressShuffle, vm::GcVariant::PromotionOrder}) {
    RunOptions Opt;
    Opt.Config = tinyConfig();
    Opt.Algo = Algorithm::InterIntra;
    Opt.Epochs = 3;
    Opt.GcVariant = V;
    RunResult R = runWorkload(*Spec, Opt);
    EXPECT_TRUE(R.SelfCheckOk) << vm::gcVariantName(V);
    EXPECT_EQ(R.ReturnValue, RBase.ReturnValue) << vm::gcVariantName(V);
    EXPECT_EQ(R.Epochs, 3u);
    EXPECT_GE(R.GcCollections, 2u) << vm::gcVariantName(V);
  }
}

TEST(AdaptationRunTest, GovernedRunPreservesResultsAndTracksHealth) {
  const WorkloadSpec *Spec = findWorkload("jess");
  ASSERT_NE(Spec, nullptr);
  RunOptions Off;
  Off.Config = tinyConfig();
  Off.Algo = Algorithm::InterIntra;
  Off.Epochs = 4;
  Off.GcVariant = vm::GcVariant::AddressShuffle;
  RunResult ROff = runWorkload(*Spec, Off);
  ASSERT_TRUE(ROff.SelfCheckOk);
  // Health tracking is off: the governed-only counters stay zero, so the
  // stats match the pre-governor wire format bit for bit.
  EXPECT_EQ(ROff.Mem.SwPrefetchesUseful + ROff.Mem.SwPrefetchesLate +
                ROff.Mem.SwPrefetchesUnused,
            0u);
  EXPECT_EQ(ROff.GovernorQuarantined, 0u);

  RunOptions On = Off;
  On.Governor = true;
  // Tiny-scale runs resolve few fills per site; drop the evidence floor
  // so the state machine actually acts in this test.
  On.GovernorCfg.MinResolved = 4;
  RunResult ROn = runWorkload(*Spec, On);
  EXPECT_TRUE(ROn.SelfCheckOk);
  EXPECT_EQ(ROn.ReturnValue, ROff.ReturnValue)
      << "governor changed the program result";
  EXPECT_EQ(ROn.Epochs, 4u);
  // Health tracking attributed fills.
  EXPECT_GT(ROn.Mem.SwPrefetchesUseful + ROn.Mem.SwPrefetchesLate +
                ROn.Mem.SwPrefetchesUnused,
            0u);
}

TEST(AdaptationRunTest, PhaseChangeShufflesRefArraysDeterministically) {
  WorkloadConfig Cfg = tinyConfig();
  BuiltWorkload A = findWorkload("db")->Build(Cfg);
  BuiltWorkload B = findWorkload("db")->Build(Cfg);

  unsigned NA = applyPhaseChange(*A.Heap, /*Seed=*/7);
  EXPECT_GT(NA, 0u); // db's heap holds Ref arrays to shuffle.
  // Deterministic: the same seed shuffles an identical heap identically.
  EXPECT_EQ(applyPhaseChange(*B.Heap, /*Seed=*/7), NA);
  for (vm::Addr Addr = A.Heap->heapBase(); Addr < A.Heap->heapTop();
       Addr += A.Heap->objectSize(Addr)) {
    if (!A.Heap->isArray(Addr) ||
        A.Heap->arrayElemType(Addr) != ir::Type::Ref)
      continue;
    for (uint64_t I = 0, E = A.Heap->arrayLength(Addr); I != E; ++I)
      EXPECT_EQ(A.Heap->load(A.Heap->elemAddr(Addr, I), ir::Type::Ref),
                B.Heap->load(B.Heap->elemAddr(Addr, I), ir::Type::Ref));
  }

  // And the program still computes the right answer afterwards: shuffle
  // the live heap mid-epoch via the runner's knob.
  const WorkloadSpec *Spec = findWorkload("db");
  RunOptions Base;
  Base.Config = tinyConfig();
  RunResult RBase = runWorkload(*Spec, Base);
  RunOptions Opt;
  Opt.Config = tinyConfig();
  Opt.Algo = Algorithm::InterIntra;
  Opt.Epochs = 3;
  Opt.PhaseChange = true;
  RunResult R = runWorkload(*Spec, Opt);
  EXPECT_TRUE(R.SelfCheckOk);
  EXPECT_EQ(R.ReturnValue, RBase.ReturnValue);
}
