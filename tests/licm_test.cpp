//===- tests/licm_test.cpp - Loop-invariant code motion -------------------===//

#include "TestKernels.h"
#include "exec/Interpreter.h"
#include "ir/IRBuilder.h"
#include "ir/Verifier.h"
#include "opt/LoopInvariantCodeMotion.h"
#include "workloads/KernelBuilder.h"
#include "workloads/Runner.h"

#include <gtest/gtest.h>

using namespace spf;
using namespace spf::ir;

namespace {

TEST(LicmTest, HoistsInvariantArithmetic) {
  vm::TypeTable Types;
  vm::HeapConfig HC;
  HC.HeapBytes = 1 << 16;
  vm::Heap Heap(Types, HC);
  Module M;
  IRBuilder B(M);

  Method *Fn = M.addMethod("f", Type::I32, {Type::I32, Type::I32});
  B.setInsertPoint(Fn->addBlock("entry"));
  workloads::LoopNest L(B, "i");
  PhiInst *I = L.civ(B.i32(0));
  PhiInst *Acc = L.addCarried(B.i32(0));
  L.beginBody(B.cmpLt(I, Fn->arg(0)));
  // Invariant: (arg1 * 3) ^ 7. Variant: + i.
  Value *Inv = B.xorOp(B.mul(Fn->arg(1), B.i32(3)), B.i32(7));
  Value *Var = B.add(Inv, I);
  L.setNext(Acc, B.add(Acc, Var));
  L.close();
  B.ret(Acc);
  Fn->recomputePreds();
  ASSERT_TRUE(verifyMethod(Fn));

  sim::MemorySystem M1((*sim::MachineConfig::byName("pentium4")));
  exec::Interpreter I1(Heap, M1);
  uint64_t Before = I1.run(Fn, {20, 5});
  uint64_t RetiredBefore = I1.stats().Retired;

  unsigned Moved = opt::hoistLoopInvariants(Fn);
  EXPECT_EQ(Moved, 2u); // mul and xor.
  ASSERT_TRUE(verifyMethod(Fn));
  // Hoisted instructions now live outside the loop blocks.
  analysis::DominatorTree DT(Fn);
  analysis::LoopInfo LI(Fn, DT);
  const auto *InvInst = cast<Instruction>(Inv);
  EXPECT_EQ(LI.loopFor(InvInst->parent()), nullptr);

  sim::MemorySystem M2((*sim::MachineConfig::byName("pentium4")));
  exec::Interpreter I2(Heap, M2);
  uint64_t After = I2.run(Fn, {20, 5});
  EXPECT_EQ(Before, After);
  EXPECT_LT(I2.stats().Retired, RetiredBefore); // Fewer dynamic instrs.
}

TEST(LicmTest, LeavesHeapLoadsAlone) {
  // The reason LICM stays out of the default pipeline: the Table 1 loads
  // (tv.v, the bound-check arraylengths, t.size) must stay in-loop — and
  // since the pass only touches arithmetic, they do.
  testkernels::JessWorld W;
  opt::hoistLoopInvariants(W.Find);
  ASSERT_TRUE(verifyMethod(W.Find));

  W.Find->recomputePreds();
  analysis::DominatorTree DT(W.Find);
  analysis::LoopInfo LI(W.Find, DT);
  for (Instruction *L : {W.L1, W.L2, W.L3, W.L5, W.L6, W.L7, W.L9, W.L10})
    EXPECT_NE(LI.loopFor(L->parent()), nullptr)
        << "a Table 1 load was hoisted";
}

TEST(LicmTest, DoesNotHoistDivByPossiblyZero) {
  vm::TypeTable Types;
  Module M;
  IRBuilder B(M);
  Method *Fn = M.addMethod("f", Type::I32, {Type::I32, Type::I32});
  B.setInsertPoint(Fn->addBlock("entry"));
  workloads::LoopNest L(B, "i");
  PhiInst *I = L.civ(B.i32(0));
  PhiInst *Acc = L.addCarried(B.i32(0));
  L.beginBody(B.cmpLt(I, Fn->arg(0)));
  // Guarded division: only executes when arg1 != 0 at run time; hoisting
  // it would trap on arg1 == 0.
  BasicBlock *DivBB = Fn->blocks()[1].get();
  (void)DivBB;
  Value *Q = B.div(B.i32(100), Fn->arg(1)); // Divisor not a constant.
  Value *QC = B.div(B.i32(100), B.i32(4));  // Constant divisor: hoistable.
  L.setNext(Acc, B.add(Acc, B.add(Q, QC)));
  L.close();
  B.ret(Acc);
  Fn->recomputePreds();

  unsigned Moved = opt::hoistLoopInvariants(Fn);
  EXPECT_EQ(Moved, 1u); // Only the constant-divisor division.
  analysis::DominatorTree DT(Fn);
  analysis::LoopInfo LI(Fn, DT);
  EXPECT_NE(LI.loopFor(cast<Instruction>(Q)->parent()), nullptr);
  EXPECT_EQ(LI.loopFor(cast<Instruction>(QC)->parent()), nullptr);
}

TEST(LicmTest, NestedLoopsHoistToTheRightLevel) {
  vm::TypeTable Types;
  Module M;
  IRBuilder B(M);
  Method *Fn = M.addMethod("f", Type::I32, {Type::I32, Type::I32});
  B.setInsertPoint(Fn->addBlock("entry"));
  workloads::LoopNest Outer(B, "i");
  PhiInst *I = Outer.civ(B.i32(0));
  PhiInst *Acc = Outer.addCarried(B.i32(0));
  Outer.beginBody(B.cmpLt(I, Fn->arg(0)));
  Value *OuterVariant = B.mul(I, B.i32(5)); // Variant in outer loop.

  workloads::LoopNest Inner(B, "j");
  PhiInst *J = Inner.civ(B.i32(0));
  PhiInst *AccJ = Inner.addCarried(Acc);
  Inner.beginBody(B.cmpLt(J, Fn->arg(0)));
  Value *FullyInv = B.mul(Fn->arg(1), B.i32(9)); // Invariant everywhere.
  Value *InnerInv = B.add(OuterVariant, B.i32(1)); // Invariant in inner.
  Inner.setNext(AccJ, B.add(AccJ, B.add(FullyInv, B.add(InnerInv, J))));
  Inner.close();

  Outer.setNext(Acc, AccJ);
  Outer.close();
  B.ret(Acc);
  Fn->recomputePreds();
  ASSERT_TRUE(verifyMethod(Fn));

  unsigned Moved = opt::hoistLoopInvariants(Fn);
  EXPECT_GE(Moved, 2u);
  ASSERT_TRUE(verifyMethod(Fn));

  analysis::DominatorTree DT(Fn);
  analysis::LoopInfo LI(Fn, DT);
  // FullyInv escaped both loops; InnerInv escaped the inner one only.
  EXPECT_EQ(LI.loopFor(cast<Instruction>(FullyInv)->parent()), nullptr);
  analysis::Loop *Home = LI.loopFor(cast<Instruction>(InnerInv)->parent());
  ASSERT_NE(Home, nullptr);
  EXPECT_EQ(Home->depth(), 1u);
}

TEST(LicmTest, WorkloadResultsUnchangedUnderLicm) {
  // LICM before the prefetch pass must not disturb results or the
  // discovered patterns (it never touches memory instructions).
  workloads::WorkloadConfig Cfg;
  Cfg.Scale = 0.05;
  workloads::BuiltWorkload W1 = workloads::findWorkload("db")->Build(Cfg);
  workloads::BuiltWorkload W2 = workloads::findWorkload("db")->Build(Cfg);
  Method *Hot2 = W2.CompileUnits[0].M;
  opt::hoistLoopInvariants(Hot2);
  ASSERT_TRUE(verifyMethod(Hot2));

  core::PrefetchPassOptions PO = workloads::passOptionsFor(
      (*sim::MachineConfig::byName("pentium4")), core::PrefetchMode::InterIntra);
  core::PrefetchPass P1(*W1.Heap, PO);
  core::PrefetchPass P2(*W2.Heap, PO);
  auto R1 = P1.run(W1.CompileUnits[0].M, W1.CompileUnits[0].Args);
  auto R2 = P2.run(Hot2, W2.CompileUnits[0].Args);
  EXPECT_EQ(R1.CodeGen.SpecLoads, R2.CodeGen.SpecLoads);

  sim::MemorySystem M1((*sim::MachineConfig::byName("pentium4")));
  sim::MemorySystem M2((*sim::MachineConfig::byName("pentium4")));
  exec::Interpreter I1(*W1.Heap, M1, &W1.Roots);
  exec::Interpreter I2(*W2.Heap, M2, &W2.Roots);
  EXPECT_EQ(I1.run(W1.Entry, W1.EntryArgs), I2.run(W2.Entry, W2.EntryArgs));
}

} // namespace
