//===- tests/interp_test.cpp - IR execution engine ------------------------===//

#include "exec/Interpreter.h"
#include "ir/IRBuilder.h"
#include "sim/MemorySystem.h"
#include "ir/Verifier.h"
#include "workloads/KernelBuilder.h"

#include <gtest/gtest.h>

using namespace spf;
using namespace spf::ir;

namespace {

class InterpTest : public ::testing::Test {
protected:
  InterpTest()
      : Heap(Types, smallHeap()), Mem((*sim::MachineConfig::byName("pentium4"))),
        Interp(Heap, Mem) {}

  static vm::HeapConfig smallHeap() {
    vm::HeapConfig HC;
    HC.HeapBytes = 1 << 20;
    return HC;
  }

  uint64_t run(Method *M, std::vector<uint64_t> Args) {
    EXPECT_TRUE(verifyMethod(M));
    return Interp.run(M, Args);
  }

  vm::TypeTable Types;
  vm::Heap Heap;
  sim::MemorySystem Mem;
  exec::Interpreter Interp;
  Module M;
};

TEST_F(InterpTest, IntegerArithmetic) {
  Method *Fn = M.addMethod("arith", Type::I32, {Type::I32, Type::I32});
  IRBuilder B(M);
  B.setInsertPoint(Fn->addBlock("entry"));
  Value *S = B.add(Fn->arg(0), Fn->arg(1));
  Value *D = B.mul(S, B.i32(3));
  Value *R = B.sub(D, B.rem(Fn->arg(0), B.i32(5)));
  B.ret(B.div(R, B.i32(2)));
  // ((7+4)*3 - 7%5) / 2 = (33 - 2) / 2 = 15
  EXPECT_EQ(run(Fn, {7, 4}), 15u);
}

TEST_F(InterpTest, I32WrapsAt32Bits) {
  Method *Fn = M.addMethod("wrap", Type::I32, {Type::I32});
  IRBuilder B(M);
  B.setInsertPoint(Fn->addBlock("entry"));
  B.ret(B.add(Fn->arg(0), B.i32(1)));
  uint64_t R = run(Fn, {0x7fffffffull});
  // INT32_MAX + 1 wraps to INT32_MIN, sign-extended in the slot.
  EXPECT_EQ(static_cast<int64_t>(R), -2147483648LL);
}

TEST_F(InterpTest, FloatArithmeticAndConversion) {
  Method *Fn = M.addMethod("fp", Type::I32, {Type::I32});
  IRBuilder B(M);
  B.setInsertPoint(Fn->addBlock("entry"));
  Value *F = B.conv(ConvInst::ConvOp::IToF, Fn->arg(0));
  Value *G = B.mul(F, B.f64(2.5));
  B.ret(B.conv(ConvInst::ConvOp::FToI, G));
  EXPECT_EQ(run(Fn, {10}), 25u);
}

TEST_F(InterpTest, LoopWithPhiComputesSum) {
  Method *Fn = M.addMethod("sum", Type::I32, {Type::I32});
  IRBuilder B(M);
  B.setInsertPoint(Fn->addBlock("entry"));
  workloads::LoopNest L(B, "i");
  PhiInst *I = L.civ(B.i32(0));
  PhiInst *S = L.addCarried(B.i32(0));
  L.beginBody(B.cmpLt(I, Fn->arg(0)));
  L.setNext(S, B.add(S, I));
  L.close();
  B.ret(S);
  EXPECT_EQ(run(Fn, {10}), 45u); // 0+1+...+9
}

TEST_F(InterpTest, FieldAndArrayRoundTrip) {
  auto *Cls = Types.addClass("Pair");
  const vm::FieldDesc *FA = Types.addField(Cls, "a", Type::I32);
  const vm::FieldDesc *FB = Types.addField(Cls, "b", Type::I64);

  Method *Fn = M.addMethod("rt", Type::I64, {});
  IRBuilder B(M);
  B.setInsertPoint(Fn->addBlock("entry"));
  Value *O = B.newObject(Cls);
  B.putField(O, FA, B.i32(-3));
  B.putField(O, FB, B.i64(1000));
  Value *Arr = B.newArray(Type::I64, B.i32(4));
  B.astore(Arr, B.i32(2), B.getField(O, FB));
  Value *A = B.conv(ConvInst::ConvOp::SExt32To64, B.getField(O, FA));
  Value *E = B.aload(Arr, B.i32(2), Type::I64);
  B.ret(B.add(A, E));
  EXPECT_EQ(static_cast<int64_t>(run(Fn, {})), 997);
}

TEST_F(InterpTest, ArrayLengthLoadsHeader) {
  Method *Fn = M.addMethod("len", Type::I32, {Type::I32});
  IRBuilder B(M);
  B.setInsertPoint(Fn->addBlock("entry"));
  Value *Arr = B.newArray(Type::I32, Fn->arg(0));
  B.ret(B.arrayLength(Arr));
  EXPECT_EQ(run(Fn, {17}), 17u);
}

TEST_F(InterpTest, CallsAndRecursion) {
  Method *Fib = M.addMethod("fib", Type::I32, {Type::I32});
  IRBuilder B(M);
  BasicBlock *Entry = Fib->addBlock("entry");
  BasicBlock *Base = Fib->addBlock("base");
  BasicBlock *Rec = Fib->addBlock("rec");
  B.setInsertPoint(Entry);
  B.br(B.cmpLt(Fib->arg(0), B.i32(2)), Base, Rec);
  B.setInsertPoint(Base);
  B.ret(Fib->arg(0));
  B.setInsertPoint(Rec);
  Value *A = B.call(Fib, Type::I32, {B.sub(Fib->arg(0), B.i32(1))});
  Value *C = B.call(Fib, Type::I32, {B.sub(Fib->arg(0), B.i32(2))});
  B.ret(B.add(A, C));
  EXPECT_EQ(run(Fib, {10}), 55u);
  EXPECT_GT(Interp.stats().Calls, 100u);
}

TEST_F(InterpTest, NativeMethodsExecuteDirectly) {
  Method *Nat = M.addMethod("native.max", Type::I32, {Type::I32, Type::I32});
  Nat->setNative([](const std::vector<uint64_t> &Args) {
    int64_t A = static_cast<int64_t>(Args[0]);
    int64_t B = static_cast<int64_t>(Args[1]);
    return static_cast<uint64_t>(A > B ? A : B);
  });
  Method *Fn = M.addMethod("callNative", Type::I32, {Type::I32});
  IRBuilder B(M);
  B.setInsertPoint(Fn->addBlock("entry"));
  B.ret(B.call(Nat, Type::I32, {Fn->arg(0), B.i32(42)}));
  EXPECT_EQ(run(Fn, {7}), 42u);
  EXPECT_EQ(run(Fn, {100}), 100u);
}

TEST_F(InterpTest, AllocationFailureTriggersGcAndRetries) {
  auto *Cls = Types.addClass("Blob");
  for (int I = 0; I < 20; ++I)
    Types.addField(Cls, "f" + std::to_string(I), Type::I64);

  // Allocate in a loop, keeping only the newest object: the rest is
  // garbage the collector must reclaim mid-run.
  Method *Fn = M.addMethod("churn", Type::I32, {Type::I32});
  IRBuilder B(M);
  B.setInsertPoint(Fn->addBlock("entry"));
  workloads::LoopNest L(B, "i");
  PhiInst *I = L.civ(B.i32(0));
  L.beginBody(B.cmpLt(I, Fn->arg(0)));
  B.newObject(Cls); // 176 bytes of garbage per iteration.
  L.close();
  B.ret(B.i32(1));

  // 20000 iterations x 176B ~ 3.4 MB through a 1 MB heap.
  EXPECT_EQ(run(Fn, {20000}), 1u);
  EXPECT_GT(Interp.stats().GcRuns, 0u);
  EXPECT_EQ(Interp.stats().Allocations, 20000u);
}

TEST_F(InterpTest, GcPreservesLiveDataReachableFromFrames) {
  auto *Cls = Types.addClass("Cell");
  const vm::FieldDesc *FV = Types.addField(Cls, "v", Type::I32);
  auto *Blob = Types.addClass("Garbage");
  for (int I = 0; I < 30; ++I)
    Types.addField(Blob, "f" + std::to_string(I), Type::I64);

  Method *Fn = M.addMethod("live", Type::I32, {Type::I32});
  IRBuilder B(M);
  B.setInsertPoint(Fn->addBlock("entry"));
  Value *Keep = B.newObject(Cls); // Live across the whole loop.
  B.putField(Keep, FV, B.i32(777));
  workloads::LoopNest L(B, "i");
  PhiInst *I = L.civ(B.i32(0));
  L.beginBody(B.cmpLt(I, Fn->arg(0)));
  B.newObject(Blob);
  L.close();
  B.ret(B.getField(Keep, FV)); // Must still read 777 after GCs.

  EXPECT_EQ(run(Fn, {10000}), 777u);
  EXPECT_GT(Interp.stats().GcRuns, 0u);
}

TEST_F(InterpTest, PrefetchInstructionsAreCountedAndHarmless) {
  Method *Fn = M.addMethod("pf", Type::I32, {Type::Ref, Type::I32});
  IRBuilder B(M);
  B.setInsertPoint(Fn->addBlock("entry"));
  workloads::LoopNest L(B, "i");
  PhiInst *I = L.civ(B.i32(0));
  PhiInst *S = L.addCarried(B.i32(0));
  L.beginBody(B.cmpLt(I, Fn->arg(1)));
  Value *E = B.aload(Fn->arg(0), I, Type::I32);
  B.prefetch(Fn->arg(0), I, 4, 64);
  Value *Spec = B.specLoad(Fn->arg(0), I, 4, 16);
  B.prefetch(Spec, nullptr, 0, 0, /*Guarded=*/true);
  L.setNext(S, B.add(S, E));
  L.close();
  B.ret(S);

  vm::Addr Arr = Heap.allocArray(Type::I32, 64);
  for (unsigned I = 0; I != 64; ++I)
    Heap.store(Heap.elemAddr(Arr, I), Type::I32, I);
  EXPECT_EQ(run(Fn, {Arr, 64}), 2016u); // Sum unchanged by prefetching.
  EXPECT_EQ(Interp.stats().PrefetchRelated, 3u * 64);
  EXPECT_GT(Mem.stats().SwPrefetchesIssued, 0u);
  EXPECT_GT(Mem.stats().GuardedLoads, 0u);
}

TEST_F(InterpTest, SpecLoadOfInvalidAddressYieldsNull) {
  Method *Fn = M.addMethod("spec", Type::Ref, {Type::Ref});
  IRBuilder B(M);
  B.setInsertPoint(Fn->addBlock("entry"));
  // Far beyond any allocation: the guard must suppress the access.
  Value *V = B.specLoad(Fn->arg(0), nullptr, 0, 1 << 30);
  B.ret(V);
  vm::Addr Arr = Heap.allocArray(Type::I32, 4);
  EXPECT_EQ(run(Fn, {Arr}), 0u);
}

TEST_F(InterpTest, RetiredCountsExcludePhis) {
  Method *Fn = M.addMethod("count", Type::I32, {Type::I32});
  IRBuilder B(M);
  B.setInsertPoint(Fn->addBlock("entry"));
  workloads::LoopNest L(B, "i");
  PhiInst *I = L.civ(B.i32(0));
  L.beginBody(B.cmpLt(I, Fn->arg(0)));
  L.close();
  B.ret(I);

  uint64_t Before = Interp.stats().Retired;
  run(Fn, {5});
  uint64_t Retired = Interp.stats().Retired - Before;
  // Per iteration: cmp + br + body jump + (latch) add + jump = 5; plus the
  // entry jump, the final cmp + br, and ret: 5*5 + 1 + 2 + 1 = 29. Phis
  // retire nothing.
  EXPECT_EQ(Retired, 29u);
}

} // namespace
