//===- tests/differential_test.cpp - Interpreter vs C++ oracle ------------===//
//
// Property tests that pit the execution engine against independently
// written C++ evaluations:
//
//  * random straight-line arithmetic programs, evaluated both by the
//    interpreter and by a direct C++ mirror of each emitted operation;
//  * random heap programs (field/array traffic) against a std::map-based
//    memory oracle;
//  * the paper-critical invariant: running the prefetch pass on a random
//    strided-loop program never changes its result.
//
//===----------------------------------------------------------------------===//

#include "core/PrefetchPass.h"
#include "exec/Interpreter.h"
#include "ir/Verifier.h"
#include "support/SplitMix64.h"
#include "workloads/KernelBuilder.h"
#include "workloads/Runner.h"

#include <gtest/gtest.h>

using namespace spf;
using namespace spf::ir;

namespace {

int32_t wrap32(int64_t V) { return static_cast<int32_t>(V); }

/// Emits a random i32 op and returns both the IR value and the oracle's
/// evaluation.
struct RandomExpr {
  Value *V;
  int32_t Oracle;
};

RandomExpr emitRandomOp(IRBuilder &B, SplitMix64 &Rng,
                        std::vector<RandomExpr> &Pool) {
  RandomExpr A = Pool[Rng.nextBelow(Pool.size())];
  RandomExpr C = Pool[Rng.nextBelow(Pool.size())];
  switch (Rng.nextBelow(9)) {
  case 0:
    return {B.add(A.V, C.V), wrap32(int64_t(A.Oracle) + C.Oracle)};
  case 1:
    return {B.sub(A.V, C.V), wrap32(int64_t(A.Oracle) - C.Oracle)};
  case 2:
    return {B.mul(A.V, C.V), wrap32(int64_t(A.Oracle) * C.Oracle)};
  case 3:
    return {B.xorOp(A.V, C.V), A.Oracle ^ C.Oracle};
  case 4:
    return {B.andOp(A.V, C.V), A.Oracle & C.Oracle};
  case 5: {
    int32_t Sh = static_cast<int32_t>(Rng.nextBelow(5));
    return {B.shl(A.V, B.i32(Sh)),
            wrap32(static_cast<int64_t>(A.Oracle) << Sh)};
  }
  case 6: {
    int32_t Sh = static_cast<int32_t>(Rng.nextBelow(5));
    // IR shr is arithmetic over the sign-extended 64-bit slot.
    return {B.shr(A.V, B.i32(Sh)),
            wrap32(static_cast<int64_t>(A.Oracle) >> Sh)};
  }
  case 7:
    return {B.cmpLt(A.V, C.V), A.Oracle < C.Oracle ? 1 : 0};
  default: {
    if (C.Oracle == 0)
      return {B.add(A.V, C.V), wrap32(int64_t(A.Oracle) + C.Oracle)};
    return {B.rem(A.V, C.V), wrap32(int64_t(A.Oracle) % C.Oracle)};
  }
  }
}

TEST(DifferentialTest, RandomArithmeticMatchesOracle) {
  SplitMix64 Rng(0xabcdef12);
  for (int Round = 0; Round != 50; ++Round) {
    vm::TypeTable Types;
    vm::HeapConfig HC;
    HC.HeapBytes = 1 << 16;
    vm::Heap Heap(Types, HC);
    Module M;
    IRBuilder B(M);

    int32_t Arg0 = static_cast<int32_t>(Rng.next());
    int32_t Arg1 = static_cast<int32_t>(Rng.next());
    Method *Fn = M.addMethod("rand", Type::I32, {Type::I32, Type::I32});
    B.setInsertPoint(Fn->addBlock("entry"));
    std::vector<RandomExpr> Pool = {
        {Fn->arg(0), Arg0}, {Fn->arg(1), Arg1}, {B.i32(7), 7}};
    RandomExpr Last = Pool[0];
    unsigned Ops = 10 + static_cast<unsigned>(Rng.nextBelow(40));
    for (unsigned I = 0; I != Ops; ++I) {
      Last = emitRandomOp(B, Rng, Pool);
      Pool.push_back(Last);
      if (Pool.size() > 10)
        Pool.erase(Pool.begin());
    }
    B.ret(Last.V);
    ASSERT_TRUE(verifyMethod(Fn));

    sim::MemorySystem Mem((*sim::MachineConfig::byName("pentium4")));
    exec::Interpreter Interp(Heap, Mem);
    uint64_t Got = Interp.run(Fn, {static_cast<uint64_t>(Arg0),
                                   static_cast<uint64_t>(Arg1)});
    EXPECT_EQ(static_cast<int32_t>(Got), Last.Oracle)
        << "round " << Round << " diverged";
  }
}

TEST(DifferentialTest, RandomHeapTrafficMatchesMapOracle) {
  SplitMix64 Rng(0x77777777);
  for (int Round = 0; Round != 20; ++Round) {
    vm::TypeTable Types;
    vm::HeapConfig HC;
    HC.HeapBytes = 1 << 20;
    vm::Heap Heap(Types, HC);
    Module M;
    IRBuilder B(M);

    const unsigned N = 64;
    vm::Addr Arr = Heap.allocArray(Type::I32, N);
    std::vector<int32_t> Oracle(N, 0);
    for (unsigned I = 0; I != N; ++I) {
      int32_t V = static_cast<int32_t>(Rng.nextBelow(1000));
      Heap.store(Heap.elemAddr(Arr, I), Type::I32, V);
      Oracle[I] = V;
    }

    // Random store/load program over the array with in-range indices.
    Method *Fn = M.addMethod("heap", Type::I32, {Type::Ref});
    B.setInsertPoint(Fn->addBlock("entry"));
    Value *Sum = B.i32(0);
    int64_t OracleSum = 0;
    for (int Op = 0; Op != 40; ++Op) {
      unsigned Idx = static_cast<unsigned>(Rng.nextBelow(N));
      if (Rng.nextBelow(2)) {
        unsigned Src = static_cast<unsigned>(Rng.nextBelow(N));
        Value *L = B.aload(Fn->arg(0), B.i32(Src), Type::I32);
        Value *Inc = B.add(L, B.i32(3));
        B.astore(Fn->arg(0), B.i32(Idx), Inc);
        Oracle[Idx] = wrap32(int64_t(Oracle[Src]) + 3);
      } else {
        Value *L = B.aload(Fn->arg(0), B.i32(Idx), Type::I32);
        Sum = B.add(Sum, L);
        OracleSum = wrap32(OracleSum + Oracle[Idx]);
      }
    }
    B.ret(Sum);
    ASSERT_TRUE(verifyMethod(Fn));

    sim::MemorySystem Mem((*sim::MachineConfig::byName("athlonmp")));
    exec::Interpreter Interp(Heap, Mem);
    uint64_t Got = Interp.run(Fn, {Arr});
    EXPECT_EQ(static_cast<int32_t>(Got), wrap32(OracleSum));
    for (unsigned I = 0; I != N; ++I)
      ASSERT_EQ(static_cast<int32_t>(
                    Heap.load(Heap.elemAddr(Arr, I), Type::I32)),
                Oracle[I]);
  }
}

/// Random strided-loop programs: arrays of objects with random pitches
/// and field sets, a loop summing random fields. The prefetch pass (in
/// every mode, on both machine parameterizations) must preserve results.
TEST(DifferentialTest, PrefetchPassPreservesRandomLoopResults) {
  SplitMix64 Rng(0x51515151);
  for (int Round = 0; Round != 15; ++Round) {
    vm::TypeTable Types;
    auto *Cls = Types.addClass("R" + std::to_string(Round));
    std::vector<const vm::FieldDesc *> Fields;
    unsigned NumFields = 2 + static_cast<unsigned>(Rng.nextBelow(9));
    for (unsigned F = 0; F != NumFields; ++F)
      Fields.push_back(Types.addField(Cls, "f" + std::to_string(F),
                                      Rng.nextBelow(2) ? Type::I32
                                                       : Type::I64));

    vm::HeapConfig HC;
    HC.HeapBytes = 8 << 20;
    vm::Heap Heap(Types, HC);
    const unsigned N = 200 + static_cast<unsigned>(Rng.nextBelow(800));
    vm::Addr Arr = Heap.allocArray(Type::Ref, N);
    for (unsigned I = 0; I != N; ++I) {
      vm::Addr Obj = Heap.allocObject(*Cls);
      for (const auto *F : Fields)
        Heap.store(Obj + F->Offset, F->Ty, Rng.nextBelow(1 << 20));
      Heap.store(Heap.elemAddr(Arr, I), Type::Ref, Obj);
    }
    // Sometimes scramble (intra-only territory), sometimes keep order.
    if (Rng.nextBelow(2))
      for (unsigned I = N - 1; I > 0; --I) {
        unsigned J = static_cast<unsigned>(Rng.nextBelow(I + 1));
        uint64_t T = Heap.load(Heap.elemAddr(Arr, I), Type::Ref);
        Heap.store(Heap.elemAddr(Arr, I), Type::Ref,
                   Heap.load(Heap.elemAddr(Arr, J), Type::Ref));
        Heap.store(Heap.elemAddr(Arr, J), Type::Ref, T);
      }

    Module M;
    IRBuilder B(M);
    Method *Fn = M.addMethod("loop", Type::I64, {Type::Ref, Type::I32});
    B.setInsertPoint(Fn->addBlock("entry"));
    workloads::LoopNest L(B, "i");
    PhiInst *I = L.civ(B.i32(0));
    PhiInst *Acc = L.addCarried(B.i64(0));
    L.beginBody(B.cmpLt(I, Fn->arg(1)));
    Value *Obj = B.aload(Fn->arg(0), I, Type::Ref);
    Value *AccNext = Acc;
    unsigned Loads = 1 + static_cast<unsigned>(Rng.nextBelow(3));
    for (unsigned K = 0; K != Loads; ++K) {
      const auto *F = Fields[Rng.nextBelow(Fields.size())];
      Value *V = B.getField(Obj, F);
      if (F->Ty == Type::I32)
        V = B.conv(ConvInst::ConvOp::SExt32To64, V);
      AccNext = B.add(AccNext, V);
    }
    L.setNext(Acc, AccNext);
    L.close();
    B.ret(Acc);
    ASSERT_TRUE(verifyMethod(Fn));

    // Reference result, untransformed.
    uint64_t Expected;
    {
      sim::MemorySystem Mem((*sim::MachineConfig::byName("pentium4")));
      exec::Interpreter Interp(Heap, Mem);
      Expected = Interp.run(Fn, {Arr, N});
    }

    for (auto Machine : {(*sim::MachineConfig::byName("pentium4")),
                         (*sim::MachineConfig::byName("athlonmp"))}) {
      for (auto Mode : {core::PrefetchMode::Inter,
                        core::PrefetchMode::InterIntra}) {
        // Fresh copy of the method per configuration: rebuild it by
        // rerunning the pass on the already-transformed method would
        // accumulate prefetches, which is fine for this invariant.
        core::PrefetchPassOptions Opts =
            workloads::passOptionsFor(Machine, Mode);
        core::PrefetchPass Pass(Heap, Opts);
        Pass.run(Fn, {Arr, N});
        ASSERT_TRUE(verifyMethod(Fn));

        sim::MemorySystem Mem(Machine);
        exec::Interpreter Interp(Heap, Mem);
        uint64_t Got = Interp.run(Fn, {Arr, N});
        ASSERT_EQ(Got, Expected)
            << "round " << Round << " on " << Machine.Name;
      }
    }
  }
}

} // namespace
