//===- tests/gc_test.cpp - Mark + sliding compaction ----------------------===//
//
// The collector's contract, straight from the paper: "Live objects are
// packed by sliding compaction, which does not change their internal order
// on the heap. Thus, the garbage collector usually preserves constant
// strides among the live objects." Order preservation is tested both
// directly and as a property over random object graphs.
//
//===----------------------------------------------------------------------===//

#include "support/SplitMix64.h"
#include "vm/GarbageCollector.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace spf;
using namespace spf::vm;

namespace {

class GcTest : public ::testing::Test {
protected:
  GcTest() {
    Node = Types.addClass("Node");
    FNext = Types.addField(Node, "next", ir::Type::Ref);
    FVal = Types.addField(Node, "val", ir::Type::I32);

    HeapConfig HC;
    HC.HeapBytes = 1 << 20;
    H = std::make_unique<Heap>(Types, HC);
  }

  Addr makeNode(int32_t V) {
    Addr A = H->allocObject(*Node);
    EXPECT_NE(A, 0u);
    H->store(A + FVal->Offset, ir::Type::I32, static_cast<uint64_t>(V));
    return A;
  }

  int32_t valOf(Addr A) {
    return static_cast<int32_t>(H->load(A + FVal->Offset, ir::Type::I32));
  }

  TypeTable Types;
  ClassDesc *Node;
  const FieldDesc *FNext;
  const FieldDesc *FVal;
  std::unique_ptr<Heap> H;
  GarbageCollector Gc;
};

TEST_F(GcTest, UnreachableObjectsAreReclaimed) {
  Addr Live = makeNode(1);
  makeNode(2); // Garbage.
  makeNode(3); // Garbage.
  uint64_t Before = H->bytesUsed();

  std::vector<Addr *> Roots = {&Live};
  GcStats S = Gc.collect(*H, Roots);

  EXPECT_EQ(S.LiveObjects, 1u);
  EXPECT_EQ(S.ReclaimedBytes, Before - S.LiveBytes);
  EXPECT_LT(H->bytesUsed(), Before);
  EXPECT_EQ(valOf(Live), 1);
}

TEST_F(GcTest, RootSlotsAreUpdatedWhenObjectsSlide) {
  makeNode(0); // Garbage in front: survivors must slide down.
  Addr A = makeNode(10);
  Addr B = makeNode(20);
  Addr OldA = A;

  std::vector<Addr *> Roots = {&A, &B};
  Gc.collect(*H, Roots);

  EXPECT_LT(A, OldA); // Slid down over the garbage.
  EXPECT_EQ(valOf(A), 10);
  EXPECT_EQ(valOf(B), 20);
}

TEST_F(GcTest, InteriorReferencesAreRewritten) {
  makeNode(0); // Garbage.
  Addr A = makeNode(1);
  makeNode(0); // Garbage.
  Addr B = makeNode(2);
  H->store(A + FNext->Offset, ir::Type::Ref, B);

  std::vector<Addr *> Roots = {&A};
  GcStats S = Gc.collect(*H, Roots);
  EXPECT_EQ(S.LiveObjects, 2u); // B reachable through A.

  Addr NewB = H->load(A + FNext->Offset, ir::Type::Ref);
  EXPECT_EQ(valOf(NewB), 2);
  EXPECT_TRUE(H->isObjectStart(NewB));
}

TEST_F(GcTest, RefArraysAreTraced) {
  Addr Arr = H->allocArray(ir::Type::Ref, 4);
  Addr N1 = makeNode(7);
  Addr N2 = makeNode(8);
  H->store(H->elemAddr(Arr, 0), ir::Type::Ref, N1);
  H->store(H->elemAddr(Arr, 3), ir::Type::Ref, N2);
  makeNode(0); // Garbage.

  std::vector<Addr *> Roots = {&Arr};
  GcStats S = Gc.collect(*H, Roots);
  EXPECT_EQ(S.LiveObjects, 3u);
  EXPECT_EQ(valOf(H->load(H->elemAddr(Arr, 0), ir::Type::Ref)), 7);
  EXPECT_EQ(valOf(H->load(H->elemAddr(Arr, 3), ir::Type::Ref)), 8);
  EXPECT_EQ(H->load(H->elemAddr(Arr, 1), ir::Type::Ref), 0u);
}

TEST_F(GcTest, PrimitiveArraysAreNotTracedButSurvive) {
  Addr Arr = H->allocArray(ir::Type::I64, 8);
  // Plant a value that looks like a heap address; a correct collector
  // must not interpret i64 payloads as references.
  Addr Fake = makeNode(42);
  H->store(H->elemAddr(Arr, 0), ir::Type::I64, Fake);

  std::vector<Addr *> Roots = {&Arr};
  GcStats S = Gc.collect(*H, Roots);
  EXPECT_EQ(S.LiveObjects, 1u); // Only the array; the node was garbage.
}

TEST_F(GcTest, StaticRefSlotsAreRootsAndUpdated) {
  Addr SlotAddr = H->allocStatic(ir::Type::Ref);
  makeNode(0); // Garbage ahead of the live node.
  Addr N = makeNode(5);
  H->store(SlotAddr, ir::Type::Ref, N);

  std::vector<Addr *> NoRoots;
  GcStats S = Gc.collect(*H, NoRoots);
  EXPECT_EQ(S.LiveObjects, 1u);
  Addr NewN = H->load(SlotAddr, ir::Type::Ref);
  EXPECT_EQ(valOf(NewN), 5);
}

TEST_F(GcTest, SlidingCompactionPreservesAddressOrderAndPitch) {
  // Allocate interleaved live/dead nodes; after collection the live ones
  // must keep their relative order AND (all being the same size) resume a
  // constant pitch — the paper's stride-preservation property.
  std::vector<Addr> Live;
  for (int I = 0; I < 32; ++I) {
    if (I % 2 == 0)
      Live.push_back(makeNode(I));
    else
      makeNode(-I); // Garbage.
  }

  std::vector<Addr *> Roots;
  for (Addr &A : Live)
    Roots.push_back(&A);
  Gc.collect(*H, Roots);

  for (size_t I = 1; I < Live.size(); ++I) {
    EXPECT_LT(Live[I - 1], Live[I]); // Order preserved.
    EXPECT_EQ(Live[I] - Live[I - 1], H->objectSize(Live[I - 1]));
  }
  for (size_t I = 0; I < Live.size(); ++I)
    EXPECT_EQ(valOf(Live[I]), static_cast<int32_t>(2 * I));
}

TEST_F(GcTest, CollectionIsIdempotentWhenEverythingLives) {
  Addr A = makeNode(1);
  Addr B = makeNode(2);
  std::vector<Addr *> Roots = {&A, &B};
  Gc.collect(*H, Roots);
  uint64_t Used = H->bytesUsed();
  Addr A1 = A, B1 = B;
  GcStats S = Gc.collect(*H, Roots);
  EXPECT_EQ(S.ReclaimedBytes, 0u);
  EXPECT_EQ(H->bytesUsed(), Used);
  EXPECT_EQ(A, A1);
  EXPECT_EQ(B, B1);
}

TEST_F(GcTest, CyclicGraphsAreCollectedCorrectly) {
  Addr A = makeNode(1);
  Addr B = makeNode(2);
  H->store(A + FNext->Offset, ir::Type::Ref, B);
  H->store(B + FNext->Offset, ir::Type::Ref, A); // Cycle.
  Addr C = makeNode(3);
  Addr D = makeNode(4);
  H->store(C + FNext->Offset, ir::Type::Ref, D);
  H->store(D + FNext->Offset, ir::Type::Ref, C); // Unreachable cycle.

  std::vector<Addr *> Roots = {&A};
  GcStats S = Gc.collect(*H, Roots);
  EXPECT_EQ(S.LiveObjects, 2u); // The reachable cycle only.
}

/// Property test: random object graphs survive collection with exactly
/// the reachable set, correct values, preserved order, and intact links.
TEST_F(GcTest, PropertyRandomGraphsSurviveCompaction) {
  SplitMix64 Rng(0xdecafbad);
  for (int Round = 0; Round < 20; ++Round) {
    HeapConfig HC;
    HC.HeapBytes = 1 << 20;
    Heap Local(Types, HC);

    const unsigned N = 200;
    std::vector<Addr> Nodes(N);
    for (unsigned I = 0; I != N; ++I) {
      Nodes[I] = Local.allocObject(*Node);
      Local.store(Nodes[I] + FVal->Offset, ir::Type::I32, I);
    }
    // Random links.
    for (unsigned I = 0; I != N; ++I)
      if (Rng.nextBelow(100) < 70)
        Local.store(Nodes[I] + FNext->Offset, ir::Type::Ref,
                    Nodes[Rng.nextBelow(N)]);

    // Random subset of roots.
    std::vector<Addr> RootVals;
    std::vector<unsigned> RootIdx;
    for (unsigned I = 0; I != N; ++I)
      if (Rng.nextBelow(100) < 10) {
        RootVals.push_back(Nodes[I]);
        RootIdx.push_back(I);
      }

    // Compute the expected reachable value set.
    std::vector<bool> Reach(N, false);
    std::vector<Addr> Work = RootVals;
    while (!Work.empty()) {
      Addr A = Work.back();
      Work.pop_back();
      unsigned Idx = static_cast<unsigned>(
          Local.load(A + FVal->Offset, ir::Type::I32));
      if (Reach[Idx])
        continue;
      Reach[Idx] = true;
      Addr Next = Local.load(A + FNext->Offset, ir::Type::Ref);
      if (Next)
        Work.push_back(Next);
    }
    uint64_t ExpectedLive = 0;
    for (bool R : Reach)
      ExpectedLive += R;

    std::vector<Addr *> Roots;
    for (Addr &A : RootVals)
      Roots.push_back(&A);
    GarbageCollector LocalGc;
    GcStats S = LocalGc.collect(Local, Roots);
    ASSERT_EQ(S.LiveObjects, ExpectedLive);

    // Roots still point at nodes with their original values; chase every
    // list and check values and ordering invariants.
    for (size_t R = 0; R + 1 < RootVals.size(); ++R) {
      if (RootIdx[R] < RootIdx[R + 1]) {
        EXPECT_LT(RootVals[R], RootVals[R + 1]); // Order preserved.
      }
    }
    for (size_t R = 0; R < RootVals.size(); ++R) {
      Addr Cur = RootVals[R];
      unsigned Hops = 0;
      while (Cur && Hops++ < N) {
        unsigned Idx = static_cast<unsigned>(
            Local.load(Cur + FVal->Offset, ir::Type::I32));
        ASSERT_LT(Idx, N);
        EXPECT_TRUE(Reach[Idx]);
        ASSERT_TRUE(Local.isObjectStart(Cur));
        Cur = Local.load(Cur + FNext->Offset, ir::Type::Ref);
      }
    }
  }
}

// -- Placement variants -----------------------------------------------------
//
// SlidingCompact is the paper's collector and keeps allocation-order
// strides (tested above). Each alternative placement policy must
// measurably break the property — that breakage is what the online
// prefetch-health governor (opt/Governor.h) exists to survive.

TEST_F(GcTest, VariantNamesRoundTrip) {
  for (GcVariant V :
       {GcVariant::SlidingCompact, GcVariant::MarkSweep,
        GcVariant::AddressShuffle, GcVariant::PromotionOrder})
    EXPECT_EQ(parseGcVariant(gcVariantName(V)), V);
  EXPECT_FALSE(parseGcVariant("copying").has_value());
}

TEST_F(GcTest, MarkSweepLeavesLiveObjectsInPlace) {
  // Interleaved live/dead: sliding compaction would close the gaps and
  // restore a constant pitch; mark-sweep must leave every survivor at
  // its old address, so the post-GC pitch keeps the pre-GC holes.
  std::vector<Addr> Live;
  for (int I = 0; I < 16; ++I) {
    if (I % 2 == 0)
      Live.push_back(makeNode(I));
    else
      makeNode(-I); // Garbage.
  }
  std::vector<Addr> Before = Live;
  Addr OldTop = H->heapTop();

  Gc.setVariant(GcVariant::MarkSweep);
  std::vector<Addr *> Roots;
  for (Addr &A : Live)
    Roots.push_back(&A);
  GcStats S = Gc.collect(*H, Roots);

  EXPECT_EQ(S.LiveObjects, Live.size());
  EXPECT_GT(S.ReclaimedBytes, 0u);
  EXPECT_EQ(H->heapTop(), OldTop); // Frontier untouched: nothing moved.
  for (size_t I = 0; I < Live.size(); ++I) {
    EXPECT_EQ(Live[I], Before[I]); // In place.
    EXPECT_EQ(valOf(Live[I]), static_cast<int32_t>(2 * I));
  }
  // The inter-object pitch keeps the dead holes: twice the sliding-
  // compacted pitch here, so a stride plan fit to compacted order would
  // now be wrong.
  for (size_t I = 1; I < Live.size(); ++I)
    EXPECT_EQ(Live[I] - Live[I - 1], 2 * H->objectSize(Live[I - 1]));
  EXPECT_FALSE(H->freeList().empty());
}

TEST_F(GcTest, MarkSweepHolesAreReusedByAllocation) {
  std::vector<Addr> Live;
  for (int I = 0; I < 16; ++I) {
    if (I % 2 == 0)
      Live.push_back(makeNode(I));
    else
      makeNode(-I); // Garbage.
  }
  Gc.setVariant(GcVariant::MarkSweep);
  std::vector<Addr *> Roots;
  for (Addr &A : Live)
    Roots.push_back(&A);
  Gc.collect(*H, Roots);

  Addr Top = H->heapTop();
  Addr Reused = makeNode(99);
  EXPECT_LT(Reused, Top); // First-fit from a hole, not the frontier.
  EXPECT_EQ(H->heapTop(), Top);
  EXPECT_EQ(valOf(Reused), 99);
}

TEST_F(GcTest, AddressShuffleBreaksLiveObjectOrder) {
  std::vector<Addr> Live;
  for (int I = 0; I < 64; ++I)
    Live.push_back(makeNode(I));

  Gc.setVariant(GcVariant::AddressShuffle, /*Seed=*/42);
  Gc.setShuffleWindow(8);
  std::vector<Addr *> Roots;
  for (Addr &A : Live)
    Roots.push_back(&A);
  GcStats S = Gc.collect(*H, Roots);
  EXPECT_EQ(S.LiveObjects, Live.size());

  // Values survive and the heap is still densely packed...
  std::vector<Addr> Sorted = Live;
  std::sort(Sorted.begin(), Sorted.end());
  for (size_t I = 1; I < Sorted.size(); ++I)
    EXPECT_EQ(Sorted[I] - Sorted[I - 1], H->objectSize(Sorted[I - 1]));
  for (size_t I = 0; I < Live.size(); ++I)
    EXPECT_EQ(valOf(Live[I]), static_cast<int32_t>(I));
  // ...but allocation order no longer matches address order: the
  // constant stride the inspector fit before the collection is gone.
  unsigned Inversions = 0;
  for (size_t I = 1; I < Live.size(); ++I)
    Inversions += Live[I] < Live[I - 1];
  EXPECT_GT(Inversions, 0u);
}

TEST_F(GcTest, AddressShuffleIsDeterministicPerSeedAndCollection) {
  auto RunOnce = [&](uint64_t Seed) {
    HeapConfig HC;
    HC.HeapBytes = 1 << 20;
    Heap Local(Types, HC);
    std::vector<Addr> Live;
    for (int I = 0; I < 32; ++I) {
      Live.push_back(Local.allocObject(*Node));
      Local.store(Live.back() + FVal->Offset, ir::Type::I32,
                  static_cast<uint64_t>(I));
    }
    GarbageCollector LocalGc;
    LocalGc.setVariant(GcVariant::AddressShuffle, Seed);
    LocalGc.setShuffleWindow(8);
    std::vector<Addr *> Roots;
    for (Addr &A : Live)
      Roots.push_back(&A);
    LocalGc.collect(Local, Roots);
    return Live;
  };
  EXPECT_EQ(RunOnce(7), RunOnce(7));   // Same seed: same permutation.
  EXPECT_NE(RunOnce(7), RunOnce(8));   // Different seed: different one.
}

TEST_F(GcTest, PromotionOrderPlacesInDiscoveryOrder) {
  // Build a chain whose link order is the *reverse* of allocation order:
  // node I points at node I-1, the root holds the last node. Discovery
  // (promotion) order is then chain order, so after collection the chain
  // runs in ascending address order — the opposite of what sliding
  // compaction (allocation order) would produce.
  const int N = 16;
  std::vector<Addr> Nodes;
  for (int I = 0; I < N; ++I) {
    Nodes.push_back(makeNode(I));
    if (I > 0)
      H->store(Nodes[I] + FNext->Offset, ir::Type::Ref, Nodes[I - 1]);
  }
  Addr Root = Nodes.back();

  Gc.setVariant(GcVariant::PromotionOrder);
  std::vector<Addr *> Roots = {&Root};
  GcStats S = Gc.collect(*H, Roots);
  EXPECT_EQ(S.LiveObjects, static_cast<uint64_t>(N));

  EXPECT_EQ(Root, H->heapBase()); // First discovered object placed first.
  Addr Cur = Root;
  int Hops = 0;
  int32_t Expect = N - 1;
  while (Cur) {
    EXPECT_EQ(valOf(Cur), Expect--);
    Addr Next = H->load(Cur + FNext->Offset, ir::Type::Ref);
    if (Next)
      EXPECT_GT(Next, Cur); // Chain order == address order now.
    Cur = Next;
    ASSERT_LE(++Hops, N);
  }
  EXPECT_EQ(Hops, N);
}

TEST_F(GcTest, PropertyVariantsPreserveReachabilityAndValues) {
  // Placement changes, semantics must not: every variant keeps exactly
  // the reachable set with intact values and links.
  SplitMix64 Rng(0xfeedface);
  for (GcVariant V : {GcVariant::MarkSweep, GcVariant::AddressShuffle,
                      GcVariant::PromotionOrder}) {
    for (int Round = 0; Round < 5; ++Round) {
      HeapConfig HC;
      HC.HeapBytes = 1 << 20;
      Heap Local(Types, HC);
      const unsigned N = 100;
      std::vector<Addr> Nodes(N);
      for (unsigned I = 0; I != N; ++I) {
        Nodes[I] = Local.allocObject(*Node);
        Local.store(Nodes[I] + FVal->Offset, ir::Type::I32, I);
      }
      for (unsigned I = 0; I != N; ++I)
        if (Rng.nextBelow(100) < 70)
          Local.store(Nodes[I] + FNext->Offset, ir::Type::Ref,
                      Nodes[Rng.nextBelow(N)]);
      std::vector<Addr> RootVals;
      for (unsigned I = 0; I != N; ++I)
        if (Rng.nextBelow(100) < 15)
          RootVals.push_back(Nodes[I]);

      std::vector<bool> Reach(N, false);
      std::vector<Addr> Work = RootVals;
      while (!Work.empty()) {
        Addr A = Work.back();
        Work.pop_back();
        unsigned Idx = static_cast<unsigned>(
            Local.load(A + FVal->Offset, ir::Type::I32));
        if (Reach[Idx])
          continue;
        Reach[Idx] = true;
        if (Addr Next = Local.load(A + FNext->Offset, ir::Type::Ref))
          Work.push_back(Next);
      }
      uint64_t ExpectedLive = 0;
      for (bool R : Reach)
        ExpectedLive += R;

      GarbageCollector LocalGc;
      LocalGc.setVariant(V, Round);
      std::vector<Addr *> Roots;
      for (Addr &A : RootVals)
        Roots.push_back(&A);
      GcStats S = LocalGc.collect(Local, Roots);
      ASSERT_EQ(S.LiveObjects, ExpectedLive) << gcVariantName(V);

      for (Addr Cur : RootVals) {
        unsigned Hops = 0;
        while (Cur && Hops++ < N) {
          ASSERT_TRUE(Local.isObjectStart(Cur)) << gcVariantName(V);
          unsigned Idx = static_cast<unsigned>(
              Local.load(Cur + FVal->Offset, ir::Type::I32));
          ASSERT_LT(Idx, N);
          EXPECT_TRUE(Reach[Idx]) << gcVariantName(V);
          Cur = Local.load(Cur + FNext->Offset, ir::Type::Ref);
        }
      }
    }
  }
}

// -- Watchdog checkpoints ---------------------------------------------------

TEST_F(GcTest, CheckpointFiresDuringCollection) {
  // Enough objects that every phase loop crosses the poll interval at
  // least once (the interval is 4096 work items; 5000 objects x 5 phases
  // gives several firings).
  std::vector<Addr> Keep;
  for (int I = 0; I != 5000; ++I)
    Keep.push_back(makeNode(I));

  unsigned Fired = 0;
  Gc.setCheckpoint([&Fired] { ++Fired; });
  std::vector<Addr *> Roots;
  for (Addr &A : Keep)
    Roots.push_back(&A);
  GcStats S = Gc.collect(*H, Roots);

  EXPECT_EQ(S.LiveObjects, 5000u);
  EXPECT_GT(Fired, 0u);
}

TEST_F(GcTest, CheckpointFiresDuringEveryVariantPhase) {
  // The watchdog contract extends to the new placement policies: the
  // sweep loop, the shuffle permutation, and the scratch-copy placement
  // all poll the checkpoint, so a cell stuck in a perturbing collection
  // still observes its deadline.
  for (GcVariant V : {GcVariant::MarkSweep, GcVariant::AddressShuffle,
                      GcVariant::PromotionOrder}) {
    HeapConfig HC;
    HC.HeapBytes = 4u << 20;
    Heap Local(Types, HC);
    std::vector<Addr> Keep;
    for (int I = 0; I != 5000; ++I) {
      Addr A = Local.allocObject(*Node);
      ASSERT_NE(A, 0u);
      Keep.push_back(A);
    }
    unsigned Fired = 0;
    GarbageCollector LocalGc;
    LocalGc.setVariant(V, /*Seed=*/1);
    LocalGc.setCheckpoint([&Fired] { ++Fired; });
    std::vector<Addr *> Roots;
    for (Addr &A : Keep)
      Roots.push_back(&A);
    GcStats S = LocalGc.collect(Local, Roots);
    EXPECT_EQ(S.LiveObjects, 5000u) << gcVariantName(V);
    EXPECT_GT(Fired, 0u) << gcVariantName(V);
  }
}

TEST_F(GcTest, ThrowingCheckpointAbandonsCollection) {
  // The interpreter's deadline hook throws support::CellTimeout; any
  // exception must propagate out of collect() instead of being swallowed
  // (the harness discards the heap afterwards, so a half-compacted heap
  // is fine).
  struct DeadlineHit {};
  std::vector<Addr> Keep;
  for (int I = 0; I != 5000; ++I)
    Keep.push_back(makeNode(I));

  Gc.setCheckpoint([] { throw DeadlineHit(); });
  std::vector<Addr *> Roots;
  for (Addr &A : Keep)
    Roots.push_back(&A);
  EXPECT_THROW(Gc.collect(*H, Roots), DeadlineHit);

  // Clearing the hook restores normal operation on a fresh heap.
  Gc.setCheckpoint(nullptr);
  HeapConfig HC;
  HC.HeapBytes = 1 << 20;
  Heap Fresh(Types, HC);
  Addr Live = Fresh.allocObject(*Node);
  std::vector<Addr *> FreshRoots = {&Live};
  GcStats S = Gc.collect(Fresh, FreshRoots);
  EXPECT_EQ(S.LiveObjects, 1u);
}

} // namespace
