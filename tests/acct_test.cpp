//===- tests/acct_test.cpp - Cycle attribution and timeline sampling ------===//
//
// The observability PR's tentpole invariant, pinned end to end: every
// simulated cycle is charged to exactly one CycleAccounting category
// (acct().total() == cycles() on every machine, through the per-event
// member path AND the batched consume() fast path), per-site stall
// attribution agrees between both dispatch paths, prefetch-health
// counters stay bit-identical batched vs per-event, and the
// TimelineSampler produces the same sample series live and on replay —
// boundary samples included — with deterministic decimation.
//
//===----------------------------------------------------------------------===//

#include "obs/Timeline.h"
#include "sim/MemorySystem.h"
#include "trace/TraceBuffer.h"
#include "workloads/Runner.h"
#include "workloads/Workload.h"

#include <gtest/gtest.h>

using namespace spf;

namespace {

workloads::WorkloadConfig tinyConfig() {
  workloads::WorkloadConfig Cfg;
  Cfg.Scale = 0.05;
  return Cfg;
}

const std::vector<sim::MachineConfig> &allMachines() {
  static const std::vector<sim::MachineConfig> Machines = {
      (*sim::MachineConfig::byName("pentium4")),
      (*sim::MachineConfig::byName("athlonmp")),
      (*sim::MachineConfig::byName("modern3l"))};
  return Machines;
}

/// Records one INTER+INTRA trace of \p Spec at tiny scale.
trace::TraceBuffer recordTrace(const workloads::WorkloadSpec &Spec) {
  workloads::RunOptions Opt;
  Opt.Machine = allMachines()[0];
  Opt.Algo = workloads::Algorithm::InterIntra;
  Opt.Config = tinyConfig();
  trace::TraceBuffer Buf;
  Opt.Record = &Buf;
  workloads::runWorkload(Spec, Opt);
  EXPECT_FALSE(Buf.overflowed()) << Spec.Name;
  return Buf;
}

// -- The attribution invariant ----------------------------------------------

TEST(CycleAccountingTest, SyntheticEventsChargeTheRightCategories) {
  sim::MemorySystem Mem(allMachines()[0]);
  const sim::MachineConfig &Cfg = allMachines()[0];
  Mem.tick(10);
  EXPECT_EQ(Mem.acct().Compute, 10 * Cfg.ComputeCycles);
  Mem.load(0x10000, 0);   // Cold miss: L1 base + deeper levels + memory.
  Mem.load(0x10008, 0);   // Hot hit: L1 base cost only.
  Mem.prefetch(0x20000);
  Mem.guardedLoad(0x30000);
  Mem.guardedLoadFault();
  const sim::CycleAccounting &A = Mem.acct();
  EXPECT_GT(A.Level[0], 0u);
  EXPECT_GT(A.MemPenalty, 0u);
  EXPECT_GT(A.PrefetchIssue, 0u);
  EXPECT_GT(A.GuardFault, 0u);
  EXPECT_EQ(A.total(), Mem.cycles());
  // Per-site stall attribution covers every charged demand-load cycle.
  uint64_t SiteStall = 0;
  for (const sim::SiteStats &S : Mem.siteStats())
    SiteStall += S.StallCycles;
  EXPECT_EQ(SiteStall, Mem.stats().CyclesStalledOnLoads);
}

TEST(CycleAccountingTest, TotalEqualsCyclesBothDispatchPathsAllMachines) {
  const workloads::WorkloadSpec *Spec = workloads::findWorkload("db");
  ASSERT_NE(Spec, nullptr);
  trace::TraceBuffer Buf = recordTrace(*Spec);
  for (const sim::MachineConfig &Machine : allMachines()) {
    sim::MemorySystem Batched(Machine), PerEvent(Machine);
    ASSERT_TRUE(trace::replay(Buf, Batched)) << Machine.Name;
    ASSERT_TRUE(trace::replayPerEvent(Buf, PerEvent)) << Machine.Name;
    // The invariant on each path, and bit-identical attribution across
    // the batched/per-event divide.
    EXPECT_EQ(Batched.acct().total(), Batched.cycles()) << Machine.Name;
    EXPECT_EQ(PerEvent.acct().total(), PerEvent.cycles()) << Machine.Name;
    EXPECT_EQ(Batched.acct(), PerEvent.acct()) << Machine.Name;
    EXPECT_EQ(Batched.siteStats(), PerEvent.siteStats()) << Machine.Name;
  }
}

TEST(CycleAccountingTest, LiveRunsSatisfyTheInvariantOnEveryMachine) {
  const workloads::WorkloadSpec *Spec = workloads::findWorkload("compress");
  ASSERT_NE(Spec, nullptr);
  for (const sim::MachineConfig &Machine : allMachines()) {
    workloads::RunOptions Opt;
    Opt.Machine = Machine;
    Opt.Algo = workloads::Algorithm::InterIntra;
    Opt.Config = tinyConfig();
    workloads::RunResult R = workloads::runWorkload(*Spec, Opt);
    EXPECT_EQ(R.Acct.total(), R.CompiledCycles) << Machine.Name;
  }
}

TEST(CycleAccountingTest, GovernorRunsSatisfyTheInvariant) {
  // Governor runs enable prefetch-health tracking, which routes the
  // batched fast path onto per-event fallback — the member handlers
  // must self-account identically.
  const workloads::WorkloadSpec *Spec = workloads::findWorkload("db");
  ASSERT_NE(Spec, nullptr);
  workloads::RunOptions Opt;
  Opt.Machine = allMachines()[0];
  Opt.Algo = workloads::Algorithm::InterIntra;
  Opt.Config = tinyConfig();
  Opt.Epochs = 3;
  Opt.GcVariant = vm::GcVariant::AddressShuffle;
  Opt.Governor = true;
  workloads::RunResult R = workloads::runWorkload(*Spec, Opt);
  EXPECT_EQ(R.Acct.total(), R.CompiledCycles);
  EXPECT_GT(R.Acct.Compute, 0u);
}

TEST(CycleAccountingTest, ReplayAcctMatchesDirectInterpretation) {
  // The replayed attribution (batched consume) must be bit-identical to
  // direct interpretation (per-event member calls), stall columns
  // included. Recorded per machine: the planner's machine facets shape
  // the event stream, so a trace only serves machines that share them.
  const workloads::WorkloadSpec *Spec = workloads::findWorkload("db");
  ASSERT_NE(Spec, nullptr);
  for (const sim::MachineConfig &Machine : allMachines()) {
    workloads::RunOptions Opt;
    Opt.Machine = Machine;
    Opt.Algo = workloads::Algorithm::InterIntra;
    Opt.Config = tinyConfig();
    trace::TraceBuffer Buf;
    Opt.Record = &Buf;
    workloads::RunResult Direct = workloads::runWorkload(*Spec, Opt);
    ASSERT_FALSE(Buf.overflowed()) << Machine.Name;
    workloads::RunResult Replayed =
        workloads::replayTrace(Direct, Buf, Machine);
    EXPECT_EQ(Replayed.Acct, Direct.Acct) << Machine.Name;
    EXPECT_EQ(Replayed.Sites, Direct.Sites) << Machine.Name;
    EXPECT_EQ(Replayed.Acct.total(), Replayed.CompiledCycles)
        << Machine.Name;
  }
}

// -- Prefetch-health parity -------------------------------------------------

TEST(PrefetchHealthTest, BatchedMatchesPerEventWithHealthTracking) {
  const workloads::WorkloadSpec *Spec = workloads::findWorkload("db");
  ASSERT_NE(Spec, nullptr);
  trace::TraceBuffer Buf = recordTrace(*Spec);
  for (const sim::MachineConfig &Machine : allMachines()) {
    sim::MemorySystem Batched(Machine), PerEvent(Machine);
    Batched.enablePrefetchHealth();
    PerEvent.enablePrefetchHealth();
    ASSERT_TRUE(trace::replay(Buf, Batched)) << Machine.Name;
    ASSERT_TRUE(trace::replayPerEvent(Buf, PerEvent)) << Machine.Name;
    EXPECT_EQ(Batched.stats().SwPrefetchesIssued,
              PerEvent.stats().SwPrefetchesIssued) << Machine.Name;
    EXPECT_EQ(Batched.stats().SwPrefetchesUseful,
              PerEvent.stats().SwPrefetchesUseful) << Machine.Name;
    EXPECT_EQ(Batched.stats().SwPrefetchesLate,
              PerEvent.stats().SwPrefetchesLate) << Machine.Name;
    EXPECT_EQ(Batched.stats().SwPrefetchesUnused,
              PerEvent.stats().SwPrefetchesUnused) << Machine.Name;
    EXPECT_EQ(Batched.stats(), PerEvent.stats()) << Machine.Name;
    EXPECT_EQ(Batched.siteStats(), PerEvent.siteStats()) << Machine.Name;
    EXPECT_EQ(Batched.acct(), PerEvent.acct()) << Machine.Name;
    EXPECT_EQ(Batched.acct().total(), Batched.cycles()) << Machine.Name;
  }
}

// -- Timeline sampling ------------------------------------------------------

TEST(TimelineTest, LiveAndReplayProduceIdenticalSamples) {
  const workloads::WorkloadSpec *Spec = workloads::findWorkload("db");
  ASSERT_NE(Spec, nullptr);
  workloads::RunOptions Opt;
  Opt.Machine = allMachines()[0];
  Opt.Algo = workloads::Algorithm::InterIntra;
  Opt.Config = tinyConfig();
  Opt.Epochs = 3;
  Opt.TimelineEvery = 1000;
  trace::TraceBuffer Buf;
  Opt.Record = &Buf;
  workloads::RunResult Live = workloads::runWorkload(*Spec, Opt);
  ASSERT_FALSE(Buf.overflowed());
  ASSERT_FALSE(Live.Timeline.empty());
  ASSERT_EQ(Live.BoundaryEvents.size(), 2u); // Epochs - 1 boundaries.

  // Boundary samples re-fire from the recorded event indices; every
  // other sample re-fires from the cadence. Bit-identical series.
  workloads::RunResult Replayed =
      workloads::replayTrace(Live, Buf, Opt.Machine, Opt.TimelineEvery);
  ASSERT_EQ(Replayed.Timeline.size(), Live.Timeline.size());
  for (size_t I = 0; I != Live.Timeline.size(); ++I)
    EXPECT_EQ(Replayed.Timeline[I], Live.Timeline[I]) << "sample " << I;

  size_t Boundaries = 0;
  for (const obs::TimelineSample &S : Live.Timeline)
    if (S.Boundary)
      ++Boundaries;
  EXPECT_EQ(Boundaries, Live.BoundaryEvents.size());

  // Each sample satisfies the attribution invariant, and the series is
  // monotone in both event index and cycles.
  for (size_t I = 0; I != Live.Timeline.size(); ++I) {
    const obs::TimelineSample &S = Live.Timeline[I];
    EXPECT_EQ(S.Acct.total(), S.Cycles) << "sample " << I;
    if (I) {
      EXPECT_GE(S.EventIndex, Live.Timeline[I - 1].EventIndex);
      EXPECT_GE(S.Cycles, Live.Timeline[I - 1].Cycles);
    }
  }
  // The final sample is the whole run.
  EXPECT_EQ(Live.Timeline.back().Cycles, Live.CompiledCycles);
  EXPECT_EQ(Live.Acct, Live.Timeline.back().Acct);

  // TimelineEvery=0 replays of the same exec side carry no timeline.
  workloads::RunResult Plain = workloads::replayTrace(Live, Buf, Opt.Machine);
  EXPECT_TRUE(Plain.Timeline.empty());
  EXPECT_EQ(Plain.Acct, Live.Acct);
}

TEST(TimelineTest, SamplerSplitsBatchesDeterministically) {
  // Driving the sampler with one big consume() block must produce the
  // same samples as event-at-a-time calls: the sampler splits blocks at
  // sample points and forwards the pieces to the batched fast path.
  std::vector<exec::AccessEvent> Events;
  uint64_t Addr = 0x10000;
  for (unsigned I = 0; I != 1000; ++I) {
    Events.push_back({exec::EventKind::Tick, 3, 0});
    Events.push_back({exec::EventKind::Load, Addr += 64, 0});
    if (I % 3 == 0)
      Events.push_back({exec::EventKind::Store, Addr, 0});
  }
  sim::MemorySystem MemA(allMachines()[0]), MemB(allMachines()[0]);
  obs::TimelineSampler A(MemA, 37), B(MemB, 37);
  A.consume(Events.data(), Events.size());
  for (const exec::AccessEvent &E : Events)
    B.consume(&E, 1);
  A.finish();
  B.finish();
  EXPECT_EQ(A.samples(), B.samples());
  EXPECT_EQ(MemA.cycles(), MemB.cycles());
  EXPECT_EQ(MemA.acct(), MemB.acct());
}

TEST(TimelineTest, DecimationKeepsBoundariesAndStaysDeterministic) {
  // A tiny MaxSamples forces repeated decimation; boundary samples are
  // never dropped and two identical runs produce identical series.
  auto Run = [](std::vector<obs::TimelineSample> &Out,
                std::vector<uint64_t> &BoundariesOut) {
    sim::MemorySystem Mem(allMachines()[0]);
    obs::TimelineSampler S(Mem, /*Every=*/1, /*MaxSamples=*/8);
    uint64_t Addr = 0x40000;
    for (unsigned I = 0; I != 500; ++I) {
      S.tick(2);
      S.load(Addr += 64, 0);
      if (I == 100 || I == 300) {
        S.tick(5);
        S.boundary();
      }
    }
    S.finish();
    BoundariesOut = S.takeBoundaryEvents();
    Out = S.takeSamples();
  };
  std::vector<obs::TimelineSample> First, Second;
  std::vector<uint64_t> BoundaryEvents, BoundaryEvents2;
  Run(First, BoundaryEvents);
  Run(Second, BoundaryEvents2);
  EXPECT_EQ(First, Second);
  EXPECT_EQ(BoundaryEvents, BoundaryEvents2);
  ASSERT_EQ(BoundaryEvents.size(), 2u);
  // Decimation honored the cap's order of magnitude (it halves when the
  // cap is hit, so the series can sit just under it) and kept both
  // boundary samples.
  EXPECT_LE(First.size(), 16u);
  size_t Boundaries = 0;
  for (const obs::TimelineSample &S : First)
    if (S.Boundary)
      ++Boundaries;
  EXPECT_EQ(Boundaries, 2u);
  // Samples remain monotone and internally consistent after decimation.
  for (size_t I = 1; I < First.size(); ++I) {
    EXPECT_GE(First[I].EventIndex, First[I - 1].EventIndex);
    EXPECT_EQ(First[I].Acct.total(), First[I].Cycles);
  }
}

} // namespace
