//===- tests/mixedmode_test.cpp - Mixed-mode execution --------------------===//
//
// The paper's JVM "runs in a mixed-mode, meaning it selectively compiles
// methods that are executed frequently". These tests drive the
// invocation-counter path: methods start interpreted, get handed to the
// CompileManager with the ACTUAL arguments of the triggering invocation
// (the values object inspection needs), and speed up afterwards.
//
//===----------------------------------------------------------------------===//

#include "TestKernels.h"
#include "exec/Interpreter.h"
#include "jit/CompileManager.h"
#include "workloads/Runner.h"

#include <gtest/gtest.h>

using namespace spf;
using namespace spf::testkernels;

namespace {

TEST(MixedModeTest, HotMethodsAreCompiledAtTheThreshold) {
  JessWorld W;
  jit::CompileManager::Options Opts;
  Opts.Pass = workloads::passOptionsFor((*sim::MachineConfig::byName("pentium4")),
                                        core::PrefetchMode::InterIntra);
  jit::CompileManager Jit(*W.Heap, Opts);

  sim::MemorySystem Mem((*sim::MachineConfig::byName("pentium4")));
  exec::Interpreter Interp(*W.Heap, Mem);
  unsigned Compiles = 0;
  Interp.enableMixedMode(
      [&](ir::Method *M, const std::vector<uint64_t> &Args) {
        ++Compiles;
        Jit.compile(M, Args);
      },
      /*Threshold=*/3);

  EXPECT_FALSE(Interp.isCompiled(W.Find));
  Interp.run(W.Find, W.findArgs());
  Interp.run(W.Find, W.findArgs());
  EXPECT_FALSE(Interp.isCompiled(W.Find)); // Two invocations: still cold.
  Interp.run(W.Find, W.findArgs());
  EXPECT_TRUE(Interp.isCompiled(W.Find)); // Third: compiled.
  // equals() was invoked far more often and compiled too.
  EXPECT_TRUE(Interp.isCompiled(W.Equals));
  EXPECT_GE(Compiles, 2u);

  // The compile received real arguments: the pass discovered jess's
  // dereference chain.
  EXPECT_GT(Jit.aggregatePrefetch().CodeGen.SpecLoads, 0u);
}

TEST(MixedModeTest, CompiledCodeIsFasterThanInterpreted) {
  JessWorld W;
  auto MeasureRun = [&](exec::Interpreter &I, sim::MemorySystem &M) {
    uint64_t C0 = M.cycles();
    I.run(W.Find, W.findArgs());
    return M.cycles() - C0;
  };

  jit::CompileManager::Options Opts;
  Opts.EnablePrefetch = false; // Isolate the interpret/compile gap.
  jit::CompileManager Jit(*W.Heap, Opts);
  sim::MemorySystem Mem((*sim::MachineConfig::byName("pentium4")));
  exec::Interpreter Interp(*W.Heap, Mem);
  Interp.enableMixedMode(
      [&](ir::Method *M, const std::vector<uint64_t> &Args) {
        Jit.compile(M, Args);
      },
      /*Threshold=*/2, /*InterpPenalty=*/9);

  uint64_t Cold = MeasureRun(Interp, Mem); // Interpreted.
  MeasureRun(Interp, Mem);                 // Triggers compilation.
  uint64_t Warm = MeasureRun(Interp, Mem); // Compiled.
  EXPECT_GT(Cold, 3 * Warm); // The 10x dispatch penalty dominates.
}

TEST(MixedModeTest, ResultsAreUnchangedAcrossTheTransition) {
  JessWorld W1, W2;
  // Reference: plain execution.
  sim::MemorySystem M1((*sim::MachineConfig::byName("pentium4")));
  exec::Interpreter I1(*W1.Heap, M1);
  std::vector<uint64_t> Results1;
  for (int K = 0; K != 6; ++K)
    Results1.push_back(I1.run(W1.Find, W1.findArgs()));

  // Mixed mode with prefetching kicking in mid-sequence.
  jit::CompileManager::Options Opts;
  Opts.Pass = workloads::passOptionsFor((*sim::MachineConfig::byName("pentium4")),
                                        core::PrefetchMode::InterIntra);
  jit::CompileManager Jit(*W2.Heap, Opts);
  sim::MemorySystem M2((*sim::MachineConfig::byName("pentium4")));
  exec::Interpreter I2(*W2.Heap, M2);
  I2.enableMixedMode(
      [&](ir::Method *M, const std::vector<uint64_t> &Args) {
        Jit.compile(M, Args);
      },
      /*Threshold=*/3);
  std::vector<uint64_t> Results2;
  for (int K = 0; K != 6; ++K)
    Results2.push_back(I2.run(W2.Find, W2.findArgs()));

  // Identical worlds: identical results, before and after compilation.
  EXPECT_EQ(Results1, Results2);
}

TEST(MixedModeTest, RecursiveMethodsCompileOnACleanInvocation) {
  // A self-recursive method must not be rewritten under its own frames;
  // it compiles on the next top-level call and keeps working.
  vm::TypeTable Types;
  vm::HeapConfig HC;
  HC.HeapBytes = 1 << 20;
  vm::Heap Heap(Types, HC);
  ir::Module M;
  ir::IRBuilder B(M);

  ir::Method *Fib = M.addMethod("fib", ir::Type::I32, {ir::Type::I32});
  {
    ir::BasicBlock *Entry = Fib->addBlock("entry");
    ir::BasicBlock *Base = Fib->addBlock("base");
    ir::BasicBlock *Rec = Fib->addBlock("rec");
    B.setInsertPoint(Entry);
    B.br(B.cmpLt(Fib->arg(0), B.i32(2)), Base, Rec);
    B.setInsertPoint(Base);
    B.ret(Fib->arg(0));
    B.setInsertPoint(Rec);
    ir::Value *A = B.call(Fib, ir::Type::I32,
                          {B.sub(Fib->arg(0), B.i32(1))});
    ir::Value *C = B.call(Fib, ir::Type::I32,
                          {B.sub(Fib->arg(0), B.i32(2))});
    B.ret(B.add(A, C));
  }

  jit::CompileManager::Options Opts;
  jit::CompileManager Jit(Heap, Opts);
  sim::MemorySystem Mem((*sim::MachineConfig::byName("pentium4")));
  exec::Interpreter Interp(Heap, Mem);
  Interp.enableMixedMode(
      [&](ir::Method *Mth, const std::vector<uint64_t> &Args) {
        Jit.compile(Mth, Args);
      },
      /*Threshold=*/2);

  // The first call's recursion blows past the threshold while fib is on
  // the stack: compilation must be deferred, results stay right.
  EXPECT_EQ(Interp.run(Fib, {10}), 55u);
  EXPECT_EQ(Interp.run(Fib, {10}), 55u); // Compiles at this clean entry.
  EXPECT_TRUE(Interp.isCompiled(Fib));
  EXPECT_EQ(Interp.run(Fib, {10}), 55u);
}

} // namespace
