//===- tests/ir_test.cpp - IR construction, printing, verification --------===//

#include "ir/IRBuilder.h"
#include "ir/IRPrinter.h"
#include "ir/Verifier.h"

#include <gtest/gtest.h>
#include <sstream>

using namespace spf;
using namespace spf::ir;

namespace {

class IrTest : public ::testing::Test {
protected:
  vm::TypeTable Types;
  Module M;
};

TEST_F(IrTest, TypeStorageSizes) {
  EXPECT_EQ(storageSize(Type::I32), 4u);
  EXPECT_EQ(storageSize(Type::I64), 8u);
  EXPECT_EQ(storageSize(Type::F64), 8u);
  EXPECT_EQ(storageSize(Type::Ref), 8u);
}

TEST_F(IrTest, ConstantsAreUniqued) {
  Constant *A = M.intConst(Type::I32, 42);
  Constant *B = M.intConst(Type::I32, 42);
  Constant *C = M.intConst(Type::I64, 42);
  EXPECT_EQ(A, B);
  EXPECT_NE(A, C);
  EXPECT_EQ(A->intValue(), 42);
}

TEST_F(IrTest, FloatConstantRoundTrips) {
  Constant *F = M.floatConst(3.25);
  EXPECT_DOUBLE_EQ(F->floatValue(), 3.25);
  EXPECT_EQ(M.floatConst(3.25), F);
}

TEST_F(IrTest, NullRefIsNull) {
  EXPECT_TRUE(M.nullRef()->isNullRef());
  EXPECT_EQ(M.nullRef()->type(), Type::Ref);
}

TEST_F(IrTest, CastingDiscriminatesValueKinds) {
  Method *Fn = M.addMethod("f", Type::I32, {Type::I32});
  IRBuilder B(M);
  B.setInsertPoint(Fn->addBlock("entry"));
  Value *Sum = B.add(Fn->arg(0), B.i32(1));
  B.ret(Sum);

  EXPECT_TRUE(isa<Argument>(Fn->arg(0)));
  EXPECT_FALSE(isa<Constant>(Fn->arg(0)));
  EXPECT_TRUE(isa<Instruction>(Sum));
  EXPECT_TRUE(isa<BinaryInst>(Sum));
  EXPECT_FALSE(isa<PhiInst>(Sum));
  EXPECT_EQ(dyn_cast<BinaryInst>(Sum)->binOp(), BinaryInst::BinOp::Add);
  EXPECT_EQ(dyn_cast<CallInst>(Sum), nullptr);
}

TEST_F(IrTest, ComparisonResultsAreI32) {
  Method *Fn = M.addMethod("f", Type::I32, {Type::I64, Type::I64});
  IRBuilder B(M);
  B.setInsertPoint(Fn->addBlock("entry"));
  Value *C = B.cmpLt(Fn->arg(0), Fn->arg(1));
  EXPECT_EQ(C->type(), Type::I32);
  B.ret(C);
}

TEST_F(IrTest, SuccessorsFollowTerminators) {
  Method *Fn = M.addMethod("f", Type::Void, {Type::I32});
  IRBuilder B(M);
  BasicBlock *Entry = Fn->addBlock("entry");
  BasicBlock *Then = Fn->addBlock("then");
  BasicBlock *Else = Fn->addBlock("else");
  B.setInsertPoint(Entry);
  B.br(Fn->arg(0), Then, Else);
  B.setInsertPoint(Then);
  B.ret();
  B.setInsertPoint(Else);
  B.ret();

  auto Succs = Entry->successors();
  ASSERT_EQ(Succs.size(), 2u);
  EXPECT_EQ(Succs[0], Then);
  EXPECT_EQ(Succs[1], Else);
  EXPECT_TRUE(Then->successors().empty());

  Fn->recomputePreds();
  EXPECT_EQ(Then->predecessors().size(), 1u);
  EXPECT_EQ(Then->predecessors()[0], Entry);
}

TEST_F(IrTest, BranchWithIdenticalTargetsHasOneSuccessor) {
  Method *Fn = M.addMethod("f", Type::Void, {Type::I32});
  IRBuilder B(M);
  BasicBlock *Entry = Fn->addBlock("entry");
  BasicBlock *Next = Fn->addBlock("next");
  B.setInsertPoint(Entry);
  B.br(Fn->arg(0), Next, Next);
  B.setInsertPoint(Next);
  B.ret();
  EXPECT_EQ(Entry->successors().size(), 1u);
}

TEST_F(IrTest, InsertAfterPlacesInstructionCorrectly) {
  vm::ClassDesc *C = Types.addClass("C");
  const vm::FieldDesc *F = Types.addField(C, "f", Type::Ref);

  Method *Fn = M.addMethod("f", Type::Void, {Type::Ref});
  IRBuilder B(M);
  BasicBlock *Entry = Fn->addBlock("entry");
  B.setInsertPoint(Entry);
  Value *L = B.getField(Fn->arg(0), F);
  B.ret();

  auto *Anchor = cast<Instruction>(L);
  Entry->insertAfter(Anchor, std::make_unique<PrefetchInst>(
                                 Fn->arg(0), nullptr, 0, 64, false));
  ASSERT_EQ(Entry->size(), 3u);
  EXPECT_EQ(Entry->instructions()[1]->opcode(), Opcode::Prefetch);
  EXPECT_EQ(Entry->instructions()[1]->parent(), Entry);
}

TEST_F(IrTest, VerifierAcceptsWellFormedMethod) {
  Method *Fn = M.addMethod("ok", Type::I32, {Type::I32});
  IRBuilder B(M);
  B.setInsertPoint(Fn->addBlock("entry"));
  B.ret(B.add(Fn->arg(0), B.i32(1)));
  std::vector<std::string> Errors;
  EXPECT_TRUE(verifyMethod(Fn, &Errors)) << Errors.size();
  EXPECT_TRUE(Errors.empty());
}

TEST_F(IrTest, VerifierRejectsMissingTerminator) {
  Method *Fn = M.addMethod("bad", Type::Void, {Type::I32});
  IRBuilder B(M);
  B.setInsertPoint(Fn->addBlock("entry"));
  B.add(Fn->arg(0), B.i32(1)); // No terminator.
  std::vector<std::string> Errors;
  EXPECT_FALSE(verifyMethod(Fn, &Errors));
  EXPECT_FALSE(Errors.empty());
}

TEST_F(IrTest, VerifierRejectsReturnTypeMismatch) {
  Method *Fn = M.addMethod("bad", Type::I64, {Type::I32});
  IRBuilder B(M);
  B.setInsertPoint(Fn->addBlock("entry"));
  B.ret(Fn->arg(0)); // i32 returned from i64 method.
  EXPECT_FALSE(verifyMethod(Fn));
}

TEST_F(IrTest, VerifierRejectsPhiPredMismatch) {
  Method *Fn = M.addMethod("bad", Type::I32, {Type::I32});
  IRBuilder B(M);
  BasicBlock *Entry = Fn->addBlock("entry");
  BasicBlock *Next = Fn->addBlock("next");
  B.setInsertPoint(Entry);
  B.jump(Next);
  B.setInsertPoint(Next);
  PhiInst *P = B.phi(Type::I32);
  B.ret(P);
  Fn->recomputePreds();
  // Phi has zero incoming but Next has one predecessor.
  EXPECT_FALSE(verifyMethod(Fn));
  P->addIncoming(Entry, M.intConst(Type::I32, 7));
  EXPECT_TRUE(verifyMethod(Fn));
}

TEST_F(IrTest, VerifierRejectsForeignBlockSuccessor) {
  Method *A = M.addMethod("a", Type::Void, {});
  Method *Other = M.addMethod("b", Type::Void, {});
  BasicBlock *Foreign = Other->addBlock("foreign");
  IRBuilder B(M);
  B.setInsertPoint(A->addBlock("entry"));
  B.jump(Foreign);
  EXPECT_FALSE(verifyMethod(A));
}

TEST_F(IrTest, PrinterMentionsOpcodeNamesAndOffsets) {
  vm::ClassDesc *C = Types.addClass("Token");
  const vm::FieldDesc *F = Types.addField(C, "facts", Type::Ref);

  Method *Fn = M.addMethod("p", Type::Ref, {Type::Ref});
  IRBuilder B(M);
  B.setInsertPoint(Fn->addBlock("entry"));
  Value *L = B.getField(Fn->arg(0), F);
  B.ret(L);

  std::ostringstream OS;
  printMethod(OS, Fn);
  std::string Text = OS.str();
  EXPECT_NE(Text.find("getfield"), std::string::npos);
  EXPECT_NE(Text.find("Token::facts"), std::string::npos);
  EXPECT_NE(Text.find("(+16)"), std::string::npos);
}

TEST_F(IrTest, InstructionSideEffectTaxonomy) {
  Method *Fn = M.addMethod("f", Type::Void, {Type::Ref, Type::I32});
  IRBuilder B(M);
  B.setInsertPoint(Fn->addBlock("entry"));
  Value *Len = B.arrayLength(Fn->arg(0));
  Value *El = B.aload(Fn->arg(0), Fn->arg(1), Type::I32);
  B.astore(Fn->arg(0), Fn->arg(1), B.add(El, Len));
  B.prefetch(Fn->arg(0), nullptr, 0, 64);
  B.ret();

  const auto &Insts = Fn->entry()->instructions();
  EXPECT_FALSE(Insts[0]->hasSideEffects()); // arraylength
  EXPECT_TRUE(Insts[0]->isHeapLoad());
  EXPECT_FALSE(Insts[1]->hasSideEffects()); // aload
  EXPECT_TRUE(Insts[3]->hasSideEffects());  // astore
  EXPECT_TRUE(Insts[4]->hasSideEffects());  // prefetch
  EXPECT_FALSE(Insts[4]->isHeapLoad());
}

} // namespace
